// Package offt is a reproduction of "Designing and Auto-Tuning Parallel
// 3-D FFT for Computation-Communication Overlap" (Song & Hollingsworth,
// PPoPP 2014) as a production-quality Go library.
//
// The library layers are:
//
//   - internal/fft       — from-scratch 1-D/3-D complex FFT (the FFTW role)
//   - internal/layout    — 1-D decomposition geometry, tiling, pack/unpack
//   - internal/vclock    — deterministic virtual-time scheduler
//   - internal/simnet    — simulated interconnect with manual progression
//   - internal/mpi       — MPI-flavoured API; engines mpi/mem (real data)
//     and mpi/sim (virtual time)
//   - internal/machine   — UMD-Cluster / Hopper / Laptop platform models
//   - internal/model     — cost-model kernels for the simulated engine
//   - internal/pfft      — the paper's contribution: the overlapped,
//     auto-tunable parallel 3-D FFT (and its comparison variants)
//   - internal/tuner     — Nelder–Mead auto-tuning (the Active Harmony role)
//   - internal/harness   — one experiment per table/figure of the paper
//
// See README.md for usage, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go exercise each experiment path; the
// cmd/offt-bench command regenerates the full tables and figures.
package offt
