package offt_test

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"offt"
)

// TestTraceReadersDuringExecution hammers the trace read API —
// TraceEvents and WriteChromeTrace — from several goroutines while
// forward and backward executions run concurrently on the same traced
// plan. The readers must always observe a consistent timeline (every
// event well-formed, never a torn mid-execution view with inverted
// intervals) and the transforms must stay correct. Run with -race: this
// is the regression test for the recorder being reused across
// executions with readers attached.
func TestTraceReadersDuringExecution(t *testing.T) {
	for _, tc := range []struct {
		name   string
		decomp offt.Decomp
	}{
		{"slab", offt.Slab},
		{"pencil", offt.Pencil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 16
			plan, err := offt.NewPlan(
				offt.WithGrid(n, n, n),
				offt.WithRanks(4),
				offt.WithVariant(offt.NEW),
				offt.WithDecomp(tc.decomp),
				offt.WithTrace(),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer plan.Close()

			data := randData(n*n*n, 99)
			var stop atomic.Bool
			var wg sync.WaitGroup
			errc := make(chan error, 8)
			fail := func(err error) {
				select {
				case errc <- err:
				default:
				}
				stop.Store(true)
			}

			// Writer: forward/backward round trips reusing the plan; when
			// it finishes, the readers are released.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				dst := make([]complex128, len(data))
				back := make([]complex128, len(data))
				for i := 0; i < 25 && !stop.Load(); i++ {
					if err := plan.ForwardInto(dst, data); err != nil {
						fail(fmt.Errorf("forward %d: %w", i, err))
						return
					}
					if err := plan.BackwardInto(back, dst); err != nil {
						fail(fmt.Errorf("backward %d: %w", i, err))
						return
					}
				}
			}()

			// Readers: snapshot the per-rank timelines and export Chrome
			// traces while executions are in flight.
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						for r, rank := range plan.TraceEvents() {
							for _, e := range rank {
								if e.End < e.Start {
									fail(fmt.Errorf("rank %d: inverted event %+v", r, e))
									return
								}
							}
						}
						if err := plan.WriteChromeTrace(io.Discard); err != nil {
							fail(fmt.Errorf("chrome export: %w", err))
							return
						}
					}
				}()
			}

			wg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}

			// Quiesced: the last execution's timeline must be non-empty
			// for every rank of a traced plan.
			evs := plan.TraceEvents()
			if len(evs) == 0 {
				t.Fatal("no per-rank timelines after traced executions")
			}
			for r, rank := range evs {
				if len(rank) == 0 {
					t.Errorf("rank %d: empty timeline", r)
				}
			}
		})
	}
}
