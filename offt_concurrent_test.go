package offt_test

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"offt"
	"offt/internal/fft"
	"offt/internal/pfft"
	"offt/internal/tuned"
)

// TestPlanConcurrentForward hammers one shared plan from many goroutines
// (the registry's sharing pattern in internal/serve): every ForwardInto
// must return the same correct spectrum even though executions interleave.
// Run under -race via scripts/verify.sh.
func TestPlanConcurrentForward(t *testing.T) {
	const (
		n     = 16
		goros = 8
		iters = 4
	)
	data := randData(n*n*n, 11)
	want := append([]complex128(nil), data...)
	fft.NewPlan3D(n, n, n, fft.Forward).Transform(want)

	plan, err := offt.NewPlan(offt.WithGrid(n, n, n), offt.WithRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	errc := make(chan error, goros)
	var wg sync.WaitGroup
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]complex128, n*n*n)
			for it := 0; it < iters; it++ {
				if err := plan.ForwardInto(dst, data); err != nil {
					errc <- err
					return
				}
				if e := maxAbsDiff(dst, want); e > 1e-9 {
					errc <- errors.New("concurrent ForwardInto produced a wrong spectrum")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPlanConcurrentMixed interleaves forward and backward executions on
// one plan: serialization must keep both directions correct.
func TestPlanConcurrentMixed(t *testing.T) {
	const n = 12
	data := randData(n*n*n, 13)
	plan, err := offt.NewPlan(offt.WithGrid(n, n, n), offt.WithRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	spectrum := make([]complex128, n*n*n)
	if err := plan.ForwardInto(spectrum, data); err != nil {
		t.Fatal(err)
	}
	scale := complex(float64(n*n*n), 0)

	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			dst := make([]complex128, n*n*n)
			for it := 0; it < 3; it++ {
				if err := plan.ForwardInto(dst, data); err != nil {
					errc <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			dst := make([]complex128, n*n*n)
			for it := 0; it < 3; it++ {
				if err := plan.BackwardInto(dst, spectrum); err != nil {
					errc <- err
					return
				}
				for i := range dst {
					dst[i] /= scale
				}
				if e := maxAbsDiff(dst, data); e > 1e-9 {
					errc <- errors.New("concurrent BackwardInto broke the round trip")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPlanCloseConcurrent: Close must be idempotent, callable from many
// goroutines, and safe against in-flight transforms — each execution
// either completes normally or reports the closed plan, never panics.
func TestPlanCloseConcurrent(t *testing.T) {
	const n = 16
	data := randData(n*n*n, 17)
	plan, err := offt.NewPlan(offt.WithGrid(n, n, n), offt.WithRanks(2))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]complex128, n*n*n)
			for it := 0; it < 4; it++ {
				err := plan.ForwardInto(dst, data)
				if err != nil && !strings.Contains(err.Error(), "closed plan") {
					errc <- err
					return
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := plan.Close(); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if _, err := plan.Forward(data); err == nil {
		t.Error("Forward after Close should fail")
	}
	if err := plan.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestNewPlanBadShape: shape errors out of NewPlan must wrap ErrBadShape
// with user-facing wording, not engine internals.
func TestNewPlanBadShape(t *testing.T) {
	cases := []struct {
		name string
		opts []offt.Option
	}{
		{"no grid", nil},
		{"zero dim", []offt.Option{offt.WithGrid(16, 16, 0)}},
		{"negative ranks", []offt.Option{offt.WithGrid(16, 16, 16), offt.WithRanks(-1)}},
		{"too many ranks", []offt.Option{offt.WithGrid(8, 8, 8), offt.WithRanks(16)}},
	}
	for _, tc := range cases {
		_, err := offt.NewPlan(tc.opts...)
		if !errors.Is(err, offt.ErrBadShape) {
			t.Errorf("%s: error %v does not wrap ErrBadShape", tc.name, err)
		}
	}
	if err := offt.ValidateShape(16, 16, 16, 4); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
}

// TestWithTunedStore: a store entry for the plan's exact setting
// warm-starts its parameters; a miss falls back to the default point.
func TestWithTunedStore(t *testing.T) {
	const n, ranks = 16, 2
	path := filepath.Join(t.TempDir(), "params.json")
	want := pfft.Params{T: 8, W: 2, Px: 2, Pz: 4, Uy: 2, Uz: 4, Fy: 1, Fp: 1, Fu: 1, Fx: 1}
	err := tuned.Append(path, tuned.Entry{
		Key:    tuned.NewKey("laptop", n, n, n, ranks, pfft.NEW),
		Params: want,
	})
	if err != nil {
		t.Fatal(err)
	}

	plan, err := offt.NewPlan(
		offt.WithGrid(n, n, n), offt.WithRanks(ranks), offt.WithTunedStore(path))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	if got := plan.Params(); got != want {
		t.Errorf("warm-started params = %v, want %v", got, want)
	}

	// A different geometry misses the store and uses the default point.
	miss, err := offt.NewPlan(
		offt.WithGrid(n, n, n), offt.WithRanks(1), offt.WithTunedStore(path))
	if err != nil {
		t.Fatal(err)
	}
	defer miss.Close()
	def, err := offt.DefaultParams(n, n, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := miss.Params(); got != def {
		t.Errorf("store miss params = %v, want default %v", got, def)
	}

	// Explicit WithParams wins over the store.
	expl := want
	expl.T = 4
	override, err := offt.NewPlan(
		offt.WithGrid(n, n, n), offt.WithRanks(ranks),
		offt.WithTunedStore(path), offt.WithParams(expl))
	if err != nil {
		t.Fatal(err)
	}
	defer override.Close()
	if got := override.Params(); got != expl {
		t.Errorf("explicit params = %v, want %v", got, expl)
	}
}
