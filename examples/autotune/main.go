// Autotune: end-to-end auto-tuning demo on the simulated cluster (§4)
// through the public offt API. It prints the search-space size, the
// default-point performance, the Nelder–Mead trajectory, and how the
// tuned configuration compares with random search — the workflow behind
// Tables 3 and 4.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"offt"
)

func main() {
	const (
		pRanks = 16
		n      = 256 // the Fig. 5 setting; the search takes a few seconds
		mach   = "umd-cluster"
	)

	configs, dims, err := offt.SearchSpaceSize(n, n, n, pRanks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuning NEW on %s, p=%d, N=%d³\n", mach, pRanks, n)
	fmt.Printf("search space: %d configurations across %d parameters\n\n", configs, dims)

	// Default point, charged in virtual time with a Sim-engine plan.
	def, err := offt.DefaultParams(n, n, n, pRanks)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := offt.NewPlan(
		offt.WithGrid(n, n, n),
		offt.WithRanks(pRanks),
		offt.WithEngine(offt.Sim),
		offt.WithMachine(mach),
		offt.WithParams(def),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	if _, err := plan.Forward(nil); err != nil {
		log.Fatal(err)
	}
	_, defTuned := plan.VirtualTimes()
	fmt.Printf("default point %v\n  → %.4f s (excl. FFTz+Transpose)\n\n", def, float64(defTuned)/1e9)

	prm, out, err := offt.TuneNEW(mach, pRanks, n, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Nelder–Mead trajectory (improvements only):")
	best := math.Inf(1)
	for i, s := range out.Search.History {
		if s.Cost < best {
			best = s.Cost
			fmt.Printf("  eval %3d: %.4f s  %v\n", i+1, s.Cost/1e9, offt.DecodeParams(s.Cfg))
		}
	}
	fmt.Printf("\ntuned point %v\n  → %.4f s (%.2fx over default; %d evaluations, %d cache hits, %d infeasible penalized)\n",
		prm, float64(out.BestTime())/1e9,
		float64(defTuned)/float64(out.BestTime()),
		out.Search.Evals, out.Search.CacheHits, out.Search.Infeasible)

	rnd, err := offt.RandomSearchNEW(mach, pRanks, n, 50, 7)
	if err != nil {
		log.Fatal(err)
	}
	var xs []float64
	for _, s := range rnd.Search.History {
		if !math.IsInf(s.Cost, 1) {
			xs = append(xs, s.Cost/1e9)
		}
	}
	sort.Float64s(xs)
	nmCost := out.Search.BestCost / 1e9
	below := 0
	for _, x := range xs {
		if x < nmCost {
			below++
		}
	}
	if len(xs) == 0 {
		log.Fatal("random search found no feasible points")
	}
	fmt.Printf("\nrandom search with the same budget: best %.4f s, median %.4f s\n",
		xs[0], xs[len(xs)/2])
	fmt.Printf("NM result ranks in percentile %.1f of the random distribution\n",
		100*float64(below)/float64(len(xs)))
}
