// Autotune: end-to-end auto-tuning demo on the simulated cluster (§4).
// It prints the search-space size, the default-point performance, the
// Nelder–Mead trajectory, and how the tuned configuration compares with
// random search — the workflow behind Tables 3 and 4.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"math"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/model"
	"offt/internal/pfft"
	"offt/internal/stats"
	"offt/internal/tuner"
)

func main() {
	const (
		pRanks = 16
		n      = 256 // the Fig. 5 setting; the search takes a few seconds
	)
	m := machine.UMDCluster()
	g, err := layout.NewGrid(n, n, n, pRanks, 0)
	if err != nil {
		log.Fatal(err)
	}

	space := tuner.FFTSpace(g)
	fmt.Printf("tuning NEW on %s, p=%d, N=%d³\n", m.Name, pRanks, n)
	fmt.Printf("search space: %d configurations across %d parameters\n\n", space.Size(), len(space.Dims))

	def := pfft.DefaultParams(g)
	defRes, err := model.SimulateCube(m, pRanks, n, model.Spec{Variant: pfft.NEW, Params: def})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default point %v\n  → %.4f s (excl. FFTz+Transpose)\n\n", def, float64(defRes.MaxTuned)/1e9)

	prm, out, err := tuner.TuneNEW(m, pRanks, n, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Nelder–Mead trajectory (improvements only):")
	best := math.Inf(1)
	for i, s := range out.Search.History {
		if s.Cost < best {
			best = s.Cost
			fmt.Printf("  eval %3d: %.4f s  %v\n", i+1, s.Cost/1e9, tuner.DecodeParams(s.Cfg))
		}
	}
	fmt.Printf("\ntuned point %v\n  → %.4f s (%.2fx over default; %d evaluations, %d cache hits, %d infeasible penalized)\n",
		prm, float64(out.BestTime())/1e9,
		float64(defRes.MaxTuned)/float64(out.BestTime()),
		out.Search.Evals, out.Search.CacheHits, out.Search.Infeasible)

	rnd, err := tuner.RandomNEW(m, pRanks, n, 50, 7)
	if err != nil {
		log.Fatal(err)
	}
	var xs []float64
	for _, s := range rnd.Search.History {
		if !math.IsInf(s.Cost, 1) {
			xs = append(xs, s.Cost/1e9)
		}
	}
	fmt.Printf("\nrandom search with the same budget: best %.4f s, median %.4f s\n",
		stats.Min(xs), stats.Percentile(xs, 50))
	fmt.Printf("NM result ranks in percentile %.1f of the random distribution\n",
		stats.PercentileRank(xs, out.Search.BestCost/1e9))
}
