// Spectral: successive 3-D FFTs on a single array over simulation time —
// the usage pattern (blood-flow / N-body simulations, §1 and §6) that
// makes the paper's intra-array overlap matter, and where Kandalla et
// al.'s inter-array overlap does not apply.
//
// It time-steps the periodic heat equation ∂u/∂t = ν∇²u with an exact
// spectral integrator (forward FFT, multiply by exp(−ν|k|²Δt), backward
// FFT each step) on an in-memory world with emulated network latency, and
// compares the wall-clock time of the blocking FFTW-style baseline against
// the overlapped NEW algorithm. Because the emulated link delay is idle
// time rather than CPU time, overlap produces genuine wall-clock savings
// even on one core.
//
//	go run ./examples/spectral
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"offt"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/mpi/mem"
	"offt/internal/pfft"
)

const (
	n     = 48
	p     = 4
	steps = 3
	nu    = 0.05
	dt    = 0.01
)

func wavenumber(i int) float64 {
	if i > n/2 {
		i -= n
	}
	return 2 * math.Pi * float64(i)
}

// run advances `steps` timesteps with the given variant and returns the
// final field plus the elapsed wall time.
func run(variant pfft.Variant, full []complex128) ([]complex128, time.Duration, error) {
	// Emulated link delays make communication take real (idle) time.
	// Bandwidth-dominated links (2 MB/s, 0.2 ms latency): the pattern
	// where pipelining tiles behind computation pays off.
	m := machine.Laptop()
	m.Net.LatencyInterNs = 200_000 // 0.2 ms per message
	m.Net.NsPerByteInter = 500     // 2 MB/s links
	m.CoresPerNode = 1
	world := mem.NewWorld(p, mem.WithDelay(m))
	outs := make([][]complex128, p)
	start := time.Now()
	err := world.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(n, n, n, p, c.Rank())
		if err != nil {
			panic(err)
		}
		prm := pfft.DefaultParams(g)
		prm.T = n / 4 // four tiles in flight: enough pipelining at this size
		prm.W = 2
		slab := layout.ScatterX(full, g)
		fast := pfft.OutputFast(variant, g)
		for s := 0; s < steps; s++ {
			uHat, _, err := pfft.Forward3D(c, g, slab, variant, prm, fft.Estimate)
			if err != nil {
				panic(err)
			}
			y0 := g.Y0()
			for ly := 0; ly < g.YC(); ly++ {
				ky := wavenumber(y0 + ly)
				for z := 0; z < n; z++ {
					kz := wavenumber(z)
					base := g.RowXBase(fast, ly, z)
					for x := 0; x < n; x++ {
						kx := wavenumber(x)
						decay := math.Exp(-nu * (kx*kx + ky*ky + kz*kz) * dt)
						uHat[base+x] *= complex(decay/float64(n*n*n), 0)
					}
				}
			}
			slab, _, err = pfft.Backward3D(c, g, uHat, variant, prm, fft.Estimate)
			if err != nil {
				panic(err)
			}
		}
		outs[c.Rank()] = slab
	})
	if err != nil {
		return nil, 0, err
	}
	return layout.GatherX(outs, n, n, n, p), time.Since(start), nil
}

func main() {
	// Validate the grid/rank decomposition up front with the shared
	// helper; a bad pairing otherwise surfaces as an engine-internal
	// error deep inside world.Run.
	if err := offt.ValidateShape(n, n, n, p); err != nil {
		log.Fatal(err)
	}

	// Initial condition: one Fourier mode, so the exact solution is a
	// uniform exponential decay.
	full := make([]complex128, n*n*n)
	k := 2 * math.Pi
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				full[(x*n+y)*n+z] = complex(math.Sin(k*float64(x)/n)*math.Cos(k*float64(y)/n), 0)
			}
		}
	}
	exactFactor := math.Exp(-nu * 2 * k * k * float64(steps) * dt)

	baseOut, baseT, err := run(pfft.Baseline, full)
	if err != nil {
		log.Fatal(err)
	}
	newOut, newT, err := run(pfft.NEW, full)
	if err != nil {
		log.Fatal(err)
	}

	// Verify both against the exact decay and each other.
	worst := 0.0
	for i := range full {
		exact := real(full[i]) * exactFactor
		if d := math.Abs(real(baseOut[i]) - exact); d > worst {
			worst = d
		}
		if d := math.Abs(real(newOut[i]) - real(baseOut[i])); d > worst {
			worst = d
		}
	}
	fmt.Printf("heat equation, %d spectral steps on %d³ across %d ranks (emulated slow links)\n", steps, n, p)
	fmt.Printf("max abs error vs exact decay: %.3e\n", worst)
	fmt.Printf("blocking baseline: %v\n", baseT.Round(time.Millisecond))
	fmt.Printf("overlapped NEW:    %v  (%.2fx)\n", newT.Round(time.Millisecond), float64(baseT)/float64(newT))
	if worst > 1e-8 {
		log.Fatal("solution check failed")
	}
	fmt.Println("OK")
}
