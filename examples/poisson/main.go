// Poisson: a distributed spectral Poisson solver — the computational core
// of the astrophysical N-body simulations that motivate the paper's
// successive single-array 3-D FFTs (§1).
//
// It solves ∇²φ = ρ on a periodic cube: forward 3-D FFT of ρ, division by
// −|k|² in frequency space (done in place on each rank's distributed
// y-slab), then the backward 3-D FFT. Verified against an analytic
// solution.
//
//	go run ./examples/poisson
package main

import (
	"fmt"
	"log"
	"math"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/mem"
	"offt/internal/pfft"
)

const (
	n = 48  // grid points per dimension
	p = 4   // ranks
	l = 1.0 // box length
)

// phiExact is the manufactured solution.
func phiExact(x, y, z int) float64 {
	s := 2 * math.Pi / l
	h := l / n
	return math.Sin(s*float64(x)*h) * math.Sin(s*float64(y)*h) * math.Sin(s*float64(z)*h)
}

// rho is ∇²φ for the manufactured solution.
func rho(x, y, z int) float64 {
	s := 2 * math.Pi / l
	return -3 * s * s * phiExact(x, y, z)
}

// wavenumber folds an FFT bin index into a signed frequency.
func wavenumber(i int) float64 {
	if i > n/2 {
		i -= n
	}
	return 2 * math.Pi * float64(i) / l
}

func main() {
	full := make([]complex128, n*n*n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				full[(x*n+y)*n+z] = complex(rho(x, y, z), 0)
			}
		}
	}

	world := mem.NewWorld(p)
	solved := make([][]complex128, p)
	err := world.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(n, n, n, p, c.Rank())
		if err != nil {
			panic(err)
		}
		prm := pfft.DefaultParams(g)
		slab := layout.ScatterX(full, g)

		// Forward transform: ρ → ρ̂ (rank now owns a y-slab).
		rhoHat, _, err := pfft.Forward3D(c, g, slab, pfft.NEW, prm, fft.Estimate)
		if err != nil {
			panic(err)
		}

		// Divide by −|k|² in place on the distributed slab. RowXBase gives
		// the layout-correct row base whether or not the §3.5 fast path
		// produced y-z-x instead of z-y-x.
		fast := pfft.OutputFast(pfft.NEW, g)
		y0 := g.Y0()
		for ly := 0; ly < g.YC(); ly++ {
			ky := wavenumber(y0 + ly)
			for z := 0; z < n; z++ {
				kz := wavenumber(z)
				base := g.RowXBase(fast, ly, z)
				for x := 0; x < n; x++ {
					kx := wavenumber(x)
					k2 := kx*kx + ky*ky + kz*kz
					if k2 == 0 {
						rhoHat[base+x] = 0 // zero-mean gauge
					} else {
						rhoHat[base+x] /= complex(-k2, 0)
					}
				}
			}
		}

		// Backward transform: φ̂ → φ (rank owns an x-slab again).
		phi, _, err := pfft.Backward3D(c, g, rhoHat, pfft.NEW, prm, fft.Estimate)
		if err != nil {
			panic(err)
		}
		fft.ScaleBy(phi, 1/float64(n*n*n))
		solved[c.Rank()] = phi
	})
	if err != nil {
		log.Fatal(err)
	}

	phi := layout.GatherX(solved, n, n, n, p)
	worst := 0.0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				d := math.Abs(real(phi[(x*n+y)*n+z]) - phiExact(x, y, z))
				if d > worst {
					worst = d
				}
			}
		}
	}
	fmt.Printf("spectral Poisson solve on %d³ across %d ranks\n", n, p)
	fmt.Printf("max abs error vs analytic solution: %.3e\n", worst)
	if worst > 1e-8 {
		log.Fatal("solution check failed")
	}
	fmt.Println("OK")
}
