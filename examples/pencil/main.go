// Pencil: the 2-D (pencil) domain decomposition — the scalable alternative
// of §2.2 (P3DFFT-style) and the substrate the paper proposes to combine
// with overlap as future work.
//
// It runs the same transform with the 1-D slab method (package pfft) and
// the 2-D pencil method (package pencil) on a 2×2 process grid, verifies
// both against the serial reference, and prints the simulated-cluster
// comparison, including a rank count where only the pencil method can run.
//
//	go run ./examples/pencil
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"offt/internal/fft"
	"offt/internal/machine"
	"offt/internal/model"
	"offt/internal/mpi/mem"
	"offt/internal/pencil"
	"offt/internal/pfft"
)

const (
	n  = 32
	pr = 2
	pc = 2
)

func main() {
	rng := rand.New(rand.NewSource(4))
	full := make([]complex128, n*n*n)
	for i := range full {
		full[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	ref := append([]complex128(nil), full...)
	fft.NewPlan3D(n, n, n, fft.Forward).Transform(ref)

	// 2-D pencil run on real data.
	p := pr * pc
	world := mem.NewWorld(p)
	outs := make([][]complex128, p)
	err := world.Run(func(c *mem.Comm) {
		g, err := pencil.NewGrid2D(n, n, n, pr, pc, c.Rank())
		if err != nil {
			panic(err)
		}
		out, err := pencil.Forward3D(c, g, pencil.ScatterPencil(full, g), fft.Estimate)
		if err != nil {
			panic(err)
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		log.Fatal(err)
	}
	got := pencil.GatherPencil(outs, n, n, n, pr, pc)
	worst := 0.0
	for i := range got {
		if d := cmplx.Abs(got[i] - ref[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("pencil 3-D FFT of %d³ on a %dx%d grid: max abs error %.3e\n", n, pr, pc, worst)
	if worst > 1e-8 {
		log.Fatal("verification failed")
	}

	// Simulated-cluster comparison: where both fit, and where only the
	// pencil method scales.
	m := machine.UMDCluster()
	slab, err := model.SimulateCube(m, n, n, model.Spec{Variant: pfft.Baseline}) // p = N: slab's limit
	if err != nil {
		log.Fatal(err)
	}
	pen, err := pencil.Simulate(m, 8, 4, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %s at p=%d: slab-1d %.4fs, pencil-2d %.4fs\n",
		m.Name, n, float64(slab.MaxTotal)/1e9, float64(pen)/1e9)
	if _, err := model.SimulateCube(m, 4*n, n, model.Spec{Variant: pfft.Baseline}); err != nil {
		fmt.Printf("slab-1d at p=%d: %v\n", 4*n, err)
	}
	big, err := pencil.Simulate(m, 16, 8, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pencil-2d at p=%d: %.4fs — scaling past the slab limit\n", 4*n, float64(big)/1e9)
	fmt.Println("OK")
}
