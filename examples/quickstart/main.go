// Quickstart: run a distributed forward 3-D FFT across in-process ranks
// and verify it against the serial reference transform.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/mem"
	"offt/internal/pfft"
)

func main() {
	const (
		n = 64 // N³ array
		p = 4  // ranks
	)

	// Build a random input and the serial reference answer.
	rng := rand.New(rand.NewSource(1))
	full := make([]complex128, n*n*n)
	for i := range full {
		full[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	ref := append([]complex128(nil), full...)
	fft.NewPlan3D(n, n, n, fft.Forward).Transform(ref)

	// Run the paper's NEW algorithm across p ranks (goroutines exchanging
	// real data through the in-memory MPI engine).
	world := mem.NewWorld(p)
	outs := make([][]complex128, p)
	breakdowns := make([]pfft.Breakdown, p)
	err := world.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(n, n, n, p, c.Rank())
		if err != nil {
			panic(err)
		}
		slab := layout.ScatterX(full, g) // this rank's x-slab
		prm := pfft.DefaultParams(g)     // or tune with package tuner
		out, b, err := pfft.Forward3D(c, g, slab, pfft.NEW, prm, fft.Estimate)
		if err != nil {
			panic(err)
		}
		outs[c.Rank()] = out
		breakdowns[c.Rank()] = b
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reassemble and compare.
	g0, _ := layout.NewGrid(n, n, n, p, 0)
	got := layout.GatherY(outs, n, n, n, p, pfft.OutputFast(pfft.NEW, g0))
	worst := 0.0
	for i := range got {
		if d := cmplx.Abs(got[i] - ref[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("distributed 3-D FFT of %d³ across %d ranks\n", n, p)
	fmt.Printf("max abs error vs serial reference: %.3e\n", worst)
	fmt.Printf("rank 0 breakdown: %v\n", breakdowns[0])
	if worst > 1e-8 {
		log.Fatal("verification failed")
	}
	fmt.Println("OK")
}
