// Quickstart: build a reusable distributed 3-D FFT plan, execute it
// against in-process ranks, and verify a forward/backward round trip.
// Only the public offt package is used — no internal imports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"offt"
)

func main() {
	const (
		n = 64 // N³ array
		p = 4  // ranks
	)

	// Validate the decomposition before allocating anything: NewPlan
	// performs the same check, but calling it up front gives a clear
	// errors.Is(err, offt.ErrBadShape) instead of a failure mid-setup.
	if err := offt.ValidateShape(n, n, n, p); err != nil {
		log.Fatal(err)
	}

	// Random input.
	rng := rand.New(rand.NewSource(1))
	data := make([]complex128, n*n*n)
	for i := range data {
		data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}

	// Build the plan once: the paper's NEW algorithm across p in-process
	// ranks. All buffer sizing and 1-D planning happens here; every
	// Forward/Backward below reuses the same slots and scratch.
	plan, err := offt.NewPlan(
		offt.WithGrid(n, n, n),
		offt.WithRanks(p),
		offt.WithVariant(offt.NEW),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()

	spectrum, err := plan.Forward(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed 3-D FFT of %d³ across %d ranks\n", n, p)
	fmt.Printf("avg breakdown: %v\n", plan.Breakdown())

	// Round trip: the pipeline is unnormalized, so Backward(Forward(x))
	// returns x scaled by N³.
	back, err := plan.Backward(spectrum)
	if err != nil {
		log.Fatal(err)
	}
	scale := complex(float64(n*n*n), 0)
	worst := 0.0
	for i := range back {
		if d := cmplx.Abs(back[i]/scale - data[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max abs round-trip error: %.3e\n", worst)
	if worst > 1e-8 {
		log.Fatal("verification failed")
	}
	fmt.Println("OK")
}
