#!/bin/sh
# Repo verification: tier-1 build+test, vet, the race detector over the
# concurrency-heavy packages (mem router, fault-injected transport, pfft
# chaos suite, pooled plan reuse), and the steady-state allocation gate.
set -eux

cd "$(dirname "$0")/.."

gofmt_out=$(gofmt -l .)
if [ -n "$gofmt_out" ]; then
    echo "gofmt needed on:" "$gofmt_out" >&2
    exit 1
fi

go build ./...
go vet ./...
go test ./...
go test -race ./internal/mpi/... ./internal/pfft/... ./internal/telemetry/ .

# Allocation gate: steady-state Forward/Backward on a reusable plan must
# run allocation-free (measured against the zero-alloc self communicator;
# see internal/pfft/plan_test.go). -count=1 defeats the test cache so the
# gate re-measures every run.
go test -run 'SteadyStateAllocs' -count=1 ./internal/pfft/

# Observability smoke run: a real experiment with telemetry attached must
# succeed and leave a non-empty metrics snapshot carrying the tuner's and
# the model's instrumentation.
go run ./cmd/offt-bench -scale small -metrics BENCH_PR3.json table2a
grep -q '"tuner.evals"' BENCH_PR3.json
grep -q '"model.new.overlap_efficiency"' BENCH_PR3.json

# Kernel-engine smoke benchmark: the batched Stockham paths must beat their
# per-row baselines (strided >= 1.5x at n=256, contiguous no-regression).
# offt-kernels exits nonzero and "pass" stays false when the gate fails.
go run ./cmd/offt-kernels -out BENCH_PR4.json
grep -q '"pass": true' BENCH_PR4.json
