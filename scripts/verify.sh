#!/bin/sh
# Repo verification: tier-1 build+test, vet, the race detector over the
# concurrency-heavy packages (mem router, fault-injected transport, pfft
# chaos suite, pooled plan reuse), and the steady-state allocation gate.
set -eux

cd "$(dirname "$0")/.."

gofmt_out=$(gofmt -l .)
if [ -n "$gofmt_out" ]; then
    echo "gofmt needed on:" "$gofmt_out" >&2
    exit 1
fi

go build ./...
go vet ./...
go test ./...
go test -race ./internal/mpi/... ./internal/pfft/... ./internal/telemetry/ ./internal/serve/ .

# Pencil leg of the race pass: the 2-D decomposition package plus the
# pencil-named suites — the slab-vs-pencil property tests in the root
# package and the serve lifecycle test (miss → hit → eviction over HTTP).
# -count=1 re-runs them even when the cached full-package pass above hit.
go test -race ./internal/pencil/
go test -race -count=1 -run 'Pencil' . ./internal/serve/

# Exchange-schedule leg (PR 9): the bit-identical property test drives
# all four all-to-all schedules (pairwise, bruck, hier, windowed) through
# the mem engine on both decompositions, forward and backward, under the
# race detector — multi-round schedules must stay race-free and route
# every block exactly where pairwise does.
go test -race -count=1 -run 'CommBitIdentical' .

# Net-engine leg (PR 10): the TCP transport's package tests under the
# race detector — all four exchange schedules over a real loopback mesh
# (raw alltoallv vs the mem engine bit for bit), the pfft parity tests on
# both decompositions (slab and pencil), the dissemination barrier, chaos
# recovery under forced drop/corrupt, and peer-loss world failure.
# -count=1 defeats the cache so the sockets are really opened every run.
go test -race -count=1 ./internal/mpi/envelope/ ./internal/mpi/net/

# Multi-process leg: spawn real offt-run -engine net children over
# 127.0.0.1, assert the forward/backward round-trip at 1e-9 and
# bit-identical dumps vs the mem engine, and assert survivors of a killed
# rank exit with the typed world failure instead of hanging.
go test -count=1 -run 'NetWorld' ./cmd/offt-run/

# Allocation gate: steady-state Forward/Backward on a reusable plan must
# run allocation-free (measured against the zero-alloc self communicator;
# see internal/pfft/plan_test.go) — one subtest per exchange schedule, so
# schedule plumbing cannot add per-run allocations. -count=1 defeats the
# test cache so the gate re-measures every run.
go test -run 'SteadyStateAllocs' -count=1 ./internal/pfft/

# Observability smoke run: a real experiment with telemetry attached must
# succeed and leave a non-empty metrics snapshot carrying the tuner's and
# the model's instrumentation.
go run ./cmd/offt-bench -scale small -metrics BENCH_PR3.json table2a
grep -q '"tuner.evals"' BENCH_PR3.json
grep -q '"model.new.overlap_efficiency"' BENCH_PR3.json

# Kernel-engine smoke benchmark: the batched Stockham paths must beat their
# per-row baselines (strided >= 1.5x at n=256, contiguous no-regression).
# offt-kernels exits nonzero and "pass" stays false when the gate fails.
go run ./cmd/offt-kernels -out BENCH_PR4.json
grep -q '"pass": true' BENCH_PR4.json

# Service-layer load test: self-hosted offt-serve driven by the closed-loop
# generator at 1x/4x/16x concurrency. Gates (offt-load exits nonzero on
# failure): clean 1x phase, throughput >= 0.45x the calibrated raw
# transform rate, 429 shedding at 16x, plan-cache hit rate > 90%.
go run ./cmd/offt-load -duration 2s -out BENCH_PR5.json
grep -q '"pass": true' BENCH_PR5.json
grep -q '"serve.plan_cache.hits"' BENCH_PR5.json

# Decomposition crossover gate (PR 7): at paper scale, some pencil point
# beyond the slab rank cap must beat the slab's best virtual time, and
# every slab row built through the plan API must match the cost model's
# default-NEW time exactly (no regression from the WithDecomp plumbing).
# offt-bench exits nonzero when a gate fails; grep double-checks the file.
go run ./cmd/offt-bench -scale paper -bench-out BENCH_PR7.json crossover
grep -q '"pass": true' BENCH_PR7.json
grep -q '"pencil_crossover": "ok' BENCH_PR7.json

# Exchange-schedule crossover gate (PR 9): the (p, decomp) × schedule
# sweep on the sim engine. Gates (offt-bench exits nonzero on failure):
# a plan pinned to pairwise must match the unpinned default exactly,
# Bruck must beat pairwise >= 1.3x at the latency-dominated point (one
# x-plane per rank, T=1), and the tuner searching the schedule dimension
# must land within 2% of a pairwise-only search at the 64^3/p=4 serving
# point.
go run ./cmd/offt-bench -scale small -bench-out BENCH_PR9.json comm-crossover
grep -q '"pass": true' BENCH_PR9.json
grep -q '"bruck_crossover": "ok' BENCH_PR9.json
grep -q '"tuner_parity": "ok' BENCH_PR9.json
grep -q '"pairwise_noregress": "ok' BENCH_PR9.json

# Chaos soak gate: offt-chaos boots the service in-process and soaks it
# under the escalating fault ladder (drop/corrupt/stall/mixed), injects
# administrative world kills, and SIGTERMs itself mid-chaos. It exits
# nonzero when any robustness invariant is violated: a client-observed
# hang, a wedged registry key, an unbounded error rate, a killed plan
# that never rebuilds, an unclean drain, or a goroutine leak.
go run ./cmd/offt-chaos -duration 700ms -out BENCH_PR6.json
grep -q '"pass": true' BENCH_PR6.json
grep -q '"kill_recovery": "ok' BENCH_PR6.json

# Observability overhead gate (PR 8): two in-process servers — full
# tracing + structured logging + flight recorder + SLO vs plain — driven
# by interleaved closed-loop segments under the race detector. offt-load
# exits nonzero when a gate fails: clean run both sides, tracing overhead
# <= 5% throughput, and a well-formed span tree (queue/acquire/exec chain,
# per-phase durations summing to exec latency, per-rank step spans) for a
# captured request of each decomposition, slab and pencil.
go run -race ./cmd/offt-load -obs-bench -grid 64 -ranks 4 -duration 8s -warmup 3 \
    -out BENCH_PR8.json
grep -q '"pass": true' BENCH_PR8.json
grep -q '"spans_pencil": "ok' BENCH_PR8.json

# offt-serve binary smoke: boot the real server with tracing and
# structured logs on, push 64-cubed p=4 transforms through the HTTP path
# with offt-load, scrape /metrics and the flight recorder, and shut the
# process down with SIGTERM to exercise the drain path.
go build -o /tmp/offt-serve-smoke ./cmd/offt-serve
/tmp/offt-serve-smoke -addr 127.0.0.1:18089 -trace -log-level info \
    -log-out /tmp/offt-serve-smoke.log &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
go run ./cmd/offt-load -addr 127.0.0.1:18089 -conc 1 -duration 1s -warmup 2 \
    -gate auto -out BENCH_PR5_smoke.json -wait-ready 10s
curl -sf http://127.0.0.1:18089/metrics | grep -q 'serve_plan_cache_hits'
curl -sf http://127.0.0.1:18089/metrics | grep -q 'serve_slo_transform_total'
curl -sf http://127.0.0.1:18089/healthz | grep -q '"slo"'
curl -sf http://127.0.0.1:18089/debug/requests | grep -q '"total_ns"'
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q '"pass": true' BENCH_PR5_smoke.json
grep -q '"event":"request.done"' /tmp/offt-serve-smoke.log

# 2-shard fleet smoke (PR 10): two offt-serve replicas with the
# consistent-hash router between them, driven round-robin by offt-load's
# comma-separated -addr. Every request names the same plan key, so one
# replica owns it and the other must forward — the healthz shard section
# of at least one replica must show a nonzero forward count. Both
# replicas then drain cleanly on SIGTERM.
/tmp/offt-serve-smoke -addr 127.0.0.1:18091 \
    -shard-of http://127.0.0.1:18091 \
    -peers http://127.0.0.1:18091,http://127.0.0.1:18092 &
SHARD1_PID=$!
/tmp/offt-serve-smoke -addr 127.0.0.1:18092 \
    -shard-of http://127.0.0.1:18092 \
    -peers http://127.0.0.1:18091,http://127.0.0.1:18092 &
SHARD2_PID=$!
trap 'kill "$SERVE_PID" "$SHARD1_PID" "$SHARD2_PID" 2>/dev/null || true' EXIT
go run ./cmd/offt-load -addr 127.0.0.1:18091,127.0.0.1:18092 -conc 1 \
    -duration 1s -warmup 2 -gate auto -out BENCH_PR10_smoke.json -wait-ready 10s
grep -q '"pass": true' BENCH_PR10_smoke.json
{ curl -sf http://127.0.0.1:18091/healthz || true; \
  curl -sf http://127.0.0.1:18092/healthz || true; } \
    | grep -q '"forwarded":[1-9]'
kill -TERM "$SHARD1_PID" "$SHARD2_PID"
wait "$SHARD1_PID"
wait "$SHARD2_PID"

# PR 10 benchmark: loopback-net-vs-mem engine overhead (bit-identical
# outputs required, wall-clock gated loosely) and forwarded-vs-direct
# serving latency through a 2-replica fleet with trace propagation and a
# clean double drain. offt-netbench exits nonzero when a gate fails.
go run ./cmd/offt-netbench -out BENCH_PR10.json
grep -q '"pass": true' BENCH_PR10.json
grep -q '"bit_identical": true' BENCH_PR10.json
grep -q '"trace_ok": true' BENCH_PR10.json

rm -f BENCH_PR5_smoke.json BENCH_PR10_smoke.json /tmp/offt-serve-smoke /tmp/offt-serve-smoke.log
