#!/bin/sh
# Repo verification: tier-1 build+test, then the race detector over the
# concurrency-heavy packages (mem router, fault-injected transport, pfft
# chaos suite).
set -eux

cd "$(dirname "$0")/.."

gofmt_out=$(gofmt -l .)
if [ -n "$gofmt_out" ]; then
    echo "gofmt needed on:" "$gofmt_out" >&2
    exit 1
fi

go build ./...
go test ./...
go test -race ./internal/mpi/... ./internal/pfft/...
