// Plan configuration as a first-class value: every option set NewPlan
// accepts resolves — through one shared path — to a canonical
// PlanDescription (geometry, decomposition, variant, engine, effective
// parameters, and where those parameters came from). The description is
// comparable, so the serve layer uses it directly as its plan-cache key,
// and every rejected option surfaces as one typed *ConfigError instead of
// ad-hoc formatted errors.
package offt

import (
	"errors"
	"fmt"
	"strings"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/pencil"
	"offt/internal/pfft"
	"offt/internal/tuned"
)

// Decomp selects the domain decomposition of a plan.
type Decomp int

const (
	// Slab is the paper's 1-D decomposition: whole x-slabs in, y-slabs
	// out, at most min(Nx, Ny) ranks. The zero value, so existing plans
	// that never mention a decomposition keep their exact behavior.
	Slab Decomp = iota
	// Pencil is the 2-D decomposition (the paper's §7 future work): a
	// Py×Pz process grid exchanging twice (row groups then column
	// groups), scaling past the slab rank cap to Nx·Ny ranks.
	Pencil
)

func (d Decomp) String() string {
	switch d {
	case Slab:
		return "slab"
	case Pencil:
		return "pencil"
	}
	return fmt.Sprintf("decomp(%d)", int(d))
}

// ParseDecomp resolves a decomposition from its wire/CLI name. The empty
// string means Slab, so omitted flags and absent JSON fields keep the
// backward-compatible default.
func ParseDecomp(s string) (Decomp, error) {
	switch strings.ToLower(s) {
	case "", "slab", "1d":
		return Slab, nil
	case "pencil", "2d":
		return Pencil, nil
	}
	return 0, &ConfigError{Field: "decomp", Value: s, Reason: "want slab (1d) or pencil (2d)"}
}

// WithDecomp selects the domain decomposition (default Slab). Pencil
// plans accept any rank count that factors into a feasible Py×Pz grid
// (auto-factored, or pinned via Params.Pr), support the Baseline, NEW and
// NEW0 variants on both engines, and reject the slab-only machinery
// (TH/TH0, WithWorkers > 1, WithTrace) with a *ConfigError.
func WithDecomp(d Decomp) Option { return func(c *config) { c.decomp = d } }

// ErrBadConfig is the sentinel every plan-configuration error wraps: any
// option set NewPlan or DescribePlan rejects — unknown variant, infeasible
// parameters, unsupported combination — surfaces as a *ConfigError
// matching this via errors.Is, so callers (the serve layer's 400 mapping)
// need no string matching. Shape errors additionally wrap ErrBadShape.
var ErrBadConfig = errors.New("offt: invalid plan configuration")

// ConfigError is the typed rejection of a plan option set: which option
// was wrong, what value it held, and the violated constraint in user
// terms. It wraps ErrBadConfig always and ErrBadShape when the rejection
// is geometric (so existing errors.Is(err, ErrBadShape) callers keep
// working).
type ConfigError struct {
	// Field names the offending option: "grid", "ranks", "decomp",
	// "variant", "engine", "machine", "workers", "params", "trace".
	Field string
	// Value renders the offending value ("" when the option was omitted).
	Value string
	// Reason states the violated constraint.
	Reason string

	shape bool  // geometry rejection: also an ErrBadShape
	cause error // wrapped inner error (e.g. a pfft validation error)
}

func (e *ConfigError) Error() string {
	if e.shape {
		return "offt: bad transform shape: " + e.Reason
	}
	if e.Value != "" {
		return fmt.Sprintf("offt: invalid %s (%s): %s", e.Field, e.Value, e.Reason)
	}
	return fmt.Sprintf("offt: invalid %s: %s", e.Field, e.Reason)
}

// Is matches ErrBadConfig for every configuration error, and ErrBadShape
// for the geometric ones.
func (e *ConfigError) Is(target error) bool {
	return target == ErrBadConfig || (e.shape && target == ErrBadShape)
}

// Unwrap exposes the inner validation error, when one exists.
func (e *ConfigError) Unwrap() error { return e.cause }

// shapeError builds the geometric flavor of ConfigError.
func shapeError(field, value, reason string) *ConfigError {
	return &ConfigError{Field: field, Value: value, Reason: reason, shape: true}
}

// ParamSource records where a plan's effective parameters came from, so
// cache keys built from descriptions stay canonical: a request spelling
// out the default point and one omitting parameters resolve identically.
type ParamSource int

const (
	// ParamsDefault: the §4.4 default point for the geometry.
	ParamsDefault ParamSource = iota
	// ParamsTuned: a tuned-store entry (WithTunedStore warm start).
	ParamsTuned
	// ParamsExplicit: caller-supplied via WithParams, different from what
	// the default/tuned resolution would have produced.
	ParamsExplicit
)

func (s ParamSource) String() string {
	switch s {
	case ParamsDefault:
		return "default"
	case ParamsTuned:
		return "tuned"
	case ParamsExplicit:
		return "explicit"
	}
	return fmt.Sprintf("source(%d)", int(s))
}

func (k EngineKind) String() string {
	switch k {
	case Mem:
		return "mem"
	case Sim:
		return "sim"
	}
	return fmt.Sprintf("engine(%d)", int(k))
}

// PlanDescription is the canonical identity of a plan: everything that
// determines what a plan computes and how, fully resolved (parameters are
// the effective set, the pencil process grid is factored). It is
// comparable — the serve layer uses it directly as its cache map key —
// and stable: two option sets that build behaviorally identical plans
// resolve to equal descriptions.
type PlanDescription struct {
	Nx, Ny, Nz int
	Ranks      int
	// Decomp is the domain decomposition; ProcRows is the resolved Py of
	// a pencil plan's Py×Pz process grid (0 for slab).
	Decomp   Decomp
	ProcRows int
	Variant  Variant
	Engine   EngineKind
	Workers  int
	// Machine is the machine-model / tuned-store host label ("laptop"
	// by default; meaningful to Sim plans and store lookups).
	Machine string
	// Params is the resolved effective parameter set (canonical: Pr is 0
	// for slab, the factored row count for pencil).
	Params Params
	// Provenance records where Params came from.
	Provenance ParamSource
}

// ProcCols is the resolved Pz of a pencil plan's process grid (0 for
// slab).
func (d PlanDescription) ProcCols() int {
	if d.Decomp != Pencil || d.ProcRows == 0 {
		return 0
	}
	return d.Ranks / d.ProcRows
}

// String renders the description as a stable cache-key / log form. Slab
// descriptions render exactly as the pre-pencil serve keys did, so
// operator tooling matching on key strings keeps working.
func (d PlanDescription) String() string {
	s := fmt.Sprintf("%dx%dx%d/p=%d/%v/%v/w=%d", d.Nx, d.Ny, d.Nz, d.Ranks, d.Variant, d.Engine, d.Workers)
	if d.Decomp == Pencil {
		s += fmt.Sprintf("/pencil=%dx%d", d.ProcRows, d.ProcCols())
	}
	if d.Params.Comm != CommPairwise {
		s += "/comm=" + d.Params.Comm.String()
	}
	return s
}

// DescribePlan resolves an option set to its canonical PlanDescription
// without building the plan: full validation, decomposition factoring,
// and parameter resolution (explicit > tuned store > default) happen
// exactly as in NewPlan, so the serve layer computes cache keys — and
// callers preview effective parameters — for free. Every rejection is a
// *ConfigError wrapping ErrBadConfig.
func DescribePlan(opts ...Option) (PlanDescription, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.resolve()
}

// NewPlanFrom builds a plan from a resolved description, preserving its
// provenance — the serve layer's build path, so the plan a key describes
// is exactly the plan the registry caches. Extra options supply the
// non-identity machinery (telemetry, faults, watchdog, tuned store);
// identity options (grid, decomp, variant, engine, params, ...) are
// already pinned by the description and must not be overridden.
func NewPlanFrom(d PlanDescription, opts ...Option) (*Plan, error) {
	base := []Option{
		WithGrid(d.Nx, d.Ny, d.Nz),
		WithRanks(d.Ranks),
		WithDecomp(d.Decomp),
		WithVariant(d.Variant),
		WithEngine(d.Engine),
		WithMachine(d.Machine),
		WithWorkers(d.Workers),
		WithParams(d.Params),
	}
	p, err := NewPlan(append(base, opts...)...)
	if err != nil {
		return nil, err
	}
	p.desc.Provenance = d.Provenance
	return p, nil
}

func defaultConfig() config {
	return config{ranks: 1, variant: NEW, machineName: "laptop", workers: 1}
}

// resolve is the single validation and resolution path behind NewPlan and
// DescribePlan: it checks every option, factors the pencil process grid,
// resolves effective parameters with provenance, and canonicalizes the
// result so equal behavior yields equal descriptions.
func (cfg *config) resolve() (PlanDescription, error) {
	if cfg.nx == 0 && cfg.ny == 0 && cfg.nz == 0 {
		return PlanDescription{}, shapeError("grid", "", "grid dimensions are required (use WithGrid)")
	}
	switch cfg.decomp {
	case Slab, Pencil:
	default:
		return PlanDescription{}, &ConfigError{Field: "decomp", Value: fmt.Sprint(int(cfg.decomp)), Reason: "want Slab or Pencil"}
	}
	switch cfg.engine {
	case Mem, Sim:
	default:
		return PlanDescription{}, &ConfigError{Field: "engine", Value: fmt.Sprint(int(cfg.engine)), Reason: "want Mem or Sim"}
	}
	switch cfg.variant {
	case Baseline, NEW, NEW0, TH, TH0:
	default:
		return PlanDescription{}, &ConfigError{Field: "variant", Value: fmt.Sprint(int(cfg.variant)), Reason: "want Baseline, NEW, NEW0, TH, or TH0"}
	}
	if cfg.engine == Sim {
		if _, err := machine.ByName(cfg.machineName); err != nil {
			return PlanDescription{}, &ConfigError{Field: "machine", Value: cfg.machineName, Reason: "unknown machine model (want umd-cluster, hopper, or laptop)", cause: err}
		}
	}
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}

	desc := PlanDescription{
		Nx: cfg.nx, Ny: cfg.ny, Nz: cfg.nz,
		Ranks:   cfg.ranks,
		Decomp:  cfg.decomp,
		Variant: cfg.variant,
		Engine:  cfg.engine,
		Workers: workers,
		Machine: cfg.machineName,
	}

	switch cfg.decomp {
	case Slab:
		if err := ValidateShape(cfg.nx, cfg.ny, cfg.nz, cfg.ranks); err != nil {
			return PlanDescription{}, err
		}
		return cfg.resolveSlab(desc)
	default:
		return cfg.resolvePencil(desc)
	}
}

// resolveSlab finishes resolution for the 1-D decomposition: parameter
// lookup, variant expansion/validation, and Pr canonicalization to 0.
func (cfg *config) resolveSlab(desc PlanDescription) (PlanDescription, error) {
	g0, err := layout.NewGrid(cfg.nx, cfg.ny, cfg.nz, cfg.ranks, 0)
	if err != nil {
		return PlanDescription{}, shapeError("grid", "", err.Error())
	}
	store, err := cfg.loadStore()
	if err != nil {
		return PlanDescription{}, err
	}
	lookup := func() (Params, ParamSource) {
		key := cfg.commKey(tuned.NewKey(cfg.machineName, cfg.nx, cfg.ny, cfg.nz, cfg.ranks, cfg.variant))
		if tp, ok := store.Lookup(key); ok {
			return cfg.pinComm(tp), ParamsTuned
		}
		return cfg.pinComm(pfft.DefaultParams(g0)), ParamsDefault
	}
	prm, src := lookup()
	if cfg.params != nil {
		prm, src = cfg.pinComm(*cfg.params), ParamsExplicit
	}
	if _, err := pfft.ExpandParams(cfg.variant, g0, prm); err != nil {
		return PlanDescription{}, &ConfigError{Field: "params", Value: prm.String(), Reason: "infeasible for the geometry", cause: err}
	}
	// Canonicalize: the slab path ignores the pencil process-grid row
	// count, so explicit params that only differ in Pr describe — and key
	// — the same plan.
	prm.Pr = 0
	if src == ParamsExplicit {
		if alt, altSrc := lookup(); prm == alt {
			src = altSrc
		}
	}
	desc.Params, desc.Provenance = prm, src
	return desc, nil
}

// resolvePencil finishes resolution for the 2-D decomposition: process-
// grid factoring (explicit Pr or the most nearly square feasible pair),
// the pencil-specific option restrictions, parameter lookup under the
// decomp-aware tuned key, and Pr canonicalization to the resolved rows.
func (cfg *config) resolvePencil(desc PlanDescription) (PlanDescription, error) {
	nx, ny, nz, ranks := cfg.nx, cfg.ny, cfg.nz, cfg.ranks
	switch {
	case nx < 1 || ny < 1 || nz < 1:
		return PlanDescription{}, shapeError("grid", "", fmt.Sprintf("grid %d×%d×%d has a non-positive dimension", nx, ny, nz))
	case ranks < 1:
		return PlanDescription{}, shapeError("ranks", "", fmt.Sprintf("rank count %d must be at least 1", ranks))
	}
	switch cfg.variant {
	case Baseline, NEW, NEW0:
	default:
		return PlanDescription{}, &ConfigError{Field: "variant", Value: cfg.variant.String(), Reason: "the pencil decomposition supports the Baseline, NEW, and NEW0 variants"}
	}
	if cfg.workers > 1 {
		return PlanDescription{}, &ConfigError{Field: "workers", Value: fmt.Sprint(cfg.workers), Reason: "intra-rank worker fan-out is slab-only"}
	}
	store, err := cfg.loadStore()
	if err != nil {
		return PlanDescription{}, err
	}

	// resolvePr factors the process grid a parameter set implies: an
	// explicit Pr pins the row count, 0 asks for the most nearly square
	// feasible factorization.
	resolvePr := func(prm Params) (int, int, error) {
		if prm.Pr == 0 {
			pr, pc, err := pencil.DefaultProcGrid(nx, ny, nz, ranks)
			if err != nil {
				return 0, 0, shapeError("ranks", "", err.Error())
			}
			return pr, pc, nil
		}
		if prm.Pr < 0 || ranks%prm.Pr != 0 {
			return 0, 0, &ConfigError{Field: "params", Value: prm.String(),
				Reason: fmt.Sprintf("Pr=%d does not divide the rank count %d", prm.Pr, ranks)}
		}
		pr, pc := prm.Pr, ranks/prm.Pr
		if _, err := pencil.NewGrid2D(nx, ny, nz, pr, pc, 0); err != nil {
			return 0, 0, shapeError("ranks", "", err.Error())
		}
		return pr, pc, nil
	}
	lookup := func() (Params, ParamSource, error) {
		key := cfg.commKey(tuned.NewKeyDecomp(cfg.machineName, nx, ny, nz, ranks, cfg.variant, Pencil.String()))
		if tp, ok := store.Lookup(key); ok {
			return cfg.pinComm(tp), ParamsTuned, nil
		}
		pr, pc, err := resolvePr(Params{})
		if err != nil {
			return Params{}, 0, err
		}
		g0, err := pencil.NewGrid2D(nx, ny, nz, pr, pc, 0)
		if err != nil {
			return Params{}, 0, shapeError("ranks", "", err.Error())
		}
		return cfg.pinComm(defaultPencilParams(g0)), ParamsDefault, nil
	}
	prm, src, err := lookup()
	if err != nil {
		return PlanDescription{}, err
	}
	if cfg.params != nil {
		prm, src = cfg.pinComm(*cfg.params), ParamsExplicit
	}
	pr, _, err := resolvePr(prm)
	if err != nil {
		return PlanDescription{}, err
	}
	switch {
	case prm.T < 1:
		return PlanDescription{}, &ConfigError{Field: "params", Value: prm.String(), Reason: "T must be at least 1"}
	case prm.W < 1:
		return PlanDescription{}, &ConfigError{Field: "params", Value: prm.String(), Reason: "W must be at least 1"}
	case prm.Fy < 0:
		return PlanDescription{}, &ConfigError{Field: "params", Value: prm.String(), Reason: "Fy must be non-negative"}
	case !prm.Comm.Valid():
		return PlanDescription{}, &ConfigError{Field: "params", Value: prm.String(), Reason: "Comm is not a known exchange schedule"}
	}
	// Canonicalize: the description and the plan pin the factored grid.
	prm.Pr = pr
	if src == ParamsExplicit {
		if alt, altSrc, err := lookup(); err == nil {
			if apr, _, err := resolvePr(alt); err == nil {
				alt.Pr = apr
				if prm == alt {
					src = altSrc
				}
			}
		}
	}
	desc.ProcRows = pr
	desc.Params, desc.Provenance = prm, src
	return desc, nil
}

// defaultPencilParams is the pencil counterpart of the §4.4 default
// point, expressed in the public parameter set: tile and window from
// DefaultParams2D, the unused slab tiling parameters pinned to 1.
func defaultPencilParams(g pencil.Grid2D) Params {
	d := pencil.DefaultParams2D(g)
	return Params{T: d.TA, W: d.WA, Px: 1, Pz: 1, Uy: 1, Uz: 1, Fy: d.F, Fp: d.F, Fu: d.F, Fx: d.F}
}

// TunedStore is a loaded tuned-parameter store (package tuned re-exported
// so long-lived callers — the serve layer — can share one parsed store
// across many plans instead of re-reading the file per NewPlan).
type TunedStore = tuned.Store

// WithTunedStoreHandle is WithTunedStore for an already-loaded store:
// parameter resolution consults it directly, with the same warm-start
// semantics. Takes precedence over WithTunedStore's path.
func WithTunedStoreHandle(s *TunedStore) Option {
	return func(c *config) { c.store = s }
}

// pinComm applies a WithComm pin to a resolved parameter set; without a
// pin the resolved Params.Comm (pairwise unless tuned otherwise) stands.
func (cfg *config) pinComm(prm Params) Params {
	if cfg.comm != nil {
		prm.Comm = *cfg.comm
	}
	return prm
}

// commKey qualifies a tuned-store key with the pinned exchange schedule;
// unpinned (and pinned-pairwise) lookups keep the historical key so
// pre-schedule store files keep resolving.
func (cfg *config) commKey(k tuned.Key) tuned.Key {
	if cfg.comm == nil {
		return k
	}
	return k.WithComm(cfg.comm.String())
}

// loadStore returns the tuned-params store when one was configured. A nil
// *tuned.Store is the valid empty store, so lookups need no guard.
func (cfg *config) loadStore() (*tuned.Store, error) {
	if cfg.store != nil {
		return cfg.store, nil
	}
	if cfg.storePath == "" {
		return nil, nil
	}
	store, err := tuned.Load(cfg.storePath)
	if err != nil {
		return nil, err
	}
	return store, nil
}
