module offt

go 1.24
