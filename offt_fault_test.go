package offt_test

import (
	"errors"
	"testing"
	"time"

	"offt"
	"offt/internal/fft"
)

// TestWithFaultsRoundTrip: under the canonical drop profile the
// self-healing transport must still produce the exact transform — the
// faults are healed (retransmits, checksum rejects, downgrades), never
// silently absorbed into the data.
func TestWithFaultsRoundTrip(t *testing.T) {
	const n = 12
	data := randData(n*n*n, 41)

	want := append([]complex128(nil), data...)
	fft.NewPlan3D(n, n, n, fft.Forward).Transform(want)

	plan, err := offt.NewPlan(
		offt.WithGrid(n, n, n),
		offt.WithRanks(4),
		offt.WithFaults(offt.FaultDrop, 7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	for it := 0; it < 3; it++ {
		got, err := plan.Forward(data)
		if err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
		if e := maxAbsDiff(got, want); e > 1e-9 {
			t.Fatalf("iteration %d: faulted transform differs from reference by %g", it, e)
		}
	}
	if plan.Downgrades() < 0 {
		t.Errorf("Downgrades() = %d, want non-negative", plan.Downgrades())
	}
}

// TestBlackholeWorldAborts: a world whose messages never arrive must be
// aborted by the hang watchdog and surface as a typed, inspectable
// ErrWorldFailed — not a wedge, not a panic. The failure must be sticky:
// later executions fail fast.
func TestBlackholeWorldAborts(t *testing.T) {
	const n = 8
	data := randData(n*n*n, 5)

	plan, err := offt.NewPlan(
		offt.WithGrid(n, n, n),
		offt.WithRanks(2),
		offt.WithFaultPlan(&offt.FaultPlan{Seed: 1, DropRate: 1}), // blackhole
		offt.WithWatchdog(150*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	_, err = plan.Forward(data)
	if err == nil {
		t.Fatal("Forward succeeded over a blackholed world")
	}
	if !errors.Is(err, offt.ErrWorldFailed) {
		t.Fatalf("Forward error = %v, want errors.Is(err, ErrWorldFailed)", err)
	}
	var we *offt.WorldError
	if !errors.As(err, &we) {
		t.Fatalf("Forward error %T does not unwrap to *offt.WorldError", err)
	}
	if plan.WorldErr() == nil {
		t.Error("WorldErr() = nil after a world failure")
	}

	// Sticky fail-fast: the second execution must not re-run (and re-hang)
	// the dead world.
	start := time.Now()
	if _, err := plan.Forward(data); !errors.Is(err, offt.ErrWorldFailed) {
		t.Errorf("second Forward error = %v, want ErrWorldFailed", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("second Forward took %v; want fail-fast on the sticky failure", elapsed)
	}
}

// TestPlanFail: the administrative kill switch fails the world from the
// outside (the serve request watchdog's path) and every subsequent
// execution reports the typed failure.
func TestPlanFail(t *testing.T) {
	const n = 8
	plan, err := offt.NewPlan(offt.WithGrid(n, n, n), offt.WithRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	data := randData(n*n*n, 3)
	if _, err := plan.Forward(data); err != nil {
		t.Fatalf("healthy Forward: %v", err)
	}

	cause := errors.New("request watchdog fired")
	plan.Fail(cause)
	_, err = plan.Forward(data)
	if !errors.Is(err, offt.ErrWorldFailed) {
		t.Fatalf("Forward after Fail = %v, want ErrWorldFailed", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("Forward after Fail = %v, want the administrative cause in the chain", err)
	}

	// Quarantine teardown Closes failed plans while straggler requests may
	// still race in: the world failure must outrank the closed flag so the
	// straggler sees the typed error, not "closed plan".
	if err := plan.Close(); err != nil && !errors.Is(err, offt.ErrWorldFailed) {
		t.Logf("Close of failed plan: %v", err)
	}
	_, err = plan.Forward(data)
	if !errors.Is(err, offt.ErrWorldFailed) {
		t.Fatalf("Forward after Fail+Close = %v, want ErrWorldFailed", err)
	}
}

// TestWatchdogDisabled: WithWatchdog(0) must build a working plan (the
// debugger-session escape hatch) — transforms on a healthy world succeed.
func TestWatchdogDisabled(t *testing.T) {
	const n = 8
	plan, err := offt.NewPlan(
		offt.WithGrid(n, n, n),
		offt.WithRanks(2),
		offt.WithWatchdog(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	if _, err := plan.Forward(randData(n*n*n, 9)); err != nil {
		t.Fatalf("Forward with watchdog disabled: %v", err)
	}
}

// TestParseFaultProfile: the public profile parser accepts every canonical
// name and rejects junk.
func TestParseFaultProfile(t *testing.T) {
	for _, name := range []string{"none", "drop", "corrupt", "stall", "mixed"} {
		if _, err := offt.ParseFaultProfile(name); err != nil {
			t.Errorf("ParseFaultProfile(%q): %v", name, err)
		}
	}
	if _, err := offt.ParseFaultProfile("tornado"); err == nil {
		t.Error("ParseFaultProfile accepted an unknown profile")
	}
}
