package model

import (
	"fmt"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/mpi/fault"
	"offt/internal/mpi/sim"
	"offt/internal/pfft"
	"offt/internal/simnet"
)

// Spec describes one simulated 3-D FFT run.
type Spec struct {
	Variant pfft.Variant
	Params  pfft.Params   // used by NEW / NEW0
	TH      pfft.THParams // used by TH / TH0
	// Faults, when set, degrades the fabric in virtual time (NIC stalls,
	// slow-NIC and link factors; see fault.Plan). Per-message payload
	// faults do not apply to the simulated engine.
	Faults *fault.Plan
}

// NewSpec builds a Spec for the paper's design.
func NewSpec(prm pfft.Params) Spec { return Spec{Variant: pfft.NEW, Params: prm} }

// Result aggregates the per-rank breakdowns of one simulated run.
type Result struct {
	PerRank []pfft.Breakdown
	// Avg is the per-step average over ranks (what Fig. 8 plots).
	Avg pfft.Breakdown
	// MaxTotal is the job completion time: the slowest rank's total.
	MaxTotal int64
	// MaxTuned is the slowest rank's total excluding FFTz and Transpose —
	// the auto-tuner's objective (§4.4 technique 3).
	MaxTuned int64
	// Net is the fabric's activity counters, including fault-injection
	// stats when Spec.Faults was set.
	Net simnet.Stats
}

// Simulate runs one 3-D FFT of shape nx×ny×nz over p simulated ranks on
// machine m and returns the aggregated result. It is deterministic.
func Simulate(m machine.Machine, p, nx, ny, nz int, spec Spec) (Result, error) {
	if _, err := layout.NewGrid(nx, ny, nz, p, 0); err != nil {
		return Result{}, err
	}
	w := sim.NewWorld(m, p)
	if spec.Faults != nil {
		w.InjectFaults(spec.Faults)
	}
	res := Result{PerRank: make([]pfft.Breakdown, p)}
	var runErr error
	err := w.Run(func(c *sim.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err) // checked above for rank 0; identical for others
		}
		e := NewEngine(m, g, c)
		var b pfft.Breakdown
		switch spec.Variant {
		case pfft.TH:
			b, err = pfft.RunTH(e, spec.TH)
		case pfft.TH0:
			b, err = pfft.RunTH0(e, spec.TH)
		case pfft.NEW0:
			b, err = pfft.RunNEW0(e, spec.Params)
		default:
			b, err = pfft.Run(e, spec.Variant, spec.Params)
		}
		if err != nil {
			if c.Rank() == 0 {
				runErr = err
			}
			return
		}
		res.PerRank[c.Rank()] = b
	})
	if err != nil {
		return Result{}, fmt.Errorf("model: simulation failed: %w", err)
	}
	if runErr != nil {
		return Result{}, runErr
	}
	for _, b := range res.PerRank {
		res.Avg.Add(b)
		if b.Total > res.MaxTotal {
			res.MaxTotal = b.Total
		}
		if t := b.TunedPortion(); t > res.MaxTuned {
			res.MaxTuned = t
		}
	}
	res.Avg.Scale(int64(p))
	res.Net = w.Fabric().Stats
	return res, nil
}

// SimulateCube is Simulate for the paper's cubic N³ arrays.
func SimulateCube(m machine.Machine, p, n int, spec Spec) (Result, error) {
	return Simulate(m, p, n, n, n, spec)
}
