package model

import (
	"fmt"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/mpi/fault"
	"offt/internal/mpi/sim"
	"offt/internal/pfft"
	"offt/internal/simnet"
)

// Spec describes one simulated 3-D FFT run.
type Spec struct {
	Variant pfft.Variant
	Params  pfft.Params   // used by NEW / NEW0
	TH      pfft.THParams // used by TH / TH0
	// Faults, when set, degrades the fabric in virtual time (NIC stalls,
	// slow-NIC and link factors; see fault.Plan). Per-message payload
	// faults do not apply to the simulated engine.
	Faults *fault.Plan
}

// NewSpec builds a Spec for the paper's design.
func NewSpec(prm pfft.Params) Spec { return Spec{Variant: pfft.NEW, Params: prm} }

// params folds the spec's two parameter forms into the single set the
// collapsed pfft.Run dispatch expects: TH/TH0 carry their three parameters
// in T, W and Fy (Run expands the whole-tile restrictions internally).
func (s Spec) params() pfft.Params {
	switch s.Variant {
	case pfft.TH, pfft.TH0:
		if s.TH == (pfft.THParams{}) {
			// TH described through the full set: keep its T/W/Fy.
			return pfft.Params{T: s.Params.T, W: s.Params.W, Fy: s.Params.Fy}
		}
		return pfft.Params{T: s.TH.T, W: s.TH.W, Fy: s.TH.F}
	default:
		return s.Params
	}
}

// Result aggregates the per-rank breakdowns of one simulated run.
type Result struct {
	PerRank []pfft.Breakdown
	// Avg is the per-step average over ranks (what Fig. 8 plots).
	Avg pfft.Breakdown
	// MaxTotal is the job completion time: the slowest rank's total.
	MaxTotal int64
	// MaxTuned is the slowest rank's total excluding FFTz and Transpose —
	// the auto-tuner's objective (§4.4 technique 3).
	MaxTuned int64
	// Net is the fabric's activity counters, including fault-injection
	// stats when Spec.Faults was set.
	Net simnet.Stats
}

// Simulate runs one 3-D FFT of shape nx×ny×nz over p simulated ranks on
// machine m and returns the aggregated result. It is deterministic.
func Simulate(m machine.Machine, p, nx, ny, nz int, spec Spec) (Result, error) {
	if _, err := layout.NewGrid(nx, ny, nz, p, 0); err != nil {
		return Result{}, err
	}
	w := sim.NewWorld(m, p)
	if spec.Faults != nil {
		w.InjectFaults(spec.Faults)
	}
	res := Result{PerRank: make([]pfft.Breakdown, p)}
	var runErr error
	err := w.Run(func(c *sim.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err) // checked above for rank 0; identical for others
		}
		e := NewEngine(m, g, c)
		b, err := pfft.Run(e, spec.Variant, spec.params())
		if err != nil {
			if c.Rank() == 0 {
				runErr = err
			}
			return
		}
		res.PerRank[c.Rank()] = b
	})
	if err != nil {
		return Result{}, fmt.Errorf("model: simulation failed: %w", err)
	}
	if runErr != nil {
		return Result{}, runErr
	}
	for _, b := range res.PerRank {
		res.Avg.Add(b)
		if b.Total > res.MaxTotal {
			res.MaxTotal = b.Total
		}
		if t := b.TunedPortion(); t > res.MaxTuned {
			res.MaxTuned = t
		}
	}
	res.Avg.Scale(int64(p))
	res.Net = w.Fabric().Stats
	return res, nil
}

// SimulateCube is Simulate for the paper's cubic N³ arrays.
func SimulateCube(m machine.Machine, p, n int, spec Spec) (Result, error) {
	return Simulate(m, p, n, n, n, spec)
}

// SimulateSteady charges the Plan lifecycle in virtual time: iters
// transforms run back-to-back in ONE simulated world, each rank reusing
// one engine — the cost-model mirror of pfft.Plan's create-once /
// execute-many steady state. The per-rank breakdowns (and Avg, MaxTotal,
// MaxTuned) accumulate over all iterations, so Result.MaxTotal is the
// virtual completion time of the whole batch on the slowest rank.
func SimulateSteady(m machine.Machine, p, nx, ny, nz int, spec Spec, iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("model: SimulateSteady iters %d < 1", iters)
	}
	if _, err := layout.NewGrid(nx, ny, nz, p, 0); err != nil {
		return Result{}, err
	}
	w := sim.NewWorld(m, p)
	if spec.Faults != nil {
		w.InjectFaults(spec.Faults)
	}
	res := Result{PerRank: make([]pfft.Breakdown, p)}
	var runErr error
	err := w.Run(func(c *sim.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err)
		}
		e := NewEngine(m, g, c)
		acc := &res.PerRank[c.Rank()]
		for it := 0; it < iters; it++ {
			b, err := pfft.Run(e, spec.Variant, spec.params())
			if err != nil {
				if c.Rank() == 0 {
					runErr = err
				}
				return
			}
			acc.Add(b)
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("model: steady simulation failed: %w", err)
	}
	if runErr != nil {
		return Result{}, runErr
	}
	for _, b := range res.PerRank {
		res.Avg.Add(b)
		if b.Total > res.MaxTotal {
			res.MaxTotal = b.Total
		}
		if t := b.TunedPortion(); t > res.MaxTuned {
			res.MaxTuned = t
		}
	}
	res.Avg.Scale(int64(p))
	res.Net = w.Fabric().Stats
	return res, nil
}
