// Package model implements the cost-model engine: a pfft.Engine whose
// kernels charge calibrated virtual time (from a machine.Machine) to the
// rank's simulated clock instead of doing arithmetic, while communication
// goes through the simulated fabric (mpi/sim). Together with the identical
// control flow of the shared algorithm body, this reproduces the paper's
// performance phenomena at paper scale without allocating paper-scale
// arrays:
//
//   - 1-D FFT cost ∝ N·log₂N per row;
//   - Pack/Unpack cost with a cache-fit model over the sub-tile working
//     set: a fixed per-sub-tile overhead penalizes tiny sub-tiles and a
//     miss penalty ramps up once the sub-tile overflows the L2 — giving
//     the loop-tiling parameters (Px, Pz, Uy, Uz) the sweet spot the
//     auto-tuner hunts for (§3.4);
//   - the §3.5 fast transpose is cheaper per element;
//   - every MPI call charges its CPU overhead, so excessive Test
//     frequencies cost real time (§3.3).
package model

import (
	"math"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/mpi"
	"offt/internal/mpi/sim"
	"offt/internal/pfft"
)

// thTransposeFactor is how much slower TH's plain memory rearrangement is
// than the optimized (FFTW-guru-like) transpose, per element.
const thTransposeFactor = 1.7

// Engine charges model costs for one simulated rank.
type Engine struct {
	g    layout.Grid
	c    *sim.Comm
	m    machine.Machine
	cnts struct{ send, recv []int }
}

var _ pfft.Engine = (*Engine)(nil)

// NewEngine builds the cost-model engine for one rank of a simulated world.
func NewEngine(m machine.Machine, g layout.Grid, c *sim.Comm) *Engine {
	e := &Engine{g: g, c: c, m: m}
	e.cnts.send = make([]int, g.P)
	e.cnts.recv = make([]int, g.P)
	return e
}

// Grid returns the rank's geometry.
func (e *Engine) Grid() layout.Grid { return e.g }

// Comm returns the rank's simulated communicator.
func (e *Engine) Comm() mpi.Comm { return e.c }

// fftRowNs returns the model cost of one length-n 1-D FFT.
func (e *Engine) fftRowNs(n int) float64 {
	if n < 2 {
		return e.m.Cmp.FFTNsPerUnit
	}
	return e.m.Cmp.FFTNsPerUnit * float64(n) * math.Log2(float64(n))
}

// cacheFactor returns the Pack/Unpack per-element multiplier for a sub-tile
// working set of the given size: 1 when it fits comfortably (≤ L2/2),
// ramping linearly to MissPenaltyFactor at ≥ 4·L2.
func (e *Engine) cacheFactor(bytes int64) float64 {
	c := e.m.Cmp.CacheBytes
	lo := c / 2
	hi := 4 * c
	switch {
	case bytes <= lo:
		return 1
	case bytes >= hi:
		return e.m.Cmp.MissPenaltyFactor
	default:
		frac := float64(bytes-lo) / float64(hi-lo)
		return 1 + (e.m.Cmp.MissPenaltyFactor-1)*frac
	}
}

// copyCost returns the model cost of packing/unpacking `elems` elements as
// one sub-tile.
func (e *Engine) copyCost(elems int) int64 {
	bytes := int64(elems) * mpi.Elem16
	perElem := e.m.Cmp.MemNsPerElem * e.cacheFactor(bytes)
	fixed := e.m.Cmp.SubtileOverheadNs + e.m.Cmp.PackPerDestNs*float64(e.g.P)
	return int64(fixed + float64(elems)*perElem)
}

// FFTz charges the cost of xc·Ny transforms of length Nz.
func (e *Engine) FFTz() {
	rows := e.g.XC() * e.g.Ny
	e.c.Advance(int64(float64(rows) * e.fftRowNs(e.g.Nz)))
}

// Transpose charges the rearrangement cost of the whole slab.
func (e *Engine) Transpose(fast, optimized bool) {
	per := e.m.Cmp.TransposeNsPerElem
	if fast {
		per = e.m.Cmp.TransposeFastNsPerElem
	} else if !optimized {
		per *= thTransposeFactor
	}
	e.c.Advance(int64(float64(e.g.InSize()) * per))
}

// FFTySub charges (z1−z0)·(x1−x0) transforms of length Ny.
func (e *Engine) FFTySub(fast bool, zt0, z0, z1, x0, x1 int) {
	rows := (z1 - z0) * (x1 - x0)
	e.c.Advance(int64(float64(rows) * e.fftRowNs(e.g.Ny)))
}

// PackSub charges the loop-tiled pack cost of one sub-tile.
func (e *Engine) PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int) {
	elems := (z1 - z0) * (x1 - x0) * e.g.Ny
	e.c.Advance(e.copyCost(elems))
}

// PostTile starts the simulated non-blocking all-to-all for one tile.
func (e *Engine) PostTile(slot int, ztl int) mpi.Request {
	e.g.SendCounts(ztl, e.cnts.send)
	e.g.RecvCounts(ztl, e.cnts.recv)
	return e.c.Ialltoallv(nil, e.cnts.send, nil, e.cnts.recv)
}

// AlltoallTile performs the simulated blocking all-to-all for one tile.
func (e *Engine) AlltoallTile(slot int, ztl int) {
	e.g.SendCounts(ztl, e.cnts.send)
	e.g.RecvCounts(ztl, e.cnts.recv)
	e.c.Alltoallv(nil, e.cnts.send, nil, e.cnts.recv)
}

// UnpackSub charges the loop-tiled unpack cost of one sub-tile.
func (e *Engine) UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int) {
	elems := (z1 - z0) * (y1 - y0) * e.g.Nx
	e.c.Advance(e.copyCost(elems))
}

// FFTxSub charges (z1−z0)·(y1−y0) transforms of length Nx.
func (e *Engine) FFTxSub(fast bool, zt0, z0, z1, y0, y1 int) {
	rows := (z1 - z0) * (y1 - y0)
	e.c.Advance(int64(float64(rows) * e.fftRowNs(e.g.Nx)))
}
