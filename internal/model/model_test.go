package model

import (
	"testing"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/pfft"
)

func gridFor(t *testing.T, p, n int) layout.Grid {
	t.Helper()
	g, err := layout.NewGrid(n, n, n, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimulateDeterministic(t *testing.T) {
	m := machine.UMDCluster()
	g := gridFor(t, 4, 32)
	spec := Spec{Variant: pfft.NEW, Params: pfft.DefaultParams(g)}
	a, err := SimulateCube(m, 4, 32, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateCube(m, 4, 32, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxTotal != b.MaxTotal || a.Avg != b.Avg {
		t.Errorf("nondeterministic simulation: %v vs %v", a.MaxTotal, b.MaxTotal)
	}
}

func TestSimulateRejectsBadShape(t *testing.T) {
	if _, err := SimulateCube(machine.Laptop(), 8, 4, Spec{Variant: pfft.Baseline}); err == nil {
		t.Error("expected error for N < p")
	}
}

func TestSimulateRejectsBadParams(t *testing.T) {
	if _, err := SimulateCube(machine.Laptop(), 2, 16, Spec{Variant: pfft.NEW, Params: pfft.Params{T: 0}}); err == nil {
		t.Error("expected validation error")
	}
}

func TestOverlapBeatsNoOverlap(t *testing.T) {
	// The headline phenomenon: NEW < NEW-0 ≈ FFTW on a comm-heavy machine.
	m := machine.UMDCluster()
	p, n := 8, 64
	g := gridFor(t, p, n)
	prm := pfft.DefaultParams(g)
	newRes, err := SimulateCube(m, p, n, Spec{Variant: pfft.NEW, Params: prm})
	if err != nil {
		t.Fatal(err)
	}
	new0, err := SimulateCube(m, p, n, Spec{Variant: pfft.NEW0, Params: prm})
	if err != nil {
		t.Fatal(err)
	}
	if !(newRes.MaxTotal < new0.MaxTotal) {
		t.Errorf("NEW (%d) not faster than NEW-0 (%d)", newRes.MaxTotal, new0.MaxTotal)
	}
	// Fig. 8: the overlap collapses Wait time.
	if !(newRes.Avg.Wait < new0.Avg.Wait/2) {
		t.Errorf("NEW Wait %d should be far below NEW-0 Wait %d", newRes.Avg.Wait, new0.Avg.Wait)
	}
}

func TestTHWaitStaysLong(t *testing.T) {
	// TH overlaps only FFTy+Pack, so its Wait stays much longer than NEW's
	// (Fig. 8 discussion).
	m := machine.UMDCluster()
	p, n := 8, 64
	g := gridFor(t, p, n)
	newRes, err := SimulateCube(m, p, n, Spec{Variant: pfft.NEW, Params: pfft.DefaultParams(g)})
	if err != nil {
		t.Fatal(err)
	}
	thRes, err := SimulateCube(m, p, n, Spec{Variant: pfft.TH, TH: pfft.DefaultTHParams(g)})
	if err != nil {
		t.Fatal(err)
	}
	if !(newRes.Avg.Wait < thRes.Avg.Wait) {
		t.Errorf("NEW Wait %d should be below TH Wait %d", newRes.Avg.Wait, thRes.Avg.Wait)
	}
}

func TestCacheFactorSweetSpot(t *testing.T) {
	m := machine.UMDCluster()
	g := gridFor(t, 1, 8)
	e := NewEngine(m, g, nil)
	tiny := e.copyCost(8) * 1024 / 8 // per-element cost scaled: 1024 subtiles of 8 elems... compare totals below instead
	_ = tiny
	// Total cost of copying 64K elements in sub-tiles of various sizes:
	total := func(sub int) int64 {
		n := 65536
		var sum int64
		for done := 0; done < n; done += sub {
			c := sub
			if n-done < c {
				c = n - done
			}
			sum += e.copyCost(c)
		}
		return sum
	}
	tinyT := total(16)      // huge loop overhead
	midT := total(8192)     // ~128 KB: fits in half the 512 KB L2
	hugeT := total(1 << 20) // far beyond cache
	if !(midT < tinyT) {
		t.Errorf("mid sub-tile (%d) should beat tiny (%d)", midT, tinyT)
	}
	if !(midT < hugeT) {
		t.Errorf("mid sub-tile (%d) should beat huge (%d)", midT, hugeT)
	}
}

func TestCommRatioGrowsWithP(t *testing.T) {
	// §5.2: the all-to-all gets relatively more expensive at larger p.
	m := machine.UMDCluster()
	ratio := func(p int) float64 {
		// N large enough that per-pair blocks stay above the eager
		// threshold at both p values (same protocol regime).
		res, err := SimulateCube(m, p, 128, Spec{Variant: pfft.Baseline})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Avg.CommVisible()) / float64(res.Avg.Total)
	}
	if r8, r16 := ratio(8), ratio(16); !(r16 > r8) {
		t.Errorf("comm ratio should grow with p: p=8 %.3f, p=16 %.3f", r8, r16)
	}
}

func TestUMDGainsMoreThanHopper(t *testing.T) {
	// Fig. 7: overlap buys more on the comm-heavy UMD cluster.
	speedup := func(m machine.Machine) float64 {
		p, n := 8, 64
		g := gridFor(t, p, n)
		fftw, err := SimulateCube(m, p, n, Spec{Variant: pfft.Baseline})
		if err != nil {
			t.Fatal(err)
		}
		nw, err := SimulateCube(m, p, n, Spec{Variant: pfft.NEW, Params: pfft.DefaultParams(g)})
		if err != nil {
			t.Fatal(err)
		}
		return float64(fftw.MaxTotal) / float64(nw.MaxTotal)
	}
	umd, hop := speedup(machine.UMDCluster()), speedup(machine.Hopper())
	if !(umd > hop) {
		t.Errorf("UMD speedup %.3f should exceed Hopper speedup %.3f", umd, hop)
	}
}

func TestFastTransposeCheaper(t *testing.T) {
	m := machine.Hopper()
	p, n := 4, 64
	g := gridFor(t, p, n)
	prm := pfft.DefaultParams(g)
	fast, err := SimulateCube(m, p, n, Spec{Variant: pfft.NEW, Params: prm})
	if err != nil {
		t.Fatal(err)
	}
	// TH uses the plain transpose; compare the Transpose buckets.
	slow, err := SimulateCube(m, p, n, Spec{Variant: pfft.TH, TH: pfft.DefaultTHParams(g)})
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.Avg.Transpose < slow.Avg.Transpose) {
		t.Errorf("fast transpose %d should beat TH transpose %d", fast.Avg.Transpose, slow.Avg.Transpose)
	}
}

func TestTestFrequencyTradeoff(t *testing.T) {
	// Zero test frequency strangles rendezvous progression; absurdly high
	// frequency wastes CPU. A moderate frequency should beat both.
	m := machine.UMDCluster()
	p, n := 8, 128
	g := gridFor(t, p, n)
	at := func(f int) int64 {
		prm := pfft.DefaultParams(g)
		// Tile size chosen so per-pair messages exceed the eager threshold
		// (rendezvous), which is where manual progression matters.
		prm.T = 16
		prm.Fy, prm.Fp, prm.Fu, prm.Fx = f, f, f, f
		res, err := SimulateCube(m, p, n, Spec{Variant: pfft.NEW, Params: prm})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxTotal
	}
	zero, mid, crazy := at(0), at(4), at(4096)
	if !(mid < zero) {
		t.Errorf("some progression (%d) should beat none (%d)", mid, zero)
	}
	if !(mid < crazy) {
		t.Errorf("moderate frequency (%d) should beat excessive (%d)", mid, crazy)
	}
}
