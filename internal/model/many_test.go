package model

import (
	"testing"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/mpi/sim"
	"offt/internal/pfft"
)

func TestInterArrayOverlapHelpsInSim(t *testing.T) {
	// The Kandalla-style inter-array pipeline (pfft.RunMany) only pays off
	// with multiple independent arrays: window 3 must beat window 1 (no
	// overlap) on a comm-heavy simulated machine.
	mch := machine.UMDCluster()
	run := func(window int) int64 {
		const p, n, arrays = 8, 64, 6
		w := sim.NewWorld(mch, p)
		var end int64
		err := w.Run(func(c *sim.Comm) {
			g, err := layout.NewGrid(n, n, n, p, c.Rank())
			if err != nil {
				panic(err)
			}
			engines := make([]pfft.Engine, arrays)
			for i := range engines {
				engines[i] = NewEngine(mch, g, c)
			}
			if _, err := pfft.RunMany(engines, window); err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				end = c.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	noOverlap, overlapped := run(1), run(3)
	if !(overlapped < noOverlap) {
		t.Errorf("inter-array overlap did not help: window3=%d window1=%d", overlapped, noOverlap)
	}
}

func TestInterArrayBreakdownsRecorded(t *testing.T) {
	mch := machine.Hopper()
	const p, n, arrays = 4, 32, 3
	w := sim.NewWorld(mch, p)
	err := w.Run(func(c *sim.Comm) {
		g, err := layout.NewGrid(n, n, n, p, c.Rank())
		if err != nil {
			panic(err)
		}
		engines := make([]pfft.Engine, arrays)
		for i := range engines {
			engines[i] = NewEngine(mch, g, c)
		}
		bs, err := pfft.RunMany(engines, 2)
		if err != nil {
			panic(err)
		}
		for i, b := range bs {
			if b.Total <= 0 || b.FFTz <= 0 || b.FFTx <= 0 {
				t.Errorf("array %d: incomplete breakdown %+v", i, b)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
