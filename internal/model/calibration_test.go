package model

import (
	"testing"
	"time"

	"offt/internal/machine"
	"offt/internal/pfft"
)

// TestCalibrationReport logs simulated times for a slice of the paper's
// Table 2 settings next to the published numbers. Run with -v to inspect.
// It asserts only the shape constraints; absolute values are informative.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	type row struct {
		mach           string
		p, n           int
		fftw, new_, th float64 // paper numbers, seconds
	}
	rows := []row{
		{"umd-cluster", 16, 256, 0.369, 0.245, 0.319},
		{"umd-cluster", 32, 256, 0.189, 0.153, 0.197},
		{"umd-cluster", 16, 384, 1.207, 0.725, 1.063},
		{"umd-cluster", 32, 640, 3.129, 2.158, 3.061},
		{"hopper", 16, 256, 0.096, 0.087, 0.106},
		{"hopper", 32, 256, 0.061, 0.046, 0.061},
		{"hopper", 32, 640, 0.920, 0.747, 0.930},
	}
	for _, r := range rows {
		m, err := machine.ByName(r.mach)
		if err != nil {
			t.Fatal(err)
		}
		g := gridFor(t, r.p, r.n)
		prm := pfft.DefaultParams(g)
		th := pfft.DefaultTHParams(g)

		fftw, err := SimulateCube(m, r.p, r.n, Spec{Variant: pfft.Baseline})
		if err != nil {
			t.Fatal(err)
		}
		newRes, err := SimulateCube(m, r.p, r.n, Spec{Variant: pfft.NEW, Params: prm})
		if err != nil {
			t.Fatal(err)
		}
		thRes, err := SimulateCube(m, r.p, r.n, Spec{Variant: pfft.TH, TH: th})
		if err != nil {
			t.Fatal(err)
		}
		sec := func(ns int64) float64 { return time.Duration(ns).Seconds() }
		t.Logf("%-12s p=%-3d N=%4d  FFTW %.3f (paper %.3f)  NEW %.3f (paper %.3f)  TH %.3f (paper %.3f)  speedup %.2fx (paper %.2fx)",
			r.mach, r.p, r.n,
			sec(fftw.MaxTotal), r.fftw,
			sec(newRes.MaxTotal), r.new_,
			sec(thRes.MaxTotal), r.th,
			sec(fftw.MaxTotal)/sec(newRes.MaxTotal), r.fftw/r.new_)

		if !(newRes.MaxTotal < fftw.MaxTotal) {
			t.Errorf("%s p=%d N=%d: NEW (%v) not faster than FFTW (%v)", r.mach, r.p, r.n,
				time.Duration(newRes.MaxTotal), time.Duration(fftw.MaxTotal))
		}
		if !(newRes.MaxTotal < thRes.MaxTotal) {
			t.Errorf("%s p=%d N=%d: NEW (%v) not faster than TH (%v)", r.mach, r.p, r.n,
				time.Duration(newRes.MaxTotal), time.Duration(thRes.MaxTotal))
		}
	}
}
