// Package stats provides the small statistical helpers the experiment
// harness uses: empirical CDFs (Fig. 5), percentiles and percentile ranks
// (§5.3.1), and speedup arithmetic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF of the samples, one point per sample,
// sorted ascending. NaN and +Inf samples are dropped.
func CDF(samples []float64) []CDFPoint {
	xs := clean(samples)
	out := make([]CDFPoint, len(xs))
	n := float64(len(xs))
	for i, v := range xs {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / n}
	}
	return out
}

// CDFAt returns k evenly spaced points of the empirical CDF (for compact
// printing of Fig. 5).
func CDFAt(samples []float64, k int) []CDFPoint {
	full := CDF(samples)
	if k <= 0 || len(full) == 0 {
		return nil
	}
	if k > len(full) {
		k = len(full)
	}
	out := make([]CDFPoint, 0, k)
	for i := 1; i <= k; i++ {
		idx := i*len(full)/k - 1
		out = append(out, full[idx])
	}
	return out
}

// Percentile returns the q-th percentile (0..100) by nearest-rank.
func Percentile(samples []float64, q float64) float64 {
	xs := clean(samples)
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 100 {
		return xs[len(xs)-1]
	}
	rank := int(math.Ceil(q/100*float64(len(xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return xs[rank]
}

// PercentileRank returns the percentage of samples <= v (the "ranks in the
// first percentile" statistic of §5.3.1).
func PercentileRank(samples []float64, v float64) float64 {
	xs := clean(samples)
	if len(xs) == 0 {
		return math.NaN()
	}
	n := sort.SearchFloat64s(xs, math.Nextafter(v, math.Inf(1)))
	return 100 * float64(n) / float64(len(xs))
}

// Min returns the smallest finite sample.
func Min(samples []float64) float64 {
	xs := clean(samples)
	if len(xs) == 0 {
		return math.NaN()
	}
	return xs[0]
}

// Max returns the largest finite sample.
func Max(samples []float64) float64 {
	xs := clean(samples)
	if len(xs) == 0 {
		return math.NaN()
	}
	return xs[len(xs)-1]
}

// Mean returns the average of the finite samples.
func Mean(samples []float64) float64 {
	xs := clean(samples)
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Speedup formats a/b as a speedup factor, guarding against zero.
func Speedup(base, improved float64) float64 {
	if improved == 0 {
		return math.Inf(1)
	}
	return base / improved
}

// FormatSeconds renders nanoseconds as seconds with millisecond precision,
// the unit of the paper's Table 2.
func FormatSeconds(ns int64) string {
	return fmt.Sprintf("%.3f", float64(ns)/1e9)
}

// clean returns the finite samples, sorted ascending.
func clean(samples []float64) []float64 {
	xs := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			xs = append(xs, v)
		}
	}
	sort.Float64s(xs)
	return xs
}
