package stats

import (
	"math"
	"testing"
)

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, math.Inf(1), math.NaN()})
	if len(pts) != 3 {
		t.Fatalf("expected 3 finite points, got %d", len(pts))
	}
	if pts[0].Value != 1 || pts[0].Fraction != 1.0/3 {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Fraction != 1 {
		t.Errorf("last point %+v", pts[2])
	}
}

func TestCDFAt(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	pts := CDFAt(samples, 4)
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[3].Fraction != 1 {
		t.Errorf("last fraction %v", pts[3].Fraction)
	}
	if pts[0].Value != 24 { // 25th of 100
		t.Errorf("first quarter value %v", pts[0].Value)
	}
	if CDFAt(nil, 5) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if v := Percentile(xs, 50); v != 50 {
		t.Errorf("P50 = %v", v)
	}
	if v := Percentile(xs, 0); v != 10 {
		t.Errorf("P0 = %v", v)
	}
	if v := Percentile(xs, 100); v != 100 {
		t.Errorf("P100 = %v", v)
	}
	if v := Percentile(xs, 10); v != 10 {
		t.Errorf("P10 = %v", v)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileRank(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if r := PercentileRank(xs, 1); r != 10 {
		t.Errorf("rank of min = %v, want 10", r)
	}
	if r := PercentileRank(xs, 10); r != 100 {
		t.Errorf("rank of max = %v", r)
	}
	if r := PercentileRank(xs, 0.5); r != 0 {
		t.Errorf("rank below min = %v", r)
	}
	if r := PercentileRank(xs, 5.5); r != 50 {
		t.Errorf("rank of 5.5 = %v", r)
	}
}

// TestPercentileEdges pins the degenerate inputs the harness can feed
// the helpers: no samples, one sample, and sample sets that clean() to
// nothing (all NaN / infinite).
func TestPercentileEdges(t *testing.T) {
	if !math.IsNaN(Percentile([]float64{}, 50)) {
		t.Error("Percentile of empty slice should be NaN")
	}
	if !math.IsNaN(PercentileRank(nil, 1)) {
		t.Error("PercentileRank of nil should be NaN")
	}
	if !math.IsNaN(PercentileRank([]float64{}, 1)) {
		t.Error("PercentileRank of empty slice should be NaN")
	}

	one := []float64{7}
	for _, q := range []float64{0, 1, 50, 99, 100} {
		if v := Percentile(one, q); v != 7 {
			t.Errorf("single-sample P%v = %v, want 7", q, v)
		}
	}
	if r := PercentileRank(one, 7); r != 100 {
		t.Errorf("single-sample rank of the sample = %v, want 100", r)
	}
	if r := PercentileRank(one, 6.9); r != 0 {
		t.Errorf("single-sample rank below the sample = %v, want 0", r)
	}

	dirty := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.NaN()}
	if !math.IsNaN(Percentile(dirty, 50)) {
		t.Error("all-NaN/Inf Percentile should be NaN")
	}
	if !math.IsNaN(PercentileRank(dirty, 0)) {
		t.Error("all-NaN/Inf PercentileRank should be NaN")
	}

	// Non-finite values are dropped, not counted in the denominator.
	mixed := []float64{math.NaN(), 1, math.Inf(1), 3}
	if v := Percentile(mixed, 50); v != 1 {
		t.Errorf("mixed P50 = %v, want 1", v)
	}
	if r := PercentileRank(mixed, 1); r != 50 {
		t.Errorf("mixed rank of 1 = %v, want 50", r)
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{4, 2, 6}
	if Min(xs) != 2 || Max(xs) != 6 || Mean(xs) != 4 {
		t.Errorf("min/max/mean wrong: %v %v %v", Min(xs), Max(xs), Mean(xs))
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(2, 1) != 2 {
		t.Error("speedup 2/1")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("speedup by zero should be +Inf")
	}
}

func TestFormatSeconds(t *testing.T) {
	if s := FormatSeconds(1_234_000_000); s != "1.234" {
		t.Errorf("FormatSeconds = %q", s)
	}
}
