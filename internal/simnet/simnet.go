// Package simnet simulates a cluster interconnect in virtual time (package
// vclock), reproducing the communication behaviour the paper's design and
// auto-tuning revolve around:
//
//   - Eager protocol for small messages: the transfer starts as soon as the
//     sender's NIC is free, independent of the receiver's MPI activity.
//   - Rendezvous protocol for messages above the eager threshold: the
//     ready-to-send (RTS) and clear-to-send (CTS) handshake steps advance
//     only while the owning rank is inside an MPI call (posting, Test, or
//     Wait) — the "manual progression" of §3.3. A rank that computes for a
//     long stretch without calling MPI_Test therefore stalls every inbound
//     and outbound rendezvous transfer, which is exactly why the paper
//     auto-tunes the Fy/Fp/Fu/Fx test frequencies.
//   - NIC injection and receiver drain serialization plus a fabric
//     contention factor that grows with the number of occupied nodes, so
//     the all-to-all becomes relatively more expensive at higher p (§5.2).
//
// All costs (per-call CPU overheads, latencies, per-byte rates) come from a
// machine.Machine model. The simulation is deterministic.
package simnet

import (
	"fmt"
	"math"

	"offt/internal/machine"
	"offt/internal/mpi/fault"
	"offt/internal/telemetry"
	"offt/internal/vclock"
)

const never = math.MaxInt64

// scheduler abstracts the two vclock contexts that can drive protocol
// transitions: a running process (*vclock.Proc) and an event callback
// (vclock.Waker). Both provide Schedule and Wake.
type scheduler interface {
	Schedule(t int64, fn func(now int64, w vclock.Waker))
	Wake(q *vclock.Proc, t int64)
}

// wakerCtx adapts a vclock.Waker to the scheduler interface.
type wakerCtx struct{ w vclock.Waker }

func (c wakerCtx) Schedule(t int64, fn func(now int64, w vclock.Waker)) { c.w.Schedule(t, fn) }
func (c wakerCtx) Wake(q *vclock.Proc, t int64)                         { c.w.Wake(q, t) }

// Fabric is the shared interconnect state for one simulated job.
type Fabric struct {
	Mach  machine.Machine
	P     int
	nodes int
	eps   []*Endpoint
	// nicFree[r] is when rank r's NIC finishes its current injection;
	// rxFree[r] is when rank r's inbound pipe finishes draining.
	nicFree []int64
	rxFree  []int64

	// plan, when set, degrades the fabric in virtual time: NIC stall
	// windows displace injection starts and slow-NIC / link factors scale
	// the per-byte rate. Per-message faults (drop/corrupt/duplicate) are a
	// payload-transport concern and stay with the mem engine.
	plan *fault.Plan

	// Stats, aggregated over the whole job.
	Stats Stats
}

// Stats counts fabric-level activity for assertions and reporting.
type Stats struct {
	EagerMsgs      int64
	RendezvousMsgs int64
	BytesMoved     int64
	TestCalls      int64

	// Fault-injection activity (see SetFaults).
	StallNsInjected   int64 // total injection-start displacement from NIC stalls
	DegradedTransfers int64 // injections whose rate was scaled by NIC/link factors
}

// Publish copies the snapshot into a telemetry registry under "simnet.*".
// Stats is a point-in-time value (the fabric mutates its own copy under
// the virtual-clock lock), so the bridge is a plain gauge write, not a
// live Func. Safe on a nil registry.
func (s Stats) Publish(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.Gauge("simnet.eager_msgs").Set(float64(s.EagerMsgs))
	r.Gauge("simnet.rendezvous_msgs").Set(float64(s.RendezvousMsgs))
	r.Gauge("simnet.bytes_moved").Set(float64(s.BytesMoved))
	r.Gauge("simnet.test_calls").Set(float64(s.TestCalls))
	r.Gauge("simnet.stall_ns_injected").Set(float64(s.StallNsInjected))
	r.Gauge("simnet.degraded_transfers").Set(float64(s.DegradedTransfers))
}

// NewFabric creates the interconnect for p ranks on machine m.
func NewFabric(m machine.Machine, p int) *Fabric {
	if p < 1 {
		panic("simnet: need at least one rank")
	}
	return &Fabric{
		Mach:    m,
		P:       p,
		nodes:   m.Nodes(p),
		eps:     make([]*Endpoint, p),
		nicFree: make([]int64, p),
		rxFree:  make([]int64, p),
	}
}

// Endpoint binds a rank to its vclock process. Must be called exactly once
// per rank, from that rank's process body, before any communication.
func (f *Fabric) Endpoint(rank int, proc *vclock.Proc) *Endpoint {
	if rank < 0 || rank >= f.P {
		panic(fmt.Sprintf("simnet: rank %d out of range", rank))
	}
	if f.eps[rank] != nil {
		panic(fmt.Sprintf("simnet: endpoint for rank %d already exists", rank))
	}
	ep := &Endpoint{
		f:           f,
		rank:        rank,
		proc:        proc,
		postedRecvs: make(map[pkey][]*Req),
		arrivals:    make(map[pkey][]arrival),
	}
	f.eps[rank] = ep
	return ep
}

// Req is one point-to-point operation (half of a message).
type Req struct {
	ep          *Endpoint
	isSend      bool
	peer, tag   int
	bytes       int
	completed   bool
	completedAt int64 // virtual completion time; never == not yet known
	group       *Group
	waited      bool // currently counted by an active WaitAll
}

// Done reports whether the request has completed by time now.
func (r *Req) Done(now int64) bool { return r.completedAt <= now }

// Group counts the incomplete requests of one collective operation, giving
// O(1) completion checks however many point-to-point halves it contains.
type Group struct {
	pending int
}

// Pending returns the number of incomplete requests in the group.
func (g *Group) Pending() int { return g.pending }

// Done reports whether every request in the group has completed.
func (g *Group) Done() bool { return g.pending == 0 }

// CompletedAt returns the completion time (math.MaxInt64 if unknown).
func (r *Req) CompletedAt() int64 { return r.completedAt }

type pkey struct{ peer, tag int }

// arrival records protocol input waiting for a matching posted receive.
type arrival struct {
	rts     bool  // true: rendezvous RTS; false: eager data
	t       int64 // arrival time
	sendReq *Req  // rendezvous: the sender-side request
	bytes   int
}

// action is a progression step gated on the owning rank being inside MPI.
type action struct {
	enabledAt int64
	fire      func(now int64, sc scheduler)
}

// Endpoint is one rank's view of the fabric.
type Endpoint struct {
	f    *Fabric
	rank int
	proc *vclock.Proc

	inWait        bool
	parked        bool
	waitOn        map[*Req]bool
	waitRemaining int
	actions       []action
	// open tracks incomplete group-attached requests so WaitGroups can
	// flag them; completed entries are pruned lazily.
	open []*Req

	postedRecvs map[pkey][]*Req
	arrivals    map[pkey][]arrival
}

// Rank returns the endpoint's rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Proc returns the endpoint's vclock process.
func (ep *Endpoint) Proc() *vclock.Proc { return ep.proc }

// Now returns the rank's current virtual time.
func (ep *Endpoint) Now() int64 { return ep.proc.Now() }

// SetFaults attaches a fault plan whose per-rank stall windows and
// NIC/link degradation factors are applied in virtual time. Must be called
// before Run; a nil or inactive plan leaves the fabric untouched.
func (f *Fabric) SetFaults(plan *fault.Plan) {
	if plan.Active() {
		f.plan = plan
	}
}

// rate returns the effective ns/byte from ep's rank to dst.
func (f *Fabric) rate(src, dst int) float64 {
	return f.Mach.EffNsPerByte(src, dst, f.nodes)
}

// faultTxStart displaces an injection start past any stall window covering
// src's NIC, counting the displacement.
func (f *Fabric) faultTxStart(src int, txStart int64) int64 {
	if f.plan == nil {
		return txStart
	}
	if end := f.plan.StallEnd(src, txStart); end > txStart {
		f.Stats.StallNsInjected += end - txStart
		txStart = end
	}
	return txStart
}

// faultRate returns the effective ns/byte for an injection starting at
// time `at`, with slow-NIC and link-degradation factors applied.
func (f *Fabric) faultRate(src, dst int, at int64) float64 {
	r := f.rate(src, dst)
	if f.plan == nil {
		return r
	}
	if m := f.plan.NICFactor(src) * f.plan.LinkFactor(src, dst, at); m != 1 {
		f.Stats.DegradedTransfers++
		r *= m
	}
	return r
}

// Isend posts a non-blocking send of `bytes` bytes to rank dst with the
// given tag. It charges the posting CPU cost and runs the progress engine
// (posting is an MPI call).
func (ep *Endpoint) Isend(dst, tag, bytes int) *Req {
	return ep.IsendGrp(dst, tag, bytes, nil)
}

// IsendGrp is Isend with the request attached to a completion group.
func (ep *Endpoint) IsendGrp(dst, tag, bytes int, grp *Group) *Req {
	if dst < 0 || dst >= ep.f.P {
		panic(fmt.Sprintf("simnet: Isend to invalid rank %d", dst))
	}
	ep.proc.Advance(int64(ep.f.Mach.Cmp.SendPostNs))
	now := ep.proc.Now()
	req := &Req{ep: ep, isSend: true, peer: dst, tag: tag, bytes: bytes, completedAt: never, group: grp}
	if grp != nil {
		grp.pending++
	}
	f := ep.f
	if bytes <= f.Mach.Net.EagerThreshold {
		// Eager: buffered send completes locally right away; the transfer
		// is scheduled immediately regardless of the receiver's state.
		f.Stats.EagerMsgs++
		f.Stats.BytesMoved += int64(bytes)
		ep.markComplete(req, now)
		arrivalT := f.transfer(now, ep.rank, dst, bytes)
		src := ep.rank
		ep.proc.Schedule(arrivalT, func(t int64, w vclock.Waker) {
			f.eps[dst].deliver(src, tag, bytes, false, nil, t, wakerCtx{w})
		})
	} else {
		// Rendezvous: RTS control message (latency only).
		f.Stats.RendezvousMsgs++
		f.Stats.BytesMoved += int64(bytes)
		rtsArr := now + f.Mach.Latency(ep.rank, dst)
		src := ep.rank
		ep.proc.Schedule(rtsArr, func(t int64, w vclock.Waker) {
			f.eps[dst].deliver(src, tag, bytes, true, req, t, wakerCtx{w})
		})
	}
	if grp != nil && !req.completed {
		ep.open = append(ep.open, req)
	}
	ep.progress(ep.proc.Now(), ep.proc)
	return req
}

// transfer books NIC injection and receiver drain for a data transfer
// starting no earlier than `from`, and returns the arrival time. Each
// message pays the per-message setup occupancy on both sides in addition
// to its byte serialization, so tiny-message floods are rate-limited.
func (f *Fabric) transfer(from int64, src, dst, bytes int) int64 {
	txStart := from
	if f.nicFree[src] > txStart {
		txStart = f.nicFree[src]
	}
	txStart = f.faultTxStart(src, txStart)
	dur := f.Mach.Net.MsgSetupNs + int64(float64(bytes)*f.faultRate(src, dst, txStart))
	f.nicFree[src] = txStart + dur
	arr := txStart + f.Mach.Latency(src, dst)
	if f.rxFree[dst] > arr {
		arr = f.rxFree[dst]
	}
	arr += dur
	f.rxFree[dst] = arr
	return arr
}

// Irecv posts a non-blocking receive matching (src, tag). Charges the
// posting CPU cost and runs the progress engine.
func (ep *Endpoint) Irecv(src, tag, bytes int) *Req {
	return ep.IrecvGrp(src, tag, bytes, nil)
}

// IrecvGrp is Irecv with the request attached to a completion group.
func (ep *Endpoint) IrecvGrp(src, tag, bytes int, grp *Group) *Req {
	if src < 0 || src >= ep.f.P {
		panic(fmt.Sprintf("simnet: Irecv from invalid rank %d", src))
	}
	ep.proc.Advance(int64(ep.f.Mach.Cmp.RecvPostNs))
	now := ep.proc.Now()
	req := &Req{ep: ep, peer: src, tag: tag, bytes: bytes, completedAt: never, group: grp}
	if grp != nil {
		grp.pending++
	}
	k := pkey{src, tag}
	if q := ep.arrivals[k]; len(q) > 0 {
		a := q[0]
		ep.popArrival(k)
		if a.rts {
			// RTS already here: the CTS step becomes enabled now. Since
			// posting is an MPI call, progress below fires it immediately.
			ep.enable(now, ep.ctsAction(req, a.sendReq))
		} else {
			t := a.t
			if now > t {
				t = now
			}
			ep.markComplete(req, t)
		}
	} else {
		ep.postedRecvs[k] = append(ep.postedRecvs[k], req)
	}
	if grp != nil && !req.completed {
		ep.open = append(ep.open, req)
	}
	ep.progress(ep.proc.Now(), ep.proc)
	return req
}

func (ep *Endpoint) popArrival(k pkey) {
	q := ep.arrivals[k]
	if len(q) == 1 {
		delete(ep.arrivals, k)
	} else {
		ep.arrivals[k] = q[1:]
	}
}

func (ep *Endpoint) popRecv(k pkey) *Req {
	q := ep.postedRecvs[k]
	if len(q) == 0 {
		return nil
	}
	r := q[0]
	if len(q) == 1 {
		delete(ep.postedRecvs, k)
	} else {
		ep.postedRecvs[k] = q[1:]
	}
	return r
}

// deliver handles an inbound protocol message (eager data or RTS) at the
// receiver, from event context.
func (ep *Endpoint) deliver(src, tag, bytes int, rts bool, sendReq *Req, t int64, sc scheduler) {
	k := pkey{src, tag}
	if recv := ep.popRecv(k); recv != nil {
		if rts {
			ep.enableFromEvent(t, ep.ctsAction(recv, sendReq), sc)
		} else {
			ep.complete(recv, t, sc)
		}
		return
	}
	ep.arrivals[k] = append(ep.arrivals[k], arrival{rts: rts, t: t, sendReq: sendReq, bytes: bytes})
}

// ctsAction returns the progression step "receiver sends CTS": it fires
// only when this rank is inside an MPI call, then schedules the CTS arrival
// at the sender, where the data-start step is again progress-gated.
func (ep *Endpoint) ctsAction(recv, send *Req) func(now int64, sc scheduler) {
	return func(now int64, sc scheduler) {
		f := ep.f
		ctsArr := now + f.Mach.Latency(ep.rank, send.ep.rank)
		sender := send.ep
		sc.Schedule(ctsArr, func(t int64, w vclock.Waker) {
			sender.enableFromEvent(t, sender.dataAction(recv, send), wakerCtx{w})
		})
	}
}

// dataAction returns the progression step "sender starts the data
// transfer" of a rendezvous message. The transfer is chunked: the start is
// gated on the sender's MPI activity and every subsequent chunk on the
// receiver's, modelling the continuous two-sided progression real MPI
// rendezvous pipelines need — whichever rank computes without calling
// MPI_Test stalls its transfers, not just the handshake.
func (ep *Endpoint) dataAction(recv, send *Req) func(now int64, sc scheduler) {
	return ep.chunkAction(recv, send, 0)
}

// chunkAction injects the chunk of send starting at byte offset off.
func (ep *Endpoint) chunkAction(recv, send *Req, off int) func(now int64, sc scheduler) {
	return func(now int64, sc scheduler) {
		f := ep.f
		chunk := f.Mach.Net.RendezvousChunkBytes
		if chunk <= 0 {
			chunk = send.bytes
		}
		bytes := send.bytes - off
		if bytes > chunk {
			bytes = chunk
		}
		txStart := now
		if f.nicFree[ep.rank] > txStart {
			txStart = f.nicFree[ep.rank]
		}
		txStart = f.faultTxStart(ep.rank, txStart)
		dur := f.Mach.Net.MsgSetupNs + int64(float64(bytes)*f.faultRate(ep.rank, recv.ep.rank, txStart))
		txEnd := txStart + dur
		f.nicFree[ep.rank] = txEnd
		arr := txStart + f.Mach.Latency(ep.rank, recv.ep.rank)
		if f.rxFree[recv.ep.rank] > arr {
			arr = f.rxFree[recv.ep.rank]
		}
		arr += dur
		f.rxFree[recv.ep.rank] = arr
		next := off + bytes
		if next < send.bytes {
			// The next chunk becomes eligible once this one is injected,
			// but continues only at the RECEIVER's next MPI call: after the
			// sender-gated start, the pipeline is receiver-driven (an
			// RDMA-get-style pull), so a receiving rank that computes
			// without MPI_Test stalls its inbound transfers mid-flight —
			// which is why the paper tunes Fu and Fx, the Test frequencies
			// of the receive-side Unpack and FFTx phases.
			receiver := recv.ep
			sc.Schedule(txEnd, func(t int64, w vclock.Waker) {
				receiver.enableFromEvent(t, ep.chunkAction(recv, send, next), wakerCtx{w})
			})
			return
		}
		// Last chunk: local completion at injection end, remote at arrival.
		sc.Schedule(txEnd, func(t int64, w vclock.Waker) {
			ep.complete(send, t, wakerCtx{w})
		})
		receiver := recv.ep
		sc.Schedule(arr, func(t int64, w vclock.Waker) {
			receiver.complete(recv, t, wakerCtx{w})
		})
	}
}

// enable records a progression step. If the rank is currently blocked in
// Wait (which continuously progresses, like MPI_Wait's internal loop), the
// step fires immediately.
func (ep *Endpoint) enable(t int64, fire func(now int64, sc scheduler)) {
	// Called from process context (the rank itself is inside an MPI call),
	// so the step can fire right away via progress; queue it.
	ep.actions = append(ep.actions, action{enabledAt: t, fire: fire})
}

// enableFromEvent records a progression step from event context; if the
// rank is blocked in Wait the step fires immediately, otherwise it waits
// for the rank's next MPI call.
func (ep *Endpoint) enableFromEvent(t int64, fire func(now int64, sc scheduler), sc scheduler) {
	if ep.inWait {
		fire(t, sc)
		return
	}
	ep.actions = append(ep.actions, action{enabledAt: t, fire: fire})
}

// progress fires every enabled progression step. now is the rank's current
// time: steps enabled earlier fire now — the gap is the manual-progression
// delay the paper's Test-frequency parameters exist to shrink.
func (ep *Endpoint) progress(now int64, sc scheduler) {
	for len(ep.actions) > 0 {
		a := ep.actions[0]
		if a.enabledAt > now {
			break
		}
		ep.actions = ep.actions[1:]
		a.fire(now, sc)
	}
}

// markComplete records a request's completion without any wakeup (used on
// paths where the owning rank is the one running).
func (ep *Endpoint) markComplete(r *Req, t int64) {
	if r.completed {
		return
	}
	r.completed = true
	r.completedAt = t
	if r.group != nil {
		r.group.pending--
	}
	if r.waited {
		r.waited = false
		ep.waitRemaining--
	}
}

// complete marks a request finished at time t and wakes the owning rank if
// it is parked in a Wait that includes this request.
func (ep *Endpoint) complete(r *Req, t int64, sc scheduler) {
	if r.completed {
		return
	}
	ep.markComplete(r, t)
	if ep.parked && ep.waitRemaining == 0 {
		ep.parked = false
		sc.Wake(ep.proc, t)
	}
}

// Test models one MPI_Test call over the given requests: it charges the
// call cost, runs the progress engine, and reports whether all requests
// have completed. nil requests are ignored.
func (ep *Endpoint) Test(reqs ...*Req) bool {
	active := 0
	for _, r := range reqs {
		if r != nil && !r.completed {
			active++
		}
	}
	ep.TestN(active)
	for _, r := range reqs {
		if r != nil && !r.completed {
			return false
		}
	}
	return true
}

// TestN charges one MPI_Test call inspecting `active` incomplete requests
// and runs the progress engine. Callers tracking completion through Groups
// use this O(1) path instead of Test's request scan.
func (ep *Endpoint) TestN(active int) {
	cmp := ep.f.Mach.Cmp
	ep.proc.Advance(int64(cmp.TestCallNs + float64(active)*cmp.TestPerReqNs))
	ep.f.Stats.TestCalls++
	ep.progress(ep.proc.Now(), ep.proc)
}

// WaitAll blocks until every request has completed, continuously running
// the progress engine (like MPI_Waitall). It returns the rank's time when
// the last request finished.
func (ep *Endpoint) WaitAll(reqs ...*Req) int64 {
	cmp := ep.f.Mach.Cmp
	ep.proc.Advance(int64(cmp.TestCallNs))
	now := ep.proc.Now()
	ep.progress(now, ep.proc)
	ep.waitRemaining = 0
	for _, r := range reqs {
		if r != nil && !r.completed {
			r.waited = true
			ep.waitRemaining++
		}
	}
	for ep.waitRemaining > 0 {
		ep.inWait = true
		ep.parked = true
		ep.proc.Park()
		ep.parked = false
		ep.inWait = false
		ep.progress(ep.proc.Now(), ep.proc)
	}
	return ep.proc.Now()
}

// LocalCopy charges the memcpy cost for a rank's self-block in an
// all-to-all.
func (ep *Endpoint) LocalCopy(bytes int) {
	ep.proc.Advance(int64(float64(bytes) * ep.f.Mach.Cmp.LocalCopyNsPerByte))
}

// WaitGroups blocks until every group's requests have completed,
// continuously running the progress engine (like MPI_Waitall over the
// groups' requests), with O(1) completion checks.
func (ep *Endpoint) WaitGroups(groups ...*Group) int64 {
	cmp := ep.f.Mach.Cmp
	ep.proc.Advance(int64(cmp.TestCallNs))
	ep.progress(ep.proc.Now(), ep.proc)
	for {
		ep.waitRemaining = 0
		for _, g := range groups {
			ep.waitRemaining += g.pending
		}
		if ep.waitRemaining == 0 {
			return ep.proc.Now()
		}
		// Count every pending request of the waited groups; completions
		// decrement waitRemaining via markComplete (the waited flag is not
		// needed here because group membership already identifies them —
		// but markComplete only decrements flagged requests, so flag them).
		ep.flagGroupReqs(groups)
		ep.inWait = true
		ep.parked = true
		ep.proc.Park()
		ep.parked = false
		ep.inWait = false
		ep.progress(ep.proc.Now(), ep.proc)
	}
}

// flagGroupReqs marks the incomplete requests of the groups as waited so
// their completions decrement waitRemaining. Requests are tracked on the
// endpoint's open request list.
func (ep *Endpoint) flagGroupReqs(groups []*Group) {
	want := make(map[*Group]bool, len(groups))
	for _, g := range groups {
		want[g] = true
	}
	kept := ep.open[:0]
	for _, r := range ep.open {
		if r.completed {
			continue
		}
		kept = append(kept, r)
		if r.group != nil && want[r.group] {
			r.waited = true
		}
	}
	ep.open = kept
}
