package simnet

import (
	"testing"

	"offt/internal/machine"
	"offt/internal/vclock"
)

// run executes body for p ranks over a fresh fabric on machine m and
// returns the fabric for inspection.
func run(t *testing.T, m machine.Machine, p int, body func(ep *Endpoint)) *Fabric {
	t.Helper()
	f := NewFabric(m, p)
	s := vclock.New(p)
	err := s.Run(func(proc *vclock.Proc) {
		body(f.Endpoint(proc.ID(), proc))
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	return f
}

// flat is a machine with round constants that make timing arithmetic easy
// to verify by hand: zero CPU overheads, 1 ns/byte, 100 ns latency,
// eager threshold 1000 bytes.
func flat() machine.Machine {
	return machine.Machine{
		Name:         "flat",
		CoresPerNode: 1,
		Net: machine.Network{
			LatencyIntraNs: 100,
			LatencyInterNs: 100,
			NsPerByteIntra: 1,
			NsPerByteInter: 1,
			FabricAlpha:    0,
			EagerThreshold: 1000,
		},
		Cmp: machine.Compute{}, // all CPU costs zero
	}
}

func TestEagerDelivery(t *testing.T) {
	// Rank 0 sends 500 eager bytes at t=0; rank 1 receives.
	// Arrival = txStart(0) + latency(100) + bytes·rate(500) = 600.
	var recvDone, sendDone int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			req := ep.Isend(1, 7, 500)
			ep.WaitAll(req)
			sendDone = ep.Now()
		} else {
			req := ep.Irecv(0, 7, 500)
			ep.WaitAll(req)
			recvDone = ep.Now()
		}
	})
	if recvDone != 600 {
		t.Errorf("eager recv completed at %d, want 600", recvDone)
	}
	if sendDone != 0 {
		t.Errorf("eager send completed at %d, want 0 (buffered)", sendDone)
	}
}

func TestEagerUnexpectedMessage(t *testing.T) {
	// The receive is posted long after the message arrived; it completes
	// immediately at posting time.
	var recvDone int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			ep.Isend(1, 1, 100)
		} else {
			ep.Proc().Advance(5000)
			req := ep.Irecv(0, 1, 100)
			ep.WaitAll(req)
			recvDone = ep.Now()
		}
	})
	if recvDone != 5000 {
		t.Errorf("unexpected-message recv completed at %d, want 5000", recvDone)
	}
}

func TestRendezvousBothWaiting(t *testing.T) {
	// 2000 bytes > eager threshold. Both sides immediately wait, so every
	// handshake step fires at its natural time:
	// RTS arrives at 100; CTS back at 200; data starts at 200,
	// arrival = 200 + latency(100) + 2000·1 = 2300. Sender's injection
	// finishes at 2200.
	var recvDone, sendDone int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			req := ep.Isend(1, 3, 2000)
			ep.WaitAll(req)
			sendDone = ep.Now()
		} else {
			req := ep.Irecv(0, 3, 2000)
			ep.WaitAll(req)
			recvDone = ep.Now()
		}
	})
	if recvDone != 2300 {
		t.Errorf("rendezvous recv completed at %d, want 2300", recvDone)
	}
	if sendDone != 2200 {
		t.Errorf("rendezvous send completed at %d, want 2200", sendDone)
	}
}

func TestRendezvousStallsWithoutProgress(t *testing.T) {
	// The receiver computes for 1 ms without any MPI call after posting
	// the receive. The RTS arrives at t=100 but the CTS can only be sent
	// at the receiver's next MPI call (the Wait at t=1_000_000), so the
	// transfer completes around 1_002_300 instead of 2300.
	var recvDone int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			req := ep.Isend(1, 3, 2000)
			ep.WaitAll(req)
		} else {
			req := ep.Irecv(0, 3, 2000)
			ep.Proc().Advance(1_000_000)
			ep.WaitAll(req)
			recvDone = ep.Now()
		}
	})
	if recvDone != 1_002_200 {
		t.Errorf("stalled rendezvous completed at %d, want 1002200", recvDone)
	}
}

func TestRendezvousProgressesWithTest(t *testing.T) {
	// Same as above, but the receiver calls Test midway through the
	// computation, releasing the CTS at t=500_000; the sender is in Wait
	// so the data flows immediately after.
	var recvDone int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			req := ep.Isend(1, 3, 2000)
			ep.WaitAll(req)
		} else {
			req := ep.Irecv(0, 3, 2000)
			ep.Proc().Advance(500_000)
			ep.Test(req)
			ep.Proc().Advance(500_000)
			ep.WaitAll(req)
			recvDone = ep.Now()
		}
	})
	// CTS at 500_000 → sender starts data at 500_100 → arrival at
	// 500_100+100+2000 = 502_200 — but the receiver only observes it at
	// its Wait (t=1_000_000).
	if recvDone != 1_000_000 {
		t.Errorf("tested rendezvous observed at %d, want 1000000", recvDone)
	}
}

func TestSenderSideManualProgression(t *testing.T) {
	// The SENDER computes without MPI calls after posting; the CTS comes
	// back promptly (receiver is in Wait) but the data transfer cannot
	// start until the sender's next MPI call.
	var recvDone int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			req := ep.Isend(1, 3, 2000)
			ep.Proc().Advance(800_000) // compute, no Test
			ep.WaitAll(req)
		} else {
			req := ep.Irecv(0, 3, 2000)
			ep.WaitAll(req)
			recvDone = ep.Now()
		}
	})
	// CTS arrives at sender ~200; data starts at the sender's Wait
	// (800_000); arrival = 800_000+100+2000 = 802_100.
	if recvDone != 802_100 {
		t.Errorf("sender-stalled rendezvous completed at %d, want 802100", recvDone)
	}
}

func TestNICInjectionSerializes(t *testing.T) {
	// Rank 0 sends two 800-byte eager messages back to back at t=0. The
	// second transmission starts only when the NIC is free at t=800, so it
	// arrives at 800+100+800 = 1700... but the receiver drain also
	// serializes: first arrival 900, second max(900, rxFree=900)+800 = 1700.
	var done [2]int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			a := ep.Isend(1, 1, 800)
			b := ep.Isend(1, 2, 800)
			ep.WaitAll(a, b)
		} else {
			a := ep.Irecv(0, 1, 800)
			b := ep.Irecv(0, 2, 800)
			ep.WaitAll(a)
			done[0] = a.CompletedAt()
			ep.WaitAll(b)
			done[1] = b.CompletedAt()
		}
	})
	if done[0] != 900 {
		t.Errorf("first message at %d, want 900", done[0])
	}
	if done[1] != 1700 {
		t.Errorf("second message at %d, want 1700", done[1])
	}
}

func TestReceiverDrainSerializes(t *testing.T) {
	// Two senders, one receiver: both send 600 eager bytes at t=0. Each
	// sender's NIC is free, so both transmissions start at 0 and would
	// arrive at 700; the receiver pipe serializes the second to 1300.
	var times []int64
	run(t, flat(), 3, func(ep *Endpoint) {
		switch ep.Rank() {
		case 0, 1:
			ep.Isend(2, ep.Rank(), 600)
		case 2:
			a := ep.Irecv(0, 0, 600)
			b := ep.Irecv(1, 1, 600)
			ep.WaitAll(a, b)
			times = []int64{a.CompletedAt(), b.CompletedAt()}
		}
	})
	if times[0] != 700 || times[1] != 1300 {
		t.Errorf("drain serialization: got %v, want [700 1300]", times)
	}
}

func TestTestReportsCompletion(t *testing.T) {
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			ep.Isend(1, 1, 10)
			return
		}
		req := ep.Irecv(0, 1, 10)
		// Arrival at 110; a Test at ~0 must say no, a Test after must say yes.
		if ep.Test(req) {
			t.Error("Test reported completion too early")
		}
		ep.Proc().Advance(10_000)
		if !ep.Test(req) {
			t.Error("Test failed to report completion")
		}
	})
}

func TestTestChargesCPU(t *testing.T) {
	m := flat()
	m.Cmp.TestCallNs = 50
	m.Cmp.TestPerReqNs = 10
	run(t, m, 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			return
		}
		req := ep.Irecv(0, 1, 10) // never satisfied... but don't Wait on it
		start := ep.Now()
		ep.Test(req)
		if d := ep.Now() - start; d != 60 {
			t.Errorf("Test charged %d ns, want 60", d)
		}
		ep.Test(nil)
		_ = req
	})
}

func TestIntraVsInterNode(t *testing.T) {
	// On a 2-ranks-per-node machine, rank 0↔1 (same node) is faster than
	// rank 0↔2 (cross node).
	m := flat()
	m.CoresPerNode = 2
	m.Net.LatencyInterNs = 10_000
	m.Net.NsPerByteInter = 4
	var intra, inter int64
	run(t, m, 4, func(ep *Endpoint) {
		switch ep.Rank() {
		case 0:
			a := ep.Isend(1, 1, 500)
			b := ep.Isend(2, 2, 500)
			ep.WaitAll(a, b)
		case 1:
			r := ep.Irecv(0, 1, 500)
			ep.WaitAll(r)
			intra = r.CompletedAt()
		case 2:
			r := ep.Irecv(0, 2, 500)
			ep.WaitAll(r)
			inter = r.CompletedAt()
		}
	})
	if !(intra < inter) {
		t.Errorf("intra-node %d should beat inter-node %d", intra, inter)
	}
}

func TestFabricContentionSlowsWideJobs(t *testing.T) {
	// The same point-to-point transfer is slower when the job spans more
	// nodes (bisection contention).
	m := flat()
	m.Net.FabricAlpha = 0.5
	timing := func(p int) int64 {
		var done int64
		run(t, m, p, func(ep *Endpoint) {
			switch ep.Rank() {
			case 0:
				ep.Isend(1, 1, 900)
			case 1:
				r := ep.Irecv(0, 1, 900)
				ep.WaitAll(r)
				done = r.CompletedAt()
			}
		})
		return done
	}
	if narrow, wide := timing(2), timing(8); !(wide > narrow) {
		t.Errorf("contention: %d-node job (%d ns) should be slower than 2-node (%d ns)", 8, wide, narrow)
	}
}

func TestStatsCounted(t *testing.T) {
	f := run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			a := ep.Isend(1, 1, 10)   // eager
			b := ep.Isend(1, 2, 5000) // rendezvous
			ep.WaitAll(a, b)
		} else {
			a := ep.Irecv(0, 1, 10)
			b := ep.Irecv(0, 2, 5000)
			ep.WaitAll(a, b)
		}
	})
	if f.Stats.EagerMsgs != 1 || f.Stats.RendezvousMsgs != 1 {
		t.Errorf("stats: %+v", f.Stats)
	}
	if f.Stats.BytesMoved != 5010 {
		t.Errorf("bytes moved %d, want 5010", f.Stats.BytesMoved)
	}
}

func TestLocalCopyChargesTime(t *testing.T) {
	m := flat()
	m.Cmp.LocalCopyNsPerByte = 2
	run(t, m, 1, func(ep *Endpoint) {
		start := ep.Now()
		ep.LocalCopy(100)
		if d := ep.Now() - start; d != 200 {
			t.Errorf("LocalCopy charged %d, want 200", d)
		}
	})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	body := func(ep *Endpoint, out *[2]int64) {
		p := 4
		peer := (ep.Rank() + 1) % p
		prev := (ep.Rank() + p - 1) % p
		var reqs []*Req
		for i := 0; i < 5; i++ {
			reqs = append(reqs, ep.Isend(peer, i, 3000), ep.Irecv(prev, i, 3000))
			ep.Proc().Advance(777)
			ep.Test(reqs...)
		}
		ep.WaitAll(reqs...)
		out[0] = ep.Now()
	}
	final := func() [4][2]int64 {
		var outs [4][2]int64
		run(t, flat(), 4, func(ep *Endpoint) { body(ep, &outs[ep.Rank()]) })
		return outs
	}
	a, b := final(), final()
	if a != b {
		t.Errorf("nondeterministic simulation: %v vs %v", a, b)
	}
}

func TestMismatchedRankPanicsIntoError(t *testing.T) {
	f := NewFabric(flat(), 2)
	s := vclock.New(2)
	err := s.Run(func(proc *vclock.Proc) {
		ep := f.Endpoint(proc.ID(), proc)
		if proc.ID() == 0 {
			ep.Isend(5, 0, 10) // invalid rank
		}
	})
	if err == nil {
		t.Error("expected error from invalid destination rank")
	}
}

func TestGroupsCountPending(t *testing.T) {
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			grp := &Group{}
			a := ep.IsendGrp(1, 1, 100, grp) // eager: completes at post
			b := ep.IsendGrp(1, 2, 5000, grp)
			if grp.Pending() != 1 {
				t.Errorf("pending %d after eager send completed, want 1", grp.Pending())
			}
			ep.WaitGroups(grp)
			if !grp.Done() || !a.Done(ep.Now()) || !b.Done(ep.Now()) {
				t.Error("group not complete after WaitGroups")
			}
		} else {
			grp := &Group{}
			ep.IrecvGrp(0, 1, 100, grp)
			ep.IrecvGrp(0, 2, 5000, grp)
			ep.WaitGroups(grp)
			if grp.Pending() != 0 {
				t.Errorf("pending %d after wait", grp.Pending())
			}
		}
	})
}

func TestWaitGroupsNoRequests(t *testing.T) {
	run(t, flat(), 1, func(ep *Endpoint) {
		grp := &Group{}
		before := ep.Now()
		ep.WaitGroups(grp) // empty group: returns after charging call cost
		if ep.Now() < before {
			t.Error("time went backwards")
		}
	})
}

func TestTestNProgresses(t *testing.T) {
	// TestN must fire enabled progression steps just like Test.
	var recvDone int64
	run(t, flat(), 2, func(ep *Endpoint) {
		if ep.Rank() == 0 {
			req := ep.Isend(1, 3, 2000)
			ep.WaitAll(req)
		} else {
			grp := &Group{}
			ep.IrecvGrp(0, 3, 2000, grp)
			ep.Proc().Advance(500_000)
			ep.TestN(grp.Pending())
			ep.WaitGroups(grp)
			recvDone = ep.Now()
		}
	})
	if recvDone >= 1_000_000 {
		t.Errorf("TestN did not release the CTS: done at %d", recvDone)
	}
}

func TestEndpointAccessors(t *testing.T) {
	f := NewFabric(flat(), 2)
	s := vclock.New(2)
	err := s.Run(func(proc *vclock.Proc) {
		ep := f.Endpoint(proc.ID(), proc)
		if ep.Rank() != proc.ID() || ep.Proc() != proc {
			t.Error("accessors wrong")
		}
		if ep.Now() != proc.Now() {
			t.Error("Now mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEndpointPanics(t *testing.T) {
	f := NewFabric(flat(), 1)
	s := vclock.New(1)
	err := s.Run(func(proc *vclock.Proc) {
		f.Endpoint(0, proc)
		f.Endpoint(0, proc) // duplicate
	})
	if err == nil {
		t.Error("expected error for duplicate endpoint")
	}
}

func TestBadFabricArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p=0")
		}
	}()
	NewFabric(flat(), 0)
}
