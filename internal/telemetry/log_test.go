package telemetry

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func logLines(buf string) []map[string]any {
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf), "\n") {
		if line == "" {
			continue
		}
		m := map[string]any{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			panic("log line is not valid JSON: " + line + ": " + err.Error())
		}
		out = append(out, m)
	}
	return out
}

// TestLoggerJSONShape: every line is one valid JSON object carrying ts,
// level, event and the caller's pairs with value types preserved.
func TestLoggerJSONShape(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo)
	l.Info("request.done",
		"req", "r-1",
		"status", 200,
		"total_ns", int64(12345),
		"overlap_eff", 0.75,
		"cache_hit", true,
		"err", errors.New("boom"),
		"dur", 3*time.Millisecond,
	)
	lines := logLines(buf.String())
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	m := lines[0]
	if m["level"] != "info" || m["event"] != "request.done" {
		t.Fatalf("bad envelope: %v", m)
	}
	if _, err := time.Parse(time.RFC3339Nano, m["ts"].(string)); err != nil {
		t.Fatalf("ts not RFC3339Nano: %v", m["ts"])
	}
	if m["status"] != float64(200) || m["overlap_eff"] != 0.75 || m["cache_hit"] != true {
		t.Errorf("typed values mangled: %v", m)
	}
	if m["err"] != "boom" {
		t.Errorf("error value = %v", m["err"])
	}
	if m["dur"] != float64((3 * time.Millisecond).Nanoseconds()) {
		t.Errorf("duration value = %v", m["dur"])
	}
}

// TestLoggerFieldOrder: fields are marshaled in call order with the
// envelope first, so greps and diffs are deterministic.
func TestLoggerFieldOrder(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo)
	l.Info("evt", "zebra", 1, "alpha", 2)
	line := buf.String()
	if strings.Index(line, `"zebra"`) > strings.Index(line, `"alpha"`) {
		t.Fatalf("field order not call order: %s", line)
	}
	if !strings.HasPrefix(line, `{"ts":`) {
		t.Fatalf("envelope not first: %s", line)
	}
}

// TestLoggerLevelFilter: lines below the minimum level are dropped.
func TestLoggerLevelFilter(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := logLines(buf.String())
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (warn+error): %v", len(lines), lines)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Error("Enabled disagrees with the filter")
	}
}

// TestLoggerRateLimit: a per-event token bucket suppresses floods, and
// the next permitted line carries the dropped count. The clock is
// stubbed so refill is deterministic.
func TestLoggerRateLimit(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo)
	l.SetLimit(1, 2) // 1 token/sec, burst 2
	clk := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return clk }

	for i := 0; i < 10; i++ {
		l.Info("noisy", "i", i)
	}
	if n := len(logLines(buf.String())); n != 2 {
		t.Fatalf("burst emitted %d lines, want 2", n)
	}
	// Other events have their own bucket.
	l.Info("quiet")
	if n := len(logLines(buf.String())); n != 3 {
		t.Fatalf("independent event suppressed: %d lines", n)
	}
	// Refill one token and check the dropped count surfaces.
	clk = clk.Add(time.Second)
	l.Info("noisy", "i", 99)
	lines := logLines(buf.String())
	last := lines[len(lines)-1]
	if last["event"] != "noisy" || last["dropped"] != float64(8) {
		t.Fatalf("dropped count missing: %v", last)
	}
}

// TestLoggerConcurrent: concurrent writers produce whole, valid lines
// (no interleaving). Run with -race.
func TestLoggerConcurrent(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewLogger(w, LevelInfo)
	l.SetLimit(0, 0) // no limiting: all lines must come through intact
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("evt", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	lines := logLines(buf.String())
	mu.Unlock()
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestLoggerNilSafe: a nil logger swallows everything.
func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("evt", "k", "v")
	l.SetLimit(1, 1)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

// TestParseLevel: round-trips and rejects junk.
func TestParseLevel(t *testing.T) {
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		got, err := ParseLevel(lv.String())
		if err != nil || got != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := ParseLevel("shouty"); err == nil {
		t.Error("junk level accepted")
	}
}
