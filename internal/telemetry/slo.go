package telemetry

import (
	"sync"
	"time"
)

// sloBuckets is the number of rotating sub-windows an SLO's rolling
// window is divided into: rotation granularity is window/sloBuckets, so a
// 60 s window forgets load in 2 s steps instead of cliff-edge resets.
const sloBuckets = 30

// SLO tracks one endpoint's latency objective over a rolling window. An
// observation is "bad" when it exceeds the latency objective or failed
// outright; the error budget is the fraction of observations allowed to
// be bad, and burn rate is how fast the budget is actually being spent
// (1.0 = exactly on budget, >1 = burning faster than allowed). All
// methods are nil-safe and concurrency-safe.
type SLO struct {
	objectiveNs int64
	window      time.Duration
	budget      float64

	mu      sync.Mutex
	buckets [sloBuckets]sloBucket
	cur     int
	curEnd  time.Time

	// now is stubbed in tests.
	now func() time.Time
}

type sloBucket struct {
	total int64
	bad   int64
}

// NewSLO creates an SLO: observations above objective (or failed) are
// bad; budget is the allowed bad fraction (e.g. 0.01 = 99% of requests
// meet the objective) over the rolling window.
func NewSLO(objective, window time.Duration, budget float64) *SLO {
	if window <= 0 {
		window = time.Minute
	}
	if budget <= 0 {
		budget = 0.01
	}
	s := &SLO{
		objectiveNs: objective.Nanoseconds(),
		window:      window,
		budget:      budget,
		now:         time.Now,
	}
	s.curEnd = s.now().Add(s.step())
	return s
}

func (s *SLO) step() time.Duration { return s.window / sloBuckets }

// rotateLocked advances the current bucket pointer to cover now,
// zeroing buckets that have aged out of the window.
func (s *SLO) rotateLocked(now time.Time) {
	for now.After(s.curEnd) {
		s.cur = (s.cur + 1) % sloBuckets
		s.buckets[s.cur] = sloBucket{}
		s.curEnd = s.curEnd.Add(s.step())
		// A long quiet gap: jump straight to a fresh window instead of
		// spinning through thousands of empty steps.
		if now.Sub(s.curEnd) > s.window {
			for i := range s.buckets {
				s.buckets[i] = sloBucket{}
			}
			s.curEnd = now.Add(s.step())
			return
		}
	}
}

// Observe records one request outcome.
func (s *SLO) Observe(latNs int64, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateLocked(s.now())
	s.buckets[s.cur].total++
	if failed || latNs > s.objectiveNs {
		s.buckets[s.cur].bad++
	}
}

// SLOSnapshot is the /healthz and Prometheus view of one SLO.
type SLOSnapshot struct {
	ObjectiveNs int64 `json:"objective_ns"`
	WindowMs    int64 `json:"window_ms"`
	Total       int64 `json:"total"`
	Bad         int64 `json:"bad"`
	// BadFrac is the observed bad fraction over the window; Budget the
	// allowed one. BurnRate = BadFrac/Budget: sustained >1 means the
	// objective will be violated if nothing changes.
	BadFrac  float64 `json:"bad_frac"`
	Budget   float64 `json:"budget"`
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is 1 − BurnRate clamped at 0: the fraction of the
	// window's error budget still unspent.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// Snapshot summarizes the rolling window.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateLocked(s.now())
	out := SLOSnapshot{
		ObjectiveNs: s.objectiveNs,
		WindowMs:    s.window.Milliseconds(),
		Budget:      s.budget,
	}
	for i := range s.buckets {
		out.Total += s.buckets[i].total
		out.Bad += s.buckets[i].bad
	}
	if out.Total > 0 {
		out.BadFrac = float64(out.Bad) / float64(out.Total)
	}
	out.BurnRate = out.BadFrac / s.budget
	out.BudgetRemaining = 1 - out.BurnRate
	if out.BudgetRemaining < 0 {
		out.BudgetRemaining = 0
	}
	return out
}

// Register exposes the SLO on a metrics registry under prefix (e.g.
// "serve.slo.transform"): burn-rate ppm and window totals as Funcs, so
// every Prometheus scrape sees a fresh rolling-window evaluation.
func (s *SLO) Register(reg *Registry, prefix string) {
	if s == nil || reg == nil {
		return
	}
	reg.Func(prefix+".total", func() int64 { return s.Snapshot().Total })
	reg.Func(prefix+".bad", func() int64 { return s.Snapshot().Bad })
	reg.Func(prefix+".burn_rate_ppm", func() int64 {
		return int64(s.Snapshot().BurnRate * 1e6)
	})
}
