package telemetry

import (
	"flag"
	"fmt"
	"io"
)

// CLI bundles the observability flags shared by the offt commands
// (-metrics, -trace-out, -pprof) and the start/finish lifecycle around
// them. Commands interpret TraceOut themselves — what "a trace" means
// differs per tool — while the metrics registry and debug server are
// uniform.
type CLI struct {
	// MetricsOut is the -metrics destination: a snapshot file written on
	// exit ("-" = stdout; a .prom suffix selects Prometheus text format).
	MetricsOut string
	// TraceOut is the -trace-out destination for a Chrome trace-event
	// JSON timeline ("-" = stdout).
	TraceOut string
	// PprofAddr is the -pprof listen address for the debug HTTP server.
	PprofAddr string

	reg *Registry
}

// RegisterFlags declares the three flags on fs (flag.CommandLine in the
// commands).
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsOut, "metrics", "",
		`write a metrics snapshot to this file on exit ("-" = stdout, *.prom = Prometheus text)`)
	fs.StringVar(&c.TraceOut, "trace-out", "",
		`write a Chrome trace-event JSON timeline to this file ("-" = stdout; load at ui.perfetto.dev)`)
	fs.StringVar(&c.PprofAddr, "pprof", "",
		"serve net/http/pprof, expvar, and /metrics on this address (e.g. localhost:6060)")
}

// Enabled reports whether any flag asked for a metrics registry.
func (c *CLI) Enabled() bool { return c.MetricsOut != "" || c.PprofAddr != "" }

// Registry returns the shared registry, creating it on first use. It is
// nil when neither -metrics nor -pprof was given, so instrumented code
// paths stay on their no-op branch.
func (c *CLI) Registry() *Registry {
	if c.reg == nil && c.Enabled() {
		c.reg = NewRegistry()
	}
	return c.reg
}

// Start launches the -pprof debug server when requested and reports the
// bound address on w (the ":0" form picks a free port).
func (c *CLI) Start(w io.Writer) error {
	if c.PprofAddr == "" {
		return nil
	}
	addr, err := StartDebugServer(c.PprofAddr, c.Registry())
	if err != nil {
		return fmt.Errorf("pprof server: %w", err)
	}
	fmt.Fprintf(w, "debug server listening on http://%s/debug/pprof/ (metrics at /metrics)\n", addr)
	return nil
}

// Finish writes the -metrics snapshot when requested. Call it after the
// workload, including on failure paths — a partial snapshot still helps
// diagnose what went wrong.
func (c *CLI) Finish() error {
	if c.MetricsOut == "" {
		return nil
	}
	if err := WriteSnapshotFile(c.MetricsOut, c.Registry()); err != nil {
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	return nil
}
