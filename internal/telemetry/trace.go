package telemetry

import (
	"context"
	"sync"
	"time"
)

// TraceSpan is one node of a request's span tree. Times are nanoseconds
// relative to the trace's start, so a serialized tree is self-contained
// (no wall-clock epoch needed to interpret it).
//
// Three kinds of spans share the tree:
//
//   - control spans (Kind ""): real wall-clock intervals recorded by
//     Begin/End around service stages (queue, acquire, exec, scatter…);
//   - "phase" spans: durations synthesized from a Breakdown — laid out
//     sequentially under their parent, they carry accurate per-step time
//     but not true placement (rank-averaged engine-clock time);
//   - "step" spans: engine-recorder StepEvents (WithTrace plans) rebased
//     into the request timeline, with rank and tile attribution.
type TraceSpan struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"` // span ID, -1 for the root
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	End    int64  `json:"end_ns"`
	Kind   string `json:"kind,omitempty"` // "", "phase", "step"
	Rank   int    `json:"rank"`           // -1 when not rank-scoped
	Tile   int    `json:"tile"`           // -1 when not tile-scoped
	// Open marks a span that had not ended when the tree was snapshotted
	// (a watchdog-abandoned execution, for example).
	Open bool `json:"open,omitempty"`
}

// Dur returns the span's duration in nanoseconds.
func (s TraceSpan) Dur() int64 { return s.End - s.Start }

// maxTraceSpans bounds one request's span tree so a heavily traced
// many-rank plan cannot balloon a flight-recorder entry without bound.
const maxTraceSpans = 4096

// TraceContext accumulates one request's span tree. It is created by the
// request entry point (the serve HTTP handler), travels down the call
// stack inside a context.Context, and is snapshotted into the flight
// recorder when the request completes. All methods are safe for
// concurrent use and every method on a nil *TraceContext is a no-op, so
// instrumented layers need no conditionals.
type TraceContext struct {
	id    string
	start time.Time

	mu        sync.Mutex
	spans     []TraceSpan
	stack     []int // open Begin/End spans, innermost last
	truncated bool
}

// NewTraceContext starts an empty trace identified by id, rooted at the
// current instant.
func NewTraceContext(id string) *TraceContext {
	return &TraceContext{id: id, start: time.Now()}
}

// ID returns the trace's request ID ("" on a nil trace).
func (t *TraceContext) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Elapsed returns nanoseconds since the trace started.
func (t *TraceContext) Elapsed() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// Begin opens a control span named name as a child of the innermost open
// span (or as a root) and returns its ID. Close it with End.
func (t *TraceContext) Begin(name string) int {
	if t == nil {
		return -1
	}
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := -1
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	id := t.addLocked(TraceSpan{Parent: parent, Name: name, Start: now, End: -1, Rank: -1, Tile: -1})
	if id >= 0 {
		t.stack = append(t.stack, id)
	}
	return id
}

// End closes the span returned by Begin (and any nested spans left open
// below it — crash paths unwind without leaking the stack).
func (t *TraceContext) End(id int) {
	if t == nil || id < 0 {
		return
	}
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		open := t.stack[i]
		t.spans[open].End = now
		if open == id {
			t.stack = t.stack[:i]
			return
		}
	}
	// Not on the stack (already ended): close it in place if still open.
	if id < len(t.spans) && t.spans[id].End < 0 {
		t.spans[id].End = now
	}
}

// Add records a fully specified span (phase and step spans, whose times
// the caller computed). Returns the span ID, or -1 when dropped by the
// per-request cap.
func (t *TraceContext) Add(s TraceSpan) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addLocked(s)
}

// AddBatch records many fully specified spans under one lock acquisition
// and returns how many were accepted before the per-request cap cut in.
// Emitting an execution's phase and step spans (hundreds for a traced
// many-rank plan) goes through here rather than per-span Add so the
// request's mutex is taken once, with the slice grown once.
func (t *TraceContext) AddBatch(spans []TraceSpan) int {
	if t == nil || len(spans) == 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	room := maxTraceSpans - len(t.spans)
	if room <= 0 {
		t.truncated = true
		return 0
	}
	n := len(spans)
	if n > room {
		n = room
		t.truncated = true
	}
	if free := cap(t.spans) - len(t.spans); free < n {
		grown := make([]TraceSpan, len(t.spans), len(t.spans)+n)
		copy(grown, t.spans)
		t.spans = grown
	}
	for _, s := range spans[:n] {
		s.ID = len(t.spans)
		t.spans = append(t.spans, s)
	}
	return n
}

func (t *TraceContext) addLocked(s TraceSpan) int {
	if len(t.spans) >= maxTraceSpans {
		t.truncated = true
		return -1
	}
	s.ID = len(t.spans)
	t.spans = append(t.spans, s)
	return s.ID
}

// Truncated reports whether the span cap dropped any spans.
func (t *TraceContext) Truncated() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.truncated
}

// Snapshot returns a copy of the span tree. Spans still open are closed
// at the current instant and marked Open, so an abandoned request still
// yields a readable tree.
func (t *TraceContext) Snapshot() []TraceSpan {
	if t == nil {
		return nil
	}
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSpan, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if out[i].End < 0 {
			out[i].End = now
			out[i].Open = true
		}
	}
	return out
}

// Drain returns the span tree like Snapshot but transfers ownership
// instead of copying: the context is left empty, so a straggling append
// (a watchdog-abandoned execution finishing after the handler gave up)
// lands in a fresh slice nobody reads. The request-completion path uses
// Drain so recording a trace into the flight recorder does not copy
// hundreds of spans per request.
func (t *TraceContext) Drain() []TraceSpan {
	if t == nil {
		return nil
	}
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.spans
	t.spans = nil
	t.stack = t.stack[:0]
	for i := range out {
		if out[i].End < 0 {
			out[i].End = now
			out[i].Open = true
		}
	}
	return out
}

type traceCtxKey struct{}

// ContextWithTrace attaches tc to ctx so lower layers (plan execution,
// registry builds) can add spans to the request's tree.
func ContextWithTrace(ctx context.Context, tc *TraceContext) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the request's TraceContext from ctx (nil when the
// request is not traced — every TraceContext method is nil-safe, so
// callers use the result unconditionally).
func TraceFrom(ctx context.Context) *TraceContext {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(traceCtxKey{}).(*TraceContext)
	return tc
}

// SpansToTimeline converts a request's span tree into a Timeline for
// Chrome-trace export: control and phase spans render on track 0
// ("request"), step spans on one track per rank.
func SpansToTimeline(id string, spans []TraceSpan) *Timeline {
	tl := NewTimeline()
	tl.TrackNames[0] = "request " + id
	for _, s := range spans {
		track := 0
		if s.Kind == "step" && s.Rank >= 0 {
			track = 1 + s.Rank
			if _, ok := tl.TrackNames[track]; !ok {
				tl.TrackNames[track] = "rank " + itoa(s.Rank)
			}
		}
		tl.AddSpan(Span{Track: track, Name: s.Name, Start: s.Start, End: s.End, Tile: s.Tile})
	}
	return tl
}

// itoa avoids strconv for the tiny rank labels (keeps the import set of
// this file minimal).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
