package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles, got %v %v %v", c, g, h)
	}
	c.Add(5)
	c.Inc()
	g.Set(3.5)
	h.Observe(100)
	r.Func("d", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %+v", s)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("ops") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("eff")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
	g.Set(-1.5)
	if got := g.Value(); got != -1.5 {
		t.Fatalf("gauge = %v, want -1.5", got)
	}

	h := r.Histogram("lat")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(-5) // clamped to bucket 0
	if got := h.Count(); got != 4 {
		t.Fatalf("hist count = %d, want 4", got)
	}
	if got := h.Sum(); got != 996 {
		t.Fatalf("hist sum = %d, want 996", got)
	}
}

func TestBucketBounds(t *testing.T) {
	if bucketIndex(0) != 0 {
		t.Fatalf("bucketIndex(0) = %d, want 0", bucketIndex(0))
	}
	if bucketIndex(1) != 1 {
		t.Fatalf("bucketIndex(1) = %d, want 1", bucketIndex(1))
	}
	if bucketIndex(math.MaxInt64) != histBuckets-1 {
		t.Fatal("max observation must land in the last bucket")
	}
	// Every observation must satisfy v <= BucketLe(bucketIndex(v)).
	for _, v := range []int64{0, 1, 2, 3, 7, 8, 1023, 1024, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		if v > BucketLe(i) {
			t.Fatalf("v=%d lands in bucket %d with le=%d", v, i, BucketLe(i))
		}
		if i > 0 && v <= BucketLe(i-1) {
			t.Fatalf("v=%d should have landed in bucket %d (le=%d)", v, i-1, BucketLe(i-1))
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("c%d", i)).Add(1)
				r.Histogram("h").Observe(int64(j))
				r.Gauge("g").Set(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 800 {
		t.Fatalf("shared counter = %d, want 800", got)
	}
	if got := r.Histogram("h").Count(); got != 800 {
		t.Fatalf("hist count = %d, want 800", got)
	}
}

func TestSnapshotAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("retx").Add(7)
	r.Gauge("eff").Set(0.5)
	r.Histogram("lat").Observe(100)
	var backing int64 = 42
	r.Func("bridged", func() int64 { return backing })

	s := r.Snapshot()
	if s.Counters["retx"] != 7 {
		t.Fatalf("snapshot retx = %d", s.Counters["retx"])
	}
	if s.Counters["bridged"] != 42 {
		t.Fatalf("snapshot bridged = %d", s.Counters["bridged"])
	}
	if s.Gauges["eff"] != 0.5 {
		t.Fatalf("snapshot eff = %v", s.Gauges["eff"])
	}
	h := s.Histograms["lat"]
	if h.Count != 1 || h.Sum != 100 || len(h.Buckets) != 1 {
		t.Fatalf("snapshot hist = %+v", h)
	}
	if h.Buckets[0].Le < 100 {
		t.Fatalf("bucket le %d < observation 100", h.Buckets[0].Le)
	}

	backing = 99
	if got := r.Snapshot().Counters["bridged"]; got != 99 {
		t.Fatalf("func must be re-evaluated per snapshot, got %d", got)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(3)
	r.Histogram("h").Observe(10)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a.b"] != 3 {
		t.Fatalf("round-trip counter = %d", s.Counters["a.b"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("mem.transport.retransmits").Add(2)
	r.Gauge("pfft.overlap_efficiency").Set(0.9)
	h := r.Histogram("pfft.step.fftz_ns")
	h.Observe(3) // bucket le=3
	h.Observe(3)
	h.Observe(100) // bucket le=127
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mem_transport_retransmits counter",
		"mem_transport_retransmits 2",
		"# TYPE pfft_overlap_efficiency gauge",
		"pfft_overlap_efficiency 0.9",
		"# TYPE pfft_step_fftz_ns histogram",
		`pfft_step_fftz_ns_bucket{le="3"} 2`,
		`pfft_step_fftz_ns_bucket{le="127"} 3`, // cumulative
		`pfft_step_fftz_ns_bucket{le="+Inf"} 3`,
		"pfft_step_fftz_ns_sum 106",
		"pfft_step_fftz_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(1)
	addr, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "hits 1") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"hits": 1`) {
		t.Fatalf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, `"offt"`) {
		t.Fatalf("/debug/vars missing offt expvar:\n%s", out)
	}
	// Publishing again under the same name must not panic.
	PublishExpvar("offt", r)
}
