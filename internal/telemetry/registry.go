// Package telemetry is the repo's unified observability layer: a
// low-overhead metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms), snapshot export as JSON and Prometheus text, expvar
// and net/http/pprof wiring, and a timeline exporter that renders per-rank
// step traces as Chrome trace-event JSON loadable in Perfetto.
//
// The paper's whole argument is observational — per-step breakdowns
// (Fig. 8), tuning-cost distributions (Fig. 5), and the claim that
// FFTy/Pack/Unpack/FFTx time is hidden behind MPI_Ialltoall — so every
// layer of the repo (pfft pipeline, mem transport, simulated fabric,
// Nelder–Mead tuner) feeds this registry when one is attached.
//
// Disabled-path cost: a nil *Registry is a valid "off" registry — every
// method on a nil Registry, Counter, Gauge or Histogram is a no-op behind
// a single nil check, so instrumented code needs no conditionals and pays
// effectively nothing when telemetry is off. Hot paths should resolve
// metric handles once (at plan/world construction) and hold them; name
// lookup takes the registry lock.
package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 value (last write wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i). 48
// power-of-two buckets cover 1 ns to ~78 h, plenty for any latency this
// repo measures, at a fixed 8·48-byte footprint per histogram.
const histBuckets = 48

// Histogram is a fixed-bucket (power-of-two) latency histogram in
// nanoseconds. Observe is lock-free: one atomic add per bucket, count and
// sum, plus two CAS loops maintaining exact min/max (the power-of-two
// buckets alone can place the extremes only within a factor of two, which
// is useless for the watchdog-adjacent tail).
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// minP1 stores min+1 so the zero value means "no observations yet"
	// without a separate init step; max's zero value is already correct
	// for non-negative observations.
	minP1   atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketLe returns the inclusive upper bound of bucket i (2^i − 1 ns); the
// last bucket is the overflow bucket and is unbounded.
func BucketLe(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value in nanoseconds. No-op on a nil histogram.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
	// Min/max clamp negatives to 0 (like bucketIndex) so the min+1
	// "unset" encoding stays unambiguous.
	mm := ns
	if mm < 0 {
		mm = 0
	}
	for {
		cur := h.minP1.Load()
		if cur != 0 && mm+1 >= cur {
			break
		}
		if h.minP1.CompareAndSwap(cur, mm+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if mm <= cur || h.max.CompareAndSwap(cur, mm) {
			break
		}
	}
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	if p1 := h.minP1.Load(); p1 > 0 {
		return p1 - 1
	}
	return 0
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations in nanoseconds.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of metrics. The zero registry from
// NewRegistry is ready to use; a nil *Registry is the disabled registry
// (every method returns a nil, no-op metric handle).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry creates an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (the no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers a callback counter: fn is invoked at snapshot/export time
// and its value reported alongside the counters. This is how subsystems
// that already keep their own atomic counters (the mem transport, the
// simulated fabric) are bridged in without double counting. Re-registering
// a name replaces the callback. No-op on a nil registry.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// names returns the sorted keys of a map.
func names[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
