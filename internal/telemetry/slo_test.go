package telemetry

import (
	"testing"
	"time"
)

// sloClock stubs the SLO's clock so rotation is deterministic.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSLO(objective, window time.Duration, budget float64) (*SLO, *sloClock) {
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	s := NewSLO(objective, window, budget)
	s.now = clk.now
	s.curEnd = clk.t.Add(s.step())
	return s, clk
}

// TestSLOBurnRate: bad fraction and burn rate follow the observations.
func TestSLOBurnRate(t *testing.T) {
	s, _ := newTestSLO(10*time.Millisecond, time.Minute, 0.1)
	for i := 0; i < 90; i++ {
		s.Observe(int64(time.Millisecond), false) // meets objective
	}
	for i := 0; i < 10; i++ {
		s.Observe(int64(time.Second), false) // misses objective
	}
	snap := s.Snapshot()
	if snap.Total != 100 || snap.Bad != 10 {
		t.Fatalf("total/bad = %d/%d, want 100/10", snap.Total, snap.Bad)
	}
	if snap.BadFrac != 0.1 {
		t.Errorf("BadFrac = %v, want 0.1", snap.BadFrac)
	}
	// 10% bad against a 10% budget: burning at exactly the allowed rate.
	if snap.BurnRate < 0.999 || snap.BurnRate > 1.001 {
		t.Errorf("BurnRate = %v, want 1.0", snap.BurnRate)
	}
	if snap.BudgetRemaining > 0.001 {
		t.Errorf("BudgetRemaining = %v, want 0", snap.BudgetRemaining)
	}
}

// TestSLOFailuresAreBad: an outright failure burns budget regardless of
// latency.
func TestSLOFailuresAreBad(t *testing.T) {
	s, _ := newTestSLO(10*time.Millisecond, time.Minute, 0.01)
	s.Observe(int64(time.Microsecond), true)
	snap := s.Snapshot()
	if snap.Bad != 1 {
		t.Fatalf("fast failure not counted bad: %+v", snap)
	}
	if snap.BurnRate <= 1 {
		t.Errorf("BurnRate = %v, want > 1 for 100%% bad against 1%% budget", snap.BurnRate)
	}
}

// TestSLOWindowForgets: observations age out as the rolling window
// rotates past them, in steps rather than cliff-edge resets.
func TestSLOWindowForgets(t *testing.T) {
	s, clk := newTestSLO(10*time.Millisecond, time.Minute, 0.1)
	s.Observe(int64(time.Second), false) // one bad observation
	if snap := s.Snapshot(); snap.Bad != 1 {
		t.Fatalf("bad = %d, want 1", snap.Bad)
	}
	// Half a window later the observation is still in scope…
	clk.advance(30 * time.Second)
	if snap := s.Snapshot(); snap.Bad != 1 {
		t.Fatalf("bad = %d after half window, want 1", snap.Bad)
	}
	// …and a full window after that, it has aged out.
	clk.advance(90 * time.Second)
	if snap := s.Snapshot(); snap.Total != 0 || snap.Bad != 0 {
		t.Fatalf("window did not forget: %+v", snap)
	}
}

// TestSLONilSafe: nil SLO absorbs observations and snapshots to zero.
func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(1, true)
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Fatal("nil SLO not inert")
	}
}

// TestSLORegister: the registry Funcs see a fresh evaluation per scrape.
func TestSLORegister(t *testing.T) {
	s, _ := newTestSLO(10*time.Millisecond, time.Minute, 0.1)
	reg := NewRegistry()
	s.Register(reg, "serve.slo.transform")
	s.Observe(int64(time.Second), false)
	snap := reg.Snapshot()
	if snap.Counters["serve.slo.transform.bad"] != 1 {
		t.Fatalf("slo funcs not exported: %v", snap.Counters)
	}
	if snap.Counters["serve.slo.transform.burn_rate_ppm"] <= 1_000_000 {
		t.Fatalf("burn_rate_ppm = %d, want > 1e6 for 100%% bad against 10%% budget",
			snap.Counters["serve.slo.transform.burn_rate_ppm"])
	}
}
