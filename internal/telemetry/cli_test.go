package telemetry

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestCLIDisabled(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Error("CLI should be disabled with no flags")
	}
	if c.Registry() != nil {
		t.Error("disabled CLI should hand out a nil registry")
	}
	if err := c.Start(io.Discard); err != nil {
		t.Errorf("Start without -pprof: %v", err)
	}
	if err := c.Finish(); err != nil {
		t.Errorf("Finish without -metrics: %v", err)
	}
}

func TestCLIMetricsLifecycle(t *testing.T) {
	out := filepath.Join(t.TempDir(), "snap.json")
	var c CLI
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.RegisterFlags(fs)
	if err := fs.Parse([]string{"-metrics", out, "-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	r := c.Registry()
	if r == nil {
		t.Fatal("enabled CLI should create a registry")
	}
	if c.Registry() != r {
		t.Error("Registry() should be stable across calls")
	}
	if err := c.Start(io.Discard); err != nil {
		t.Fatalf("Start: %v", err)
	}
	r.Counter("cli.test").Add(3)
	if err := c.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v", err)
	}
	if snap.Counters["cli.test"] != 3 {
		t.Errorf("counter not in snapshot: %+v", snap.Counters)
	}
}
