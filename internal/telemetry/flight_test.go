package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func okRecord(id string, totalNs int64) *RequestRecord {
	return &RequestRecord{ID: id, Endpoint: "transform", TotalNs: totalNs,
		Status: 200, OverlapEff: -1}
}

// TestFlightRingWraparound: the recent ring overwrites oldest-first and
// lists newest-first once wrapped.
func TestFlightRingWraparound(t *testing.T) {
	f := NewFlightRecorder(4, 4)
	for i := 0; i < 10; i++ {
		f.Record(okRecord(fmt.Sprintf("r-%d", i), 1000))
	}
	s := f.Snapshot()
	if len(s.Recent) != 4 {
		t.Fatalf("recent holds %d, want 4", len(s.Recent))
	}
	for i, want := range []string{"r-9", "r-8", "r-7", "r-6"} {
		if s.Recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, s.Recent[i].ID, want)
		}
	}
	if f.Get("r-0") != nil {
		t.Error("evicted record still reachable via Get")
	}
	if f.Get("r-9") == nil {
		t.Error("newest record not reachable via Get")
	}
}

// TestFlightNotablePinned: an erroring request stays reachable through
// the notable ring after a burst of healthy traffic wraps the recent ring
// past it — the property that makes the recorder useful for incidents.
func TestFlightNotablePinned(t *testing.T) {
	f := NewFlightRecorder(4, 4)
	bad := &RequestRecord{ID: "incident", Endpoint: "transform", TotalNs: 1000, Status: 503,
		Error: "quarantined", OverlapEff: -1}
	reasons := f.Record(bad)
	if len(reasons) == 0 {
		t.Fatal("5xx record got no promotion reason")
	}
	for i := 0; i < 20; i++ {
		f.Record(okRecord(fmt.Sprintf("ok-%d", i), 1000))
	}
	rec := f.Get("incident")
	if rec == nil {
		t.Fatal("incident evicted despite notable pin")
	}
	if rec.Error != "quarantined" {
		t.Fatalf("wrong record: %+v", rec)
	}
	s := f.Snapshot()
	if s.Captured != 1 {
		t.Errorf("captured = %d, want 1", s.Captured)
	}
}

// TestFlightSlowPromotion: a request above max(slowMin, p99EWMA×factor)
// is promoted with reason "slow"; one below is not.
func TestFlightSlowPromotion(t *testing.T) {
	f := NewFlightRecorder(8, 8)
	f.SetSlowPolicy(4, time.Millisecond)
	if got := f.Threshold(); got != time.Millisecond.Nanoseconds() {
		t.Fatalf("cold threshold = %d, want the floor", got)
	}
	if reasons := f.Record(okRecord("fast", 100_000)); len(reasons) != 0 {
		t.Fatalf("fast request promoted: %v", reasons)
	}
	reasons := f.Record(okRecord("slow", 50*time.Millisecond.Nanoseconds()))
	if len(reasons) != 1 || reasons[0] != "slow" {
		t.Fatalf("slow request reasons = %v", reasons)
	}
}

// TestFlightReasons: caller-seeded reasons ("watchdog") are kept and the
// recorder's own classifications append after them.
func TestFlightReasons(t *testing.T) {
	f := NewFlightRecorder(8, 8)
	rec := &RequestRecord{ID: "w", Endpoint: "transform", TotalNs: 1000, Status: 504,
		Reasons: []string{"watchdog"}, Downgrades: 2, OverlapEff: -1}
	reasons := f.Record(rec)
	want := map[string]bool{"watchdog": true, "error": true, "downgraded": true}
	if len(reasons) != len(want) {
		t.Fatalf("reasons = %v", reasons)
	}
	for _, r := range reasons {
		if !want[r] {
			t.Fatalf("unexpected reason %q in %v", r, reasons)
		}
	}
}

// TestFlightAdaptiveThreshold: enough uniform successes push the p99 EWMA
// up so the threshold rises above the floor.
func TestFlightAdaptiveThreshold(t *testing.T) {
	f := NewFlightRecorder(8, 8)
	f.SetSlowPolicy(4, time.Microsecond)
	base := 10 * time.Millisecond.Nanoseconds()
	for i := 0; i < p99Every*2; i++ {
		f.Record(okRecord(fmt.Sprintf("w-%d", i), base))
	}
	if got := f.Threshold(); got < 2*base {
		t.Fatalf("threshold %d did not adapt above 2×p99 (%d)", got, 2*base)
	}
}

// TestFlightConcurrentCapture: writers, snapshotters and readers race on
// one recorder. Run with -race; correctness check is bounded ring sizes.
func TestFlightConcurrentCapture(t *testing.T) {
	f := NewFlightRecorder(16, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					status := 200
					if i%30 == 0 {
						status = 503
					}
					f.Record(&RequestRecord{ID: fmt.Sprintf("g%d-%d", g, i),
						Endpoint: "transform", TotalNs: int64(i) * 1000,
						Status: status, OverlapEff: -1})
				case 1:
					s := f.Snapshot()
					if len(s.Recent) > 16 || len(s.Notable) > 8 {
						panic("ring bound breached")
					}
				case 2:
					_ = f.Get(fmt.Sprintf("g%d-%d", g, i-i%3))
				}
			}
		}(g)
	}
	wg.Wait()
	s := f.Snapshot()
	if len(s.Recent) != 16 {
		t.Fatalf("recent holds %d after 800+ records, want 16", len(s.Recent))
	}
}

// TestFlightNilSafe: a nil recorder swallows everything.
func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	if f.Record(okRecord("x", 1)) != nil || f.Get("x") != nil || f.Threshold() != 0 {
		t.Fatal("nil FlightRecorder not inert")
	}
	f.SetSlowPolicy(1, 1)
	s := f.Snapshot()
	if s.Notable == nil || s.Recent == nil {
		t.Fatal("nil Snapshot must return empty (non-nil) slices for JSON")
	}
}
