package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceEvent mirrors the Chrome trace-event schema for validation; unknown
// keys are rejected by DisallowUnknownFields in the schema check below.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id"`
	BP   string         `json:"bp"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func buildTestTimeline() *Timeline {
	tl := NewTimeline()
	tl.TrackNames[0] = "rank 0"
	tl.TrackNames[1] = "rank 1"
	// Deliberately append rank-0 spans out of start order: the exporter
	// must sort per track so ts is monotone.
	tl.AddSpan(Span{Track: 0, Name: "FFTz", Start: 5000, End: 9000, Tile: -1})
	tl.AddSpan(Span{Track: 0, Name: "Ialltoall", Start: 1000, End: 1200, Tile: 0})
	tl.AddSpan(Span{Track: 0, Name: "Wait", Start: 3000, End: 4000, Tile: 0})
	tl.AddSpan(Span{Track: 0, Name: "Downgrade", Start: 4500, End: 4500, Tile: -1, Instant: true})
	tl.AddSpan(Span{Track: 1, Name: "FFTy", Start: 500, End: 2500, Tile: 0})
	tl.AddFlow(Flow{ID: 1, Name: "a2a tile 0", FromTrack: 0, FromTs: 1000, ToTrack: 0, ToTs: 3000})
	return tl
}

// TestChromeTraceSchema validates the exported timeline JSON against the
// Chrome trace-event schema: the traceEvents container, required keys per
// phase, monotone ts per track, and matching flow-event pairs.
func TestChromeTraceSchema(t *testing.T) {
	tl := buildTestTimeline()
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace container has unexpected shape: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}

	var events []traceEvent
	for i, raw := range doc.TraceEvents {
		var ev traceEvent
		evDec := json.NewDecoder(bytes.NewReader(raw))
		evDec.DisallowUnknownFields()
		if err := evDec.Decode(&ev); err != nil {
			t.Fatalf("event %d has unknown/invalid fields: %v\n%s", i, err, raw)
		}
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("event %d missing required name/ph: %s", i, raw)
		}
		if ev.Ts < 0 {
			t.Fatalf("event %d has negative ts: %s", i, raw)
		}
		events = append(events, ev)
	}

	// Metadata: one process_name per track.
	meta := map[int]string{}
	for _, ev := range events {
		if ev.Ph == "M" {
			if ev.Name != "process_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			name, _ := ev.Args["name"].(string)
			meta[ev.Pid] = name
		}
	}
	if meta[0] != "rank 0" || meta[1] != "rank 1" {
		t.Fatalf("track metadata = %v", meta)
	}

	// Monotone ts per track for slice events.
	lastTs := map[int]float64{}
	sliceCount, instantCount := 0, 0
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			sliceCount++
			if prev, ok := lastTs[ev.Pid]; ok && ev.Ts < prev {
				t.Fatalf("track %d ts not monotone: %v after %v", ev.Pid, ev.Ts, prev)
			}
			lastTs[ev.Pid] = ev.Ts
			if ev.Dur < 0 {
				t.Fatalf("slice %q has negative dur %v", ev.Name, ev.Dur)
			}
		case "i":
			instantCount++
			if ev.S == "" {
				t.Fatalf("instant %q missing scope", ev.Name)
			}
		}
	}
	if sliceCount != 4 {
		t.Fatalf("slice count = %d, want 4", sliceCount)
	}
	if instantCount != 1 {
		t.Fatalf("instant count = %d, want 1", instantCount)
	}

	// Flow events must come in matching s/f pairs with equal ids, the
	// finish carrying bp:"e", and finish not before start.
	starts := map[int64]traceEvent{}
	finishes := map[int64]traceEvent{}
	for _, ev := range events {
		switch ev.Ph {
		case "s":
			if _, dup := starts[ev.ID]; dup {
				t.Fatalf("duplicate flow start id %d", ev.ID)
			}
			starts[ev.ID] = ev
		case "f":
			if ev.BP != "e" {
				t.Fatalf("flow finish id %d missing bp:e", ev.ID)
			}
			if _, dup := finishes[ev.ID]; dup {
				t.Fatalf("duplicate flow finish id %d", ev.ID)
			}
			finishes[ev.ID] = ev
		}
	}
	if len(starts) != 1 || len(finishes) != 1 {
		t.Fatalf("flow pairs: %d starts, %d finishes, want 1 each", len(starts), len(finishes))
	}
	for id, s := range starts {
		f, ok := finishes[id]
		if !ok {
			t.Fatalf("flow start id %d has no finish", id)
		}
		if s.Name != f.Name {
			t.Fatalf("flow id %d name mismatch: %q vs %q", id, s.Name, f.Name)
		}
		if f.Ts < s.Ts {
			t.Fatalf("flow id %d finishes (%v) before it starts (%v)", id, f.Ts, s.Ts)
		}
	}

	// Tile attribution survives export.
	foundTile := false
	for _, ev := range events {
		if ev.Ph == "X" && ev.Name == "Ialltoall" {
			if tile, ok := ev.Args["tile"].(float64); !ok || tile != 0 {
				t.Fatalf("Ialltoall slice missing tile arg: %v", ev.Args)
			}
			foundTile = true
		}
	}
	if !foundTile {
		t.Fatal("no Ialltoall slice found")
	}
}

func TestChromeTraceEmptyTimeline(t *testing.T) {
	tl := NewTimeline()
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty timeline must still be valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("empty timeline missing traceEvents key")
	}
}
