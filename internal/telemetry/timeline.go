package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Span is one interval on a timeline track (one track per rank). Times are
// engine-clock nanoseconds; the exporter converts to the trace format's
// microseconds. Instant spans render as zero-duration instant events
// (downgrade markers and the like). Tile < 0 means "not tile-scoped".
type Span struct {
	Track   int
	Name    string
	Start   int64
	End     int64
	Tile    int
	Instant bool
}

// Flow is one dependency arrow between two points of the timeline — the
// repo uses it to link each tile's all-to-all post to the Wait that
// completes it. IDs must be unique per flow within one timeline.
type Flow struct {
	ID   int64
	Name string
	// From is the producing point (the post); the flow-start event is
	// emitted at this timestamp on this track.
	FromTrack int
	FromTs    int64
	// To is the consuming point (the wait).
	ToTrack int
	ToTs    int64
}

// Timeline is a collection of per-track spans plus flows, exportable as
// Chrome trace-event JSON (the format Perfetto and chrome://tracing load).
type Timeline struct {
	// TrackNames labels tracks (shown as process names, one per rank).
	TrackNames map[int]string
	Spans      []Span
	Flows      []Flow
}

// NewTimeline creates an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{TrackNames: make(map[int]string)}
}

// AddSpan appends one interval to a track.
func (tl *Timeline) AddSpan(s Span) { tl.Spans = append(tl.Spans, s) }

// AddFlow appends one dependency arrow.
func (tl *Timeline) AddFlow(f Flow) { tl.Flows = append(tl.Flows, f) }

// chromeEvent is one entry of the trace-event JSON array. Field meanings
// follow the Chrome trace-event format spec: ph is the phase ("X"
// complete, "i" instant, "s"/"f" flow start/finish, "M" metadata), ts and
// dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   *int64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes the timeline as Chrome trace-event JSON: one
// metadata-named process per track, "X" complete events sorted by start
// time within each track (monotone ts per track), "i" instant events for
// Instant spans, and an "s"/"f" flow-event pair per Flow. Load the output
// at https://ui.perfetto.dev or chrome://tracing.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	spans := append([]Span(nil), tl.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Track != spans[j].Track {
			return spans[i].Track < spans[j].Track
		}
		return spans[i].Start < spans[j].Start
	})

	events := []chromeEvent{} // non-nil so an empty timeline still emits []
	// Track metadata, in ascending track order.
	tracks := make([]int, 0, len(tl.TrackNames))
	for t := range tl.TrackNames {
		tracks = append(tracks, t)
	}
	sort.Ints(tracks)
	for _, t := range tracks {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: t, Tid: 0,
			Args: map[string]any{"name": tl.TrackNames[t]},
		})
	}

	for _, s := range spans {
		ev := chromeEvent{Name: s.Name, Ph: "X", Ts: usec(s.Start), Pid: s.Track, Tid: 0}
		if s.Tile >= 0 {
			ev.Args = map[string]any{"tile": s.Tile}
		}
		if s.Instant {
			ev.Ph = "i"
			ev.S = "p" // process-scoped instant marker
		} else {
			d := usec(s.End - s.Start)
			if d < 0 {
				d = 0
			}
			ev.Dur = &d
		}
		events = append(events, ev)
	}

	for _, f := range tl.Flows {
		id := f.ID
		events = append(events, chromeEvent{
			Name: f.Name, Cat: "flow", Ph: "s", ID: &id,
			Ts: usec(f.FromTs), Pid: f.FromTrack, Tid: 0,
		})
		events = append(events, chromeEvent{
			Name: f.Name, Cat: "flow", Ph: "f", BP: "e", ID: &id,
			Ts: usec(f.ToTs), Pid: f.ToTrack, Tid: 0,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the timeline to a file ("-" = stdout).
func (tl *Timeline) WriteChromeTraceFile(path string) error {
	if path == "-" {
		return tl.WriteChromeTrace(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tl.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
