package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. The zero value is Info.
type Level int

const (
	LevelInfo Level = iota
	LevelDebug
	LevelWarn
	LevelError
)

// severity orders levels for filtering (Debug < Info < Warn < Error); the
// constant values above keep Info as the zero value instead.
func (l Level) severity() int {
	switch l {
	case LevelDebug:
		return 0
	case LevelWarn:
		return 2
	case LevelError:
		return 3
	default:
		return 1
	}
}

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
}

// Logger emits structured logs: one JSON object per line, with "ts",
// "level" and "event" first and the caller's key/value pairs following in
// call order (fields are marshaled by hand, so the order is stable and
// diffs/greps are deterministic). Per-event token buckets rate-limit
// noisy events; when suppressed lines exist, the next permitted emission
// of that event carries a "dropped" count. All methods are safe for
// concurrent use, and every method on a nil *Logger is a no-op, so
// libraries can thread an optional logger without conditionals.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	min    int // minimum severity
	limits map[string]*logBucket

	// rate limit configuration: refill tokens/sec and bucket burst.
	perSec float64
	burst  float64

	// now is stubbed in tests.
	now func() time.Time
}

type logBucket struct {
	tokens  float64
	last    time.Time
	dropped int64
}

// defaultLogPerSec/-Burst bound steady-state log volume per event name:
// enough for health transitions and errors, tight enough that a request
// flood cannot turn the log into the bottleneck.
const (
	defaultLogPerSec = 50
	defaultLogBurst  = 100
)

// NewLogger writes JSON lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{
		w:      w,
		min:    min.severity(),
		limits: make(map[string]*logBucket),
		perSec: defaultLogPerSec,
		burst:  defaultLogBurst,
		now:    time.Now,
	}
}

// SetLimit overrides the per-event rate limit (tokens per second and
// burst). perSec <= 0 disables rate limiting.
func (l *Logger) SetLimit(perSec, burst float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.perSec, l.burst = perSec, burst
	l.limits = make(map[string]*logBucket)
}

// Enabled reports whether lines at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv.severity() >= l.min
}

// Log emits one line: event is the stable event name (also the rate-limit
// key), kv alternates string keys with values. Values marshal as JSON
// strings, numbers, or booleans by dynamic type; anything else via %v.
func (l *Logger) Log(lv Level, event string, kv ...any) {
	if l == nil || lv.severity() < l.min {
		return
	}
	now := l.now()

	l.mu.Lock()
	dropped := int64(0)
	if l.perSec > 0 {
		b := l.limits[event]
		if b == nil {
			b = &logBucket{tokens: l.burst, last: now}
			l.limits[event] = b
		}
		b.tokens += now.Sub(b.last).Seconds() * l.perSec
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
		if b.tokens < 1 {
			b.dropped++
			l.mu.Unlock()
			return
		}
		b.tokens--
		dropped, b.dropped = b.dropped, 0
	}

	var sb strings.Builder
	sb.Grow(128)
	sb.WriteString(`{"ts":"`)
	sb.WriteString(now.UTC().Format(time.RFC3339Nano))
	sb.WriteString(`","level":"`)
	sb.WriteString(lv.String())
	sb.WriteString(`","event":`)
	sb.WriteString(strconv.Quote(event))
	if dropped > 0 {
		sb.WriteString(`,"dropped":`)
		sb.WriteString(strconv.FormatInt(dropped, 10))
	}
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		sb.WriteByte(',')
		sb.WriteString(strconv.Quote(key))
		sb.WriteByte(':')
		appendLogValue(&sb, kv[i+1])
	}
	sb.WriteString("}\n")
	if l.w != nil {
		io.WriteString(l.w, sb.String())
	}
	l.mu.Unlock()
}

// Debug/Info/Warn/Error are level shorthands for Log.
func (l *Logger) Debug(event string, kv ...any) { l.Log(LevelDebug, event, kv...) }
func (l *Logger) Info(event string, kv ...any)  { l.Log(LevelInfo, event, kv...) }
func (l *Logger) Warn(event string, kv ...any)  { l.Log(LevelWarn, event, kv...) }
func (l *Logger) Error(event string, kv ...any) { l.Log(LevelError, event, kv...) }

func appendLogValue(sb *strings.Builder, v any) {
	switch x := v.(type) {
	case nil:
		sb.WriteString("null")
	case string:
		sb.WriteString(strconv.Quote(x))
	case bool:
		sb.WriteString(strconv.FormatBool(x))
	case int:
		sb.WriteString(strconv.FormatInt(int64(x), 10))
	case int32:
		sb.WriteString(strconv.FormatInt(int64(x), 10))
	case int64:
		sb.WriteString(strconv.FormatInt(x, 10))
	case uint64:
		sb.WriteString(strconv.FormatUint(x, 10))
	case float64:
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case time.Duration:
		sb.WriteString(strconv.FormatInt(x.Nanoseconds(), 10))
	case error:
		sb.WriteString(strconv.Quote(x.Error()))
	default:
		sb.WriteString(strconv.Quote(fmt.Sprint(x)))
	}
}
