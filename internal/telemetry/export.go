package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
	"strings"
)

// Bucket is one non-empty histogram bucket: N observations ≤ Le ns.
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistSnapshot is a point-in-time view of one histogram. Min and Max are
// exact; the quantile fields come from Quantile and inherit the buckets'
// power-of-two resolution.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	P50Ns   int64    `json:"p50_ns,omitempty"`
	P99Ns   int64    `json:"p99_ns,omitempty"`
	P999Ns  int64    `json:"p999_ns,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the cumulative
// bucket counts: the answer is the upper bound of the bucket containing
// the q·Count-th observation, clamped into [Min, Max] so the power-of-two
// rounding can never report a tail beyond the true extremes. Returns 0
// for an empty snapshot.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	v := h.Buckets[len(h.Buckets)-1].Le
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= target {
			v = b.Le
			break
		}
	}
	if h.Max > 0 && v > h.Max {
		v = h.Max
	}
	if v < h.Min {
		v = h.Min
	}
	return v
}

// Snapshot is a point-in-time view of a whole registry. Funcs are folded
// into Counters. Maps marshal with sorted keys, so JSON output is
// deterministic for a quiesced registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current values. A nil registry yields
// an empty (but non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, fn := range funcs {
		s.Counters[k] = fn()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Min: h.Min(), Max: h.Max()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Le: BucketLe(i), N: n})
			}
		}
		hs.P50Ns = hs.Quantile(0.50)
		hs.P99Ns = hs.Quantile(0.99)
		hs.P999Ns = hs.Quantile(0.999)
		s.Histograms[k] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName maps a dotted metric name to a Prometheus-legal one.
func promName(name string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			return c
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Histogram buckets are cumulative with le in nanoseconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range names(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range names(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range names(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.N
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotFile writes the registry snapshot to path: "-" writes JSON
// to stdout, a path ending in ".prom" writes Prometheus text, anything
// else writes JSON.
func WriteSnapshotFile(path string, r *Registry) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = r.WritePrometheus(f)
	} else {
		err = r.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// PublishExpvar publishes the registry under the given expvar name (shown
// at /debug/vars), evaluating a fresh snapshot per request. Publishing the
// same name twice keeps the first registration (expvar panics on
// duplicates; tests and repeated servers must stay safe).
func PublishExpvar(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
