package telemetry

import (
	"sort"
	"sync"
	"time"
)

// RequestRecord is one completed request as the flight recorder keeps it:
// identity, outcome, stage latencies, and (when the request was traced)
// the full span tree.
type RequestRecord struct {
	ID       string    `json:"id"`
	Endpoint string    `json:"endpoint"`
	PlanKey  string    `json:"plan_key,omitempty"`
	Start    time.Time `json:"start"`
	TotalNs  int64     `json:"total_ns"`
	QueueNs  int64     `json:"queue_ns,omitempty"`
	AcqNs    int64     `json:"acquire_ns,omitempty"`
	ExecNs   int64     `json:"exec_ns,omitempty"`
	Status   int       `json:"status"`
	Error    string    `json:"error,omitempty"`
	// Reasons lists why the record was promoted to the notable ring
	// ("slow", "error", "downgraded", "watchdog"); empty for requests
	// kept only in the recent ring.
	Reasons    []string `json:"reasons,omitempty"`
	Downgrades int64    `json:"downgrades,omitempty"`
	// OverlapEff is the request's communication-overlap efficiency in
	// [0,1]; negative means "not measured" (Sim engine, no breakdown).
	OverlapEff float64     `json:"overlap_efficiency"`
	CacheHit   bool        `json:"cache_hit,omitempty"`
	Truncated  bool        `json:"spans_truncated,omitempty"`
	Spans      []TraceSpan `json:"spans,omitempty"`
}

// RequestSummary is the listing form of a record (no span tree).
type RequestSummary struct {
	ID         string   `json:"id"`
	Endpoint   string   `json:"endpoint"`
	PlanKey    string   `json:"plan_key,omitempty"`
	TotalNs    int64    `json:"total_ns"`
	Status     int      `json:"status"`
	Reasons    []string `json:"reasons,omitempty"`
	OverlapEff float64  `json:"overlap_efficiency"`
	Spans      int      `json:"spans"`
}

func (r *RequestRecord) summary() RequestSummary {
	return RequestSummary{
		ID: r.ID, Endpoint: r.Endpoint, PlanKey: r.PlanKey,
		TotalNs: r.TotalNs, Status: r.Status, Reasons: r.Reasons,
		OverlapEff: r.OverlapEff, Spans: len(r.Spans),
	}
}

// FlightSnapshot is the /debug/requests view: the adaptive slow threshold
// plus summaries of both rings, newest first.
type FlightSnapshot struct {
	SlowThresholdNs int64            `json:"slow_threshold_ns"`
	P99EWMANs       int64            `json:"p99_ewma_ns"`
	Captured        int64            `json:"captured"`
	Notable         []RequestSummary `json:"notable"`
	Recent          []RequestSummary `json:"recent"`
}

// latWindow sizes the rolling latency sample the p99 estimate is computed
// from; p99Every is how many observations pass between re-estimates.
const (
	latWindow = 256
	p99Every  = 64
)

// FlightRecorder keeps two bounded rings of request records: every
// completed request lands in the recent ring, and requests that were
// notable — slower than an adaptive threshold (p99-EWMA × factor),
// erroring, degraded, or watchdog-tripped — are additionally pinned in
// the notable ring so a burst of healthy traffic cannot evict the one
// trace that explains an incident. All methods are nil-safe and
// concurrency-safe.
type FlightRecorder struct {
	mu      sync.Mutex
	recent  ring
	notable ring

	slowFactor float64
	slowMin    int64

	// Rolling p99 estimate over successful requests: a fixed window of
	// recent latencies re-sorted every p99Every observations, folded into
	// an EWMA so a single quiet period doesn't collapse the threshold.
	lats     [latWindow]int64
	nLats    int
	obs      int64
	p99EWMA  int64
	captured int64
}

// ring is a fixed-capacity overwrite-oldest buffer of records.
type ring struct {
	buf  []*RequestRecord
	next int
	n    int
}

func (r *ring) push(rec *RequestRecord) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// newestFirst appends the ring's records to dst, newest first.
func (r *ring) newestFirst(dst []*RequestRecord) []*RequestRecord {
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		dst = append(dst, r.buf[idx])
	}
	return dst
}

// Defaults for the slow policy: a request is slow when it exceeds
// max(slowMin, p99EWMA × slowFactor). The floor keeps a cold server
// (tiny p99 from cache-hit warmup) from flagging every request.
const (
	defaultSlowFactor = 4.0
	defaultSlowMinNs  = int64(500 * time.Microsecond)
)

// NewFlightRecorder creates a recorder with the given ring capacities
// (values < 1 fall back to 128 recent / 64 notable).
func NewFlightRecorder(recentCap, notableCap int) *FlightRecorder {
	if recentCap < 1 {
		recentCap = 128
	}
	if notableCap < 1 {
		notableCap = 64
	}
	return &FlightRecorder{
		recent:     ring{buf: make([]*RequestRecord, recentCap)},
		notable:    ring{buf: make([]*RequestRecord, notableCap)},
		slowFactor: defaultSlowFactor,
		slowMin:    defaultSlowMinNs,
	}
}

// SetSlowPolicy overrides the slow-request threshold parameters. factor
// <= 0 keeps the current factor; min < 0 keeps the current floor.
func (f *FlightRecorder) SetSlowPolicy(factor float64, min time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if factor > 0 {
		f.slowFactor = factor
	}
	if min >= 0 {
		f.slowMin = min.Nanoseconds()
	}
}

// Threshold returns the current slow-capture threshold in nanoseconds.
func (f *FlightRecorder) Threshold() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.thresholdLocked()
}

func (f *FlightRecorder) thresholdLocked() int64 {
	t := int64(float64(f.p99EWMA) * f.slowFactor)
	if t < f.slowMin {
		t = f.slowMin
	}
	return t
}

// Record stores one completed request. The recorder appends its own
// reasons ("slow", "error", "downgraded") to any the caller pre-seeded
// (e.g. "watchdog"); records with any reason are pinned in the notable
// ring. Returns the reasons the record ended up with.
func (f *FlightRecorder) Record(rec *RequestRecord) []string {
	if f == nil || rec == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	if rec.TotalNs > f.thresholdLocked() {
		rec.Reasons = append(rec.Reasons, "slow")
	}
	if rec.Status >= 500 || rec.Error != "" {
		rec.Reasons = append(rec.Reasons, "error")
	}
	if rec.Downgrades > 0 {
		rec.Reasons = append(rec.Reasons, "downgraded")
	}

	// Successful latencies feed the adaptive threshold; failures would
	// drag the estimate toward timeout values and mask real slowness.
	if rec.Status >= 200 && rec.Status < 300 {
		f.lats[int(f.obs)%latWindow] = rec.TotalNs
		f.obs++
		if f.nLats < latWindow {
			f.nLats++
		}
		if f.obs%p99Every == 0 {
			f.refreshP99Locked()
		}
	}

	f.recent.push(rec)
	if len(rec.Reasons) > 0 {
		f.notable.push(rec)
		f.captured++
	}
	return rec.Reasons
}

func (f *FlightRecorder) refreshP99Locked() {
	tmp := make([]int64, f.nLats)
	copy(tmp, f.lats[:f.nLats])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	p99 := tmp[(len(tmp)*99)/100]
	if f.p99EWMA == 0 {
		f.p99EWMA = p99
	} else {
		f.p99EWMA = f.p99EWMA - f.p99EWMA/4 + p99/4
	}
}

// Snapshot returns the listing view of both rings, newest first.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	s := FlightSnapshot{Notable: []RequestSummary{}, Recent: []RequestSummary{}}
	if f == nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s.SlowThresholdNs = f.thresholdLocked()
	s.P99EWMANs = f.p99EWMA
	s.Captured = f.captured
	for _, rec := range f.notable.newestFirst(nil) {
		s.Notable = append(s.Notable, rec.summary())
	}
	for _, rec := range f.recent.newestFirst(nil) {
		s.Recent = append(s.Recent, rec.summary())
	}
	return s
}

// Get returns the full record (span tree included) for a request ID, or
// nil. The notable ring is checked first: it retains incident traces
// after the recent ring has wrapped past them.
func (f *FlightRecorder) Get(id string) *RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rec := range f.notable.newestFirst(nil) {
		if rec.ID == id {
			return rec
		}
	}
	for _, rec := range f.recent.newestFirst(nil) {
		if rec.ID == id {
			return rec
		}
	}
	return nil
}
