package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the debug HTTP handler: net/http/pprof under
// /debug/pprof/, expvar under /debug/vars, the registry as Prometheus text
// at /metrics and as JSON at /metrics.json. The registry may be nil (the
// metric endpoints then serve empty snapshots; pprof still works).
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	return mux
}

// StartDebugServer binds addr synchronously (so address errors surface to
// the caller) and serves DebugMux in the background for the life of the
// process. It also publishes the registry under the "offt" expvar name.
// Returns the bound address ("host:port", useful with ":0").
func StartDebugServer(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: debug server listen %s: %w", addr, err)
	}
	PublishExpvar("offt", r)
	srv := &http.Server{Handler: DebugMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
