package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestTraceSpanTree: Begin/End nesting yields a tree whose parent links
// follow the call stack, and End unwinds nested spans left open.
func TestTraceSpanTree(t *testing.T) {
	tc := NewTraceContext("req-1")
	if tc.ID() != "req-1" {
		t.Fatalf("ID = %q", tc.ID())
	}
	root := tc.Begin("request")
	q := tc.Begin("queue")
	tc.End(q)
	exec := tc.Begin("exec")
	inner := tc.Begin("scatter")
	_ = inner
	tc.End(exec) // unwinds scatter too
	tc.End(root)

	spans := tc.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]TraceSpan{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["request"].Parent != -1 {
		t.Errorf("request parent = %d, want -1", byName["request"].Parent)
	}
	if byName["queue"].Parent != byName["request"].ID {
		t.Errorf("queue parent = %d, want %d", byName["queue"].Parent, byName["request"].ID)
	}
	if byName["scatter"].Parent != byName["exec"].ID {
		t.Errorf("scatter parent = %d, want %d", byName["scatter"].Parent, byName["exec"].ID)
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("span %s still open after End: [%d, %d)", s.Name, s.Start, s.End)
		}
		if s.Open {
			t.Errorf("span %s marked Open after explicit End", s.Name)
		}
	}
}

// TestTraceSnapshotClosesOpen: a snapshot taken mid-request closes open
// spans at the current instant and marks them Open, without mutating the
// live tree.
func TestTraceSnapshotClosesOpen(t *testing.T) {
	tc := NewTraceContext("req-2")
	id := tc.Begin("exec")
	spans := tc.Snapshot()
	if len(spans) != 1 || !spans[0].Open || spans[0].End < spans[0].Start {
		t.Fatalf("open span not closed in snapshot: %+v", spans)
	}
	tc.End(id)
	spans = tc.Snapshot()
	if spans[0].Open {
		t.Fatal("span still Open after End — snapshot mutated live state")
	}
}

// TestTraceAddBatch: batches land under one lock with sequential IDs, and
// the per-request cap truncates rather than growing without bound.
func TestTraceAddBatch(t *testing.T) {
	tc := NewTraceContext("req-3")
	batch := make([]TraceSpan, 100)
	for i := range batch {
		batch[i] = TraceSpan{Parent: -1, Name: "step", Kind: "step", Rank: i % 4, Tile: -1}
	}
	if n := tc.AddBatch(batch); n != 100 {
		t.Fatalf("AddBatch accepted %d, want 100", n)
	}
	spans := tc.Snapshot()
	for i, s := range spans {
		if s.ID != i {
			t.Fatalf("span %d has ID %d — batch IDs not sequential", i, s.ID)
		}
	}

	huge := make([]TraceSpan, maxTraceSpans)
	n := tc.AddBatch(huge)
	if n != maxTraceSpans-100 {
		t.Fatalf("cap accepted %d, want %d", n, maxTraceSpans-100)
	}
	if !tc.Truncated() {
		t.Fatal("Truncated not set after cap hit")
	}
	if n := tc.AddBatch(huge[:1]); n != 0 {
		t.Fatalf("full context accepted %d more spans", n)
	}
}

// TestTraceDrain: Drain transfers ownership — the context is left empty
// and a straggling span lands in a fresh slice, not the drained one.
func TestTraceDrain(t *testing.T) {
	tc := NewTraceContext("req-4")
	open := tc.Begin("exec")
	_ = open
	out := tc.Drain()
	if len(out) != 1 || !out[0].Open {
		t.Fatalf("drained %+v, want one Open span", out)
	}
	if got := tc.Snapshot(); len(got) != 0 {
		t.Fatalf("context not empty after Drain: %d spans", len(got))
	}
	// Straggler: a late append must not mutate the drained slice.
	tc.Add(TraceSpan{Parent: -1, Name: "late", Rank: -1, Tile: -1})
	if out[0].Name != "exec" {
		t.Fatalf("drained slice mutated by straggler: %+v", out[0])
	}
}

// TestTraceNilSafe: every method on a nil context is a no-op, so
// instrumented layers need no conditionals.
func TestTraceNilSafe(t *testing.T) {
	var tc *TraceContext
	if tc.ID() != "" || tc.Elapsed() != 0 || tc.Begin("x") != -1 {
		t.Fatal("nil TraceContext not inert")
	}
	tc.End(0)
	tc.Add(TraceSpan{})
	tc.AddBatch([]TraceSpan{{}})
	if tc.Snapshot() != nil || tc.Drain() != nil || tc.Truncated() {
		t.Fatal("nil TraceContext returned non-zero state")
	}
	ctx := ContextWithTrace(context.Background(), nil)
	if TraceFrom(ctx) != nil {
		t.Fatal("nil trace survived the context round-trip")
	}
}

// TestTraceContextRoundTrip: a trace attached to a context comes back out.
func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext("req-5")
	ctx := ContextWithTrace(context.Background(), tc)
	if TraceFrom(ctx) != tc {
		t.Fatal("TraceFrom did not return the attached context")
	}
	if TraceFrom(context.Background()) != nil || TraceFrom(nil) != nil {
		t.Fatal("TraceFrom invented a trace")
	}
}

// TestTraceConcurrent hammers one context from many goroutines — Begin/
// End, batch emission, snapshots and drains racing — and checks the
// result is a bounded, well-formed tree. Run with -race.
func TestTraceConcurrent(t *testing.T) {
	tc := NewTraceContext("req-6")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := []TraceSpan{{Parent: -1, Name: "step", Kind: "step", Rank: g, Tile: 0}}
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					id := tc.Begin("ctl")
					tc.End(id)
				case 1:
					tc.AddBatch(batch)
				case 2:
					_ = tc.Snapshot()
				case 3:
					_ = tc.Elapsed()
				}
			}
		}(g)
	}
	wg.Wait()
	spans := tc.Drain()
	if len(spans) > maxTraceSpans {
		t.Fatalf("cap breached: %d spans", len(spans))
	}
	for _, s := range spans {
		if s.Parent >= s.ID {
			t.Fatalf("span %d has forward parent link %d", s.ID, s.Parent)
		}
	}
}

// TestSpansToTimeline: control and phase spans render on the request
// track, step spans on one track per rank.
func TestSpansToTimeline(t *testing.T) {
	spans := []TraceSpan{
		{ID: 0, Parent: -1, Name: "request", Start: 0, End: 100, Rank: -1, Tile: -1},
		{ID: 1, Parent: 0, Name: "FFTz", Kind: "phase", Start: 0, End: 10, Rank: -1, Tile: -1},
		{ID: 2, Parent: 0, Name: "Pack", Kind: "step", Start: 10, End: 20, Rank: 1, Tile: 3},
		{ID: 3, Parent: 0, Name: "Pack", Kind: "step", Start: 10, End: 20, Rank: 0, Tile: 2},
	}
	tl := SpansToTimeline("req-7", spans)
	if name := tl.TrackNames[0]; !strings.Contains(name, "req-7") {
		t.Errorf("request track name %q lacks the request ID", name)
	}
	if tl.TrackNames[2] != "rank 1" {
		t.Errorf("rank-1 step landed on track %q", tl.TrackNames[2])
	}
	var buf strings.Builder
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Pack"`) {
		t.Error("chrome export lacks the step span")
	}
}
