package pencil

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/mpi"
	"offt/internal/pfft"
)

// Plan is the create-once / execute-many pencil transform for one rank —
// the 2-D counterpart of pfft.Plan. Construction clones the 1-D FFT plans,
// sizes every communication slot and scratch buffer, and arms the fault
// monitor; Forward and Backward then run allocation-free in steady state.
//
// Both all-to-all phases run through the Algorithm-1 pipeline skeleton
// (pack tile i, wait tile i−W, post tile i, unpack tile i−W) with the same
// downgrade machinery as the slab pipeline: a tile wait missing its soft
// deadline, or persistent transport retransmission pressure, degrades the
// remainder of that phase to the blocking per-tile path. The degraded path
// issues exactly one all-to-all per tile in tile order, so collective
// sequence numbers stay aligned with ranks that did not degrade.
//
// The Baseline and NEW0 variants run the same pipeline with a single
// whole-extent tile per phase and no Test calls — one big exchange per
// phase, like Forward3D.
type Plan struct {
	c   mpi.Comm
	g   Grid2D
	prm Params2D

	fz, fy, fx *fft.Plan // forward 1-D plans
	bz, by, bx *fft.Plan // backward 1-D plans (lazy)

	mid []complex128 // phase-1 pencil [xc][zc][Ny], y contiguous
	out []complex128 // output x-pencil [y2c][zc][Nx], x contiguous
	in  []complex128 // backward result z-pencil [xc][yc][Nz] (lazy)

	sendCounts, recvCounts []int
	sendA, recvA           [][]complex128 // phase-A slot buffers
	sendB, recvB           [][]complex128 // phase-B slot buffers
	reqsA, reqsB           []mpi.Request
	bsend, brecv           []complex128 // backward whole-phase buffers (lazy)

	mon  pfft.FaultMonitor
	flag fft.Flag
	last pfft.Breakdown

	// Step-event tracing (EnableTrace): events accumulates one execution's
	// timeline; trcBase offsets tile indices so phase-B tiles number after
	// phase-A tiles and post/wait pairs stay unique plan-wide.
	traced  bool
	events  []pfft.StepEvent
	trcBase int
}

// NewPlan builds a reusable pencil plan for this rank. Supported variants:
// NEW (overlapped pipeline in both exchange phases, tiling from prm),
// Baseline and NEW0 (blocking: one whole-extent tile per phase). A zero
// Params2D means DefaultParams2D.
func NewPlan(c mpi.Comm, g Grid2D, v pfft.Variant, prm Params2D, flag fft.Flag) (*Plan, error) {
	if c.Size() != g.P() || c.Rank() != g.Rank {
		return nil, fmt.Errorf("pencil: comm rank/size %d/%d does not match grid %d/%d", c.Rank(), c.Size(), g.Rank, g.P())
	}
	if prm == (Params2D{}) {
		prm = DefaultParams2D(g)
	}
	switch v {
	case pfft.NEW:
		// keep prm as given
	case pfft.Baseline, pfft.NEW0:
		// Blocking variants override the tiling but keep the caller's
		// exchange schedule: blocking is just post+wait in both engines.
		prm = Params2D{TA: g.XD.MaxCount(), WA: 1, TB: g.ZD.MaxCount(), WB: 1, F: 0, Comm: prm.Comm}
	default:
		return nil, fmt.Errorf("pencil: variant %v is not supported by the pencil decomposition (use baseline, new, or new0)", v)
	}
	if err := prm.Validate(g); err != nil {
		return nil, err
	}
	p := &Plan{
		c: c, g: g, prm: prm, flag: flag,
		fz:  fft.Plan1DCached(g.Nz, fft.Forward, flag).Clone(),
		fy:  fft.Plan1DCached(g.Ny, fft.Forward, flag).Clone(),
		fx:  fft.Plan1DCached(g.Nx, fft.Forward, flag).Clone(),
		mid: make([]complex128, g.MidSize()),
		out: make([]complex128, g.OutSize()),

		sendCounts: make([]int, g.P()),
		recvCounts: make([]int, g.P()),
	}
	yc, zc, y2c := g.YC(), g.ZC(), g.Y2C()
	xc := g.XC()
	kA := (g.XD.MaxCount() + prm.TA - 1) / prm.TA
	kB := (g.ZD.MaxCount() + prm.TB - 1) / prm.TB
	p.reqsA = make([]mpi.Request, kA)
	p.reqsB = make([]mpi.Request, kB)
	p.sendA = slotBuffers(prm.WA+1, prm.TA*yc*g.Nz)
	p.recvA = slotBuffers(prm.WA+1, prm.TA*g.Ny*zc)
	p.sendB = slotBuffers(prm.WB+1, xc*g.Ny*prm.TB)
	p.recvB = slotBuffers(prm.WB+1, g.Nx*y2c*prm.TB)
	return p, nil
}

func slotBuffers(slots, size int) [][]complex128 {
	bufs := make([][]complex128, slots)
	for i := range bufs {
		bufs[i] = make([]complex128, size)
	}
	return bufs
}

// Grid returns the plan's pencil geometry.
func (p *Plan) Grid() Grid2D { return p.g }

// Params returns the effective overlap parameters.
func (p *Plan) Params() Params2D { return p.prm }

// Breakdown returns the per-step breakdown of the most recent execution.
func (p *Plan) Breakdown() pfft.Breakdown { return p.last }

// EnableTrace turns on step-event recording: every subsequent execution
// rebuilds the timeline returned by Trace. Tracing wraps the already-
// timed sites with event appends — use it for timeline capture, not
// steady-state benchmarking (the appends allocate on first growth).
func (p *Plan) EnableTrace() { p.traced = true }

// Trace reports the step-event timeline of the most recent execution
// (nil unless EnableTrace was called). The slice aliases plan-owned
// storage and is valid until the next execution.
func (p *Plan) Trace() []pfft.StepEvent { return p.events }

// rec appends one step event when tracing is enabled.
func (p *Plan) rec(name string, start, end int64, tile int) {
	if !p.traced {
		return
	}
	p.events = append(p.events, pfft.StepEvent{Name: name, Start: start, End: end, Tile: tile})
}

// Close releases nothing today but completes the create/execute/close
// lifecycle shared with pfft.Plan.
func (p *Plan) Close() {}

// phaseFuncs bundles one exchange phase's tile operations for the shared
// pipeline loop. front computes and packs tile i into its slot, post
// starts the tile's all-to-all, back unpacks and transforms tile i.
type phaseFuncs struct {
	front func(i int, win []mpi.Request)
	post  func(i int) mpi.Request
	back  func(i int, win []mpi.Request)
}

// runPhase is the Algorithm-1 pipeline with the downgrade monitor wired
// into the wait step: iteration i packs tile i, waits for tile i−w, posts
// tile i, and unpacks tile i−w. When the monitor gives up on a wait the
// remainder of the phase drains on the blocking per-tile path.
func (p *Plan) runPhase(k, w int, reqs []mpi.Request, f phaseFuncs, b *pfft.Breakdown) {
	c := p.c
	for i := 0; i < k+w; i++ {
		if i < k {
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			f.front(i, reqs[lo:i])
		}
		if i >= w {
			t := c.Now()
			ok := p.mon.WaitTile(c, reqs[i-w])
			now := c.Now()
			b.Wait += now - t
			p.rec("Wait", t, now, p.trcBase+i-w)
			if !ok {
				b.Downgrades++
				p.rec("Downgrade", now, now, p.trcBase+i-w)
				p.degradePhase(k, w, reqs, i, f, b)
				return
			}
		}
		if i < k {
			t := c.Now()
			reqs[i] = f.post(i)
			now := c.Now()
			b.Ialltoall += now - t
			p.rec("Ialltoall", t, now, p.trcBase+i)
		}
		if i >= w {
			j := i - w
			hi := j + w + 1
			if hi > k {
				hi = k
			}
			if i+1 < hi {
				hi = i + 1
			}
			f.back(j, reqs[j+1:hi])
		}
	}
}

// degradePhase finishes one exchange phase on the blocking path after the
// pipeline gave up at iteration i (waiting on tile i−w). Tiles < i−w are
// done, tiles i−w..min(i,k)−1 are posted but not unpacked, tile i (when
// i < k) is packed but not posted, later tiles are untouched. Plain Wait
// is safe: soft deadlines leave requests valid and the self-healing
// transport still converges.
func (p *Plan) degradePhase(k, w int, reqs []mpi.Request, i int, f phaseFuncs, b *pfft.Breakdown) {
	c := p.c
	hi := i
	if hi > k {
		hi = k
	}
	for j := i - w; j < hi; j++ {
		t := c.Now()
		c.Wait(reqs[j])
		now := c.Now()
		b.Wait += now - t
		p.rec("Wait", t, now, p.trcBase+j)
		f.back(j, nil)
	}
	for j := i; j < k; j++ {
		if j > i {
			f.front(j, nil)
		}
		t := c.Now()
		req := f.post(j)
		c.Wait(req)
		now := c.Now()
		b.Wait += now - t
		p.rec("Wait", t, now, p.trcBase+j)
		f.back(j, nil)
	}
}

func (p *Plan) doTests(win []mpi.Request, b *pfft.Breakdown) {
	if len(win) == 0 || p.prm.F <= 0 {
		return
	}
	t := p.c.Now()
	for j := 0; j < p.prm.F; j++ {
		p.c.Test(win...)
	}
	now := p.c.Now()
	b.Test += now - t
	p.rec("Test", t, now, -1)
}

// Forward executes one forward transform. slab is this rank's input
// z-pencil in x-y-z layout (length InSize(), consumed); the returned
// x-pencil in y-z-x layout is plan-owned and valid until the next
// execution.
func (p *Plan) Forward(slab []complex128) ([]complex128, pfft.Breakdown, error) {
	g, c := p.g, p.c
	if len(slab) != g.InSize() {
		return nil, pfft.Breakdown{}, fmt.Errorf("pencil: slab length %d, want %d", len(slab), g.InSize())
	}
	var b pfft.Breakdown
	start := c.Now()
	// Re-select the tuned exchange schedule every run: the communicator may
	// be shared with plans tuned to a different schedule.
	mpi.SetExchange(c, mpi.Exchange{Alg: p.prm.Comm})
	p.mon.Init(c)
	p.events = p.events[:0]
	p.trcBase = 0
	xc, yc, zc, y2c := g.XC(), g.YC(), g.ZC(), g.Y2C()

	// ---- Phase A: FFTz + row-group exchange (y↔z splits) + FFTy ----
	// Tile count uses the GLOBAL maximum x extent so every rank runs the
	// same number of collectives; ranks with a smaller extent run trailing
	// zero-count tiles.
	kA := (g.XD.MaxCount() + p.prm.TA - 1) / p.prm.TA
	slotsA := p.prm.WA + 1
	boundsA := func(i int) (int, int) {
		lo, hi := i*p.prm.TA, i*p.prm.TA+p.prm.TA
		if lo > xc {
			lo = xc
		}
		if hi > xc {
			hi = xc
		}
		return lo, hi
	}
	p.runPhase(kA, p.prm.WA, p.reqsA, phaseFuncs{
		front: func(i int, win []mpi.Request) {
			x0, x1 := boundsA(i)
			t := c.Now()
			p.fz.Batch(slab[x0*yc*g.Nz:], (x1-x0)*yc, g.Nz)
			now := c.Now()
			b.FFTz += now - t
			p.rec("FFTz", t, now, i)
			p.doTests(win, &b)
			t = c.Now()
			buf := p.sendA[i%slotsA][:(x1-x0)*yc*g.Nz]
			off := 0
			for cj := 0; cj < g.PC; cj++ {
				zs, zcnt := g.ZD.Start(cj), g.ZD.Count(cj)
				for lx := x0; lx < x1; lx++ {
					for ly := 0; ly < yc; ly++ {
						row := slab[(lx*yc+ly)*g.Nz:]
						copy(buf[off:off+zcnt], row[zs:zs+zcnt])
						off += zcnt
					}
				}
			}
			now = c.Now()
			b.Pack += now - t
			p.rec("Pack", t, now, i)
			p.doTests(win, &b)
		},
		post: func(i int) mpi.Request {
			x0, x1 := boundsA(i)
			for j := range p.sendCounts {
				p.sendCounts[j], p.recvCounts[j] = 0, 0
			}
			for cj := 0; cj < g.PC; cj++ {
				p.sendCounts[g.GlobalRank(g.RI, cj)] = (x1 - x0) * yc * g.ZD.Count(cj)
				p.recvCounts[g.GlobalRank(g.RI, cj)] = (x1 - x0) * g.YD.Count(cj) * zc
			}
			slot := i % slotsA
			return c.Ialltoallv(p.sendA[slot][:(x1-x0)*yc*g.Nz], p.sendCounts,
				p.recvA[slot][:(x1-x0)*g.Ny*zc], p.recvCounts)
		},
		back: func(i int, win []mpi.Request) {
			x0, x1 := boundsA(i)
			t := c.Now()
			buf := p.recvA[i%slotsA][:(x1-x0)*g.Ny*zc]
			roff := 0
			for cj := 0; cj < g.PC; cj++ {
				ys, ycnt := g.YD.Start(cj), g.YD.Count(cj)
				for lx := x0; lx < x1; lx++ {
					for ly := 0; ly < ycnt; ly++ {
						for lz := 0; lz < zc; lz++ {
							p.mid[(lx*zc+lz)*g.Ny+ys+ly] = buf[roff]
							roff++
						}
					}
				}
			}
			now := c.Now()
			b.Unpack += now - t
			p.rec("Unpack", t, now, i)
			p.doTests(win, &b)
			t = c.Now()
			p.fy.Batch(p.mid[x0*zc*g.Ny:], (x1-x0)*zc, g.Ny)
			now = c.Now()
			b.FFTy += now - t
			p.rec("FFTy", t, now, i)
			p.doTests(win, &b)
		},
	}, &b)

	// ---- Phase B: column-group exchange (x↔y splits) + FFTx ----
	p.trcBase = kA
	kB := (g.ZD.MaxCount() + p.prm.TB - 1) / p.prm.TB
	slotsB := p.prm.WB + 1
	boundsB := func(i int) (int, int) {
		lo, hi := i*p.prm.TB, i*p.prm.TB+p.prm.TB
		if lo > zc {
			lo = zc
		}
		if hi > zc {
			hi = zc
		}
		return lo, hi
	}
	p.runPhase(kB, p.prm.WB, p.reqsB, phaseFuncs{
		front: func(i int, win []mpi.Request) {
			z0, z1 := boundsB(i)
			t := c.Now()
			buf := p.sendB[i%slotsB][:xc*g.Ny*(z1-z0)]
			off := 0
			for ri := 0; ri < g.PR; ri++ {
				ys, ycnt := g.YD2.Start(ri), g.YD2.Count(ri)
				for lx := 0; lx < xc; lx++ {
					for lz := z0; lz < z1; lz++ {
						row := p.mid[(lx*zc+lz)*g.Ny:]
						copy(buf[off:off+ycnt], row[ys:ys+ycnt])
						off += ycnt
					}
				}
			}
			now := c.Now()
			b.Pack += now - t
			p.rec("Pack", t, now, kA+i)
			p.doTests(win, &b)
		},
		post: func(i int) mpi.Request {
			z0, z1 := boundsB(i)
			for j := range p.sendCounts {
				p.sendCounts[j], p.recvCounts[j] = 0, 0
			}
			for ri := 0; ri < g.PR; ri++ {
				p.sendCounts[g.GlobalRank(ri, g.CI)] = xc * g.YD2.Count(ri) * (z1 - z0)
				p.recvCounts[g.GlobalRank(ri, g.CI)] = g.XD.Count(ri) * y2c * (z1 - z0)
			}
			slot := i % slotsB
			return c.Ialltoallv(p.sendB[slot][:xc*g.Ny*(z1-z0)], p.sendCounts,
				p.recvB[slot][:g.Nx*y2c*(z1-z0)], p.recvCounts)
		},
		back: func(i int, win []mpi.Request) {
			z0, z1 := boundsB(i)
			t := c.Now()
			buf := p.recvB[i%slotsB][:g.Nx*y2c*(z1-z0)]
			roff := 0
			for ri := 0; ri < g.PR; ri++ {
				xs, xcnt := g.XD.Start(ri), g.XD.Count(ri)
				for lx := 0; lx < xcnt; lx++ {
					for lz := z0; lz < z1; lz++ {
						for ly := 0; ly < y2c; ly++ {
							p.out[(ly*zc+lz)*g.Nx+xs+lx] = buf[roff]
							roff++
						}
					}
				}
			}
			now := c.Now()
			b.Unpack += now - t
			p.rec("Unpack", t, now, kA+i)
			p.doTests(win, &b)
			t = c.Now()
			for ly := 0; ly < y2c; ly++ {
				for lz := z0; lz < z1; lz++ {
					base := (ly*zc + lz) * g.Nx
					row := p.out[base : base+g.Nx]
					p.fx.Transform(row, row)
				}
			}
			now = c.Now()
			b.FFTx += now - t
			p.rec("FFTx", t, now, kA+i)
			p.doTests(win, &b)
		},
	}, &b)

	b.Total = c.Now() - start
	p.last = b
	return p.out, b, nil
}

// ensureBackward lazily builds the inverse 1-D plans and the backward
// exchange buffers on the first Backward call, so forward-only plans pay
// nothing for them.
func (p *Plan) ensureBackward() {
	if p.bz != nil {
		return
	}
	g := p.g
	p.bz = fft.Plan1DCached(g.Nz, fft.Backward, p.flag).Clone()
	p.by = fft.Plan1DCached(g.Ny, fft.Backward, p.flag).Clone()
	p.bx = fft.Plan1DCached(g.Nx, fft.Backward, p.flag).Clone()
	p.in = make([]complex128, g.InSize())
	sendMax := g.OutSize()
	if g.MidSize() > sendMax {
		sendMax = g.MidSize()
	}
	recvMax := g.MidSize()
	if g.InSize() > recvMax {
		recvMax = g.InSize()
	}
	p.bsend = make([]complex128, sendMax)
	p.brecv = make([]complex128, recvMax)
}

// Backward executes one inverse transform: xp is this rank's spectrum
// x-pencil in y-z-x layout (length OutSize(), consumed — i.e. the forward
// output distribution), and the returned z-pencil in x-y-z layout matches
// the forward input distribution. Like the slab path the round trip is
// unnormalized: Forward then Backward multiplies by Nx·Ny·Nz. Both
// exchange phases run blocking (one whole-extent collective each, on
// every variant), which keeps collective sequence numbers aligned across
// ranks.
func (p *Plan) Backward(xp []complex128) ([]complex128, pfft.Breakdown, error) {
	g, c := p.g, p.c
	if len(xp) != g.OutSize() {
		return nil, pfft.Breakdown{}, fmt.Errorf("pencil: spectrum pencil length %d, want %d", len(xp), g.OutSize())
	}
	p.ensureBackward()
	var b pfft.Breakdown
	start := c.Now()
	mpi.SetExchange(c, mpi.Exchange{Alg: p.prm.Comm})
	p.events = p.events[:0]
	xc, yc, zc, y2c := g.XC(), g.YC(), g.ZC(), g.Y2C()

	// FFTx⁻¹ on the contiguous x rows.
	t := c.Now()
	p.bx.Batch(xp, y2c*zc, g.Nx)
	now := c.Now()
	b.FFTx += now - t
	p.rec("FFTx", t, now, -1)

	// Inverse transpose B within the column group: return x-ranges, regather
	// y. The pack order to each destination mirrors the forward unpack read
	// order exactly, so the exchange is a strict inverse permutation.
	t = c.Now()
	for i := range p.sendCounts {
		p.sendCounts[i], p.recvCounts[i] = 0, 0
	}
	off := 0
	for ri := 0; ri < g.PR; ri++ {
		xs, xcnt := g.XD.Start(ri), g.XD.Count(ri)
		p.sendCounts[g.GlobalRank(ri, g.CI)] = xcnt * zc * y2c
		for lx := 0; lx < xcnt; lx++ {
			for lz := 0; lz < zc; lz++ {
				for ly := 0; ly < y2c; ly++ {
					p.bsend[off] = xp[(ly*zc+lz)*g.Nx+xs+lx]
					off++
				}
			}
		}
	}
	for ri := 0; ri < g.PR; ri++ {
		p.recvCounts[g.GlobalRank(ri, g.CI)] = xc * zc * g.YD2.Count(ri)
	}
	now = c.Now()
	b.Pack += now - t
	p.rec("Pack", t, now, -1)
	t = c.Now()
	c.Alltoallv(p.bsend[:g.OutSize()], p.sendCounts, p.brecv[:g.MidSize()], p.recvCounts)
	now = c.Now()
	b.Wait += now - t
	p.rec("Alltoall", t, now, -1)
	t = c.Now()
	roff := 0
	for ri := 0; ri < g.PR; ri++ {
		ys, ycnt := g.YD2.Start(ri), g.YD2.Count(ri)
		for lx := 0; lx < xc; lx++ {
			for lz := 0; lz < zc; lz++ {
				row := p.mid[(lx*zc+lz)*g.Ny:]
				copy(row[ys:ys+ycnt], p.brecv[roff:roff+ycnt])
				roff += ycnt
			}
		}
	}
	now = c.Now()
	b.Unpack += now - t
	p.rec("Unpack", t, now, -1)

	// FFTy⁻¹.
	t = c.Now()
	p.by.Batch(p.mid, xc*zc, g.Ny)
	now = c.Now()
	b.FFTy += now - t
	p.rec("FFTy", t, now, -1)

	// Inverse transpose A within the row group: return y-ranges, regather z.
	t = c.Now()
	for i := range p.sendCounts {
		p.sendCounts[i], p.recvCounts[i] = 0, 0
	}
	off = 0
	for cj := 0; cj < g.PC; cj++ {
		ys, ycnt := g.YD.Start(cj), g.YD.Count(cj)
		p.sendCounts[g.GlobalRank(g.RI, cj)] = xc * ycnt * zc
		for lx := 0; lx < xc; lx++ {
			for ly := 0; ly < ycnt; ly++ {
				for lz := 0; lz < zc; lz++ {
					p.bsend[off] = p.mid[(lx*zc+lz)*g.Ny+ys+ly]
					off++
				}
			}
		}
	}
	for cj := 0; cj < g.PC; cj++ {
		p.recvCounts[g.GlobalRank(g.RI, cj)] = xc * yc * g.ZD.Count(cj)
	}
	now = c.Now()
	b.Pack += now - t
	p.rec("Pack", t, now, -1)
	t = c.Now()
	c.Alltoallv(p.bsend[:g.MidSize()], p.sendCounts, p.brecv[:g.InSize()], p.recvCounts)
	now = c.Now()
	b.Wait += now - t
	p.rec("Alltoall", t, now, -1)
	t = c.Now()
	roff = 0
	for cj := 0; cj < g.PC; cj++ {
		zs, zcnt := g.ZD.Start(cj), g.ZD.Count(cj)
		for lx := 0; lx < xc; lx++ {
			for ly := 0; ly < yc; ly++ {
				row := p.in[(lx*yc+ly)*g.Nz:]
				copy(row[zs:zs+zcnt], p.brecv[roff:roff+zcnt])
				roff += zcnt
			}
		}
	}
	now = c.Now()
	b.Unpack += now - t
	p.rec("Unpack", t, now, -1)

	// FFTz⁻¹.
	t = c.Now()
	p.bz.Batch(p.in, xc*yc, g.Nz)
	now = c.Now()
	b.FFTz += now - t
	p.rec("FFTz", t, now, -1)

	b.Total = c.Now() - start
	p.last = b
	return p.in, b, nil
}

// Backward3D executes the blocking pencil-decomposed inverse 3-D FFT on
// this rank: the standalone counterpart of Forward3D. xp is the rank's
// spectrum x-pencil in y-z-x layout (the Forward3D output distribution,
// consumed); the result is the rank's z-pencil in x-y-z layout (the
// Forward3D input distribution). Unnormalized, like the forward path.
func Backward3D(c mpi.Comm, g Grid2D, xp []complex128, flag fft.Flag) ([]complex128, error) {
	p, err := NewPlan(c, g, pfft.Baseline, Params2D{}, flag)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	out, _, err := p.Backward(xp)
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), out...), nil
}
