package pencil

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"

	"offt/internal/fft"
	"offt/internal/machine"
	"offt/internal/model"
	"offt/internal/mpi/mem"
	"offt/internal/pfft"
)

func randCube(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

func maxErr(a, b []complex128) float64 {
	var norm float64 = 1
	for i := range a {
		if m := cmplx.Abs(a[i]); m > norm {
			norm = m
		}
	}
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d/norm > worst {
			worst = d / norm
		}
	}
	return worst
}

func runPencil(t *testing.T, full []complex128, nx, ny, nz, pr, pc int) []complex128 {
	t.Helper()
	p := pr * pc
	w := mem.NewWorld(p)
	outs := make([][]complex128, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := NewGrid2D(nx, ny, nz, pr, pc, c.Rank())
		if err != nil {
			panic(err)
		}
		slab := ScatterPencil(full, g)
		out, err := Forward3D(c, g, slab, fft.Estimate)
		if err != nil {
			panic(err)
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	return GatherPencil(outs, nx, ny, nz, pr, pc)
}

func TestPencilMatchesSerial(t *testing.T) {
	cases := []struct{ nx, ny, nz, pr, pc int }{
		{8, 8, 8, 2, 2},
		{8, 8, 8, 1, 4},
		{8, 8, 8, 4, 1},
		{12, 12, 12, 2, 3},
		{12, 12, 12, 3, 2},
		{16, 16, 16, 4, 4},
		{9, 10, 11, 3, 2}, // non-divisible everything
		{10, 12, 8, 2, 4}, // rectangular
		{8, 8, 8, 1, 1},   // single rank
	}
	for _, c := range cases {
		name := fmt.Sprintf("%dx%dx%d-%dx%d", c.nx, c.ny, c.nz, c.pr, c.pc)
		t.Run(name, func(t *testing.T) {
			full := randCube(c.nx*c.ny*c.nz, 17)
			want := append([]complex128(nil), full...)
			fft.NewPlan3D(c.nx, c.ny, c.nz, fft.Forward).Transform(want)
			got := runPencil(t, full, c.nx, c.ny, c.nz, c.pr, c.pc)
			if e := maxErr(got, want); e > 1e-9 {
				t.Errorf("error %g", e)
			}
		})
	}
}

func TestPencilAgreesWithSlab(t *testing.T) {
	// The 1-D slab result (pfft) and the 2-D pencil result must be the
	// same transform, whatever the decomposition.
	nx, ny, nz := 12, 12, 12
	full := randCube(nx*ny*nz, 23)
	want := append([]complex128(nil), full...)
	fft.NewPlan3D(nx, ny, nz, fft.Forward).Transform(want)
	got := runPencil(t, full, nx, ny, nz, 2, 2)
	if e := maxErr(got, want); e > 1e-9 {
		t.Errorf("pencil disagrees with serial by %g", e)
	}
}

func TestGrid2DValidation(t *testing.T) {
	for _, c := range []struct {
		nx, ny, nz, pr, pc, rank int
		ok                       bool
	}{
		{8, 8, 8, 2, 2, 0, true},
		{8, 8, 8, 2, 2, 3, true},
		{8, 8, 8, 2, 2, 4, false},
		{8, 8, 8, 0, 2, 0, false},
		{8, 8, 8, 2, 2, -1, false},
		{0, 8, 8, 2, 2, 0, false},
		{2, 8, 8, 4, 2, 0, false}, // Nx < pr
		{8, 8, 2, 2, 4, 0, false}, // Nz < pc
	} {
		_, err := NewGrid2D(c.nx, c.ny, c.nz, c.pr, c.pc, c.rank)
		if (err == nil) != c.ok {
			t.Errorf("NewGrid2D(%v): err=%v, want ok=%v", c, err, c.ok)
		}
	}
}

func TestGrid2DSizes(t *testing.T) {
	g, err := NewGrid2D(9, 10, 11, 3, 2, 5) // ri=2, ci=1
	if err != nil {
		t.Fatal(err)
	}
	if g.RI != 2 || g.CI != 1 {
		t.Errorf("grid coords %d,%d", g.RI, g.CI)
	}
	if g.InSize() != g.XC()*g.YC()*11 {
		t.Error("InSize inconsistent")
	}
	if g.MidSize() != g.XC()*10*g.ZC() {
		t.Error("MidSize inconsistent")
	}
	if g.OutSize() != g.Y2C()*g.ZC()*9 {
		t.Error("OutSize inconsistent")
	}
	// Pencil sizes must tile the full array exactly.
	var in, out int
	for r := 0; r < g.P(); r++ {
		gr, _ := NewGrid2D(9, 10, 11, 3, 2, r)
		in += gr.InSize()
		out += gr.OutSize()
	}
	if in != 9*10*11 || out != 9*10*11 {
		t.Errorf("pencils don't tile the array: in=%d out=%d want %d", in, out, 990)
	}
}

func TestPencilScalesBeyondSlabLimit(t *testing.T) {
	// §2.2's scalability claim: the 1-D slab decomposition cannot use more
	// than min(Nx, Ny) ranks, while the pencil method keeps scaling (up to
	// Nx·Ny). At p = 4·N the slab geometry is invalid but the pencil runs
	// and beats the pencil at a quarter of the ranks.
	m := machine.Hopper()
	n := 32
	if _, err := model.SimulateCube(m, 4*n, n, model.Spec{Variant: pfft.Baseline}); err == nil {
		t.Fatal("slab decomposition should reject p > N")
	}
	quarter, err := Simulate(m, 8, 4, n) // p = n
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(m, 16, 8, n) // p = 4n: impossible for the slab
	if err != nil {
		t.Fatal(err)
	}
	if !(full < quarter) {
		t.Errorf("pencil at p=%d (%d ns) should beat p=%d (%d ns)", 4*n, full, n, quarter)
	}
}

func TestSlabBeatsPencilWhereItFits(t *testing.T) {
	// §2.2's flip side: the pencil method pays two all-to-all phases (twice
	// the transposed bytes), so where the slab fits, it can be the better
	// choice — which is why the paper focuses on 1-D decomposition.
	m := machine.UMDCluster()
	n, p := 64, 64
	slab, err := model.SimulateCube(m, p, n, model.Spec{Variant: pfft.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	pencil2D, err := Simulate(m, 8, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	if !(slab.MaxTotal < pencil2D) {
		t.Errorf("slab (%d) should beat 2-D (%d) at p=%d N=%d on this network", slab.MaxTotal, pencil2D, p, n)
	}
}

func TestSimulateSlabCompetitiveAtLowP(t *testing.T) {
	// At small p the slab method's single exchange is competitive: the
	// pencil method must not win by more than its extra-copy overhead
	// could explain (sanity check on the model, not a strict ordering).
	m := machine.UMDCluster()
	n, p := 64, 4
	slab, err := model.SimulateCube(m, p, n, model.Spec{Variant: pfft.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	pencil2D, err := Simulate(m, 2, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	if pencil2D < slab.MaxTotal/2 {
		t.Errorf("implausible: 2-D (%d) more than 2x faster than slab (%d) at p=4", pencil2D, slab.MaxTotal)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := machine.Hopper()
	a, err := Simulate(m, 4, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, 4, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

func TestSimulateRejectsBadGrid(t *testing.T) {
	if _, err := Simulate(machine.Laptop(), 8, 8, 4); err == nil {
		t.Error("expected error for N < grid")
	}
}

func runPencilOverlapped(t *testing.T, full []complex128, nx, ny, nz, pr, pc int, prm Params2D) []complex128 {
	t.Helper()
	p := pr * pc
	w := mem.NewWorld(p)
	outs := make([][]complex128, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := NewGrid2D(nx, ny, nz, pr, pc, c.Rank())
		if err != nil {
			panic(err)
		}
		out, err := ForwardOverlapped3D(c, g, ScatterPencil(full, g), prm, fft.Estimate)
		if err != nil {
			panic(err)
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	return GatherPencil(outs, nx, ny, nz, pr, pc)
}

func TestOverlappedPencilMatchesSerial(t *testing.T) {
	cases := []struct {
		nx, ny, nz, pr, pc int
		prm                Params2D
	}{
		{8, 8, 8, 2, 2, Params2D{TA: 2, WA: 2, TB: 2, WB: 1, F: 2}},
		{12, 12, 12, 3, 2, Params2D{TA: 1, WA: 3, TB: 3, WB: 2, F: 1}},
		{16, 16, 16, 2, 4, Params2D{TA: 8, WA: 1, TB: 4, WB: 2, F: 0}},
		{9, 10, 11, 3, 2, Params2D{TA: 2, WA: 2, TB: 2, WB: 2, F: 2}}, // uneven splits
		{10, 12, 8, 2, 4, Params2D{TA: 5, WA: 2, TB: 2, WB: 2, F: 3}},
	}
	for _, c := range cases {
		name := fmt.Sprintf("%dx%dx%d-%dx%d", c.nx, c.ny, c.nz, c.pr, c.pc)
		t.Run(name, func(t *testing.T) {
			full := randCube(c.nx*c.ny*c.nz, 55)
			want := append([]complex128(nil), full...)
			fft.NewPlan3D(c.nx, c.ny, c.nz, fft.Forward).Transform(want)
			got := runPencilOverlapped(t, full, c.nx, c.ny, c.nz, c.pr, c.pc, c.prm)
			if e := maxErr(got, want); e > 1e-9 {
				t.Errorf("error %g", e)
			}
		})
	}
}

func TestOverlappedPencilDefaultParams(t *testing.T) {
	nx := 12
	full := randCube(nx*nx*nx, 56)
	want := append([]complex128(nil), full...)
	fft.NewPlan3D(nx, nx, nx, fft.Forward).Transform(want)
	g0, _ := NewGrid2D(nx, nx, nx, 2, 3, 0)
	prm := DefaultParams2D(g0)
	if err := prm.Validate(g0); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	got := runPencilOverlapped(t, full, nx, nx, nx, 2, 3, prm)
	if e := maxErr(got, want); e > 1e-9 {
		t.Errorf("error %g", e)
	}
}

func TestParams2DValidation(t *testing.T) {
	g, _ := NewGrid2D(8, 8, 8, 2, 2, 0)
	bad := []Params2D{
		{TA: 0, WA: 1, TB: 1, WB: 1},
		{TA: 99, WA: 1, TB: 1, WB: 1},
		{TA: 1, WA: 0, TB: 1, WB: 1},
		{TA: 1, WA: 1, TB: 0, WB: 1},
		{TA: 1, WA: 1, TB: 1, WB: 1, F: -1},
	}
	for i, p := range bad {
		if err := p.Validate(g); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestOverlappedPencilBeatsBlockingInSim(t *testing.T) {
	// The paper's future work realized: applying the §3 overlap machinery
	// to the 2-D decomposition must beat the blocking pencil transform on
	// a comm-heavy simulated machine.
	m := machine.UMDCluster()
	pr, pc, n := 8, 8, 128
	g0, _ := NewGrid2D(n, n, n, pr, pc, 0)
	blocking, err := Simulate(m, pr, pc, n)
	if err != nil {
		t.Fatal(err)
	}
	overlapped, err := SimulateOverlapped(m, pr, pc, n, DefaultParams2D(g0))
	if err != nil {
		t.Fatal(err)
	}
	if !(overlapped < blocking) {
		t.Errorf("overlapped pencil (%d) not faster than blocking (%d)", overlapped, blocking)
	}
	t.Logf("blocking %.4fs, overlapped %.4fs (%.2fx)",
		float64(blocking)/1e9, float64(overlapped)/1e9, float64(blocking)/float64(overlapped))
}

func TestSimulateOverlappedValidates(t *testing.T) {
	if _, err := SimulateOverlapped(machine.Laptop(), 2, 2, 16, Params2D{}); err == nil {
		t.Error("expected validation error for zero params")
	}
	if _, err := SimulateOverlapped(machine.Laptop(), 9, 9, 4, Params2D{TA: 1, WA: 1, TB: 1, WB: 1}); err == nil {
		t.Error("expected geometry error")
	}
}
