package pencil

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/mpi"
	"offt/internal/pfft"
)

// Params2D are the tunable parameters of the overlapped pencil transform:
// phase A (the row-group z↔y exchange) is tiled along the local x extent,
// phase B (the column-group x↔y exchange) along the local z extent; each
// phase pipelines its tiles through a window of concurrent all-to-alls
// with F MPI_Test calls per compute step, exactly the paper's §3 machinery
// applied to the 2-D decomposition (its §7 future work).
type Params2D struct {
	TA, WA int // phase A: x-tile size and window
	TB, WB int // phase B: z-tile size and window
	F      int // Test calls per compute step per tile
	// Comm is the all-to-all exchange schedule used by both phases (the
	// 11th tuned parameter); the zero value is round-robin pairwise.
	Comm mpi.CommAlg
}

// DefaultParams2D mirrors the §4.4 default-point philosophy: some tiling,
// window 2, p/2 tests.
func DefaultParams2D(g Grid2D) Params2D {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	f := g.P() / 2
	if f < 1 {
		f = 1
	}
	return Params2D{
		TA: clamp(g.XD.MaxCount()/4, 1, g.XD.MaxCount()),
		WA: 2,
		TB: clamp(g.ZD.MaxCount()/4, 1, g.ZD.MaxCount()),
		WB: 2,
		F:  f,
	}
}

// FromParams derives the overlapped pencil parameters from the public
// Table-1 parameter set: T tiles both exchange phases (clamped to each
// phase's extent), W windows both (clamped to the tile count), and Fy is
// the Test frequency. The remaining slab parameters (Px/Pz/Uy/Uz, the
// other frequencies, Pr) have no pencil counterpart here and are ignored.
func FromParams(p pfft.Params, g Grid2D) Params2D {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	ta := clamp(p.T, 1, g.XD.MaxCount())
	tb := clamp(p.T, 1, g.ZD.MaxCount())
	f := p.Fy
	if f < 0 {
		f = 0
	}
	return Params2D{
		TA:   ta,
		WA:   clamp(p.W, 1, (g.XD.MaxCount()+ta-1)/ta),
		TB:   tb,
		WB:   clamp(p.W, 1, (g.ZD.MaxCount()+tb-1)/tb),
		F:    f,
		Comm: p.Comm,
	}
}

// Validate checks the parameters against the geometry.
func (p Params2D) Validate(g Grid2D) error {
	switch {
	case p.TA < 1 || p.TA > g.XD.MaxCount():
		return fmt.Errorf("pencil: TA=%d out of range [1,%d]", p.TA, g.XD.MaxCount())
	case p.TB < 1 || p.TB > g.ZD.MaxCount():
		return fmt.Errorf("pencil: TB=%d out of range [1,%d]", p.TB, g.ZD.MaxCount())
	case p.WA < 1 || p.WB < 1:
		return fmt.Errorf("pencil: windows must be >= 1 (got %d, %d)", p.WA, p.WB)
	case p.F < 0:
		return fmt.Errorf("pencil: F=%d must be >= 0", p.F)
	case !p.Comm.Valid():
		return fmt.Errorf("pencil: Comm=%d is not a known exchange schedule", int(p.Comm))
	}
	return nil
}

// ForwardOverlapped3D is Forward3D with computation-communication overlap
// in both exchange phases: while one tile's row-group (or column-group)
// all-to-all is in flight, the CPU packs, unpacks and transforms other
// tiles, progressing communication with MPI_Test. Input, output and
// calling conventions match Forward3D.
func ForwardOverlapped3D(c mpi.Comm, g Grid2D, slab []complex128, prm Params2D, flag fft.Flag) ([]complex128, error) {
	if c.Size() != g.P() || c.Rank() != g.Rank {
		return nil, fmt.Errorf("pencil: comm rank/size %d/%d does not match grid %d/%d", c.Rank(), c.Size(), g.Rank, g.P())
	}
	if len(slab) != g.InSize() {
		return nil, fmt.Errorf("pencil: slab length %d, want %d", len(slab), g.InSize())
	}
	if err := prm.Validate(g); err != nil {
		return nil, err
	}
	// Both phases exchange over the full communicator (off-group counts are
	// zero), so one schedule selection covers every collective below.
	mpi.SetExchange(c, mpi.Exchange{Alg: prm.Comm})
	p := g.P()
	xc, yc, zc, y2c := g.XC(), g.YC(), g.ZC(), g.Y2C()
	planZ := fft.Plan1DCached(g.Nz, fft.Forward, flag).Clone()
	planY := fft.Plan1DCached(g.Ny, fft.Forward, flag).Clone()
	planX := fft.Plan1DCached(g.Nx, fft.Forward, flag).Clone()
	mid := make([]complex128, g.MidSize())
	out := make([]complex128, g.OutSize())

	doTests := func(window []mpi.Request) {
		if len(window) == 0 {
			return
		}
		for j := 0; j < prm.F; j++ {
			c.Test(window...)
		}
	}

	// ---- Phase A: tiled along x; row-group exchange swaps y↔z splits ----
	// The tile count uses the GLOBAL maximum x extent so every rank runs
	// the same number of collectives (collective tags stay aligned across
	// the whole world even when the distribution is uneven); ranks with a
	// smaller x extent run trailing zero-count tiles.
	kA := (g.XD.MaxCount() + prm.TA - 1) / prm.TA
	slotsA := prm.WA + 1
	reqsA := make([]mpi.Request, kA)
	sendA := make([][]complex128, slotsA)
	recvA := make([][]complex128, slotsA)
	tileABounds := func(i int) (int, int) {
		lo := i * prm.TA
		hi := lo + prm.TA
		if lo > xc {
			lo = xc
		}
		if hi > xc {
			hi = xc
		}
		return lo, hi
	}
	sendCounts := make([]int, p)
	recvCounts := make([]int, p)
	countsA := func(x0, x1 int) {
		for i := range sendCounts {
			sendCounts[i], recvCounts[i] = 0, 0
		}
		for cj := 0; cj < g.PC; cj++ {
			sendCounts[g.GlobalRank(g.RI, cj)] = (x1 - x0) * yc * g.ZD.Count(cj)
			recvCounts[g.GlobalRank(g.RI, cj)] = (x1 - x0) * g.YD.Count(cj) * zc
		}
	}
	packA := func(i, slot int, window []mpi.Request) {
		x0, x1 := tileABounds(i)
		// FFTz for the tile's rows (contiguous batch), then pack per
		// destination column in (x, y, z) order.
		planZ.Batch(slab[x0*yc*g.Nz:], (x1-x0)*yc, g.Nz)
		doTests(window)
		need := (x1 - x0) * yc * g.Nz
		if cap(sendA[slot]) < need {
			sendA[slot] = make([]complex128, need)
		}
		buf := sendA[slot][:need]
		off := 0
		for cj := 0; cj < g.PC; cj++ {
			zs, zcnt := g.ZD.Start(cj), g.ZD.Count(cj)
			for lx := x0; lx < x1; lx++ {
				for ly := 0; ly < yc; ly++ {
					row := slab[(lx*yc+ly)*g.Nz:]
					copy(buf[off:off+zcnt], row[zs:zs+zcnt])
					off += zcnt
				}
			}
		}
		doTests(window)
	}
	postA := func(i, slot int) mpi.Request {
		x0, x1 := tileABounds(i)
		countsA(x0, x1)
		need := (x1 - x0) * g.Ny * zc
		if cap(recvA[slot]) < need {
			recvA[slot] = make([]complex128, need)
		}
		return c.Ialltoallv(sendA[slot], sendCounts, recvA[slot][:need], recvCounts)
	}
	unpackA := func(i, slot int, window []mpi.Request) {
		x0, x1 := tileABounds(i)
		need := (x1 - x0) * g.Ny * zc
		buf := recvA[slot][:need]
		roff := 0
		for cj := 0; cj < g.PC; cj++ {
			ys, ycnt := g.YD.Start(cj), g.YD.Count(cj)
			for lx := x0; lx < x1; lx++ {
				for ly := 0; ly < ycnt; ly++ {
					for lz := 0; lz < zc; lz++ {
						mid[(lx*zc+lz)*g.Ny+ys+ly] = buf[roff]
						roff++
					}
				}
			}
		}
		doTests(window)
		planY.Batch(mid[x0*zc*g.Ny:], (x1-x0)*zc, g.Ny)
		doTests(window)
	}
	runPhase(kA, prm.WA, reqsA, c,
		func(i int, window []mpi.Request) { packA(i, i%slotsA, window) },
		func(i int) mpi.Request { return postA(i, i%slotsA) },
		func(i int, window []mpi.Request) { unpackA(i, i%slotsA, window) })

	// ---- Phase B: tiled along z; column-group exchange swaps x↔y splits ----
	kB := (g.ZD.MaxCount() + prm.TB - 1) / prm.TB
	slotsB := prm.WB + 1
	reqsB := make([]mpi.Request, kB)
	sendB := make([][]complex128, slotsB)
	recvB := make([][]complex128, slotsB)
	tileBBounds := func(i int) (int, int) {
		lo := i * prm.TB
		hi := lo + prm.TB
		if lo > zc {
			lo = zc
		}
		if hi > zc {
			hi = zc
		}
		return lo, hi
	}
	countsB := func(z0, z1 int) {
		for i := range sendCounts {
			sendCounts[i], recvCounts[i] = 0, 0
		}
		for ri := 0; ri < g.PR; ri++ {
			sendCounts[g.GlobalRank(ri, g.CI)] = xc * g.YD2.Count(ri) * (z1 - z0)
			recvCounts[g.GlobalRank(ri, g.CI)] = g.XD.Count(ri) * y2c * (z1 - z0)
		}
	}
	packB := func(i, slot int, window []mpi.Request) {
		z0, z1 := tileBBounds(i)
		need := xc * g.Ny * (z1 - z0)
		if cap(sendB[slot]) < need {
			sendB[slot] = make([]complex128, need)
		}
		buf := sendB[slot][:need]
		off := 0
		for ri := 0; ri < g.PR; ri++ {
			ys, ycnt := g.YD2.Start(ri), g.YD2.Count(ri)
			for lx := 0; lx < xc; lx++ {
				for lz := z0; lz < z1; lz++ {
					row := mid[(lx*zc+lz)*g.Ny:]
					copy(buf[off:off+ycnt], row[ys:ys+ycnt])
					off += ycnt
				}
			}
		}
		doTests(window)
	}
	postB := func(i, slot int) mpi.Request {
		z0, z1 := tileBBounds(i)
		countsB(z0, z1)
		need := g.Nx * y2c * (z1 - z0)
		if cap(recvB[slot]) < need {
			recvB[slot] = make([]complex128, need)
		}
		return c.Ialltoallv(sendB[slot], sendCounts, recvB[slot][:need], recvCounts)
	}
	unpackB := func(i, slot int, window []mpi.Request) {
		z0, z1 := tileBBounds(i)
		need := g.Nx * y2c * (z1 - z0)
		buf := recvB[slot][:need]
		roff := 0
		for ri := 0; ri < g.PR; ri++ {
			xs, xcnt := g.XD.Start(ri), g.XD.Count(ri)
			for lx := 0; lx < xcnt; lx++ {
				for lz := z0; lz < z1; lz++ {
					for ly := 0; ly < y2c; ly++ {
						out[(ly*zc+lz)*g.Nx+xs+lx] = buf[roff]
						roff++
					}
				}
			}
		}
		doTests(window)
		for ly := 0; ly < y2c; ly++ {
			for lz := z0; lz < z1; lz++ {
				base := (ly*zc + lz) * g.Nx
				row := out[base : base+g.Nx]
				planX.Transform(row, row)
			}
		}
		doTests(window)
	}
	runPhase(kB, prm.WB, reqsB, c,
		func(i int, window []mpi.Request) { packB(i, i%slotsB, window) },
		func(i int) mpi.Request { return postB(i, i%slotsB) },
		func(i int, window []mpi.Request) { unpackB(i, i%slotsB, window) })

	return out, nil
}

// runPhase is the Algorithm-1 pipeline skeleton shared by both phases:
// iteration i packs tile i, waits for tile i−W, posts tile i, and unpacks
// tile i−W.
func runPhase(k, w int, reqs []mpi.Request, c mpi.Comm,
	front func(i int, window []mpi.Request),
	post func(i int) mpi.Request,
	back func(i int, window []mpi.Request)) {
	for i := 0; i < k+w; i++ {
		if i < k {
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			front(i, reqs[lo:i])
		}
		if i >= w {
			c.Wait(reqs[i-w])
		}
		if i < k {
			reqs[i] = post(i)
		}
		if i >= w {
			j := i - w
			hi := j + w + 1
			if hi > k {
				hi = k
			}
			back(j, reqs[j+1:hi])
		}
	}
}
