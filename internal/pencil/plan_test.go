package pencil

import (
	"fmt"
	"testing"
	"time"

	"offt/internal/fft"
	"offt/internal/mpi/fault"
	"offt/internal/mpi/mem"
	"offt/internal/pfft"
)

// runPlan scatters full, runs one (or more) Forward executions through a
// reusable Plan on every rank, and gathers the result.
func runPlan(t *testing.T, full []complex128, nx, ny, nz, pr, pc int, v pfft.Variant, execs int, wopts ...mem.Option) ([]complex128, []pfft.Breakdown) {
	t.Helper()
	p := pr * pc
	w := mem.NewWorld(p, wopts...)
	outs := make([][]complex128, p)
	bds := make([]pfft.Breakdown, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := NewGrid2D(nx, ny, nz, pr, pc, c.Rank())
		if err != nil {
			panic(err)
		}
		pl, err := NewPlan(c, g, v, Params2D{}, fft.Estimate)
		if err != nil {
			panic(err)
		}
		defer pl.Close()
		slab := make([]complex128, g.InSize())
		var out []complex128
		var b pfft.Breakdown
		for e := 0; e < execs; e++ {
			ScatterPencilInto(slab, full, g)
			out, b, err = pl.Forward(slab)
			if err != nil {
				panic(err)
			}
		}
		outs[c.Rank()] = append([]complex128(nil), out...)
		bds[c.Rank()] = b
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	return GatherPencil(outs, nx, ny, nz, pr, pc), bds
}

// TestPlanMatchesForward3D: the reusable pipelined Plan must produce
// bit-identical spectra to the one-shot blocking Forward3D on every
// variant, including mixed-radix, prime and non-cubic grids with uneven
// pencil distributions.
func TestPlanMatchesForward3D(t *testing.T) {
	cases := []struct {
		nx, ny, nz, pr, pc int
	}{
		{16, 16, 16, 2, 2},
		{12, 10, 8, 2, 3}, // mixed radix, uneven y split
		{7, 7, 7, 2, 3},   // prime lines, uneven everywhere
		{8, 12, 4, 3, 2},  // non-cubic
	}
	for _, tc := range cases {
		for _, v := range []pfft.Variant{pfft.Baseline, pfft.NEW, pfft.NEW0} {
			name := fmt.Sprintf("%dx%dx%d_%dx%d_%v", tc.nx, tc.ny, tc.nz, tc.pr, tc.pc, v)
			t.Run(name, func(t *testing.T) {
				full := randCube(tc.nx*tc.ny*tc.nz, 11)
				want := runPencil(t, full, tc.nx, tc.ny, tc.nz, tc.pr, tc.pc)
				got, _ := runPlan(t, full, tc.nx, tc.ny, tc.nz, tc.pr, tc.pc, v, 2)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("element %d: plan %v != Forward3D %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestPlanBackwardRoundTrip: Backward(Forward(x)) must equal Nx·Ny·Nz · x
// for all variants (the backward path is shared), on awkward grids too.
func TestPlanBackwardRoundTrip(t *testing.T) {
	cases := []struct {
		nx, ny, nz, pr, pc int
	}{
		{16, 16, 16, 2, 2},
		{12, 10, 8, 2, 3},
		{7, 7, 7, 2, 3},
		{8, 12, 4, 3, 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dx%dx%d_%dx%d", tc.nx, tc.ny, tc.nz, tc.pr, tc.pc), func(t *testing.T) {
			nx, ny, nz, pr, pc := tc.nx, tc.ny, tc.nz, tc.pr, tc.pc
			full := randCube(nx*ny*nz, 23)
			p := pr * pc
			w := mem.NewWorld(p)
			res := make([]complex128, nx*ny*nz)
			err := w.Run(func(c *mem.Comm) {
				g, err := NewGrid2D(nx, ny, nz, pr, pc, c.Rank())
				if err != nil {
					panic(err)
				}
				pl, err := NewPlan(c, g, pfft.NEW, Params2D{}, fft.Estimate)
				if err != nil {
					panic(err)
				}
				defer pl.Close()
				slab := make([]complex128, g.InSize())
				ScatterPencilInto(slab, full, g)
				out, _, err := pl.Forward(slab)
				if err != nil {
					panic(err)
				}
				spec := append([]complex128(nil), out...)
				back, _, err := pl.Backward(spec)
				if err != nil {
					panic(err)
				}
				c.Barrier()
				GatherInputInto(res, back, g) // disjoint rank regions
			})
			if err != nil {
				t.Fatalf("world failed: %v", err)
			}
			scale := complex(float64(nx*ny*nz), 0)
			want := make([]complex128, len(full))
			for i := range full {
				want[i] = full[i] * scale
			}
			if e := maxErr(want, res); e > 1e-9 {
				t.Fatalf("round-trip error %g", e)
			}
		})
	}
}

// TestPlanDegradesUnderFaults: with an aggressively short soft wait
// deadline and an injected fault mix, the pipeline must downgrade (at
// least once, on some rank) and still produce the exact blocking-path
// spectrum.
func TestPlanDegradesUnderFaults(t *testing.T) {
	const nx, ny, nz, pr, pc = 16, 16, 16, 2, 2
	full := randCube(nx*ny*nz, 31)
	want := runPencil(t, full, nx, ny, nz, pr, pc)
	fp, err := fault.NewPlan(7, fault.ProfileDrop, pr*pc)
	if err != nil {
		t.Fatal(err)
	}
	got, bds := runPlan(t, full, nx, ny, nz, pr, pc, pfft.NEW, 1,
		mem.WithFaults(fp), mem.WithDeadline(time.Nanosecond))
	var dg int64
	for _, b := range bds {
		dg += b.Downgrades
	}
	if dg == 0 {
		t.Fatalf("expected at least one overlapped→blocking downgrade under a 1ns deadline")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d after downgrade: %v != %v", i, got[i], want[i])
		}
	}
}

// TestPlanStandaloneBackward3D: the standalone helper must invert
// Forward3D.
func TestPlanStandaloneBackward3D(t *testing.T) {
	const nx, ny, nz, pr, pc = 8, 12, 4, 2, 2
	full := randCube(nx*ny*nz, 5)
	p := pr * pc
	w := mem.NewWorld(p)
	res := make([]complex128, nx*ny*nz)
	err := w.Run(func(c *mem.Comm) {
		g, err := NewGrid2D(nx, ny, nz, pr, pc, c.Rank())
		if err != nil {
			panic(err)
		}
		out, err := Forward3D(c, g, ScatterPencil(full, g), fft.Estimate)
		if err != nil {
			panic(err)
		}
		back, err := Backward3D(c, g, out, fft.Estimate)
		if err != nil {
			panic(err)
		}
		c.Barrier()
		GatherInputInto(res, back, g)
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	scale := complex(float64(nx*ny*nz), 0)
	want := make([]complex128, len(full))
	for i := range full {
		want[i] = full[i] * scale
	}
	if e := maxErr(want, res); e > 1e-9 {
		t.Fatalf("round-trip error %g", e)
	}
}
