// Package pencil implements the 2-D (pencil) domain decomposition for the
// parallel 3-D FFT — the alternative discussed in §2.2 of the paper and
// used by P3DFFT and Takahashi's library, and the paper's stated future
// work for combining with overlap. With a pr×pc process grid the method
// scales to p = pr·pc ≤ Nx·Ny ranks (versus p ≤ min(Nx, Ny) for the 1-D
// slab decomposition) at the cost of two all-to-all phases, each confined
// to a row or column subgroup of the grid.
//
// Pipeline (forward transform):
//
//	z-pencils  (x∈X_i, y∈Y_j, all z)   — FFTz
//	  ↓ all-to-all within the row group (pc ranks): swap y↔z splits
//	y-pencils  (x∈X_i, all y, z∈Z_j)   — FFTy
//	  ↓ all-to-all within the column group (pr ranks): swap x↔y splits
//	x-pencils  (all x, y∈Y2_i, z∈Z_j)  — FFTx
//
// The output distribution therefore differs from the input's (y is split
// over rows, z over columns), which is standard for pencil transforms.
// This package provides the blocking implementation (like the comparison
// libraries); combining it with the paper's overlap machinery remains
// future work here as in the paper.
package pencil

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
)

// Grid2D is the per-rank geometry of a pr×pc pencil decomposition.
type Grid2D struct {
	Nx, Ny, Nz int
	PR, PC     int
	Rank       int
	RI, CI     int         // row and column index in the process grid
	XD         layout.Dist // x split over rows (phases 0–1)
	YD         layout.Dist // y split over columns (phase 0)
	ZD         layout.Dist // z split over columns (phases 1–2)
	YD2        layout.Dist // y split over rows (phase 2)
}

// NewGrid2D validates and builds the pencil geometry for one rank.
func NewGrid2D(nx, ny, nz, pr, pc, rank int) (Grid2D, error) {
	p := pr * pc
	switch {
	case nx < 1 || ny < 1 || nz < 1:
		return Grid2D{}, fmt.Errorf("pencil: invalid shape %d×%d×%d", nx, ny, nz)
	case pr < 1 || pc < 1:
		return Grid2D{}, fmt.Errorf("pencil: invalid process grid %d×%d", pr, pc)
	case rank < 0 || rank >= p:
		return Grid2D{}, fmt.Errorf("pencil: rank %d out of range [0,%d)", rank, p)
	case nx < pr || ny < pc || ny < pr || nz < pc:
		return Grid2D{}, fmt.Errorf("pencil: %d×%d grid needs Nx≥pr, Ny≥max(pr,pc), Nz≥pc (got %d×%d×%d)", pr, pc, nx, ny, nz)
	}
	return Grid2D{
		Nx: nx, Ny: ny, Nz: nz, PR: pr, PC: pc, Rank: rank,
		RI: rank / pc, CI: rank % pc,
		XD:  layout.Dist{N: nx, P: pr},
		YD:  layout.Dist{N: ny, P: pc},
		ZD:  layout.Dist{N: nz, P: pc},
		YD2: layout.Dist{N: ny, P: pr},
	}, nil
}

// P returns the total rank count.
func (g Grid2D) P() int { return g.PR * g.PC }

// XC returns the local x extent (phases 0–1).
func (g Grid2D) XC() int { return g.XD.Count(g.RI) }

// YC returns the local y extent in phase 0.
func (g Grid2D) YC() int { return g.YD.Count(g.CI) }

// ZC returns the local z extent in phases 1–2.
func (g Grid2D) ZC() int { return g.ZD.Count(g.CI) }

// Y2C returns the local y extent in phase 2.
func (g Grid2D) Y2C() int { return g.YD2.Count(g.RI) }

// InSize returns the input pencil length (xc·yc·Nz).
func (g Grid2D) InSize() int { return g.XC() * g.YC() * g.Nz }

// MidSize returns the phase-1 pencil length (xc·Ny·zc).
func (g Grid2D) MidSize() int { return g.XC() * g.Ny * g.ZC() }

// OutSize returns the output pencil length (y2c·zc·Nx).
func (g Grid2D) OutSize() int { return g.Y2C() * g.ZC() * g.Nx }

// GlobalRank maps process-grid coordinates to a world rank.
func (g Grid2D) GlobalRank(ri, ci int) int { return ri*g.PC + ci }

// Forward3D executes the blocking pencil-decomposed forward 3-D FFT on
// this rank. slab is the rank's input z-pencil in x-y-z layout (length
// InSize(), z contiguous, consumed); the result is the rank's x-pencil in
// y-z-x layout (length OutSize(), x contiguous). Every rank must call it
// with the same shape and flag.
func Forward3D(c mpi.Comm, g Grid2D, slab []complex128, flag fft.Flag) ([]complex128, error) {
	if c.Size() != g.P() || c.Rank() != g.Rank {
		return nil, fmt.Errorf("pencil: comm rank/size %d/%d does not match grid %d/%d", c.Rank(), c.Size(), g.Rank, g.P())
	}
	if len(slab) != g.InSize() {
		return nil, fmt.Errorf("pencil: slab length %d, want %d", len(slab), g.InSize())
	}
	p := g.P()
	xc, yc, zc, y2c := g.XC(), g.YC(), g.ZC(), g.Y2C()

	// Phase 0: FFTz on the contiguous z rows.
	planZ := fft.Plan1DCached(g.Nz, fft.Forward, flag).Clone()
	planZ.Batch(slab, xc*yc, g.Nz)

	// Transpose A within the row group: split z over columns, gather y.
	// Send to (RI, cj): the sub-block z ∈ Z_cj of everything local, packed
	// in (x, y, z) order.
	sendCounts := make([]int, p)
	recvCounts := make([]int, p)
	sendBuf := make([]complex128, g.InSize())
	off := 0
	for cj := 0; cj < g.PC; cj++ {
		dst := g.GlobalRank(g.RI, cj)
		zs, zcnt := g.ZD.Start(cj), g.ZD.Count(cj)
		sendCounts[dst] = xc * yc * zcnt
		for lx := 0; lx < xc; lx++ {
			for ly := 0; ly < yc; ly++ {
				row := slab[(lx*yc+ly)*g.Nz:]
				copy(sendBuf[off:off+zcnt], row[zs:zs+zcnt])
				off += zcnt
			}
		}
	}
	// Receive from (RI, cj): its y-range Y_cj for our z-range.
	for cj := 0; cj < g.PC; cj++ {
		recvCounts[g.GlobalRank(g.RI, cj)] = xc * g.YD.Count(cj) * zc
	}
	recvBuf := make([]complex128, g.MidSize())
	c.Alltoallv(sendBuf, sendCounts, recvBuf, recvCounts)

	// Unpack into the phase-1 layout [xc][zc][Ny] (y contiguous) and FFTy.
	mid := make([]complex128, g.MidSize())
	roff := 0
	for cj := 0; cj < g.PC; cj++ {
		ys, ycnt := g.YD.Start(cj), g.YD.Count(cj)
		for lx := 0; lx < xc; lx++ {
			for ly := 0; ly < ycnt; ly++ {
				for lz := 0; lz < zc; lz++ {
					mid[(lx*zc+lz)*g.Ny+ys+ly] = recvBuf[roff]
					roff++
				}
			}
		}
	}
	planY := fft.Plan1DCached(g.Ny, fft.Forward, flag).Clone()
	planY.Batch(mid, xc*zc, g.Ny)

	// Transpose B within the column group: split y over rows, gather x.
	// Send to (ri, CI): the sub-block y ∈ Y2_ri, packed in (x, z, y) order.
	for i := range sendCounts {
		sendCounts[i], recvCounts[i] = 0, 0
	}
	sendBuf2 := make([]complex128, g.MidSize())
	off = 0
	for ri := 0; ri < g.PR; ri++ {
		dst := g.GlobalRank(ri, g.CI)
		ys, ycnt := g.YD2.Start(ri), g.YD2.Count(ri)
		sendCounts[dst] = xc * zc * ycnt
		for lx := 0; lx < xc; lx++ {
			for lz := 0; lz < zc; lz++ {
				row := mid[(lx*zc+lz)*g.Ny:]
				copy(sendBuf2[off:off+ycnt], row[ys:ys+ycnt])
				off += ycnt
			}
		}
	}
	for ri := 0; ri < g.PR; ri++ {
		recvCounts[g.GlobalRank(ri, g.CI)] = g.XD.Count(ri) * zc * y2c
	}
	recvBuf2 := make([]complex128, g.OutSize())
	c.Alltoallv(sendBuf2, sendCounts, recvBuf2, recvCounts)

	// Unpack into the output layout [y2c][zc][Nx] (x contiguous) and FFTx.
	out := make([]complex128, g.OutSize())
	roff = 0
	for ri := 0; ri < g.PR; ri++ {
		xs, xcnt := g.XD.Start(ri), g.XD.Count(ri)
		for lx := 0; lx < xcnt; lx++ {
			for lz := 0; lz < zc; lz++ {
				for ly := 0; ly < y2c; ly++ {
					out[(ly*zc+lz)*g.Nx+xs+lx] = recvBuf2[roff]
					roff++
				}
			}
		}
	}
	planX := fft.Plan1DCached(g.Nx, fft.Forward, flag).Clone()
	planX.Batch(out, y2c*zc, g.Nx)
	return out, nil
}

// ScatterPencil extracts rank g.Rank's input z-pencil (x-y-z layout) from
// a full array in x-y-z layout.
func ScatterPencil(full []complex128, g Grid2D) []complex128 {
	if len(full) != g.Nx*g.Ny*g.Nz {
		panic(fmt.Sprintf("pencil: ScatterPencil: full length %d != %d", len(full), g.Nx*g.Ny*g.Nz))
	}
	slab := make([]complex128, g.InSize())
	ScatterPencilInto(slab, full, g)
	return slab
}

// GatherPencil assembles the full array (x-y-z layout) from the per-rank
// output x-pencils of Forward3D.
func GatherPencil(outs [][]complex128, nx, ny, nz, pr, pc int) []complex128 {
	full := make([]complex128, nx*ny*nz)
	for rank := 0; rank < pr*pc; rank++ {
		g, err := NewGrid2D(nx, ny, nz, pr, pc, rank)
		if err != nil {
			panic(err)
		}
		GatherPencilInto(full, outs[rank], g)
	}
	return full
}
