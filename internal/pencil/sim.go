package pencil

import (
	"math"

	"offt/internal/machine"
	"offt/internal/mpi"
	"offt/internal/mpi/sim"
)

// Simulate runs the blocking pencil-decomposed 3-D FFT of an n³ array on a
// pr×pc simulated process grid and returns the job completion time
// (slowest rank, virtual nanoseconds). It mirrors Forward3D's control flow
// with cost-model kernels, enabling the 1-D-vs-2-D decomposition
// comparison of §2.2: one all-to-all over p ranks versus two all-to-alls
// over pc and pr ranks.
func Simulate(m machine.Machine, pr, pc, n int) (int64, error) {
	return SimulateGrid(m, pr, pc, n, n, n)
}

// SimulateGrid is Simulate for a general Nx×Ny×Nz grid.
func SimulateGrid(m machine.Machine, pr, pc, nx, ny, nz int) (int64, error) {
	if _, err := NewGrid2D(nx, ny, nz, pr, pc, 0); err != nil {
		return 0, err
	}
	p := pr * pc
	w := sim.NewWorld(m, p)
	ends := make([]int64, p)
	err := w.Run(func(c *sim.Comm) {
		g, err := NewGrid2D(nx, ny, nz, pr, pc, c.Rank())
		if err != nil {
			panic(err)
		}
		cmp := m.Cmp
		fftCost := func(rows, length int) int64 {
			if length < 2 {
				return int64(cmp.FFTNsPerUnit * float64(rows))
			}
			return int64(cmp.FFTNsPerUnit * float64(rows) * float64(length) * math.Log2(float64(length)))
		}
		// Pack/unpack of a whole pencil: streaming copies with a modest
		// cache penalty (the copies stride through the pencil).
		copyCost := func(elems int) int64 {
			return int64(cmp.MemNsPerElem * 1.5 * float64(elems))
		}
		xc, yc, zc, y2c := g.XC(), g.YC(), g.ZC(), g.Y2C()

		// FFTz.
		c.Advance(fftCost(xc*yc, g.Nz))

		// Transpose A within the row group.
		sendCounts := make([]int, p)
		recvCounts := make([]int, p)
		for cj := 0; cj < g.PC; cj++ {
			sendCounts[g.GlobalRank(g.RI, cj)] = xc * yc * g.ZD.Count(cj)
			recvCounts[g.GlobalRank(g.RI, cj)] = xc * g.YD.Count(cj) * zc
		}
		c.Advance(copyCost(g.InSize())) // pack
		c.Alltoallv(nil, sendCounts, nil, recvCounts)
		c.Advance(copyCost(g.MidSize())) // unpack

		// FFTy.
		c.Advance(fftCost(xc*zc, g.Ny))

		// Transpose B within the column group.
		for i := range sendCounts {
			sendCounts[i], recvCounts[i] = 0, 0
		}
		for ri := 0; ri < g.PR; ri++ {
			sendCounts[g.GlobalRank(ri, g.CI)] = xc * zc * g.YD2.Count(ri)
			recvCounts[g.GlobalRank(ri, g.CI)] = g.XD.Count(ri) * zc * y2c
		}
		c.Advance(copyCost(g.MidSize()))
		c.Alltoallv(nil, sendCounts, nil, recvCounts)
		c.Advance(copyCost(g.OutSize()))

		// FFTx.
		c.Advance(fftCost(y2c*zc, g.Nx))
		ends[c.Rank()] = c.Now()
	})
	if err != nil {
		return 0, err
	}
	var max int64
	for _, e := range ends {
		if e > max {
			max = e
		}
	}
	return max, nil
}

// SimulateOverlapped runs the overlapped pencil transform (the paper's §7
// future work realized: overlap + 2-D decomposition) on the simulated
// cluster and returns the job completion time. Comparing it against
// Simulate quantifies how much of the two exchange phases the pipeline
// hides.
func SimulateOverlapped(m machine.Machine, pr, pc, n int, prm Params2D) (int64, error) {
	return SimulateOverlappedGrid(m, pr, pc, n, n, n, prm)
}

// SimulateOverlappedGrid is SimulateOverlapped for a general Nx×Ny×Nz grid.
func SimulateOverlappedGrid(m machine.Machine, pr, pc, nx, ny, nz int, prm Params2D) (int64, error) {
	g0, err := NewGrid2D(nx, ny, nz, pr, pc, 0)
	if err != nil {
		return 0, err
	}
	if err := prm.Validate(g0); err != nil {
		return 0, err
	}
	p := pr * pc
	w := sim.NewWorld(m, p)
	ends := make([]int64, p)
	err = w.Run(func(c *sim.Comm) {
		g, err := NewGrid2D(nx, ny, nz, pr, pc, c.Rank())
		if err != nil {
			panic(err)
		}
		// Same schedule selection as the real overlapped path; SimulateGrid
		// stays pairwise (the pre-tunable baseline).
		mpi.SetExchange(c, mpi.Exchange{Alg: prm.Comm})
		cmp := m.Cmp
		fftCost := func(rows, length int) int64 {
			if rows <= 0 {
				return 0
			}
			if length < 2 {
				return int64(cmp.FFTNsPerUnit * float64(rows))
			}
			return int64(cmp.FFTNsPerUnit * float64(rows) * float64(length) * math.Log2(float64(length)))
		}
		copyCost := func(elems int) int64 {
			return int64(cmp.MemNsPerElem * 1.5 * float64(elems))
		}
		xc, yc, zc, y2c := g.XC(), g.YC(), g.ZC(), g.Y2C()
		sendCounts := make([]int, p)
		recvCounts := make([]int, p)
		doTests := func(window []mpi.Request) {
			if len(window) == 0 {
				return
			}
			for j := 0; j < prm.F; j++ {
				c.Test(window...)
			}
		}

		// Phase A: tiles along x.
		kA := (g.XD.MaxCount() + prm.TA - 1) / prm.TA
		boundsA := func(i int) (int, int) {
			lo, hi := i*prm.TA, i*prm.TA+prm.TA
			if lo > xc {
				lo = xc
			}
			if hi > xc {
				hi = xc
			}
			return lo, hi
		}
		reqsA := make([]mpi.Request, kA)
		runPhase(kA, prm.WA, reqsA, c,
			func(i int, window []mpi.Request) {
				x0, x1 := boundsA(i)
				c.Advance(fftCost((x1-x0)*yc, g.Nz))
				doTests(window)
				c.Advance(copyCost((x1 - x0) * yc * g.Nz))
				doTests(window)
			},
			func(i int) mpi.Request {
				x0, x1 := boundsA(i)
				for j := range sendCounts {
					sendCounts[j], recvCounts[j] = 0, 0
				}
				for cj := 0; cj < g.PC; cj++ {
					sendCounts[g.GlobalRank(g.RI, cj)] = (x1 - x0) * yc * g.ZD.Count(cj)
					recvCounts[g.GlobalRank(g.RI, cj)] = (x1 - x0) * g.YD.Count(cj) * zc
				}
				return c.Ialltoallv(nil, sendCounts, nil, recvCounts)
			},
			func(i int, window []mpi.Request) {
				x0, x1 := boundsA(i)
				c.Advance(copyCost((x1 - x0) * g.Ny * zc))
				doTests(window)
				c.Advance(fftCost((x1-x0)*zc, g.Ny))
				doTests(window)
			})

		// Phase B: tiles along z.
		kB := (g.ZD.MaxCount() + prm.TB - 1) / prm.TB
		boundsB := func(i int) (int, int) {
			lo, hi := i*prm.TB, i*prm.TB+prm.TB
			if lo > zc {
				lo = zc
			}
			if hi > zc {
				hi = zc
			}
			return lo, hi
		}
		reqsB := make([]mpi.Request, kB)
		runPhase(kB, prm.WB, reqsB, c,
			func(i int, window []mpi.Request) {
				z0, z1 := boundsB(i)
				c.Advance(copyCost(xc * g.Ny * (z1 - z0)))
				doTests(window)
			},
			func(i int) mpi.Request {
				z0, z1 := boundsB(i)
				for j := range sendCounts {
					sendCounts[j], recvCounts[j] = 0, 0
				}
				for ri := 0; ri < g.PR; ri++ {
					sendCounts[g.GlobalRank(ri, g.CI)] = xc * g.YD2.Count(ri) * (z1 - z0)
					recvCounts[g.GlobalRank(ri, g.CI)] = g.XD.Count(ri) * y2c * (z1 - z0)
				}
				return c.Ialltoallv(nil, sendCounts, nil, recvCounts)
			},
			func(i int, window []mpi.Request) {
				z0, z1 := boundsB(i)
				c.Advance(copyCost(g.Nx * y2c * (z1 - z0)))
				doTests(window)
				c.Advance(fftCost(y2c*(z1-z0), g.Nx))
				doTests(window)
			})
		ends[c.Rank()] = c.Now()
	})
	if err != nil {
		return 0, err
	}
	var max int64
	for _, e := range ends {
		if e > max {
			max = e
		}
	}
	return max, nil
}
