package pencil

import "fmt"

// ScatterPencilInto extracts rank g.Rank's input z-pencil (x-y-z layout,
// length InSize()) from a full array in x-y-z layout into dst without
// allocating — the create-once/execute-many counterpart of ScatterPencil.
func ScatterPencilInto(dst, full []complex128, g Grid2D) {
	if len(full) != g.Nx*g.Ny*g.Nz || len(dst) != g.InSize() {
		panic(fmt.Sprintf("pencil: ScatterPencilInto: full/dst lengths %d/%d, want %d/%d",
			len(full), len(dst), g.Nx*g.Ny*g.Nz, g.InSize()))
	}
	xc, yc := g.XC(), g.YC()
	x0, y0 := g.XD.Start(g.RI), g.YD.Start(g.CI)
	for lx := 0; lx < xc; lx++ {
		for ly := 0; ly < yc; ly++ {
			src := full[((x0+lx)*g.Ny+(y0+ly))*g.Nz:]
			copy(dst[(lx*yc+ly)*g.Nz:(lx*yc+ly)*g.Nz+g.Nz], src[:g.Nz])
		}
	}
}

// GatherPencilInto writes rank g.Rank's output x-pencil (y-z-x layout, as
// produced by the forward transform) into the full x-y-z array.
func GatherPencilInto(full, out []complex128, g Grid2D) {
	if len(full) != g.Nx*g.Ny*g.Nz || len(out) != g.OutSize() {
		panic(fmt.Sprintf("pencil: GatherPencilInto: full/out lengths %d/%d, want %d/%d",
			len(full), len(out), g.Nx*g.Ny*g.Nz, g.OutSize()))
	}
	y2c, zc := g.Y2C(), g.ZC()
	y0, z0 := g.YD2.Start(g.RI), g.ZD.Start(g.CI)
	for ly := 0; ly < y2c; ly++ {
		for lz := 0; lz < zc; lz++ {
			row := out[(ly*zc+lz)*g.Nx:]
			for x := 0; x < g.Nx; x++ {
				full[(x*g.Ny+(y0+ly))*g.Nz+(z0+lz)] = row[x]
			}
		}
	}
}

// ScatterSpectrumInto extracts rank g.Rank's spectrum x-pencil (y-z-x
// layout, length OutSize() — the forward OUTPUT distribution) from a full
// spectrum in x-y-z layout. It feeds the backward transform.
func ScatterSpectrumInto(dst, full []complex128, g Grid2D) {
	if len(full) != g.Nx*g.Ny*g.Nz || len(dst) != g.OutSize() {
		panic(fmt.Sprintf("pencil: ScatterSpectrumInto: full/dst lengths %d/%d, want %d/%d",
			len(full), len(dst), g.Nx*g.Ny*g.Nz, g.OutSize()))
	}
	y2c, zc := g.Y2C(), g.ZC()
	y0, z0 := g.YD2.Start(g.RI), g.ZD.Start(g.CI)
	for ly := 0; ly < y2c; ly++ {
		for lz := 0; lz < zc; lz++ {
			row := dst[(ly*zc+lz)*g.Nx:]
			for x := 0; x < g.Nx; x++ {
				row[x] = full[(x*g.Ny+(y0+ly))*g.Nz+(z0+lz)]
			}
		}
	}
}

// GatherInputInto writes rank g.Rank's z-pencil (x-y-z layout, length
// InSize() — the forward INPUT distribution, as produced by the backward
// transform) into the full x-y-z array.
func GatherInputInto(full, slab []complex128, g Grid2D) {
	if len(full) != g.Nx*g.Ny*g.Nz || len(slab) != g.InSize() {
		panic(fmt.Sprintf("pencil: GatherInputInto: full/slab lengths %d/%d, want %d/%d",
			len(full), len(slab), g.Nx*g.Ny*g.Nz, g.InSize()))
	}
	xc, yc := g.XC(), g.YC()
	x0, y0 := g.XD.Start(g.RI), g.YD.Start(g.CI)
	for lx := 0; lx < xc; lx++ {
		for ly := 0; ly < yc; ly++ {
			dst := full[((x0+lx)*g.Ny+(y0+ly))*g.Nz:]
			copy(dst[:g.Nz], slab[(lx*yc+ly)*g.Nz:(lx*yc+ly)*g.Nz+g.Nz])
		}
	}
}

// DefaultProcGrid picks the default (Py×Pz) process-grid shape for p ranks
// on an Nx×Ny×Nz grid: the most nearly square factorization pr×pc = p that
// satisfies the pencil feasibility constraints (Nx ≥ pr, Ny ≥ max(pr, pc),
// Nz ≥ pc), preferring pr ≤ pc among equals (taller columns keep phase B —
// the x↔y exchange over pr ranks — the cheaper one). Returns an error when
// no factorization fits.
func DefaultProcGrid(nx, ny, nz, p int) (pr, pc int, err error) {
	if p < 1 {
		return 0, 0, fmt.Errorf("pencil: rank count %d must be at least 1", p)
	}
	best := -1
	for r := 1; r*r <= p; r++ {
		if p%r != 0 {
			continue
		}
		for _, cand := range [2]int{r, p / r} {
			cr, cc := cand, p/cand
			if nx < cr || ny < cr || ny < cc || nz < cc {
				continue
			}
			// Score by squareness: smaller max(pr,pc) is squarer.
			score := cc
			if cr > cc {
				score = cr
			}
			if best == -1 || score < best || (score == best && cr < pr) {
				pr, pc, best = cr, cc, score
			}
		}
	}
	if best == -1 {
		return 0, 0, fmt.Errorf("pencil: no %d-rank process grid fits %d×%d×%d (need Nx ≥ pr, Ny ≥ max(pr,pc), Nz ≥ pc for some pr·pc = %d)", p, nx, ny, nz, p)
	}
	return pr, pc, nil
}
