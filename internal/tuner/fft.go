package tuner

import (
	"fmt"
	"math"
	"time"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/model"
	"offt/internal/mpi"
	"offt/internal/pencil"
	"offt/internal/pfft"
	"offt/internal/telemetry"
)

// commDim is the exchange-schedule dimension shared by every space that
// searches the 11th parameter: one value per mpi.CommAlg, pairwise first
// so the default point keeps the historical schedule.
func commDim() Dim {
	algs := mpi.CommAlgs()
	vals := make([]int, len(algs))
	for i, a := range algs {
		vals[i] = int(a)
	}
	return Dim{Name: "Comm", Values: vals}
}

// PinComm returns a copy of space with its Comm dimension collapsed to
// the single schedule alg, so a search explores the remaining parameters
// under a pinned exchange (offt-tune -comm). Spaces without a Comm
// dimension pass through unchanged.
func PinComm(space Space, alg mpi.CommAlg) Space {
	dims := append([]Dim(nil), space.Dims...)
	for i, d := range dims {
		if d.Name == "Comm" {
			dims[i] = Dim{Name: "Comm", Values: []int{int(alg)}}
		}
	}
	return Space{Dims: dims}
}

// FFTSpace builds the eleven-dimensional log-reduced search space of the
// paper's design for geometry g (Table 1, with §4.4's reduction: powers of
// two plus boundary values; W keeps its small dense range), extended by
// the all-to-all exchange schedule.
func FFTSpace(g layout.Grid) Space {
	maxF := 16 * g.P
	if maxF < 64 {
		maxF = 64
	}
	return Space{Dims: []Dim{
		{Name: "T", Values: PowersOfTwoUpTo(g.Nz)},
		{Name: "W", Values: IntRange(1, 6)},
		{Name: "Px", Values: PowersOfTwoUpTo(g.XC())},
		{Name: "Pz", Values: PowersOfTwoUpTo(g.Nz)},
		{Name: "Uy", Values: PowersOfTwoUpTo(g.YC())},
		{Name: "Uz", Values: PowersOfTwoUpTo(g.Nz)},
		{Name: "Fy", Values: ZeroAndPowersOfTwoUpTo(maxF)},
		{Name: "Fp", Values: ZeroAndPowersOfTwoUpTo(maxF)},
		{Name: "Fu", Values: ZeroAndPowersOfTwoUpTo(maxF)},
		{Name: "Fx", Values: ZeroAndPowersOfTwoUpTo(maxF)},
		commDim(),
	}}
}

// DecodeParams converts an FFTSpace configuration into Params.
func DecodeParams(cfg []int) pfft.Params {
	return pfft.Params{
		T: cfg[0], W: cfg[1], Px: cfg[2], Pz: cfg[3], Uy: cfg[4], Uz: cfg[5],
		Fy: cfg[6], Fp: cfg[7], Fu: cfg[8], Fx: cfg[9],
		Comm: mpi.CommAlg(cfg[10]),
	}
}

// EncodeParams is the inverse of DecodeParams.
func EncodeParams(p pfft.Params) []int {
	return []int{p.T, p.W, p.Px, p.Pz, p.Uy, p.Uz, p.Fy, p.Fp, p.Fu, p.Fx, int(p.Comm)}
}

// THSpace builds the three-dimensional space for the TH comparison model.
func THSpace(g layout.Grid) Space {
	maxF := 16 * g.P
	if maxF < 64 {
		maxF = 64
	}
	return Space{Dims: []Dim{
		{Name: "T", Values: PowersOfTwoUpTo(g.Nz)},
		{Name: "W", Values: IntRange(1, 6)},
		{Name: "F", Values: ZeroAndPowersOfTwoUpTo(maxF)},
	}}
}

// DecodeTHParams converts a THSpace configuration into THParams.
func DecodeTHParams(cfg []int) pfft.THParams {
	return pfft.THParams{T: cfg[0], W: cfg[1], F: cfg[2]}
}

// snapDown returns the largest space value of dimension d that is <= v
// (the default point must land on the log-reduced grid).
func snapDown(d Dim, v int) int {
	best := d.Values[0]
	for _, x := range d.Values {
		if x <= v {
			best = x
		}
	}
	return best
}

// InitialSimplex builds the §4.4 starting simplex: the default point plus
// one neighbor per dimension (the next value up, or down when already at
// the top of the range).
func InitialSimplex(space Space, def []int) [][]int {
	d := len(space.Dims)
	base := make([]int, d)
	for i, dim := range space.Dims {
		base[i] = snapDown(dim, def[i])
	}
	simplex := [][]int{base}
	for i, dim := range space.Dims {
		pt := append([]int(nil), base...)
		idx := 0
		for j, v := range dim.Values {
			if v == base[i] {
				idx = j
				break
			}
		}
		switch {
		case idx+1 < len(dim.Values):
			pt[i] = dim.Values[idx+1]
		case idx > 0:
			pt[i] = dim.Values[idx-1]
		}
		simplex = append(simplex, pt)
	}
	return simplex
}

// TuneOutcome reports an FFT tuning run.
type TuneOutcome struct {
	Search Result
	// VirtualNs is the simulated time consumed by objective executions
	// (what "auto-tuning time" means on the simulated cluster; FFTz and
	// Transpose are skipped per §4.4 technique 3).
	VirtualNs int64
	// WallNs is the real time the tuning loop took on this host.
	WallNs int64
}

// BestTime returns the tuned objective value (TunedPortion, ns).
func (o TuneOutcome) BestTime() int64 { return int64(o.Search.BestCost) }

// Strategy runs one search over a space from a default starting point
// with an evaluation budget.
type Strategy func(space Space, obj Objective, def []int, budget int) Result

// NelderMeadStrategy adapts NelderMead (with the §4.4 initial simplex) to
// the Strategy signature.
func NelderMeadStrategy(space Space, obj Objective, def []int, budget int) Result {
	return NelderMead(space, obj, Options{
		MaxEvals:       budget,
		InitialSimplex: InitialSimplex(space, def),
	})
}

// NelderMeadTelemetry returns NelderMeadStrategy with per-evaluation
// telemetry feeding r ("tuner.*" metrics). A nil registry yields the plain
// strategy.
func NelderMeadTelemetry(r *telemetry.Registry) Strategy {
	return func(space Space, obj Objective, def []int, budget int) Result {
		return NelderMead(space, obj, Options{
			MaxEvals:       budget,
			InitialSimplex: InitialSimplex(space, def),
			Telemetry:      r,
		})
	}
}

// CoordinateStrategy adapts CoordinateDescent to the Strategy signature.
func CoordinateStrategy(space Space, obj Objective, def []int, budget int) Result {
	return CoordinateDescent(space, obj, def, budget)
}

// TuneNEW auto-tunes the paper's design for (machine, p, N³) with
// Nelder–Mead and returns the best parameters found.
func TuneNEW(m machine.Machine, p, n, maxEvals int) (pfft.Params, TuneOutcome, error) {
	return TuneNEWWith(m, p, n, maxEvals, NelderMeadStrategy)
}

// TuneNEWWith is TuneNEW with a pluggable search strategy (§7's "other
// optimization strategies").
func TuneNEWWith(m machine.Machine, p, n, maxEvals int, strat Strategy) (pfft.Params, TuneOutcome, error) {
	return TuneNEWPinned(m, p, n, maxEvals, strat, nil)
}

// TuneNEWPinned is TuneNEWWith with an optional pinned exchange schedule:
// a non-nil pin collapses the Comm dimension so the search tunes the
// remaining ten parameters under that schedule (the store entry should
// then be keyed with Key.WithComm). A nil pin searches all schedules.
func TuneNEWPinned(m machine.Machine, p, n, maxEvals int, strat Strategy, pin *mpi.CommAlg) (pfft.Params, TuneOutcome, error) {
	g, err := layout.NewGrid(n, n, n, p, 0)
	if err != nil {
		return pfft.Params{}, TuneOutcome{}, err
	}
	space := FFTSpace(g)
	if pin != nil {
		space = PinComm(space, *pin)
	}
	var virtual int64
	obj := func(cfg []int) float64 {
		prm := DecodeParams(cfg)
		if prm.Validate(g) != nil {
			return math.Inf(1)
		}
		res, err := model.SimulateCube(m, p, n, model.Spec{Variant: pfft.NEW, Params: prm})
		if err != nil {
			return math.Inf(1)
		}
		virtual += res.MaxTuned
		return float64(res.MaxTuned)
	}
	start := time.Now()
	sr := strat(space, obj, EncodeParams(pfft.DefaultParams(g)), maxEvals)
	out := TuneOutcome{Search: sr, VirtualNs: virtual, WallNs: time.Since(start).Nanoseconds()}
	if sr.Best == nil {
		return pfft.Params{}, out, fmt.Errorf("tuner: no feasible configuration found")
	}
	return DecodeParams(sr.Best), out, nil
}

// TuneTH auto-tunes the TH comparison model's three parameters.
func TuneTH(m machine.Machine, p, n, maxEvals int) (pfft.THParams, TuneOutcome, error) {
	g, err := layout.NewGrid(n, n, n, p, 0)
	if err != nil {
		return pfft.THParams{}, TuneOutcome{}, err
	}
	space := THSpace(g)
	var virtual int64
	obj := func(cfg []int) float64 {
		prm := DecodeTHParams(cfg)
		if prm.Validate(g) != nil {
			return math.Inf(1)
		}
		res, err := model.SimulateCube(m, p, n, model.Spec{Variant: pfft.TH, TH: prm})
		if err != nil {
			return math.Inf(1)
		}
		virtual += res.MaxTuned
		return float64(res.MaxTuned)
	}
	def := pfft.DefaultTHParams(g)
	start := time.Now()
	sr := NelderMead(space, obj, Options{
		MaxEvals:       maxEvals,
		InitialSimplex: InitialSimplex(space, []int{def.T, def.W, def.F}),
	})
	out := TuneOutcome{Search: sr, VirtualNs: virtual, WallNs: time.Since(start).Nanoseconds()}
	if sr.Best == nil {
		return pfft.THParams{}, out, fmt.Errorf("tuner: no feasible configuration found")
	}
	return DecodeTHParams(sr.Best), out, nil
}

// RandomNEW evaluates n random configurations (the §5.3.1 comparison and
// the Fig. 5 distribution) and returns the search record.
func RandomNEW(m machine.Machine, p, n, samples int, seed int64) (TuneOutcome, error) {
	g, err := layout.NewGrid(n, n, n, p, 0)
	if err != nil {
		return TuneOutcome{}, err
	}
	space := FFTSpace(g)
	var virtual int64
	obj := func(cfg []int) float64 {
		prm := DecodeParams(cfg)
		if prm.Validate(g) != nil {
			return math.Inf(1)
		}
		res, err := model.SimulateCube(m, p, n, model.Spec{Variant: pfft.NEW, Params: prm})
		if err != nil {
			return math.Inf(1)
		}
		virtual += res.MaxTuned
		return float64(res.MaxTuned)
	}
	start := time.Now()
	sr := RandomSearch(space, obj, samples, seed)
	return TuneOutcome{Search: sr, VirtualNs: virtual, WallNs: time.Since(start).Nanoseconds()}, nil
}

// PencilSpace builds the search space for the overlapped 2-D pencil
// transform's five parameters (TA, WA, TB, WB, F).
func PencilSpace(g pencil.Grid2D) Space {
	maxF := 8 * g.P()
	if maxF < 64 {
		maxF = 64
	}
	return Space{Dims: []Dim{
		{Name: "TA", Values: PowersOfTwoUpTo(g.XD.MaxCount())},
		{Name: "WA", Values: IntRange(1, 6)},
		{Name: "TB", Values: PowersOfTwoUpTo(g.ZD.MaxCount())},
		{Name: "WB", Values: IntRange(1, 6)},
		{Name: "F", Values: ZeroAndPowersOfTwoUpTo(maxF)},
	}}
}

// DecodePencilParams converts a PencilSpace configuration into Params2D.
func DecodePencilParams(cfg []int) pencil.Params2D {
	return pencil.Params2D{TA: cfg[0], WA: cfg[1], TB: cfg[2], WB: cfg[3], F: cfg[4]}
}

// PencilGridSpace builds the search space of a pencil plan's public
// parameters: the process-grid row count Pr ranges over the feasible
// divisors of the rank count (the Py of each Py×Pz factorization), joined
// by the tile, window, and Test-frequency subset of Table 1 the 2-D
// pipeline consumes. This is the space NewPlan-facing tuning explores —
// the grid shape is a tunable, not an input.
func PencilGridSpace(nx, ny, nz, ranks int) (Space, error) {
	var rows []int
	for pr := 1; pr <= ranks; pr++ {
		if ranks%pr != 0 {
			continue
		}
		if _, err := pencil.NewGrid2D(nx, ny, nz, pr, ranks/pr, 0); err == nil {
			rows = append(rows, pr)
		}
	}
	if len(rows) == 0 {
		return Space{}, fmt.Errorf("tuner: no feasible pencil process grid for %d ranks over %d×%d×%d", ranks, nx, ny, nz)
	}
	maxT := nx
	if nz > maxT {
		maxT = nz
	}
	maxF := 8 * ranks
	if maxF < 64 {
		maxF = 64
	}
	return Space{Dims: []Dim{
		{Name: "Pr", Values: rows},
		{Name: "T", Values: PowersOfTwoUpTo(maxT)},
		{Name: "W", Values: IntRange(1, 6)},
		{Name: "Fy", Values: ZeroAndPowersOfTwoUpTo(maxF)},
		commDim(),
	}}, nil
}

// DecodePencilGridParams converts a PencilGridSpace configuration into
// the public parameter set (Pr pinned to the searched row count, the
// slab-only tiling fields at their neutral 1).
func DecodePencilGridParams(cfg []int) pfft.Params {
	return pfft.Params{
		T: cfg[1], W: cfg[2], Px: 1, Pz: 1, Uy: 1, Uz: 1,
		Fy: cfg[3], Fp: cfg[3], Fu: cfg[3], Fx: cfg[3], Pr: cfg[0],
		Comm: mpi.CommAlg(cfg[4]),
	}
}

// TunePencilNEW auto-tunes the overlapped pencil transform for a total
// rank count on machine m, searching the process-grid factorization
// together with the pipeline parameters. The returned Params carry the
// winning Pr, ready for WithParams on a WithDecomp(Pencil) plan or a
// decomp-keyed tuned-store entry.
func TunePencilNEW(m machine.Machine, ranks, n, maxEvals int) (pfft.Params, TuneOutcome, error) {
	return TunePencilNEWPinned(m, ranks, n, maxEvals, nil)
}

// TunePencilNEWPinned is TunePencilNEW with an optional pinned exchange
// schedule (see TuneNEWPinned).
func TunePencilNEWPinned(m machine.Machine, ranks, n, maxEvals int, pin *mpi.CommAlg) (pfft.Params, TuneOutcome, error) {
	space, err := PencilGridSpace(n, n, n, ranks)
	if err != nil {
		return pfft.Params{}, TuneOutcome{}, err
	}
	if pin != nil {
		space = PinComm(space, *pin)
	}
	var virtual int64
	obj := func(cfg []int) float64 {
		prm := DecodePencilGridParams(cfg)
		pr, pc := prm.Pr, ranks/prm.Pr
		g, err := pencil.NewGrid2D(n, n, n, pr, pc, 0)
		if err != nil {
			return math.Inf(1)
		}
		v, err := pencil.SimulateOverlappedGrid(m, pr, pc, n, n, n, pencil.FromParams(prm, g))
		if err != nil {
			return math.Inf(1)
		}
		virtual += v
		return float64(v)
	}
	dpr, dpc, err := pencil.DefaultProcGrid(n, n, n, ranks)
	if err != nil {
		return pfft.Params{}, TuneOutcome{}, err
	}
	g0, err := pencil.NewGrid2D(n, n, n, dpr, dpc, 0)
	if err != nil {
		return pfft.Params{}, TuneOutcome{}, err
	}
	d2 := pencil.DefaultParams2D(g0)
	start := time.Now()
	sr := NelderMead(space, obj, Options{
		MaxEvals:       maxEvals,
		InitialSimplex: InitialSimplex(space, []int{dpr, d2.TA, d2.WA, d2.F, int(mpi.CommPairwise)}),
	})
	out := TuneOutcome{Search: sr, VirtualNs: virtual, WallNs: time.Since(start).Nanoseconds()}
	if sr.Best == nil {
		return pfft.Params{}, out, fmt.Errorf("tuner: no feasible configuration found")
	}
	return DecodePencilGridParams(sr.Best), out, nil
}

// TunePencil auto-tunes the overlapped pencil transform for a pr×pc grid
// on machine m — auto-tuning applied to the paper's §7 future work.
func TunePencil(m machine.Machine, pr, pc, n, maxEvals int) (pencil.Params2D, TuneOutcome, error) {
	g, err := pencil.NewGrid2D(n, n, n, pr, pc, 0)
	if err != nil {
		return pencil.Params2D{}, TuneOutcome{}, err
	}
	space := PencilSpace(g)
	var virtual int64
	obj := func(cfg []int) float64 {
		prm := DecodePencilParams(cfg)
		if prm.Validate(g) != nil {
			return math.Inf(1)
		}
		v, err := pencil.SimulateOverlapped(m, pr, pc, n, prm)
		if err != nil {
			return math.Inf(1)
		}
		virtual += v
		return float64(v)
	}
	def := pencil.DefaultParams2D(g)
	start := time.Now()
	sr := NelderMead(space, obj, Options{
		MaxEvals:       maxEvals,
		InitialSimplex: InitialSimplex(space, []int{def.TA, def.WA, def.TB, def.WB, def.F}),
	})
	out := TuneOutcome{Search: sr, VirtualNs: virtual, WallNs: time.Since(start).Nanoseconds()}
	if sr.Best == nil {
		return pencil.Params2D{}, out, fmt.Errorf("tuner: no feasible configuration found")
	}
	return DecodePencilParams(sr.Best), out, nil
}
