package tuner

import "math"

// CoordinateDescent minimizes the objective by cyclic exhaustive line
// search: for each dimension in turn it evaluates every candidate value
// (all other dimensions fixed) and keeps the best, repeating until a full
// sweep yields no improvement or the budget runs out. It is the
// "other optimization strategy" the paper's future work proposes to try
// (§7); compared with Nelder–Mead it is immune to simplex collapse but
// spends more evaluations per improvement, which the ablation benchmarks
// quantify.
//
// start must be a valid on-grid configuration (e.g. the §4.4 default
// point). The same history cache, infeasibility accounting and budget
// semantics as NelderMead apply.
func CoordinateDescent(space Space, obj Objective, start []int, maxEvals int) Result {
	if maxEvals <= 0 {
		maxEvals = 100
	}
	res := Result{BestCost: math.Inf(1)}
	st := &nmState{space: space, obj: obj, cache: map[string]float64{}, res: &res, max: maxEvals}

	cur := make([]int, len(start))
	for i, dim := range space.Dims {
		cur[i] = snapDown(dim, start[i])
	}
	curCost := st.evalCfg(cur)

	for sweep := 0; sweep < 32 && st.budgetLeft(); sweep++ {
		improved := false
		for d, dim := range space.Dims {
			if !st.budgetLeft() {
				break
			}
			bestV, bestC := cur[d], curCost
			for _, v := range dim.Values {
				if v == cur[d] {
					continue
				}
				cand := append([]int(nil), cur...)
				cand[d] = v
				if c := st.evalCfg(cand); c < bestC {
					bestV, bestC = v, c
				}
				if !st.budgetLeft() {
					break
				}
			}
			if bestV != cur[d] {
				cur[d] = bestV
				curCost = bestC
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return res
}
