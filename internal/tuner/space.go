// Package tuner is the auto-tuning framework of §4: an Active-Harmony-style
// search over a discrete parameter space using the Nelder–Mead simplex
// method, plus a random-search baseline. It implements the paper's
// techniques for fast, effective tuning:
//
//  1. infeasible configurations are penalized with +Inf without executing
//     the tuning target;
//  2. previously tested configurations are answered from a history cache;
//  3. the FFT objective excludes the parameter-independent FFTz and
//     Transpose steps (it minimizes Breakdown.TunedPortion);
//  4. the search space is log-reduced to powers of two plus the boundary
//     values;
//  5. the initial simplex is built around the §4.4 default point.
package tuner

import (
	"fmt"
	"strconv"
	"strings"
)

// Dim is one tunable parameter: a name and its candidate values in
// ascending order (already log-reduced by the space builder).
type Dim struct {
	Name   string
	Values []int
}

// Space is a discrete search space.
type Space struct {
	Dims []Dim
}

// Size returns the number of configurations in the space.
func (s Space) Size() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= int64(len(d.Values))
	}
	return n
}

// Clamp rounds a continuous point (in index coordinates) to the nearest
// valid configuration.
func (s Space) Clamp(x []float64) []int {
	cfg := make([]int, len(s.Dims))
	for i, d := range s.Dims {
		idx := int(x[i] + 0.5)
		if x[i] < 0 {
			idx = 0
		}
		if idx < 0 {
			idx = 0
		}
		if idx > len(d.Values)-1 {
			idx = len(d.Values) - 1
		}
		cfg[i] = d.Values[idx]
	}
	return cfg
}

// IndexOf returns the index coordinates of a configuration (each value must
// be present in its dimension's list).
func (s Space) IndexOf(cfg []int) ([]float64, error) {
	if len(cfg) != len(s.Dims) {
		return nil, fmt.Errorf("tuner: config length %d, want %d", len(cfg), len(s.Dims))
	}
	x := make([]float64, len(cfg))
	for i, d := range s.Dims {
		found := -1
		for j, v := range d.Values {
			if v == cfg[i] {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("tuner: value %d not in dimension %s %v", cfg[i], d.Name, d.Values)
		}
		x[i] = float64(found)
	}
	return x, nil
}

// Key renders a configuration as a cache key.
func Key(cfg []int) string {
	var b strings.Builder
	for i, v := range cfg {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// PowersOfTwoUpTo returns the §4.4 log-reduced value list: 1, 2, 4, ... up
// to max, with max itself appended when it is not a power of two (boundary
// values stay reachable).
func PowersOfTwoUpTo(max int) []int {
	if max < 1 {
		return []int{1}
	}
	var vals []int
	for v := 1; v <= max; v *= 2 {
		vals = append(vals, v)
	}
	if vals[len(vals)-1] != max {
		vals = append(vals, max)
	}
	return vals
}

// ZeroAndPowersOfTwoUpTo prepends 0 (e.g. "no Test calls") to the
// log-reduced list.
func ZeroAndPowersOfTwoUpTo(max int) []int {
	return append([]int{0}, PowersOfTwoUpTo(max)...)
}

// IntRange returns the dense list lo..hi (for parameters with few values,
// like the window size W, which §4.4 exempts from log reduction).
func IntRange(lo, hi int) []int {
	if hi < lo {
		hi = lo
	}
	vals := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		vals = append(vals, v)
	}
	return vals
}
