package tuner

import (
	"math"
	"math/rand"
	"sort"

	"offt/internal/telemetry"
)

// Objective evaluates one discrete configuration and returns its cost.
// Return +Inf for an infeasible configuration (the paper's penalty
// technique); the framework never "executes" anything itself.
type Objective func(cfg []int) float64

// Sample records one suggested configuration and its cost.
type Sample struct {
	Cfg  []int
	Cost float64
}

// Result summarizes a search.
type Result struct {
	Best     []int
	BestCost float64
	// Evals counts objective calls that actually ran (cache misses on
	// feasible points — the expensive part).
	Evals int
	// Suggestions counts every configuration the strategy proposed,
	// including cache hits and infeasible points.
	Suggestions int
	// CacheHits counts suggestions answered from the history cache
	// (the paper's technique 2).
	CacheHits int
	// Infeasible counts suggestions rejected by the +Inf penalty.
	Infeasible int
	// History holds every distinct evaluated configuration in suggestion
	// order (including infeasible ones, with +Inf cost).
	History []Sample
}

// Options controls the Nelder–Mead search.
type Options struct {
	// MaxEvals bounds the number of real objective executions
	// (default 100).
	MaxEvals int
	// InitialSimplex gives the d+1 starting configurations (value space,
	// not index space). Required: the §4.4 construction supplies it for
	// the FFT; tests build their own.
	InitialSimplex [][]int
	// Telemetry, when non-nil, receives per-evaluation metrics under
	// "tuner.*": evaluation/cache-hit/penalty counters, a cost histogram,
	// a best-so-far gauge, and simplex-move counters (reflections,
	// expansions, contractions, shrinks, restarts).
	Telemetry *telemetry.Registry
}

// nmTel holds the tuner's pre-resolved metric handles. All fields are nil
// when no registry is attached; the nil handles make every update a no-op.
type nmTel struct {
	evals, cacheHits, infeasible                            *telemetry.Counter
	reflections, expansions, contractions, shrinks, restart *telemetry.Counter
	costNs                                                  *telemetry.Histogram
	bestCost                                                *telemetry.Gauge
}

func newNMTel(r *telemetry.Registry) nmTel {
	if r == nil {
		return nmTel{}
	}
	return nmTel{
		evals:        r.Counter("tuner.evals"),
		cacheHits:    r.Counter("tuner.cache_hits"),
		infeasible:   r.Counter("tuner.infeasible"),
		reflections:  r.Counter("tuner.moves.reflections"),
		expansions:   r.Counter("tuner.moves.expansions"),
		contractions: r.Counter("tuner.moves.contractions"),
		shrinks:      r.Counter("tuner.moves.shrinks"),
		restart:      r.Counter("tuner.restarts"),
		costNs:       r.Histogram("tuner.eval_cost_ns"),
		bestCost:     r.Gauge("tuner.best_cost_ns"),
	}
}

// nmState carries the bookkeeping shared by the searches.
type nmState struct {
	space Space
	obj   Objective
	cache map[string]float64
	res   *Result
	max   int
	tel   nmTel
}

func (st *nmState) eval(x []float64) float64 {
	cfg := st.space.Clamp(x)
	return st.evalCfg(cfg)
}

func (st *nmState) evalCfg(cfg []int) float64 {
	st.res.Suggestions++
	k := Key(cfg)
	if c, ok := st.cache[k]; ok {
		st.res.CacheHits++
		st.tel.cacheHits.Inc()
		return c
	}
	var cost float64
	if st.res.Evals >= st.max {
		// Budget exhausted: treat as worst so the search winds down.
		cost = math.Inf(1)
	} else {
		cost = st.obj(cfg)
		if !math.IsInf(cost, 1) {
			st.res.Evals++
			st.tel.evals.Inc()
			st.tel.costNs.Observe(int64(cost))
		}
	}
	if math.IsInf(cost, 1) {
		st.res.Infeasible++
		st.tel.infeasible.Inc()
	}
	st.cache[k] = cost
	st.res.History = append(st.res.History, Sample{Cfg: append([]int(nil), cfg...), Cost: cost})
	if cost < st.res.BestCost {
		st.res.BestCost = cost
		st.res.Best = append([]int(nil), cfg...)
		st.tel.bestCost.Set(cost)
	}
	return cost
}

func (st *nmState) budgetLeft() bool { return st.res.Evals < st.max }

// NelderMead minimizes the objective over the space with the downhill
// simplex method of Nelder & Mead (1965), adapted to the discrete integer
// domain the way Active Harmony does: simplex points live in continuous
// index coordinates and are rounded to the closest configuration for
// evaluation, with the history cache absorbing repeated suggestions. When
// the simplex collapses onto one configuration before the budget runs out,
// the search restarts from a fresh simplex around the best point — the
// rounding granularity otherwise freezes dimensions prematurely.
func NelderMead(space Space, obj Objective, opt Options) Result {
	d := len(space.Dims)
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 100
	}
	if len(opt.InitialSimplex) != d+1 {
		panic("tuner: initial simplex must have d+1 points")
	}
	res := Result{BestCost: math.Inf(1)}
	st := &nmState{space: space, obj: obj, cache: map[string]float64{}, res: &res,
		max: opt.MaxEvals, tel: newNMTel(opt.Telemetry)}

	simplex := opt.InitialSimplex
	for restart := 0; restart < 16 && st.budgetLeft(); restart++ {
		if restart > 0 {
			st.tel.restart.Inc()
		}
		before := res.BestCost
		nmRun(st, space, simplex)
		if res.Best == nil || !(res.BestCost < before) {
			break // no improvement from this start: stop
		}
		if !st.budgetLeft() {
			break
		}
		simplex = restartSimplex(space, res.Best)
	}
	return res
}

// restartSimplex builds a fresh simplex around cfg: the point itself plus
// one ±1-index neighbor per dimension.
func restartSimplex(space Space, cfg []int) [][]int {
	return InitialSimplex(space, cfg)
}

// nmRun performs one Nelder–Mead descent from the given starting simplex.
func nmRun(st *nmState, space Space, simplex [][]int) {
	d := len(space.Dims)
	pts := make([][]float64, d+1)
	costs := make([]float64, d+1)
	for i, cfg := range simplex {
		x, err := space.IndexOf(cfg)
		if err != nil {
			panic(err)
		}
		pts[i] = x
		costs[i] = st.evalCfg(cfg)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	order := make([]int, d+1)

	for iter := 0; iter < 400 && st.budgetLeft(); iter++ {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })
		perm := make([][]float64, d+1)
		permC := make([]float64, d+1)
		for i, o := range order {
			perm[i], permC[i] = pts[o], costs[o]
		}
		pts, costs = perm, permC

		if converged(space, pts) {
			break
		}

		// Centroid of all but the worst.
		c := make([]float64, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				c[j] += pts[i][j]
			}
		}
		for j := 0; j < d; j++ {
			c[j] /= float64(d)
		}
		worst := pts[d]

		xr := lerp(c, worst, -alpha)
		fr := st.eval(xr)
		switch {
		case fr < costs[0]:
			xe := lerp(c, worst, -gamma)
			if fe := st.eval(xe); fe < fr {
				pts[d], costs[d] = xe, fe
				st.tel.expansions.Inc()
			} else {
				pts[d], costs[d] = xr, fr
				st.tel.reflections.Inc()
			}
		case fr < costs[d-1]:
			pts[d], costs[d] = xr, fr
			st.tel.reflections.Inc()
		default:
			var xc []float64
			if fr < costs[d] {
				xc = lerp(c, xr, rho) // outside contraction
			} else {
				xc = lerp(c, worst, rho) // inside contraction
			}
			fc := st.eval(xc)
			if fc < math.Min(fr, costs[d]) {
				pts[d], costs[d] = xc, fc
				st.tel.contractions.Inc()
			} else {
				// Shrink toward the best point.
				st.tel.shrinks.Inc()
				for i := 1; i <= d; i++ {
					for j := 0; j < d; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					costs[i] = st.eval(pts[i])
				}
			}
		}
	}
}

// lerp returns c + t·(x − c).
func lerp(c, x []float64, t float64) []float64 {
	out := make([]float64, len(c))
	for j := range c {
		out[j] = c[j] + t*(x[j]-c[j])
	}
	return out
}

// converged reports whether every simplex point rounds to the same
// configuration ("all the points are close to each other", §4.3).
func converged(space Space, pts [][]float64) bool {
	ref := Key(space.Clamp(pts[0]))
	for _, p := range pts[1:] {
		if Key(space.Clamp(p)) != ref {
			return false
		}
	}
	return true
}

// RandomSearch samples n configurations uniformly from the space (the
// comparison strategy of §5.3.1). Infeasible samples are recorded but do
// not count against the evaluation budget; duplicates hit the cache.
func RandomSearch(space Space, obj Objective, n int, seed int64) Result {
	res := Result{BestCost: math.Inf(1)}
	st := &nmState{space: space, obj: obj, cache: map[string]float64{}, res: &res, max: n}
	rng := rand.New(rand.NewSource(seed))
	cfg := make([]int, len(space.Dims))
	for guard := 0; st.budgetLeft() && guard < 100*n; guard++ {
		for i, d := range space.Dims {
			cfg[i] = d.Values[rng.Intn(len(d.Values))]
		}
		st.evalCfg(cfg)
	}
	return res
}
