package tuner

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"offt/internal/layout"
	"offt/internal/machine"
	"offt/internal/model"
	"offt/internal/pencil"
	"offt/internal/pfft"
)

func grid10(t *testing.T) Space {
	t.Helper()
	return Space{Dims: []Dim{
		{Name: "a", Values: IntRange(0, 20)},
		{Name: "b", Values: IntRange(0, 20)},
		{Name: "c", Values: IntRange(0, 20)},
	}}
}

// quadratic builds a convex objective with its minimum at target.
func quadratic(target []int, calls *int) Objective {
	return func(cfg []int) float64 {
		*calls++
		s := 0.0
		for i, v := range cfg {
			d := float64(v - target[i])
			s += d * d
		}
		return s
	}
}

func simplexAround(space Space, base []int) [][]int {
	return InitialSimplex(space, base)
}

func TestNelderMeadFindsConvexMinimum(t *testing.T) {
	space := grid10(t)
	target := []int{7, 13, 4}
	calls := 0
	res := NelderMead(space, quadratic(target, &calls), Options{
		MaxEvals:       200,
		InitialSimplex: simplexAround(space, []int{0, 0, 0}),
	})
	if res.BestCost > 2 {
		t.Errorf("NM best %v cost %g, want near %v", res.Best, res.BestCost, target)
	}
	if res.Evals != calls {
		t.Errorf("Evals %d != objective calls %d", res.Evals, calls)
	}
}

func TestNelderMeadRespectsBudget(t *testing.T) {
	space := grid10(t)
	calls := 0
	res := NelderMead(space, quadratic([]int{20, 20, 20}, &calls), Options{
		MaxEvals:       10,
		InitialSimplex: simplexAround(space, []int{0, 0, 0}),
	})
	if calls > 10 {
		t.Errorf("objective ran %d times with budget 10", calls)
	}
	if res.Evals > 10 {
		t.Errorf("Evals %d exceeds budget", res.Evals)
	}
}

func TestNelderMeadCacheReusesRepeats(t *testing.T) {
	space := grid10(t)
	calls := 0
	res := NelderMead(space, quadratic([]int{3, 3, 3}, &calls), Options{
		MaxEvals:       300,
		InitialSimplex: simplexAround(space, []int{2, 2, 2}),
	})
	// Near convergence the rounded configurations repeat; the cache must
	// absorb them (the paper's technique 2).
	if res.CacheHits == 0 {
		t.Error("expected cache hits near convergence")
	}
	if res.Suggestions != res.CacheHits+len(res.History) {
		t.Errorf("bookkeeping: suggestions %d != cache hits %d + distinct %d",
			res.Suggestions, res.CacheHits, len(res.History))
	}
}

func TestNelderMeadPenaltyAvoidsInfeasible(t *testing.T) {
	space := grid10(t)
	calls := 0
	// Infeasible whenever b > a (mimicking Pz > T).
	obj := func(cfg []int) float64 {
		if cfg[1] > cfg[0] {
			return math.Inf(1)
		}
		return quadratic([]int{10, 5, 5}, &calls)(cfg)
	}
	res := NelderMead(space, obj, Options{
		MaxEvals:       200,
		InitialSimplex: simplexAround(space, []int{10, 10, 10}),
	})
	if res.Best == nil {
		t.Fatal("no feasible point found")
	}
	if res.Best[1] > res.Best[0] {
		t.Errorf("best %v is infeasible", res.Best)
	}
	if res.Infeasible == 0 {
		t.Error("expected some infeasible suggestions to be penalized")
	}
	// NM is a heuristic: it need not hit the constrained optimum (cost 0),
	// but it must clearly improve on the starting point (cost 50).
	if res.BestCost > 30 {
		t.Errorf("NM best cost %g too far from constrained optimum", res.BestCost)
	}
}

func TestRandomSearchDeterministicBySeed(t *testing.T) {
	space := grid10(t)
	calls := 0
	obj := quadratic([]int{9, 9, 9}, &calls)
	a := RandomSearch(space, obj, 30, 42)
	b := RandomSearch(space, obj, 30, 42)
	if Key(a.Best) != Key(b.Best) || a.BestCost != b.BestCost {
		t.Error("same seed produced different results")
	}
	c := RandomSearch(space, obj, 30, 43)
	if len(c.History) == 0 {
		t.Error("empty history")
	}
}

func TestPowersOfTwoUpTo(t *testing.T) {
	cases := []struct {
		max  int
		want string
	}{
		{1, "[1]"},
		{2, "[1 2]"},
		{24, "[1 2 4 8 16 24]"}, // the paper's Nz=24 example (§4.4)
		{32, "[1 2 4 8 16 32]"},
		{0, "[1]"},
	}
	for _, c := range cases {
		if got := fmt.Sprint(PowersOfTwoUpTo(c.max)); got != c.want {
			t.Errorf("PowersOfTwoUpTo(%d) = %v, want %v", c.max, got, c.want)
		}
	}
	if got := fmt.Sprint(ZeroAndPowersOfTwoUpTo(4)); got != "[0 1 2 4]" {
		t.Errorf("ZeroAndPowersOfTwoUpTo(4) = %v", got)
	}
}

func TestFFTSpaceShape(t *testing.T) {
	g, err := layout.NewGrid(256, 256, 256, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	space := FFTSpace(g)
	if len(space.Dims) != 11 {
		t.Fatalf("11 parameters expected (Table 1 plus Comm), got %d", len(space.Dims))
	}
	// The paper argues the unreduced space is huge (~10^10); even reduced
	// it must stay large enough to justify auto-tuning.
	if space.Size() < 1_000_000 {
		t.Errorf("reduced space suspiciously small: %d", space.Size())
	}
	// Round-trip encode/decode.
	prm := pfft.DefaultParams(g)
	back := DecodeParams(EncodeParams(prm))
	if back != prm {
		t.Errorf("encode/decode mismatch: %v vs %v", back, prm)
	}
}

func TestInitialSimplexOnGridAndDistinct(t *testing.T) {
	g, err := layout.NewGrid(64, 64, 48, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	space := FFTSpace(g)
	def := EncodeParams(pfft.DefaultParams(g))
	sx := InitialSimplex(space, def)
	if len(sx) != len(space.Dims)+1 {
		t.Fatalf("simplex size %d, want %d", len(sx), len(space.Dims)+1)
	}
	seen := map[string]bool{}
	for _, pt := range sx {
		if _, err := space.IndexOf(pt); err != nil {
			t.Errorf("simplex point off grid: %v (%v)", pt, err)
		}
		k := Key(pt)
		if seen[k] {
			t.Errorf("duplicate simplex point %v", pt)
		}
		seen[k] = true
	}
}

func TestTuneNEWImprovesOnDefault(t *testing.T) {
	m := machine.UMDCluster()
	p, n := 4, 32
	g, _ := layout.NewGrid(n, n, n, p, 0)
	def, err := model.SimulateCube(m, p, n, model.Spec{Variant: pfft.NEW, Params: pfft.DefaultParams(g)})
	if err != nil {
		t.Fatal(err)
	}
	prm, out, err := TuneNEW(m, p, n, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := prm.Validate(g); err != nil {
		t.Errorf("tuned params invalid: %v", err)
	}
	if out.BestTime() > def.MaxTuned {
		t.Errorf("tuned cost %d worse than default %d", out.BestTime(), def.MaxTuned)
	}
	if out.VirtualNs <= 0 || out.WallNs <= 0 {
		t.Errorf("missing tuning-time accounting: %+v", out)
	}
	if out.Search.Evals > 60 {
		t.Errorf("budget exceeded: %d evals", out.Search.Evals)
	}
}

func TestTuneTHImprovesOnDefault(t *testing.T) {
	m := machine.Hopper()
	p, n := 4, 32
	g, _ := layout.NewGrid(n, n, n, p, 0)
	def, err := model.SimulateCube(m, p, n, model.Spec{Variant: pfft.TH, TH: pfft.DefaultTHParams(g)})
	if err != nil {
		t.Fatal(err)
	}
	prm, out, err := TuneTH(m, p, n, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := prm.Validate(g); err != nil {
		t.Errorf("tuned TH params invalid: %v", err)
	}
	if out.BestTime() > def.MaxTuned {
		t.Errorf("tuned cost %d worse than default %d", out.BestTime(), def.MaxTuned)
	}
}

func TestNMBeatsRandomMedian(t *testing.T) {
	// §5.3.1: NM's deterministic descent finds a good configuration faster
	// than random search. Compare NM's best against the median of the
	// random distribution at equal budget.
	m := machine.UMDCluster()
	p, n := 4, 32
	_, nm, err := TuneNEW(m, p, n, 35)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomNEW(m, p, n, 35, 99)
	if err != nil {
		t.Fatal(err)
	}
	var feasible []float64
	for _, s := range rnd.Search.History {
		if !math.IsInf(s.Cost, 1) {
			feasible = append(feasible, s.Cost)
		}
	}
	if len(feasible) < 5 {
		t.Fatalf("too few feasible random samples: %d", len(feasible))
	}
	sort.Float64s(feasible)
	median := feasible[len(feasible)/2]
	if nm.Search.BestCost > median {
		t.Errorf("NM best %g worse than random median %g", nm.Search.BestCost, median)
	}
}

func TestCoordinateDescentFindsConvexMinimum(t *testing.T) {
	space := grid10(t)
	target := []int{7, 13, 4}
	calls := 0
	res := CoordinateDescent(space, quadratic(target, &calls), []int{0, 0, 0}, 400)
	if res.BestCost != 0 {
		t.Errorf("coordinate descent best %v cost %g, want exactly %v (separable objective)",
			res.Best, res.BestCost, target)
	}
	if res.Evals != calls {
		t.Errorf("Evals %d != calls %d", res.Evals, calls)
	}
}

func TestCoordinateDescentRespectsBudget(t *testing.T) {
	space := grid10(t)
	calls := 0
	CoordinateDescent(space, quadratic([]int{20, 20, 20}, &calls), []int{0, 0, 0}, 7)
	if calls > 7 {
		t.Errorf("objective ran %d times with budget 7", calls)
	}
}

func TestCoordinateDescentHandlesConstraints(t *testing.T) {
	space := grid10(t)
	calls := 0
	obj := func(cfg []int) float64 {
		if cfg[1] > cfg[0] {
			return math.Inf(1)
		}
		return quadratic([]int{10, 5, 5}, &calls)(cfg)
	}
	res := CoordinateDescent(space, obj, []int{10, 10, 10}, 300)
	if res.Best == nil || res.Best[1] > res.Best[0] {
		t.Errorf("best %v violates constraint", res.Best)
	}
}

func TestTuneNEWWithCoordinateStrategy(t *testing.T) {
	m := machine.UMDCluster()
	prm, out, err := TuneNEWWith(m, 4, 32, 40, CoordinateStrategy)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := layout.NewGrid(32, 32, 32, 4, 0)
	if err := prm.Validate(g); err != nil {
		t.Errorf("coordinate-tuned params invalid: %v", err)
	}
	def, err := model.SimulateCube(m, 4, 32, model.Spec{Variant: pfft.NEW, Params: pfft.DefaultParams(g)})
	if err != nil {
		t.Fatal(err)
	}
	if out.BestTime() > def.MaxTuned {
		t.Errorf("coordinate descent (%d) worse than default (%d)", out.BestTime(), def.MaxTuned)
	}
}

func TestTunePencilImprovesOnDefault(t *testing.T) {
	m := machine.UMDCluster()
	pr, pc, n := 4, 4, 64
	g, err := pencil.NewGrid2D(n, n, n, pr, pc, 0)
	if err != nil {
		t.Fatal(err)
	}
	def, err := pencil.SimulateOverlapped(m, pr, pc, n, pencil.DefaultParams2D(g))
	if err != nil {
		t.Fatal(err)
	}
	prm, out, err := TunePencil(m, pr, pc, n, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := prm.Validate(g); err != nil {
		t.Errorf("tuned pencil params invalid: %v", err)
	}
	if out.BestTime() > def {
		t.Errorf("tuned (%d) worse than default (%d)", out.BestTime(), def)
	}
}

func TestTunePencilNEWSearchesProcGrid(t *testing.T) {
	m := machine.UMDCluster()
	ranks, n := 16, 64
	prm, out, err := TunePencilNEW(m, ranks, n, 40)
	if err != nil {
		t.Fatal(err)
	}
	if prm.Pr < 1 || ranks%prm.Pr != 0 {
		t.Fatalf("tuned Pr=%d must divide the rank count %d", prm.Pr, ranks)
	}
	g, err := pencil.NewGrid2D(n, n, n, prm.Pr, ranks/prm.Pr, 0)
	if err != nil {
		t.Fatalf("tuned grid infeasible: %v", err)
	}
	if err := pencil.FromParams(prm, g).Validate(g); err != nil {
		t.Errorf("tuned params invalid: %v", err)
	}
	// The default grid's default point is in the search space, so the
	// search result cannot be worse.
	dpr, dpc, err := pencil.DefaultProcGrid(n, n, n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	g0, _ := pencil.NewGrid2D(n, n, n, dpr, dpc, 0)
	def, err := pencil.SimulateOverlapped(m, dpr, dpc, n, pencil.DefaultParams2D(g0))
	if err != nil {
		t.Fatal(err)
	}
	if out.BestTime() > def {
		t.Errorf("tuned (%d) worse than default grid's default point (%d)", out.BestTime(), def)
	}
	space, err := PencilGridSpace(n, n, n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if len(space.Dims) != 5 || space.Dims[0].Name != "Pr" || space.Dims[4].Name != "Comm" {
		t.Errorf("unexpected pencil grid space %v", space.Dims)
	}
}
