package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Real-to-complex transforms (§2.3 of the paper notes that the overlap
// method applies to the faster real-input techniques of Sorensen et al.;
// this file provides those transforms for the serial substrate).
//
// For even n, the r2c transform computes the DFT of n real samples with
// one complex FFT of length n/2 (packing even samples into the real parts
// and odd samples into the imaginary parts, then untangling). For odd n it
// falls back to a full complex transform. Only the n/2+1 non-redundant
// outputs are produced; the remaining bins follow from Hermitian symmetry
// X[n−k] = conj(X[k]).

// PlanR2C computes forward real-to-complex DFTs of a fixed length.
type PlanR2C struct {
	n    int
	half *Plan // length n/2 complex plan (even n)
	full *Plan // fallback for odd n
	tw   []complex128
	buf  []complex128
}

// NewPlanR2C creates a real-to-complex plan for length n >= 1.
func NewPlanR2C(n int) *PlanR2C {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid r2c length %d", n))
	}
	p := &PlanR2C{n: n}
	if n == 1 {
		return p
	}
	if n%2 != 0 {
		p.full = NewPlan(n, Forward)
		p.buf = make([]complex128, n)
		return p
	}
	m := n / 2
	p.half = NewPlan(m, Forward)
	p.buf = make([]complex128, m)
	p.tw = make([]complex128, m+1)
	for k := 0; k <= m; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p
}

// Len returns the input length n.
func (p *PlanR2C) Len() int { return p.n }

// OutLen returns the number of non-redundant outputs, n/2+1.
func (p *PlanR2C) OutLen() int { return p.n/2 + 1 }

// Transform computes the DFT of the real input src into dst, which must
// have length OutLen(). Not safe for concurrent use on one plan.
func (p *PlanR2C) Transform(dst []complex128, src []float64) {
	if len(src) != p.n || len(dst) != p.OutLen() {
		panic(fmt.Sprintf("fft: r2c size mismatch: src %d (want %d), dst %d (want %d)",
			len(src), p.n, len(dst), p.OutLen()))
	}
	if p.n == 1 {
		dst[0] = complex(src[0], 0)
		return
	}
	if p.full != nil { // odd n fallback
		for i, v := range src {
			p.buf[i] = complex(v, 0)
		}
		p.full.InPlace(p.buf)
		copy(dst, p.buf[:p.OutLen()])
		return
	}
	m := p.n / 2
	z := p.buf
	for k := 0; k < m; k++ {
		z[k] = complex(src[2*k], src[2*k+1])
	}
	p.half.InPlace(z)
	// Untangle: X[k] = E[k] + w^k·O[k] where E and O are the DFTs of the
	// even and odd samples, recovered from Z by Hermitian splitting.
	for k := 0; k <= m; k++ {
		zk := z[k%m]
		zmk := cmplx.Conj(z[(m-k)%m])
		e := (zk + zmk) / 2
		o := (zk - zmk) / 2
		o = complex(imag(o), -real(o)) // divide by i
		dst[k] = e + p.tw[k]*o
	}
}

// PlanC2R computes inverse complex-to-real DFTs of a fixed length: the
// unnormalized inverse of PlanR2C (C2R(R2C(x)) == n·x). The input is the
// n/2+1 non-redundant spectrum; entries 1..n/2−1 may be arbitrary complex
// values, but dst is real, so the implied symmetry is assumed.
type PlanC2R struct {
	n    int
	half *Plan // length n/2 backward plan (even n)
	full *Plan
	tw   []complex128
	buf  []complex128
}

// NewPlanC2R creates a complex-to-real plan for length n >= 1.
func NewPlanC2R(n int) *PlanC2R {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid c2r length %d", n))
	}
	p := &PlanC2R{n: n}
	if n == 1 {
		return p
	}
	if n%2 != 0 {
		p.full = NewPlan(n, Backward)
		p.buf = make([]complex128, n)
		return p
	}
	m := n / 2
	p.half = NewPlan(m, Backward)
	p.buf = make([]complex128, m)
	p.tw = make([]complex128, m+1)
	for k := 0; k <= m; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n) // conjugate twiddles
		p.tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p
}

// Len returns the output length n.
func (p *PlanC2R) Len() int { return p.n }

// InLen returns the expected spectrum length, n/2+1.
func (p *PlanC2R) InLen() int { return p.n/2 + 1 }

// Transform computes the unnormalized inverse DFT of the Hermitian
// spectrum src into the real output dst. Not safe for concurrent use on
// one plan.
func (p *PlanC2R) Transform(dst []float64, src []complex128) {
	if len(src) != p.InLen() || len(dst) != p.n {
		panic(fmt.Sprintf("fft: c2r size mismatch: src %d (want %d), dst %d (want %d)",
			len(src), p.InLen(), len(dst), p.n))
	}
	if p.n == 1 {
		dst[0] = real(src[0])
		return
	}
	if p.full != nil { // odd n fallback: rebuild the full spectrum
		p.buf[0] = complex(real(src[0]), 0)
		for k := 1; k <= p.n/2; k++ {
			p.buf[k] = src[k]
			p.buf[p.n-k] = cmplx.Conj(src[k])
		}
		p.full.InPlace(p.buf)
		for i := range dst {
			dst[i] = real(p.buf[i])
		}
		return
	}
	// Retangle: X[k] = E[k] + w^k·O[k] and X[m−k]* = E[k] − w^k·O[k]
	// (E, O are DFTs of real sequences), so E and O are recoverable and
	// Z[k] = E[k] + i·O[k]. Working at twice the natural amplitude folds
	// the backward transform's missing 1/m into the n·x contract.
	m := p.n / 2
	z := p.buf
	for k := 0; k < m; k++ {
		xk := src[k]
		xmk := cmplx.Conj(src[m-k])
		e := xk + xmk                  // 2·E[k]
		o := (xk - xmk) * p.tw[k]      // 2·O[k] (tw[k] = w^{−k})
		o = complex(-imag(o), real(o)) // multiply by i
		z[k] = e + o                   // 2·Z[k]
	}
	p.half.InPlace(z) // backward, unnormalized: yields 2m·z = n·z
	for k := 0; k < m; k++ {
		dst[2*k] = real(z[k])
		dst[2*k+1] = imag(z[k])
	}
}

// DFTReal computes the r2c DFT by definition (the test oracle).
func DFTReal(src []float64) []complex128 {
	n := len(src)
	x := make([]complex128, n)
	for i, v := range src {
		x[i] = complex(v, 0)
	}
	full := DFT(x, Forward)
	return full[:n/2+1]
}
