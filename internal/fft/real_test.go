package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func TestR2CMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 8, 10, 16, 24, 32, 48, 64, 100, 128, 256, 3, 5, 7, 9, 15, 21} {
		x := randReal(n, int64(n))
		want := DFTReal(x)
		p := NewPlanR2C(n)
		if p.OutLen() != n/2+1 {
			t.Fatalf("n=%d: OutLen %d", n, p.OutLen())
		}
		got := make([]complex128, p.OutLen())
		p.Transform(got, x)
		if e := maxErr(got, want); e > tol {
			t.Errorf("r2c n=%d: error %g", n, e)
		}
	}
}

func TestC2RInvertsR2C(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 12, 16, 32, 64, 100, 256, 3, 5, 9, 15} {
		x := randReal(n, int64(n)+50)
		fwd := NewPlanR2C(n)
		spec := make([]complex128, fwd.OutLen())
		fwd.Transform(spec, x)
		bwd := NewPlanC2R(n)
		back := make([]float64, n)
		bwd.Transform(back, spec)
		worst := 0.0
		for i := range x {
			if d := math.Abs(back[i]/float64(n) - x[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			t.Errorf("c2r n=%d: roundtrip error %g", n, worst)
		}
	}
}

func TestC2RMatchesFullInverse(t *testing.T) {
	// c2r of an arbitrary Hermitian spectrum must equal the full complex
	// backward transform.
	n := 32
	rng := rand.New(rand.NewSource(9))
	full := make([]complex128, n)
	full[0] = complex(rng.NormFloat64(), 0)
	full[n/2] = complex(rng.NormFloat64(), 0)
	for k := 1; k < n/2; k++ {
		full[k] = complex(rng.NormFloat64(), rng.NormFloat64())
		full[n-k] = cmplx.Conj(full[k])
	}
	want := DFT(full, Backward)
	p := NewPlanC2R(n)
	got := make([]float64, n)
	p.Transform(got, full[:n/2+1])
	for i := range got {
		if math.Abs(got[i]-real(want[i])) > 1e-9 {
			t.Fatalf("elem %d: got %v want %v", i, got[i], want[i])
		}
		if math.Abs(imag(want[i])) > 1e-9 {
			t.Fatalf("oracle not real at %d: %v", i, want[i])
		}
	}
}

func TestQuickR2CHalfSpectrumSufficient(t *testing.T) {
	// The dropped bins are redundant: X[n−k] == conj(X[k]).
	f := func(sizeIdx uint8, seed int64) bool {
		sizes := []int{2, 4, 6, 8, 12, 16, 20, 32, 48}
		n := sizes[int(sizeIdx)%len(sizes)]
		x := randReal(n, seed)
		fullIn := make([]complex128, n)
		for i, v := range x {
			fullIn[i] = complex(v, 0)
		}
		full := DFT(fullIn, Forward)
		for k := 1; k < n/2; k++ {
			if cmplx.Abs(full[n-k]-cmplx.Conj(full[k])) > 1e-8*(1+cmplx.Abs(full[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(11)); err != nil {
		t.Error(err)
	}
}

func TestQuickR2CRoundTrip(t *testing.T) {
	f := func(rawN uint8, seed int64) bool {
		n := int(rawN)%120 + 1
		x := randReal(n, seed)
		fwd := NewPlanR2C(n)
		spec := make([]complex128, fwd.OutLen())
		fwd.Transform(spec, x)
		back := make([]float64, n)
		NewPlanC2R(n).Transform(back, spec)
		for i := range x {
			if math.Abs(back[i]/float64(n)-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := quickConfig(12)
	cfg.MaxCount = 50
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRealPlanValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("r2c n=0", func() { NewPlanR2C(0) })
	mustPanic("c2r n=0", func() { NewPlanC2R(0) })
	p := NewPlanR2C(8)
	mustPanic("r2c short dst", func() { p.Transform(make([]complex128, 3), make([]float64, 8)) })
	mustPanic("r2c short src", func() { p.Transform(make([]complex128, 5), make([]float64, 4)) })
	q := NewPlanC2R(8)
	mustPanic("c2r short dst", func() { q.Transform(make([]float64, 4), make([]complex128, 5)) })
	if p.Len() != 8 || q.Len() != 8 || q.InLen() != 5 {
		t.Error("length accessors wrong")
	}
}
