package fft

import (
	"fmt"
	"testing"
)

// batchTestLengths exercises every engine path: pure powers of two
// (radix-4/2/8 stages), mixed radices, generic odd primes, single-stage
// plans, and Bluestein lengths — both below and above the row-block cutoffs
// in rowBlockFor.
var batchTestLengths = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 24, 25, 27, 29, 31, 32, 35, 48,
	60, 64, 81, 100, 101, 120, 127, 128, 211, 243, 256, 384, 512, 625, 640,
	1024,
}

// perRowReference runs the scalar per-row path on a copy: the same plan
// shape, one Transform per row. The batched engine must match it
// bit-for-bit (identical expression trees per element), so comparisons
// below use ==, not a tolerance.
func perRowReference(p *Plan, x []complex128, count, dist int) []complex128 {
	ref := append([]complex128(nil), x...)
	q := p.Clone()
	for r := 0; r < count; r++ {
		row := ref[r*dist : r*dist+p.n]
		q.Transform(row, row)
	}
	return ref
}

func assertBitIdentical(t *testing.T, got, want []complex128, what string) {
	t.Helper()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs: got %v want %v", what, i, got[i], want[i])
			return
		}
	}
}

// TestTransformRowsMatchesPerRow is the core batched-engine property: for
// every supported plan shape, direction, row count (including 0, 1, odd
// counts, and counts straddling the block size) and row pitch,
// TransformRows on an in-place aliased buffer equals running Transform row
// by row, bit for bit.
func TestTransformRowsMatchesPerRow(t *testing.T) {
	for _, n := range batchTestLengths {
		for _, dir := range []Direction{Forward, Backward} {
			bmax := rowBlockFor(n)
			for _, count := range []int{0, 1, 2, 3, bmax - 1, bmax, bmax + 1, 2*bmax + 3} {
				if count < 0 {
					continue
				}
				for _, pad := range []int{0, 3} {
					dist := n + pad
					name := fmt.Sprintf("n=%d/%v/count=%d/dist=%d", n, dir, count, dist)
					t.Run(name, func(t *testing.T) {
						total := count*dist + pad // trailing pad so the last row fits
						if count == 0 {
							total = 8
						}
						x := randVec(total, int64(n*1000+count*10+pad))
						p := NewPlan(n, dir)
						want := perRowReference(p, x, count, dist)
						p.TransformRows(x, count, dist)
						assertBitIdentical(t, x, want, name)
					})
				}
			}
		}
	}
}

// TestBatchMatchesPerRow pins the public Batch API to the same property
// (Batch now delegates to TransformRows).
func TestBatchMatchesPerRow(t *testing.T) {
	for _, n := range []int{8, 27, 64, 101, 127, 384} {
		x := randVec(20*n, int64(n))
		p := NewPlan(n, Forward)
		want := perRowReference(p, x, 20, n)
		p.Batch(x, 20, n)
		assertBitIdentical(t, x, want, fmt.Sprintf("Batch n=%d", n))
	}
}

// stridedReference gathers a strided line, transforms it with a fresh
// scalar plan, and scatters it back — the pre-engine Strided semantics.
func stridedReference(p *Plan, x []complex128, off, stride int) []complex128 {
	ref := append([]complex128(nil), x...)
	q := p.Clone()
	row := make([]complex128, p.n)
	for i := 0; i < p.n; i++ {
		row[i] = ref[off+i*stride]
	}
	q.Transform(row, row)
	for i := 0; i < p.n; i++ {
		ref[off+i*stride] = row[i]
	}
	return ref
}

// TestStridedMatchesGather verifies the stride-aware head/tail stages
// against the gather-transform-scatter reference, bit for bit, including
// stride 1, the offsets used by fft3d, and non-unit leftover elements
// between strided lines.
func TestStridedMatchesGather(t *testing.T) {
	for _, n := range batchTestLengths {
		for _, stride := range []int{1, 2, 3, 7, 16} {
			for _, off := range []int{0, 1, 5} {
				name := fmt.Sprintf("n=%d/stride=%d/off=%d", n, stride, off)
				t.Run(name, func(t *testing.T) {
					x := randVec(off+(n-1)*stride+1+4, int64(n*100+stride*10+off))
					p := NewPlan(n, Forward)
					want := stridedReference(p, x, off, stride)
					p.Strided(x, off, stride)
					assertBitIdentical(t, x, want, name)
				})
			}
		}
	}
}

// TestStridedRowsMatchesPerLine checks the batched strided path (used by
// FFTy/FFTx over sub-tile planes) against per-line Strided: a ny×nz-style
// plane where line r starts at off+r*rowOff and steps by stride.
func TestStridedRowsMatchesPerLine(t *testing.T) {
	for _, n := range []int{4, 8, 12, 27, 32, 64, 101, 127, 128, 243, 256} {
		for _, cfg := range []struct{ stride, rowOff, count int }{
			{4, 1, 4},     // transposed plane: lines interleaved element-wise
			{7, 1, 7},     // non-power-of-two pitch
			{3, 3 * n, 5}, // disjoint strided lines
			{16, 2, 8},    // partial interleave: 8 lines in a 16-wide period
		} {
			name := fmt.Sprintf("n=%d/stride=%d/rowOff=%d/count=%d", n, cfg.stride, cfg.rowOff, cfg.count)
			t.Run(name, func(t *testing.T) {
				need := (cfg.count-1)*cfg.rowOff + (n-1)*cfg.stride + 1
				x := randVec(need+3, int64(n)*7+int64(cfg.stride))
				p := NewPlan(n, Forward)
				want := append([]complex128(nil), x...)
				q := p.Clone()
				for r := 0; r < cfg.count; r++ {
					// reference: per-line gather/transform/scatter
					row := make([]complex128, n)
					for i := 0; i < n; i++ {
						row[i] = want[r*cfg.rowOff+i*cfg.stride]
					}
					q.Transform(row, row)
					for i := 0; i < n; i++ {
						want[r*cfg.rowOff+i*cfg.stride] = row[i]
					}
				}
				p.StridedRows(x, 0, cfg.stride, cfg.count, cfg.rowOff)
				assertBitIdentical(t, x, want, name)
			})
		}
	}
}

// TestStridedRowsEdgeCases covers count==0 (no-op) and count==1
// (equivalent to Strided).
func TestStridedRowsEdgeCases(t *testing.T) {
	n := 64
	p := NewPlan(n, Forward)
	x := randVec(4*n, 11)
	orig := append([]complex128(nil), x...)
	p.StridedRows(x, 0, 4, 0, 1)
	assertBitIdentical(t, x, orig, "count=0 must not touch memory")

	want := stridedReference(p, x, 2, 4)
	p.StridedRows(x, 2, 4, 1, 0)
	assertBitIdentical(t, x, want, "count=1 equals Strided")
}

// TestTransformRowsDistPanics pins the dist validation moved from Batch.
func TestTransformRowsDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TransformRows with dist < n must panic")
		}
	}()
	p := NewPlan(8, Forward)
	p.TransformRows(make([]complex128, 64), 8, 4)
}

// TestBatchedPathsZeroAlloc extends the steady-state allocation gate to
// the batched engine: after one warm-up call (which sizes the interleaved
// ping-pong blocks), TransformRows and StridedRows must run
// allocation-free.
func TestBatchedPathsZeroAlloc(t *testing.T) {
	for _, n := range []int{64, 100, 128, 256} {
		p := NewPlan(n, Forward)
		x := make([]complex128, 32*n)
		for i := range x {
			x[i] = complex(float64(i%7), float64(i%5))
		}
		p.TransformRows(x, 32, n) // warm-up: allocates batchA/batchB
		if a := testing.AllocsPerRun(10, func() {
			p.TransformRows(x, 32, n)
		}); a > 0 {
			t.Errorf("n=%d: TransformRows allocates %v per run", n, a)
		}
		p.StridedRows(x, 0, 32, 32, 1) // column-major warm-up
		if a := testing.AllocsPerRun(10, func() {
			p.StridedRows(x, 0, 32, 32, 1)
		}); a > 0 {
			t.Errorf("n=%d: StridedRows allocates %v per run", n, a)
		}
	}
}

// TestRowBlockForBounds pins the block-size policy: between 4 and 16 rows,
// shrinking as n grows so both ping-pong blocks stay cache-resident.
func TestRowBlockForBounds(t *testing.T) {
	for _, n := range batchTestLengths {
		b := rowBlockFor(n)
		if b < 4 || b > 16 {
			t.Errorf("rowBlockFor(%d) = %d, want within [4,16]", n, b)
		}
	}
	if rowBlockFor(256) < rowBlockFor(2048) {
		t.Error("block size must not grow with n")
	}
}
