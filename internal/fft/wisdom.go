package fft

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Wisdom records planner decisions (the chosen factor order per transform
// length and direction) so that expensive Measure/Patient planning can be
// done once and reused across processes — the role of FFTW's wisdom files.
// The paper's methodology tunes FFTW with FFTW_PATIENT once per
// system/size and reuses the result for all timed runs; Wisdom is how this
// library supports the same workflow.
type Wisdom struct {
	mu sync.Mutex
	m  map[wisdomKey][]int
}

type wisdomKey struct {
	n   int
	dir Direction
}

// NewWisdom creates an empty wisdom store.
func NewWisdom() *Wisdom {
	return &Wisdom{m: make(map[wisdomKey][]int)}
}

// Learn runs the planner at the given effort and records the decision.
// It returns the plan.
func (w *Wisdom) Learn(n int, dir Direction, flag Flag) (*Plan, PlanInfo) {
	p, info := Plan1D(n, dir, flag)
	w.mu.Lock()
	w.m[wisdomKey{n, dir}] = p.Factors()
	w.mu.Unlock()
	return p, info
}

// Plan returns a plan for (n, dir) using recorded wisdom when available,
// falling back to the Estimate heuristic otherwise. The second result
// reports whether wisdom was used.
func (w *Wisdom) Plan(n int, dir Direction) (*Plan, bool) {
	w.mu.Lock()
	factors, ok := w.m[wisdomKey{n, dir}]
	w.mu.Unlock()
	if ok && len(factors) > 0 {
		if p, err := newPlanFactors(n, dir, factors); err == nil {
			return p, true
		}
	}
	return NewPlan(n, dir), false
}

// Export writes the wisdom in a stable line format:
// "offt-wisdom <n> <dir> <f1>,<f2>,..." sorted by (n, dir).
func (w *Wisdom) Export(out io.Writer) error {
	w.mu.Lock()
	keys := make([]wisdomKey, 0, len(w.m))
	for k := range w.m {
		keys = append(keys, k)
	}
	w.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].n != keys[j].n {
			return keys[i].n < keys[j].n
		}
		return keys[i].dir < keys[j].dir
	})
	for _, k := range keys {
		w.mu.Lock()
		factors := w.m[k]
		w.mu.Unlock()
		strs := make([]string, len(factors))
		for i, f := range factors {
			strs[i] = strconv.Itoa(f)
		}
		line := fmt.Sprintf("offt-wisdom %d %d %s\n", k.n, int(k.dir), strings.Join(strs, ","))
		if len(factors) == 0 {
			line = fmt.Sprintf("offt-wisdom %d %d -\n", k.n, int(k.dir))
		}
		if _, err := io.WriteString(out, line); err != nil {
			return err
		}
	}
	return nil
}

// Import merges wisdom lines previously produced by Export. Unknown or
// malformed lines are rejected with an error; entries whose factorization
// no longer validates are skipped silently (they fall back to Estimate).
func (w *Wisdom) Import(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "offt-wisdom" {
			return fmt.Errorf("fft: malformed wisdom line %q", line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return fmt.Errorf("fft: bad wisdom length in %q", line)
		}
		d, err := strconv.Atoi(fields[2])
		if err != nil || (d != int(Forward) && d != int(Backward)) {
			return fmt.Errorf("fft: bad wisdom direction in %q", line)
		}
		var factors []int
		if fields[3] != "-" {
			for _, fs := range strings.Split(fields[3], ",") {
				f, err := strconv.Atoi(fs)
				if err != nil {
					return fmt.Errorf("fft: bad wisdom factor in %q", line)
				}
				factors = append(factors, f)
			}
			if _, err := newPlanFactors(n, Direction(d), factors); err != nil {
				continue // stale entry: skip rather than poison the store
			}
		}
		w.mu.Lock()
		w.m[wisdomKey{n, Direction(d)}] = factors
		w.mu.Unlock()
	}
	return sc.Err()
}

// Len returns the number of recorded entries.
func (w *Wisdom) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.m)
}
