package fft

import (
	"sync"
	"testing"
	"time"
)

func TestPlan1DEstimateNoMeasurement(t *testing.T) {
	p, info := Plan1D(256, Forward, Estimate)
	if info.Elapsed != 0 || info.Candidates != 1 {
		t.Errorf("Estimate should not measure: %+v", info)
	}
	x := randVec(256, 1)
	want := DFT(x, Forward)
	got := make([]complex128, 256)
	p.Transform(got, x)
	if e := maxErr(got, want); e > tol {
		t.Errorf("estimate plan wrong: %g", e)
	}
}

func TestPlan1DMeasureCorrectAndTimed(t *testing.T) {
	for _, flag := range []Flag{Measure, Patient} {
		p, info := Plan1D(384, Forward, flag)
		if info.Candidates < 2 {
			t.Errorf("%v: expected multiple candidates, got %d", flag, info.Candidates)
		}
		if info.Elapsed <= 0 {
			t.Errorf("%v: expected nonzero planning time", flag)
		}
		x := randVec(384, 2)
		want := DFT(x, Forward)
		got := make([]complex128, 384)
		p.Transform(got, x)
		if e := maxErr(got, want); e > tol {
			t.Errorf("%v plan incorrect: %g", flag, e)
		}
	}
}

func TestPlan1DPatientTriesMoreThanMeasure(t *testing.T) {
	_, m := Plan1D(768, Forward, Measure)
	_, p := Plan1D(768, Forward, Patient)
	if p.Candidates < m.Candidates {
		t.Errorf("patient candidates %d < measure candidates %d", p.Candidates, m.Candidates)
	}
	if p.Reps <= m.Reps {
		t.Errorf("patient reps %d <= measure reps %d", p.Reps, m.Reps)
	}
}

func TestPlan1DBluesteinFallback(t *testing.T) {
	p, info := Plan1D(101, Forward, Patient)
	if info.Factors != nil && len(info.Factors) != 0 {
		t.Errorf("prime length should have no factor order, got %v", info.Factors)
	}
	x := randVec(101, 3)
	want := DFT(x, Forward)
	got := make([]complex128, 101)
	p.Transform(got, x)
	if e := maxErr(got, want); e > tol {
		t.Errorf("bluestein via planner: %g", e)
	}
}

func TestPlan1DCached(t *testing.T) {
	a := Plan1DCached(320, Forward, Estimate)
	b := Plan1DCached(320, Forward, Estimate)
	if a != b {
		t.Error("cache miss for identical key")
	}
	c := Plan1DCached(320, Backward, Estimate)
	if a == c {
		t.Error("cache collided across directions")
	}
}

// TestPlan1DCachedSingleflight exercises the per-key coalescing: many
// goroutines requesting a mix of keys (some shared, some distinct, with
// measured planning) must all observe one shared plan per key, with the
// map lock never held across Plan1D.
func TestPlan1DCachedSingleflight(t *testing.T) {
	lengths := []int{288, 320, 352, 416}
	const per = 8
	got := make([]*Plan, len(lengths)*per)
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = Plan1DCached(lengths[i%len(lengths)], Forward, Measure)
		}(i)
	}
	wg.Wait()
	for i, p := range got {
		n := lengths[i%len(lengths)]
		if p == nil || p.Len() != n {
			t.Fatalf("goroutine %d: wrong plan for n=%d", i, n)
		}
		if p != got[i%len(lengths)] {
			t.Errorf("n=%d: concurrent callers got distinct plans", n)
		}
	}
}

// TestCandidateOrdersIncludeEights pins the radix-8 regrouping candidate
// for power-of-two-rich lengths.
func TestCandidateOrdersIncludeEights(t *testing.T) {
	def, _ := factorize(768) // {4,4,4,4,3}: 2^8·3 → want [8,8,4,3]
	found := false
	for _, f := range candidateOrders(def, Measure) {
		if len(f) > 0 && f[0] == 8 {
			found = true
			prod := 1
			for _, r := range f {
				prod *= r
			}
			if prod != 768 {
				t.Errorf("eights candidate %v multiplies to %d", f, prod)
			}
		}
	}
	if !found {
		t.Error("no radix-8 candidate generated for 768")
	}
}

func TestCandidateOrdersDistinctAndValid(t *testing.T) {
	def, rest := factorize(384) // {4,4,4,2,3}
	if rest != 1 {
		t.Fatal("bad test setup")
	}
	cands := candidateOrders(def, Patient)
	seen := map[string]bool{key(def): true}
	for _, f := range cands {
		k := key(f)
		if seen[k] {
			t.Errorf("duplicate candidate %v", f)
		}
		seen[k] = true
		prod := 1
		for _, r := range f {
			prod *= r
		}
		if prod != 384 {
			t.Errorf("candidate %v multiplies to %d", f, prod)
		}
	}
}

func TestTimePlanPositive(t *testing.T) {
	p := NewPlan(128, Forward)
	d := timePlan(p, make([]complex128, 128), randVec(128, 4), 2)
	if d <= 0 || d > time.Second {
		t.Errorf("implausible plan timing %v", d)
	}
}
