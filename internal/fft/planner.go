package fft

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Flag selects how much effort the planner spends choosing a decomposition,
// mirroring FFTW's FFTW_ESTIMATE / FFTW_MEASURE / FFTW_PATIENT flags. The
// paper tunes its FFTW-delegated steps with FFTW_PATIENT (§4.1); the harness
// uses Patient the same way and charges the measured planning time to the
// "FFTW tuning time" column of Table 4.
type Flag int

const (
	// Estimate picks the default factor order without timing anything.
	Estimate Flag = iota
	// Measure times a few candidate factor orders with a few repetitions.
	Measure
	// Patient times every candidate order with more repetitions.
	Patient
)

func (f Flag) String() string {
	switch f {
	case Estimate:
		return "estimate"
	case Measure:
		return "measure"
	default:
		return "patient"
	}
}

// PlanInfo records what the planner did, for tuning-time accounting.
type PlanInfo struct {
	Candidates int           // factor orders considered
	Reps       int           // timing repetitions per candidate
	Elapsed    time.Duration // wall time spent measuring
	Factors    []int         // chosen order (nil for Bluestein lengths)
}

// Plan1D returns a plan for length n chosen according to flag, plus a record
// of the planning work. Measured planning uses wall-clock timing of real
// transforms on pseudo-random data (seeded, so candidate ranking is stable
// across runs on an unloaded machine).
func Plan1D(n int, dir Direction, flag Flag) (*Plan, PlanInfo) {
	base := NewPlan(n, dir)
	info := PlanInfo{Candidates: 1, Factors: base.Factors()}
	if flag == Estimate || base.blue != nil || n < 4 {
		return base, info
	}
	cands := candidateOrders(base.factors, flag)
	reps := 2
	if flag == Patient {
		reps = 5
	}
	info.Reps = reps

	rng := rand.New(rand.NewSource(int64(n)*7919 + int64(dir)))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	work := make([]complex128, n)

	start := time.Now()
	best := base
	bestT := timePlan(base, work, data, reps)
	for _, f := range cands {
		p, err := newPlanFactors(n, dir, f)
		if err != nil {
			continue
		}
		info.Candidates++
		if t := timePlan(p, work, data, reps); t < bestT {
			best, bestT = p, t
		}
	}
	info.Elapsed = time.Since(start)
	info.Factors = best.Factors()
	return best, info
}

func timePlan(p *Plan, work, data []complex128, reps int) time.Duration {
	bestT := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		copy(work, data)
		t0 := time.Now()
		p.InPlace(work)
		if d := time.Since(t0); d < bestT {
			bestT = d
		}
	}
	return bestT
}

// candidateOrders generates alternative factor orderings for the given
// default decomposition: reversed, all-twos instead of fours, fours merged
// from twos, large-factors-first, and (for Patient) a few deterministic
// shuffles.
func candidateOrders(def []int, flag Flag) [][]int {
	seen := map[string]bool{key(def): true}
	var out [][]int
	add := func(f []int) {
		k := key(f)
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}

	rev := make([]int, len(def))
	for i, r := range def {
		rev[len(def)-1-i] = r
	}
	add(rev)

	// Split every 4 into 2·2.
	var twos []int
	for _, r := range def {
		if r == 4 {
			twos = append(twos, 2, 2)
		} else {
			twos = append(twos, r)
		}
	}
	add(twos)

	// Merge pairs of 2 into 4.
	var fours []int
	n2 := 0
	for _, r := range def {
		if r == 2 {
			n2++
		} else {
			fours = append(fours, r)
		}
	}
	for ; n2 >= 2; n2 -= 2 {
		fours = append([]int{4}, fours...)
	}
	if n2 == 1 {
		fours = append(fours, 2)
	}
	add(fours)

	// Regroup the power-of-two part into radix-8 stages (split-radix-2
	// butterflies, see stage8) with a 2 or 4 remainder: fewer, denser
	// passes. Only the measured flags ever select this — the default
	// order is unchanged.
	e2 := 0
	var odd []int
	for _, r := range def {
		switch r {
		case 2:
			e2++
		case 4:
			e2 += 2
		default:
			odd = append(odd, r)
		}
	}
	if e2 >= 3 {
		var eights []int
		for i := 0; i < e2/3; i++ {
			eights = append(eights, 8)
		}
		switch e2 % 3 {
		case 1:
			eights = append(eights, 2)
		case 2:
			eights = append(eights, 4)
		}
		add(append(eights, odd...))
	}

	// Large factors first.
	big := append([]int(nil), def...)
	sort.Sort(sort.Reverse(sort.IntSlice(big)))
	add(big)
	// Small factors first.
	small := append([]int(nil), def...)
	sort.Ints(small)
	add(small)

	if flag == Patient {
		rng := rand.New(rand.NewSource(int64(len(def)) + 12345))
		for i := 0; i < 4; i++ {
			sh := append([]int(nil), def...)
			rng.Shuffle(len(sh), func(a, b int) { sh[a], sh[b] = sh[b], sh[a] })
			add(sh)
		}
	}
	return out
}

func key(f []int) string {
	b := make([]byte, len(f))
	for i, r := range f {
		b[i] = byte(r)
	}
	return string(b)
}

// planCache memoizes planner results per (n, dir, flag) with per-key
// singleflight: the global lock guards only the map, never the (possibly
// wall-clock-timed) Plan1D call itself. Concurrent ranks planning distinct
// lengths measure in parallel; concurrent requests for the same key share
// one measurement through the entry's sync.Once.
var planCache struct {
	sync.Mutex
	m map[cacheKey]*planEntry
}

// planEntry is one singleflight slot: whoever created or found the entry
// runs/waits on once, outside the cache lock.
type planEntry struct {
	once sync.Once
	p    *Plan
}

type cacheKey struct {
	n    int
	dir  Direction
	flag Flag
}

// Plan1DCached is Plan1D with process-wide memoization. The returned plan is
// shared: callers that transform concurrently must Clone it. Measure/Patient
// planning for distinct keys proceeds concurrently; duplicate requests for
// one key coalesce into a single Plan1D call.
func Plan1DCached(n int, dir Direction, flag Flag) *Plan {
	k := cacheKey{n, dir, flag}
	planCache.Lock()
	if planCache.m == nil {
		planCache.m = make(map[cacheKey]*planEntry)
	}
	e, ok := planCache.m[k]
	if !ok {
		e = &planEntry{}
		planCache.m[k] = e
	}
	planCache.Unlock()
	e.once.Do(func() {
		e.p, _ = Plan1D(n, dir, flag)
	})
	return e.p
}

// Plan1DClones returns k independent clones of the cached plan for
// (n, dir, flag). The clones share the immutable twiddle/stage tables but
// carry private scratch, so a worker pool can hand one to each worker and
// transform concurrently.
func Plan1DClones(n int, dir Direction, flag Flag, k int) []*Plan {
	base := Plan1DCached(n, dir, flag)
	out := make([]*Plan, k)
	for i := range out {
		out[i] = base.Clone()
	}
	return out
}
