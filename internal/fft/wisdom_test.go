package fft

import (
	"strings"
	"testing"
)

func TestWisdomLearnAndPlan(t *testing.T) {
	w := NewWisdom()
	p1, info := w.Learn(384, Forward, Measure)
	if info.Candidates < 2 {
		t.Error("Learn did not measure")
	}
	p2, used := w.Plan(384, Forward)
	if !used {
		t.Error("wisdom not used for a learned size")
	}
	// The wise plan must use the learned factor order and be correct.
	if strings.Join(fmtInts(p2.Factors()), ",") != strings.Join(fmtInts(p1.Factors()), ",") {
		t.Errorf("wisdom order %v != learned %v", p2.Factors(), p1.Factors())
	}
	x := randVec(384, 1)
	want := DFT(x, Forward)
	got := make([]complex128, 384)
	p2.Transform(got, x)
	if e := maxErr(got, want); e > tol {
		t.Errorf("wise plan wrong: %g", e)
	}
	// Unlearned size falls back.
	if _, used := w.Plan(128, Forward); used {
		t.Error("wisdom claimed for unlearned size")
	}
}

func TestWisdomExportImportRoundTrip(t *testing.T) {
	w := NewWisdom()
	w.Learn(64, Forward, Estimate)
	w.Learn(64, Backward, Estimate)
	w.Learn(101, Forward, Estimate) // Bluestein: empty factor list
	var sb strings.Builder
	if err := w.Export(&sb); err != nil {
		t.Fatal(err)
	}
	w2 := NewWisdom()
	if err := w2.Import(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if w2.Len() != w.Len() {
		t.Errorf("imported %d entries, want %d", w2.Len(), w.Len())
	}
	if _, used := w2.Plan(64, Backward); !used {
		t.Error("imported wisdom not used")
	}
	// Bluestein entry: Plan falls back (empty factors) but stays correct.
	p, _ := w2.Plan(101, Forward)
	x := randVec(101, 2)
	want := DFT(x, Forward)
	got := make([]complex128, 101)
	p.Transform(got, x)
	if e := maxErr(got, want); e > tol {
		t.Errorf("bluestein via wisdom fallback: %g", e)
	}
}

func TestWisdomImportRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"not-wisdom 4 -1 2,2",
		"offt-wisdom x -1 2,2",
		"offt-wisdom 4 9 2,2",
		"offt-wisdom 4 -1 a,b",
		"offt-wisdom 4 -1",
	} {
		w := NewWisdom()
		if err := w.Import(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// Stale (non-multiplying) entries are skipped, not fatal.
	w := NewWisdom()
	if err := w.Import(strings.NewReader("offt-wisdom 8 -1 3,3\n")); err != nil {
		t.Fatal(err)
	}
	if _, used := w.Plan(8, Forward); used {
		t.Error("stale wisdom should not be used")
	}
}

func fmtInts(xs []int) []string {
	out := make([]string, len(xs))
	for i, v := range xs {
		out[i] = string(rune('0' + v%10))
	}
	return out
}
