package fft

// Batched multi-row Stockham execution.
//
// The per-row Transform path walks the full twiddle tables once per row and
// pays short inner loops in the early stages (the first stage applies each
// twiddle to a single element). The batched engine instead pushes a block
// of B rows through each stage together, in a row-interleaved layout:
// element i of row r lives at buf[i*B + r]. Interleaving B rows is exactly
// a Stockham pass with the stage stride multiplied by B, so the middle
// stages reuse the scalar kernels verbatim (runStageBatch) — twiddle
// factors are loaded once per stage per block instead of once per row, and
// every inner loop becomes a contiguous run of at least B elements.
//
// The first and last stages are fused with the layout change: the head
// stage reads rows directly from user memory (contiguous or strided) while
// depositing the interleaved block, and the tail stage — whose twiddles are
// all exactly 1 because q == 0 is its only iteration — writes results
// straight back, so the per-row tail copy of the ping-pong disappears and
// Strided no longer gathers through a row buffer.
//
// B is sized so the two ping-pong blocks stay cache-resident
// (rowBlockFor); results are bit-identical to the per-row path because
// every element goes through the same arithmetic in the same order.

import (
	"fmt"
	"math"
)

// rowBlockFor returns the number of rows pushed through the stage pipeline
// together for length-n transforms: large enough to amortize twiddle loads
// and lengthen inner loops, small enough that the two n·B ping-pong blocks
// (2·n·B·16 bytes) stay within the fast cache levels.
func rowBlockFor(n int) int {
	b := 2048 / n
	if b > 16 {
		b = 16
	}
	if b < 4 {
		b = 4
	}
	return b
}

// RowBlock reports the batched-engine block size for length-n transforms —
// how many rows rowBlockFor groups per stage pipeline pass. Exported for
// benchmark tooling (cmd/offt-kernels) and sizing diagnostics.
func RowBlock(n int) int { return rowBlockFor(n) }

// TransformRows transforms count contiguous rows of length Len() located
// at x[i*dist : i*dist+Len()] in place, dist >= Len(). It is the batched
// equivalent of calling Transform row by row (bit-identical results) and
// is the preferred path for the 3-D pipelines: rows are processed in
// blocks (rowBlockFor) so twiddle traffic and loop overhead amortize
// across the block. Not safe for concurrent use on one plan.
func (p *Plan) TransformRows(x []complex128, count, dist int) {
	if dist < p.n {
		panic(fmt.Sprintf("fft: TransformRows dist %d < length %d", dist, p.n))
	}
	p.rows(x, count, dist, 1)
}

// StridedRows transforms count strided lines in place: line r consists of
// the elements x[off + r*rowOff + i*stride] for i in [0, Len()). Lines
// must not overlap. This is the batched equivalent of calling Strided once
// per line (bit-identical results); the head/tail stages read and write
// the strided memory directly, so no gather buffer is involved. Not safe
// for concurrent use on one plan.
func (p *Plan) StridedRows(x []complex128, off, stride, count, rowOff int) {
	if stride < 1 {
		panic(fmt.Sprintf("fft: StridedRows stride %d < 1", stride))
	}
	if count <= 0 {
		return
	}
	p.rows(x[off:], count, rowOff, stride)
}

// rows is the shared batched driver: line r element i lives at
// x[r*rowOff + i*stride].
func (p *Plan) rows(x []complex128, count, rowOff, stride int) {
	if count <= 0 || p.n == 1 {
		return // length-1 rows transform to themselves
	}
	if p.blue != nil || len(p.stages) < 2 {
		// Bluestein and single-stage plans have no separate head/tail
		// stages to fuse; run them row by row.
		p.rowsFallback(x, count, rowOff, stride)
		return
	}
	p.ensureBatch()
	bmax := len(p.batchA) / p.n
	for r0 := 0; r0 < count; r0 += bmax {
		b := bmax
		if r0+b > count {
			b = count - r0
		}
		p.transformBlock(x[r0*rowOff:], b, rowOff, stride)
	}
}

// rowsFallback runs the per-row path, gathering strided lines through the
// plan's row buffer.
func (p *Plan) rowsFallback(x []complex128, count, rowOff, stride int) {
	for r := 0; r < count; r++ {
		base := r * rowOff
		if stride == 1 {
			row := x[base : base+p.n]
			p.Transform(row, row)
			continue
		}
		if p.rowbuf == nil {
			p.rowbuf = make([]complex128, p.n)
		}
		for i := 0; i < p.n; i++ {
			p.rowbuf[i] = x[base+i*stride]
		}
		p.Transform(p.rowbuf, p.rowbuf)
		for i := 0; i < p.n; i++ {
			x[base+i*stride] = p.rowbuf[i]
		}
	}
}

// ensureBatch allocates the row-interleaved ping-pong blocks on first use.
func (p *Plan) ensureBatch() {
	if p.batchA == nil {
		bmax := rowBlockFor(p.n)
		p.batchA = make([]complex128, p.n*bmax)
		p.batchB = make([]complex128, p.n*bmax)
	}
}

// transformBlock pushes one block of b rows through all stages. The head
// stage reads the rows from x and writes the interleaved block; middle
// stages ping-pong between the two interleaved buffers with the stage
// stride scaled by b; the tail stage scatters straight back into x. All
// reads of x complete before any write, so in-place blocks are safe.
func (p *Plan) transformBlock(x []complex128, b, rowOff, stride int) {
	k := len(p.stages)
	cur := p.batchA
	runHead(&p.stages[0], x, cur, b, rowOff, stride, p.dir)
	for i := 1; i < k-1; i++ {
		out := p.batchB
		if i%2 == 0 {
			out = p.batchA
		}
		runStageBatch(&p.stages[i], cur[:p.n*b], out[:p.n*b], b, p.dir)
		cur = out
	}
	runTail(&p.stages[k-1], cur, x, b, rowOff, stride, p.dir)
}

// runHead applies the first Stockham pass (stage stride 1) reading row r's
// element i from src[r*rowOff + i*stride] and writing the interleaved
// block. The arithmetic mirrors the corresponding stage kernel exactly.
func runHead(st *stage, src, out []complex128, b, rowOff, stride int, dir Direction) {
	switch st.radix {
	case 2:
		head2(st, src, out, b, rowOff, stride)
	case 3:
		head3(st, src, out, b, rowOff, stride, dir)
	case 4:
		head4(st, src, out, b, rowOff, stride, dir)
	case 8:
		head8(st, src, out, b, rowOff, stride, dir)
	default:
		headGeneric(st, src, out, b, rowOff, stride)
	}
}

// runTail applies the last Stockham pass (m == 1, unit twiddles) reading
// the interleaved block and writing row r's element i to
// dst[r*rowOff + i*stride].
func runTail(st *stage, in, dst []complex128, b, rowOff, stride int, dir Direction) {
	switch st.radix {
	case 2:
		tail2(st, in, dst, b, rowOff, stride)
	case 3:
		tail3(st, in, dst, b, rowOff, stride, dir)
	case 4:
		tail4(st, in, dst, b, rowOff, stride, dir)
	case 8:
		tail8(st, in, dst, b, rowOff, stride, dir)
	default:
		tailGeneric(st, in, dst, b, rowOff, stride)
	}
}

func head2(st *stage, src, out []complex128, b, rowOff, stride int) {
	m := st.m
	im := m * stride
	for q := 0; q < m; q++ {
		base := q * stride
		o0 := out[2*q*b : 2*q*b+b]
		o1 := out[(2*q+1)*b : (2*q+1)*b+b]
		if q == 0 {
			for r := 0; r < b; r++ {
				ro := r * rowOff
				a := src[ro+base]
				c := src[ro+base+im]
				o0[r] = a + c
				o1[r] = a - c
			}
			continue
		}
		w := st.tw[q]
		for r := 0; r < b; r++ {
			ro := r * rowOff
			a := src[ro+base]
			c := src[ro+base+im]
			o0[r] = a + c
			o1[r] = (a - c) * w
		}
	}
}

func head3(st *stage, src, out []complex128, b, rowOff, stride int, dir Direction) {
	m := st.m
	im := m * stride
	sq := math.Sqrt(3) / 2 * float64(dir)
	for q := 0; q < m; q++ {
		base := q * stride
		o0 := out[3*q*b : 3*q*b+b]
		o1 := out[(3*q+1)*b : (3*q+1)*b+b]
		o2 := out[(3*q+2)*b : (3*q+2)*b+b]
		if q == 0 {
			for r := 0; r < b; r++ {
				ro := r * rowOff
				a0 := src[ro+base]
				a1 := src[ro+base+im]
				a2 := src[ro+base+2*im]
				t1 := a1 + a2
				t2 := a0 - complex(0.5, 0)*t1
				d := a1 - a2
				t3 := complex(-sq*imag(d), sq*real(d))
				o0[r] = a0 + t1
				o1[r] = t2 + t3
				o2[r] = t2 - t3
			}
			continue
		}
		w1 := st.tw[q*2]
		w2 := st.tw[q*2+1]
		for r := 0; r < b; r++ {
			ro := r * rowOff
			a0 := src[ro+base]
			a1 := src[ro+base+im]
			a2 := src[ro+base+2*im]
			t1 := a1 + a2
			t2 := a0 - complex(0.5, 0)*t1
			d := a1 - a2
			t3 := complex(-sq*imag(d), sq*real(d))
			o0[r] = a0 + t1
			o1[r] = (t2 + t3) * w1
			o2[r] = (t2 - t3) * w2
		}
	}
}

func head4(st *stage, src, out []complex128, b, rowOff, stride int, dir Direction) {
	m := st.m
	im := m * stride
	neg := dir == Forward
	for q := 0; q < m; q++ {
		base := q * stride
		o0 := out[4*q*b : 4*q*b+b]
		o1 := out[(4*q+1)*b : (4*q+1)*b+b]
		o2 := out[(4*q+2)*b : (4*q+2)*b+b]
		o3 := out[(4*q+3)*b : (4*q+3)*b+b]
		if q == 0 {
			for r := 0; r < b; r++ {
				ro := r * rowOff
				a0 := src[ro+base]
				a1 := src[ro+base+im]
				a2 := src[ro+base+2*im]
				a3 := src[ro+base+3*im]
				t0 := a0 + a2
				t1 := a0 - a2
				t2 := a1 + a3
				d := a1 - a3
				var t3 complex128
				if neg {
					t3 = complex(imag(d), -real(d))
				} else {
					t3 = complex(-imag(d), real(d))
				}
				o0[r] = t0 + t2
				o1[r] = t1 + t3
				o2[r] = t0 - t2
				o3[r] = t1 - t3
			}
			continue
		}
		w1 := st.tw[q*3]
		w2 := st.tw[q*3+1]
		w3 := st.tw[q*3+2]
		for r := 0; r < b; r++ {
			ro := r * rowOff
			a0 := src[ro+base]
			a1 := src[ro+base+im]
			a2 := src[ro+base+2*im]
			a3 := src[ro+base+3*im]
			t0 := a0 + a2
			t1 := a0 - a2
			t2 := a1 + a3
			d := a1 - a3
			var t3 complex128
			if neg {
				t3 = complex(imag(d), -real(d))
			} else {
				t3 = complex(-imag(d), real(d))
			}
			o0[r] = t0 + t2
			o1[r] = (t1 + t3) * w1
			o2[r] = (t0 - t2) * w2
			o3[r] = (t1 - t3) * w3
		}
	}
}

func head8(st *stage, src, out []complex128, b, rowOff, stride int, dir Direction) {
	m := st.m
	im := m * stride
	neg := dir == Forward
	for q := 0; q < m; q++ {
		base := q * stride
		o0 := out[8*q*b : 8*q*b+b]
		o1 := out[(8*q+1)*b : (8*q+1)*b+b]
		o2 := out[(8*q+2)*b : (8*q+2)*b+b]
		o3 := out[(8*q+3)*b : (8*q+3)*b+b]
		o4 := out[(8*q+4)*b : (8*q+4)*b+b]
		o5 := out[(8*q+5)*b : (8*q+5)*b+b]
		o6 := out[(8*q+6)*b : (8*q+6)*b+b]
		o7 := out[(8*q+7)*b : (8*q+7)*b+b]
		if q == 0 {
			for r := 0; r < b; r++ {
				ro := r*rowOff + base
				y0, y1, y2, y3, y4, y5, y6, y7 := bfly8(
					src[ro], src[ro+im], src[ro+2*im], src[ro+3*im],
					src[ro+4*im], src[ro+5*im], src[ro+6*im], src[ro+7*im], neg)
				o0[r] = y0
				o1[r] = y1
				o2[r] = y2
				o3[r] = y3
				o4[r] = y4
				o5[r] = y5
				o6[r] = y6
				o7[r] = y7
			}
			continue
		}
		tw := st.tw[q*7 : q*7+7]
		for r := 0; r < b; r++ {
			ro := r*rowOff + base
			y0, y1, y2, y3, y4, y5, y6, y7 := bfly8(
				src[ro], src[ro+im], src[ro+2*im], src[ro+3*im],
				src[ro+4*im], src[ro+5*im], src[ro+6*im], src[ro+7*im], neg)
			o0[r] = y0
			o1[r] = y1 * tw[0]
			o2[r] = y2 * tw[1]
			o3[r] = y3 * tw[2]
			o4[r] = y4 * tw[3]
			o5[r] = y5 * tw[4]
			o6[r] = y6 * tw[5]
			o7[r] = y7 * tw[6]
		}
	}
}

func headGeneric(st *stage, src, out []complex128, b, rowOff, stride int) {
	rr, m := st.radix, st.m
	var a [maxGenericRadix]complex128
	for q := 0; q < m; q++ {
		for r := 0; r < b; r++ {
			ro := r * rowOff
			for j := 0; j < rr; j++ {
				a[j] = src[ro+(q+j*m)*stride]
			}
			for j := 0; j < rr; j++ {
				v := a[0]
				idx := 0
				for t := 1; t < rr; t++ {
					idx += j
					if idx >= rr {
						idx -= rr
					}
					v += a[t] * st.wr[idx]
				}
				if j > 0 {
					v *= st.tw[q*(rr-1)+(j-1)]
				}
				out[(rr*q+j)*b+r] = v
			}
		}
	}
}

func tail2(st *stage, in, dst []complex128, b, rowOff, stride int) {
	s := st.s
	for k := 0; k < s; k++ {
		i0 := in[k*b : k*b+b]
		i1 := in[(s+k)*b : (s+k)*b+b]
		d0 := k * stride
		d1 := (s + k) * stride
		for r := 0; r < b; r++ {
			ro := r * rowOff
			a := i0[r]
			c := i1[r]
			dst[ro+d0] = a + c
			dst[ro+d1] = a - c
		}
	}
}

func tail3(st *stage, in, dst []complex128, b, rowOff, stride int, dir Direction) {
	s := st.s
	sq := math.Sqrt(3) / 2 * float64(dir)
	for k := 0; k < s; k++ {
		i0 := in[k*b : k*b+b]
		i1 := in[(s+k)*b : (s+k)*b+b]
		i2 := in[(2*s+k)*b : (2*s+k)*b+b]
		d0 := k * stride
		d1 := (s + k) * stride
		d2 := (2*s + k) * stride
		for r := 0; r < b; r++ {
			ro := r * rowOff
			a0 := i0[r]
			a1 := i1[r]
			a2 := i2[r]
			t1 := a1 + a2
			t2 := a0 - complex(0.5, 0)*t1
			d := a1 - a2
			t3 := complex(-sq*imag(d), sq*real(d))
			dst[ro+d0] = a0 + t1
			dst[ro+d1] = t2 + t3
			dst[ro+d2] = t2 - t3
		}
	}
}

func tail4(st *stage, in, dst []complex128, b, rowOff, stride int, dir Direction) {
	s := st.s
	neg := dir == Forward
	for k := 0; k < s; k++ {
		i0 := in[k*b : k*b+b]
		i1 := in[(s+k)*b : (s+k)*b+b]
		i2 := in[(2*s+k)*b : (2*s+k)*b+b]
		i3 := in[(3*s+k)*b : (3*s+k)*b+b]
		d0 := k * stride
		d1 := (s + k) * stride
		d2 := (2*s + k) * stride
		d3 := (3*s + k) * stride
		for r := 0; r < b; r++ {
			ro := r * rowOff
			a0 := i0[r]
			a1 := i1[r]
			a2 := i2[r]
			a3 := i3[r]
			t0 := a0 + a2
			t1 := a0 - a2
			t2 := a1 + a3
			d := a1 - a3
			var t3 complex128
			if neg {
				t3 = complex(imag(d), -real(d))
			} else {
				t3 = complex(-imag(d), real(d))
			}
			dst[ro+d0] = t0 + t2
			dst[ro+d1] = t1 + t3
			dst[ro+d2] = t0 - t2
			dst[ro+d3] = t1 - t3
		}
	}
}

func tail8(st *stage, in, dst []complex128, b, rowOff, stride int, dir Direction) {
	s := st.s
	neg := dir == Forward
	for k := 0; k < s; k++ {
		i0 := in[k*b : k*b+b]
		i1 := in[(s+k)*b : (s+k)*b+b]
		i2 := in[(2*s+k)*b : (2*s+k)*b+b]
		i3 := in[(3*s+k)*b : (3*s+k)*b+b]
		i4 := in[(4*s+k)*b : (4*s+k)*b+b]
		i5 := in[(5*s+k)*b : (5*s+k)*b+b]
		i6 := in[(6*s+k)*b : (6*s+k)*b+b]
		i7 := in[(7*s+k)*b : (7*s+k)*b+b]
		for r := 0; r < b; r++ {
			ro := r * rowOff
			y0, y1, y2, y3, y4, y5, y6, y7 := bfly8(
				i0[r], i1[r], i2[r], i3[r], i4[r], i5[r], i6[r], i7[r], neg)
			dst[ro+k*stride] = y0
			dst[ro+(s+k)*stride] = y1
			dst[ro+(2*s+k)*stride] = y2
			dst[ro+(3*s+k)*stride] = y3
			dst[ro+(4*s+k)*stride] = y4
			dst[ro+(5*s+k)*stride] = y5
			dst[ro+(6*s+k)*stride] = y6
			dst[ro+(7*s+k)*stride] = y7
		}
	}
}

func tailGeneric(st *stage, in, dst []complex128, b, rowOff, stride int) {
	rr, s := st.radix, st.s
	var a [maxGenericRadix]complex128
	for k := 0; k < s; k++ {
		for r := 0; r < b; r++ {
			ro := r * rowOff
			for j := 0; j < rr; j++ {
				a[j] = in[(s*j+k)*b+r]
			}
			for j := 0; j < rr; j++ {
				v := a[0]
				idx := 0
				for t := 1; t < rr; t++ {
					idx += j
					if idx >= rr {
						idx -= rr
					}
					v += a[t] * st.wr[idx]
				}
				dst[ro+(s*j+k)*stride] = v
			}
		}
	}
}
