// Package fft provides one-dimensional and three-dimensional complex-to-complex
// fast Fourier transforms built from scratch on the standard library.
//
// It is the substrate that replaces FFTW in this reproduction: the parallel
// 3-D FFT in package pfft uses fft for every local 1-D transform, and the
// planner in this package (see Flag) plays the role of FFTW_ESTIMATE /
// FFTW_MEASURE / FFTW_PATIENT plan tuning.
//
// The core algorithm is a Stockham autosort decimation-in-frequency FFT with
// mixed radices 2, 3 and 4, a generic O(r²) butterfly for small odd prime
// radices, and Bluestein's chirp-z algorithm for lengths containing a large
// prime factor. Transforms are unnormalized: Forward followed by Backward
// multiplies the input by N (use Scale to normalize), matching FFTW.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Direction selects the sign of the transform exponent.
type Direction int

const (
	// Forward computes Y[k] = Σ_j X[j]·exp(-2πi·jk/N).
	Forward Direction = -1
	// Backward computes Y[k] = Σ_j X[j]·exp(+2πi·jk/N) (unnormalized).
	Backward Direction = +1
)

func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// maxGenericRadix is the largest prime handled by the generic O(r²)
// butterfly; lengths with a larger prime factor go through Bluestein.
const maxGenericRadix = 31

// stage describes one Stockham pass.
type stage struct {
	radix int
	m     int          // n/radix at this stage
	s     int          // stride (product of earlier radices)
	tw    []complex128 // tw[p*(radix-1)+(j-1)] = w_n^{p·j}
	wr    []complex128 // radix-point roots for the generic butterfly (nil for 2,3,4)
}

// Plan holds the precomputed decomposition and twiddle factors for a 1-D
// transform of a fixed length and direction. Plans are safe for concurrent
// use by multiple goroutines except for the methods that use the internal
// scratch buffers, which are documented as such; use Clone for concurrent
// in-place transforms.
type Plan struct {
	n       int
	dir     Direction
	factors []int
	stages  []stage
	blue    *bluestein   // non-nil when Bluestein's algorithm is used
	scratch []complex128 // single-row ping-pong buffer
	rowbuf  []complex128 // strided gather buffer for the fallback paths
	// Row-interleaved ping-pong buffers for the batched multi-row engine
	// (see batch.go); sized n·rowBlockFor(n), allocated on first use.
	batchA, batchB []complex128
}

// NewPlan creates a plan for length n in the given direction using the
// default factor ordering (the Estimate heuristic). n must be >= 1.
func NewPlan(n int, dir Direction) *Plan {
	p, err := newPlanFactors(n, dir, nil)
	if err != nil {
		panic(err) // unreachable: nil factors never fail
	}
	return p
}

// newPlanFactors builds a plan with an explicit factor ordering; factors nil
// means "use the default heuristic order". It reports an error if the factor
// list does not multiply to n or contains an unsupported radix.
func newPlanFactors(n int, dir Direction, factors []int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: invalid transform length %d", n)
	}
	p := &Plan{n: n, dir: dir}
	if n == 1 {
		return p, nil
	}
	if factors == nil {
		f, rest := factorize(n)
		if rest != 1 {
			// Large prime factor: Bluestein over the whole length.
			p.blue = newBluestein(n, dir)
			return p, nil
		}
		factors = f
	} else {
		prod := 1
		for _, r := range factors {
			if r < 2 || r > maxGenericRadix {
				return nil, fmt.Errorf("fft: unsupported radix %d", r)
			}
			prod *= r
		}
		if prod != n {
			return nil, fmt.Errorf("fft: factors %v do not multiply to %d", factors, n)
		}
	}
	p.factors = factors
	p.buildStages()
	p.scratch = make([]complex128, n)
	return p, nil
}

// factorize splits n into supported radices: fours first, then a two, then
// odd primes up to maxGenericRadix in increasing order. The second return
// value is the unfactored remainder (1 when fully factored).
func factorize(n int) (factors []int, rest int) {
	for n%4 == 0 {
		factors = append(factors, 4)
		n /= 4
	}
	if n%2 == 0 {
		factors = append(factors, 2)
		n /= 2
	}
	for r := 3; r <= maxGenericRadix; r += 2 {
		for n%r == 0 {
			factors = append(factors, r)
			n /= r
		}
	}
	return factors, n
}

// HasLargePrimeFactor reports whether a length-n transform requires
// Bluestein's algorithm under this package's radix set.
func HasLargePrimeFactor(n int) bool {
	_, rest := factorize(n)
	return rest != 1
}

func (p *Plan) buildStages() {
	n, s := p.n, 1
	sign := float64(p.dir)
	p.stages = make([]stage, 0, len(p.factors))
	for _, r := range p.factors {
		m := n / r
		st := stage{radix: r, m: m, s: s}
		st.tw = make([]complex128, m*(r-1))
		for q := 0; q < m; q++ {
			for j := 1; j < r; j++ {
				ang := sign * 2 * math.Pi * float64(q*j) / float64(n)
				st.tw[q*(r-1)+(j-1)] = complex(math.Cos(ang), math.Sin(ang))
			}
		}
		if r != 2 && r != 3 && r != 4 && r != 8 {
			st.wr = make([]complex128, r)
			for k := 0; k < r; k++ {
				ang := sign * 2 * math.Pi * float64(k) / float64(r)
				st.wr[k] = complex(math.Cos(ang), math.Sin(ang))
			}
		}
		p.stages = append(p.stages, st)
		n = m
		s *= r
	}
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

// Dir returns the transform direction.
func (p *Plan) Dir() Direction { return p.dir }

// Factors returns the radix sequence used by the plan (nil when Bluestein's
// algorithm handles the whole length).
func (p *Plan) Factors() []int {
	out := make([]int, len(p.factors))
	copy(out, p.factors)
	return out
}

// Clone returns a plan that shares the immutable twiddle tables with p but
// has private scratch buffers, so the clone can run concurrently with p.
func (p *Plan) Clone() *Plan {
	q := &Plan{n: p.n, dir: p.dir, factors: p.factors, stages: p.stages}
	if p.blue != nil {
		q.blue = p.blue.clone()
	}
	if p.scratch != nil {
		q.scratch = make([]complex128, p.n)
	}
	return q
}

// Transform computes the transform of src into dst. dst and src must both
// have length Len(); dst may alias src (in-place). Not safe for concurrent
// use with other scratch-using methods on the same plan.
func (p *Plan) Transform(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: Transform length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	if p.n == 1 {
		dst[0] = src[0]
		return
	}
	if p.blue != nil {
		p.blue.transform(dst, src)
		return
	}
	// Stockham ping-pong: stage i reads b_{i-1} and writes b_i. Arrange the
	// buffer parity so the final stage lands in dst whenever possible.
	k := len(p.stages)
	var bufA, bufB []complex128 // stages alternate writing bufA, bufB, bufA, ...
	inPlace := &dst[0] == &src[0]
	if inPlace {
		bufA, bufB = p.scratch, src
	} else if k%2 == 1 {
		bufA, bufB = dst, p.scratch
	} else {
		bufA, bufB = p.scratch, dst
	}
	cur := src
	for i := range p.stages {
		out := bufA
		if i%2 == 1 {
			out = bufB
		}
		p.runStage(&p.stages[i], cur, out)
		cur = out
	}
	if &cur[0] != &dst[0] {
		copy(dst, cur)
	}
}

// InPlace transforms x in place. Not safe for concurrent use on one plan.
func (p *Plan) InPlace(x []complex128) { p.Transform(x, x) }

// Batch transforms count contiguous rows of length Len() located at
// x[i*dist : i*dist+Len()]. dist must be >= Len(). Not safe for concurrent
// use on one plan. Rows are pushed through the batched multi-row engine
// (see TransformRows); results are bit-identical to per-row Transform.
func (p *Plan) Batch(x []complex128, count, dist int) {
	p.TransformRows(x, count, dist)
}

// Strided transforms the n elements x[off], x[off+stride], ... in place.
// Not safe for concurrent use on one plan. Multi-stage plans run the
// stride-aware first/last stages directly on the strided memory; only the
// Bluestein and single-stage fallbacks still gather into a row buffer.
func (p *Plan) Strided(x []complex128, off, stride int) {
	if stride == 1 {
		row := x[off : off+p.n]
		p.Transform(row, row)
		return
	}
	p.rows(x[off:], 1, 0, stride)
}

// runStage applies one Stockham pass from in to out.
func (p *Plan) runStage(st *stage, in, out []complex128) {
	runStageBatch(st, in, out, 1, p.dir)
}

// runStageBatch applies one Stockham pass with the stage stride scaled by
// bs. bs == 1 is the plain single-row pass; bs == B runs the pass over a
// block of B row-interleaved transforms at once (interleaving B rows is
// exactly a stride-multiplied Stockham pass, so the same kernels serve
// both paths and produce bit-identical results).
func runStageBatch(st *stage, in, out []complex128, bs int, dir Direction) {
	switch st.radix {
	case 2:
		stage2(st, in, out, bs)
	case 3:
		stage3(st, in, out, bs, dir)
	case 4:
		stage4(st, in, out, bs, dir)
	case 8:
		stage8(st, in, out, bs, dir)
	default:
		stageGeneric(st, in, out, bs)
	}
}

// stage2 performs a radix-2 DIF Stockham pass.
func stage2(st *stage, in, out []complex128, bs int) {
	m, s := st.m, st.s*bs
	// q == 0: the twiddle is exactly 1+0i, so the multiply is skipped.
	{
		ia := in[:s]
		ib := in[s*m : s*m+s]
		oa := out[:s]
		ob := out[s : 2*s]
		for k := 0; k < s; k++ {
			a := ia[k]
			b := ib[k]
			oa[k] = a + b
			ob[k] = a - b
		}
	}
	for q := 1; q < m; q++ {
		w := st.tw[q]
		ia := in[s*q : s*q+s]
		ib := in[s*(q+m) : s*(q+m)+s]
		oa := out[s*2*q : s*2*q+s]
		ob := out[s*(2*q+1) : s*(2*q+1)+s]
		for k := 0; k < s; k++ {
			a := ia[k]
			b := ib[k]
			oa[k] = a + b
			ob[k] = (a - b) * w
		}
	}
}

// stage3 performs a radix-3 DIF Stockham pass.
func stage3(st *stage, in, out []complex128, bs int, dir Direction) {
	m, s := st.m, st.s*bs
	// For forward (sign -1): w3 = -1/2 - i·√3/2; t3 uses i·sin part.
	sq := math.Sqrt(3) / 2 * float64(dir)
	for q := 0; q < m; q++ {
		w1 := st.tw[q*2]
		w2 := st.tw[q*2+1]
		i0 := in[s*q : s*q+s]
		i1 := in[s*(q+m) : s*(q+m)+s]
		i2 := in[s*(q+2*m) : s*(q+2*m)+s]
		o0 := out[s*3*q : s*3*q+s]
		o1 := out[s*(3*q+1) : s*(3*q+1)+s]
		o2 := out[s*(3*q+2) : s*(3*q+2)+s]
		if q == 0 {
			// Unit twiddles: pure butterfly.
			for k := 0; k < s; k++ {
				a0 := i0[k]
				a1 := i1[k]
				a2 := i2[k]
				t1 := a1 + a2
				t2 := a0 - complex(0.5, 0)*t1
				d := a1 - a2
				t3 := complex(-sq*imag(d), sq*real(d))
				o0[k] = a0 + t1
				o1[k] = t2 + t3
				o2[k] = t2 - t3
			}
			continue
		}
		for k := 0; k < s; k++ {
			a0 := i0[k]
			a1 := i1[k]
			a2 := i2[k]
			t1 := a1 + a2
			t2 := a0 - complex(0.5, 0)*t1
			d := a1 - a2
			// t3 = i·sign·(√3/2)·(a1-a2)
			t3 := complex(-sq*imag(d), sq*real(d))
			o0[k] = a0 + t1
			o1[k] = (t2 + t3) * w1
			o2[k] = (t2 - t3) * w2
		}
	}
}

// stage4 performs a radix-4 DIF Stockham pass.
func stage4(st *stage, in, out []complex128, bs int, dir Direction) {
	m, s := st.m, st.s*bs
	neg := dir == Forward // multiply by -i for forward, +i for backward
	for q := 0; q < m; q++ {
		w1 := st.tw[q*3]
		w2 := st.tw[q*3+1]
		w3 := st.tw[q*3+2]
		i0 := in[s*q : s*q+s]
		i1 := in[s*(q+m) : s*(q+m)+s]
		i2 := in[s*(q+2*m) : s*(q+2*m)+s]
		i3 := in[s*(q+3*m) : s*(q+3*m)+s]
		o0 := out[s*4*q : s*4*q+s]
		o1 := out[s*(4*q+1) : s*(4*q+1)+s]
		o2 := out[s*(4*q+2) : s*(4*q+2)+s]
		o3 := out[s*(4*q+3) : s*(4*q+3)+s]
		if q == 0 {
			// Unit twiddles: pure butterfly.
			for k := 0; k < s; k++ {
				a0 := i0[k]
				a1 := i1[k]
				a2 := i2[k]
				a3 := i3[k]
				t0 := a0 + a2
				t1 := a0 - a2
				t2 := a1 + a3
				d := a1 - a3
				var t3 complex128
				if neg {
					t3 = complex(imag(d), -real(d))
				} else {
					t3 = complex(-imag(d), real(d))
				}
				o0[k] = t0 + t2
				o1[k] = t1 + t3
				o2[k] = t0 - t2
				o3[k] = t1 - t3
			}
			continue
		}
		for k := 0; k < s; k++ {
			a0 := i0[k]
			a1 := i1[k]
			a2 := i2[k]
			a3 := i3[k]
			t0 := a0 + a2
			t1 := a0 - a2
			t2 := a1 + a3
			d := a1 - a3
			var t3 complex128
			if neg {
				t3 = complex(imag(d), -real(d)) // -i·d
			} else {
				t3 = complex(-imag(d), real(d)) // +i·d
			}
			o0[k] = t0 + t2
			o1[k] = (t1 + t3) * w1
			o2[k] = (t0 - t2) * w2
			o3[k] = (t1 - t3) * w3
		}
	}
}

// sqrt2half is √2/2, the radix-8 chirp constant.
const sqrt2half = 0.707106781186547524400844362104849039

// stage8 performs a radix-8 DIF Stockham pass. The butterfly is split into
// eight radix-2 pairs feeding two radix-4 DFTs (even outputs from the sums,
// odd outputs from the ω₈-chirped differences), so one pass replaces a
// 4-stage-plus-2-stage pair with far fewer twiddle loads than the generic
// O(r²) butterfly.
func stage8(st *stage, in, out []complex128, bs int, dir Direction) {
	m, s := st.m, st.s*bs
	neg := dir == Forward
	for q := 0; q < m; q++ {
		i0 := in[s*q : s*q+s]
		i1 := in[s*(q+m) : s*(q+m)+s]
		i2 := in[s*(q+2*m) : s*(q+2*m)+s]
		i3 := in[s*(q+3*m) : s*(q+3*m)+s]
		i4 := in[s*(q+4*m) : s*(q+4*m)+s]
		i5 := in[s*(q+5*m) : s*(q+5*m)+s]
		i6 := in[s*(q+6*m) : s*(q+6*m)+s]
		i7 := in[s*(q+7*m) : s*(q+7*m)+s]
		o0 := out[s*8*q : s*8*q+s]
		o1 := out[s*(8*q+1) : s*(8*q+1)+s]
		o2 := out[s*(8*q+2) : s*(8*q+2)+s]
		o3 := out[s*(8*q+3) : s*(8*q+3)+s]
		o4 := out[s*(8*q+4) : s*(8*q+4)+s]
		o5 := out[s*(8*q+5) : s*(8*q+5)+s]
		o6 := out[s*(8*q+6) : s*(8*q+6)+s]
		o7 := out[s*(8*q+7) : s*(8*q+7)+s]
		if q == 0 {
			// Unit twiddles: pure butterfly.
			for k := 0; k < s; k++ {
				y0, y1, y2, y3, y4, y5, y6, y7 := bfly8(
					i0[k], i1[k], i2[k], i3[k], i4[k], i5[k], i6[k], i7[k], neg)
				o0[k] = y0
				o1[k] = y1
				o2[k] = y2
				o3[k] = y3
				o4[k] = y4
				o5[k] = y5
				o6[k] = y6
				o7[k] = y7
			}
			continue
		}
		tw := st.tw[q*7 : q*7+7]
		w1, w2, w3, w4, w5, w6, w7 := tw[0], tw[1], tw[2], tw[3], tw[4], tw[5], tw[6]
		for k := 0; k < s; k++ {
			y0, y1, y2, y3, y4, y5, y6, y7 := bfly8(
				i0[k], i1[k], i2[k], i3[k], i4[k], i5[k], i6[k], i7[k], neg)
			o0[k] = y0
			o1[k] = y1 * w1
			o2[k] = y2 * w2
			o3[k] = y3 * w3
			o4[k] = y4 * w4
			o5[k] = y5 * w5
			o6[k] = y6 * w6
			o7[k] = y7 * w7
		}
	}
}

// bfly8 computes one 8-point DFT (outputs in natural order) via the
// split into two radix-4 DFTs. neg selects the forward (-i) rotation.
func bfly8(a0, a1, a2, a3, a4, a5, a6, a7 complex128, neg bool) (y0, y1, y2, y3, y4, y5, y6, y7 complex128) {
	const c = sqrt2half
	t0 := a0 + a4
	u0 := a0 - a4
	t1 := a1 + a5
	u1 := a1 - a5
	t2 := a2 + a6
	u2 := a2 - a6
	t3 := a3 + a7
	u3 := a3 - a7
	// Chirp the odd branch: v_t = u_t·ω₈^t.
	var v1, v2, v3 complex128
	if neg { // forward: ω₈ = c−ci, ω₈² = −i, ω₈³ = −c−ci
		v1 = complex(c*(real(u1)+imag(u1)), c*(imag(u1)-real(u1)))
		v2 = complex(imag(u2), -real(u2))
		v3 = complex(c*(imag(u3)-real(u3)), -c*(real(u3)+imag(u3)))
	} else { // backward: ω₈ = c+ci, ω₈² = +i, ω₈³ = −c+ci
		v1 = complex(c*(real(u1)-imag(u1)), c*(imag(u1)+real(u1)))
		v2 = complex(-imag(u2), real(u2))
		v3 = complex(-c*(real(u3)+imag(u3)), c*(real(u3)-imag(u3)))
	}
	// Even outputs: radix-4 DFT of the sums.
	p0 := t0 + t2
	p1 := t0 - t2
	p2 := t1 + t3
	d := t1 - t3
	var p3 complex128
	if neg {
		p3 = complex(imag(d), -real(d))
	} else {
		p3 = complex(-imag(d), real(d))
	}
	y0 = p0 + p2
	y2 = p1 + p3
	y4 = p0 - p2
	y6 = p1 - p3
	// Odd outputs: radix-4 DFT of the chirped differences.
	r0 := u0 + v2
	r1 := u0 - v2
	r2 := v1 + v3
	e := v1 - v3
	var r3 complex128
	if neg {
		r3 = complex(imag(e), -real(e))
	} else {
		r3 = complex(-imag(e), real(e))
	}
	y1 = r0 + r2
	y3 = r1 + r3
	y5 = r0 - r2
	y7 = r1 - r3
	return
}

// stageGeneric performs an O(r²) butterfly pass for any small prime radix.
func stageGeneric(st *stage, in, out []complex128, bs int) {
	r, m, s := st.radix, st.m, st.s*bs
	var a [maxGenericRadix]complex128
	for q := 0; q < m; q++ {
		for k := 0; k < s; k++ {
			for j := 0; j < r; j++ {
				a[j] = in[s*(q+j*m)+k]
			}
			for j := 0; j < r; j++ {
				b := a[0]
				idx := 0
				for t := 1; t < r; t++ {
					idx += j
					if idx >= r {
						idx -= r
					}
					b += a[t] * st.wr[idx]
				}
				if j > 0 {
					b *= st.tw[q*(r-1)+(j-1)]
				}
				out[s*(r*q+j)+k] = b
			}
		}
	}
}

// Scale multiplies every element of x by 1/n, the normalization that makes
// Backward(Forward(x)) == x.
func Scale(x []complex128) {
	inv := 1 / float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

// ScaleBy multiplies every element of x by f.
func ScaleBy(x []complex128, f float64) {
	for i := range x {
		x[i] = complex(real(x[i])*f, imag(x[i])*f)
	}
}

// bluestein implements the chirp-z transform for arbitrary lengths.
type bluestein struct {
	n     int
	dir   Direction
	m     int // convolution length, a power of two >= 2n-1
	chirp []complex128
	bfft  []complex128 // forward FFT of the padded conjugate chirp
	fwd   *Plan
	bwd   *Plan
	buf   []complex128
}

func newBluestein(n int, dir Direction) *bluestein {
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	b := &bluestein{n: n, dir: dir, m: m}
	b.chirp = make([]complex128, n)
	sign := float64(dir)
	for k := 0; k < n; k++ {
		// exp(sign·iπ·k²/n); reduce k² mod 2n to keep the angle small.
		k2 := (k * k) % (2 * n)
		ang := sign * math.Pi * float64(k2) / float64(n)
		b.chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	b.fwd = NewPlan(m, Forward)
	b.bwd = NewPlan(m, Backward)
	bseq := make([]complex128, m)
	bseq[0] = cmplx.Conj(b.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(b.chirp[k])
		bseq[k] = c
		bseq[m-k] = c
	}
	b.bfft = make([]complex128, m)
	b.fwd.Transform(b.bfft, bseq)
	b.buf = make([]complex128, m)
	return b
}

func (b *bluestein) clone() *bluestein {
	c := *b
	c.fwd = b.fwd.Clone()
	c.bwd = b.bwd.Clone()
	c.buf = make([]complex128, b.m)
	return &c
}

func (b *bluestein) transform(dst, src []complex128) {
	a := b.buf
	for k := 0; k < b.n; k++ {
		a[k] = src[k] * b.chirp[k]
	}
	for k := b.n; k < b.m; k++ {
		a[k] = 0
	}
	b.fwd.InPlace(a)
	for k := range a {
		a[k] *= b.bfft[k]
	}
	b.bwd.InPlace(a)
	inv := 1 / float64(b.m)
	for k := 0; k < b.n; k++ {
		dst[k] = a[k] * b.chirp[k] * complex(inv, 0)
	}
}
