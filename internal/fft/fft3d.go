package fft

import "fmt"

// Plan3D computes serial (single-process) 3-D FFTs of a fixed shape. The
// array layout is x-y-z row-major: element (x,y,z) lives at index
// (x·Ny + y)·Nz + z, so the z dimension is contiguous in memory. This is the
// same layout the parallel 3-D FFT assigns to each process slab, which makes
// Plan3D the reference implementation the distributed transforms are tested
// against.
type Plan3D struct {
	nx, ny, nz int
	px, py, pz *Plan
}

// NewPlan3D creates a serial 3-D plan for an nx×ny×nz array.
func NewPlan3D(nx, ny, nz int, dir Direction) *Plan3D {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("fft: invalid 3-D shape %d×%d×%d", nx, ny, nz))
	}
	return &Plan3D{
		nx: nx, ny: ny, nz: nz,
		px: NewPlan(nx, dir),
		py: NewPlan(ny, dir),
		pz: NewPlan(nz, dir),
	}
}

// Shape returns (nx, ny, nz).
func (p *Plan3D) Shape() (nx, ny, nz int) { return p.nx, p.ny, p.nz }

// Transform computes the 3-D transform of x in place. x must have length
// nx·ny·nz. Not safe for concurrent use on one plan.
func (p *Plan3D) Transform(x []complex128) {
	if len(x) != p.nx*p.ny*p.nz {
		panic(fmt.Sprintf("fft: Plan3D.Transform: len %d != %d×%d×%d", len(x), p.nx, p.ny, p.nz))
	}
	// Along z: contiguous rows.
	p.pz.Batch(x, p.nx*p.ny, p.nz)
	// Along y: stride nz, one strided transform per (x, z) line.
	for ix := 0; ix < p.nx; ix++ {
		base := ix * p.ny * p.nz
		for z := 0; z < p.nz; z++ {
			p.py.Strided(x, base+z, p.nz)
		}
	}
	// Along x: stride ny·nz.
	stride := p.ny * p.nz
	for y := 0; y < p.ny; y++ {
		for z := 0; z < p.nz; z++ {
			p.px.Strided(x, y*p.nz+z, stride)
		}
	}
}

// Normalize divides x by nx·ny·nz, making Backward∘Forward the identity.
func (p *Plan3D) Normalize(x []complex128) {
	ScaleBy(x, 1/float64(p.nx*p.ny*p.nz))
}
