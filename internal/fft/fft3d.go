package fft

import "fmt"

// Plan3D computes serial (single-process) 3-D FFTs of a fixed shape. The
// array layout is x-y-z row-major: element (x,y,z) lives at index
// (x·Ny + y)·Nz + z, so the z dimension is contiguous in memory. This is the
// same layout the parallel 3-D FFT assigns to each process slab, which makes
// Plan3D the reference implementation the distributed transforms are tested
// against.
type Plan3D struct {
	nx, ny, nz int
	px, py, pz *Plan
}

// NewPlan3D creates a serial 3-D plan for an nx×ny×nz array.
func NewPlan3D(nx, ny, nz int, dir Direction) *Plan3D {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("fft: invalid 3-D shape %d×%d×%d", nx, ny, nz))
	}
	return &Plan3D{
		nx: nx, ny: ny, nz: nz,
		px: NewPlan(nx, dir),
		py: NewPlan(ny, dir),
		pz: NewPlan(nz, dir),
	}
}

// Shape returns (nx, ny, nz).
func (p *Plan3D) Shape() (nx, ny, nz int) { return p.nx, p.ny, p.nz }

// Transform computes the 3-D transform of x in place. x must have length
// nx·ny·nz. Not safe for concurrent use on one plan.
func (p *Plan3D) Transform(x []complex128) {
	if len(x) != p.nx*p.ny*p.nz {
		panic(fmt.Sprintf("fft: Plan3D.Transform: len %d != %d×%d×%d", len(x), p.nx, p.ny, p.nz))
	}
	// Along z: contiguous rows through the batched engine.
	p.pz.TransformRows(x, p.nx*p.ny, p.nz)
	// Along y: for each x-plane, the nz strided lines (stride nz, starts
	// z = 0..nz-1) batch together — the head/tail stages read and write
	// the strided memory directly.
	for ix := 0; ix < p.nx; ix++ {
		p.py.StridedRows(x, ix*p.ny*p.nz, p.nz, p.nz, 1)
	}
	// Along x: all ny·nz lines of stride ny·nz in one batched call.
	p.px.StridedRows(x, 0, p.ny*p.nz, p.ny*p.nz, 1)
}

// Normalize divides x by nx·ny·nz, making Backward∘Forward the identity.
func (p *Plan3D) Normalize(x []complex128) {
	ScaleBy(x, 1/float64(p.nx*p.ny*p.nz))
}
