package fft

import (
	"fmt"
	"testing"
)

func TestPlan3DMatchesOracle(t *testing.T) {
	shapes := [][3]int{
		{4, 4, 4}, {8, 8, 8}, {4, 6, 8}, {3, 5, 7}, {8, 4, 2},
		{16, 16, 16}, {12, 10, 6}, {2, 2, 2}, {1, 8, 8}, {8, 1, 8}, {8, 8, 1},
	}
	for _, s := range shapes {
		nx, ny, nz := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", nx, ny, nz), func(t *testing.T) {
			x := randVec(nx*ny*nz, int64(nx*100+ny*10+nz))
			want := DFT3D(x, nx, ny, nz, Forward)
			NewPlan3D(nx, ny, nz, Forward).Transform(x)
			if e := maxErr(x, want); e > tol {
				t.Errorf("error %g", e)
			}
		})
	}
}

func TestPlan3DRoundTrip(t *testing.T) {
	nx, ny, nz := 12, 8, 10
	x := randVec(nx*ny*nz, 44)
	orig := append([]complex128(nil), x...)
	fwd := NewPlan3D(nx, ny, nz, Forward)
	bwd := NewPlan3D(nx, ny, nz, Backward)
	fwd.Transform(x)
	bwd.Transform(x)
	bwd.Normalize(x)
	if e := maxErr(x, orig); e > tol {
		t.Errorf("3-D roundtrip error %g", e)
	}
}

func TestPlan3DShape(t *testing.T) {
	p := NewPlan3D(2, 3, 4, Forward)
	nx, ny, nz := p.Shape()
	if nx != 2 || ny != 3 || nz != 4 {
		t.Errorf("Shape() = %d,%d,%d", nx, ny, nz)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input length")
		}
	}()
	p.Transform(make([]complex128, 5))
}

func TestPlan3DInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPlan3D(0, 4, 4, Forward)
}
