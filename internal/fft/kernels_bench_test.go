package fft

import (
	"fmt"
	"testing"
)

// BenchmarkKernels compares 1-D kernel throughput between the per-row
// scalar path (one Transform per row — the pre-engine behavior, still the
// fallback for Bluestein and single-stage plans) and the batched
// multi-row engine, for both contiguous row batches and strided lines.
// cmd/offt-kernels runs the same pairs programmatically and emits
// BENCH_PR4.json with the speedups; scripts/verify.sh gates on the
// contiguous N=256 ratio.
func BenchmarkKernels(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		rows := 64
		b.Run(fmt.Sprintf("rows/perRow/n=%d", n), func(b *testing.B) {
			p := NewPlan(n, Forward)
			x := randVec(rows*n, int64(n))
			b.SetBytes(int64(rows * n * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					row := x[r*n : r*n+n]
					p.Transform(row, row)
				}
			}
		})
		b.Run(fmt.Sprintf("rows/batched/n=%d", n), func(b *testing.B) {
			p := NewPlan(n, Forward)
			x := randVec(rows*n, int64(n))
			p.TransformRows(x, rows, n) // warm-up allocation
			b.SetBytes(int64(rows * n * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.TransformRows(x, rows, n)
			}
		})
		// Strided lines: a transposed n×lines plane, line r at x[r+i*lines],
		// the access pattern of FFTy/FFTx over sub-tiles.
		lines := 32
		b.Run(fmt.Sprintf("strided/gather/n=%d", n), func(b *testing.B) {
			p := NewPlan(n, Forward)
			x := randVec(n*lines, int64(n)+1)
			row := make([]complex128, n)
			b.SetBytes(int64(lines * n * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < lines; r++ {
					// pre-engine Strided: gather, transform, scatter
					for j := 0; j < n; j++ {
						row[j] = x[r+j*lines]
					}
					p.Transform(row, row)
					for j := 0; j < n; j++ {
						x[r+j*lines] = row[j]
					}
				}
			}
		})
		b.Run(fmt.Sprintf("strided/batched/n=%d", n), func(b *testing.B) {
			p := NewPlan(n, Forward)
			x := randVec(n*lines, int64(n)+1)
			p.StridedRows(x, 0, lines, lines, 1) // warm-up allocation
			b.SetBytes(int64(lines * n * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.StridedRows(x, 0, lines, lines, 1)
			}
		})
	}
}
