package fft

import "math"

// DFT computes the discrete Fourier transform of src by the O(N²)
// definition and returns a fresh slice. It is the correctness oracle for
// the fast transforms and is exported for use by tests in other packages.
func DFT(src []complex128, dir Direction) []complex128 {
	n := len(src)
	dst := make([]complex128, n)
	sign := float64(dir)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64((j*k)%n) / float64(n)
			sum += src[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		dst[k] = sum
	}
	return dst
}

// DFT3D computes the 3-D discrete Fourier transform of an nx×ny×nz array in
// x-y-z row-major layout (z contiguous) by composing 1-D O(N²) DFTs along
// each dimension. It is the oracle for the serial and parallel 3-D FFTs.
func DFT3D(src []complex128, nx, ny, nz int, dir Direction) []complex128 {
	if len(src) != nx*ny*nz {
		panic("fft: DFT3D size mismatch")
	}
	out := make([]complex128, len(src))
	copy(out, src)
	row := make([]complex128, 0, max3(nx, ny, nz))

	// Along z (stride 1).
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			base := (x*ny + y) * nz
			copy(out[base:base+nz], DFT(out[base:base+nz], dir))
		}
	}
	// Along y (stride nz).
	for x := 0; x < nx; x++ {
		for z := 0; z < nz; z++ {
			row = row[:ny]
			for y := 0; y < ny; y++ {
				row[y] = out[(x*ny+y)*nz+z]
			}
			r := DFT(row, dir)
			for y := 0; y < ny; y++ {
				out[(x*ny+y)*nz+z] = r[y]
			}
		}
	}
	// Along x (stride ny*nz).
	for y := 0; y < ny; y++ {
		for z := 0; z < nz; z++ {
			row = row[:nx]
			for x := 0; x < nx; x++ {
				row[x] = out[(x*ny+y)*nz+z]
			}
			r := DFT(row, dir)
			for x := 0; x < nx; x++ {
				out[(x*ny+y)*nz+z] = r[x]
			}
		}
	}
	return out
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
