package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests of the FFT algebra using testing/quick. Sizes are
// drawn from a mix of smooth and awkward lengths so every code path
// (radix-2/3/4, generic primes, Bluestein) gets exercised.

var quickSizes = []int{2, 3, 4, 5, 6, 8, 9, 12, 15, 16, 24, 29, 31, 32, 37, 48, 60, 64, 97, 120, 128}

func quickConfig(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func genVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

// Linearity: FFT(αx + y) == α·FFT(x) + FFT(y).
func TestQuickLinearity(t *testing.T) {
	f := func(sizeIdx uint8, seed int64, ar, ai float64) bool {
		n := quickSizes[int(sizeIdx)%len(quickSizes)]
		rng := rand.New(rand.NewSource(seed))
		alpha := complex(math.Mod(ar, 4), math.Mod(ai, 4))
		x := genVec(rng, n)
		y := genVec(rng, n)
		p := NewPlan(n, Forward)

		comb := make([]complex128, n)
		for i := range comb {
			comb[i] = alpha*x[i] + y[i]
		}
		p.InPlace(comb)

		fx := make([]complex128, n)
		fy := make([]complex128, n)
		p.Transform(fx, x)
		p.Transform(fy, y)
		for i := range fx {
			fx[i] = alpha*fx[i] + fy[i]
		}
		return maxErr(comb, fx) < 1e-8
	}
	if err := quick.Check(f, quickConfig(1)); err != nil {
		t.Error(err)
	}
}

// Parseval: Σ|x|² == (1/N)·Σ|X|².
func TestQuickParseval(t *testing.T) {
	f := func(sizeIdx uint8, seed int64) bool {
		n := quickSizes[int(sizeIdx)%len(quickSizes)]
		rng := rand.New(rand.NewSource(seed))
		x := genVec(rng, n)
		var tsum float64
		for _, v := range x {
			tsum += real(v)*real(v) + imag(v)*imag(v)
		}
		p := NewPlan(n, Forward)
		p.InPlace(x)
		var fsum float64
		for _, v := range x {
			fsum += real(v)*real(v) + imag(v)*imag(v)
		}
		fsum /= float64(n)
		return math.Abs(tsum-fsum) <= 1e-8*(1+tsum)
	}
	if err := quick.Check(f, quickConfig(2)); err != nil {
		t.Error(err)
	}
}

// Circular shift theorem: FFT(shift(x, s))[k] == FFT(x)[k]·e^{-2πi·sk/N}.
func TestQuickShiftTheorem(t *testing.T) {
	f := func(sizeIdx uint8, seed int64, shift uint8) bool {
		n := quickSizes[int(sizeIdx)%len(quickSizes)]
		s := int(shift) % n
		rng := rand.New(rand.NewSource(seed))
		x := genVec(rng, n)
		shifted := make([]complex128, n)
		for i := range x {
			shifted[(i+s)%n] = x[i]
		}
		p := NewPlan(n, Forward)
		fx := make([]complex128, n)
		fs := make([]complex128, n)
		p.Transform(fx, x)
		p.Transform(fs, shifted)
		for k := range fx {
			ang := -2 * math.Pi * float64((s*k)%n) / float64(n)
			fx[k] *= complex(math.Cos(ang), math.Sin(ang))
		}
		return maxErr(fs, fx) < 1e-8
	}
	if err := quick.Check(f, quickConfig(3)); err != nil {
		t.Error(err)
	}
}

// Conjugate symmetry for real inputs: X[N-k] == conj(X[k]).
func TestQuickRealInputSymmetry(t *testing.T) {
	f := func(sizeIdx uint8, seed int64) bool {
		n := quickSizes[int(sizeIdx)%len(quickSizes)]
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
		}
		p := NewPlan(n, Forward)
		p.InPlace(x)
		for k := 1; k < n; k++ {
			if cmplx.Abs(x[n-k]-cmplx.Conj(x[k])) > 1e-8*(1+cmplx.Abs(x[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(4)); err != nil {
		t.Error(err)
	}
}

// Roundtrip: Backward(Forward(x))/N == x for arbitrary sizes, including
// Bluestein lengths.
func TestQuickRoundTripArbitraryN(t *testing.T) {
	f := func(rawN uint16, seed int64) bool {
		n := int(rawN)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		x := genVec(rng, n)
		orig := append([]complex128(nil), x...)
		NewPlan(n, Forward).InPlace(x)
		NewPlan(n, Backward).InPlace(x)
		Scale(x)
		return maxErr(x, orig) < 1e-8
	}
	cfg := quickConfig(5)
	cfg.MaxCount = 40
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The 3-D transform is separable: transforming with Plan3D equals composing
// per-axis DFTs (checked against DFT3D on random small shapes).
func TestQuick3DMatchesOracle(t *testing.T) {
	f := func(a, b, c uint8, seed int64) bool {
		shapes := []int{1, 2, 3, 4, 5, 6, 8}
		nx := shapes[int(a)%len(shapes)]
		ny := shapes[int(b)%len(shapes)]
		nz := shapes[int(c)%len(shapes)]
		rng := rand.New(rand.NewSource(seed))
		x := genVec(rng, nx*ny*nz)
		want := DFT3D(x, nx, ny, nz, Forward)
		NewPlan3D(nx, ny, nz, Forward).Transform(x)
		return maxErr(x, want) < 1e-8
	}
	cfg := quickConfig(6)
	cfg.MaxCount = 30
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
