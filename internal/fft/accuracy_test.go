package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

// rmsError runs a forward+backward roundtrip and returns the RMS relative
// error, the standard accuracy metric for FFT implementations.
func rmsError(n int, seed int64) float64 {
	x := randVec(n, seed)
	orig := append([]complex128(nil), x...)
	NewPlan(n, Forward).InPlace(x)
	NewPlan(n, Backward).InPlace(x)
	Scale(x)
	var num, den float64
	for i := range x {
		d := x[i] - orig[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(orig[i])*real(orig[i]) + imag(orig[i])*imag(orig[i])
	}
	return math.Sqrt(num / den)
}

// TestAccuracyGrowsSlowly checks the numerical error stays at the
// O(ε·√log N) level expected of a correctly implemented FFT: even at
// N = 2²⁰ the roundtrip RMS error must stay below 1e-14, and Bluestein
// lengths below 1e-12 (they run three transforms at ~2N).
func TestAccuracyGrowsSlowly(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 17, 1 << 20} {
		if e := rmsError(n, int64(n)); e > 1e-14 {
			t.Errorf("N=%d: RMS roundtrip error %g", n, e)
		}
	}
	for _, n := range []int{10007, 65521} { // primes → Bluestein
		if e := rmsError(n, int64(n)); e > 1e-12 {
			t.Errorf("bluestein N=%d: RMS roundtrip error %g", n, e)
		}
	}
}

// TestLargeMixedRadixForwardSpotCheck verifies a handful of bins of a big
// mixed-radix transform against direct evaluation (full O(N²) is too slow).
func TestLargeMixedRadixForwardSpotCheck(t *testing.T) {
	n := 1920 // 2^7 · 3 · 5
	x := randVec(n, 77)
	got := make([]complex128, n)
	NewPlan(n, Forward).Transform(got, x)
	for _, k := range []int{0, 1, n / 3, n / 2, n - 1} {
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64((j*k)%n) / float64(n)
			want += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		if cmplx.Abs(got[k]-want) > 1e-8*float64(n) {
			t.Errorf("bin %d: got %v want %v", k, got[k], want)
		}
	}
}

// TestPlanReuseStable transforms through one plan many times; results must
// be identical on every use (no state leaks between calls).
func TestPlanReuseStable(t *testing.T) {
	n := 384
	p := NewPlan(n, Forward)
	x := randVec(n, 5)
	first := make([]complex128, n)
	p.Transform(first, x)
	for i := 0; i < 50; i++ {
		got := make([]complex128, n)
		p.Transform(got, x)
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("iteration %d: plan state leaked at element %d", i, j)
			}
		}
		// Interleave other uses of the same plan.
		tmp := randVec(n, int64(i))
		p.InPlace(tmp)
	}
}

// TestExtremeMagnitudes checks the transform handles huge and tiny values
// without producing NaNs or Infs.
func TestExtremeMagnitudes(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	for i := range x {
		switch i % 3 {
		case 0:
			x[i] = complex(1e150, -1e150)
		case 1:
			x[i] = complex(1e-300, 1e-300)
		default:
			x[i] = 0
		}
	}
	p := NewPlan(n, Forward)
	p.InPlace(x)
	for i, v := range x {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			t.Fatalf("element %d is %v", i, v)
		}
	}
}

// TestZeroInputStaysZero ensures no numerical noise is injected.
func TestZeroInputStaysZero(t *testing.T) {
	for _, n := range []int{8, 12, 31, 37, 100} {
		x := make([]complex128, n)
		NewPlan(n, Forward).InPlace(x)
		for i, v := range x {
			if v != 0 {
				t.Fatalf("n=%d: element %d = %v, want 0", n, i, v)
			}
		}
	}
}
