package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// maxErr returns the largest elementwise magnitude difference, scaled by the
// vector's norm so tolerances are size-independent.
func maxErr(a, b []complex128) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var norm float64 = 1
	for i := range a {
		if m := cmplx.Abs(a[i]); m > norm {
			norm = m
		}
	}
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d/norm > worst {
			worst = d / norm
		}
	}
	return worst
}

func randVec(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

const tol = 1e-9

// testLengths covers powers of two, mixed radices, generic primes,
// Bluestein lengths, and the per-dimension sizes used by the paper's
// evaluation (256, 384, 512, 640, 1280, 1536, 1792, 2048).
var testLengths = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 20, 21, 24, 25,
	27, 29, 31, 32, 35, 36, 37, 41, 48, 49, 53, 60, 64, 81, 97, 100, 101,
	120, 125, 127, 128, 211, 243, 256, 384, 512, 625, 640, 1024, 1280,
	1536, 1792, 2048,
}

func TestForwardMatchesDFT(t *testing.T) {
	for _, n := range testLengths {
		if n > 512 {
			continue // O(N²) oracle gets slow; larger sizes covered by roundtrip
		}
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			x := randVec(n, int64(n))
			want := DFT(x, Forward)
			p := NewPlan(n, Forward)
			got := make([]complex128, n)
			p.Transform(got, x)
			if e := maxErr(got, want); e > tol {
				t.Errorf("n=%d: max relative error %g", n, e)
			}
		})
	}
}

func TestBackwardMatchesDFT(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 8, 12, 16, 29, 31, 37, 60, 64, 101, 128, 384} {
		x := randVec(n, int64(n)+100)
		want := DFT(x, Backward)
		p := NewPlan(n, Backward)
		got := make([]complex128, n)
		p.Transform(got, x)
		if e := maxErr(got, want); e > tol {
			t.Errorf("n=%d: max relative error %g", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range testLengths {
		x := randVec(n, int64(n)*3+1)
		orig := append([]complex128(nil), x...)
		fwd := NewPlan(n, Forward)
		bwd := NewPlan(n, Backward)
		fwd.InPlace(x)
		bwd.InPlace(x)
		Scale(x)
		if e := maxErr(x, orig); e > tol {
			t.Errorf("n=%d: roundtrip error %g", n, e)
		}
	}
}

func TestInPlaceMatchesOutOfPlace(t *testing.T) {
	for _, n := range []int{8, 12, 27, 64, 100, 384, 1024} {
		x := randVec(n, int64(n)+7)
		p := NewPlan(n, Forward)
		out := make([]complex128, n)
		p.Transform(out, x)
		p.InPlace(x)
		if e := maxErr(x, out); e > 0 {
			t.Errorf("n=%d: in-place differs from out-of-place by %g", n, e)
		}
	}
}

func TestOutOfPlacePreservesSource(t *testing.T) {
	for _, n := range []int{4, 8, 16, 24, 64, 384} {
		x := randVec(n, 5)
		orig := append([]complex128(nil), x...)
		p := NewPlan(n, Forward)
		dst := make([]complex128, n)
		p.Transform(dst, x)
		if e := maxErr(x, orig); e > 0 {
			t.Errorf("n=%d: Transform modified src (err %g)", n, e)
		}
	}
}

func TestImpulseAndConstant(t *testing.T) {
	for _, n := range []int{4, 7, 16, 31, 60, 128} {
		// Impulse at 0 transforms to all ones.
		x := make([]complex128, n)
		x[0] = 1
		p := NewPlan(n, Forward)
		p.InPlace(x)
		for k := range x {
			if cmplx.Abs(x[k]-1) > tol {
				t.Fatalf("n=%d: impulse FFT[%d]=%v, want 1", n, k, x[k])
			}
		}
		// Constant 1 transforms to N·δ₀.
		for i := range x {
			x[i] = 1
		}
		p.InPlace(x)
		if cmplx.Abs(x[0]-complex(float64(n), 0)) > tol*float64(n) {
			t.Fatalf("n=%d: const FFT[0]=%v, want %d", n, x[0], n)
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(x[k]) > tol*float64(n) {
				t.Fatalf("n=%d: const FFT[%d]=%v, want 0", n, k, x[k])
			}
		}
	}
}

func TestSingleFrequency(t *testing.T) {
	n := 48
	for f := 0; f < n; f += 5 {
		x := make([]complex128, n)
		for j := range x {
			ang := 2 * math.Pi * float64(f*j%n) / float64(n)
			x[j] = complex(math.Cos(ang), math.Sin(ang)) // e^{+2πi f j/n}
		}
		p := NewPlan(n, Forward)
		p.InPlace(x)
		for k := range x {
			want := complex(0, 0)
			if k == f {
				want = complex(float64(n), 0)
			}
			if cmplx.Abs(x[k]-want) > 1e-8*float64(n) {
				t.Fatalf("f=%d: FFT[%d]=%v, want %v", f, k, x[k], want)
			}
		}
	}
}

func TestBatch(t *testing.T) {
	n, count, dist := 16, 5, 20
	x := randVec(count*dist, 9)
	want := append([]complex128(nil), x...)
	for i := 0; i < count; i++ {
		row := want[i*dist : i*dist+n]
		copy(row, DFT(row, Forward))
	}
	p := NewPlan(n, Forward)
	p.Batch(x, count, dist)
	if e := maxErr(x, want); e > tol {
		t.Errorf("batch error %g", e)
	}
	// Gap elements untouched: indices [n, dist) of each row.
	for i := 0; i < count; i++ {
		for j := n; j < dist; j++ {
			if x[i*dist+j] != want[i*dist+j] {
				t.Fatalf("batch touched gap element row %d col %d", i, j)
			}
		}
	}
}

func TestStrided(t *testing.T) {
	n, stride := 12, 7
	total := n*stride + 3
	x := randVec(total, 11)
	orig := append([]complex128(nil), x...)
	row := make([]complex128, n)
	for i := 0; i < n; i++ {
		row[i] = x[2+i*stride]
	}
	want := DFT(row, Forward)
	p := NewPlan(n, Forward)
	p.Strided(x, 2, stride)
	for i := 0; i < n; i++ {
		if cmplx.Abs(x[2+i*stride]-want[i]) > tol {
			t.Fatalf("strided element %d: got %v want %v", i, x[2+i*stride], want[i])
		}
	}
	// Everything off the stride untouched.
	for j := range x {
		if (j-2)%stride == 0 && j >= 2 && j < 2+n*stride {
			continue
		}
		if x[j] != orig[j] {
			t.Fatalf("strided touched unrelated element %d", j)
		}
	}
}

func TestCloneConcurrentSafe(t *testing.T) {
	n := 256
	p := NewPlan(n, Forward)
	x := randVec(n, 13)
	want := make([]complex128, n)
	p.Transform(want, x)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			c := p.Clone()
			for i := 0; i < 20; i++ {
				y := append([]complex128(nil), x...)
				c.InPlace(y)
				if e := maxErr(y, want); e > 0 {
					done <- fmt.Errorf("clone result differs by %g", e)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		n    int
		want []int
		rest int
	}{
		{8, []int{4, 2}, 1},
		{16, []int{4, 4}, 1},
		{12, []int{4, 3}, 1},
		{384, []int{4, 4, 4, 2, 3}, 1},
		{640, []int{4, 4, 4, 2, 5}, 1},
		{31, []int{31}, 1},
		{37, nil, 37},
		{2 * 37, []int{2}, 37},
	}
	for _, c := range cases {
		got, rest := factorize(c.n)
		if rest != c.rest {
			t.Errorf("factorize(%d) rest=%d want %d", c.n, rest, c.rest)
		}
		if rest == 1 {
			prod := 1
			for _, r := range got {
				prod *= r
			}
			if prod != c.n {
				t.Errorf("factorize(%d) = %v, product %d", c.n, got, prod)
			}
		}
		if c.want != nil && fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("factorize(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHasLargePrimeFactor(t *testing.T) {
	for _, n := range []int{2, 31, 62, 1024, 384} {
		if HasLargePrimeFactor(n) {
			t.Errorf("HasLargePrimeFactor(%d) = true, want false", n)
		}
	}
	for _, n := range []int{37, 41 * 2, 101, 2 * 3 * 37} {
		if !HasLargePrimeFactor(n) {
			t.Errorf("HasLargePrimeFactor(%d) = false, want true", n)
		}
	}
}

func TestBluesteinLengths(t *testing.T) {
	for _, n := range []int{37, 41, 74, 97, 101, 127, 211} {
		x := randVec(n, int64(n))
		want := DFT(x, Forward)
		p := NewPlan(n, Forward)
		if p.blue == nil {
			t.Fatalf("n=%d expected Bluestein plan", n)
		}
		got := make([]complex128, n)
		p.Transform(got, x)
		if e := maxErr(got, want); e > tol {
			t.Errorf("bluestein n=%d: error %g", n, e)
		}
	}
}

func TestNewPlanFactorsValidation(t *testing.T) {
	if _, err := newPlanFactors(8, Forward, []int{2, 2}); err == nil {
		t.Error("expected error: factors do not multiply to n")
	}
	if _, err := newPlanFactors(8, Forward, []int{8}); err != nil {
		t.Errorf("radix 8 should be accepted by the generic butterfly: %v", err)
	}
	if _, err := newPlanFactors(64, Forward, []int{64}); err == nil {
		t.Error("expected error: radix above maxGenericRadix")
	}
}

func TestGenericRadixMatchesSpecialized(t *testing.T) {
	// Force the generic butterfly for composite radices and compare.
	for _, c := range []struct{ n, r int }{{8, 8}, {16, 16}, {27, 27}, {25, 25}, {36, 6}} {
		var factors []int
		m := c.n
		for m%c.r == 0 {
			factors = append(factors, c.r)
			m /= c.r
		}
		if m != 1 {
			t.Fatalf("bad case %v", c)
		}
		p, err := newPlanFactors(c.n, Forward, factors)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(c.n, 99)
		want := DFT(x, Forward)
		got := make([]complex128, c.n)
		p.Transform(got, x)
		if e := maxErr(got, want); e > tol {
			t.Errorf("generic radix %d (n=%d): error %g", c.r, c.n, e)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	p := NewPlan(8, Forward)
	mustPanic("short dst", func() { p.Transform(make([]complex128, 4), make([]complex128, 8)) })
	mustPanic("short src", func() { p.Transform(make([]complex128, 8), make([]complex128, 4)) })
	mustPanic("bad dist", func() { p.Batch(make([]complex128, 8), 1, 4) })
	mustPanic("bad length", func() { NewPlan(0, Forward) })
}

func TestScale(t *testing.T) {
	x := []complex128{complex(2, 4), complex(-6, 8)}
	Scale(x)
	if x[0] != complex(1, 2) || x[1] != complex(-3, 4) {
		t.Errorf("Scale: got %v", x)
	}
	ScaleBy(x, 2)
	if x[0] != complex(2, 4) {
		t.Errorf("ScaleBy: got %v", x)
	}
}
