package tuned

import (
	"os"
	"path/filepath"
	"testing"

	"offt/internal/pfft"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "params.json")

	prm := pfft.Params{T: 16, W: 2, Px: 4, Pz: 8, Uy: 4, Uz: 8, Fy: 8, Fp: 8, Fu: 4, Fx: 4}
	k := NewKey("umd-cluster", 256, 256, 256, 16, pfft.NEW)
	if err := Append(path, Entry{Key: k, Params: prm, TunedNs: 123456, Evals: 50}); err != nil {
		t.Fatal(err)
	}

	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Lookup(k)
	if !ok {
		t.Fatalf("lookup %v: not found after round trip", k)
	}
	if got != prm {
		t.Errorf("round-trip params = %v, want %v", got, prm)
	}
	if _, ok := s.Lookup(NewKey("umd-cluster", 256, 256, 256, 32, pfft.NEW)); ok {
		t.Error("lookup of untuned ranks unexpectedly hit")
	}
	if _, ok := s.Lookup(NewKey("umd-cluster", 256, 256, 256, 16, pfft.TH)); ok {
		t.Error("lookup of untuned variant unexpectedly hit")
	}
}

func TestAppendAccumulatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "params.json")

	k1 := NewKey("laptop", 64, 64, 64, 4, pfft.NEW)
	k2 := NewKey("hopper", 512, 512, 512, 64, pfft.NEW)
	if err := Append(path, Entry{Key: k1, Params: pfft.Params{T: 4, W: 1, Px: 1, Pz: 1, Uy: 1, Uz: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, Entry{Key: k2, Params: pfft.Params{T: 32, W: 3, Px: 2, Pz: 2, Uy: 2, Uz: 2}}); err != nil {
		t.Fatal(err)
	}
	// Re-tuning the same key replaces, not duplicates.
	better := pfft.Params{T: 8, W: 2, Px: 1, Pz: 2, Uy: 1, Uz: 2, Fy: 2, Fp: 2, Fu: 2, Fx: 2}
	if err := Append(path, Entry{Key: k1, Params: better, TunedNs: 99}); err != nil {
		t.Fatal(err)
	}

	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("store has %d entries, want 2: %+v", s.Len(), s.Entries())
	}
	if got, _ := s.Lookup(k1); got != better {
		t.Errorf("re-tuned entry = %v, want %v", got, better)
	}
	for _, e := range s.Entries() {
		if e.SavedAt == "" {
			t.Errorf("entry %v has no SavedAt stamp", e.Key)
		}
	}
}

func TestLoadMissingAndMalformed(t *testing.T) {
	dir := t.TempDir()

	s, err := Load(filepath.Join(dir, "absent.json"))
	if err != nil {
		t.Fatalf("missing file should load as empty store, got %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("missing file yielded %d entries", s.Len())
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed store loaded without error")
	}
}

func TestNilStoreLookups(t *testing.T) {
	var s *Store
	if _, ok := s.Lookup(Key{}); ok {
		t.Error("nil store lookup hit")
	}
	if s.Len() != 0 || s.Entries() != nil {
		t.Error("nil store should be empty")
	}
}
