// Package tuned persists auto-tuned parameter sets so the tuning cost is
// amortized across processes, not just across executions within one
// process (§6 of the paper: tuning pays off because a configuration is
// reused many times). offt-tune appends results to a store file; plan
// construction (offt.WithTunedStore, the offt-serve warm start) consults
// it before falling back to the §4.4 default point.
//
// The store is a single JSON document keyed by (machine, grid, ranks,
// variant). It is small — one entry per tuned setting — so Load reads the
// whole file and Append rewrites it; no incremental format is needed.
package tuned

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"offt/internal/pfft"
)

// Key identifies one tuned setting. Machine is a machine-model name
// ("laptop", "umd-cluster", "hopper") or any operator-chosen host label;
// Variant is the pfft display name ("NEW", "TH", ...).
type Key struct {
	Machine string `json:"machine"`
	Nx      int    `json:"nx"`
	Ny      int    `json:"ny"`
	Nz      int    `json:"nz"`
	Ranks   int    `json:"ranks"`
	Variant string `json:"variant"`
	// Decomp distinguishes pencil-decomposition entries ("pencil"). The
	// empty string is the slab decomposition, so every pre-pencil store
	// file keeps resolving to the entries it always did.
	Decomp string `json:"decomp,omitempty"`
	// Comm distinguishes entries tuned with a pinned all-to-all schedule
	// ("bruck", "hier", "windowed"). The empty string covers both the
	// unpinned search (which may still record a non-pairwise winner in
	// Params.Comm) and explicit pairwise, so pre-schedule store files keep
	// resolving to the entries they always did.
	Comm string `json:"comm,omitempty"`
}

// NewKey builds a slab-decomposition Key with the variant's canonical
// display name.
func NewKey(machine string, nx, ny, nz, ranks int, v pfft.Variant) Key {
	return Key{Machine: machine, Nx: nx, Ny: ny, Nz: nz, Ranks: ranks, Variant: v.String()}
}

// NewKeyDecomp is NewKey with an explicit decomposition name; "slab" and
// "" both canonicalize to the slab key.
func NewKeyDecomp(machine string, nx, ny, nz, ranks int, v pfft.Variant, decomp string) Key {
	k := NewKey(machine, nx, ny, nz, ranks, v)
	if decomp != "" && decomp != "slab" {
		k.Decomp = decomp
	}
	return k
}

// WithComm returns the key qualified by a pinned exchange schedule;
// "" and "pairwise" both canonicalize to the unqualified key.
func (k Key) WithComm(comm string) Key {
	if comm == "pairwise" {
		comm = ""
	}
	k.Comm = comm
	return k
}

func (k Key) String() string {
	s := fmt.Sprintf("%s %dx%dx%d p=%d %s", k.Machine, k.Nx, k.Ny, k.Nz, k.Ranks, k.Variant)
	if k.Decomp != "" {
		s += " " + k.Decomp
	}
	if k.Comm != "" {
		s += " comm=" + k.Comm
	}
	return s
}

// Entry is one tuned result: the parameters plus enough provenance to
// judge staleness (when it was tuned, at what cost, how good it was).
type Entry struct {
	Key
	Params pfft.Params `json:"params"`
	// TunedNs is the achieved objective value (tuned-portion time, ns).
	TunedNs int64 `json:"tuned_ns,omitempty"`
	// Evals is the search's evaluation count.
	Evals int `json:"evals,omitempty"`
	// SavedAt is an RFC 3339 timestamp of when the entry was recorded.
	SavedAt string `json:"saved_at,omitempty"`
}

// Store is an in-memory view of a tuned-params file. Safe for concurrent
// use; a nil *Store is a valid empty store for lookups.
type Store struct {
	mu      sync.RWMutex
	entries map[Key]Entry
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{entries: map[Key]Entry{}} }

// storeFile is the on-disk JSON shape.
type storeFile struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// Load reads a store file. A missing file yields an empty store (warm
// start degrades to the default point); a malformed file is an error.
func Load(path string) (*Store, error) {
	s := NewStore()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tuned: read %s: %w", path, err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tuned: parse %s: %w", path, err)
	}
	for _, e := range f.Entries {
		s.entries[e.Key] = e
	}
	return s, nil
}

// Lookup returns the tuned parameters for a key, if present.
func (s *Store) Lookup(k Key) (pfft.Params, bool) {
	if s == nil {
		return pfft.Params{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[k]
	return e.Params, ok
}

// Put inserts or replaces the entry for its key, stamping SavedAt when
// the caller left it empty.
func (s *Store) Put(e Entry) {
	if e.SavedAt == "" {
		e.SavedAt = time.Now().UTC().Format(time.RFC3339)
	}
	s.mu.Lock()
	s.entries[e.Key] = e
	s.mu.Unlock()
}

// Len reports the number of entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Entries returns all entries in deterministic (key-sorted) order.
func (s *Store) Entries() []Entry {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Save writes the store to path atomically (temp file + rename), so a
// concurrent reader never sees a torn document.
func (s *Store) Save(path string) error {
	f := storeFile{Version: 1, Entries: s.Entries()}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("tuned: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("tuned: rename %s: %w", path, err)
	}
	return nil
}

// Append loads path (or starts empty), upserts e, and saves — the
// read-modify-write offt-tune uses to accumulate results across runs.
func Append(path string, e Entry) error {
	s, err := Load(path)
	if err != nil {
		return err
	}
	s.Put(e)
	return s.Save(path)
}
