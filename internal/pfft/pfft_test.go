package pfft

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/mem"
)

func randCube(nx, ny, nz int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, nx*ny*nz)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

func maxErr(a, b []complex128) float64 {
	var norm float64 = 1
	for i := range a {
		if m := cmplx.Abs(a[i]); m > norm {
			norm = m
		}
	}
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d/norm > worst {
			worst = d / norm
		}
	}
	return worst
}

// runDistributed executes a distributed forward FFT of `full` over p ranks
// with the given variant/params and returns the reassembled full result in
// x-y-z layout.
func runDistributed(t *testing.T, full []complex128, nx, ny, nz, p int, v Variant, prm Params, th THParams) []complex128 {
	t.Helper()
	w := mem.NewWorld(p)
	outs := make([][]complex128, p)
	var mu sync.Mutex
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err)
		}
		slab := layout.ScatterX(full, g)
		var out []complex128
		switch v {
		case TH:
			out, _, err = ForwardTH3D(c, g, slab, th, fft.Estimate)
		case TH0:
			e, err2 := NewRealEngine(g, c, slab, fft.Forward, fft.Estimate)
			if err2 != nil {
				panic(err2)
			}
			if _, err2 = Run(e, TH0, Params{T: th.T, W: th.W}); err2 != nil {
				panic(err2)
			}
			out = e.Output()
		default:
			out, _, err = Forward3D(c, g, slab, v, prm, fft.Estimate)
		}
		if err != nil {
			panic(err)
		}
		mu.Lock()
		outs[c.Rank()] = out
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	g0, _ := layout.NewGrid(nx, ny, nz, p, 0)
	return layout.GatherY(outs, nx, ny, nz, p, OutputFast(v, g0))
}

func serialReference(full []complex128, nx, ny, nz int) []complex128 {
	ref := append([]complex128(nil), full...)
	fft.NewPlan3D(nx, ny, nz, fft.Forward).Transform(ref)
	return ref
}

const tol = 1e-9

func TestAllVariantsMatchSerial(t *testing.T) {
	type cse struct {
		nx, ny, nz, p int
	}
	cases := []cse{
		{8, 8, 8, 2},
		{16, 16, 16, 4},
		{12, 8, 10, 2},  // Nx != Ny: fast path disabled
		{9, 10, 8, 3},   // non-divisible by p
		{16, 16, 6, 4},  // short z
		{8, 8, 8, 1},    // single rank
		{10, 10, 10, 5}, // odd lengths with fast path
	}
	for _, c := range cases {
		full := randCube(c.nx, c.ny, c.nz, 7)
		want := serialReference(full, c.nx, c.ny, c.nz)
		g0, err := layout.NewGrid(c.nx, c.ny, c.nz, c.p, 0)
		if err != nil {
			t.Fatal(err)
		}
		prm := DefaultParams(g0)
		th := DefaultTHParams(g0)
		for _, v := range Variants() {
			name := fmt.Sprintf("%dx%dx%d-p%d-%v", c.nx, c.ny, c.nz, c.p, v)
			t.Run(name, func(t *testing.T) {
				got := runDistributed(t, full, c.nx, c.ny, c.nz, c.p, v, prm, th)
				if e := maxErr(got, want); e > tol {
					t.Errorf("max relative error %g", e)
				}
			})
		}
	}
}

func TestQuickRandomParamsMatchSerial(t *testing.T) {
	nx, ny, nz, p := 12, 12, 10, 3
	full := randCube(nx, ny, nz, 11)
	want := serialReference(full, nx, ny, nz)
	g0, _ := layout.NewGrid(nx, ny, nz, p, 0)

	f := func(tv, wv, pxv, pzv, uyv, uzv, fyv, fpv, fuv, fxv uint8) bool {
		prm := Params{
			T:  1 + int(tv)%nz,
			Px: 1 + int(pxv)%g0.XC(),
			Uy: 1 + int(uyv)%g0.YC(),
			Fy: int(fyv) % 6,
			Fp: int(fpv) % 6,
			Fu: int(fuv) % 6,
			Fx: int(fxv) % 6,
		}
		prm.Pz = 1 + int(pzv)%prm.T
		prm.Uz = 1 + int(uzv)%prm.T
		numTiles := (nz + prm.T - 1) / prm.T
		prm.W = 1 + int(wv)%min2(4, numTiles)
		if err := prm.Validate(g0); err != nil {
			t.Fatalf("generated invalid params %v: %v", prm, err)
		}
		got := runDistributed(t, full, nx, ny, nz, p, NEW, prm, THParams{})
		return maxErr(got, want) <= tol
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFastPathUsedOnlyWhenSquare(t *testing.T) {
	gSquare, _ := layout.NewGrid(8, 8, 4, 2, 0)
	gRect, _ := layout.NewGrid(8, 10, 4, 2, 0)
	if !OutputFast(NEW, gSquare) {
		t.Error("fast path should apply for Nx==Ny under NEW")
	}
	if OutputFast(NEW, gRect) {
		t.Error("fast path must not apply when Nx!=Ny")
	}
	if OutputFast(TH, gSquare) || OutputFast(Baseline, gSquare) {
		t.Error("fast path only applies to NEW/NEW-0")
	}
}

func TestParamsValidate(t *testing.T) {
	g, _ := layout.NewGrid(16, 16, 8, 4, 0)
	good := DefaultParams(g)
	if err := good.Validate(g); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{T: 0, W: 1, Px: 1, Pz: 1, Uy: 1, Uz: 1},
		{T: 9, W: 1, Px: 1, Pz: 1, Uy: 1, Uz: 1}, // T > Nz
		{T: 4, W: 0, Px: 1, Pz: 1, Uy: 1, Uz: 1}, // W < 1
		{T: 4, W: 3, Px: 1, Pz: 1, Uy: 1, Uz: 1}, // W > ⌈Nz/T⌉ = 2
		{T: 4, W: 1, Px: 5, Pz: 1, Uy: 1, Uz: 1}, // Px > xc
		{T: 4, W: 1, Px: 1, Pz: 5, Uy: 1, Uz: 1}, // Pz > T
		{T: 4, W: 1, Px: 1, Pz: 1, Uy: 5, Uz: 1}, // Uy > yc
		{T: 4, W: 1, Px: 1, Pz: 1, Uy: 1, Uz: 5}, // Uz > T
		{T: 4, W: 1, Px: 1, Pz: 1, Uy: 1, Uz: 1, Fy: -1},
	}
	for i, p := range bad {
		if err := p.Validate(g); err == nil {
			t.Errorf("case %d (%v): expected validation error", i, p)
		}
	}
}

func TestDefaultParamsAlwaysValid(t *testing.T) {
	f := func(a, b, c, pp uint8) bool {
		dims := []int{4, 6, 8, 12, 16, 24, 32, 100}
		nx := dims[int(a)%len(dims)]
		ny := dims[int(b)%len(dims)]
		nz := dims[int(c)%len(dims)]
		p := 1 + int(pp)%4
		if nx < p || ny < p {
			return true
		}
		g, err := layout.NewGrid(nx, ny, nz, p, 0)
		if err != nil {
			return false
		}
		return DefaultParams(g).Validate(g) == nil && DefaultTHParams(g).Validate(g) == nil
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBreakdownRecorded(t *testing.T) {
	nx := 16
	p := 2
	full := randCube(nx, nx, nx, 3)
	w := mem.NewWorld(p)
	bs := make([]Breakdown, p)
	err := w.Run(func(c *mem.Comm) {
		g, _ := layout.NewGrid(nx, nx, nx, p, c.Rank())
		slab := layout.ScatterX(full, g)
		_, b, err := Forward3D(c, g, slab, NEW, DefaultParams(g), fft.Estimate)
		if err != nil {
			panic(err)
		}
		bs[c.Rank()] = b
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range bs {
		if b.Total <= 0 {
			t.Errorf("rank %d: zero total", r)
		}
		if b.FFTz <= 0 || b.FFTy <= 0 || b.FFTx <= 0 || b.Pack <= 0 || b.Unpack <= 0 || b.Transpose <= 0 {
			t.Errorf("rank %d: missing step times: %v", r, b)
		}
		if b.Sum() > b.Total*105/100 {
			t.Errorf("rank %d: step sum %d exceeds total %d", r, b.Sum(), b.Total)
		}
		if b.Overlappable() != b.FFTy+b.Pack+b.Unpack+b.FFTx {
			t.Errorf("rank %d: Overlappable inconsistent", r)
		}
	}
}

func TestInvalidParamsRejectedByRun(t *testing.T) {
	p := 2
	nx := 8
	w := mem.NewWorld(p)
	got := make([]error, p)
	err := w.Run(func(c *mem.Comm) {
		g, _ := layout.NewGrid(nx, nx, nx, p, c.Rank())
		slab := make([]complex128, g.InSize())
		e, err := NewRealEngine(g, c, slab, fft.Forward, fft.Estimate)
		if err != nil {
			panic(err)
		}
		_, got[c.Rank()] = Run(e, NEW, Params{T: 0})
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range got {
		if e == nil {
			t.Errorf("rank %d: expected validation error", r)
		}
	}
}

func TestRealEngineValidation(t *testing.T) {
	p := 1
	w := mem.NewWorld(p)
	err := w.Run(func(c *mem.Comm) {
		g, _ := layout.NewGrid(8, 8, 8, 1, 0)
		if _, err := NewRealEngine(g, c, make([]complex128, 7), fft.Forward, fft.Estimate); err == nil {
			t.Error("expected slab-length error")
		}
		g2, _ := layout.NewGrid(8, 8, 8, 2, 1) // mismatched rank
		if _, err := NewRealEngine(g2, c, make([]complex128, g2.InSize()), fft.Forward, fft.Estimate); err == nil {
			t.Error("expected comm/grid mismatch error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{Baseline: "FFTW", NEW: "NEW", NEW0: "NEW-0", TH: "TH", TH0: "TH-0"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), s)
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still render")
	}
}

func TestTestsDue(t *testing.T) {
	// Spread 5 tests over 3 units: totals must be exact and near-even.
	total := 0
	for u := 0; u < 3; u++ {
		n := testsDue(5, u, 3)
		if n < 1 || n > 2 {
			t.Errorf("unit %d got %d tests", u, n)
		}
		total += n
	}
	if total != 5 {
		t.Errorf("total tests %d, want 5", total)
	}
	if testsDue(3, 0, 0) != 0 {
		t.Error("zero units must yield zero tests")
	}
}
