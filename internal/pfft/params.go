// Package pfft implements the paper's primary contribution: a parallel 3-D
// FFT with 1-D domain decomposition whose FFTy, Pack, Unpack and FFTx steps
// all overlap with a non-blocking all-to-all, progressed manually through
// MPI_Test calls, with loop-tiled Pack/Unpack for cache reuse and ten
// tunable parameters (Table 1 of the paper).
//
// The algorithm body (Algorithms 1–3) is written once against the Engine
// interface: the real engine (this package) performs the arithmetic on
// complex128 slabs over any mpi.Comm, and the cost-model engine (package
// model) charges calibrated virtual time over the simulated fabric. Five
// variants are provided: the paper's NEW, its non-overlapped ablation
// NEW-0, the Hoefler-style comparison TH and its ablation TH-0, and the
// FFTW-style blocking Baseline.
package pfft

import (
	"fmt"
	"strings"

	"offt/internal/layout"
	"offt/internal/mpi"
)

// Params are the ten tunable parameters of Table 1, plus the (Py×Pz)
// process-grid shape of the 2-D pencil decomposition.
type Params struct {
	T  int // elements on z per communication tile (tile size)
	W  int // max tiles with concurrent all-to-all (window size)
	Px int // sub-tile x extent during Pack
	Pz int // sub-tile z extent during Pack
	Uy int // sub-tile y extent during Unpack
	Uz int // sub-tile z extent during Unpack
	Fy int // MPI_Test calls during FFTy per tile
	Fp int // MPI_Test calls during Pack per tile
	Fu int // MPI_Test calls during Unpack per tile
	Fx int // MPI_Test calls during FFTx per tile
	// Pr is the process-grid row count of the 2-D pencil decomposition
	// (the Py of a Py×Pz grid; columns are ranks/Pr). 0 means auto — the
	// most nearly square feasible factorization — and is the only value
	// the slab decomposition uses, so zero keeps every slab plan
	// byte-for-byte identical to the pre-pencil behavior.
	Pr int
	// Comm is the all-to-all exchange schedule (the 11th tuned parameter).
	// The zero value is the round-robin pairwise schedule, the historical
	// behavior, so zeroed parameter sets are unchanged.
	Comm mpi.CommAlg
}

// String renders the parameters in Table-3 column order; the pencil
// process-grid row count is appended only when explicitly set, so slab
// output is unchanged.
func (p Params) String() string {
	s := fmt.Sprintf("T=%d W=%d Px=%d Pz=%d Uy=%d Uz=%d Fy=%d Fp=%d Fu=%d Fx=%d",
		p.T, p.W, p.Px, p.Pz, p.Uy, p.Uz, p.Fy, p.Fp, p.Fu, p.Fx)
	if p.Pr > 0 {
		s += fmt.Sprintf(" Pr=%d", p.Pr)
	}
	if p.Comm != mpi.CommPairwise {
		s += fmt.Sprintf(" Comm=%s", p.Comm)
	}
	return s
}

// Validate reports whether the parameters are feasible for the given
// geometry. The constraints are the ones the auto-tuner penalizes (§4.4):
// ranges depend on other parameters (e.g. Pz ≤ T).
func (p Params) Validate(g layout.Grid) error {
	switch {
	case p.T < 1 || p.T > g.Nz:
		return fmt.Errorf("pfft: T=%d out of range [1,%d]", p.T, g.Nz)
	case p.W < 1 || p.W > (g.Nz+p.T-1)/p.T:
		return fmt.Errorf("pfft: W=%d out of range [1,%d] (tile count ⌈Nz/T⌉)", p.W, (g.Nz+p.T-1)/p.T)
	case p.Px < 1 || p.Px > g.XC():
		return fmt.Errorf("pfft: Px=%d out of range [1,%d]", p.Px, g.XC())
	case p.Pz < 1 || p.Pz > p.T:
		return fmt.Errorf("pfft: Pz=%d out of range [1,T=%d]", p.Pz, p.T)
	case p.Uy < 1 || p.Uy > g.YC():
		return fmt.Errorf("pfft: Uy=%d out of range [1,%d]", p.Uy, g.YC())
	case p.Uz < 1 || p.Uz > p.T:
		return fmt.Errorf("pfft: Uz=%d out of range [1,T=%d]", p.Uz, p.T)
	case p.Fy < 0 || p.Fp < 0 || p.Fu < 0 || p.Fx < 0:
		return fmt.Errorf("pfft: negative test frequency in %v", p)
	case p.Pr < 0:
		return fmt.Errorf("pfft: Pr=%d must be >= 0 (0 = auto process grid)", p.Pr)
	case p.Pr > 0 && g.P%p.Pr != 0:
		return fmt.Errorf("pfft: Pr=%d does not divide the rank count %d", p.Pr, g.P)
	case !p.Comm.Valid():
		return fmt.Errorf("pfft: Comm=%d is not a known exchange schedule", int(p.Comm))
	}
	return nil
}

// DefaultParams is the §4.4 default point used as the center of the
// auto-tuner's initial simplex: T = Nz/16 for some overlap, W = 2 for some
// communication parallelism, sub-tiles sized to half a 256 KB cache (8K
// complex elements), and p/2 Test calls per step. Pr stays 0 (auto): the
// pencil path resolves it to the most nearly square feasible process grid
// at plan-build time, and the slab path ignores it.
func DefaultParams(g layout.Grid) Params {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	t := clamp(g.Nz/16, 1, g.Nz)
	w := clamp(2, 1, (g.Nz+t-1)/t) // window can't exceed the tile count
	px := clamp(8192/g.Ny, 1, g.XC())
	pz := clamp(8192/g.Ny/px, 1, t)
	uy := clamp(8192/g.Nx, 1, g.YC())
	uz := clamp(8192/g.Nx/uy, 1, t)
	f := g.P / 2
	if f < 1 {
		f = 1
	}
	return Params{T: t, W: w, Px: px, Pz: pz, Uy: uy, Uz: uz, Fy: f, Fp: f, Fu: f, Fx: f}
}

// THParams are the three parameters of the tuned Hoefler-style comparison
// model TH (§5.1): tile size, window size, and one Test frequency used
// during FFTy and Pack.
type THParams struct {
	T, W, F int
}

func (p THParams) String() string {
	return fmt.Sprintf("T=%d W=%d F=%d", p.T, p.W, p.F)
}

// expand converts TH's three parameters into the full parameter set with
// TH's restrictions: whole-tile pack/unpack (no loop tiling) and no Test
// calls during Unpack/FFTx (no overlap there).
func (p THParams) expand(g layout.Grid) Params {
	return Params{
		T: p.T, W: p.W,
		Px: g.XC(), Pz: p.T, Uy: g.YC(), Uz: p.T,
		Fy: p.F, Fp: p.F, Fu: 0, Fx: 0,
	}
}

// Validate checks TH's parameters.
func (p THParams) Validate(g layout.Grid) error {
	if p.F < 0 {
		return fmt.Errorf("pfft: negative F in %v", p)
	}
	return p.expand(g).Validate(g)
}

// DefaultTHParams mirrors DefaultParams for the TH model.
func DefaultTHParams(g layout.Grid) THParams {
	d := DefaultParams(g)
	return THParams{T: d.T, W: d.W, F: d.Fy}
}

// Variant selects the algorithm.
type Variant int

const (
	// Baseline is the FFTW-style method: whole-slab pack, one blocking
	// all-to-all, no overlap, no loop tiling.
	Baseline Variant = iota
	// NEW is the paper's design (Algorithms 1–3).
	NEW
	// NEW0 is NEW with overlap disabled (window and frequencies zero,
	// blocking per-tile all-to-all); the ablation in Fig. 8.
	NEW0
	// TH is the tuned Hoefler-style comparison: overlaps only FFTy and
	// Pack with the all-to-all, whole-tile pack/unpack, plain transpose.
	TH
	// TH0 is TH with overlap disabled.
	TH0
)

var variantNames = map[Variant]string{
	Baseline: "FFTW", NEW: "NEW", NEW0: "NEW-0", TH: "TH", TH0: "TH-0",
}

func (v Variant) String() string {
	if s, ok := variantNames[v]; ok {
		return s
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all algorithm variants in display order.
func Variants() []Variant { return []Variant{Baseline, NEW, NEW0, TH, TH0} }

// ParseVariant resolves a variant from its display name ("NEW", "TH-0",
// "FFTW", ...) or the lowercase aliases used on command lines and wire
// requests ("baseline", "new0", "th0"). Matching is case-insensitive.
func ParseVariant(name string) (Variant, error) {
	canon := strings.ToLower(strings.ReplaceAll(name, "-", ""))
	switch canon {
	case "fftw", "baseline":
		return Baseline, nil
	case "new":
		return NEW, nil
	case "new0":
		return NEW0, nil
	case "th":
		return TH, nil
	case "th0":
		return TH0, nil
	}
	return 0, fmt.Errorf("pfft: unknown variant %q (want baseline, new, new0, th, or th0)", name)
}
