package pfft

import (
	"fmt"
	"strings"

	"offt/internal/mpi"
	"offt/internal/telemetry"
)

// BreakdownObserver feeds per-step Breakdown times into a telemetry
// registry: one latency histogram per Fig. 8 step plus the run total, a
// derived overlap-efficiency gauge (Overlappable hidden behind
// CommVisible, §5.2.1), and a downgrade counter. Handles are resolved once
// at construction so Observe stays off the registry lock; a nil observer
// (from a nil registry) is a no-op.
type BreakdownObserver struct {
	steps      []*telemetry.Histogram
	total      *telemetry.Histogram
	overlap    *telemetry.Gauge
	downgrades *telemetry.Counter
	// exchange holds one histogram per all-to-all schedule (indexed by
	// mpi.CommAlg), so operators can compare Ialltoall+Test+Wait time
	// across schedules on one dashboard.
	exchange []*telemetry.Histogram
}

// NewBreakdownObserver resolves handles under "<prefix>.step.<name>_ns",
// "<prefix>.total_ns", "<prefix>.overlap_efficiency" and
// "<prefix>.downgrades". Returns nil (the no-op observer) when r is nil.
func NewBreakdownObserver(r *telemetry.Registry, prefix string) *BreakdownObserver {
	if r == nil {
		return nil
	}
	o := &BreakdownObserver{
		total:      r.Histogram(prefix + ".total_ns"),
		overlap:    r.Gauge(prefix + ".overlap_efficiency"),
		downgrades: r.Counter(prefix + ".downgrades"),
	}
	for _, name := range StepNames() {
		o.steps = append(o.steps, r.Histogram(prefix+".step."+strings.ToLower(name)+"_ns"))
	}
	for _, alg := range mpi.CommAlgs() {
		o.exchange = append(o.exchange, r.Histogram(prefix+".exchange."+alg.String()+"_ns"))
	}
	return o
}

// Observe records one breakdown (typically one rank's run, or a per-run
// average).
func (o *BreakdownObserver) Observe(b Breakdown) {
	if o == nil {
		return
	}
	for i, v := range b.Steps() {
		o.steps[i].Observe(v)
	}
	o.total.Observe(b.Total)
	o.overlap.Set(b.OverlapEfficiency())
	if b.Downgrades > 0 {
		o.downgrades.Add(b.Downgrades)
	}
}

// ObserveComm records one run's exchange time (post + progress + wait)
// under the schedule that routed it, feeding the per-schedule comparison
// histograms. No-op on a nil observer or an out-of-range schedule.
func (o *BreakdownObserver) ObserveComm(alg mpi.CommAlg, b Breakdown) {
	if o == nil || int(alg) >= len(o.exchange) {
		return
	}
	o.exchange[alg].Observe(b.Ialltoall + b.Test + b.Wait)
}

// TraceTimeline converts per-rank step traces (index = rank) into a
// telemetry.Timeline: one track per rank, an instant event per Downgrade,
// and a flow arrow from each tile's all-to-all post to the Wait that
// retires it (same rank; tile indices were attributed by the recorder).
func TraceTimeline(traces [][]StepEvent) *telemetry.Timeline {
	tl := telemetry.NewTimeline()
	for rank, evs := range traces {
		tl.TrackNames[rank] = fmt.Sprintf("rank %d", rank)
		posts := map[int]StepEvent{}
		waits := map[int]StepEvent{}
		for _, e := range evs {
			tl.AddSpan(telemetry.Span{
				Track: rank, Name: e.Name, Start: e.Start, End: e.End,
				Tile: e.Tile, Instant: e.Start == e.End,
			})
			if e.Tile < 0 {
				continue
			}
			switch e.Name {
			case "Ialltoall":
				posts[e.Tile] = e
			case "Wait":
				waits[e.Tile] = e
			}
		}
		for tile, post := range posts {
			wait, ok := waits[tile]
			if !ok || wait.End < post.End {
				continue // downgraded runs leave posted tiles with no wait
			}
			tl.AddFlow(telemetry.Flow{
				ID:        int64(rank)<<20 | int64(tile),
				Name:      fmt.Sprintf("a2a tile %d", tile),
				FromTrack: rank, FromTs: post.End,
				ToTrack: rank, ToTs: wait.End,
			})
		}
	}
	return tl
}
