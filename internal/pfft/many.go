package pfft

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
)

// RunMany executes m independent 3-D FFTs with inter-array overlap — the
// Kandalla et al. style the paper compares against (§6) and proposes to
// combine with its intra-array method (§7): while one array's all-to-all
// is in flight, the CPU computes on other arrays. Each array has its own
// Engine (its own slab and buffers) over the same communicator; `window`
// bounds the number of arrays with communication in flight.
//
// Each array is processed as a single whole-slab tile (no intra-array
// tiling): FFTz → Transpose → FFTy → Pack → non-blocking all-to-all, then
// later Wait → Unpack → FFTx. A Test call between per-array phases keeps
// rendezvous traffic progressing without hardware offload.
//
// This style only helps when many independent arrays exist; scientific
// simulations doing successive FFTs on a single array (the paper's target
// workload) cannot use it — which is the paper's criticism of the
// inter-array approach.
func RunMany(engines []Engine, window int) ([]Breakdown, error) {
	m := len(engines)
	if m == 0 {
		return nil, nil
	}
	if window < 1 {
		return nil, fmt.Errorf("pfft: RunMany window %d < 1", window)
	}
	c := engines[0].Comm()
	for _, e := range engines {
		if e.Comm() != c {
			return nil, fmt.Errorf("pfft: RunMany engines must share one communicator")
		}
	}
	bs := make([]Breakdown, m)
	reqs := make([]mpi.Request, m)
	starts := make([]int64, m)

	pending := func(hi int) []mpi.Request {
		lo := hi - window
		if lo < 0 {
			lo = 0
		}
		var out []mpi.Request
		for i := lo; i < hi; i++ {
			if reqs[i] != nil {
				out = append(out, reqs[i])
			}
		}
		return out
	}

	for i := 0; i < m+window; i++ {
		if i < m {
			e := engines[i]
			g := e.Grid()
			b := &bs[i]
			starts[i] = c.Now()

			t := c.Now()
			e.FFTz()
			b.FFTz = c.Now() - t

			t = c.Now()
			e.Transpose(false, true)
			b.Transpose = c.Now() - t

			doTests(c, pending(i), 1, b)

			t = c.Now()
			e.FFTySub(false, 0, 0, g.Nz, 0, g.XC())
			b.FFTy = c.Now() - t

			doTests(c, pending(i), 1, b)

			t = c.Now()
			e.PackSub(0, false, 0, g.Nz, 0, g.Nz, 0, g.XC())
			b.Pack = c.Now() - t

			t = c.Now()
			reqs[i] = e.PostTile(0, g.Nz)
			b.Ialltoall = c.Now() - t
		}
		if i >= window && i-window < m {
			j := i - window
			e := engines[j]
			g := e.Grid()
			b := &bs[j]

			t := c.Now()
			c.Wait(reqs[j])
			b.Wait += c.Now() - t

			t = c.Now()
			e.UnpackSub(0, false, 0, g.Nz, 0, g.Nz, 0, g.YC())
			b.Unpack = c.Now() - t

			doTests(c, pending(min2(i+1, m)), 1, b)

			t = c.Now()
			e.FFTxSub(false, 0, 0, g.Nz, 0, g.YC())
			b.FFTx = c.Now() - t

			b.Total = c.Now() - starts[j]
		}
	}
	return bs, nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ForwardMany3D runs m independent forward transforms with inter-array
// overlap on the real engine: slabs[i] is array i's x-slab for this rank
// (consumed). It returns the per-array output y-slabs (z-y-x layout) and
// breakdowns. All arrays share the geometry g.
func ForwardMany3D(c mpi.Comm, g layout.Grid, slabs [][]complex128, window int, flag fft.Flag) ([][]complex128, []Breakdown, error) {
	engines := make([]Engine, len(slabs))
	reals := make([]*RealEngine, len(slabs))
	// Batch engines draw their work slab and communication slots from the
	// package arena: after the batch, Close below recycles them, so the
	// next ForwardMany3D call (the many-transform steady state) reuses the
	// same slabs instead of re-allocating per array.
	closeAll := func() {
		for _, e := range reals {
			if e != nil {
				e.Close()
			}
		}
	}
	for i, slab := range slabs {
		e, err := NewRealEngine(g, c, slab, fft.Forward, flag, WithPooledBuffers())
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("pfft: array %d: %w", i, err)
		}
		reals[i] = e
		engines[i] = e
	}
	bs, err := RunMany(engines, window)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	outs := make([][]complex128, len(slabs))
	for i, e := range reals {
		outs[i] = e.Output() // never pooled: survives Close
	}
	closeAll()
	return outs, bs, nil
}
