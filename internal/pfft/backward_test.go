package pfft

import (
	"fmt"
	"sync"
	"testing"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/mem"
)

// roundTrip pushes a full array through the distributed forward transform
// of variant v, then the distributed backward transform of the same
// variant, normalizes, and returns the reassembled array.
func roundTrip(t *testing.T, full []complex128, nx, ny, nz, p int, v Variant, prm Params) []complex128 {
	t.Helper()
	w := mem.NewWorld(p)
	ins := make([][]complex128, p)
	var mu sync.Mutex
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err)
		}
		slab := layout.ScatterX(full, g)
		out, _, err := Forward3D(c, g, slab, v, prm, fft.Estimate)
		if err != nil {
			panic(err)
		}
		back, _, err := Backward3D(c, g, out, v, prm, fft.Estimate)
		if err != nil {
			panic(err)
		}
		fft.ScaleBy(back, 1/float64(nx*ny*nz))
		mu.Lock()
		ins[c.Rank()] = back
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	return layout.GatherX(ins, nx, ny, nz, p)
}

func TestBackwardRoundTrip(t *testing.T) {
	cases := []struct {
		nx, ny, nz, p int
		v             Variant
	}{
		{8, 8, 8, 2, NEW},  // fast path
		{8, 8, 8, 2, NEW0}, // fast path, blocking
		{8, 8, 8, 2, Baseline},
		{12, 8, 10, 2, NEW},  // standard path (Nx != Ny)
		{9, 10, 8, 3, NEW},   // non-divisible
		{16, 16, 12, 4, NEW}, // multiple tiles and windows
		{8, 8, 8, 1, NEW},    // single rank
	}
	for _, c := range cases {
		name := fmt.Sprintf("%dx%dx%d-p%d-%v", c.nx, c.ny, c.nz, c.p, c.v)
		t.Run(name, func(t *testing.T) {
			full := randCube(c.nx, c.ny, c.nz, 21)
			g0, err := layout.NewGrid(c.nx, c.ny, c.nz, c.p, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := roundTrip(t, full, c.nx, c.ny, c.nz, c.p, c.v, DefaultParams(g0))
			if e := maxErr(got, full); e > tol {
				t.Errorf("roundtrip error %g", e)
			}
		})
	}
}

func TestBackwardMatchesSerialInverse(t *testing.T) {
	// Backward of arbitrary frequency data must equal the serial inverse,
	// not just invert our own forward.
	nx, ny, nz, p := 12, 12, 8, 3
	freq := randCube(nx, ny, nz, 33)
	want := append([]complex128(nil), freq...)
	fft.NewPlan3D(nx, ny, nz, fft.Backward).Transform(want)

	g0, _ := layout.NewGrid(nx, ny, nz, p, 0)
	prm := DefaultParams(g0)
	w := mem.NewWorld(p)
	ins := make([][]complex128, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err)
		}
		slab := layout.ScatterY(freq, g, OutputFast(NEW, g))
		back, _, err := Backward3D(c, g, slab, NEW, prm, fft.Estimate)
		if err != nil {
			panic(err)
		}
		ins[c.Rank()] = back
	})
	if err != nil {
		t.Fatal(err)
	}
	got := layout.GatherX(ins, nx, ny, nz, p)
	if e := maxErr(got, want); e > tol {
		t.Errorf("backward vs serial inverse: error %g", e)
	}
}

func TestBackwardRejectsTH(t *testing.T) {
	p := 1
	w := mem.NewWorld(p)
	err := w.Run(func(c *mem.Comm) {
		g, _ := layout.NewGrid(8, 8, 8, 1, 0)
		slab := make([]complex128, g.OutSize())
		if _, _, err := Backward3D(c, g, slab, TH, DefaultParams(g), fft.Estimate); err == nil {
			t.Error("expected error for TH backward")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBackwardValidatesInput(t *testing.T) {
	p := 1
	w := mem.NewWorld(p)
	err := w.Run(func(c *mem.Comm) {
		g, _ := layout.NewGrid(8, 8, 8, 1, 0)
		if _, _, err := Backward3D(c, g, make([]complex128, 3), NEW, DefaultParams(g), fft.Estimate); err == nil {
			t.Error("expected slab-length error")
		}
		if _, _, err := Backward3D(c, g, make([]complex128, g.OutSize()), NEW, Params{T: 0}, fft.Estimate); err == nil {
			t.Error("expected params validation error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInverseLayoutKernels(t *testing.T) {
	// Repack must be the exact inverse of Unpack, and Scatter of Pack.
	g, err := layout.NewGrid(8, 10, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	zt0, ztl := 2, 3
	// Unpack→Repack: random buffer → slab → buffer.
	buf := randCube(1, 1, g.RecvBufLen(ztl), 5)
	out := make([]complex128, g.OutSize())
	g.UnpackTile(out, buf, false, zt0, ztl)
	buf2 := make([]complex128, g.RecvBufLen(ztl))
	g.RepackTile(buf2, out, false, zt0, ztl)
	for i := range buf {
		if buf[i] != buf2[i] {
			t.Fatalf("repack mismatch at %d", i)
		}
	}
	// Pack→Scatter.
	work := randCube(1, 1, g.InSize(), 6)
	sbuf := make([]complex128, g.SendBufLen(ztl))
	g.PackTile(sbuf, work, false, zt0, ztl)
	work2 := make([]complex128, g.InSize())
	g.ScatterTile(work2, sbuf, false, zt0, ztl)
	// Only the tile's region is defined in work2; compare there.
	for z := zt0; z < zt0+ztl; z++ {
		for lx := 0; lx < g.XC(); lx++ {
			rb := g.RowYBase(false, z, lx)
			for y := 0; y < g.Ny; y++ {
				if work2[rb+y] != work[rb+y] {
					t.Fatalf("scatter mismatch at z=%d x=%d y=%d", z, lx, y)
				}
			}
		}
	}
}

func TestInverseTransposes(t *testing.T) {
	xc, ny, nz := 3, 37, 34 // spans cache blocks
	src := randCube(1, 1, xc*ny*nz, 7)
	tmp := make([]complex128, len(src))
	back := make([]complex128, len(src))
	layout.TransposeZXY(tmp, src, xc, ny, nz)
	layout.TransposeZXYInv(back, tmp, xc, ny, nz)
	for i := range src {
		if back[i] != src[i] {
			t.Fatal("TransposeZXYInv is not the inverse of TransposeZXY")
		}
	}
	layout.TransposeXZY(tmp, src, xc, ny, nz)
	layout.TransposeXZYInv(back, tmp, xc, ny, nz)
	for i := range src {
		if back[i] != src[i] {
			t.Fatal("TransposeXZYInv is not the inverse of TransposeXZY")
		}
	}
}
