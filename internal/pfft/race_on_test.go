//go:build race

package pfft

const raceDetectorEnabled = true
