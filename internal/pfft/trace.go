package pfft

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"offt/internal/layout"
	"offt/internal/mpi"
)

// StepEvent records one kernel or communication interval on a rank's
// timeline, in engine-clock nanoseconds.
type StepEvent struct {
	Name       string
	Start, End int64
	Tile       int // communication tile index, −1 when not applicable
}

// traceRec accumulates one rank's StepEvents. It is shared between the
// TraceEngine wrapper (forward pipelines), the backward engine and the
// traceComm communicator wrapper, so a single recorder captures a whole
// plan execution across directions. A nil *traceRec is the disabled
// recorder: every method is a no-op behind one nil check.
//
// posts/waits give tile attribution for communication events: both the
// overlapped forward pipeline (runNEW) and the backward pipeline post and
// wait their tiles in strict ascending order, so the N-th post and the
// N-th wait both belong to tile N. That pairing is what lets the timeline
// exporter draw a flow arrow from each Ialltoall to the Wait that retires
// it.
type traceRec struct {
	events []StepEvent
	posts  int
	waits  int
}

func (r *traceRec) add(name string, start, end int64, tile int) {
	if r == nil {
		return
	}
	r.events = append(r.events, StepEvent{Name: name, Start: start, End: end, Tile: tile})
}

func (r *traceRec) instant(name string, now int64, tile int) {
	if r == nil {
		return
	}
	r.events = append(r.events, StepEvent{Name: name, Start: now, End: now, Tile: tile})
}

func (r *traceRec) reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.posts, r.waits = 0, 0
}

// nextPost returns the tile index of the next all-to-all post.
func (r *traceRec) nextPost() int {
	if r == nil {
		return -1
	}
	i := r.posts
	r.posts++
	return i
}

// nextWait returns the tile index of the next tile wait.
func (r *traceRec) nextWait() int {
	if r == nil {
		return -1
	}
	i := r.waits
	r.waits++
	return i
}

// TraceEngine wraps an Engine and records a StepEvent per kernel call,
// reconstructing the paper's Fig. 3 view of how computation on some tiles
// overlaps communication on others. Its Comm wraps the communicator's
// Wait/Test to capture the communication side too.
type TraceEngine struct {
	Inner Engine
	rec   *traceRec
	tile  func(zt0 int) int
}

// NewTraceEngine wraps inner, deriving tile indices from tile starts using
// the tiling of parameter T.
func NewTraceEngine(inner Engine, prm Params) *TraceEngine {
	return newTraceEngineRec(inner, prm, &traceRec{})
}

// newTraceEngineRec wraps inner recording into an existing recorder (how a
// Plan shares one recorder between forward and backward executions).
func newTraceEngineRec(inner Engine, prm Params, rec *traceRec) *TraceEngine {
	tl, err := layout.NewTiling(inner.Grid().Nz, prm.T)
	if err != nil {
		tl = layout.Tiling{Nz: inner.Grid().Nz, T: inner.Grid().Nz}
	}
	return &TraceEngine{
		Inner: inner,
		rec:   rec,
		tile:  func(zt0 int) int { return zt0 / tl.T },
	}
}

var _ Engine = (*TraceEngine)(nil)

// Events returns the events recorded so far. The slice aliases the
// recorder's backing store; copy it before the next Reset/run if kept.
func (t *TraceEngine) Events() []StepEvent {
	if t.rec == nil {
		return nil
	}
	return t.rec.events
}

// Reset discards recorded events so the engine can trace another run.
func (t *TraceEngine) Reset() { t.rec.reset() }

func (t *TraceEngine) record(name string, tile int, fn func()) {
	start := t.Inner.Comm().Now()
	fn()
	t.rec.add(name, start, t.Inner.Comm().Now(), tile)
}

// Grid returns the inner engine's geometry.
func (t *TraceEngine) Grid() layout.Grid { return t.Inner.Grid() }

// Comm returns a communicator that also records Wait and Test intervals.
func (t *TraceEngine) Comm() mpi.Comm { return &traceComm{Comm: t.Inner.Comm(), rec: t.rec} }

// FFTz records and forwards.
func (t *TraceEngine) FFTz() { t.record("FFTz", -1, t.Inner.FFTz) }

// Transpose records and forwards.
func (t *TraceEngine) Transpose(fast, optimized bool) {
	t.record("Transpose", -1, func() { t.Inner.Transpose(fast, optimized) })
}

// FFTySub records and forwards.
func (t *TraceEngine) FFTySub(fast bool, zt0, z0, z1, x0, x1 int) {
	t.record("FFTy", t.tile(zt0), func() { t.Inner.FFTySub(fast, zt0, z0, z1, x0, x1) })
}

// PackSub records and forwards.
func (t *TraceEngine) PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int) {
	t.record("Pack", t.tile(zt0), func() { t.Inner.PackSub(slot, fast, zt0, ztl, z0, z1, x0, x1) })
}

// PostTile records and forwards, attributing the post to its tile (posts
// happen in ascending tile order).
func (t *TraceEngine) PostTile(slot int, ztl int) mpi.Request {
	var req mpi.Request
	t.record("Ialltoall", t.rec.nextPost(), func() { req = t.Inner.PostTile(slot, ztl) })
	return req
}

// AlltoallTile records and forwards.
func (t *TraceEngine) AlltoallTile(slot int, ztl int) {
	t.record("Alltoall", -1, func() { t.Inner.AlltoallTile(slot, ztl) })
}

// UnpackSub records and forwards.
func (t *TraceEngine) UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int) {
	t.record("Unpack", t.tile(zt0), func() { t.Inner.UnpackSub(slot, fast, zt0, ztl, z0, z1, y0, y1) })
}

// FFTxSub records and forwards.
func (t *TraceEngine) FFTxSub(fast bool, zt0, z0, z1, y0, y1 int) {
	t.record("FFTx", t.tile(zt0), func() { t.Inner.FFTxSub(fast, zt0, z0, z1, y0, y1) })
}

// NoteDowngrade records an overlapped→blocking downgrade as a zero-length
// event at the current time, marking the tile whose wait triggered it.
func (t *TraceEngine) NoteDowngrade(tile int) {
	t.rec.instant("Downgrade", t.Inner.Comm().Now(), tile)
}

// traceComm intercepts Wait and Test to record their intervals. It is
// shared by TraceEngine and the backward engine's trace mode.
type traceComm struct {
	mpi.Comm
	rec *traceRec
}

func (c *traceComm) Wait(reqs ...mpi.Request) {
	start := c.Comm.Now()
	c.Comm.Wait(reqs...)
	c.rec.add("Wait", start, c.Comm.Now(), c.rec.nextWait())
}

func (c *traceComm) Test(reqs ...mpi.Request) bool {
	start := c.Comm.Now()
	ok := c.Comm.Test(reqs...)
	c.rec.add("Test", start, c.Comm.Now(), -1)
	return ok
}

// WaitDeadline forwards the inner communicator's soft-deadline wait (the
// downgrade trigger), recording it as a Wait interval. An embedded
// interface would hide the capability from type assertions, so the
// forwarding is explicit; without it the fallback is a plain Wait.
func (c *traceComm) WaitDeadline(reqs ...mpi.Request) error {
	dw, ok := c.Comm.(mpi.DeadlineWaiter)
	if !ok {
		c.Wait(reqs...)
		return nil
	}
	start := c.Comm.Now()
	err := dw.WaitDeadline(reqs...)
	c.rec.add("Wait", start, c.Comm.Now(), c.rec.nextWait())
	return err
}

// TransportHealth forwards the inner communicator's recovery counters
// (zero when the engine does not track any).
func (c *traceComm) TransportHealth() mpi.Health {
	if hr, ok := c.Comm.(mpi.HealthReporter); ok {
		return hr.TransportHealth()
	}
	return mpi.Health{}
}

// RenderTimeline prints an ASCII Gantt chart of the recorded events, one
// row per step name (Fig. 3 style), with the given number of columns.
func RenderTimeline(w io.Writer, events []StepEvent, cols int) {
	if len(events) == 0 || cols < 10 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	var t0, t1 int64 = events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < t0 {
			t0 = e.Start
		}
		if e.End > t1 {
			t1 = e.End
		}
	}
	if t1 == t0 {
		t1 = t0 + 1
	}
	names := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, e := range events {
		if !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		order := map[string]int{"FFTz": 0, "Transpose": 1, "FFTy": 2, "Pack": 3,
			"Ialltoall": 4, "Alltoall": 4, "Test": 5, "Wait": 6, "Unpack": 7, "FFTx": 8,
			"Downgrade": 9}
		return order[names[i]] < order[names[j]]
	})
	scale := float64(cols) / float64(t1-t0)
	for _, name := range names {
		row := make([]byte, cols)
		for i := range row {
			row[i] = ' '
		}
		for _, e := range events {
			if e.Name != name {
				continue
			}
			lo := int(float64(e.Start-t0) * scale)
			hi := int(float64(e.End-t0) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > cols {
				hi = cols
			}
			mark := byte('#')
			if e.Tile >= 0 {
				mark = byte('0' + e.Tile%10)
			}
			for i := lo; i < hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(w, "%-10s|%s|\n", name, strings.TrimRight(string(row), " ")+"")
	}
	fmt.Fprintf(w, "%-10s 0%*s\n", "", cols, fmt.Sprintf("%.3fms", float64(t1-t0)/1e6))
}
