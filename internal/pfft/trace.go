package pfft

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"offt/internal/layout"
	"offt/internal/mpi"
)

// StepEvent records one kernel or communication interval on a rank's
// timeline, in engine-clock nanoseconds.
type StepEvent struct {
	Name       string
	Start, End int64
	Tile       int // communication tile index, −1 when not applicable
}

// TraceEngine wraps an Engine and records a StepEvent per kernel call,
// reconstructing the paper's Fig. 3 view of how computation on some tiles
// overlaps communication on others. Wrap the communicator's Wait/Test via
// TraceComm to capture the communication side too.
type TraceEngine struct {
	Inner  Engine
	Events []StepEvent
	tile   func(zt0 int) int
}

// NewTraceEngine wraps inner, deriving tile indices from tile starts using
// the tiling of parameter T.
func NewTraceEngine(inner Engine, prm Params) *TraceEngine {
	tl, err := layout.NewTiling(inner.Grid().Nz, prm.T)
	if err != nil {
		tl = layout.Tiling{Nz: inner.Grid().Nz, T: inner.Grid().Nz}
	}
	return &TraceEngine{
		Inner: inner,
		tile:  func(zt0 int) int { return zt0 / tl.T },
	}
}

var _ Engine = (*TraceEngine)(nil)

func (t *TraceEngine) record(name string, tile int, fn func()) {
	start := t.Inner.Comm().Now()
	fn()
	t.Events = append(t.Events, StepEvent{Name: name, Start: start, End: t.Inner.Comm().Now(), Tile: tile})
}

// Grid returns the inner engine's geometry.
func (t *TraceEngine) Grid() layout.Grid { return t.Inner.Grid() }

// Comm returns a communicator that also records Wait and Test intervals.
func (t *TraceEngine) Comm() mpi.Comm { return &traceComm{Comm: t.Inner.Comm(), t: t} }

// FFTz records and forwards.
func (t *TraceEngine) FFTz() { t.record("FFTz", -1, t.Inner.FFTz) }

// Transpose records and forwards.
func (t *TraceEngine) Transpose(fast, optimized bool) {
	t.record("Transpose", -1, func() { t.Inner.Transpose(fast, optimized) })
}

// FFTySub records and forwards.
func (t *TraceEngine) FFTySub(fast bool, zt0, z0, z1, x0, x1 int) {
	t.record("FFTy", t.tile(zt0), func() { t.Inner.FFTySub(fast, zt0, z0, z1, x0, x1) })
}

// PackSub records and forwards.
func (t *TraceEngine) PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int) {
	t.record("Pack", t.tile(zt0), func() { t.Inner.PackSub(slot, fast, zt0, ztl, z0, z1, x0, x1) })
}

// PostTile records and forwards.
func (t *TraceEngine) PostTile(slot int, ztl int) mpi.Request {
	var req mpi.Request
	t.record("Ialltoall", -1, func() { req = t.Inner.PostTile(slot, ztl) })
	return req
}

// AlltoallTile records and forwards.
func (t *TraceEngine) AlltoallTile(slot int, ztl int) {
	t.record("Alltoall", -1, func() { t.Inner.AlltoallTile(slot, ztl) })
}

// UnpackSub records and forwards.
func (t *TraceEngine) UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int) {
	t.record("Unpack", t.tile(zt0), func() { t.Inner.UnpackSub(slot, fast, zt0, ztl, z0, z1, y0, y1) })
}

// FFTxSub records and forwards.
func (t *TraceEngine) FFTxSub(fast bool, zt0, z0, z1, y0, y1 int) {
	t.record("FFTx", t.tile(zt0), func() { t.Inner.FFTxSub(fast, zt0, z0, z1, y0, y1) })
}

// NoteDowngrade records an overlapped→blocking downgrade as a zero-length
// event at the current time, marking the tile whose wait triggered it.
func (t *TraceEngine) NoteDowngrade(tile int) {
	now := t.Inner.Comm().Now()
	t.Events = append(t.Events, StepEvent{Name: "Downgrade", Start: now, End: now, Tile: tile})
}

// traceComm intercepts Wait and Test to record their intervals.
type traceComm struct {
	mpi.Comm
	t *TraceEngine
}

func (c *traceComm) Wait(reqs ...mpi.Request) {
	c.t.record("Wait", -1, func() { c.Comm.Wait(reqs...) })
}

func (c *traceComm) Test(reqs ...mpi.Request) bool {
	var ok bool
	start := c.Comm.Now()
	ok = c.Comm.Test(reqs...)
	c.t.Events = append(c.t.Events, StepEvent{Name: "Test", Start: start, End: c.Comm.Now(), Tile: -1})
	return ok
}

// WaitDeadline forwards the inner communicator's soft-deadline wait (the
// downgrade trigger), recording it as a Wait interval. An embedded
// interface would hide the capability from type assertions, so the
// forwarding is explicit; without it the fallback is a plain Wait.
func (c *traceComm) WaitDeadline(reqs ...mpi.Request) error {
	dw, ok := c.Comm.(mpi.DeadlineWaiter)
	if !ok {
		c.Wait(reqs...)
		return nil
	}
	var err error
	c.t.record("Wait", -1, func() { err = dw.WaitDeadline(reqs...) })
	return err
}

// TransportHealth forwards the inner communicator's recovery counters
// (zero when the engine does not track any).
func (c *traceComm) TransportHealth() mpi.Health {
	if hr, ok := c.Comm.(mpi.HealthReporter); ok {
		return hr.TransportHealth()
	}
	return mpi.Health{}
}

// RenderTimeline prints an ASCII Gantt chart of the recorded events, one
// row per step name (Fig. 3 style), with the given number of columns.
func RenderTimeline(w io.Writer, events []StepEvent, cols int) {
	if len(events) == 0 || cols < 10 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	var t0, t1 int64 = events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < t0 {
			t0 = e.Start
		}
		if e.End > t1 {
			t1 = e.End
		}
	}
	if t1 == t0 {
		t1 = t0 + 1
	}
	names := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, e := range events {
		if !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		order := map[string]int{"FFTz": 0, "Transpose": 1, "FFTy": 2, "Pack": 3,
			"Ialltoall": 4, "Alltoall": 4, "Test": 5, "Wait": 6, "Unpack": 7, "FFTx": 8,
			"Downgrade": 9}
		return order[names[i]] < order[names[j]]
	})
	scale := float64(cols) / float64(t1-t0)
	for _, name := range names {
		row := make([]byte, cols)
		for i := range row {
			row[i] = ' '
		}
		for _, e := range events {
			if e.Name != name {
				continue
			}
			lo := int(float64(e.Start-t0) * scale)
			hi := int(float64(e.End-t0) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > cols {
				hi = cols
			}
			mark := byte('#')
			if e.Tile >= 0 {
				mark = byte('0' + e.Tile%10)
			}
			for i := lo; i < hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(w, "%-10s|%s|\n", name, strings.TrimRight(string(row), " ")+"")
	}
	fmt.Fprintf(w, "%-10s 0%*s\n", "", cols, fmt.Sprintf("%.3fms", float64(t1-t0)/1e6))
}
