package pfft

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"offt/internal/layout"
	"offt/internal/mpi"
)

// StepEvent records one kernel or communication interval on a rank's
// timeline, in engine-clock nanoseconds.
type StepEvent struct {
	Name       string
	Start, End int64
	Tile       int // communication tile index, −1 when not applicable
}

// traceRec accumulates one rank's StepEvents. It is shared between the
// TraceEngine wrapper (forward pipelines), the backward engine and the
// traceComm communicator wrapper, so a single recorder captures a whole
// plan execution across directions. A nil *traceRec is the disabled
// recorder: every method is a no-op behind one nil check.
//
// Recording happens at the pipeline layer (fftyPack, runOverlapped, the
// backward engine), which brackets every kernel and communication call
// with Comm.Now() pairs for the Breakdown anyway: events reuse those
// timestamps, so a traced execution reads the clock exactly as often as
// an untraced one. The pipelines also know each event's tile index
// directly (posts and waits retire in ascending tile order), which is
// what lets the timeline exporter draw a flow arrow from each Ialltoall
// to the Wait that retires it.
type traceRec struct {
	events []StepEvent
}

func (r *traceRec) add(name string, start, end int64, tile int) {
	if r == nil {
		return
	}
	r.events = append(r.events, StepEvent{Name: name, Start: start, End: end, Tile: tile})
}

// addTestBurst records one polling burst as a single Test event,
// coalescing with an immediately preceding Test event. The overlapped
// pipeline polls the transport between kernel calls, and recording every
// poll separately floods the timeline (and the request-span exporter)
// with hundreds of near-zero intervals; one event per burst preserves
// the polling extent at a fraction of the recording cost.
func (r *traceRec) addTestBurst(start, end int64) {
	if r == nil {
		return
	}
	if n := len(r.events); n > 0 && r.events[n-1].Name == "Test" {
		r.events[n-1].End = end
		return
	}
	r.events = append(r.events, StepEvent{Name: "Test", Start: start, End: end, Tile: -1})
}

func (r *traceRec) instant(name string, now int64, tile int) {
	if r == nil {
		return
	}
	r.events = append(r.events, StepEvent{Name: name, Start: now, End: now, Tile: tile})
}

func (r *traceRec) reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
}

// recOf returns the recorder behind a tracing communicator, or nil (the
// disabled recorder) for any other communicator. Pipeline code calls it
// once per run and then records unconditionally.
func recOf(c mpi.Comm) *traceRec {
	if tc, ok := c.(*traceComm); ok {
		return tc.rec
	}
	return nil
}

// TraceEngine marks an Engine for step recording, reconstructing the
// paper's Fig. 3 view of how computation on some tiles overlaps
// communication on others. It does not time anything itself: its Comm()
// returns a recording communicator (traceComm), and the pipeline layer —
// which brackets every kernel and communication call with Comm.Now()
// pairs for the Breakdown regardless — records events through it with
// those same timestamps. Kernel methods forward untouched, so tracing
// adds no clock reads to the execution's critical path.
type TraceEngine struct {
	Inner Engine
	rec   *traceRec
	clock mpi.Comm // inner communicator, for NoteDowngrade instants
}

// NewTraceEngine wraps inner, deriving tile indices from tile starts using
// the tiling of parameter T.
func NewTraceEngine(inner Engine, prm Params) *TraceEngine {
	return newTraceEngineRec(inner, prm, &traceRec{})
}

// newTraceEngineRec wraps inner recording into an existing recorder (how a
// Plan shares one recorder between forward and backward executions).
func newTraceEngineRec(inner Engine, prm Params, rec *traceRec) *TraceEngine {
	return &TraceEngine{
		Inner: inner,
		rec:   rec,
		clock: inner.Comm(),
	}
}

var _ Engine = (*TraceEngine)(nil)

// Events returns the events recorded so far. The slice aliases the
// recorder's backing store; copy it before the next Reset/run if kept.
func (t *TraceEngine) Events() []StepEvent {
	if t.rec == nil {
		return nil
	}
	return t.rec.events
}

// Reset discards recorded events so the engine can trace another run.
func (t *TraceEngine) Reset() { t.rec.reset() }

// Grid returns the inner engine's geometry.
func (t *TraceEngine) Grid() layout.Grid { return t.Inner.Grid() }

// Comm returns the recording communicator the pipeline layer records
// step events through (see recOf).
func (t *TraceEngine) Comm() mpi.Comm { return &traceComm{Comm: t.Inner.Comm(), rec: t.rec} }

// FFTz forwards (recorded by the pipeline).
func (t *TraceEngine) FFTz() { t.Inner.FFTz() }

// Transpose forwards (recorded by the pipeline).
func (t *TraceEngine) Transpose(fast, optimized bool) { t.Inner.Transpose(fast, optimized) }

// FFTySub forwards (recorded by the pipeline).
func (t *TraceEngine) FFTySub(fast bool, zt0, z0, z1, x0, x1 int) {
	t.Inner.FFTySub(fast, zt0, z0, z1, x0, x1)
}

// PackSub forwards (recorded by the pipeline).
func (t *TraceEngine) PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int) {
	t.Inner.PackSub(slot, fast, zt0, ztl, z0, z1, x0, x1)
}

// PostTile forwards (recorded by the pipeline).
func (t *TraceEngine) PostTile(slot int, ztl int) mpi.Request {
	return t.Inner.PostTile(slot, ztl)
}

// AlltoallTile forwards (recorded by the pipeline).
func (t *TraceEngine) AlltoallTile(slot int, ztl int) {
	t.Inner.AlltoallTile(slot, ztl)
}

// UnpackSub forwards (recorded by the pipeline).
func (t *TraceEngine) UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int) {
	t.Inner.UnpackSub(slot, fast, zt0, ztl, z0, z1, y0, y1)
}

// FFTxSub forwards (recorded by the pipeline).
func (t *TraceEngine) FFTxSub(fast bool, zt0, z0, z1, y0, y1 int) {
	t.Inner.FFTxSub(fast, zt0, z0, z1, y0, y1)
}

// NoteDowngrade records an overlapped→blocking downgrade as a zero-length
// event at the current time, marking the tile whose wait triggered it.
func (t *TraceEngine) NoteDowngrade(tile int) {
	t.rec.instant("Downgrade", t.clock.Now(), tile)
}

// traceComm carries the step recorder down to the pipeline layer, which
// detects it (recOf, doTests) and records events with the timestamps it
// already takes for the Breakdown. Wait goes through the embedded
// communicator untouched — its call sites bracket and record it with
// tile attribution; only Test and WaitDeadline need explicit forwarding.
type traceComm struct {
	mpi.Comm
	rec *traceRec
}

// Test records a single poll as a one-poll burst. The pipeline's hot
// polling loop (doTests) bypasses this wrapper and records its whole
// burst with timestamps it already takes for the Breakdown; this path
// serves direct callers outside that loop.
func (c *traceComm) Test(reqs ...mpi.Request) bool {
	start := c.Comm.Now()
	ok := c.Comm.Test(reqs...)
	c.rec.addTestBurst(start, c.Comm.Now())
	return ok
}

// WaitDeadline forwards the inner communicator's soft-deadline wait (the
// downgrade trigger). An embedded interface would hide the capability
// from type assertions, so the forwarding is explicit; without it the
// fallback is a plain Wait.
func (c *traceComm) WaitDeadline(reqs ...mpi.Request) error {
	dw, ok := c.Comm.(mpi.DeadlineWaiter)
	if !ok {
		c.Comm.Wait(reqs...)
		return nil
	}
	return dw.WaitDeadline(reqs...)
}

// TransportHealth forwards the inner communicator's recovery counters
// (zero when the engine does not track any).
func (c *traceComm) TransportHealth() mpi.Health {
	if hr, ok := c.Comm.(mpi.HealthReporter); ok {
		return hr.TransportHealth()
	}
	return mpi.Health{}
}

// SetExchange forwards the schedule selection to the inner communicator
// and records it, so exported timelines can attribute Post/Wait spans to
// the exchange algorithm that produced them. Embedding hides the inner
// engine's ExchangeSetter from type assertions, so the forwarding is
// explicit.
func (c *traceComm) SetExchange(ex mpi.Exchange) {
	applied := mpi.SetExchange(c.Comm, ex)
	// Default pairwise stays silent so untuned timelines are unchanged.
	if applied && ex.Alg != mpi.CommPairwise {
		c.rec.instant("Comm="+ex.Alg.String(), c.Comm.Now(), -1)
	}
}

// RenderTimeline prints an ASCII Gantt chart of the recorded events, one
// row per step name (Fig. 3 style), with the given number of columns.
func RenderTimeline(w io.Writer, events []StepEvent, cols int) {
	if len(events) == 0 || cols < 10 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	var t0, t1 int64 = events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < t0 {
			t0 = e.Start
		}
		if e.End > t1 {
			t1 = e.End
		}
	}
	if t1 == t0 {
		t1 = t0 + 1
	}
	names := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, e := range events {
		if !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		order := map[string]int{"FFTz": 0, "Transpose": 1, "FFTy": 2, "Pack": 3,
			"Ialltoall": 4, "Alltoall": 4, "Test": 5, "Wait": 6, "Unpack": 7, "FFTx": 8,
			"Downgrade": 9}
		return order[names[i]] < order[names[j]]
	})
	scale := float64(cols) / float64(t1-t0)
	for _, name := range names {
		row := make([]byte, cols)
		for i := range row {
			row[i] = ' '
		}
		for _, e := range events {
			if e.Name != name {
				continue
			}
			lo := int(float64(e.Start-t0) * scale)
			hi := int(float64(e.End-t0) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > cols {
				hi = cols
			}
			mark := byte('#')
			if e.Tile >= 0 {
				mark = byte('0' + e.Tile%10)
			}
			for i := lo; i < hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(w, "%-10s|%s|\n", name, strings.TrimRight(string(row), " ")+"")
	}
	fmt.Fprintf(w, "%-10s 0%*s\n", "", cols, fmt.Sprintf("%.3fms", float64(t1-t0)/1e6))
}
