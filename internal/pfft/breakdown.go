package pfft

import (
	"fmt"
	"strings"
	"time"
)

// Breakdown records per-step time for one rank's 3-D FFT, in nanoseconds
// (virtual time on the sim engine, wall time on the real engine). The step
// names match Fig. 8 of the paper.
type Breakdown struct {
	FFTz      int64
	Transpose int64
	FFTy      int64
	Pack      int64
	Unpack    int64
	FFTx      int64
	Ialltoall int64 // time spent posting the non-blocking all-to-alls
	Wait      int64 // time blocked in MPI_Wait
	Test      int64 // time spent in MPI_Test calls
	Total     int64

	// Downgrades counts overlapped→blocking fallbacks this rank took when
	// the transport misbehaved (a count, not a time; excluded from Steps).
	Downgrades int64
}

// StepNames lists the breakdown components in Fig. 8 order.
func StepNames() []string {
	return []string{"FFTz", "Transpose", "FFTy", "Pack", "Unpack", "FFTx", "Ialltoall", "Wait", "Test"}
}

// Steps returns the components in StepNames order.
func (b Breakdown) Steps() []int64 {
	return []int64{b.FFTz, b.Transpose, b.FFTy, b.Pack, b.Unpack, b.FFTx, b.Ialltoall, b.Wait, b.Test}
}

// Sum returns the sum of all step times (≈ Total; small gaps are loop
// bookkeeping outside any step).
func (b Breakdown) Sum() int64 {
	var s int64
	for _, v := range b.Steps() {
		s += v
	}
	return s
}

// Overlappable returns the computation time the paper's design hides
// behind communication: FFTy + Pack + Unpack + FFTx (§5.2.1).
func (b Breakdown) Overlappable() int64 {
	return b.FFTy + b.Pack + b.Unpack + b.FFTx
}

// CommVisible returns the communication time not hidden behind
// computation: Ialltoall posting + Wait + Test overhead.
func (b Breakdown) CommVisible() int64 {
	return b.Ialltoall + b.Wait + b.Test
}

// OverlapEfficiency returns the fraction of the overlap-relevant time
// spent in hideable computation: Overlappable / (Overlappable +
// CommVisible), per §5.2.1. 1.0 means communication is fully hidden
// behind computation (this includes the degenerate no-visible-comm case,
// e.g. a single-rank run with no all-to-all at all); 0.0 means every
// overlap-phase nanosecond was visible communication. Shared by the
// telemetry gauge and the CLI breakdown report.
func (b Breakdown) OverlapEfficiency() float64 {
	comm := b.CommVisible()
	if comm <= 0 {
		return 1.0
	}
	return float64(b.Overlappable()) / float64(b.Overlappable()+comm)
}

// TunedPortion returns Total minus the parameter-independent FFTz and
// Transpose steps — the quantity the auto-tuner minimizes (§4.4 technique
// 3 skips FFTz/Transpose during tuning).
func (b Breakdown) TunedPortion() int64 {
	return b.Total - b.FFTz - b.Transpose
}

// Add accumulates another rank's or run's breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.FFTz += o.FFTz
	b.Transpose += o.Transpose
	b.FFTy += o.FFTy
	b.Pack += o.Pack
	b.Unpack += o.Unpack
	b.FFTx += o.FFTx
	b.Ialltoall += o.Ialltoall
	b.Wait += o.Wait
	b.Test += o.Test
	b.Total += o.Total
	b.Downgrades += o.Downgrades
}

// Scale divides every component by n (for averaging across ranks).
func (b *Breakdown) Scale(n int64) {
	if n == 0 {
		return
	}
	b.FFTz /= n
	b.Transpose /= n
	b.FFTy /= n
	b.Pack /= n
	b.Unpack /= n
	b.FFTx /= n
	b.Ialltoall /= n
	b.Wait /= n
	b.Test /= n
	b.Total /= n
	// Downgrades stays a world-wide count: averaging it away would hide
	// that any rank fell back.
}

// String renders a one-line human-readable breakdown.
func (b Breakdown) String() string {
	var sb strings.Builder
	names := StepNames()
	for i, v := range b.Steps() {
		fmt.Fprintf(&sb, "%s=%v ", names[i], time.Duration(v).Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "Total=%v", time.Duration(b.Total).Round(time.Microsecond))
	if b.Downgrades > 0 {
		fmt.Fprintf(&sb, " Downgrades=%d", b.Downgrades)
	}
	return sb.String()
}
