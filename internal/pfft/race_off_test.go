//go:build !race

package pfft

// raceDetectorEnabled reports whether the race detector instruments this
// test binary; the allocation gates skip under -race because the
// instrumented runtime allocates on its own.
const raceDetectorEnabled = false
