package pfft

import (
	"sync"
	"testing"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/mem"
)

func TestForwardManyMatchesSerial(t *testing.T) {
	nx, p, m := 12, 3, 4 // m arrays
	fulls := make([][]complex128, m)
	wants := make([][]complex128, m)
	for i := 0; i < m; i++ {
		fulls[i] = randCube(nx, nx, nx, int64(100+i))
		wants[i] = serialReference(fulls[i], nx, nx, nx)
	}
	w := mem.NewWorld(p)
	outs := make([][][]complex128, p) // [rank][array]
	var mu sync.Mutex
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, nx, nx, p, c.Rank())
		if err != nil {
			panic(err)
		}
		slabs := make([][]complex128, m)
		for i := range slabs {
			slabs[i] = layout.ScatterX(fulls[i], g)
		}
		o, bs, err := ForwardMany3D(c, g, slabs, 2, fft.Estimate)
		if err != nil {
			panic(err)
		}
		if len(bs) != m {
			panic("wrong breakdown count")
		}
		mu.Lock()
		outs[c.Rank()] = o
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		slabs := make([][]complex128, p)
		for r := 0; r < p; r++ {
			slabs[r] = outs[r][i]
		}
		got := layout.GatherY(slabs, nx, nx, nx, p, false)
		if e := maxErr(got, wants[i]); e > tol {
			t.Errorf("array %d: error %g", i, e)
		}
	}
}

func TestRunManyValidation(t *testing.T) {
	p := 1
	w := mem.NewWorld(p)
	err := w.Run(func(c *mem.Comm) {
		g, _ := layout.NewGrid(8, 8, 8, 1, 0)
		e, err := NewRealEngine(g, c, make([]complex128, g.InSize()), fft.Forward, fft.Estimate)
		if err != nil {
			panic(err)
		}
		if _, err := RunMany([]Engine{e}, 0); err == nil {
			t.Error("expected window validation error")
		}
		if bs, err := RunMany(nil, 1); err != nil || bs != nil {
			t.Error("empty engine list should be a no-op")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
