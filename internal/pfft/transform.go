package pfft

import (
	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
)

// OutputFast reports whether a variant produces the y-z-x fast-path output
// layout (§3.5) instead of z-y-x for the given geometry. Pass this to
// layout.GatherY / layout.ScatterY when reassembling results.
func OutputFast(v Variant, g layout.Grid) bool {
	return g.FastPathOK() && (v == NEW || v == NEW0)
}

// Forward3D executes a distributed forward 3-D FFT on this rank: slab is
// the rank's input x-slab in x-y-z layout (consumed), and the returned
// slice is the rank's output y-slab (layout per OutputFast). Every rank of
// the communicator must call Forward3D with identical variant/parameters.
func Forward3D(c mpi.Comm, g layout.Grid, slab []complex128, v Variant, prm Params, flag fft.Flag) ([]complex128, Breakdown, error) {
	e, err := NewRealEngine(g, c, slab, fft.Forward, flag)
	if err != nil {
		return nil, Breakdown{}, err
	}
	b, err := Run(e, v, prm)
	if err != nil {
		return nil, Breakdown{}, err
	}
	return e.Output(), b, nil
}

// ForwardTH3D is Forward3D for the TH comparison model.
func ForwardTH3D(c mpi.Comm, g layout.Grid, slab []complex128, prm THParams, flag fft.Flag) ([]complex128, Breakdown, error) {
	if err := prm.Validate(g); err != nil {
		return nil, Breakdown{}, err
	}
	e, err := NewRealEngine(g, c, slab, fft.Forward, flag)
	if err != nil {
		return nil, Breakdown{}, err
	}
	b, err := Run(e, TH, Params{T: prm.T, W: prm.W, Fy: prm.F})
	if err != nil {
		return nil, Breakdown{}, err
	}
	return e.Output(), b, nil
}

// NewForwardEngine builds a real engine for a forward run with Estimate
// planning — a convenience for tools that wrap the engine (e.g. with
// NewTraceEngine) before calling Run themselves.
func NewForwardEngine(g layout.Grid, c mpi.Comm, slab []complex128) (*RealEngine, error) {
	return NewRealEngine(g, c, slab, fft.Forward, fft.Estimate)
}
