package pfft

import (
	"testing"

	"offt/internal/mpi"
)

func TestTestsDueEdgeCases(t *testing.T) {
	// f = 0: never any tests due.
	for u := 0; u < 8; u++ {
		if got := testsDue(0, u, 8); got != 0 {
			t.Errorf("testsDue(0, %d, 8) = %d, want 0", u, got)
		}
	}
	// n = 0 and n < 0: degenerate unit counts are a no-op, not a panic.
	if got := testsDue(4, 0, 0); got != 0 {
		t.Errorf("testsDue(4, 0, 0) = %d, want 0", got)
	}
	if got := testsDue(4, 0, -3); got != 0 {
		t.Errorf("testsDue(4, 0, -3) = %d, want 0", got)
	}
}

func TestTestsDueDistribution(t *testing.T) {
	// Across all u in [0, n) the per-unit counts must sum to exactly f,
	// including f > n (several tests after one unit) and f < n (most units
	// get none).
	cases := []struct{ f, n int }{
		{1, 8}, {3, 8}, {8, 8}, {17, 8}, {64, 8}, {5, 1}, {0, 5},
	}
	for _, tc := range cases {
		sum := 0
		for u := 0; u < tc.n; u++ {
			due := testsDue(tc.f, u, tc.n)
			if due < 0 {
				t.Errorf("testsDue(%d, %d, %d) = %d, negative", tc.f, u, tc.n, due)
			}
			sum += due
		}
		if sum != tc.f {
			t.Errorf("f=%d n=%d: tests issued sum to %d, want %d", tc.f, tc.n, sum, tc.f)
		}
	}
	// f ≥ n must schedule at least one test after every unit.
	for u := 0; u < 8; u++ {
		if due := testsDue(17, u, 8); due < 1 {
			t.Errorf("testsDue(17, %d, 8) = %d, want ≥ 1 when f > n", u, due)
		}
	}
}

// countComm is a stub communicator that counts Test invocations.
type countComm struct {
	tests int
}

func (c *countComm) Rank() int  { return 0 }
func (c *countComm) Size() int  { return 1 }
func (c *countComm) Now() int64 { return 0 }
func (c *countComm) Barrier()   {}
func (c *countComm) Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) {
}
func (c *countComm) Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) mpi.Request {
	return nil
}
func (c *countComm) Test(reqs ...mpi.Request) bool { c.tests++; return false }
func (c *countComm) Wait(reqs ...mpi.Request)      {}

func TestDoTests(t *testing.T) {
	var b Breakdown
	window := []mpi.Request{nil, nil}

	// Empty window: no Test calls regardless of n.
	c := &countComm{}
	doTests(c, nil, 4, &b)
	doTests(c, []mpi.Request{}, 4, &b)
	if c.tests != 0 {
		t.Errorf("doTests with empty window issued %d Test calls, want 0", c.tests)
	}

	// n ≤ 0: no-op.
	c = &countComm{}
	doTests(c, window, 0, &b)
	doTests(c, window, -2, &b)
	if c.tests != 0 {
		t.Errorf("doTests with n ≤ 0 issued %d Test calls, want 0", c.tests)
	}

	// Otherwise exactly n Test calls over the window.
	c = &countComm{}
	doTests(c, window, 5, &b)
	if c.tests != 5 {
		t.Errorf("doTests(n=5) issued %d Test calls, want 5", c.tests)
	}
}
