package pfft

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
)

// RealEngine executes the algorithm on actual complex128 data over any
// mpi.Comm (normally the mem engine). It is the numerically verified
// implementation; the cost-model engine in package model mirrors its
// control flow in virtual time.
type RealEngine struct {
	g    layout.Grid
	comm mpi.Comm

	in   []complex128 // input x-slab, x-y-z layout; clobbered by FFTz
	work []complex128 // post-transpose slab (z-x-y or x-z-y)
	out  []complex128 // output y-slab (z-y-x or y-z-x)

	planZ, planY, planX *fft.Plan

	sendBufs, recvBufs [][]complex128
	sendCounts         []int
	recvCounts         []int
}

var _ Engine = (*RealEngine)(nil)

// NewRealEngine prepares a real-data engine for one rank. slab is the
// rank's input x-slab in x-y-z layout (length g.InSize()); it is consumed
// (overwritten during FFTz). flag selects the planner effort for the 1-D
// FFT plans. dir is the transform direction of the 1-D kernels (Forward
// for the usual forward 3-D FFT).
func NewRealEngine(g layout.Grid, comm mpi.Comm, slab []complex128, dir fft.Direction, flag fft.Flag) (*RealEngine, error) {
	if len(slab) != g.InSize() {
		return nil, fmt.Errorf("pfft: slab length %d, want %d", len(slab), g.InSize())
	}
	if comm.Rank() != g.Rank || comm.Size() != g.P {
		return nil, fmt.Errorf("pfft: comm rank/size %d/%d does not match grid %d/%d", comm.Rank(), comm.Size(), g.Rank, g.P)
	}
	e := &RealEngine{
		g:     g,
		comm:  comm,
		in:    slab,
		work:  make([]complex128, g.InSize()),
		out:   make([]complex128, g.OutSize()),
		planZ: fft.Plan1DCached(g.Nz, dir, flag).Clone(),
		planY: fft.Plan1DCached(g.Ny, dir, flag).Clone(),
		planX: fft.Plan1DCached(g.Nx, dir, flag).Clone(),
	}
	e.sendCounts = make([]int, g.P)
	e.recvCounts = make([]int, g.P)
	return e, nil
}

// Grid returns the rank's geometry.
func (e *RealEngine) Grid() layout.Grid { return e.g }

// Comm returns the rank's communicator.
func (e *RealEngine) Comm() mpi.Comm { return e.comm }

// Output returns the rank's output y-slab. Layout is z-y-x, or y-z-x when
// the fast path was used (NEW/NEW-0 with Nx == Ny).
func (e *RealEngine) Output() []complex128 { return e.out }

// FFTz transforms every z row of the input slab in place.
func (e *RealEngine) FFTz() {
	e.planZ.Batch(e.in, e.g.XC()*e.g.Ny, e.g.Nz)
}

// Transpose rearranges the slab into the post-FFTz layout. The
// unoptimized variant (TH) uses a deliberately naive element loop instead
// of the cache-blocked kernel, mirroring the paper's observation that TH's
// rearrangement is slower than FFTW's tuned one.
func (e *RealEngine) Transpose(fast, optimized bool) {
	xc, ny, nz := e.g.XC(), e.g.Ny, e.g.Nz
	switch {
	case fast:
		layout.TransposeXZY(e.work, e.in, xc, ny, nz)
	case optimized:
		layout.TransposeZXY(e.work, e.in, xc, ny, nz)
	default:
		// Naive traversal: same result, no cache blocking.
		for lx := 0; lx < xc; lx++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					e.work[(z*xc+lx)*ny+y] = e.in[(lx*ny+y)*nz+z]
				}
			}
		}
	}
}

// FFTySub transforms the y rows of one Pack sub-tile.
func (e *RealEngine) FFTySub(fast bool, zt0, z0, z1, x0, x1 int) {
	for z := zt0 + z0; z < zt0+z1; z++ {
		for lx := x0; lx < x1; lx++ {
			base := e.g.RowYBase(fast, z, lx)
			row := e.work[base : base+e.g.Ny]
			e.planY.Transform(row, row)
		}
	}
}

// PackSub packs one sub-tile into the slot's send buffer.
func (e *RealEngine) PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int) {
	e.g.PackSubtile(e.sendBuf(slot, ztl), e.work, fast, zt0, ztl, x0, x1, z0, z1)
}

// PostTile starts the non-blocking all-to-all for the slot's tile.
func (e *RealEngine) PostTile(slot int, ztl int) mpi.Request {
	e.g.SendCounts(ztl, e.sendCounts)
	e.g.RecvCounts(ztl, e.recvCounts)
	return e.comm.Ialltoallv(e.sendBuf(slot, ztl), e.sendCounts, e.recvBuf(slot, ztl), e.recvCounts)
}

// AlltoallTile performs the blocking all-to-all for the slot's tile.
func (e *RealEngine) AlltoallTile(slot int, ztl int) {
	e.g.SendCounts(ztl, e.sendCounts)
	e.g.RecvCounts(ztl, e.recvCounts)
	e.comm.Alltoallv(e.sendBuf(slot, ztl), e.sendCounts, e.recvBuf(slot, ztl), e.recvCounts)
}

// UnpackSub unpacks one sub-tile from the slot's receive buffer into the
// output slab.
func (e *RealEngine) UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int) {
	e.g.UnpackSubtile(e.out, e.recvBuf(slot, ztl), fast, zt0, ztl, y0, y1, z0, z1)
}

// FFTxSub transforms the x rows of one Unpack sub-tile.
func (e *RealEngine) FFTxSub(fast bool, zt0, z0, z1, y0, y1 int) {
	for z := zt0 + z0; z < zt0+z1; z++ {
		for ly := y0; ly < y1; ly++ {
			base := e.g.RowXBase(fast, ly, z)
			row := e.out[base : base+e.g.Nx]
			e.planX.Transform(row, row)
		}
	}
}

// sendBuf returns slot's send buffer sized for a tile of z-length ztl,
// growing the slot lazily.
func (e *RealEngine) sendBuf(slot, ztl int) []complex128 {
	for len(e.sendBufs) <= slot {
		e.sendBufs = append(e.sendBufs, nil)
	}
	n := e.g.SendBufLen(ztl)
	if cap(e.sendBufs[slot]) < n {
		e.sendBufs[slot] = make([]complex128, n)
	}
	return e.sendBufs[slot][:n]
}

func (e *RealEngine) recvBuf(slot, ztl int) []complex128 {
	for len(e.recvBufs) <= slot {
		e.recvBufs = append(e.recvBufs, nil)
	}
	n := e.g.RecvBufLen(ztl)
	if cap(e.recvBufs[slot]) < n {
		e.recvBufs[slot] = make([]complex128, n)
	}
	return e.recvBufs[slot][:n]
}
