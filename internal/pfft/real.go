package pfft

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
)

// EngineOpt configures a RealEngine beyond the required arguments.
type EngineOpt func(*engineConfig)

type engineConfig struct {
	workers int
	pooled  bool
	trace   *traceRec
}

// withTraceRec attaches a step recorder to the engine. The forward
// pipeline traces by wrapping the whole Engine in a TraceEngine; the
// backward engine implements no Engine interface, so it records into the
// shared recorder directly at its breakdown timing points.
func withTraceRec(rec *traceRec) EngineOpt {
	return func(c *engineConfig) { c.trace = rec }
}

// WithEngineWorkers fans the intra-rank kernels (FFTz, Transpose, FFTy,
// Pack, Unpack, FFTx) across n goroutines. n <= 1 keeps the serial,
// allocation-free path.
func WithEngineWorkers(n int) EngineOpt {
	return func(c *engineConfig) { c.workers = n }
}

// WithPooledBuffers sources the engine's work slab and communication slots
// from the package slab arena; Close returns them. The output slab is never
// pooled — Output() escapes to callers.
func WithPooledBuffers() EngineOpt {
	return func(c *engineConfig) { c.pooled = true }
}

// RealEngine executes the algorithm on actual complex128 data over any
// mpi.Comm (normally the mem engine). It is the numerically verified
// implementation; the cost-model engine in package model mirrors its
// control flow in virtual time.
type RealEngine struct {
	g    layout.Grid
	comm mpi.Comm

	in   []complex128 // input x-slab, x-y-z layout; clobbered by FFTz
	work []complex128 // post-transpose slab (z-x-y or x-z-y)
	out  []complex128 // output y-slab (z-y-x or y-z-x)

	planZ, planY, planX *fft.Plan

	// pool is non-nil only with WithEngineWorkers(n>1); every kernel method
	// branches on it at the call site so the serial path never builds a
	// closure (which would escape to the heap via the jobs channel).
	pool                   *kernelPool
	planZs, planYs, planXs []*fft.Plan // per-chunk clones, len = workers

	sendBufs, recvBufs [][]complex128
	sendCounts         []int
	recvCounts         []int

	pooled bool // work + slot buffers came from the arena
}

var _ Engine = (*RealEngine)(nil)

// NewRealEngine prepares a real-data engine for one rank. slab is the
// rank's input x-slab in x-y-z layout (length g.InSize()); it is consumed
// (overwritten during FFTz). flag selects the planner effort for the 1-D
// FFT plans. dir is the transform direction of the 1-D kernels (Forward
// for the usual forward 3-D FFT).
func NewRealEngine(g layout.Grid, comm mpi.Comm, slab []complex128, dir fft.Direction, flag fft.Flag, opts ...EngineOpt) (*RealEngine, error) {
	if len(slab) != g.InSize() {
		return nil, fmt.Errorf("pfft: slab length %d, want %d", len(slab), g.InSize())
	}
	if comm.Rank() != g.Rank || comm.Size() != g.P {
		return nil, fmt.Errorf("pfft: comm rank/size %d/%d does not match grid %d/%d", comm.Rank(), comm.Size(), g.Rank, g.P)
	}
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	e := &RealEngine{
		g:      g,
		comm:   comm,
		in:     slab,
		out:    make([]complex128, g.OutSize()),
		planZ:  fft.Plan1DCached(g.Nz, dir, flag).Clone(),
		planY:  fft.Plan1DCached(g.Ny, dir, flag).Clone(),
		planX:  fft.Plan1DCached(g.Nx, dir, flag).Clone(),
		pooled: cfg.pooled,
	}
	if cfg.pooled {
		e.work = getSlab(g.InSize())
	} else {
		e.work = make([]complex128, g.InSize())
	}
	if cfg.workers > 1 {
		e.pool = newKernelPool(cfg.workers)
		e.planZs = fft.Plan1DClones(g.Nz, dir, flag, cfg.workers)
		e.planYs = fft.Plan1DClones(g.Ny, dir, flag, cfg.workers)
		e.planXs = fft.Plan1DClones(g.Nx, dir, flag, cfg.workers)
	}
	e.sendCounts = make([]int, g.P)
	e.recvCounts = make([]int, g.P)
	return e, nil
}

// Reset points the engine at a new input slab so a Plan can execute many
// transforms on one engine. The slab is consumed like NewRealEngine's.
func (e *RealEngine) Reset(slab []complex128) error {
	if len(slab) != e.g.InSize() {
		return fmt.Errorf("pfft: slab length %d, want %d", len(slab), e.g.InSize())
	}
	e.in = slab
	return nil
}

// PresizeSlots grows the communication slot buffers for the expanded
// parameter set so steady-state execution never allocates: W+1 slots, each
// sized for the largest tile (z-length min(T, Nz)).
func (e *RealEngine) PresizeSlots(prm Params) {
	ztl := prm.T
	if ztl > e.g.Nz {
		ztl = e.g.Nz
	}
	for s := 0; s <= prm.W; s++ {
		e.sendBuf(s, ztl)
		e.recvBuf(s, ztl)
	}
}

// Close releases the engine's worker pool and, for arena-backed engines,
// returns the work slab and communication slots to the arena. The output
// slab is untouched: it may still be referenced by the caller.
func (e *RealEngine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
	if !e.pooled {
		return
	}
	putSlab(e.work)
	e.work = nil
	for i, b := range e.sendBufs {
		putSlab(b)
		e.sendBufs[i] = nil
	}
	for i, b := range e.recvBufs {
		putSlab(b)
		e.recvBufs[i] = nil
	}
	e.pooled = false
}

// Grid returns the rank's geometry.
func (e *RealEngine) Grid() layout.Grid { return e.g }

// Comm returns the rank's communicator.
func (e *RealEngine) Comm() mpi.Comm { return e.comm }

// Output returns the rank's output y-slab. Layout is z-y-x, or y-z-x when
// the fast path was used (NEW/NEW-0 with Nx == Ny). The slab is owned by
// the engine: a reused Plan overwrites it on the next execution.
func (e *RealEngine) Output() []complex128 { return e.out }

// FFTz transforms every z row of the input slab in place through the
// batched multi-row engine.
func (e *RealEngine) FFTz() {
	rows := e.g.XC() * e.g.Ny
	if e.pool != nil {
		nz := e.g.Nz
		in := e.in
		e.pool.parallel(rows, func(w, lo, hi int) {
			e.planZs[w].TransformRows(in[lo*nz:hi*nz], hi-lo, nz)
		})
		return
	}
	e.planZ.TransformRows(e.in, rows, e.g.Nz)
}

// Transpose rearranges the slab into the post-FFTz layout. The
// unoptimized variant (TH) uses a deliberately naive element loop instead
// of the cache-blocked kernel, mirroring the paper's observation that TH's
// rearrangement is slower than FFTW's tuned one.
func (e *RealEngine) Transpose(fast, optimized bool) {
	xc, ny, nz := e.g.XC(), e.g.Ny, e.g.Nz
	switch {
	case fast:
		if e.pool != nil {
			e.pool.parallel(xc, func(w, lo, hi int) {
				layout.TransposeXZYRange(e.work, e.in, xc, ny, nz, lo, hi)
			})
			return
		}
		layout.TransposeXZY(e.work, e.in, xc, ny, nz)
	case optimized:
		if e.pool != nil {
			e.pool.parallel(xc, func(w, lo, hi int) {
				layout.TransposeZXYRange(e.work, e.in, xc, ny, nz, lo, hi)
			})
			return
		}
		layout.TransposeZXY(e.work, e.in, xc, ny, nz)
	default:
		// Naive traversal: same result, no cache blocking.
		for lx := 0; lx < xc; lx++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					e.work[(z*xc+lx)*ny+y] = e.in[(lx*ny+y)*nz+z]
				}
			}
		}
	}
}

// FFTySub transforms the y rows of one Pack sub-tile. Rows are grouped
// into the contiguous runs the slab layout provides — fast layout
// (x-z-y): the z rows of one lx are adjacent; standard layout (z-x-y):
// the lx rows of one z are adjacent — and each run goes through the
// batched multi-row engine. Worker-pool chunks split over runs, still
// entirely inside this one sub-tile call, so the MPI_Test cadence around
// it is unchanged.
func (e *RealEngine) FFTySub(fast bool, zt0, z0, z1, x0, x1 int) {
	ny := e.g.Ny
	if fast {
		if e.pool != nil {
			e.pool.parallel(x1-x0, func(w, lo, hi int) {
				p := e.planYs[w]
				for lx := x0 + lo; lx < x0+hi; lx++ {
					base := e.g.RowYBase(fast, zt0+z0, lx)
					p.TransformRows(e.work[base:], z1-z0, ny)
				}
			})
			return
		}
		for lx := x0; lx < x1; lx++ {
			base := e.g.RowYBase(fast, zt0+z0, lx)
			e.planY.TransformRows(e.work[base:], z1-z0, ny)
		}
		return
	}
	if e.pool != nil {
		e.pool.parallel(z1-z0, func(w, lo, hi int) {
			p := e.planYs[w]
			for z := zt0 + z0 + lo; z < zt0+z0+hi; z++ {
				base := e.g.RowYBase(fast, z, x0)
				p.TransformRows(e.work[base:], x1-x0, ny)
			}
		})
		return
	}
	for z := zt0 + z0; z < zt0+z1; z++ {
		base := e.g.RowYBase(fast, z, x0)
		e.planY.TransformRows(e.work[base:], x1-x0, ny)
	}
}

// PackSub packs one sub-tile into the slot's send buffer.
func (e *RealEngine) PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int) {
	buf := e.sendBuf(slot, ztl)
	if e.pool != nil {
		e.pool.parallel(e.g.P, func(w, r0, r1 int) {
			e.g.PackSubtileRanks(buf, e.work, fast, zt0, ztl, x0, x1, z0, z1, r0, r1)
		})
		return
	}
	e.g.PackSubtile(buf, e.work, fast, zt0, ztl, x0, x1, z0, z1)
}

// PostTile starts the non-blocking all-to-all for the slot's tile.
func (e *RealEngine) PostTile(slot int, ztl int) mpi.Request {
	e.g.SendCounts(ztl, e.sendCounts)
	e.g.RecvCounts(ztl, e.recvCounts)
	return e.comm.Ialltoallv(e.sendBuf(slot, ztl), e.sendCounts, e.recvBuf(slot, ztl), e.recvCounts)
}

// AlltoallTile performs the blocking all-to-all for the slot's tile.
func (e *RealEngine) AlltoallTile(slot int, ztl int) {
	e.g.SendCounts(ztl, e.sendCounts)
	e.g.RecvCounts(ztl, e.recvCounts)
	e.comm.Alltoallv(e.sendBuf(slot, ztl), e.sendCounts, e.recvBuf(slot, ztl), e.recvCounts)
}

// UnpackSub unpacks one sub-tile from the slot's receive buffer into the
// output slab.
func (e *RealEngine) UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int) {
	buf := e.recvBuf(slot, ztl)
	if e.pool != nil {
		e.pool.parallel(e.g.P, func(w, s0, s1 int) {
			e.g.UnpackSubtileRanks(e.out, buf, fast, zt0, ztl, y0, y1, z0, z1, s0, s1)
		})
		return
	}
	e.g.UnpackSubtile(e.out, buf, fast, zt0, ztl, y0, y1, z0, z1)
}

// FFTxSub transforms the x rows of one Unpack sub-tile, batched over the
// output layout's contiguous runs — fast layout (y-z-x): the z rows of one
// ly are adjacent; standard layout (z-y-x): the ly rows of one z are
// adjacent. Pool chunks split over runs inside this one call (see
// FFTySub for the Test-cadence argument).
func (e *RealEngine) FFTxSub(fast bool, zt0, z0, z1, y0, y1 int) {
	nx := e.g.Nx
	if fast {
		if e.pool != nil {
			e.pool.parallel(y1-y0, func(w, lo, hi int) {
				p := e.planXs[w]
				for ly := y0 + lo; ly < y0+hi; ly++ {
					base := e.g.RowXBase(fast, ly, zt0+z0)
					p.TransformRows(e.out[base:], z1-z0, nx)
				}
			})
			return
		}
		for ly := y0; ly < y1; ly++ {
			base := e.g.RowXBase(fast, ly, zt0+z0)
			e.planX.TransformRows(e.out[base:], z1-z0, nx)
		}
		return
	}
	if e.pool != nil {
		e.pool.parallel(z1-z0, func(w, lo, hi int) {
			p := e.planXs[w]
			for z := zt0 + z0 + lo; z < zt0+z0+hi; z++ {
				base := e.g.RowXBase(fast, y0, z)
				p.TransformRows(e.out[base:], y1-y0, nx)
			}
		})
		return
	}
	for z := zt0 + z0; z < zt0+z1; z++ {
		base := e.g.RowXBase(fast, y0, z)
		e.planX.TransformRows(e.out[base:], y1-y0, nx)
	}
}

// sendBuf returns slot's send buffer sized for a tile of z-length ztl,
// growing the slot lazily.
func (e *RealEngine) sendBuf(slot, ztl int) []complex128 {
	for len(e.sendBufs) <= slot {
		e.sendBufs = append(e.sendBufs, nil)
	}
	n := e.g.SendBufLen(ztl)
	if cap(e.sendBufs[slot]) < n {
		if e.pooled {
			putSlab(e.sendBufs[slot])
			e.sendBufs[slot] = getSlab(n)
		} else {
			e.sendBufs[slot] = make([]complex128, n)
		}
	}
	return e.sendBufs[slot][:n]
}

func (e *RealEngine) recvBuf(slot, ztl int) []complex128 {
	for len(e.recvBufs) <= slot {
		e.recvBufs = append(e.recvBufs, nil)
	}
	n := e.g.RecvBufLen(ztl)
	if cap(e.recvBufs[slot]) < n {
		if e.pooled {
			putSlab(e.recvBufs[slot])
			e.recvBufs[slot] = getSlab(n)
		} else {
			e.recvBufs[slot] = make([]complex128, n)
		}
	}
	return e.recvBufs[slot][:n]
}
