package pfft

import (
	"math/cmplx"
	"sync"
	"testing"
	"time"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/fault"
	"offt/internal/mpi/mem"
)

func TestChaosForwardBackward64(t *testing.T) {
	const n, p = 64, 8
	full := randCube(n, n, n, 2026)
	want := serialReference(full, n, n, n)
	plan := &fault.Plan{Seed: 2026, DropRate: 0.015, CorruptRate: 0.01, DupRate: 0.01, JitterNs: 50_000}
	w := mem.NewWorld(p, mem.WithFaults(plan), mem.WithRetransmitTimeout(time.Millisecond))
	outs := make([][]complex128, p)
	var sum Breakdown
	var mu sync.Mutex
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *mem.Comm) {
			g, err := layout.NewGrid(n, n, n, p, c.Rank())
			if err != nil {
				panic(err)
			}
			orig := layout.ScatterX(full, g)
			slab := append([]complex128(nil), orig...)
			prm := DefaultParams(g)
			out, bf, err := Forward3D(c, g, slab, NEW, prm, fft.Estimate)
			if err != nil {
				panic(err)
			}
			fwd := append([]complex128(nil), out...)
			back, bb, err := Backward3D(c, g, out, NEW, prm, fft.Estimate)
			if err != nil {
				panic(err)
			}
			// Unnormalized round trip: compare against N·orig.
			scale := complex(float64(n*n*n), 0)
			worst := 0.0
			for i := range back {
				if d := cmplx.Abs(back[i] - scale*orig[i]); d > worst {
					worst = d
				}
			}
			if worst/float64(n*n*n) > 1e-12 {
				t.Errorf("rank %d: round-trip max error %g beyond 1e-12", c.Rank(), worst/float64(n*n*n))
			}
			mu.Lock()
			outs[c.Rank()] = fwd
			sum.Add(bf)
			sum.Add(bb)
			mu.Unlock()
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("world failed under chaos: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos run did not complete within the bound")
	}
	g0, _ := layout.NewGrid(n, n, n, p, 0)
	got := layout.GatherY(outs, n, n, n, p, OutputFast(NEW, g0))
	if e := maxErr(got, want); e > 1e-12 {
		t.Errorf("forward max relative error %g under chaos, want ≤ 1e-12", e)
	}
	h := w.Health()
	if h.DropsInjected < 1 || h.CorruptionsInjected < 1 {
		t.Errorf("plan injected drops=%d corruptions=%d, want ≥ 1 each", h.DropsInjected, h.CorruptionsInjected)
	}
	if h.Retransmits < 1 {
		t.Errorf("Retransmits = %d, want ≥ 1 (self-healing transport must have recovered something)", h.Retransmits)
	}
	if h.CorruptionsDetected < h.CorruptionsInjected {
		t.Errorf("checksum missed corruption: detected %d < injected %d", h.CorruptionsDetected, h.CorruptionsInjected)
	}
	if sum.Downgrades != 0 {
		t.Logf("note: %d ranks downgraded to blocking under chaos (allowed)", sum.Downgrades)
	}
}

// TestChaosStallDowngrades pins one rank's NIC offline past the soft wait
// deadline: at least one rank must downgrade overlapped→blocking, and the
// transform must still be bit-correct to serial tolerance.
func TestChaosStallDowngrades(t *testing.T) {
	const n, p = 32, 4
	full := randCube(n, n, n, 11)
	want := serialReference(full, n, n, n)
	plan := &fault.Plan{Seed: 11, Stalls: []fault.RankStall{{Rank: 1, At: 0, Dur: int64(40 * time.Millisecond)}}}
	w := mem.NewWorld(p, mem.WithFaults(plan), mem.WithDeadline(2*time.Millisecond))
	outs := make([][]complex128, p)
	var sum Breakdown
	var mu sync.Mutex
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(n, n, n, p, c.Rank())
		if err != nil {
			panic(err)
		}
		slab := layout.ScatterX(full, g)
		out, b, err := Forward3D(c, g, slab, NEW, DefaultParams(g), fft.Estimate)
		if err != nil {
			panic(err)
		}
		mu.Lock()
		outs[c.Rank()] = out
		sum.Add(b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	if sum.Downgrades < 1 {
		t.Errorf("Downgrades = %d, want ≥ 1 under a 40ms stall vs 2ms deadline", sum.Downgrades)
	}
	g0, _ := layout.NewGrid(n, n, n, p, 0)
	got := layout.GatherY(outs, n, n, n, p, OutputFast(NEW, g0))
	if e := maxErr(got, want); e > tol {
		t.Errorf("max relative error %g after downgrade, want ≤ %g", e, tol)
	}
}

// TestChaosProfilesQuick runs the canonical profiles at small scale: every
// profile must complete correctly.
func TestChaosProfilesQuick(t *testing.T) {
	const n, p = 16, 4
	full := randCube(n, n, n, 3)
	want := serialReference(full, n, n, n)
	for _, profile := range fault.Profiles() {
		for _, seed := range []int64{1, 9} {
			plan, err := fault.NewPlan(seed, profile, p)
			if err != nil {
				t.Fatal(err)
			}
			w := mem.NewWorld(p,
				mem.WithFaults(plan),
				mem.WithRetransmitTimeout(time.Millisecond),
				mem.WithDeadline(2*time.Millisecond))
			outs := make([][]complex128, p)
			var mu sync.Mutex
			err = w.Run(func(c *mem.Comm) {
				g, gerr := layout.NewGrid(n, n, n, p, c.Rank())
				if gerr != nil {
					panic(gerr)
				}
				slab := layout.ScatterX(full, g)
				out, _, ferr := Forward3D(c, g, slab, NEW, DefaultParams(g), fft.Estimate)
				if ferr != nil {
					panic(ferr)
				}
				mu.Lock()
				outs[c.Rank()] = out
				mu.Unlock()
			})
			if err != nil {
				t.Fatalf("profile %s seed %d: %v", profile, seed, err)
			}
			g0, _ := layout.NewGrid(n, n, n, p, 0)
			got := layout.GatherY(outs, n, n, n, p, OutputFast(NEW, g0))
			if e := maxErr(got, want); e > tol {
				t.Errorf("profile %s seed %d: max relative error %g", profile, seed, e)
			}
		}
	}
}

// TestNoFaultsNoDowngrade: with no plan attached, the overlapped pipeline
// must not downgrade and the transport must report no recovery activity.
func TestNoFaultsNoDowngrade(t *testing.T) {
	const n, p = 16, 4
	full := randCube(n, n, n, 5)
	w := mem.NewWorld(p)
	var sum Breakdown
	var mu sync.Mutex
	err := w.Run(func(c *mem.Comm) {
		g, gerr := layout.NewGrid(n, n, n, p, c.Rank())
		if gerr != nil {
			panic(gerr)
		}
		slab := layout.ScatterX(full, g)
		_, b, ferr := Forward3D(c, g, slab, NEW, DefaultParams(g), fft.Estimate)
		if ferr != nil {
			panic(ferr)
		}
		mu.Lock()
		sum.Add(b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Downgrades != 0 {
		t.Errorf("Downgrades = %d without faults, want 0", sum.Downgrades)
	}
	h := w.Health()
	if h.Retransmits != 0 || h.DropsInjected != 0 || h.Dedups != 0 {
		t.Errorf("fault-free world reported recovery activity: %+v", h)
	}
}

// TestTraceRecordsDowngrade: a traced run under a stall must record the
// Downgrade event with the triggering tile on at least one rank.
func TestTraceRecordsDowngrade(t *testing.T) {
	const n, p = 16, 4
	full := randCube(n, n, n, 13)
	plan := &fault.Plan{Seed: 13, Stalls: []fault.RankStall{{Rank: 0, At: 0, Dur: int64(30 * time.Millisecond)}}}
	w := mem.NewWorld(p, mem.WithFaults(plan), mem.WithDeadline(2*time.Millisecond))
	traces := make([][]StepEvent, p)
	err := w.Run(func(c *mem.Comm) {
		g, gerr := layout.NewGrid(n, n, n, p, c.Rank())
		if gerr != nil {
			panic(gerr)
		}
		prm := DefaultParams(g)
		inner, ierr := NewRealEngine(g, c, layout.ScatterX(full, g), fft.Forward, fft.Estimate)
		if ierr != nil {
			panic(ierr)
		}
		te := NewTraceEngine(inner, prm)
		if _, rerr := Run(te, NEW, prm); rerr != nil {
			panic(rerr)
		}
		traces[c.Rank()] = te.Events()
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for r, evs := range traces {
		for _, e := range evs {
			if e.Name == "Downgrade" {
				found = true
				if e.Tile < 0 {
					t.Errorf("rank %d: Downgrade event without a tile index", r)
				}
			}
		}
	}
	if !found {
		t.Error("no Downgrade event recorded on any rank")
	}
}
