package pfft

import (
	"offt/internal/layout"
	"offt/internal/mpi"
)

// runOverlapped is Algorithm 1: the pipelined loop overlapping FFTy+Pack
// and Unpack+FFTx on some tiles with the non-blocking all-to-all on others.
// Iteration i packs tile i, waits for tile i−W, posts tile i, and unpacks
// tile i−W, so at most W tiles have communication in flight.
//
// On a misbehaving transport — a tile wait missing its soft deadline, or
// persistent retransmission pressure — the loop downgrades: the remaining
// tiles run on the blocking per-tile path (see downgradeForward), which
// still produces the numerically identical transform because both paths
// issue exactly one all-to-all per tile in tile order, so the collective
// sequence numbers keep matching even when only some ranks downgrade.
func runOverlapped(rs *runState, e Engine, prm Params, fast bool, b *Breakdown) {
	g := e.Grid()
	c := e.Comm()
	tl, err := layout.NewTiling(g.Nz, prm.T)
	if err != nil {
		panic(err) // unreachable: Validate checked T
	}
	k := tl.NumTiles()
	w := prm.W
	slots := w + 1
	rs.reset(c, k)
	reqs := rs.reqs
	mon := &rs.mon

	rec := recOf(c)

	for i := 0; i < k+w; i++ {
		if i < k {
			// Test targets during FFTy+Pack: the W previous tiles (Alg. 2).
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			fftyPack(e, c, g, prm, tl, i, i%slots, fast, reqs[lo:i], b)
		}
		if i >= w {
			t := c.Now()
			ok := mon.WaitTile(c, reqs[i-w])
			now := c.Now()
			b.Wait += now - t
			rec.add("Wait", t, now, i-w)
			if !ok {
				downgradeForward(e, prm, fast, tl, reqs, i, b)
				return
			}
		}
		if i < k {
			t := c.Now()
			reqs[i] = e.PostTile(i%slots, tl.TileLen(i))
			now := c.Now()
			b.Ialltoall += now - t
			rec.add("Ialltoall", t, now, i)
		}
		if i >= w {
			// Test targets during Unpack+FFTx: the W next tiles already
			// posted (Alg. 3).
			j := i - w
			hi := j + w + 1
			if hi > k {
				hi = k
			}
			if i+1 < hi {
				hi = i + 1
			}
			unpackFFTx(e, c, g, prm, tl, j, j%slots, fast, reqs[j+1:hi], b)
		}
	}
}

// downgradeForward finishes the transform on the blocking path after the
// overlapped loop gave up at iteration i (while waiting on tile i−W). At
// that point tiles < i−W are fully done, tiles i−W..min(i,k)−1 are posted
// but not unpacked, tile i (when i < k) is packed but not posted, and
// later tiles are untouched. The drain keeps one collective per tile in
// tile order so sequence numbers stay aligned with ranks that did not
// downgrade, and plain Wait is safe here: soft deadlines leave requests
// valid and the self-healing transport still converges.
func downgradeForward(e Engine, prm Params, fast bool, tl layout.Tiling, reqs []mpi.Request, i int, b *Breakdown) {
	g := e.Grid()
	c := e.Comm()
	rec := recOf(c)
	k := tl.NumTiles()
	w := prm.W
	slots := w + 1
	noteDowngrade(e, i-w)
	b.Downgrades++
	hi := i
	if hi > k {
		hi = k
	}
	for j := i - w; j < hi; j++ {
		t := c.Now()
		c.Wait(reqs[j])
		now := c.Now()
		b.Wait += now - t
		rec.add("Wait", t, now, j)
		unpackFFTx(e, c, g, prm, tl, j, j%slots, fast, nil, b)
	}
	if i < k {
		t := c.Now()
		e.AlltoallTile(i%slots, tl.TileLen(i))
		now := c.Now()
		b.Wait += now - t
		rec.add("Alltoall", t, now, i)
		unpackFFTx(e, c, g, prm, tl, i, i%slots, fast, nil, b)
	}
	for j := i + 1; j < k; j++ {
		fftyPack(e, c, g, prm, tl, j, j%slots, fast, nil, b)
		t := c.Now()
		e.AlltoallTile(j%slots, tl.TileLen(j))
		now := c.Now()
		b.Wait += now - t
		rec.add("Alltoall", t, now, j)
		unpackFFTx(e, c, g, prm, tl, j, j%slots, fast, nil, b)
	}
}

// runBlocking is the non-overlapped path shared by Baseline, NEW-0 and
// TH-0: per tile, FFTy+Pack, a blocking all-to-all, then Unpack+FFTx. The
// Baseline uses a single tile spanning the whole slab (one big
// MPI_Alltoall, like FFTW).
func runBlocking(e Engine, prm Params, fast bool, b *Breakdown) {
	g := e.Grid()
	c := e.Comm()
	rec := recOf(c)
	tl, err := layout.NewTiling(g.Nz, prm.T)
	if err != nil {
		panic(err)
	}
	for i := 0; i < tl.NumTiles(); i++ {
		fftyPack(e, c, g, prm, tl, i, 0, fast, nil, b)
		t := c.Now()
		e.AlltoallTile(0, tl.TileLen(i))
		now := c.Now()
		b.Wait += now - t
		rec.add("Alltoall", t, now, i)
		unpackFFTx(e, c, g, prm, tl, i, 0, fast, nil, b)
	}
}

// fftyPack is Algorithm 2: loop-tiled FFTy and Pack over one communication
// tile, with Fy Test calls distributed across the FFTy portions and Fp
// across the Pack portions.
func fftyPack(e Engine, c mpi.Comm, g layout.Grid, prm Params, tl layout.Tiling, tile, slot int, fast bool, window []mpi.Request, b *Breakdown) {
	zt0, ztl := tl.TileStart(tile), tl.TileLen(tile)
	nSub := layout.NumSubTiles(ztl, prm.Pz) * layout.NumSubTiles(g.XC(), prm.Px)
	rec := recOf(c)
	u := 0
	layout.SubTiles(ztl, prm.Pz, func(z0, z1 int) {
		layout.SubTiles(g.XC(), prm.Px, func(x0, x1 int) {
			t := c.Now()
			e.FFTySub(fast, zt0, z0, z1, x0, x1)
			now := c.Now()
			b.FFTy += now - t
			rec.add("FFTy", t, now, tile)
			doTests(c, window, testsDue(prm.Fy, u, nSub), b)
			t = c.Now()
			e.PackSub(slot, fast, zt0, ztl, z0, z1, x0, x1)
			now = c.Now()
			b.Pack += now - t
			rec.add("Pack", t, now, tile)
			doTests(c, window, testsDue(prm.Fp, u, nSub), b)
			u++
		})
	})
}

// unpackFFTx is Algorithm 3: loop-tiled Unpack and FFTx over one
// communication tile, with Fu Test calls during Unpack portions and Fx
// during FFTx portions.
func unpackFFTx(e Engine, c mpi.Comm, g layout.Grid, prm Params, tl layout.Tiling, tile, slot int, fast bool, window []mpi.Request, b *Breakdown) {
	zt0, ztl := tl.TileStart(tile), tl.TileLen(tile)
	nSub := layout.NumSubTiles(ztl, prm.Uz) * layout.NumSubTiles(g.YC(), prm.Uy)
	rec := recOf(c)
	u := 0
	layout.SubTiles(ztl, prm.Uz, func(z0, z1 int) {
		layout.SubTiles(g.YC(), prm.Uy, func(y0, y1 int) {
			t := c.Now()
			e.UnpackSub(slot, fast, zt0, ztl, z0, z1, y0, y1)
			now := c.Now()
			b.Unpack += now - t
			rec.add("Unpack", t, now, tile)
			doTests(c, window, testsDue(prm.Fu, u, nSub), b)
			t = c.Now()
			e.FFTxSub(fast, zt0, z0, z1, y0, y1)
			now = c.Now()
			b.FFTx += now - t
			rec.add("FFTx", t, now, tile)
			doTests(c, window, testsDue(prm.Fx, u, nSub), b)
			u++
		})
	})
}

// testsDue spreads f Test calls evenly over n units: it returns how many
// are due right after unit u.
func testsDue(f, u, n int) int {
	if n <= 0 {
		return 0
	}
	return f*(u+1)/n - f*u/n
}

// doTests issues n MPI_Test calls over the window of active requests,
// accounting the time to the Test bucket. Under a tracing communicator
// the polls go through the inner communicator and the whole burst is
// recorded as one event reusing the Breakdown's two timestamps, so
// traced polling reads the clock exactly as often as untraced polling.
func doTests(c mpi.Comm, window []mpi.Request, n int, b *Breakdown) {
	if len(window) == 0 || n <= 0 {
		return
	}
	tc, traced := c.(*traceComm)
	if traced {
		c = tc.Comm
	}
	t := c.Now()
	for j := 0; j < n; j++ {
		c.Test(window...)
	}
	now := c.Now()
	b.Test += now - t
	if traced {
		tc.rec.addTestBurst(t, now)
	}
}
