package pfft

import (
	"testing"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/mem"
	"offt/internal/telemetry"
)

func TestOverlapEfficiency(t *testing.T) {
	cases := []struct {
		name string
		b    Breakdown
		want float64
	}{
		{"zero comm", Breakdown{FFTy: 100, Pack: 50, Unpack: 50, FFTx: 100}, 1.0},
		{"fully hidden (zero everything)", Breakdown{}, 1.0},
		{"only visible comm", Breakdown{Wait: 200, Ialltoall: 50}, 0.0},
		{"half hidden", Breakdown{FFTy: 100, Wait: 100}, 0.5},
		{"mixed", Breakdown{FFTy: 60, Pack: 20, Unpack: 10, FFTx: 10, Ialltoall: 10, Wait: 80, Test: 10}, 0.5},
	}
	for _, c := range cases {
		if got := c.b.OverlapEfficiency(); got != c.want {
			t.Errorf("%s: OverlapEfficiency() = %v, want %v", c.name, got, c.want)
		}
	}
}

// planTraces runs fwd+bwd (or fwd only) through a traced Plan on a mem
// world and returns the per-rank traces of the last executed direction.
func planTraces(t *testing.T, nx, p int, v Variant, backward bool) [][]StepEvent {
	t.Helper()
	full := randCube(nx, nx, nx, 7)
	want := serialReference(full, nx, nx, nx)
	w := mem.NewWorld(p)
	outs := make([][]complex128, p)
	traces := make([][]StepEvent, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, nx, nx, p, c.Rank())
		if err != nil {
			panic(err)
		}
		prm := DefaultParams(g)
		pl, err := NewPlan(c, g, v, prm, fft.Estimate, WithTrace())
		if err != nil {
			panic(err)
		}
		defer pl.Close()
		in := append([]complex128(nil), layout.ScatterX(full, g)...)
		out, _, err := pl.Forward(in)
		if err != nil {
			panic(err)
		}
		if backward {
			mid := append([]complex128(nil), out...)
			if out, _, err = pl.Backward(mid); err != nil {
				panic(err)
			}
		}
		outs[c.Rank()] = append([]complex128(nil), out...)
		traces[c.Rank()] = append([]StepEvent(nil), pl.Trace()...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !backward {
		g0, _ := layout.NewGrid(nx, nx, nx, p, 0)
		got := layout.GatherY(outs, nx, nx, nx, p, OutputFast(v, g0))
		if e := maxErr(got, want); e > tol {
			t.Fatalf("traced plan changed the forward result: %g", e)
		}
	}
	return traces
}

// TestPlanTraceBackward covers the trace recorder on the backward
// (overlapped) path: every inverse pipeline step must appear, the
// all-to-all posts must carry tile indices, and post→wait flow pairing
// must hold.
func TestPlanTraceBackward(t *testing.T) {
	traces := planTraces(t, 8, 2, NEW, true)
	ev := traces[0]
	if len(ev) == 0 {
		t.Fatal("no backward events recorded")
	}
	seen := map[string]bool{}
	postTiles, waitTiles := map[int]bool{}, map[int]bool{}
	for i, e := range ev {
		seen[e.Name] = true
		if e.End < e.Start {
			t.Errorf("event %d (%s): end before start", i, e.Name)
		}
		switch e.Name {
		case "Ialltoall":
			if e.Tile < 0 {
				t.Errorf("backward Ialltoall event missing tile attribution")
			}
			postTiles[e.Tile] = true
		case "Wait":
			if e.Tile >= 0 {
				waitTiles[e.Tile] = true
			}
		}
	}
	for _, name := range []string{"FFTx", "Pack", "Ialltoall", "Wait", "Unpack", "FFTy", "Transpose", "FFTz"} {
		if !seen[name] {
			t.Errorf("backward trace missing %s event", name)
		}
	}
	for tile := range postTiles {
		if !waitTiles[tile] {
			t.Errorf("posted tile %d has no matching wait", tile)
		}
	}
	tl := TraceTimeline(traces)
	if len(tl.Flows) == 0 {
		t.Error("backward timeline has no post→wait flows")
	}
	for _, f := range tl.Flows {
		if f.ToTs < f.FromTs {
			t.Errorf("flow %d finishes before it starts", f.ID)
		}
	}
}

// TestPlanTraceBlocking covers the trace recorder on the blocking path:
// the Baseline variant must record Alltoall collectives (no non-blocking
// posts, no waits) around the same kernel steps.
func TestPlanTraceBlocking(t *testing.T) {
	traces := planTraces(t, 8, 2, Baseline, false)
	ev := traces[0]
	if len(ev) == 0 {
		t.Fatal("no blocking events recorded")
	}
	seen := map[string]bool{}
	for _, e := range ev {
		seen[e.Name] = true
	}
	if !seen["Alltoall"] {
		t.Error("blocking trace missing Alltoall event")
	}
	if seen["Ialltoall"] || seen["Wait"] {
		t.Error("blocking trace must not contain non-blocking post/wait events")
	}
	for _, name := range []string{"FFTz", "Transpose", "FFTy", "Pack", "Unpack", "FFTx"} {
		if !seen[name] {
			t.Errorf("blocking trace missing %s event", name)
		}
	}
}

// TestPlanTraceBackwardBlocking covers the backward engine's blocking
// pipeline (runBlocking) under trace.
func TestPlanTraceBackwardBlocking(t *testing.T) {
	traces := planTraces(t, 8, 2, Baseline, true)
	seen := map[string]bool{}
	for _, e := range traces[0] {
		seen[e.Name] = true
	}
	if !seen["Alltoall"] {
		t.Error("backward blocking trace missing Alltoall event")
	}
	for _, name := range []string{"FFTx", "Pack", "Unpack", "FFTy", "Transpose", "FFTz"} {
		if !seen[name] {
			t.Errorf("backward blocking trace missing %s event", name)
		}
	}
}

func TestPlanTelemetryObserves(t *testing.T) {
	nx, p := 8, 2
	full := randCube(nx, nx, nx, 11)
	reg := telemetry.NewRegistry()
	w := mem.NewWorld(p)
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, nx, nx, p, c.Rank())
		if err != nil {
			panic(err)
		}
		pl, err := NewPlan(c, g, NEW, DefaultParams(g), fft.Estimate, WithTelemetry(reg))
		if err != nil {
			panic(err)
		}
		defer pl.Close()
		in := append([]complex128(nil), layout.ScatterX(full, g)...)
		if _, _, err := pl.Forward(in); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if h := s.Histograms["pfft.total_ns"]; h.Count != int64(p) {
		t.Fatalf("pfft.total_ns count = %d, want %d", h.Count, p)
	}
	if h := s.Histograms["pfft.step.wait_ns"]; h.Count != int64(p) {
		t.Fatalf("pfft.step.wait_ns count = %d, want %d", h.Count, p)
	}
	eff, ok := s.Gauges["pfft.overlap_efficiency"]
	if !ok {
		t.Fatal("overlap efficiency gauge not set")
	}
	if eff < 0 || eff > 1 {
		t.Fatalf("overlap efficiency %v out of [0,1]", eff)
	}
}

func TestBreakdownObserverNil(t *testing.T) {
	var o *BreakdownObserver
	o.Observe(Breakdown{FFTz: 1}) // must not panic
	if got := NewBreakdownObserver(nil, "pfft"); got != nil {
		t.Fatalf("nil registry must yield nil observer, got %v", got)
	}
}
