package pfft

import (
	"strings"
	"testing"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi/mem"
)

func TestTraceEngineRecordsAndPreservesResult(t *testing.T) {
	nx, p := 12, 3
	full := randCube(nx, nx, nx, 31)
	want := serialReference(full, nx, nx, nx)

	w := mem.NewWorld(p)
	outs := make([][]complex128, p)
	traces := make([][]StepEvent, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, nx, nx, p, c.Rank())
		if err != nil {
			panic(err)
		}
		prm := DefaultParams(g)
		inner, err := NewRealEngine(g, c, layout.ScatterX(full, g), fft.Forward, fft.Estimate)
		if err != nil {
			panic(err)
		}
		te := NewTraceEngine(inner, prm)
		if _, err := Run(te, NEW, prm); err != nil {
			panic(err)
		}
		outs[c.Rank()] = inner.Output()
		traces[c.Rank()] = te.Events()
	})
	if err != nil {
		t.Fatal(err)
	}
	g0, _ := layout.NewGrid(nx, nx, nx, p, 0)
	got := layout.GatherY(outs, nx, nx, nx, p, OutputFast(NEW, g0))
	if e := maxErr(got, want); e > tol {
		t.Fatalf("traced run changed the result: %g", e)
	}

	ev := traces[0]
	if len(ev) == 0 {
		t.Fatal("no events recorded")
	}
	// Every pipeline step must appear, intervals must be well-formed and
	// non-decreasing in start order per append sequence.
	seen := map[string]bool{}
	for i, e := range ev {
		seen[e.Name] = true
		if e.End < e.Start {
			t.Errorf("event %d (%s): end before start", i, e.Name)
		}
	}
	for _, name := range []string{"FFTz", "Transpose", "FFTy", "Pack", "Ialltoall", "Wait", "Unpack", "FFTx"} {
		if !seen[name] {
			t.Errorf("missing %s event", name)
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	events := []StepEvent{
		{Name: "FFTy", Start: 0, End: 50, Tile: 0},
		{Name: "Wait", Start: 50, End: 100, Tile: -1},
		{Name: "FFTy", Start: 100, End: 150, Tile: 1},
	}
	var sb strings.Builder
	RenderTimeline(&sb, events, 60)
	out := sb.String()
	if !strings.Contains(out, "FFTy") || !strings.Contains(out, "Wait") {
		t.Errorf("timeline missing rows:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("timeline missing tile marks:\n%s", out)
	}
	// Degenerate inputs must not panic.
	RenderTimeline(&sb, nil, 60)
	RenderTimeline(&sb, events, 5)
}
