package pfft

import (
	"math/bits"
	"sync"
)

// slabPools is a size-classed arena for complex128 slabs: class c holds
// slices with cap exactly 1<<c. Engines on the many-transform path borrow
// their work and slot buffers here so repeated plan construction stops
// hitting the allocator; a long-lived Plan holds its buffers for its whole
// lifetime and only returns them on Close.
var slabPools [48]sync.Pool

// getSlab returns a zero-filled-or-dirty slab of length n (callers must
// treat the contents as undefined) backed by the arena.
func getSlab(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if v := slabPools[c].Get(); v != nil {
		return (*(v.(*[]complex128)))[:n]
	}
	return make([]complex128, n, 1<<c)
}

// putSlab returns a slab obtained from getSlab to the arena. Slabs whose
// capacity is not an exact power of two (not arena-born) are dropped.
func putSlab(s []complex128) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	s = s[:c]
	slabPools[bits.Len(uint(c))-1].Put(&s)
}

// span is one contiguous chunk of a parallel kernel call: run fn(w, lo, hi)
// and signal wg. w is the chunk index, unique among the chunks of one call,
// so per-worker scratch (1-D plan clones) indexed by w is never shared.
type span struct {
	fn     func(w, lo, hi int)
	w      int
	lo, hi int
	wg     *sync.WaitGroup
}

// kernelPool fans the intra-rank tile kernels (FFTy/Pack/Unpack/FFTx
// sub-tiles, FFTz rows, transpose planes) across a bounded set of worker
// goroutines. The parallelism lives entirely inside one Engine sub-tile
// call, between two doTests calls, so the tuned Fy/Fp/Fu/Fx manual
// progression cadence is unchanged: Test still fires exactly where
// Algorithms 2–3 place it, just after a sub-tile that completed faster.
type kernelPool struct {
	workers int
	jobs    chan span
}

// newKernelPool returns a pool with workers-1 spawned goroutines (the
// caller is the remaining worker), or nil when workers <= 1 so engines can
// branch to allocation-free serial code.
func newKernelPool(workers int) *kernelPool {
	if workers <= 1 {
		return nil
	}
	p := &kernelPool{workers: workers, jobs: make(chan span, workers)}
	for i := 0; i < workers-1; i++ {
		go func() {
			for sp := range p.jobs {
				sp.fn(sp.w, sp.lo, sp.hi)
				sp.wg.Done()
			}
		}()
	}
	return p
}

// parallel splits [0, n) into at most p.workers contiguous chunks and runs
// fn(w, lo, hi) on each, chunk 0 on the caller. It returns when every chunk
// is done. Chunk indices stay below p.workers, matching per-worker scratch
// arrays of that length.
func (p *kernelPool) parallel(n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	k := p.workers
	if k > n {
		k = n
	}
	chunk := (n + k - 1) / k
	if k == 1 || chunk >= n {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	w := 1
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.jobs <- span{fn, w, lo, hi, &wg}
		w++
	}
	fn(0, 0, chunk)
	wg.Wait()
}

// Close stops the pool's goroutines. The pool must be idle.
func (p *kernelPool) Close() {
	if p != nil {
		close(p.jobs)
	}
}
