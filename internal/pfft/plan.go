package pfft

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
	"offt/internal/telemetry"
)

// PlanOpt configures a Plan.
type PlanOpt func(*planConfig)

type planConfig struct {
	workers int
	pooled  bool
	reg     *telemetry.Registry
	trace   bool
}

// WithWorkers fans the plan's intra-rank kernels across n goroutines per
// rank. n <= 1 (the default) keeps the serial, allocation-free path.
func WithWorkers(n int) PlanOpt {
	return func(c *planConfig) { c.workers = n }
}

// WithArena sources the plan's scratch buffers from the package slab
// arena, so short-lived plans recycle slabs instead of re-allocating.
func WithArena() PlanOpt {
	return func(c *planConfig) { c.pooled = true }
}

// WithTelemetry feeds per-execution step histograms, the derived
// overlap-efficiency gauge and the downgrade counter into r (metric names
// under "pfft."). A nil registry keeps telemetry off; the execution path
// then pays only a nil check.
func WithTelemetry(r *telemetry.Registry) PlanOpt {
	return func(c *planConfig) { c.reg = r }
}

// WithTrace records a StepEvent timeline of each execution, readable via
// Trace after Forward/Backward. Tracing wraps every kernel and Wait/Test
// call with clock reads, so it is for timeline capture, not for steady-
// state benchmarking.
func WithTrace() PlanOpt {
	return func(c *planConfig) { c.trace = true }
}

// Plan is a create-once / execute-many distributed 3-D FFT for one rank:
// it pre-sizes every communication slot and scratch slab, memoizes the 1-D
// plans and twiddles, and keeps the pipelined loop's request window and
// fault monitor across executions, so the steady state performs zero
// amortized heap allocations. Every rank of the communicator must hold a
// Plan with identical variant/parameters and execute the same sequence of
// Forward/Backward calls (SPMD).
//
// Buffer ownership: the slab passed to Forward/Backward is consumed
// (overwritten) during the call; the returned slice is owned by the Plan
// and is valid only until the next execution. Callers that need the result
// past that point must copy it.
type Plan struct {
	g    layout.Grid
	comm mpi.Comm
	v    Variant
	prm  Params // expanded parameter set actually executed
	flag fft.Flag
	cfg  planConfig

	fwd *RealEngine
	bwd *backEngine // lazily built on first Backward
	rs  runState    // forward pipeline scratch
	brs runState    // backward pipeline scratch

	trc  *traceRec          // shared step recorder, nil unless WithTrace
	tfwd *TraceEngine       // tracing wrapper around fwd, nil unless WithTrace
	met  *BreakdownObserver // nil unless WithTelemetry

	last   Breakdown
	closed bool
}

// NewPlan builds a reusable plan for one rank of communicator c with
// geometry g. All parameter expansion, validation, 1-D planning, and
// buffer sizing happens here; Execute-time work is only the transform
// itself.
func NewPlan(c mpi.Comm, g layout.Grid, v Variant, prm Params, flag fft.Flag, opts ...PlanOpt) (*Plan, error) {
	expanded, err := ExpandParams(v, g, prm)
	if err != nil {
		return nil, err
	}
	p := &Plan{g: g, comm: c, v: v, prm: expanded, flag: flag}
	for _, o := range opts {
		o(&p.cfg)
	}
	eopts := p.engineOpts()
	// The engine needs an input slab at construction; hand it a throwaway
	// of the right length — Forward rebinds per call via Reset, and the
	// engine never touches the slab in between.
	init := getSlab(g.InSize())
	p.fwd, err = NewRealEngine(g, c, init, fft.Forward, flag, eopts...)
	putSlab(init)
	if err != nil {
		return nil, err
	}
	p.fwd.PresizeSlots(expanded)
	p.met = NewBreakdownObserver(p.cfg.reg, "pfft")
	if p.cfg.trace {
		p.trc = &traceRec{}
		p.tfwd = newTraceEngineRec(p.fwd, expanded, p.trc)
	}
	return p, nil
}

func (p *Plan) engineOpts() []EngineOpt {
	var eopts []EngineOpt
	if p.cfg.workers > 1 {
		eopts = append(eopts, WithEngineWorkers(p.cfg.workers))
	}
	if p.cfg.pooled {
		eopts = append(eopts, WithPooledBuffers())
	}
	return eopts
}

// Grid returns the rank's geometry.
func (p *Plan) Grid() layout.Grid { return p.g }

// Params returns the expanded parameter set the plan executes.
func (p *Plan) Params() Params { return p.prm }

// Variant returns the plan's algorithm variant.
func (p *Plan) Variant() Variant { return p.v }

// OutputFast reports whether the plan's forward output uses the y-z-x
// fast-path layout (§3.5) instead of z-y-x.
func (p *Plan) OutputFast() bool { return OutputFast(p.v, p.g) }

// Breakdown returns the per-step breakdown of the most recent execution.
func (p *Plan) Breakdown() Breakdown { return p.last }

// Forward executes one forward transform. slab is this rank's input
// x-slab in x-y-z layout (consumed); the returned y-slab (layout per
// OutputFast) is owned by the plan and valid until the next execution.
func (p *Plan) Forward(slab []complex128) ([]complex128, Breakdown, error) {
	if p.closed {
		return nil, Breakdown{}, fmt.Errorf("pfft: Forward on closed plan")
	}
	if err := p.fwd.Reset(slab); err != nil {
		return nil, Breakdown{}, err
	}
	var (
		b   Breakdown
		err error
	)
	if p.tfwd != nil {
		p.trc.reset()
		b, err = runWith(&p.rs, p.tfwd, p.v, p.prm)
	} else {
		b, err = runWith(&p.rs, p.fwd, p.v, p.prm)
	}
	if err != nil {
		return nil, Breakdown{}, err
	}
	p.last = b
	p.met.Observe(b)
	p.met.ObserveComm(p.prm.Comm, b)
	return p.fwd.Output(), b, nil
}

// Trace returns the StepEvent timeline of the most recent execution, or
// nil when the plan was built without WithTrace. The slice is only valid
// until the next execution.
func (p *Plan) Trace() []StepEvent {
	if p.trc == nil {
		return nil
	}
	return p.trc.events
}

// Backward executes one inverse transform. slab is this rank's y-slab in
// the plan's forward output layout (consumed); the returned x-slab (x-y-z
// layout) is owned by the plan and valid until the next execution. Like
// Backward3D, the round trip is unnormalized (×Nx·Ny·Nz).
func (p *Plan) Backward(slab []complex128) ([]complex128, Breakdown, error) {
	if p.closed {
		return nil, Breakdown{}, fmt.Errorf("pfft: Backward on closed plan")
	}
	if p.v == TH || p.v == TH0 {
		return nil, Breakdown{}, fmt.Errorf("pfft: backward transform does not support the %v comparison model", p.v)
	}
	if p.bwd == nil {
		eopts := p.engineOpts()
		if p.trc != nil {
			eopts = append(eopts, withTraceRec(p.trc))
		}
		e, err := newBackEngine(p.comm, p.g, p.flag, eopts...)
		if err != nil {
			return nil, Breakdown{}, err
		}
		e.presizeSlots(p.prm)
		p.bwd = e
	}
	p.trc.reset()
	b, err := p.bwd.run(&p.brs, slab, p.v, p.prm)
	if err != nil {
		return nil, Breakdown{}, err
	}
	p.last = b
	p.met.Observe(b)
	p.met.ObserveComm(p.prm.Comm, b)
	return p.bwd.in, b, nil
}

// Close releases the plan's worker goroutines and returns arena-backed
// buffers. Result slabs handed out by Forward/Backward stay valid.
func (p *Plan) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.fwd.Close()
	if p.bwd != nil {
		p.bwd.Close()
	}
}
