package pfft

import (
	"offt/internal/layout"
	"offt/internal/mpi"
)

// Engine is what the algorithm body runs on. The real engine (NewRealEngine)
// performs the arithmetic; the cost-model engine (package model) charges
// virtual time. Sub-tile coordinates follow package layout's conventions:
// zt0/ztl identify the communication tile (absolute start and length on z),
// z ranges are tile-local [z0, z1) ⊆ [0, ztl), x/y ranges are rank-local.
//
// Communication buffers are managed per slot: the algorithm assigns slot
// i mod (W+1) to tile i, guaranteeing a slot's previous tile has been
// waited for and unpacked before reuse.
type Engine interface {
	// Grid returns the rank's geometry.
	Grid() layout.Grid
	// Comm returns the rank's communicator.
	Comm() mpi.Comm

	// FFTz computes all 1-D FFTs along z on the input slab (step 1).
	FFTz()
	// Transpose rearranges x-y-z to z-x-y, or to x-z-y when fast (§3.5).
	// optimized selects the cache-blocked kernel (NEW uses FFTW's tuned
	// rearrangement in the paper; TH's plain version is slower).
	Transpose(fast, optimized bool)
	// FFTySub computes the 1-D FFTs along y for sub-tile x∈[x0,x1),
	// tile-local z∈[z0,z1) of the tile starting at zt0.
	FFTySub(fast bool, zt0, z0, z1, x0, x1 int)
	// PackSub packs the same sub-tile into slot's send buffer.
	PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int)
	// PostTile starts the non-blocking all-to-all for the tile in slot.
	PostTile(slot int, ztl int) mpi.Request
	// AlltoallTile performs the blocking all-to-all for the tile in slot.
	AlltoallTile(slot int, ztl int)
	// UnpackSub unpacks sub-tile y∈[y0,y1), tile-local z∈[z0,z1) from
	// slot's receive buffer into the output slab.
	UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int)
	// FFTxSub computes the 1-D FFTs along x for the same sub-tile.
	FFTxSub(fast bool, zt0, z0, z1, y0, y1 int)
}

// runState is the per-execution scratch of the pipelined loop: the tile
// request window and the fault monitor. A Plan owns one and reuses it
// across executions so the steady state allocates nothing; the one-shot
// entry points stack-allocate a fresh one per call.
type runState struct {
	reqs []mpi.Request
	mon  FaultMonitor
}

// reset prepares the state for a run over k tiles on communicator c.
func (rs *runState) reset(c mpi.Comm, k int) {
	if cap(rs.reqs) < k {
		rs.reqs = make([]mpi.Request, k)
	}
	rs.reqs = rs.reqs[:k]
	for i := range rs.reqs {
		rs.reqs[i] = nil
	}
	rs.mon.Init(c)
}

// ExpandParams performs the variant-specific parameter expansion that Run
// applies before executing: Baseline ignores prm entirely (whole-slab tile,
// blocking, no Tests); NEW uses prm as given; NEW-0 zeroes the Test
// frequencies; TH/TH-0 keep T, W and the Fy frequency but force whole-tile
// pack/unpack (no loop tiling) and no Unpack/FFTx-side overlap. The
// expanded set is validated against the geometry.
func ExpandParams(v Variant, g layout.Grid, prm Params) (Params, error) {
	// The exchange schedule is orthogonal to the variant-specific expansion:
	// every variant keeps the caller's choice (Baseline's blocking all-to-all
	// included — blocking is just post+wait in both engines).
	comm := prm.Comm
	switch v {
	case Baseline:
		prm = DefaultParams(g)
		prm.T, prm.W = g.Nz, 1
		prm.Fy, prm.Fp, prm.Fu, prm.Fx = 0, 0, 0, 0
		prm.Comm = comm
		return prm, prm.Validate(g)
	case NEW0:
		prm.Fy, prm.Fp, prm.Fu, prm.Fx = 0, 0, 0, 0
	case TH:
		prm = Params{
			T: prm.T, W: prm.W,
			Px: g.XC(), Pz: prm.T, Uy: g.YC(), Uz: prm.T,
			Fy: prm.Fy, Fp: prm.Fy, Fu: 0, Fx: 0,
			Comm: comm,
		}
	case TH0:
		prm = Params{
			T: prm.T, W: prm.W,
			Px: g.XC(), Pz: prm.T, Uy: g.YC(), Uz: prm.T,
			Comm: comm,
		}
	}
	return prm, prm.Validate(g)
}

// Run executes one forward 3-D FFT with the given variant and parameters
// and returns this rank's per-step breakdown. Variant-specific parameter
// expansion happens internally (see ExpandParams): NEW takes the full
// ten-parameter set, TH/TH-0 read only T, W and Fy, Baseline ignores prm.
// Every rank of the world must call Run with the same arguments (SPMD).
func Run(e Engine, v Variant, prm Params) (Breakdown, error) {
	var rs runState
	return runWith(&rs, e, v, prm)
}

// runWith is Run on a caller-owned runState, letting a Plan reuse the
// request window and fault monitor across executions.
func runWith(rs *runState, e Engine, v Variant, prm Params) (Breakdown, error) {
	g := e.Grid()
	prm, err := ExpandParams(v, g, prm)
	if err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	c := e.Comm()
	// Select the tuned all-to-all schedule for every exchange this run
	// posts. Engines without an ExchangeSetter (the single-rank self
	// communicator) are pairwise-equivalent, so the no-op is fine.
	mpi.SetExchange(c, mpi.Exchange{Alg: prm.Comm})
	rec := recOf(c)
	start := c.Now()

	// The §3.5 fast transpose applies only to NEW (and its ablation) when
	// Nx == Ny; TH and the FFTW baseline always use the standard layout.
	fast := g.FastPathOK() && (v == NEW || v == NEW0)
	optimizedTranspose := v != TH && v != TH0

	t := c.Now()
	e.FFTz()
	now := c.Now()
	b.FFTz = now - t
	rec.add("FFTz", t, now, -1)

	t = c.Now()
	e.Transpose(fast, optimizedTranspose)
	now = c.Now()
	b.Transpose += now - t
	rec.add("Transpose", t, now, -1)

	switch v {
	case Baseline, NEW0, TH0:
		runBlocking(e, prm, fast, &b)
	case NEW, TH:
		runOverlapped(rs, e, prm, fast, &b)
	}
	b.Total = c.Now() - start
	return b, nil
}
