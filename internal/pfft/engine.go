package pfft

import (
	"offt/internal/layout"
	"offt/internal/mpi"
)

// Engine is what the algorithm body runs on. The real engine (NewRealEngine)
// performs the arithmetic; the cost-model engine (package model) charges
// virtual time. Sub-tile coordinates follow package layout's conventions:
// zt0/ztl identify the communication tile (absolute start and length on z),
// z ranges are tile-local [z0, z1) ⊆ [0, ztl), x/y ranges are rank-local.
//
// Communication buffers are managed per slot: the algorithm assigns slot
// i mod (W+1) to tile i, guaranteeing a slot's previous tile has been
// waited for and unpacked before reuse.
type Engine interface {
	// Grid returns the rank's geometry.
	Grid() layout.Grid
	// Comm returns the rank's communicator.
	Comm() mpi.Comm

	// FFTz computes all 1-D FFTs along z on the input slab (step 1).
	FFTz()
	// Transpose rearranges x-y-z to z-x-y, or to x-z-y when fast (§3.5).
	// optimized selects the cache-blocked kernel (NEW uses FFTW's tuned
	// rearrangement in the paper; TH's plain version is slower).
	Transpose(fast, optimized bool)
	// FFTySub computes the 1-D FFTs along y for sub-tile x∈[x0,x1),
	// tile-local z∈[z0,z1) of the tile starting at zt0.
	FFTySub(fast bool, zt0, z0, z1, x0, x1 int)
	// PackSub packs the same sub-tile into slot's send buffer.
	PackSub(slot int, fast bool, zt0, ztl, z0, z1, x0, x1 int)
	// PostTile starts the non-blocking all-to-all for the tile in slot.
	PostTile(slot int, ztl int) mpi.Request
	// AlltoallTile performs the blocking all-to-all for the tile in slot.
	AlltoallTile(slot int, ztl int)
	// UnpackSub unpacks sub-tile y∈[y0,y1), tile-local z∈[z0,z1) from
	// slot's receive buffer into the output slab.
	UnpackSub(slot int, fast bool, zt0, ztl, z0, z1, y0, y1 int)
	// FFTxSub computes the 1-D FFTs along x for the same sub-tile.
	FFTxSub(fast bool, zt0, z0, z1, y0, y1 int)
}

// Run executes one forward 3-D FFT with the given variant and parameters
// and returns this rank's per-step breakdown. For TH/TH0 use RunTH, which
// takes the three-parameter set; Run accepts the full set for them too.
// Baseline ignores prm. Every rank of the world must call Run with the
// same arguments (SPMD).
func Run(e Engine, v Variant, prm Params) (Breakdown, error) {
	g := e.Grid()
	switch v {
	case Baseline:
		// FFTW's local steps are as optimized as NEW's (the paper observes
		// FFTW ≈ NEW-0): one whole-slab tile, blocking all-to-all, but
		// cache-friendly tiled pack/unpack.
		prm = DefaultParams(g)
		prm.T, prm.W = g.Nz, 1
		prm.Fy, prm.Fp, prm.Fu, prm.Fx = 0, 0, 0, 0
	case NEW, NEW0, TH, TH0:
		if err := prm.Validate(g); err != nil {
			return Breakdown{}, err
		}
	}
	var b Breakdown
	c := e.Comm()
	start := c.Now()

	// The §3.5 fast transpose applies only to NEW (and its ablation) when
	// Nx == Ny; TH and the FFTW baseline always use the standard layout.
	fast := g.FastPathOK() && (v == NEW || v == NEW0)
	optimizedTranspose := v != TH && v != TH0

	t := c.Now()
	e.FFTz()
	b.FFTz = c.Now() - t

	t = c.Now()
	e.Transpose(fast, optimizedTranspose)
	b.Transpose += c.Now() - t

	switch v {
	case Baseline:
		runBlocking(e, prm, fast, &b)
	case NEW0, TH0:
		runBlocking(e, prm, fast, &b)
	case NEW, TH:
		runOverlapped(e, prm, fast, &b)
	}
	b.Total = c.Now() - start
	return b, nil
}

// RunTH executes the Hoefler-style comparison model with its three
// parameters (overlap only during FFTy and Pack, whole-tile pack/unpack).
func RunTH(e Engine, prm THParams) (Breakdown, error) {
	if err := prm.Validate(e.Grid()); err != nil {
		return Breakdown{}, err
	}
	return Run(e, TH, prm.expand(e.Grid()))
}

// RunTH0 executes the non-overlapped TH ablation.
func RunTH0(e Engine, prm THParams) (Breakdown, error) {
	if err := prm.Validate(e.Grid()); err != nil {
		return Breakdown{}, err
	}
	p := prm.expand(e.Grid())
	p.Fy, p.Fp = 0, 0
	return Run(e, TH0, p)
}

// RunNEW0 executes the non-overlapped NEW ablation (same tiling and loop
// tiling as prm, no window, no Test calls, blocking per-tile all-to-all).
func RunNEW0(e Engine, prm Params) (Breakdown, error) {
	if err := prm.Validate(e.Grid()); err != nil {
		return Breakdown{}, err
	}
	p := prm
	p.Fy, p.Fp, p.Fu, p.Fx = 0, 0, 0, 0
	return Run(e, NEW0, p)
}
