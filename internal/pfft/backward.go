package pfft

import (
	"fmt"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
)

// Backward3D executes the distributed inverse 3-D FFT, mirroring the
// forward pipeline (§2.3 of the paper notes the approach applies directly
// backward). slab is this rank's y-slab in the forward output layout of
// the same variant (z-y-x, or y-z-x on the §3.5 fast path); the returned
// slice is the rank's x-slab in x-y-z layout. The transform is
// unnormalized: Forward3D followed by Backward3D multiplies by Nx·Ny·Nz.
//
// The NEW variant overlaps the inverse computation steps (FFTx⁻¹, Repack,
// Scatter, FFTy⁻¹) with the reverse non-blocking all-to-all using the same
// ten parameters; Baseline and NEW-0 run the blocking pipeline. The TH
// variants are forward-only comparison models and are rejected.
func Backward3D(c mpi.Comm, g layout.Grid, slab []complex128, v Variant, prm Params, flag fft.Flag) ([]complex128, Breakdown, error) {
	e, err := newBackEngine(c, g, flag)
	if err != nil {
		return nil, Breakdown{}, err
	}
	var rs runState
	b, err := e.run(&rs, slab, v, prm)
	if err != nil {
		return nil, Breakdown{}, err
	}
	return e.in, b, nil
}

// backEngine holds the backward pipeline's state for one rank. In the
// breakdown, Repack time is accounted under Pack and Scatter under Unpack
// (they are the corresponding copy steps of the reverse direction). A
// backEngine is reusable: run may be called many times with fresh slabs,
// which is how a Plan serves repeated inverse transforms without
// allocating.
type backEngine struct {
	g    layout.Grid
	comm mpi.Comm

	out  []complex128 // input y-slab (forward output), consumed by FFTx⁻¹
	work []complex128 // post-scatter z-x-y (or x-z-y) slab
	in   []complex128 // final x-y-z slab; owned by the engine, reused per run

	planZ, planY, planX *fft.Plan

	sendBufs, recvBufs [][]complex128
	sendCounts         []int
	recvCounts         []int

	pooled bool
	trc    *traceRec // nil unless the plan runs in trace mode
}

// newBackEngine prepares a reusable backward engine for one rank.
func newBackEngine(c mpi.Comm, g layout.Grid, flag fft.Flag, opts ...EngineOpt) (*backEngine, error) {
	if c.Rank() != g.Rank || c.Size() != g.P {
		return nil, fmt.Errorf("pfft: comm rank/size %d/%d does not match grid %d/%d", c.Rank(), c.Size(), g.Rank, g.P)
	}
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	e := &backEngine{
		g:     g,
		comm:  c,
		in:    make([]complex128, g.InSize()),
		planZ: fft.Plan1DCached(g.Nz, fft.Backward, flag).Clone(),
		planY: fft.Plan1DCached(g.Ny, fft.Backward, flag).Clone(),
		planX: fft.Plan1DCached(g.Nx, fft.Backward, flag).Clone(),

		pooled: cfg.pooled,
		trc:    cfg.trace,
	}
	if cfg.trace != nil {
		// Route Wait/Test through the recording communicator so the
		// communication side of the timeline is captured too.
		e.comm = &traceComm{Comm: c, rec: cfg.trace}
	}
	if cfg.pooled {
		e.work = getSlab(g.InSize())
	} else {
		e.work = make([]complex128, g.InSize())
	}
	e.sendCounts = make([]int, g.P)
	e.recvCounts = make([]int, g.P)
	return e, nil
}

// presizeSlots mirrors RealEngine.PresizeSlots for the reverse direction.
func (e *backEngine) presizeSlots(prm Params) {
	ztl := prm.T
	if ztl > e.g.Nz {
		ztl = e.g.Nz
	}
	for s := 0; s <= prm.W; s++ {
		e.sendBuf(s, ztl)
		e.recvBuf(s, ztl)
	}
}

// Close returns arena-backed buffers. The result slab (in) is never
// pooled: callers may still reference it.
func (e *backEngine) Close() {
	if !e.pooled {
		return
	}
	putSlab(e.work)
	e.work = nil
	for i, b := range e.sendBufs {
		putSlab(b)
		e.sendBufs[i] = nil
	}
	for i, b := range e.recvBufs {
		putSlab(b)
		e.recvBufs[i] = nil
	}
	e.pooled = false
}

// run executes one inverse transform on slab (this rank's y-slab in the
// forward output layout; consumed) and leaves the x-y-z result in e.in.
func (e *backEngine) run(rs *runState, slab []complex128, v Variant, prm Params) (Breakdown, error) {
	if v == TH || v == TH0 {
		return Breakdown{}, fmt.Errorf("pfft: backward transform does not support the %v comparison model", v)
	}
	prm, err := ExpandParams(v, e.g, prm)
	if err != nil {
		return Breakdown{}, err
	}
	if len(slab) != e.g.OutSize() {
		return Breakdown{}, fmt.Errorf("pfft: backward slab length %d, want %d", len(slab), e.g.OutSize())
	}
	e.out = slab

	c, g := e.comm, e.g
	mpi.SetExchange(c, mpi.Exchange{Alg: prm.Comm})
	var b Breakdown
	start := c.Now()
	fast := OutputFast(v, g)
	if v == NEW {
		e.runOverlapped(rs, prm, fast, &b)
	} else {
		e.runBlocking(prm, fast, &b)
	}

	// Inverse transpose back to x-y-z, then inverse FFTz.
	t := c.Now()
	if fast {
		layout.TransposeXZYInv(e.in, e.work, g.XC(), g.Ny, g.Nz)
	} else {
		layout.TransposeZXYInv(e.in, e.work, g.XC(), g.Ny, g.Nz)
	}
	now := c.Now()
	b.Transpose += now - t
	e.trc.add("Transpose", t, now, -1)

	t = c.Now()
	e.planZ.TransformRows(e.in, g.XC()*g.Ny, g.Nz)
	now = c.Now()
	b.FFTz = now - t
	e.trc.add("FFTz", t, now, -1)

	b.Total = c.Now() - start
	return b, nil
}

// fftxRepack runs FFTx⁻¹ and Repack over one tile with Uy/Uz loop tiling,
// interleaving Fx and Fu Test calls over the window.
func (e *backEngine) fftxRepack(prm Params, tl layout.Tiling, tile, slot int, fast bool, window []mpi.Request, b *Breakdown) {
	c, g := e.comm, e.g
	zt0, ztl := tl.TileStart(tile), tl.TileLen(tile)
	nSub := layout.NumSubTiles(ztl, prm.Uz) * layout.NumSubTiles(g.YC(), prm.Uy)
	u := 0
	buf := e.sendBuf(slot, ztl)
	layout.SubTiles(ztl, prm.Uz, func(z0, z1 int) {
		layout.SubTiles(g.YC(), prm.Uy, func(y0, y1 int) {
			t := c.Now()
			// Batched over the layout's contiguous runs (see FFTxSub).
			if fast {
				for ly := y0; ly < y1; ly++ {
					base := g.RowXBase(fast, ly, zt0+z0)
					e.planX.TransformRows(e.out[base:], z1-z0, g.Nx)
				}
			} else {
				for z := zt0 + z0; z < zt0+z1; z++ {
					base := g.RowXBase(fast, y0, z)
					e.planX.TransformRows(e.out[base:], y1-y0, g.Nx)
				}
			}
			now := c.Now()
			b.FFTx += now - t
			e.trc.add("FFTx", t, now, tile)
			doTests(c, window, testsDue(prm.Fx, u, nSub), b)
			t = c.Now()
			g.RepackSubtile(buf, e.out, fast, zt0, ztl, y0, y1, z0, z1)
			now = c.Now()
			b.Pack += now - t
			e.trc.add("Pack", t, now, tile)
			doTests(c, window, testsDue(prm.Fu, u, nSub), b)
			u++
		})
	})
}

// scatterFFTy runs Scatter and FFTy⁻¹ over one tile with Px/Pz loop
// tiling, interleaving Fp and Fy Test calls over the window.
func (e *backEngine) scatterFFTy(prm Params, tl layout.Tiling, tile, slot int, fast bool, window []mpi.Request, b *Breakdown) {
	c, g := e.comm, e.g
	zt0, ztl := tl.TileStart(tile), tl.TileLen(tile)
	nSub := layout.NumSubTiles(ztl, prm.Pz) * layout.NumSubTiles(g.XC(), prm.Px)
	u := 0
	buf := e.recvBuf(slot, ztl)
	layout.SubTiles(ztl, prm.Pz, func(z0, z1 int) {
		layout.SubTiles(g.XC(), prm.Px, func(x0, x1 int) {
			t := c.Now()
			g.ScatterSubtile(e.work, buf, fast, zt0, ztl, z0, z1, x0, x1)
			now := c.Now()
			b.Unpack += now - t
			e.trc.add("Unpack", t, now, tile)
			doTests(c, window, testsDue(prm.Fp, u, nSub), b)
			t = c.Now()
			// Batched over the layout's contiguous runs (see FFTySub).
			if fast {
				for lx := x0; lx < x1; lx++ {
					base := g.RowYBase(fast, zt0+z0, lx)
					e.planY.TransformRows(e.work[base:], z1-z0, g.Ny)
				}
			} else {
				for z := zt0 + z0; z < zt0+z1; z++ {
					base := g.RowYBase(fast, z, x0)
					e.planY.TransformRows(e.work[base:], x1-x0, g.Ny)
				}
			}
			now = c.Now()
			b.FFTy += now - t
			e.trc.add("FFTy", t, now, tile)
			doTests(c, window, testsDue(prm.Fy, u, nSub), b)
			u++
		})
	})
}

// postTile starts the reverse non-blocking all-to-all for one tile: the
// send side carries the forward transform's receive-format blocks.
func (e *backEngine) postTile(slot, ztl int) mpi.Request {
	e.g.RecvCounts(ztl, e.sendCounts) // reverse direction
	e.g.SendCounts(ztl, e.recvCounts)
	return e.comm.Ialltoallv(e.sendBuf(slot, ztl), e.sendCounts, e.recvBuf(slot, ztl), e.recvCounts)
}

func (e *backEngine) alltoallTile(slot, ztl int) {
	e.g.RecvCounts(ztl, e.sendCounts)
	e.g.SendCounts(ztl, e.recvCounts)
	e.comm.Alltoallv(e.sendBuf(slot, ztl), e.sendCounts, e.recvBuf(slot, ztl), e.recvCounts)
}

func (e *backEngine) runOverlapped(rs *runState, prm Params, fast bool, b *Breakdown) {
	c := e.comm
	tl, err := layout.NewTiling(e.g.Nz, prm.T)
	if err != nil {
		panic(err)
	}
	k := tl.NumTiles()
	w := prm.W
	slots := w + 1
	rs.reset(c, k)
	reqs := rs.reqs
	mon := &rs.mon
	for i := 0; i < k+w; i++ {
		if i < k {
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			e.fftxRepack(prm, tl, i, i%slots, fast, reqs[lo:i], b)
		}
		if i >= w {
			t := c.Now()
			ok := mon.WaitTile(c, reqs[i-w])
			now := c.Now()
			b.Wait += now - t
			e.trc.add("Wait", t, now, i-w)
			if !ok {
				e.downgrade(prm, fast, tl, reqs, i, b)
				return
			}
		}
		if i < k {
			t := c.Now()
			reqs[i] = e.postTile(i%slots, tl.TileLen(i))
			now := c.Now()
			b.Ialltoall += now - t
			e.trc.add("Ialltoall", t, now, i)
		}
		if i >= w {
			j := i - w
			hi := j + w + 1
			if hi > k {
				hi = k
			}
			e.scatterFFTy(prm, tl, j, j%slots, fast, reqs[j+1:hi], b)
		}
	}
}

// downgrade finishes the backward transform on the blocking path after the
// overlapped loop gave up at iteration i, mirroring downgradeForward: the
// posted window is drained with plain Waits, the already-repacked tile i
// goes through a blocking all-to-all, and the remaining tiles run the
// per-tile blocking pipeline — one collective per tile in tile order, so
// sequence numbers stay aligned with ranks still running overlapped.
func (e *backEngine) downgrade(prm Params, fast bool, tl layout.Tiling, reqs []mpi.Request, i int, b *Breakdown) {
	c := e.comm
	k := tl.NumTiles()
	w := prm.W
	slots := w + 1
	b.Downgrades++
	e.trc.instant("Downgrade", c.Now(), i-w)
	hi := i
	if hi > k {
		hi = k
	}
	for j := i - w; j < hi; j++ {
		t := c.Now()
		c.Wait(reqs[j])
		now := c.Now()
		b.Wait += now - t
		e.trc.add("Wait", t, now, j)
		e.scatterFFTy(prm, tl, j, j%slots, fast, nil, b)
	}
	if i < k {
		t := c.Now()
		e.alltoallTile(i%slots, tl.TileLen(i))
		now := c.Now()
		b.Wait += now - t
		e.trc.add("Alltoall", t, now, i)
		e.scatterFFTy(prm, tl, i, i%slots, fast, nil, b)
	}
	for j := i + 1; j < k; j++ {
		e.fftxRepack(prm, tl, j, j%slots, fast, nil, b)
		t := c.Now()
		e.alltoallTile(j%slots, tl.TileLen(j))
		now := c.Now()
		b.Wait += now - t
		e.trc.add("Alltoall", t, now, j)
		e.scatterFFTy(prm, tl, j, j%slots, fast, nil, b)
	}
}

func (e *backEngine) runBlocking(prm Params, fast bool, b *Breakdown) {
	c := e.comm
	tl, err := layout.NewTiling(e.g.Nz, prm.T)
	if err != nil {
		panic(err)
	}
	for i := 0; i < tl.NumTiles(); i++ {
		e.fftxRepack(prm, tl, i, 0, fast, nil, b)
		t := c.Now()
		e.alltoallTile(0, tl.TileLen(i))
		now := c.Now()
		b.Wait += now - t
		e.trc.add("Alltoall", t, now, i)
		e.scatterFFTy(prm, tl, i, 0, fast, nil, b)
	}
}

func (e *backEngine) sendBuf(slot, ztl int) []complex128 {
	for len(e.sendBufs) <= slot {
		e.sendBufs = append(e.sendBufs, nil)
	}
	n := e.g.RecvBufLen(ztl) // reverse direction: recv-format on the way out
	if cap(e.sendBufs[slot]) < n {
		if e.pooled {
			putSlab(e.sendBufs[slot])
			e.sendBufs[slot] = getSlab(n)
		} else {
			e.sendBufs[slot] = make([]complex128, n)
		}
	}
	return e.sendBufs[slot][:n]
}

func (e *backEngine) recvBuf(slot, ztl int) []complex128 {
	for len(e.recvBufs) <= slot {
		e.recvBufs = append(e.recvBufs, nil)
	}
	n := e.g.SendBufLen(ztl)
	if cap(e.recvBufs[slot]) < n {
		if e.pooled {
			putSlab(e.recvBufs[slot])
			e.recvBufs[slot] = getSlab(n)
		} else {
			e.recvBufs[slot] = make([]complex128, n)
		}
	}
	return e.recvBufs[slot][:n]
}
