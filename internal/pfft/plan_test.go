package pfft

import (
	"math/rand"
	"sync"
	"testing"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
	"offt/internal/mpi/mem"
)

const reuseTol = 1e-12

// runWithPlan executes `iters` forward transforms of full over p ranks on
// ONE plan per rank and returns the reassembled result of the last one.
func runWithPlan(t *testing.T, full []complex128, nx, ny, nz, p, iters int, v Variant, prm Params, opts ...PlanOpt) []complex128 {
	t.Helper()
	w := mem.NewWorld(p)
	outs := make([][]complex128, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err)
		}
		plan, err := NewPlan(c, g, v, prm, fft.Estimate, opts...)
		if err != nil {
			panic(err)
		}
		defer plan.Close()
		slab := make([]complex128, g.InSize())
		var out []complex128
		for it := 0; it < iters; it++ {
			layout.ScatterXInto(slab, full, g)
			out, _, err = plan.Forward(slab)
			if err != nil {
				panic(err)
			}
		}
		outs[c.Rank()] = out
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	g0, _ := layout.NewGrid(nx, ny, nz, p, 0)
	return layout.GatherY(outs, nx, ny, nz, p, OutputFast(v, g0))
}

// TestPlanReuseMatchesFresh: executing the same transform repeatedly on
// one plan must match the fresh-engine-per-call path bit-for-bit (both
// run identical arithmetic), and certainly to 1e-12.
func TestPlanReuseMatchesFresh(t *testing.T) {
	for _, c := range []struct{ nx, ny, nz, p int }{
		{16, 16, 16, 4}, // fast path
		{12, 8, 10, 2},  // rectangular, no fast path
		{9, 10, 8, 3},   // non-divisible
	} {
		full := randCube(c.nx, c.ny, c.nz, 21)
		g0, err := layout.NewGrid(c.nx, c.ny, c.nz, c.p, 0)
		if err != nil {
			t.Fatal(err)
		}
		prm := DefaultParams(g0)
		fresh := runDistributed(t, full, c.nx, c.ny, c.nz, c.p, NEW, prm, THParams{})
		reused := runWithPlan(t, full, c.nx, c.ny, c.nz, c.p, 3, NEW, prm)
		if e := maxErr(fresh, reused); e > reuseTol {
			t.Errorf("%dx%dx%d p=%d: reuse drifts from fresh path by %g", c.nx, c.ny, c.nz, c.p, e)
		}
	}
}

// TestPlanForwardBackwardRoundTrip: back-to-back Forward/Backward on one
// plan reproduces the input (×N³) across repeated executions.
func TestPlanForwardBackwardRoundTrip(t *testing.T) {
	nx, ny, nz, p := 16, 16, 12, 4
	full := randCube(nx, ny, nz, 5)
	w := mem.NewWorld(p)
	outs := make([][]complex128, p)
	err := w.Run(func(c *mem.Comm) {
		g, err := layout.NewGrid(nx, ny, nz, p, c.Rank())
		if err != nil {
			panic(err)
		}
		plan, err := NewPlan(c, g, NEW, DefaultParams(g), fft.Estimate)
		if err != nil {
			panic(err)
		}
		defer plan.Close()
		slab := make([]complex128, g.InSize())
		bslab := make([]complex128, g.OutSize())
		var back []complex128
		for it := 0; it < 2; it++ {
			layout.ScatterXInto(slab, full, g)
			spec, _, err := plan.Forward(slab)
			if err != nil {
				panic(err)
			}
			copy(bslab, spec) // Forward's output is plan-owned; Backward consumes
			back, _, err = plan.Backward(bslab)
			if err != nil {
				panic(err)
			}
		}
		outs[c.Rank()] = back
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
	got := layout.GatherX(outs, nx, ny, nz, p)
	scale := complex(float64(nx*ny*nz), 0)
	for i := range got {
		got[i] /= scale
	}
	if e := maxErr(got, full); e > tol {
		t.Errorf("round trip error %g", e)
	}
}

// TestPlanParallelWorkers: the worker-pool kernels must agree with the
// serial path exactly (run under -race in verify.sh).
func TestPlanParallelWorkers(t *testing.T) {
	for _, c := range []struct{ nx, ny, nz, p int }{
		{16, 16, 16, 2}, // fast path
		{12, 10, 14, 2}, // standard transpose, uneven splits
	} {
		full := randCube(c.nx, c.ny, c.nz, 33)
		g0, err := layout.NewGrid(c.nx, c.ny, c.nz, c.p, 0)
		if err != nil {
			t.Fatal(err)
		}
		prm := DefaultParams(g0)
		serial := runWithPlan(t, full, c.nx, c.ny, c.nz, c.p, 1, NEW, prm)
		par := runWithPlan(t, full, c.nx, c.ny, c.nz, c.p, 2, NEW, prm, WithWorkers(4))
		if e := maxErr(serial, par); e > reuseTol {
			t.Errorf("%dx%dx%d p=%d: parallel kernels drift from serial by %g", c.nx, c.ny, c.nz, c.p, e)
		}
	}
}

// TestForwardManyPooled: repeated ForwardMany3D batches recycle arena
// slabs; results must stay correct and the returned outputs must remain
// valid after the engines are closed (outputs are never pooled).
func TestForwardManyPooled(t *testing.T) {
	nx, p, arrays := 12, 2, 3
	fulls := make([][]complex128, arrays)
	wants := make([][]complex128, arrays)
	for i := range fulls {
		fulls[i] = randCube(nx, nx, nx, int64(40+i))
		wants[i] = serialReference(fulls[i], nx, nx, nx)
	}
	for round := 0; round < 2; round++ {
		w := mem.NewWorld(p)
		outs := make([][][]complex128, p)
		err := w.Run(func(c *mem.Comm) {
			g, err := layout.NewGrid(nx, nx, nx, p, c.Rank())
			if err != nil {
				panic(err)
			}
			slabs := make([][]complex128, arrays)
			for i := range slabs {
				slabs[i] = layout.ScatterX(fulls[i], g)
			}
			o, _, err := ForwardMany3D(c, g, slabs, 2, fft.Estimate)
			if err != nil {
				panic(err)
			}
			outs[c.Rank()] = o
		})
		if err != nil {
			t.Fatalf("round %d: world failed: %v", round, err)
		}
		for i := 0; i < arrays; i++ {
			ranks := make([][]complex128, p)
			for r := 0; r < p; r++ {
				ranks[r] = outs[r][i]
			}
			got := layout.GatherY(ranks, nx, nx, nx, p, false)
			if e := maxErr(got, wants[i]); e > tol {
				t.Errorf("round %d array %d: error %g", round, i, e)
			}
		}
	}
}

// TestForwardManyPooledRace runs two whole worlds concurrently so the
// arena is hit from many goroutines at once (exercised under -race).
func TestForwardManyPooledRace(t *testing.T) {
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			nx, p := 8, 2
			full := randCube(nx, nx, nx, seed)
			w := mem.NewWorld(p)
			_ = w.Run(func(c *mem.Comm) {
				g, err := layout.NewGrid(nx, nx, nx, p, c.Rank())
				if err != nil {
					panic(err)
				}
				slabs := [][]complex128{layout.ScatterX(full, g), layout.ScatterX(full, g)}
				if _, _, err := ForwardMany3D(c, g, slabs, 2, fft.Estimate); err != nil {
					panic(err)
				}
			})
		}(int64(50 + k))
	}
	wg.Wait()
}

// selfComm is a zero-allocation single-rank communicator: the all-to-all
// is a direct copy and the request is a shared sentinel. It isolates the
// plan's own allocation behavior from the mem transport (whose envelopes
// allocate by design).
type selfComm struct {
	now int64
	req selfReq
	ex  mpi.Exchange
}

type selfReq struct{}

func (c *selfComm) Rank() int  { return 0 }
func (c *selfComm) Size() int  { return 1 }
func (c *selfComm) Now() int64 { c.now++; return c.now }
func (c *selfComm) Barrier()   {}
func (c *selfComm) Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) {
	copy(recv[:recvCounts[0]], send[:sendCounts[0]])
}
func (c *selfComm) Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) mpi.Request {
	copy(recv[:recvCounts[0]], send[:sendCounts[0]])
	return &c.req
}
func (c *selfComm) Test(reqs ...mpi.Request) bool { return true }
func (c *selfComm) Wait(reqs ...mpi.Request)      {}

// SetExchange records the selected schedule (mpi.ExchangeSetter), so the
// allocation gates below exercise the schedule-selection path the real
// engines take — a single rank routes every schedule identically.
func (c *selfComm) SetExchange(ex mpi.Exchange) { c.ex = ex }

// TestPlanSteadyStateAllocs is the allocation gate: once a plan exists,
// repeated Forward executions must be (amortized) allocation-free — under
// every exchange schedule, so the schedule-selection plumbing cannot
// sneak per-run allocations in. The single-rank selfComm keeps transport
// envelopes out of the measurement; verify.sh runs this test as the
// regression gate.
func TestPlanSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-instrumented runtime allocates on its own")
	}
	for _, alg := range mpi.CommAlgs() {
		t.Run(alg.String(), func(t *testing.T) {
			n := 16
			g, err := layout.NewGrid(n, n, n, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			c := &selfComm{}
			prm := DefaultParams(g)
			prm.Comm = alg
			plan, err := NewPlan(c, g, NEW, prm, fft.Estimate)
			if err != nil {
				t.Fatal(err)
			}
			defer plan.Close()
			slab := make([]complex128, g.InSize())
			rng := rand.New(rand.NewSource(9))
			for i := range slab {
				slab[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			}
			fill := append([]complex128(nil), slab...)
			// Warm up once (lazy growth, request-window sizing).
			if _, _, err := plan.Forward(slab); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				copy(slab, fill)
				if _, _, err := plan.Forward(slab); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Errorf("steady-state Forward allocates %.1f objects/op, want ~0 (<=2)", allocs)
			}
			if c.ex.Alg != alg {
				t.Errorf("plan applied schedule %v, want %v", c.ex.Alg, alg)
			}
		})
	}
}

// TestPlanBackwardSteadyStateAllocs applies the same gate to Backward.
func TestPlanBackwardSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-instrumented runtime allocates on its own")
	}
	for _, alg := range mpi.CommAlgs() {
		t.Run(alg.String(), func(t *testing.T) {
			n := 16
			g, err := layout.NewGrid(n, n, n, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			c := &selfComm{}
			prm := DefaultParams(g)
			prm.Comm = alg
			plan, err := NewPlan(c, g, NEW, prm, fft.Estimate)
			if err != nil {
				t.Fatal(err)
			}
			defer plan.Close()
			bslab := make([]complex128, g.OutSize())
			if _, _, err := plan.Backward(bslab); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, _, err := plan.Backward(bslab); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Errorf("steady-state Backward allocates %.1f objects/op, want ~0 (<=2)", allocs)
			}
		})
	}
}

// TestPlanRejectsInvalid covers plan-time validation.
func TestPlanRejectsInvalid(t *testing.T) {
	g, err := layout.NewGrid(8, 8, 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := &selfComm{}
	if _, err := NewPlan(c, g, NEW, Params{T: 0}, fft.Estimate); err == nil {
		t.Error("expected validation error for T=0")
	}
	plan, err := NewPlan(c, g, TH, Params{T: 8, W: 1, Fy: 1}, fft.Estimate)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	if _, _, err := plan.Backward(make([]complex128, g.OutSize())); err == nil {
		t.Error("expected Backward rejection for TH plan")
	}
	plan.Close()
	if _, _, err := plan.Forward(make([]complex128, g.InSize())); err == nil {
		t.Error("expected error on closed plan")
	}
}
