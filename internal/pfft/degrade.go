package pfft

import (
	"offt/internal/mpi"
)

// retransmitDowngradeThreshold is how many transport retransmissions
// (world-wide, counted from the start of this rank's overlapped pipeline)
// the pipeline tolerates before it stops trusting the fabric and
// downgrades to the blocking path even though no wait deadline has fired
// yet. Sized well above what the chaos profiles produce on a healthy run
// (tens to hundreds) so it only trips on a persistently failing transport.
const retransmitDowngradeThreshold = 4096

// FaultMonitor decides when an overlapped pipeline must downgrade to the
// blocking path. It uses the engine's optional capabilities: soft wait
// deadlines (mpi.DeadlineWaiter) and transport-recovery counters
// (mpi.HealthReporter). On engines with neither, WaitTile is plain Wait
// and no downgrade ever triggers.
type FaultMonitor struct {
	dw       mpi.DeadlineWaiter
	hr       mpi.HealthReporter
	baseline int64 // Retransmits at pipeline start
	// one is scratch for single-request Wait calls: spreading a reusable
	// slice into the variadic Wait avoids a per-call heap allocation,
	// which the steady-state allocation gate would otherwise count.
	one [1]mpi.Request
}

// Init (re-)arms the monitor for one pipeline execution. It is a value
// method target so a reusable runState re-arms without allocating.
func (m *FaultMonitor) Init(c mpi.Comm) {
	m.dw, _ = c.(mpi.DeadlineWaiter)
	m.hr, _ = c.(mpi.HealthReporter)
	m.baseline = 0
	if m.hr != nil {
		m.baseline = m.hr.TransportHealth().Retransmits
	}
}

// WaitTile waits for one tile's collective and reports whether the
// overlapped pipeline may continue. False means downgrade: either the
// transport shows persistent retransmission pressure (checked before
// blocking) or the soft wait deadline passed. In both cases the request
// stays valid — the blocking path finishes it with a plain Wait.
func (m *FaultMonitor) WaitTile(c mpi.Comm, req mpi.Request) bool {
	if m.hr != nil && m.hr.TransportHealth().Retransmits-m.baseline > retransmitDowngradeThreshold {
		return false
	}
	if m.dw == nil {
		m.one[0] = req
		c.Wait(m.one[:]...)
		m.one[0] = nil
		return true
	}
	return m.dw.WaitDeadline(req) == nil
}

// downgradeNoter is optionally implemented by engine wrappers (see
// TraceEngine) to record an overlapped→blocking downgrade on the timeline.
type downgradeNoter interface {
	NoteDowngrade(tile int)
}

func noteDowngrade(e Engine, tile int) {
	if n, ok := e.(downgradeNoter); ok {
		n.NoteDowngrade(tile)
	}
}
