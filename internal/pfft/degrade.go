package pfft

import (
	"offt/internal/mpi"
)

// retransmitDowngradeThreshold is how many transport retransmissions
// (world-wide, counted from the start of this rank's overlapped pipeline)
// the pipeline tolerates before it stops trusting the fabric and
// downgrades to the blocking path even though no wait deadline has fired
// yet. Sized well above what the chaos profiles produce on a healthy run
// (tens to hundreds) so it only trips on a persistently failing transport.
const retransmitDowngradeThreshold = 4096

// faultMonitor decides when the overlapped pipeline must downgrade to the
// blocking path. It uses the engine's optional capabilities: soft wait
// deadlines (mpi.DeadlineWaiter) and transport-recovery counters
// (mpi.HealthReporter). On engines with neither, waitTile is plain Wait
// and no downgrade ever triggers.
type faultMonitor struct {
	dw       mpi.DeadlineWaiter
	hr       mpi.HealthReporter
	baseline int64 // Retransmits at pipeline start
}

func newFaultMonitor(c mpi.Comm) *faultMonitor {
	m := &faultMonitor{}
	if dw, ok := c.(mpi.DeadlineWaiter); ok {
		m.dw = dw
	}
	if hr, ok := c.(mpi.HealthReporter); ok {
		m.hr = hr
		m.baseline = hr.TransportHealth().Retransmits
	}
	return m
}

// waitTile waits for one tile's collective and reports whether the
// overlapped pipeline may continue. False means downgrade: either the
// transport shows persistent retransmission pressure (checked before
// blocking) or the soft wait deadline passed. In both cases the request
// stays valid — the blocking path finishes it with a plain Wait.
func (m *faultMonitor) waitTile(c mpi.Comm, req mpi.Request) bool {
	if m.hr != nil && m.hr.TransportHealth().Retransmits-m.baseline > retransmitDowngradeThreshold {
		return false
	}
	if m.dw == nil {
		c.Wait(req)
		return true
	}
	return m.dw.WaitDeadline(req) == nil
}

// downgradeNoter is optionally implemented by engine wrappers (see
// TraceEngine) to record an overlapped→blocking downgrade on the timeline.
type downgradeNoter interface {
	NoteDowngrade(tile int)
}

func noteDowngrade(e Engine, tile int) {
	if n, ok := e.(downgradeNoter); ok {
		n.NoteDowngrade(tile)
	}
}
