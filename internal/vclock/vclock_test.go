package vclock

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvance(t *testing.T) {
	s := New(1)
	var end int64
	err := s.Run(func(p *Proc) {
		if p.Now() != 0 {
			t.Errorf("start time %d", p.Now())
		}
		p.Advance(10)
		p.Advance(5)
		end = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != 15 {
		t.Errorf("end time %d, want 15", end)
	}
}

func TestNegativeAdvancePanicsIntoError(t *testing.T) {
	s := New(1)
	err := s.Run(func(p *Proc) { p.Advance(-1) })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("want panic error, got %v", err)
	}
}

func TestProcsInterleaveInTimeOrder(t *testing.T) {
	// Two procs advancing by different steps must interleave by virtual
	// time, observable via a shared log appended at each step.
	s := New(2)
	var mu sync.Mutex
	var log []string
	err := s.Run(func(p *Proc) {
		step := int64(3)
		if p.ID() == 1 {
			step = 5
		}
		for i := 0; i < 4; i++ {
			p.Advance(step)
			mu.Lock()
			log = append(log, fmt.Sprintf("p%d@%d", p.ID(), p.Now()))
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected global order of (time, id): p0@3, p1@5, p0@6, p0@9, p1@10,
	// p0@12, p1@15, p1@20.
	want := []string{"p0@3", "p1@5", "p0@6", "p0@9", "p1@10", "p0@12", "p1@15", "p1@20"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("order:\n got %v\nwant %v", log, want)
	}
}

func TestTieBreakById(t *testing.T) {
	s := New(3)
	var mu sync.Mutex
	var order []int
	err := s.Run(func(p *Proc) {
		p.Advance(7) // all reach time 7
		mu.Lock()
		order = append(order, p.ID())
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Errorf("tie order %v, want ids ascending", order)
	}
}

func TestParkWakeViaEvent(t *testing.T) {
	s := New(2)
	var got int64
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Park() // woken by p1's event at t=100
			got = p.Now()
			return
		}
		p.Advance(40)
		peer := p.Peer(0)
		p.Schedule(100, func(now int64, w Waker) { w.Wake(peer, now) })
		p.Advance(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("woken at %d, want 100", got)
	}
}

func TestDirectWake(t *testing.T) {
	s := New(2)
	var got int64
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Park()
			got = p.Now()
			return
		}
		p.Advance(33)
		p.Wake(p.Peer(0), 20) // clamped up to waker's now
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 33 {
		t.Errorf("woken at %d, want 33 (clamped to waker's clock)", got)
	}
}

func TestWakeNeverRewindsClock(t *testing.T) {
	s := New(2)
	var got int64
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(500)
			p.Park()
			got = p.Now()
			return
		}
		p.Advance(600)
		p.Wake(p.Peer(0), 600)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 600 {
		t.Errorf("woken at %d, want 600", got)
	}
	// And the symmetric case: wake time earlier than sleeper's clock.
	s2 := New(2)
	err = s2.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(1000)
			p.Park()
			got = p.Now()
			return
		}
		p.Schedule(50, func(now int64, w Waker) {
			// p0 parks at 1000 > 50; this event fires first and would be a
			// lost wakeup, so wake from a later event instead.
		})
		p.Advance(2000)
		p.Wake(p.Peer(0), 2000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2000 {
		t.Errorf("woken at %d, want 2000", got)
	}
}

func TestEventsRunBeforeProcsAtSameTime(t *testing.T) {
	s := New(1)
	var order []string
	err := s.Run(func(p *Proc) {
		p.Schedule(10, func(now int64, w Waker) { order = append(order, "event") })
		p.Advance(10)
		order = append(order, "proc")
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[event proc]" {
		t.Errorf("order %v", order)
	}
}

func TestEventChaining(t *testing.T) {
	s := New(1)
	var times []int64
	err := s.Run(func(p *Proc) {
		p.Schedule(5, func(now int64, w Waker) {
			times = append(times, now)
			w.Schedule(9, func(now int64, w Waker) {
				times = append(times, now)
			})
		})
		p.Advance(20)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(times) != "[5 9]" {
		t.Errorf("times %v", times)
	}
}

func TestEventOrderBySeqAtSameTime(t *testing.T) {
	s := New(1)
	var order []int
	err := s.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			i := i
			p.Schedule(10, func(now int64, w Waker) { order = append(order, i) })
		}
		p.Advance(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Errorf("same-time events out of creation order: %v", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(2)
	err := s.Run(func(p *Proc) {
		p.Park() // nobody will ever wake anyone
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	s := New(2)
	err := s.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		p.Park() // would deadlock, but the panic should surface first or the
		// failure must release this process either way
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "boom") && !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("unexpected error %v", err)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New(1)
	err := s.Run(func(p *Proc) {
		p.Advance(100)
		p.Schedule(50, func(now int64, w Waker) {})
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("want panic error, got %v", err)
	}
}

// collectTrace runs a randomized workload and returns the scheduler trace.
func collectTrace(seed int64, n int) []string {
	s := New(n)
	var trace []string
	s.TraceFn = func(line string) { trace = append(trace, line) }
	_ = s.Run(func(p *Proc) {
		rng := rand.New(rand.NewSource(seed + int64(p.ID())))
		for i := 0; i < 30; i++ {
			p.Advance(int64(rng.Intn(50) + 1))
			if rng.Intn(4) == 0 {
				peer := p.Peer((p.ID() + 1) % n)
				p.Schedule(p.Now()+int64(rng.Intn(100)), func(now int64, w Waker) {
					_ = peer // benign event
				})
			}
		}
	})
	return trace
}

func TestDeterministicTrace(t *testing.T) {
	a := collectTrace(42, 4)
	b := collectTrace(42, 4)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("two identical simulations produced different traces")
	}
}

func TestQuickTimeMonotonePerProc(t *testing.T) {
	// Whatever the interleaving, each process's observed Now() never
	// decreases, and the sum of advances equals the final clock when the
	// process is never parked.
	f := func(seed int64, steps uint8) bool {
		n := 3
		s := New(n)
		type rec struct {
			last int64
			sum  int64
			ok   bool
		}
		recs := make([]rec, n)
		err := s.Run(func(p *Proc) {
			rng := rand.New(rand.NewSource(seed + int64(p.ID())))
			r := rec{ok: true}
			for i := 0; i < int(steps%40)+1; i++ {
				d := int64(rng.Intn(20))
				p.Advance(d)
				r.sum += d
				if p.Now() < r.last {
					r.ok = false
				}
				r.last = p.Now()
			}
			if p.Now() != r.sum {
				r.ok = false
			}
			recs[p.ID()] = r
		})
		if err != nil {
			return false
		}
		for _, r := range recs {
			if !r.ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestManyProcsStress(t *testing.T) {
	const n = 64
	s := New(n)
	total := make([]int64, n)
	err := s.Run(func(p *Proc) {
		rng := rand.New(rand.NewSource(int64(p.ID())))
		for i := 0; i < 100; i++ {
			d := int64(rng.Intn(1000))
			p.Advance(d)
			total[p.ID()] += d
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tot := range total {
		if tot == 0 {
			t.Errorf("proc %d did no work", i)
		}
	}
}

func TestNPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestN(t *testing.T) {
	if got := New(5).N(); got != 5 {
		t.Errorf("N() = %d", got)
	}
}

func BenchmarkAdvanceYield(b *testing.B) {
	// Two processes forced to alternate: measures the baton-handoff cost
	// that dominates large simulations.
	s := New(2)
	n := b.N
	_ = s.Run(func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Advance(1)
		}
	})
}

func BenchmarkScheduleEvent(b *testing.B) {
	s := New(1)
	n := b.N
	_ = s.Run(func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Schedule(p.Now()+10, func(now int64, w Waker) {})
			p.Advance(20)
		}
	})
}
