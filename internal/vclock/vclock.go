// Package vclock provides a deterministic discrete-event scheduler for
// simulating parallel processes in virtual time.
//
// Each simulated process (rank) runs in its own goroutine with a private
// virtual clock measured in integer nanoseconds. The scheduler serializes
// execution so that exactly one process runs at any real moment and all
// timed operations across the whole simulation execute in a single total
// order: ascending virtual time, with events before processes at equal
// times, events tie-broken by creation sequence, and processes tie-broken
// by id. This makes every simulation bit-for-bit reproducible regardless of
// the Go runtime's goroutine scheduling.
//
// The network model in package simnet and the simulated MPI engine are
// built on three primitives: Advance (charge local compute time), Park/Wake
// (block until another entity wakes the process), and Schedule (run a
// callback at an absolute virtual time).
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
)

type procState int

const (
	stateReady   procState = iota // parked, runnable at wakeAt
	stateRunning                  // holds the baton, executing user code
	stateWaiting                  // parked until Wake
	stateDone                     // body returned
)

func (s procState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateWaiting:
		return "waiting"
	default:
		return "done"
	}
}

// Proc is one simulated process. All methods must be called only from the
// goroutine running the process body.
type Proc struct {
	sched  *Scheduler
	id     int
	clock  int64
	state  procState
	wakeAt int64
	cv     *sync.Cond
}

// ID returns the process id (0..n-1).
func (p *Proc) ID() int { return p.id }

// Now returns the process's current virtual time in nanoseconds.
func (p *Proc) Now() int64 { return p.clock }

// Peer returns the process with the given id from the same scheduler, for
// use as a Wake target.
func (p *Proc) Peer(id int) *Proc { return p.sched.procs[id] }

// event is a scheduled callback at an absolute virtual time.
type event struct {
	t   int64
	seq int64
	fn  func(now int64, w Waker)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (*event, bool) {
	if len(h) == 0 {
		return nil, false
	}
	return h[0], true
}

// readyEntry is a lazily-invalidated ready-queue entry: it is stale when
// the process is no longer ready or was re-queued with a different time.
type readyEntry struct {
	p      *Proc
	wakeAt int64
}

type readyHeap []readyEntry

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].wakeAt != h[j].wakeAt {
		return h[i].wakeAt < h[j].wakeAt
	}
	return h[i].p.id < h[j].p.id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyEntry)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Scheduler coordinates a fixed set of processes and an event queue.
type Scheduler struct {
	mu     sync.Mutex
	procs  []*Proc
	events eventHeap
	ready  readyHeap
	seq    int64
	nDone  int
	err    error
	failed bool
	doneCv *sync.Cond

	// TraceFn, when non-nil, receives a line per scheduling decision; used
	// by determinism tests. Must be set before Run.
	TraceFn func(line string)
}

// New creates a scheduler for n processes.
func New(n int) *Scheduler {
	if n < 1 {
		panic("vclock: need at least one process")
	}
	s := &Scheduler{}
	s.doneCv = sync.NewCond(&s.mu)
	s.procs = make([]*Proc, n)
	for i := range s.procs {
		p := &Proc{sched: s, id: i, state: stateReady}
		p.cv = sync.NewCond(&s.mu)
		s.procs[i] = p
		heap.Push(&s.ready, readyEntry{p: p, wakeAt: 0})
	}
	return s
}

// N returns the number of processes.
func (s *Scheduler) N() int { return len(s.procs) }

// Run executes body once per process (as that process) and returns when all
// bodies have completed. It returns an error if the simulation deadlocks
// (all processes waiting with no pending events) or a process body panics.
// Run must be called exactly once.
func (s *Scheduler) Run(body func(p *Proc)) error {
	for _, p := range s.procs {
		p := p
		go func() {
			defer func() {
				if r := recover(); r != nil {
					s.mu.Lock()
					s.fail(fmt.Errorf("vclock: process %d panicked: %v", p.id, r))
					s.mu.Unlock()
					return
				}
				s.mu.Lock()
				p.state = stateDone
				s.nDone++
				s.trace("done p%d @%d", p.id, p.clock)
				s.handoff()
				s.mu.Unlock()
			}()
			s.mu.Lock()
			p.waitForBaton()
			s.mu.Unlock()
			if s.isFailed() {
				panic(batonPoison{})
			}
			body(p)
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// All procs are ready at time 0; hand the baton to the first.
	s.handoff()
	for s.nDone < len(s.procs) && !s.failed {
		s.doneCv.Wait()
	}
	return s.err
}

// batonPoison aborts a process body after the scheduler has failed; it is
// swallowed by the recover in Run's goroutine wrapper.
type batonPoison struct{}

func (s *Scheduler) isFailed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

func (s *Scheduler) fail(err error) {
	if !s.failed {
		s.failed = true
		s.err = err
	}
	// Release every parked process so its goroutine can exit.
	for _, q := range s.procs {
		if q.state == stateReady || q.state == stateWaiting {
			q.state = stateRunning
			q.cv.Signal()
		}
	}
	s.doneCv.Signal()
}

// Advance charges d nanoseconds of local time to the process, yielding the
// baton if any other entity must logically run first.
func (p *Proc) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %d", d))
	}
	s := p.sched
	s.mu.Lock()
	p.clock += d
	s.yield(p)
	failed := s.failed
	s.mu.Unlock()
	if failed {
		panic(batonPoison{})
	}
}

// Park blocks the process until another entity calls Wake. The process
// resumes with its clock set to max(its own clock, the wake time).
func (p *Proc) Park() {
	s := p.sched
	s.mu.Lock()
	p.state = stateWaiting
	s.trace("park p%d @%d", p.id, p.clock)
	s.handoff()
	p.waitForBaton()
	failed := s.failed
	s.mu.Unlock()
	if failed {
		panic(batonPoison{})
	}
}

// Wake marks the waiting process q runnable at virtual time t. The caller p
// must be the currently running process; t is clamped up to p's clock (a
// process cannot wake another in its own past). Event callbacks use
// Waker.Wake instead.
func (p *Proc) Wake(q *Proc, t int64) {
	s := p.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < p.clock {
		t = p.clock
	}
	s.wakeLocked(q, t)
}

func (s *Scheduler) wakeLocked(q *Proc, t int64) {
	if q.state != stateWaiting {
		panic(fmt.Sprintf("vclock: Wake on process %d in state %v", q.id, q.state))
	}
	q.state = stateReady
	if t < q.clock {
		t = q.clock
	}
	q.wakeAt = t
	heap.Push(&s.ready, readyEntry{p: q, wakeAt: t})
	s.trace("wake p%d @%d", q.id, t)
}

// Schedule runs fn at absolute virtual time t. fn executes under the
// scheduler's total order; it must not block and may wake processes (via
// the passed Waker) or schedule further events at times >= its own. t must
// be >= the calling process's current time.
func (p *Proc) Schedule(t int64, fn func(now int64, w Waker)) {
	s := p.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < p.clock {
		panic(fmt.Sprintf("vclock: Schedule at %d before caller's now %d", t, p.clock))
	}
	s.scheduleLocked(t, fn)
}

// Waker is handed to event callbacks so they can wake processes and chain
// events while the scheduler lock is held.
type Waker struct {
	s   *Scheduler
	now int64
}

// Wake marks a waiting process runnable at time t (>= the event time).
func (w Waker) Wake(q *Proc, t int64) {
	if t < w.now {
		t = w.now
	}
	w.s.wakeLocked(q, t)
}

// Schedule chains another event at time t >= the current event's time.
func (w Waker) Schedule(t int64, fn func(now int64, w Waker)) {
	if t < w.now {
		panic(fmt.Sprintf("vclock: event Schedule at %d before event time %d", t, w.now))
	}
	w.s.scheduleLocked(t, fn)
}

func (s *Scheduler) scheduleLocked(t int64, fn func(now int64, w Waker)) {
	s.seq++
	heap.Push(&s.events, &event{t: t, seq: s.seq, fn: fn})
}

// yield is called by the running process p after its clock moved; it cedes
// the baton to any entity that must run first and returns once p may
// continue (p.state == stateRunning) or the scheduler failed.
func (s *Scheduler) yield(p *Proc) {
	// Fast path: p continues if no event and no ready process precedes it.
	if e, ok := s.events.peek(); !ok || e.t > p.clock {
		if q := s.minReady(); q == nil || q.wakeAt > p.clock || (q.wakeAt == p.clock && q.id > p.id) {
			return
		}
	}
	p.state = stateReady
	p.wakeAt = p.clock
	heap.Push(&s.ready, readyEntry{p: p, wakeAt: p.clock})
	s.handoff()
	p.waitForBaton()
}

// waitForBaton parks the calling process's goroutine until the scheduler
// grants it the baton (state set to running by handoff) or fails.
func (p *Proc) waitForBaton() {
	for p.state == stateReady || p.state == stateWaiting {
		p.cv.Wait()
	}
	if p.state == stateRunning && p.wakeAt > p.clock {
		p.clock = p.wakeAt
	}
}

// minReady returns the ready process with the smallest (wakeAt, id), or
// nil. Stale heap entries (processes that ran or re-queued since) are
// discarded lazily.
func (s *Scheduler) minReady() *Proc {
	for len(s.ready) > 0 {
		e := s.ready[0]
		if e.p.state == stateReady && e.p.wakeAt == e.wakeAt {
			return e.p
		}
		heap.Pop(&s.ready)
	}
	return nil
}

// handoff drives the simulation forward: it executes every due event and
// grants the baton to the next ready process. The caller must not be in
// state running. If nothing can run and processes remain, it records a
// deadlock error.
func (s *Scheduler) handoff() {
	for {
		if s.failed {
			return
		}
		e, eok := s.events.peek()
		q := s.minReady()
		// Events run before any process at or after their time.
		if eok && (q == nil || e.t <= q.wakeAt) {
			heap.Pop(&s.events)
			s.trace("event @%d seq%d", e.t, e.seq)
			e.fn(e.t, Waker{s: s, now: e.t})
			continue
		}
		if q != nil {
			q.state = stateRunning
			s.trace("grant p%d @%d", q.id, q.wakeAt)
			q.cv.Signal()
			return
		}
		if s.nDone == len(s.procs) {
			s.doneCv.Signal()
			return
		}
		s.fail(fmt.Errorf("vclock: deadlock: %s", s.stateDump()))
		return
	}
}

func (s *Scheduler) stateDump() string {
	var b strings.Builder
	ids := make([]int, 0, len(s.procs))
	for i := range s.procs {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	for _, i := range ids {
		p := s.procs[i]
		fmt.Fprintf(&b, "p%d=%v@%d ", i, p.state, p.clock)
	}
	fmt.Fprintf(&b, "events=%d", len(s.events))
	return b.String()
}

func (s *Scheduler) trace(format string, args ...any) {
	if s.TraceFn != nil {
		s.TraceFn(fmt.Sprintf(format, args...))
	}
}
