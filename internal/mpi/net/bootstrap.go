package net

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"offt/internal/machine"
)

// Config describes one process's membership in a world to Join.
type Config struct {
	Rank        int           // this process's rank, 0 <= Rank < Size
	Size        int           // total ranks (processes) in the world
	Coord       string        // coordinator rendezvous address (host:port); rank 0 listens on it
	Listen      string        // data listener bind address; default "127.0.0.1:0"
	World       string        // world id guarding against cross-job joins; default "offt"
	JoinTimeout time.Duration // bootstrap deadline; default 30s

	// CoordListener, when non-nil, is a pre-bound listener rank 0 uses for
	// the rendezvous instead of binding Coord itself. In-process callers
	// (tests, benchmarks) that pick a free port by listening on ":0" should
	// hand the live listener over rather than close-and-rebind — releasing
	// the port first races against the kernel reassigning it as an
	// ephemeral port to one of the world's own outbound connections. Join
	// takes ownership and closes it. Ignored for ranks != 0.
	CoordListener net.Listener
}

// helloMsg is one joining rank's registration with the coordinator.
type helloMsg struct {
	World string `json:"world"`
	Rank  int    `json:"rank"`
	Size  int    `json:"size"`
	Addr  string `json:"addr"`
}

// tableMsg is the coordinator's reply: the complete rank → data-address
// table (or a bootstrap error fanned out to every joiner).
type tableMsg struct {
	World string   `json:"world"`
	Size  int      `json:"size"`
	Addrs []string `json:"addrs,omitempty"`
	Err   string   `json:"err,omitempty"`
}

// Join forms (or joins) a world: every rank opens a data listener, rank 0
// additionally listens on the coordinator address and collects one hello
// per peer rank, then fans the complete rank → address table back out;
// finally the ranks wire a full TCP mesh (rank i dials every j < i,
// accepts from every j > i) and start the per-peer I/O goroutines.
//
// Join blocks until the whole world is connected (the rendezvous) or the
// join timeout passes.
func Join(cfg Config, opts ...Option) (*World, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("net: world size %d, need >= 1", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("net: rank %d out of range [0, %d)", cfg.Rank, cfg.Size)
	}
	if cfg.Coord == "" && cfg.Size > 1 {
		return nil, fmt.Errorf("net: coordinator address required for size %d", cfg.Size)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.World == "" {
		cfg.World = "offt"
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	deadline := time.Now().Add(cfg.JoinTimeout)

	w := &World{
		rank:        cfg.Rank,
		p:           cfg.Size,
		epoch:       time.Now(),
		mach:        machine.Laptop(),
		rto:         25 * time.Millisecond,
		hangTimeout: defaultHangTimeout,
		box:         make(map[mkey][]message),
		seen:        make(map[seenKey]struct{}),
		outstanding: make(map[int64]*outMsg),
		peers:       make([]*peer, cfg.Size),
	}
	w.cond = sync.NewCond(&w.mu)
	for _, o := range opts {
		o(w)
	}

	if cfg.Rank != 0 && cfg.CoordListener != nil {
		cfg.CoordListener.Close()
		cfg.CoordListener = nil
	}
	dataLn, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		if cfg.CoordListener != nil {
			cfg.CoordListener.Close()
		}
		return nil, fmt.Errorf("net: rank %d: data listen %s: %w", cfg.Rank, cfg.Listen, err)
	}
	defer dataLn.Close()

	var addrs []string
	if cfg.Rank == 0 {
		addrs, err = coordinate(cfg, dataLn.Addr().String(), deadline)
	} else {
		addrs, err = register(cfg, dataLn.Addr().String(), deadline)
	}
	if err != nil {
		return nil, err
	}

	if err := w.mesh(dataLn, addrs, deadline); err != nil {
		for _, pe := range w.peers {
			if pe != nil {
				pe.conn.Close()
			}
		}
		return nil, err
	}
	for _, pe := range w.peers {
		if pe == nil {
			continue
		}
		w.wg.Add(1)
		go w.reader(pe)
		go w.writer(pe)
	}
	return w, nil
}

// coordinate is rank 0's side of the rendezvous: collect size-1 hellos,
// validate them, fan the table out. Every joiner gets the table (or the
// bootstrap error) on its own rendezvous connection.
func coordinate(cfg Config, selfAddr string, deadline time.Time) ([]string, error) {
	if cfg.Size == 1 {
		if cfg.CoordListener != nil {
			cfg.CoordListener.Close()
		}
		return []string{selfAddr}, nil
	}
	coordLn := cfg.CoordListener
	if coordLn == nil {
		var err error
		coordLn, err = listenRetry(cfg.Coord, deadline)
		if err != nil {
			return nil, fmt.Errorf("net: coordinator listen %s: %w", cfg.Coord, err)
		}
	}
	defer coordLn.Close()

	addrs := make([]string, cfg.Size)
	addrs[0] = selfAddr
	conns := make([]net.Conn, 0, cfg.Size-1)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var bootErr error
	for joined := 1; joined < cfg.Size; joined++ {
		if tl, ok := coordLn.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := coordLn.Accept()
		if err != nil {
			bootErr = fmt.Errorf("net: coordinator: %d/%d ranks joined before deadline: %w", joined, cfg.Size, err)
			break
		}
		conns = append(conns, conn)
		conn.SetDeadline(deadline)
		var h helloMsg
		if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&h); err != nil {
			bootErr = fmt.Errorf("net: coordinator: bad hello: %w", err)
			break
		}
		switch {
		case h.World != cfg.World:
			bootErr = fmt.Errorf("net: coordinator: world %q joined world %q", h.World, cfg.World)
		case h.Size != cfg.Size:
			bootErr = fmt.Errorf("net: coordinator: rank %d expects size %d, world is %d", h.Rank, h.Size, cfg.Size)
		case h.Rank <= 0 || h.Rank >= cfg.Size:
			bootErr = fmt.Errorf("net: coordinator: rank %d out of range [1, %d)", h.Rank, cfg.Size)
		case addrs[h.Rank] != "":
			bootErr = fmt.Errorf("net: coordinator: duplicate rank %d (%s and %s)", h.Rank, addrs[h.Rank], h.Addr)
		default:
			addrs[h.Rank] = h.Addr
		}
		if bootErr != nil {
			break
		}
	}
	reply := tableMsg{World: cfg.World, Size: cfg.Size, Addrs: addrs}
	if bootErr != nil {
		reply = tableMsg{World: cfg.World, Size: cfg.Size, Err: bootErr.Error()}
	}
	line, _ := json.Marshal(reply)
	line = append(line, '\n')
	for _, c := range conns {
		c.SetDeadline(deadline)
		c.Write(line)
	}
	if bootErr != nil {
		return nil, bootErr
	}
	return addrs, nil
}

// register is a non-zero rank's side of the rendezvous: dial the
// coordinator (with retry — the coordinator process may not be up yet),
// announce ourselves, wait for the table.
func register(cfg Config, selfAddr string, deadline time.Time) ([]string, error) {
	conn, err := dialRetry(cfg.Coord, deadline)
	if err != nil {
		return nil, fmt.Errorf("net: rank %d: coordinator %s unreachable: %w", cfg.Rank, cfg.Coord, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	hello, _ := json.Marshal(helloMsg{World: cfg.World, Rank: cfg.Rank, Size: cfg.Size, Addr: selfAddr})
	hello = append(hello, '\n')
	if _, err := conn.Write(hello); err != nil {
		return nil, fmt.Errorf("net: rank %d: hello: %w", cfg.Rank, err)
	}
	var t tableMsg
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&t); err != nil {
		return nil, fmt.Errorf("net: rank %d: waiting for world table: %w", cfg.Rank, err)
	}
	if t.Err != "" {
		return nil, fmt.Errorf("net: rank %d: bootstrap rejected: %s", cfg.Rank, t.Err)
	}
	if t.World != cfg.World || t.Size != cfg.Size || len(t.Addrs) != cfg.Size {
		return nil, fmt.Errorf("net: rank %d: malformed world table %+v", cfg.Rank, t)
	}
	return t.Addrs, nil
}

// listenRetry binds addr, retrying address-in-use until the deadline: a
// coordinator port picked by a launcher's reserve-and-release (or left in
// use by a just-torn-down previous world) can be transiently occupied —
// typically by a short-lived ephemeral-port connection. Other bind errors
// (bad address, permissions) fail immediately.
func listenRetry(addr string, deadline time.Time) (net.Listener, error) {
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if !errors.Is(err, syscall.EADDRINUSE) || !time.Now().Add(20*time.Millisecond).Before(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// dialRetry dials addr until it answers or the deadline passes.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var last error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if last == nil {
				last = fmt.Errorf("deadline passed")
			}
			return nil, last
		}
		step := remain
		if step > time.Second {
			step = time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, step)
		if err == nil {
			return conn, nil
		}
		last = err
		time.Sleep(20 * time.Millisecond)
	}
}

// mesh wires the full pairwise mesh: rank i accepts a connection from
// every rank j > i (each announcing itself with a 4-byte rank) and dials
// every rank j < i. One duplex TCP connection serves each pair.
func (w *World) mesh(dataLn net.Listener, addrs []string, deadline time.Time) error {
	type accepted struct {
		rank int
		conn net.Conn
		err  error
	}
	expect := w.p - 1 - w.rank
	acceptCh := make(chan accepted, expect)
	if expect > 0 {
		go func() {
			for i := 0; i < expect; i++ {
				if tl, ok := dataLn.(*net.TCPListener); ok {
					tl.SetDeadline(deadline)
				}
				conn, err := dataLn.Accept()
				if err != nil {
					acceptCh <- accepted{err: fmt.Errorf("net: rank %d: mesh accept: %w", w.rank, err)}
					return
				}
				conn.SetReadDeadline(deadline)
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					conn.Close()
					acceptCh <- accepted{err: fmt.Errorf("net: rank %d: mesh hello: %w", w.rank, err)}
					return
				}
				conn.SetReadDeadline(time.Time{})
				acceptCh <- accepted{rank: int(int32(binary.LittleEndian.Uint32(hdr[:]))), conn: conn}
			}
		}()
	}
	for j := 0; j < w.rank; j++ {
		conn, err := dialRetry(addrs[j], deadline)
		if err != nil {
			return fmt.Errorf("net: rank %d: dial rank %d at %s: %w", w.rank, j, addrs[j], err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(int32(w.rank)))
		conn.SetWriteDeadline(deadline)
		if _, err := conn.Write(hdr[:]); err != nil {
			conn.Close()
			return fmt.Errorf("net: rank %d: mesh hello to rank %d: %w", w.rank, j, err)
		}
		conn.SetWriteDeadline(time.Time{})
		w.peers[j] = newPeer(j, conn)
	}
	for i := 0; i < expect; i++ {
		a := <-acceptCh
		if a.err != nil {
			return a.err
		}
		if a.rank <= w.rank || a.rank >= w.p || w.peers[a.rank] != nil {
			a.conn.Close()
			return fmt.Errorf("net: rank %d: unexpected mesh hello from rank %d", w.rank, a.rank)
		}
		w.peers[a.rank] = newPeer(a.rank, a.conn)
	}
	return nil
}
