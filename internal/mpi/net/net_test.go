package net

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"offt/internal/fft"
	"offt/internal/layout"
	"offt/internal/mpi"
	"offt/internal/mpi/fault"
	"offt/internal/mpi/mem"
	"offt/internal/pencil"
	"offt/internal/pfft"
)

// coordListener binds the coordinator rendezvous listener on a free
// loopback port. The live listener is handed to rank 0's Config
// (CoordListener) rather than closed and rebound — releasing the port
// first races against the kernel reassigning it as an ephemeral port to
// one of the world's own outbound connections.
func coordListener(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	return ln, ln.Addr().String()
}

// launch forms a p-rank world with one World per goroutine (the in-process
// stand-in for p OS processes — the TCP mesh over loopback is real) and
// runs body on every rank. Returns the per-rank Run errors.
func launch(t *testing.T, p int, opts func(rank int) []Option, body func(c *Comm)) []error {
	t.Helper()
	coordLn, coord := coordListener(t)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var o []Option
			if opts != nil {
				o = opts(rank)
			}
			cfg := Config{Rank: rank, Size: p, Coord: coord, JoinTimeout: 10 * time.Second}
			if rank == 0 {
				cfg.CoordListener = coordLn
			}
			w, err := Join(cfg, o...)
			if err != nil {
				errs[rank] = err
				return
			}
			defer w.Close()
			errs[rank] = w.Run(body)
		}(r)
	}
	wg.Wait()
	return errs
}

func checkErrs(t *testing.T, errs []error) {
	t.Helper()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// testCounts is an uneven count matrix with zero blocks mixed in.
func testCounts(p int) [][]int {
	counts := make([][]int, p)
	for s := 0; s < p; s++ {
		counts[s] = make([]int, p)
		for d := 0; d < p; d++ {
			counts[s][d] = ((s+1)*(d+2) + s*d) % 5
		}
	}
	return counts
}

// blockElem is the deterministic payload element k of the src→dst block.
func blockElem(src, dst, k int) complex128 {
	return complex(float64(src*1000+dst*100+k), float64(src-dst)+0.25)
}

func buildSend(rank int, counts [][]int) ([]complex128, []int) {
	p := len(counts)
	sc := make([]int, p)
	var send []complex128
	for d := 0; d < p; d++ {
		sc[d] = counts[rank][d]
		for k := 0; k < sc[d]; k++ {
			send = append(send, blockElem(rank, d, k))
		}
	}
	return send, sc
}

func wantRecv(rank int, counts [][]int) ([]complex128, []int) {
	p := len(counts)
	rc := make([]int, p)
	var want []complex128
	for s := 0; s < p; s++ {
		rc[s] = counts[s][rank]
		for k := 0; k < rc[s]; k++ {
			want = append(want, blockElem(s, rank, k))
		}
	}
	return want, rc
}

// exchanges is the full schedule matrix: window and node size chosen so
// that windowed (window < p-1) and hier (2 nodes of 2) genuinely exercise
// their protocols at p = 4 instead of degenerating to pairwise.
func exchanges() map[string]mpi.Exchange {
	return map[string]mpi.Exchange{
		"pairwise": {Alg: mpi.CommPairwise},
		"bruck":    {Alg: mpi.CommBruck},
		"hier":     {Alg: mpi.CommHier, NodeSize: 2},
		"windowed": {Alg: mpi.CommWindowed, Window: 2},
	}
}

// TestAlltoallvSchedules runs every exchange schedule over the loopback
// TCP mesh and checks the receive buffers element-for-element against the
// analytic expectation AND bit-for-bit against the mem engine running the
// identical collective.
func TestAlltoallvSchedules(t *testing.T) {
	const p = 4
	counts := testCounts(p)
	for name, ex := range exchanges() {
		ex := ex
		t.Run(name, func(t *testing.T) {
			collect := func(c mpi.Comm) []complex128 {
				mpi.SetExchange(c, ex)
				rank := c.Rank()
				send, sc := buildSend(rank, counts)
				want, rc := wantRecv(rank, counts)
				recv := make([]complex128, len(want))
				c.Wait(c.Ialltoallv(send, sc, recv, rc))
				return recv
			}

			netRecv := make([][]complex128, p)
			errs := launch(t, p, nil, func(c *Comm) {
				netRecv[c.Rank()] = collect(c)
			})
			checkErrs(t, errs)

			memRecv := make([][]complex128, p)
			w := mem.NewWorld(p)
			if err := w.Run(func(c *mem.Comm) {
				memRecv[c.Rank()] = collect(c)
			}); err != nil {
				t.Fatalf("mem world: %v", err)
			}

			for r := 0; r < p; r++ {
				want, _ := wantRecv(r, counts)
				for i := range want {
					if netRecv[r][i] != want[i] {
						t.Fatalf("rank %d element %d: net %v, want %v", r, i, netRecv[r][i], want[i])
					}
					if netRecv[r][i] != memRecv[r][i] {
						t.Fatalf("rank %d element %d: net %v != mem %v", r, i, netRecv[r][i], memRecv[r][i])
					}
				}
			}
		})
	}
}

// TestWorldSize1 exercises the degenerate single-process world: no
// coordinator, no mesh, self-copy collectives only.
func TestWorldSize1(t *testing.T) {
	w, err := Join(Config{Rank: 0, Size: 1})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) {
		send := []complex128{1 + 2i, 3 + 4i}
		recv := make([]complex128, 2)
		c.Alltoallv(send, []int{2}, recv, []int{2})
		if recv[0] != send[0] || recv[1] != send[1] {
			panic(fmt.Sprintf("self exchange: got %v", recv))
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestBarrier checks the dissemination barrier's ordering guarantee: no
// rank observes fewer than p·k increments after the k-th barrier (every
// rank incremented before anyone left), and no rank can be more than one
// iteration ahead.
func TestBarrier(t *testing.T) {
	const p, iters = 4, 5
	var ctr atomic.Int64
	errs := launch(t, p, nil, func(c *Comm) {
		for k := 0; k < iters; k++ {
			ctr.Add(1)
			c.Barrier()
			got := ctr.Load()
			lo, hi := int64(p*(k+1)), int64(p*(k+2)-1)
			if got < lo || got > hi {
				panic(fmt.Sprintf("after barrier %d: counter %d outside [%d, %d]", k, got, lo, hi))
			}
		}
	})
	checkErrs(t, errs)
}

// TestChaosRecovery drives repeated collectives through an injected fault
// mix and requires exact results plus evidence that the recovery protocol
// actually ran. The Force* knobs make the plan deterministic: every
// message's first delivery attempt is dropped and its second corrupted,
// so every single message must survive two recovery cycles (retransmit
// after the drop, checksum rejection + retransmit after the corruption).
func TestChaosRecovery(t *testing.T) {
	const p, rounds = 4, 3
	plan := &fault.Plan{
		Seed:                 7,
		DupRate:              0.05,
		JitterNs:             100_000,
		ForceDropAttempts:    1,
		ForceCorruptAttempts: 2,
	}
	counts := testCounts(p)
	var healthMu sync.Mutex
	var total mpi.Health
	opts := func(rank int) []Option {
		return []Option{WithFaults(plan), WithRetransmitTimeout(2 * time.Millisecond)}
	}
	errs := launch(t, p, opts, func(c *Comm) {
		rank := c.Rank()
		send, sc := buildSend(rank, counts)
		want, rc := wantRecv(rank, counts)
		for round := 0; round < rounds; round++ {
			recv := make([]complex128, len(want))
			c.Wait(c.Ialltoallv(send, sc, recv, rc))
			for i := range want {
				if recv[i] != want[i] {
					panic(fmt.Sprintf("round %d element %d: got %v, want %v", round, i, recv[i], want[i]))
				}
			}
		}
		h := c.TransportHealth()
		healthMu.Lock()
		total.DropsInjected += h.DropsInjected
		total.CorruptionsInjected += h.CorruptionsInjected
		total.CorruptionsDetected += h.CorruptionsDetected
		total.Retransmits += h.Retransmits
		total.Dedups += h.Dedups
		total.Delivered += h.Delivered
		healthMu.Unlock()
	})
	checkErrs(t, errs)
	if total.Delivered == 0 {
		t.Fatal("no deliveries recorded")
	}
	if total.DropsInjected == 0 || total.CorruptionsInjected == 0 {
		t.Fatalf("forced faults not injected: %d drops, %d corruptions", total.DropsInjected, total.CorruptionsInjected)
	}
	if total.Retransmits == 0 {
		t.Errorf("injected faults (%d drops, %d corruptions) but zero retransmits", total.DropsInjected, total.CorruptionsInjected)
	}
	if total.CorruptionsDetected == 0 {
		t.Errorf("%d corruptions injected, none detected by checksum", total.CorruptionsInjected)
	}
}

// TestPeerLossFailsSurvivors kills one rank's connections under a live
// world and requires the survivors to surface a prompt *PeerError world
// failure instead of hanging in the collective.
func TestPeerLossFailsSurvivors(t *testing.T) {
	const p = 3
	coordLn, coord := coordListener(t)
	worlds := make([]*World, p)
	joinErrs := make([]error, p)
	var jwg sync.WaitGroup
	for r := 0; r < p; r++ {
		jwg.Add(1)
		go func(rank int) {
			defer jwg.Done()
			cfg := Config{Rank: rank, Size: p, Coord: coord, JoinTimeout: 10 * time.Second}
			if rank == 0 {
				cfg.CoordListener = coordLn
			}
			worlds[rank], joinErrs[rank] = Join(cfg, WithHangTimeout(5*time.Second))
		}(r)
	}
	jwg.Wait()
	for r, err := range joinErrs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()

	counts := testCounts(p)
	runErrs := make([]error, p-1)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < p-1; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			runErrs[rank] = worlds[rank].Run(func(c *Comm) {
				send, sc := buildSend(rank, counts)
				want, rc := wantRecv(rank, counts)
				recv := make([]complex128, len(want))
				c.Wait(c.Ialltoallv(send, sc, recv, rc))
			})
		}(r)
	}
	// Rank p-1 "dies" without ever entering the collective: its process
	// shutdown tears the TCP connections down under the survivors.
	worlds[p-1].Close()
	wg.Wait()
	elapsed := time.Since(start)

	for r := 0; r < p-1; r++ {
		if runErrs[r] == nil {
			t.Fatalf("rank %d: Run succeeded despite a dead peer", r)
		}
		var pe *PeerError
		if !errors.As(runErrs[r], &pe) {
			t.Fatalf("rank %d: error %v (%T) is not a *PeerError", r, runErrs[r], runErrs[r])
		}
		if pe.Peer != p-1 {
			t.Errorf("rank %d: blamed peer %d, want %d", r, pe.Peer, p-1)
		}
	}
	// "Prompt" means the EOF propagated, not the 5s hang timeout.
	if elapsed > 3*time.Second {
		t.Errorf("survivors took %v to fail; the conn-loss path did not fire", elapsed)
	}
}

// TestBootstrapRejectsMismatchedWorld: a joiner carrying the wrong world
// id must be rejected by the coordinator, and the whole bootstrap must
// fail cleanly on both sides.
func TestBootstrapRejectsMismatchedWorld(t *testing.T) {
	coordLn, coord := coordListener(t)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		w, err := Join(Config{Rank: 0, Size: 2, Coord: coord, World: "alpha", JoinTimeout: 5 * time.Second, CoordListener: coordLn})
		if w != nil {
			w.Close()
		}
		errs[0] = err
	}()
	go func() {
		defer wg.Done()
		w, err := Join(Config{Rank: 1, Size: 2, Coord: coord, World: "beta", JoinTimeout: 5 * time.Second})
		if w != nil {
			w.Close()
		}
		errs[1] = err
	}()
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: bootstrap succeeded across mismatched worlds", r)
		}
	}
}

func randCube(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	full := make([]complex128, n)
	for i := range full {
		full[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return full
}

// TestForwardMatchesMemSlab runs the full pfft slab pipeline over the net
// engine for every exchange schedule and requires each rank's output slab
// to be bit-identical to the mem engine's.
func TestForwardMatchesMemSlab(t *testing.T) {
	const p, n = 4, 16
	full := randCube(n*n*n, 42)
	for _, alg := range mpi.CommAlgs() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			body := func(c mpi.Comm, rank int) []complex128 {
				g, err := layout.NewGrid(n, n, n, p, rank)
				if err != nil {
					panic(err)
				}
				prm := pfft.DefaultParams(g)
				prm.Comm = alg
				out, _, err := pfft.Forward3D(c, g, layout.ScatterX(full, g), pfft.NEW, prm, fft.Estimate)
				if err != nil {
					panic(err)
				}
				return out
			}

			netOuts := make([][]complex128, p)
			errs := launch(t, p, nil, func(c *Comm) {
				netOuts[c.Rank()] = body(c, c.Rank())
			})
			checkErrs(t, errs)

			memOuts := make([][]complex128, p)
			w := mem.NewWorld(p)
			if err := w.Run(func(c *mem.Comm) {
				memOuts[c.Rank()] = body(c, c.Rank())
			}); err != nil {
				t.Fatalf("mem world: %v", err)
			}

			for r := 0; r < p; r++ {
				if len(netOuts[r]) != len(memOuts[r]) {
					t.Fatalf("rank %d: net %d elements, mem %d", r, len(netOuts[r]), len(memOuts[r]))
				}
				for i := range netOuts[r] {
					if netOuts[r][i] != memOuts[r][i] {
						t.Fatalf("rank %d element %d: net %v != mem %v", r, i, netOuts[r][i], memOuts[r][i])
					}
				}
			}
		})
	}
}

// TestForwardMatchesMemPencil is the same cross-engine bit-identity check
// on the 2-D pencil decomposition (2×2 process grid).
func TestForwardMatchesMemPencil(t *testing.T) {
	const pr, pc, n = 2, 2, 16
	const p = pr * pc
	full := randCube(n*n*n, 42)
	for _, alg := range mpi.CommAlgs() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			body := func(c mpi.Comm, rank int) []complex128 {
				g, err := pencil.NewGrid2D(n, n, n, pr, pc, rank)
				if err != nil {
					panic(err)
				}
				prm := pencil.DefaultParams2D(g)
				prm.Comm = alg
				pl, err := pencil.NewPlan(c, g, pfft.NEW, prm, fft.Estimate)
				if err != nil {
					panic(err)
				}
				defer pl.Close()
				slab := make([]complex128, g.InSize())
				pencil.ScatterPencilInto(slab, full, g)
				out, _, err := pl.Forward(slab)
				if err != nil {
					panic(err)
				}
				return append([]complex128(nil), out...)
			}

			netOuts := make([][]complex128, p)
			errs := launch(t, p, nil, func(c *Comm) {
				netOuts[c.Rank()] = body(c, c.Rank())
			})
			checkErrs(t, errs)

			memOuts := make([][]complex128, p)
			w := mem.NewWorld(p)
			if err := w.Run(func(c *mem.Comm) {
				memOuts[c.Rank()] = body(c, c.Rank())
			}); err != nil {
				t.Fatalf("mem world: %v", err)
			}

			for r := 0; r < p; r++ {
				for i := range netOuts[r] {
					if netOuts[r][i] != memOuts[r][i] {
						t.Fatalf("rank %d element %d: net %v != mem %v", r, i, netOuts[r][i], memOuts[r][i])
					}
				}
			}
		})
	}
}
