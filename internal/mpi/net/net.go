// Package net implements the mpi.Comm interface across OS processes: a
// World spans one rank per process, connected pairwise by TCP over a
// full mesh formed at bootstrap (package-level Join; one coordinator
// address + a rank handshake). It is the third engine next to mem
// (goroutine ranks, shared-memory mailbox) and sim (virtual time).
//
// The transport speaks the shared envelope protocol (package
// mpi/envelope): length-prefixed frames carrying sequence-numbered,
// checksummed payloads, acknowledged by the receiver and retransmitted
// with capped exponential backoff by the sender. TCP already guarantees
// delivery — the protocol layer exists so the existing fault-injection
// surfaces (mpi/fault chaos profiles: drops, corruption, duplication,
// NIC stalls) work unchanged above the socket, and so a lost peer
// process converts into a prompt world failure instead of a hang.
//
// All four exchange schedules (pairwise, windowed, Bruck, hierarchical;
// package mpi/sched) run over this engine bit-identically to the mem
// engine: the schedules are shared code and the mailbox semantics are
// identical.
package net

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"offt/internal/machine"
	"offt/internal/mpi"
	"offt/internal/mpi/envelope"
	"offt/internal/mpi/fault"
	"offt/internal/mpi/sched"
	"offt/internal/telemetry"
)

// Option configures a World at Join time.
type Option func(*World)

// WithFaults attaches a deterministic fault plan to the transport:
// injected drops, corruptions, duplicates and stalls are applied above
// the socket, recovered by the envelope protocol.
func WithFaults(plan *fault.Plan) Option {
	return func(w *World) {
		if plan != nil {
			w.plan = plan
		}
	}
}

// WithDeadline sets the soft deadline used by Comm.WaitDeadline: when a
// wait exceeds d, WaitDeadline returns a *DeadlineError describing the
// missing blocks instead of blocking further. Plain Wait is unaffected.
func WithDeadline(d time.Duration) Option {
	return func(w *World) { w.deadline = d }
}

// WithHangTimeout sets the hard limit on every Wait and Barrier call;
// past it the world fails with a diagnostic error instead of hanging.
// Unlike the mem engine there is no global deadlock watchdog (no process
// can see the whole world), so the per-call limit is always armed — the
// default is 20s. d <= 0 disables it.
func WithHangTimeout(d time.Duration) Option {
	return func(w *World) { w.hangTimeout = d }
}

// WithRetransmitTimeout sets the base retransmission timeout of the
// envelope protocol (default 25ms; backoff doubles it per attempt up to
// 16×). Mostly interesting under fault injection — without injected
// drops, acks win the race against the timer.
func WithRetransmitTimeout(d time.Duration) Option {
	return func(w *World) {
		if d > 0 {
			w.rto = d
		}
	}
}

// WithMachine sets the machine model used for topology defaults (the
// hierarchical schedule's ranks-per-node grouping). No delay emulation is
// applied — the wire is real.
func WithMachine(m machine.Machine) Option {
	return func(w *World) { w.mach = m }
}

// defaultHangTimeout mirrors the mem engine's watchdog default.
const defaultHangTimeout = 20 * time.Second

type mkey struct{ src, tag int }

type seenKey struct {
	src int
	id  int64
}

type message struct {
	data []complex128
}

// World is this process's membership in a multi-process job: one local
// rank, p-1 peer connections. Create it with Join; a World runs one body
// (Run) and is then closed.
type World struct {
	rank, p int
	epoch   time.Time
	mach    machine.Machine

	plan        *fault.Plan
	rto         time.Duration
	deadline    time.Duration // soft deadline for WaitDeadline; 0 = disabled
	hangTimeout time.Duration // hard per-call limit; <= 0 = disabled

	mu      sync.Mutex
	cond    *sync.Cond
	box     map[mkey][]message
	seen    map[seenKey]struct{}
	blocked blockInfo
	failed  error
	closed  bool
	done    bool // Run completed (teardown barrier passed)

	nextID      int64
	outstanding map[int64]*outMsg

	peers []*peer // indexed by rank; peers[w.rank] == nil
	wg    sync.WaitGroup

	stats counters
}

// Rank returns this process's rank in the world.
func (w *World) Rank() int { return w.rank }

// Size returns the number of ranks (processes) in the world.
func (w *World) Size() int { return w.p }

// Health returns a snapshot of the world's transport-recovery counters.
func (w *World) Health() mpi.Health { return w.stats.snapshot() }

// RegisterTelemetry bridges the transport-recovery counters into a
// telemetry registry under "net.transport.*" (same counter set as the mem
// engine's "mem.transport.*"). Safe on a nil registry.
func (w *World) RegisterTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.Func("net.transport.sent", w.stats.sent.Load)
	r.Func("net.transport.delivered", w.stats.delivered.Load)
	r.Func("net.transport.retransmits", w.stats.retransmits.Load)
	r.Func("net.transport.dedups", w.stats.dedups.Load)
	r.Func("net.transport.acks", w.stats.acks.Load)
	r.Func("net.transport.backoffs", w.stats.backoffs.Load)
	r.Func("net.transport.drops_injected", w.stats.dropsInjected.Load)
	r.Func("net.transport.corruptions_injected", w.stats.corruptionsInjected.Load)
	r.Func("net.transport.duplicates_injected", w.stats.duplicatesInjected.Load)
	r.Func("net.transport.corruptions_detected", w.stats.corruptionsDetected.Load)
}

// WorldFailure is the panic payload a failed world delivers to the rank
// blocked in Wait or Barrier, mirroring the mem engine's semantics. Run
// unwraps it into a plain error.
type WorldFailure struct{ Err error }

func (f WorldFailure) Error() string { return f.Err.Error() }

// PeerError is the failure cause when a peer's connection dies on a live
// world: the survivors surface it promptly instead of hanging.
type PeerError struct {
	Rank int // local rank observing the loss
	Peer int // rank whose connection died
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("net: rank %d: world failed: connection to rank %d lost: %v", e.Rank, e.Peer, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// fail marks the world failed with cause and wakes the parked rank.
// Idempotent: only the first failure sticks.
func (w *World) fail(cause error) {
	w.mu.Lock()
	if w.failed == nil && !w.closed {
		w.failed = cause
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// Fail is the administrative kill switch (mirrors mem.World.Fail).
func (w *World) Fail(cause error) {
	if cause == nil {
		cause = fmt.Errorf("net: world failed")
	}
	w.fail(cause)
}

// Failed reports the world's failure cause (nil while healthy).
func (w *World) Failed() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Run executes body on this process's rank and returns when it finishes.
// A teardown barrier after body keeps the process alive until every rank's
// body returned, so no peer tears its connections down under a still-
// working world. A panic in body — including the WorldFailure a failed
// world raises — is returned as an error. A World runs one body; call
// Close afterwards.
func (w *World) Run(body func(c *Comm)) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if wf, ok := rec.(WorldFailure); ok {
				err = wf.Err
			} else {
				err = fmt.Errorf("net: rank %d panicked: %v", w.rank, rec)
			}
		}
	}()
	c := &Comm{w: w}
	body(c)
	c.Barrier()
	w.mu.Lock()
	w.done = true
	w.mu.Unlock()
	return nil
}

// Close tears the world down. After a completed Run (teardown barrier
// passed) the shutdown is graceful: the unacked window drains first
// (bounded), then each writer flushes what is queued — final barrier
// tokens, acks — then a fin departure marker, half-closes its
// connection (TCP FIN), and the readers drain each peer's stream to
// EOF before the sockets close fully. Draining both directions keeps
// either side from closing with unread data (which would RST the
// connection and destroy in-flight frames on the peer). After a failed or
// never-run world the teardown is abrupt — peers see an EOF with no fin
// and fail promptly, which is exactly the killed-process semantics.
// Idempotent.
func (w *World) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	graceful := w.done && w.failed == nil
	if graceful {
		// Drain the unacked window before declaring the world closed. A
		// rank can pass the teardown barrier while a peer is still inside
		// it, waiting on this rank's final token — under fault injection
		// that token may still need retransmission cycles, and cancelling
		// its timer below would destroy it and hang the peer.
		deadline := time.Now().Add(2 * time.Second)
		for len(w.outstanding) > 0 && w.failed == nil && time.Now().Before(deadline) {
			w.mu.Unlock()
			time.Sleep(time.Millisecond)
			w.mu.Lock()
		}
		graceful = w.failed == nil
	}
	w.closed = true
	for id, om := range w.outstanding {
		if om.timer != nil {
			om.timer.Stop()
		}
		delete(w.outstanding, id)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, pe := range w.peers {
		if pe == nil {
			continue
		}
		if graceful {
			pe.enqueue(envelope.AppendFin(nil))
		}
		pe.beginClose()
	}
	flushed := make(chan struct{})
	go func() {
		for _, pe := range w.peers {
			if pe != nil {
				<-pe.done
			}
		}
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-time.After(2 * time.Second):
	}
	readersDone := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(readersDone)
	}()
	if graceful {
		// Give every peer's stream the chance to drain to EOF before the
		// hard close below can discard it.
		select {
		case <-readersDone:
		case <-time.After(2 * time.Second):
		}
	}
	for _, pe := range w.peers {
		if pe != nil {
			pe.conn.Close()
		}
	}
	<-readersDone
	return nil
}

// tryClaim removes and returns the first message matching k, if present.
func (w *World) tryClaim(k mkey) ([]complex128, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	q := w.box[k]
	if len(q) == 0 {
		return nil, false
	}
	m := q[0]
	if len(q) == 1 {
		delete(w.box, k)
	} else {
		w.box[k] = q[1:]
	}
	return m.data, true
}

// Comm is the local rank's communicator. It implements mpi.Comm plus the
// optional capability interfaces (ExchangeSetter, DeadlineWaiter,
// HealthReporter) so pfft/pencil plans run over it unchanged.
type Comm struct {
	w   *World
	seq int
	ex  mpi.Exchange
	pkt []complex128 // reusable packet-assembly scratch (Bruck/hier)
}

var (
	_ mpi.Comm           = (*Comm)(nil)
	_ mpi.DeadlineWaiter = (*Comm)(nil)
	_ mpi.HealthReporter = (*Comm)(nil)
	_ mpi.ExchangeSetter = (*Comm)(nil)
	_ sched.Port         = (*Comm)(nil)
)

// SetExchange selects the all-to-all schedule for collectives posted from
// now on (mpi.ExchangeSetter). Every rank must apply the same Exchange
// before matching collectives.
func (c *Comm) SetExchange(ex mpi.Exchange) { c.ex = ex }

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.w.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.w.p }

// Now returns wall time since the world was joined, in nanoseconds.
func (c *Comm) Now() int64 { return time.Since(c.w.epoch).Nanoseconds() }

// TransportHealth returns the world's recovery counters.
func (c *Comm) TransportHealth() mpi.Health { return c.w.Health() }

// ---- sched.Port implementation --------------------------------------------

// NextTags reserves n consecutive collective sequence numbers (the SPMD
// tag-alignment contract).
func (c *Comm) NextTags(n int) int {
	t := c.seq
	c.seq += n
	return t
}

// Send hands one block to the transport (eager-buffered).
func (c *Comm) Send(dst, tag int, data []complex128) { c.w.send(dst, tag, data) }

// TryClaim removes and returns the first mailbox message from (src, tag).
func (c *Comm) TryClaim(src, tag int) ([]complex128, bool) {
	return c.w.tryClaim(mkey{src, tag})
}

// Queued reports whether a message from (src, tag) is in the mailbox.
// Called with w.mu held (the wait loop's park predicate).
func (c *Comm) Queued(src, tag int) bool {
	return len(c.w.box[mkey{src, tag}]) > 0
}

// Scratch returns the rank's reusable packet-assembly buffer, grown to n.
func (c *Comm) Scratch(n int) []complex128 {
	if cap(c.pkt) < n {
		c.pkt = make([]complex128, n)
	}
	return c.pkt[:n]
}

// NodeSize is the machine model's ranks-per-node grouping, the default
// for the hierarchical schedule when the Exchange does not pin one.
func (c *Comm) NodeSize() int { return c.w.mach.CoresPerNode }

// ---- collectives ------------------------------------------------------------

// Ialltoallv starts a non-blocking all-to-all under the configured
// exchange schedule (see package mpi/sched; pairwise by default).
func (c *Comm) Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) mpi.Request {
	return sched.Post(c, c.ex, send, sendCounts, recv, recvCounts)
}

// Alltoallv performs a blocking all-to-all.
func (c *Comm) Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) {
	r := c.Ialltoallv(send, sendCounts, recv, recvCounts)
	c.Wait(r)
}

// Test drains whatever has arrived and reports completion.
func (c *Comm) Test(reqs ...mpi.Request) bool {
	all := true
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if !r.(sched.Request).Drain() {
			all = false
		}
	}
	return all
}

// Wait blocks until all requests complete, draining as frames arrive. A
// wait exceeding the hang timeout fails the world with a diagnostic error
// instead of hanging (there is no global watchdog across processes).
func (c *Comm) Wait(reqs ...mpi.Request) {
	if err := c.waitInner(reqs, c.w.hangTimeout, true); err != nil {
		panic(WorldFailure{err})
	}
}

// WaitDeadline blocks like Wait but gives up once the world's soft
// deadline (WithDeadline) passes, returning a *DeadlineError naming the
// collectives and source ranks still missing. The requests stay valid: a
// subsequent Wait continues from where WaitDeadline left off. Without a
// configured deadline it is exactly Wait.
func (c *Comm) WaitDeadline(reqs ...mpi.Request) error {
	if c.w.deadline <= 0 {
		c.Wait(reqs...)
		return nil
	}
	return c.waitInner(reqs, c.w.deadline, false)
}

// waitInner drains until every request completes or the limit passes.
// hard limits convert into world failures (via the caller's panic);
// soft ones return a *DeadlineError.
func (c *Comm) waitInner(reqs []mpi.Request, limit time.Duration, hard bool) error {
	w := c.w
	var deadline time.Time
	if limit > 0 {
		deadline = time.Now().Add(limit)
		// The cond has no timed wait: a one-shot timer wakes this rank so
		// the loop can observe the deadline.
		timer := time.AfterFunc(limit, func() {
			w.mu.Lock()
			w.cond.Broadcast()
			w.mu.Unlock()
		})
		defer timer.Stop()
	}
	for {
		if c.Test(reqs...) {
			return nil
		}
		w.mu.Lock()
		if w.failed != nil {
			err := w.failed
			w.mu.Unlock()
			panic(WorldFailure{err})
		}
		if limit > 0 && !time.Now().Before(deadline) {
			err := c.deadlineErr(reqs, limit, hard)
			w.mu.Unlock()
			return err
		}
		avail := false
		for _, r := range reqs {
			if r == nil {
				continue
			}
			if r.(sched.Request).Queued() {
				avail = true
			}
		}
		if !avail {
			w.blocked = waitBlockInfo(reqs)
			w.cond.Wait()
			w.blocked = blockInfo{}
		}
		w.mu.Unlock()
	}
}

// Barrier blocks until all ranks arrive: a dissemination barrier of
// ⌈log2 p⌉ token rounds over the ordinary transport (so it works across
// processes, recovers under fault injection, and respects the SPMD tag
// sequence). No rank leaves before every rank has entered.
func (c *Comm) Barrier() {
	w := c.w
	p := w.p
	if p == 1 {
		return
	}
	rounds := 0
	for (1 << rounds) < p {
		rounds++
	}
	base := c.NextTags(rounds)
	token := []complex128{complex(1, 0)}
	for k := 0; k < rounds; k++ {
		dst := (c.w.rank + (1 << k)) % p
		src := (c.w.rank - (1 << k) + p) % p
		w.send(dst, base+k, token)
		c.claimBlocking(src, base+k, fmt.Sprintf("Barrier round %d/%d", k+1, rounds))
	}
}

// claimBlocking waits for one message from (src, tag), honoring the hang
// timeout and world-failure semantics.
func (c *Comm) claimBlocking(src, tag int, what string) []complex128 {
	w := c.w
	k := mkey{src, tag}
	var deadline time.Time
	if w.hangTimeout > 0 {
		deadline = time.Now().Add(w.hangTimeout)
		timer := time.AfterFunc(w.hangTimeout, func() {
			w.mu.Lock()
			w.cond.Broadcast()
			w.mu.Unlock()
		})
		defer timer.Stop()
	}
	for {
		if data, ok := w.tryClaim(k); ok {
			return data
		}
		w.mu.Lock()
		if w.failed != nil {
			err := w.failed
			w.mu.Unlock()
			panic(WorldFailure{err})
		}
		if w.hangTimeout > 0 && !time.Now().Before(deadline) {
			w.mu.Unlock()
			panic(WorldFailure{fmt.Errorf("net: rank %d: %s timed out after %v waiting on rank %d (collective seq %d)",
				w.rank, what, w.hangTimeout, src, tag)})
		}
		if len(w.box[k]) == 0 {
			w.blocked = blockInfo{kind: blockedWait, seqs: []int{tag}, missing: []int{src}}
			w.cond.Wait()
			w.blocked = blockInfo{}
		}
		w.mu.Unlock()
	}
}

// ---- diagnostics ------------------------------------------------------------

// blockInfo describes what the parked rank is blocked on.
type blockInfo struct {
	kind    blockKind
	seqs    []int
	missing []int
}

type blockKind int

const (
	notBlocked blockKind = iota
	blockedWait
)

// waitBlockInfo summarizes a set of incomplete requests.
func waitBlockInfo(reqs []mpi.Request) blockInfo {
	info := blockInfo{kind: blockedWait}
	from := map[int]bool{}
	for _, r := range reqs {
		if r == nil {
			continue
		}
		seqs, missing := r.(sched.Request).Missing()
		if len(seqs) == 0 {
			continue
		}
		info.seqs = append(info.seqs, seqs...)
		for _, s := range missing {
			from[s] = true
		}
	}
	for s := range from {
		info.missing = append(info.missing, s)
	}
	sort.Ints(info.seqs)
	sort.Ints(info.missing)
	return info
}

// DeadlineError reports a Wait that exceeded its limit: which collectives
// (by sequence number) are incomplete and which source ranks' blocks are
// missing. Shape mirrors the mem engine's DeadlineError.
type DeadlineError struct {
	Rank    int
	Timeout time.Duration
	Hard    bool // true when raised by the hang timeout, not the soft deadline
	Missing []MissingBlocks
}

// MissingBlocks names one incomplete collective of a timed-out wait.
type MissingBlocks struct {
	Seq  int   // collective sequence number
	From []int // source ranks whose blocks have not arrived
}

func (e *DeadlineError) Error() string {
	var sb strings.Builder
	kind := "wait deadline"
	if e.Hard {
		kind = "hang timeout"
	}
	fmt.Fprintf(&sb, "net: rank %d: %s %v exceeded:", e.Rank, kind, e.Timeout)
	for _, m := range e.Missing {
		fmt.Fprintf(&sb, " collective seq %d missing blocks from ranks %v;", m.Seq, m.From)
	}
	return strings.TrimSuffix(sb.String(), ";")
}

// deadlineErr builds the diagnostic for a timed-out wait (w.mu held).
func (c *Comm) deadlineErr(reqs []mpi.Request, limit time.Duration, hard bool) *DeadlineError {
	e := &DeadlineError{Rank: c.w.rank, Timeout: limit, Hard: hard}
	for _, r := range reqs {
		if r == nil {
			continue
		}
		seqs, from := r.(sched.Request).Missing()
		if len(seqs) == 0 {
			continue
		}
		m := MissingBlocks{Seq: seqs[0], From: append([]int(nil), from...)}
		sort.Ints(m.From)
		e.Missing = append(e.Missing, m)
	}
	sort.Slice(e.Missing, func(i, j int) bool { return e.Missing[i].Seq < e.Missing[j].Seq })
	return e
}
