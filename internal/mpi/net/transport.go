package net

import (
	"sync"
	"sync/atomic"
	"time"

	"offt/internal/mpi"
	"offt/internal/mpi/envelope"
	"offt/internal/mpi/fault"
)

// maxFrameBytes bounds one wire frame (guards a malformed or hostile peer
// from forcing a huge allocation). 1 GiB covers any exchange this repo can
// produce with a wide margin.
const maxFrameBytes = 1 << 30

// maxBackoff caps the exponential retransmission backoff at rto << maxBackoff.
const maxBackoff = 4

// counters aggregates transport-recovery activity world-wide, mirroring
// the mem engine's counter set so mpi.Health means the same thing on both
// engines. All fields are updated atomically.
type counters struct {
	sent, delivered                    atomic.Int64
	dropsInjected, corruptionsInjected atomic.Int64
	duplicatesInjected, retransmits    atomic.Int64
	dedups, corruptionsDetected        atomic.Int64
	acks, backoffs                     atomic.Int64
}

func (s *counters) snapshot() mpi.Health {
	return mpi.Health{
		Sent:                s.sent.Load(),
		Delivered:           s.delivered.Load(),
		DropsInjected:       s.dropsInjected.Load(),
		CorruptionsInjected: s.corruptionsInjected.Load(),
		DuplicatesInjected:  s.duplicatesInjected.Load(),
		Retransmits:         s.retransmits.Load(),
		Dedups:              s.dedups.Load(),
		CorruptionsDetected: s.corruptionsDetected.Load(),
		Acks:                s.acks.Load(),
		Backoffs:            s.backoffs.Load(),
	}
}

// outMsg tracks an unacknowledged envelope on the sender side. frame
// caches the clean encoding for retransmission.
type outMsg struct {
	env   *envelope.Envelope
	frame []byte
	timer *time.Timer
}

// peer is one TCP connection to another rank: a reader goroutine (owned by
// the World) decodes inbound frames; a writer goroutine drains the
// unbounded outbox. The outbox is unbounded deliberately — the receive
// path enqueues acks, so a bounded queue could deadlock the protocol.
type peer struct {
	rank int
	conn connLike

	fin atomic.Bool // peer sent its graceful-departure marker

	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]byte
	closing bool  // drain the queue, then exit the writer
	dead    bool  // conn failed; enqueue becomes a no-op
	werr    error // the write error that killed the conn, if any
	done    chan struct{}
}

// connLike is the subset of net.Conn the transport uses (test seam).
type connLike interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	Close() error
}

// writeCloser is the optional half-close a *net.TCPConn provides: the
// graceful teardown flushes, sends TCP FIN, and keeps reading, so neither
// side ever closes with unread data in its receive buffer (which would
// RST the connection and destroy in-flight frames on the other side).
type writeCloser interface {
	CloseWrite() error
}

func newPeer(rank int, conn connLike) *peer {
	pe := &peer{rank: rank, conn: conn, done: make(chan struct{})}
	pe.cond = sync.NewCond(&pe.mu)
	return pe
}

// enqueue hands one encoded frame to the writer. Never blocks.
func (pe *peer) enqueue(frame []byte) {
	pe.mu.Lock()
	if pe.closing || pe.dead {
		pe.mu.Unlock()
		return
	}
	pe.queue = append(pe.queue, frame)
	pe.cond.Signal()
	pe.mu.Unlock()
}

// beginClose tells the writer to drain what is queued and exit; further
// enqueues are dropped.
func (pe *peer) beginClose() {
	pe.mu.Lock()
	pe.closing = true
	pe.cond.Broadcast()
	pe.mu.Unlock()
}

// writer is the per-peer write loop: it batches whatever is queued and
// puts it on the wire. After a close-drain it half-closes the connection
// (TCP FIN), leaving the read side open so the reader can drain the peer.
// On write error it marks the peer dead and tears the connection down;
// the reader is the single failure arbiter (it sees the resulting read
// error, and knows whether the peer departed gracefully).
func (w *World) writer(pe *peer) {
	defer close(pe.done)
	for {
		pe.mu.Lock()
		for len(pe.queue) == 0 && !pe.closing {
			pe.cond.Wait()
		}
		if len(pe.queue) == 0 && pe.closing {
			pe.mu.Unlock()
			if cw, ok := pe.conn.(writeCloser); ok {
				cw.CloseWrite()
			}
			return
		}
		batch := pe.queue
		pe.queue = nil
		pe.mu.Unlock()
		for _, frame := range batch {
			if _, err := pe.conn.Write(frame); err != nil {
				pe.mu.Lock()
				pe.dead = true
				pe.queue = nil
				pe.werr = err
				pe.mu.Unlock()
				pe.conn.Close() // kick the reader; it decides the failure
				return
			}
		}
	}
}

// reader is the per-peer read loop: length-prefixed frames are decoded
// into data deliveries, acks, and the fin departure marker. Any read
// error on a live world whose peer did not announce a graceful exit is a
// lost peer — the world fails rather than hang.
func (w *World) reader(pe *peer) {
	defer w.wg.Done()
	var scratch []byte
	for {
		fr, s, err := envelope.Read(pe.conn, maxFrameBytes, scratch)
		scratch = s
		if err != nil {
			pe.mu.Lock()
			if pe.werr != nil {
				err = pe.werr
			}
			pe.mu.Unlock()
			w.connLost(pe, err)
			return
		}
		switch fr.Kind {
		case envelope.KindData:
			w.deliverData(&fr.Env)
		case envelope.KindAck:
			w.ack(fr.AckID)
		case envelope.KindFin:
			pe.fin.Store(true)
		}
	}
}

// send routes one block from this rank to dst, copying the payload at call
// time (eager-buffered semantics). Every message rides the self-healing
// envelope protocol: sequence id, checksum, receiver dedup, ack/retransmit
// with capped backoff. With an inactive fault plan the protocol is pure
// bookkeeping on top of TCP; with an active one, injected drops,
// corruptions, duplicates and stalls are applied above the socket exactly
// like the mem engine applies them above its mailbox.
func (w *World) send(dst, tag int, data []complex128) {
	if dst == w.rank {
		panic("net: schedule sent to self")
	}
	cp := make([]complex128, len(data))
	copy(cp, data)
	w.stats.sent.Add(1)
	env := &envelope.Envelope{Src: w.rank, Dst: dst, Tag: tag, Data: cp}
	env.Seal()
	om := &outMsg{env: env}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.nextID++
	env.ID = w.nextID
	w.outstanding[env.ID] = om
	w.mu.Unlock()
	w.transmit(om, 0)
}

// transmit performs one delivery attempt of an outstanding envelope,
// rolling the fault plan for this attempt, and arms the retransmission
// timer with capped exponential backoff. Acknowledged (or dead-world)
// messages are left alone.
func (w *World) transmit(om *outMsg, attempt int) {
	env := om.env
	w.mu.Lock()
	if w.closed || w.failed != nil || w.outstanding[env.ID] != om {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	if attempt > 0 {
		w.stats.retransmits.Add(1)
	}
	d := w.plan.Decide(env.Src, env.Dst, env.Tag, env.ID, attempt)
	now := time.Since(w.epoch).Nanoseconds()
	// Per-rank degradation: a stalled NIC holds the frame until the window
	// closes; link-factor delay emulation is left to TCP itself here.
	delay := w.plan.StallEnd(env.Src, now) - now + d.DelayNs
	if d.Drop {
		w.stats.dropsInjected.Add(1)
	} else {
		if om.frame == nil {
			om.frame = envelope.AppendData(nil, env)
		}
		frame := om.frame
		if d.Corrupt {
			w.stats.corruptionsInjected.Add(1)
			ce := *env // keep the clean checksum: the receiver must detect
			ce.Data = fault.CorruptCopy(env.Data, uint64(env.ID)<<8^uint64(attempt))
			frame = envelope.AppendData(nil, &ce)
		}
		pe := w.peers[env.Dst]
		w.enqueueAfter(pe, frame, delay)
		if d.Duplicate {
			w.stats.duplicatesInjected.Add(1)
			w.enqueueAfter(pe, om.frame, delay)
		}
	}
	rto := w.rto
	for i := 0; i < attempt && i < maxBackoff; i++ {
		rto *= 2
	}
	next := attempt + 1
	w.mu.Lock()
	if w.outstanding[env.ID] == om && !w.closed && w.failed == nil {
		if attempt > 0 {
			w.stats.backoffs.Add(1)
		}
		om.timer = time.AfterFunc(time.Duration(delay)+rto, func() { w.transmit(om, next) })
	}
	w.mu.Unlock()
}

// enqueueAfter hands a frame to the peer's writer, optionally after an
// injected delay.
func (w *World) enqueueAfter(pe *peer, frame []byte, delayNs int64) {
	if delayNs <= 0 {
		pe.enqueue(frame)
		return
	}
	time.AfterFunc(time.Duration(delayNs), func() { pe.enqueue(frame) })
}

// deliverData is the receiver side of the self-healing transport: verify
// the checksum (corrupted deliveries are dropped and recovered by the
// sender's retransmission), discard duplicates, acknowledge, then deposit
// into the mailbox. Acks ride the peer's outbox like any frame — they are
// never fault-injected (the reliable control plane).
func (w *World) deliverData(env *envelope.Envelope) {
	if !env.Verify() {
		w.stats.corruptionsDetected.Add(1)
		return
	}
	ackFrame := envelope.AppendAck(nil, env.ID, w.rank)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	key := seenKey{src: env.Src, id: env.ID}
	if _, dup := w.seen[key]; dup {
		w.stats.dedups.Add(1)
		w.mu.Unlock()
		w.peers[env.Src].enqueue(ackFrame)
		return
	}
	w.seen[key] = struct{}{}
	w.stats.delivered.Add(1)
	k := mkey{src: env.Src, tag: env.Tag}
	w.box[k] = append(w.box[k], message{data: env.Data})
	w.cond.Broadcast()
	w.mu.Unlock()
	w.peers[env.Src].enqueue(ackFrame)
}

// ack retires an outstanding envelope and stops its retransmit timer.
func (w *World) ack(id int64) {
	w.mu.Lock()
	om, live := w.outstanding[id]
	if live {
		if om.timer != nil {
			om.timer.Stop()
		}
		delete(w.outstanding, id)
		w.stats.acks.Add(1)
	}
	w.mu.Unlock()
}

// connLost handles a failed peer connection: on a live world it is fatal
// (the missing rank would otherwise hang every collective — surfacing a
// world failure is the net engine's ErrWorldFailed semantics). It is
// expected teardown noise when this world is shutting down, finished its
// teardown barrier, or the peer announced a graceful departure (fin
// frame) before the EOF. TCP ordering makes the fin check race-free: the
// reader observes EOF only after consuming every frame the peer flushed,
// so a graceful peer's fin — and all data before it — have already been
// processed by the time the read error surfaces.
func (w *World) connLost(pe *peer, err error) {
	w.mu.Lock()
	quiet := w.closed || w.done || pe.fin.Load()
	w.mu.Unlock()
	if quiet {
		return
	}
	w.fail(&PeerError{Rank: w.rank, Peer: pe.rank, Err: err})
}
