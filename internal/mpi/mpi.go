// Package mpi defines the message-passing interface the parallel 3-D FFT
// is written against, mirroring the slice of MPI-3.0 the paper uses:
// blocking and non-blocking all-to-all (MPI_Alltoallv / MPI_Ialltoallv),
// MPI_Test for manual progression, MPI_Wait, and a barrier.
//
// Two engines implement the interface:
//
//   - mpi/sim: ranks run in virtual time over the simulated fabric of
//     package simnet. Buffers are optional (no payload is moved); this
//     engine reproduces the paper's performance phenomena at paper scale.
//   - mpi/mem: ranks are goroutines exchanging real data through an
//     in-memory router, optionally with emulated link delays. This engine
//     is used for end-to-end numerical verification and demos.
//
// Collective calls must be issued in the same order by every rank of a
// world (the usual MPI requirement); the engines match collectives across
// ranks by call sequence number.
package mpi

// Request is a handle to a pending non-blocking collective operation.
type Request interface{}

// Comm is one rank's communicator. Counts are in complex128 elements
// (16 bytes each on the wire). Send/recv blocks are laid out contiguously
// in rank order: rank r's block starts at the prefix sum of counts[0:r].
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Now returns the engine clock in nanoseconds (virtual time for the
	// sim engine, wall time since world start for the mem engine).
	Now() int64
	// Barrier blocks until every rank reaches it.
	Barrier()
	// Alltoallv performs a blocking all-to-all: block r of send goes to
	// rank r; block s of recv is filled from rank s.
	Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int)
	// Ialltoallv starts a non-blocking all-to-all and returns immediately.
	// The send buffer must not be modified and the recv buffer must not be
	// read until the request completes.
	Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) Request
	// Test models one MPI_Test call: it progresses pending communication
	// and reports whether all the given requests (nil entries ignored)
	// have completed.
	Test(reqs ...Request) bool
	// Wait blocks until all the given requests have completed.
	Wait(reqs ...Request)
}

// DeadlineWaiter is optionally implemented by engines whose Wait can give
// up after a configured soft deadline. WaitDeadline blocks like Wait but
// returns a diagnostic error (naming the missing ranks/collectives) when
// the deadline passes first; the requests stay valid and a later Wait or
// WaitDeadline may still complete them. Engines without a configured
// deadline behave exactly like Wait and return nil. The overlapped FFT
// pipeline uses this to downgrade to its blocking path instead of hanging
// when the transport misbehaves.
type DeadlineWaiter interface {
	WaitDeadline(reqs ...Request) error
}

// Health is a snapshot of an engine's transport-recovery counters,
// aggregated over the whole world.
type Health struct {
	Sent      int64 // messages handed to the transport
	Delivered int64 // messages accepted into a mailbox (post-checksum, post-dedup)

	DropsInjected       int64 // delivery attempts lost by the fault plan
	CorruptionsInjected int64 // payloads bit-flipped by the fault plan
	DuplicatesInjected  int64 // extra deliveries injected by the fault plan
	Retransmits         int64 // sender timeout-driven resends
	Dedups              int64 // duplicate deliveries discarded by the receiver
	CorruptionsDetected int64 // deliveries rejected by checksum
	Acks                int64 // envelopes retired by acknowledgement
	Backoffs            int64 // retransmit timers re-armed with exponential backoff
}

// HealthReporter is optionally implemented by engines that track transport
// recovery activity.
type HealthReporter interface {
	TransportHealth() Health
}

// Elem16 is the wire size of one element in bytes.
const Elem16 = 16

// TotalCount sums a counts vector.
func TotalCount(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}
