// Package mpi defines the message-passing interface the parallel 3-D FFT
// is written against, mirroring the slice of MPI-3.0 the paper uses:
// blocking and non-blocking all-to-all (MPI_Alltoallv / MPI_Ialltoallv),
// MPI_Test for manual progression, MPI_Wait, and a barrier.
//
// Two engines implement the interface:
//
//   - mpi/sim: ranks run in virtual time over the simulated fabric of
//     package simnet. Buffers are optional (no payload is moved); this
//     engine reproduces the paper's performance phenomena at paper scale.
//   - mpi/mem: ranks are goroutines exchanging real data through an
//     in-memory router, optionally with emulated link delays. This engine
//     is used for end-to-end numerical verification and demos.
//
// Collective calls must be issued in the same order by every rank of a
// world (the usual MPI requirement); the engines match collectives across
// ranks by call sequence number.
package mpi

import (
	"fmt"
	"strings"
)

// Request is a handle to a pending non-blocking collective operation.
type Request interface{}

// CommAlg selects the exchange schedule an engine uses to realize an
// all-to-all. The zero value is the round-robin pairwise schedule, the
// only algorithm that existed before schedules became tunable, so zeroed
// parameter sets reproduce the historical behavior exactly.
type CommAlg int

const (
	// CommPairwise is the libNBC-style round-robin pairwise exchange:
	// every peer pair is posted eagerly at call time (O(p) outstanding
	// messages, one per peer).
	CommPairwise CommAlg = iota
	// CommBruck is the Bruck algorithm: ⌈log2 p⌉ store-and-forward rounds
	// with local pack/rotate scratch. Each round moves one combined packet
	// per rank, so the message count drops from p−1 to log p at the cost
	// of forwarding each block up to log p times — the winning trade for
	// small per-peer payloads (large p, tiny tiles).
	CommBruck
	// CommHier is the hierarchical node-aware schedule: ranks exchange
	// intra-node blocks directly, gather their inter-node blocks on a
	// node leader, leaders exchange combined per-node packets, and
	// leaders scatter to their members. Message count across the fabric
	// drops to nodes², at the cost of gather/scatter hops.
	CommHier
	// CommWindowed is pairwise with a bounded window of in-flight peer
	// pairs: distance i's send is released only after enough earlier
	// receives complete, bounding memory and fabric contention at large
	// p. Window = p degenerates to CommPairwise.
	CommWindowed
)

// CommAlgs lists all exchange schedules in display order.
func CommAlgs() []CommAlg { return []CommAlg{CommPairwise, CommBruck, CommHier, CommWindowed} }

var commAlgNames = map[CommAlg]string{
	CommPairwise: "pairwise", CommBruck: "bruck", CommHier: "hier", CommWindowed: "windowed",
}

func (a CommAlg) String() string {
	if s, ok := commAlgNames[a]; ok {
		return s
	}
	return fmt.Sprintf("CommAlg(%d)", int(a))
}

// Valid reports whether a is one of the defined schedules.
func (a CommAlg) Valid() bool { return a >= CommPairwise && a <= CommWindowed }

// ParseCommAlg resolves a schedule from its name ("pairwise", "bruck",
// "hier"/"hierarchical", "windowed"/"window"). The empty string is the
// default pairwise schedule. Matching is case-insensitive.
func ParseCommAlg(name string) (CommAlg, error) {
	switch strings.ToLower(name) {
	case "", "pairwise":
		return CommPairwise, nil
	case "bruck":
		return CommBruck, nil
	case "hier", "hierarchical":
		return CommHier, nil
	case "windowed", "window":
		return CommWindowed, nil
	}
	return 0, fmt.Errorf("mpi: unknown exchange schedule %q (want pairwise, bruck, hier, or windowed)", name)
}

// Exchange configures how a communicator realizes its all-to-all
// collectives. The zero value selects the pairwise schedule with default
// knobs — exactly the pre-tunable behavior.
type Exchange struct {
	// Alg is the schedule.
	Alg CommAlg
	// Window caps in-flight peer pairs for CommWindowed (0 = engine
	// default; values ≥ p−1 degenerate to pairwise). Other schedules
	// ignore it.
	Window int
	// NodeSize overrides the ranks-per-node grouping for CommHier
	// (0 = the engine's machine model topology). Other schedules ignore it.
	NodeSize int
}

// DefaultWindow is the in-flight peer-pair cap CommWindowed uses when
// Exchange.Window is zero.
const DefaultWindow = 4

// ExchangeSetter is optionally implemented by communicators whose
// all-to-all schedule can be configured. SetExchange applies to
// collectives posted afterwards; in-flight requests keep the schedule
// they were posted with. Every rank of a world must use the same
// Exchange for matching collectives (SPMD, like every other argument).
type ExchangeSetter interface {
	SetExchange(Exchange)
}

// SetExchange configures c's all-to-all schedule when the engine supports
// it and reports whether it did. Engines without an ExchangeSetter (the
// single-rank self communicator, for instance) are always equivalent to
// pairwise, so callers can ignore the return value.
func SetExchange(c Comm, ex Exchange) bool {
	if s, ok := c.(ExchangeSetter); ok {
		s.SetExchange(ex)
		return true
	}
	return false
}

// Comm is one rank's communicator. Counts are in complex128 elements
// (16 bytes each on the wire). Send/recv blocks are laid out contiguously
// in rank order: rank r's block starts at the prefix sum of counts[0:r].
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Now returns the engine clock in nanoseconds (virtual time for the
	// sim engine, wall time since world start for the mem engine).
	Now() int64
	// Barrier blocks until every rank reaches it.
	Barrier()
	// Alltoallv performs a blocking all-to-all: block r of send goes to
	// rank r; block s of recv is filled from rank s.
	Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int)
	// Ialltoallv starts a non-blocking all-to-all and returns immediately.
	// The send buffer must not be modified and the recv buffer must not be
	// read until the request completes.
	//
	// Counts-aliasing contract: both count slices are consumed synchronously
	// — the engine must capture everything it needs from sendCounts and
	// recvCounts before returning, so the caller is free to overwrite or
	// reuse the slices immediately after the post, while the request is
	// still in flight. (The mem engine copies what it keeps; the sim engine
	// derives all message sizes at post time.) Only the data buffers stay
	// borrowed until completion.
	Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) Request
	// Test models one MPI_Test call: it progresses pending communication
	// and reports whether all the given requests (nil entries ignored)
	// have completed.
	Test(reqs ...Request) bool
	// Wait blocks until all the given requests have completed.
	Wait(reqs ...Request)
}

// DeadlineWaiter is optionally implemented by engines whose Wait can give
// up after a configured soft deadline. WaitDeadline blocks like Wait but
// returns a diagnostic error (naming the missing ranks/collectives) when
// the deadline passes first; the requests stay valid and a later Wait or
// WaitDeadline may still complete them. Engines without a configured
// deadline behave exactly like Wait and return nil. The overlapped FFT
// pipeline uses this to downgrade to its blocking path instead of hanging
// when the transport misbehaves.
type DeadlineWaiter interface {
	WaitDeadline(reqs ...Request) error
}

// Health is a snapshot of an engine's transport-recovery counters,
// aggregated over the whole world.
type Health struct {
	Sent      int64 // messages handed to the transport
	Delivered int64 // messages accepted into a mailbox (post-checksum, post-dedup)

	DropsInjected       int64 // delivery attempts lost by the fault plan
	CorruptionsInjected int64 // payloads bit-flipped by the fault plan
	DuplicatesInjected  int64 // extra deliveries injected by the fault plan
	Retransmits         int64 // sender timeout-driven resends
	Dedups              int64 // duplicate deliveries discarded by the receiver
	CorruptionsDetected int64 // deliveries rejected by checksum
	Acks                int64 // envelopes retired by acknowledgement
	Backoffs            int64 // retransmit timers re-armed with exponential backoff
}

// HealthReporter is optionally implemented by engines that track transport
// recovery activity.
type HealthReporter interface {
	TransportHealth() Health
}

// Elem16 is the wire size of one element in bytes.
const Elem16 = 16

// TotalCount sums a counts vector.
func TotalCount(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}
