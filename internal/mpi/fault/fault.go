// Package fault provides deterministic, seedable fault plans for the
// in-process MPI engines. A Plan describes per-message faults (drop,
// duplicate, payload corruption, delay jitter) and per-rank faults (NIC
// stall windows, slow-NIC degradation) plus per-link degradation events.
// Both engines consume the same Plan: the mem engine applies it on wall
// time to real payloads, the simnet fabric applies the stall and link
// events in virtual time.
//
// Every per-message decision is a pure hash of (seed, src, dst, tag,
// message id, delivery attempt), so a plan replays identically regardless
// of goroutine scheduling — the property the chaos test suite relies on —
// and a retransmitted message rolls fresh faults on every attempt, so
// recovery converges whenever the fault rates are below 1.
package fault

import (
	"fmt"
	"math"
)

// Profile names a canonical fault mix for NewPlan.
type Profile string

const (
	// ProfileNone injects nothing (a Plan that is all zeroes).
	ProfileNone Profile = "none"
	// ProfileDrop loses ~2% of message delivery attempts and adds delay
	// jitter; the transport must retransmit to converge.
	ProfileDrop Profile = "drop"
	// ProfileCorrupt flips payload bits on ~2% of deliveries (detected by
	// checksum, recovered by retransmit) plus light drops and duplicates.
	ProfileCorrupt Profile = "corrupt"
	// ProfileStall takes one seed-chosen rank's NIC offline for a stall
	// window at job start and degrades that rank's link afterwards — the
	// scenario that trips Wait deadlines and overlapped→blocking downgrades.
	ProfileStall Profile = "stall"
	// ProfileMixed combines light drops, corruption, duplication, jitter
	// and one short stall.
	ProfileMixed Profile = "mixed"
)

// Profiles lists the named profiles accepted by ParseProfile.
func Profiles() []Profile {
	return []Profile{ProfileNone, ProfileDrop, ProfileCorrupt, ProfileStall, ProfileMixed}
}

// ParseProfile validates a profile name (as given to -chaos-profile).
func ParseProfile(s string) (Profile, error) {
	for _, p := range Profiles() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("fault: unknown profile %q (want none, drop, corrupt, stall, mixed)", s)
}

// RankStall takes a rank's NIC offline for [At, At+Dur), in engine-clock
// nanoseconds (wall time since world start for mem, virtual time for sim).
// Messages the rank injects during the window are held until it closes.
type RankStall struct {
	Rank    int
	At, Dur int64
}

// LinkFault multiplies the per-byte transfer cost of the src→dst link by
// Factor during [From, Until). Src or Dst of -1 matches any rank.
type LinkFault struct {
	Src, Dst    int
	From, Until int64
	Factor      float64
}

// Plan is a deterministic fault schedule. The zero value injects nothing.
// Rates are per delivery attempt in [0, 1]; rates of 1 fault every attempt
// and therefore never let the transport converge — keep them below 1
// unless the Force* knobs are what you want.
type Plan struct {
	Seed int64

	// Per-message fault rates, rolled independently per delivery attempt.
	DropRate    float64
	DupRate     float64
	CorruptRate float64
	// JitterNs adds a uniform extra delivery delay in [0, JitterNs).
	JitterNs int64

	// ForceDropAttempts drops the first n delivery attempts of every
	// message; ForceCorruptAttempts corrupts them. Deterministic knobs for
	// tests that need "exactly one retransmit per message".
	ForceDropAttempts    int
	ForceCorruptAttempts int

	// Per-rank degradation. SlowNIC multiplies a rank's egress transfer
	// cost (≥ 1; the mem engine applies it to the emulated link delay, the
	// sim fabric to the per-byte rate).
	SlowNIC map[int]float64
	Stalls  []RankStall
	Links   []LinkFault
}

// Decision is the fault outcome for one delivery attempt of one message.
type Decision struct {
	Drop      bool
	Duplicate bool
	Corrupt   bool
	DelayNs   int64
}

// NewPlan builds a canonical plan for the given profile over p ranks.
// Magnitudes are sized for the repo's demo/test workloads (tens of ms,
// hundreds to thousands of messages).
func NewPlan(seed int64, profile Profile, p int) (*Plan, error) {
	if p < 1 {
		return nil, fmt.Errorf("fault: need at least one rank, got %d", p)
	}
	pl := &Plan{Seed: seed}
	const ms = int64(1e6)
	switch profile {
	case ProfileNone:
	case ProfileDrop:
		pl.DropRate = 0.02
		pl.JitterNs = 200_000
	case ProfileCorrupt:
		pl.CorruptRate = 0.02
		pl.DropRate = 0.005
		pl.DupRate = 0.02
		pl.JitterNs = 100_000
	case ProfileStall:
		r := int(mix64(uint64(seed)^0x5741) % uint64(p))
		pl.Stalls = []RankStall{{Rank: r, At: 0, Dur: 40 * ms}}
		pl.SlowNIC = map[int]float64{r: 4}
		pl.DropRate = 0.002
	case ProfileMixed:
		r := int(mix64(uint64(seed)^0x4d49) % uint64(p))
		pl.DropRate = 0.01
		pl.DupRate = 0.01
		pl.CorruptRate = 0.005
		pl.JitterNs = 100_000
		pl.Stalls = []RankStall{{Rank: r, At: 0, Dur: 10 * ms}}
	default:
		return nil, fmt.Errorf("fault: unknown profile %q", profile)
	}
	return pl, nil
}

// Decide rolls the per-message faults for one delivery attempt. It is a
// pure function of the plan and its arguments.
func (p *Plan) Decide(src, dst, tag int, id int64, attempt int) Decision {
	if p == nil {
		return Decision{}
	}
	d := Decision{
		Drop:    attempt < p.ForceDropAttempts || p.roll(1, src, dst, tag, id, attempt) < p.DropRate,
		Corrupt: attempt < p.ForceCorruptAttempts || p.roll(3, src, dst, tag, id, attempt) < p.CorruptRate,
	}
	d.Duplicate = p.roll(2, src, dst, tag, id, attempt) < p.DupRate
	if p.JitterNs > 0 {
		d.DelayNs = int64(p.roll(4, src, dst, tag, id, attempt) * float64(p.JitterNs))
	}
	return d
}

// StallEnd returns the end of the stall window covering rank at time now,
// or now when no stall is active. Engines hold a stalled rank's egress
// until the returned time.
func (p *Plan) StallEnd(rank int, now int64) int64 {
	if p == nil {
		return now
	}
	end := now
	for _, s := range p.Stalls {
		if s.Rank == rank && now >= s.At && now < s.At+s.Dur && s.At+s.Dur > end {
			end = s.At + s.Dur
		}
	}
	return end
}

// NICFactor returns the slow-NIC egress multiplier for rank (≥ 1).
func (p *Plan) NICFactor(rank int) float64 {
	if p == nil {
		return 1
	}
	if f, ok := p.SlowNIC[rank]; ok && f > 1 {
		return f
	}
	return 1
}

// LinkFactor returns the product of the active link-degradation factors
// for src→dst at time now (≥ 1 for pure degradation plans).
func (p *Plan) LinkFactor(src, dst int, now int64) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, l := range p.Links {
		if (l.Src == -1 || l.Src == src) && (l.Dst == -1 || l.Dst == dst) &&
			now >= l.From && now < l.Until && l.Factor > 0 {
			f *= l.Factor
		}
	}
	return f
}

// Active reports whether the plan can inject anything at all (engines use
// this to keep the zero-overhead fast path when a plan is effectively
// empty).
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.DropRate > 0 || p.DupRate > 0 || p.CorruptRate > 0 || p.JitterNs > 0 ||
		p.ForceDropAttempts > 0 || p.ForceCorruptAttempts > 0 ||
		len(p.SlowNIC) > 0 || len(p.Stalls) > 0 || len(p.Links) > 0
}

// roll derives a uniform float64 in [0, 1) from the message identity and a
// per-fault-kind salt.
func (p *Plan) roll(kind uint64, src, dst, tag int, id int64, attempt int) float64 {
	h := uint64(p.Seed) ^ kind*0x9e3779b97f4a7c15
	h = mix64(h ^ uint64(src))
	h = mix64(h ^ uint64(dst)<<16)
	h = mix64(h ^ uint64(tag)<<32)
	h = mix64(h ^ uint64(id))
	h = mix64(h ^ uint64(attempt)<<48)
	return float64(h>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Checksum is the FNV-1a 64 hash of a payload's raw float bits, the
// integrity check of the mem engine's self-healing transport.
func Checksum(data []complex128) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	step := func(b uint64) {
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for _, v := range data {
		step(math.Float64bits(real(v)))
		step(math.Float64bits(imag(v)))
	}
	return h
}

// CorruptCopy returns a copy of data with one deterministic bit flipped
// (position derived from salt), simulating on-the-wire corruption that a
// checksum catches. Empty payloads are returned unchanged.
func CorruptCopy(data []complex128, salt uint64) []complex128 {
	out := append([]complex128(nil), data...)
	if len(out) == 0 {
		return out
	}
	h := mix64(salt)
	i := int(h % uint64(len(out)))
	bit := uint((h >> 32) % 52) // mantissa bits: guaranteed value change, no NaN
	re := math.Float64bits(real(out[i])) ^ (1 << bit)
	out[i] = complex(math.Float64frombits(re), imag(out[i]))
	return out
}
