package fault

import (
	"math"
	"testing"
)

func TestDecideDeterministic(t *testing.T) {
	p1, _ := NewPlan(42, ProfileMixed, 8)
	p2, _ := NewPlan(42, ProfileMixed, 8)
	for id := int64(0); id < 200; id++ {
		a := p1.Decide(1, 2, 3, id, 0)
		b := p2.Decide(1, 2, 3, id, 0)
		if a != b {
			t.Fatalf("id %d: same seed diverged: %+v vs %+v", id, a, b)
		}
	}
	p3, _ := NewPlan(43, ProfileMixed, 8)
	diff := 0
	for id := int64(0); id < 2000; id++ {
		if p1.Decide(1, 2, 3, id, 0) != p3.Decide(1, 2, 3, id, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical decisions for 2000 messages")
	}
}

func TestDecideRatesApproximate(t *testing.T) {
	p := &Plan{Seed: 7, DropRate: 0.1}
	drops := 0
	const n = 20000
	for id := int64(0); id < n; id++ {
		if p.Decide(0, 1, 0, id, 0).Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.07 || got > 0.13 {
		t.Errorf("drop rate %g, want ≈0.1", got)
	}
}

func TestDecideAttemptIndependence(t *testing.T) {
	// A message dropped on attempt 0 must not be doomed on retransmit.
	p := &Plan{Seed: 1, DropRate: 0.5}
	recovered := 0
	for id := int64(0); id < 500; id++ {
		if !p.Decide(0, 1, 0, id, 0).Drop {
			continue
		}
		for a := 1; a < 64; a++ {
			if !p.Decide(0, 1, 0, id, a).Drop {
				recovered++
				break
			}
		}
	}
	if recovered == 0 {
		t.Error("no dropped message ever survived a retransmit attempt")
	}
}

func TestForceKnobs(t *testing.T) {
	p := &Plan{Seed: 3, ForceDropAttempts: 2, ForceCorruptAttempts: 1}
	for id := int64(0); id < 10; id++ {
		if !p.Decide(0, 1, 0, id, 0).Drop || !p.Decide(0, 1, 0, id, 1).Drop {
			t.Fatal("forced drop attempts not dropped")
		}
		if p.Decide(0, 1, 0, id, 2).Drop {
			t.Fatal("attempt past ForceDropAttempts dropped (rates are zero)")
		}
		if !p.Decide(0, 1, 0, id, 0).Corrupt {
			t.Fatal("forced corrupt attempt not corrupted")
		}
	}
}

func TestStallEnd(t *testing.T) {
	p := &Plan{Stalls: []RankStall{{Rank: 2, At: 100, Dur: 50}}}
	if got := p.StallEnd(2, 120); got != 150 {
		t.Errorf("mid-window StallEnd = %d, want 150", got)
	}
	if got := p.StallEnd(2, 150); got != 150 {
		t.Errorf("at-window-end StallEnd = %d, want 150 (unchanged)", got)
	}
	if got := p.StallEnd(1, 120); got != 120 {
		t.Errorf("other rank StallEnd = %d, want 120", got)
	}
	if got := p.StallEnd(2, 50); got != 50 {
		t.Errorf("before window StallEnd = %d, want 50", got)
	}
}

func TestLinkAndNICFactors(t *testing.T) {
	p := &Plan{
		SlowNIC: map[int]float64{1: 4},
		Links:   []LinkFault{{Src: -1, Dst: 3, From: 0, Until: 100, Factor: 2}},
	}
	if f := p.NICFactor(1); f != 4 {
		t.Errorf("NICFactor(1) = %g, want 4", f)
	}
	if f := p.NICFactor(0); f != 1 {
		t.Errorf("NICFactor(0) = %g, want 1", f)
	}
	if f := p.LinkFactor(0, 3, 50); f != 2 {
		t.Errorf("active LinkFactor = %g, want 2", f)
	}
	if f := p.LinkFactor(0, 3, 100); f != 1 {
		t.Errorf("expired LinkFactor = %g, want 1", f)
	}
	if f := p.LinkFactor(0, 2, 50); f != 1 {
		t.Errorf("other-dst LinkFactor = %g, want 1", f)
	}
}

func TestChecksumAndCorruption(t *testing.T) {
	data := []complex128{1 + 2i, -3.5 + 0.25i, 0}
	sum := Checksum(data)
	if sum != Checksum(data) {
		t.Fatal("checksum not deterministic")
	}
	bad := CorruptCopy(data, 99)
	if Checksum(bad) == sum {
		t.Fatal("corruption not detected by checksum")
	}
	// Original untouched.
	if data[0] != 1+2i || data[1] != -3.5+0.25i || data[2] != 0 {
		t.Fatal("CorruptCopy mutated its input")
	}
	for _, v := range bad {
		if math.IsNaN(real(v)) || math.IsInf(real(v), 0) {
			t.Fatal("corruption produced NaN/Inf (mantissa-only flips expected)")
		}
	}
	if n := CorruptCopy(nil, 1); len(n) != 0 {
		t.Fatal("empty payload should stay empty")
	}
}

func TestProfilesParseAndBuild(t *testing.T) {
	for _, prof := range Profiles() {
		got, err := ParseProfile(string(prof))
		if err != nil || got != prof {
			t.Errorf("ParseProfile(%q) = %v, %v", prof, got, err)
		}
		pl, err := NewPlan(5, prof, 8)
		if err != nil {
			t.Errorf("NewPlan(%q): %v", prof, err)
		}
		if prof != ProfileNone && !pl.Active() {
			t.Errorf("profile %q built an inactive plan", prof)
		}
		if prof == ProfileNone && pl.Active() {
			t.Error("none profile should be inactive")
		}
	}
	if _, err := ParseProfile("bogus"); err == nil {
		t.Error("expected error for unknown profile")
	}
	if _, err := NewPlan(1, ProfileStall, 0); err == nil {
		t.Error("expected error for p=0")
	}
	// Stall profile must target a rank inside [0, p).
	for seed := int64(0); seed < 20; seed++ {
		pl, _ := NewPlan(seed, ProfileStall, 3)
		if r := pl.Stalls[0].Rank; r < 0 || r >= 3 {
			t.Fatalf("seed %d: stall rank %d out of range", seed, r)
		}
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Error("nil plan active")
	}
	if d := p.Decide(0, 1, 0, 0, 0); d != (Decision{}) {
		t.Error("nil plan decided a fault")
	}
	if p.StallEnd(0, 9) != 9 || p.NICFactor(0) != 1 || p.LinkFactor(0, 1, 0) != 1 {
		t.Error("nil plan degraded something")
	}
}
