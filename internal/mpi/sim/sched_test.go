package sim

import (
	"testing"

	"offt/internal/machine"
	"offt/internal/mpi"
)

// simSchedules lists the exchange configurations the sim schedule tests
// sweep (node size pinned so hier is exercised on any machine model).
func simSchedules() []mpi.Exchange {
	return []mpi.Exchange{
		{Alg: mpi.CommPairwise},
		{Alg: mpi.CommBruck},
		{Alg: mpi.CommHier, NodeSize: 2},
		{Alg: mpi.CommWindowed, Window: 1},
		{Alg: mpi.CommWindowed, Window: 2},
	}
}

// TestSchedulesComplete runs every schedule to completion across world
// sizes, eager and rendezvous regimes, and both Test-driven and Wait-driven
// progression.
func TestSchedulesComplete(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8} {
		for _, n := range []int{10, 5000} { // eager vs rendezvous payloads
			for _, ex := range simSchedules() {
				p, n, ex := p, n, ex
				t.Run(ex.Alg.String(), func(t *testing.T) {
					w := NewWorld(machine.Hopper(), p)
					ends := make([]int64, p)
					err := w.Run(func(c *Comm) {
						c.SetExchange(ex)
						counts := uniform(p, n)
						req := c.Ialltoallv(nil, counts, nil, counts)
						for i := 0; i < 4; i++ {
							c.Advance(20_000)
							c.Test(req)
						}
						c.Wait(req)
						if !c.Test(req) {
							t.Errorf("rank %d: request not complete after Wait", c.Rank())
						}
						ends[c.Rank()] = c.Now()
					})
					if err != nil {
						t.Fatal(err)
					}
					for r, e := range ends {
						if e <= 0 {
							t.Errorf("p=%d n=%d rank %d finished at %d", p, n, r, e)
						}
					}
				})
			}
		}
	}
}

// TestSchedulesDeterministic re-runs each schedule and checks bit-equal
// virtual end times.
func TestSchedulesDeterministic(t *testing.T) {
	for _, ex := range simSchedules() {
		ex := ex
		t.Run(ex.Alg.String(), func(t *testing.T) {
			runOnce := func() [4]int64 {
				p := 4
				w := NewWorld(machine.Hopper(), p)
				var ends [4]int64
				if err := w.Run(func(c *Comm) {
					c.SetExchange(ex)
					counts := uniform(p, 4096)
					for iter := 0; iter < 3; iter++ {
						req := c.Ialltoallv(nil, counts, nil, counts)
						c.Advance(50_000)
						c.Test(req)
						c.Wait(req)
					}
					ends[c.Rank()] = c.Now()
				}); err != nil {
					t.Fatal(err)
				}
				return ends
			}
			if a, b := runOnce(), runOnce(); a != b {
				t.Errorf("nondeterministic: %v vs %v", a, b)
			}
		})
	}
}

// TestSchedulesSparseCounts exercises the pencil-style sub-grid shape:
// world-sized count vectors where most entries are zero.
func TestSchedulesSparseCounts(t *testing.T) {
	for _, ex := range simSchedules() {
		ex := ex
		t.Run(ex.Alg.String(), func(t *testing.T) {
			p := 6
			w := NewWorld(machine.Hopper(), p)
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				// Ranks exchange only within their parity class.
				counts := make([]int, p)
				for r := 0; r < p; r++ {
					if r%2 == c.Rank()%2 {
						counts[r] = 700
					}
				}
				c.Alltoallv(nil, counts, nil, counts)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchedulesCountsAliasing is the counts-aliasing regression for the sim
// engine: the caller overwrites both count slices immediately after posting.
// The engine must have derived every message size synchronously at post
// time (the mpi.Comm.Ialltoallv contract).
func TestSchedulesCountsAliasing(t *testing.T) {
	for _, ex := range simSchedules() {
		ex := ex
		t.Run(ex.Alg.String(), func(t *testing.T) {
			p := 4
			run := func(clobber bool) [4]int64 {
				w := NewWorld(machine.Hopper(), p)
				var ends [4]int64
				if err := w.Run(func(c *Comm) {
					c.SetExchange(ex)
					sendCounts := uniform(p, 2000)
					recvCounts := uniform(p, 2000)
					req := c.Ialltoallv(nil, sendCounts, nil, recvCounts)
					if clobber {
						for i := range sendCounts {
							sendCounts[i] = -1
							recvCounts[i] = 1 << 20
						}
					}
					c.Advance(30_000)
					c.Test(req)
					c.Wait(req)
					ends[c.Rank()] = c.Now()
				}); err != nil {
					t.Fatal(err)
				}
				return ends
			}
			if a, b := run(false), run(true); a != b {
				t.Errorf("clobbering counts after post changed the simulation: %v vs %v", a, b)
			}
		})
	}
}

// TestBruckFewerMessagesThanPairwise checks the headline message-count
// property: at large p with tiny payloads, Bruck moves O(p log p) blocks in
// O(log p) rounds of 1 message each, versus pairwise's p−1 messages per
// rank.
func TestBruckFewerMessagesThanPairwise(t *testing.T) {
	p := 32
	msgs := func(ex mpi.Exchange) int64 {
		w := NewWorld(machine.UMDCluster(), p)
		if err := w.Run(func(c *Comm) {
			c.SetExchange(ex)
			counts := uniform(p, 4)
			c.Alltoallv(nil, counts, nil, counts)
		}); err != nil {
			t.Fatal(err)
		}
		s := w.Fabric().Stats
		return s.EagerMsgs + s.RendezvousMsgs
	}
	pw := msgs(mpi.Exchange{Alg: mpi.CommPairwise})
	br := msgs(mpi.Exchange{Alg: mpi.CommBruck})
	if br >= pw/2 {
		t.Errorf("bruck should cut message count sharply: bruck=%d pairwise=%d", br, pw)
	}
}

// TestHierFewerInterNodeMessages checks the hierarchical schedule reduces
// total fabric messages on a multi-node machine.
func TestHierFewerInterNodeMessages(t *testing.T) {
	p := 32 // 4 nodes of 8 on Hopper
	msgs := func(ex mpi.Exchange) int64 {
		w := NewWorld(machine.Hopper(), p)
		if err := w.Run(func(c *Comm) {
			c.SetExchange(ex)
			counts := uniform(p, 8)
			c.Alltoallv(nil, counts, nil, counts)
		}); err != nil {
			t.Fatal(err)
		}
		s := w.Fabric().Stats
		return s.EagerMsgs + s.RendezvousMsgs
	}
	pw := msgs(mpi.Exchange{Alg: mpi.CommPairwise})
	hi := msgs(mpi.Exchange{Alg: mpi.CommHier})
	if hi >= pw {
		t.Errorf("hier should not send more messages than pairwise: hier=%d pairwise=%d", hi, pw)
	}
}
