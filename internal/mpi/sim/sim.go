// Package sim implements the mpi.Comm interface on top of the virtual-time
// fabric of package simnet. No payload moves: operations carry byte counts
// only, and every cost (posting, transfer, progression, MPI_Test overhead)
// is charged to the rank's virtual clock from the machine model. The
// simulation is deterministic.
package sim

import (
	"fmt"

	"offt/internal/machine"
	"offt/internal/mpi"
	"offt/internal/mpi/fault"
	"offt/internal/simnet"
	"offt/internal/vclock"
)

// World is a simulated job: p ranks in virtual time on one machine model.
type World struct {
	Mach   machine.Machine
	P      int
	fabric *simnet.Fabric
	sched  *vclock.Scheduler
}

// NewWorld creates a simulated world of p ranks on machine m.
func NewWorld(m machine.Machine, p int) *World {
	return &World{
		Mach:   m,
		P:      p,
		fabric: simnet.NewFabric(m, p),
		sched:  vclock.New(p),
	}
}

// Fabric exposes the underlying fabric (for statistics).
func (w *World) Fabric() *simnet.Fabric { return w.fabric }

// InjectFaults attaches a fault plan to the fabric: NIC stall windows and
// slow-NIC / link degradation apply in virtual time. Per-message payload
// faults are meaningless here (no payload moves) and are ignored. Must be
// called before Run.
func (w *World) InjectFaults(plan *fault.Plan) { w.fabric.SetFaults(plan) }

// Run executes body once per rank and returns when all ranks finish. It
// must be called exactly once per World.
func (w *World) Run(body func(c *Comm)) error {
	return w.sched.Run(func(proc *vclock.Proc) {
		ep := w.fabric.Endpoint(proc.ID(), proc)
		body(&Comm{world: w, ep: ep, proc: proc})
	})
}

// Comm is one simulated rank's communicator.
type Comm struct {
	world *World
	ep    *simnet.Endpoint
	proc  *vclock.Proc
	seq   int // collective sequence number, consumed as the tag space
}

var _ mpi.Comm = (*Comm)(nil)

// Rank returns this rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.P }

// Now returns the rank's virtual time in nanoseconds.
func (c *Comm) Now() int64 { return c.proc.Now() }

// Advance charges d nanoseconds of local computation to this rank. It is
// the hook the cost-model kernels use.
func (c *Comm) Advance(d int64) { c.proc.Advance(d) }

// Proc exposes the vclock process (for advanced uses in tests).
func (c *Comm) Proc() *vclock.Proc { return c.proc }

// request implements mpi.Request for this engine: one completion group
// covering all the collective's point-to-point halves.
type request struct {
	grp *simnet.Group
}

func (c *Comm) nextTag() int {
	t := c.seq
	c.seq++
	return t
}

// Ialltoallv starts a non-blocking all-to-all. Buffers are ignored (may be
// nil); only the counts matter. The local block is charged as a memcpy.
func (c *Comm) Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) mpi.Request {
	p, rank := c.Size(), c.Rank()
	if len(sendCounts) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("sim: counts length %d/%d, want %d", len(sendCounts), len(recvCounts), p))
	}
	tag := c.nextTag()
	req := &request{grp: &simnet.Group{}}
	// Round-robin peer schedule (libNBC style): receives posted before the
	// matching-distance send so inbound RTS always finds a posted receive.
	// Zero-count blocks are skipped entirely, so sub-grid collectives (the
	// pencil decomposition's row/column exchanges) cost only their real
	// peers.
	for i := 1; i < p; i++ {
		src := (rank - i + p) % p
		dst := (rank + i) % p
		if recvCounts[src] > 0 {
			c.ep.IrecvGrp(src, tag, recvCounts[src]*mpi.Elem16, req.grp)
		}
		if sendCounts[dst] > 0 {
			c.ep.IsendGrp(dst, tag, sendCounts[dst]*mpi.Elem16, req.grp)
		}
	}
	if sendCounts[rank] > 0 {
		c.ep.LocalCopy(sendCounts[rank] * mpi.Elem16)
	}
	return req
}

// Alltoallv performs a blocking all-to-all.
func (c *Comm) Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) {
	r := c.Ialltoallv(send, sendCounts, recv, recvCounts)
	c.Wait(r)
}

// Test progresses communication and reports whether all requests are done.
func (c *Comm) Test(reqs ...mpi.Request) bool {
	active := 0
	for _, r := range reqs {
		if r != nil {
			active += toRequest(r).grp.Pending()
		}
	}
	c.ep.TestN(active)
	for _, r := range reqs {
		if r != nil && !toRequest(r).grp.Done() {
			return false
		}
	}
	return true
}

// Wait blocks until all requests complete.
func (c *Comm) Wait(reqs ...mpi.Request) {
	groups := make([]*simnet.Group, 0, len(reqs))
	for _, r := range reqs {
		if r != nil {
			groups = append(groups, toRequest(r).grp)
		}
	}
	c.ep.WaitGroups(groups...)
}

func toRequest(r mpi.Request) *request {
	rr, ok := r.(*request)
	if !ok {
		panic(fmt.Sprintf("sim: foreign request type %T", r))
	}
	return rr
}

// Barrier is a dissemination barrier over 1-byte eager messages.
func (c *Comm) Barrier() {
	p, rank := c.Size(), c.Rank()
	for k := 1; k < p; k <<= 1 {
		tag := c.nextTag()
		dst := (rank + k) % p
		src := (rank - k + p) % p
		rr := c.ep.Irecv(src, tag, 1)
		sr := c.ep.Isend(dst, tag, 1)
		c.ep.WaitAll(rr, sr)
	}
}
