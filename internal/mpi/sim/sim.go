// Package sim implements the mpi.Comm interface on top of the virtual-time
// fabric of package simnet. No payload moves: operations carry byte counts
// only, and every cost (posting, transfer, progression, MPI_Test overhead)
// is charged to the rank's virtual clock from the machine model. The
// simulation is deterministic.
package sim

import (
	"fmt"

	"offt/internal/machine"
	"offt/internal/mpi"
	"offt/internal/mpi/fault"
	"offt/internal/simnet"
	"offt/internal/vclock"
)

// World is a simulated job: p ranks in virtual time on one machine model.
type World struct {
	Mach   machine.Machine
	P      int
	fabric *simnet.Fabric
	sched  *vclock.Scheduler
}

// NewWorld creates a simulated world of p ranks on machine m.
func NewWorld(m machine.Machine, p int) *World {
	return &World{
		Mach:   m,
		P:      p,
		fabric: simnet.NewFabric(m, p),
		sched:  vclock.New(p),
	}
}

// Fabric exposes the underlying fabric (for statistics).
func (w *World) Fabric() *simnet.Fabric { return w.fabric }

// InjectFaults attaches a fault plan to the fabric: NIC stall windows and
// slow-NIC / link degradation apply in virtual time. Per-message payload
// faults are meaningless here (no payload moves) and are ignored. Must be
// called before Run.
func (w *World) InjectFaults(plan *fault.Plan) { w.fabric.SetFaults(plan) }

// Run executes body once per rank and returns when all ranks finish. It
// must be called exactly once per World.
func (w *World) Run(body func(c *Comm)) error {
	return w.sched.Run(func(proc *vclock.Proc) {
		ep := w.fabric.Endpoint(proc.ID(), proc)
		body(&Comm{world: w, ep: ep, proc: proc})
	})
}

// Comm is one simulated rank's communicator.
type Comm struct {
	world *World
	ep    *simnet.Endpoint
	proc  *vclock.Proc
	seq   int // collective sequence number, consumed as the tag space
	ex    mpi.Exchange
}

var (
	_ mpi.Comm           = (*Comm)(nil)
	_ mpi.ExchangeSetter = (*Comm)(nil)
)

// SetExchange selects the all-to-all schedule for collectives posted from
// now on (mpi.ExchangeSetter). Every rank must apply the same Exchange
// before matching collectives (SPMD).
func (c *Comm) SetExchange(ex mpi.Exchange) { c.ex = ex }

// Rank returns this rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.P }

// Now returns the rank's virtual time in nanoseconds.
func (c *Comm) Now() int64 { return c.proc.Now() }

// Advance charges d nanoseconds of local computation to this rank. It is
// the hook the cost-model kernels use.
func (c *Comm) Advance(d int64) { c.proc.Advance(d) }

// Proc exposes the vclock process (for advanced uses in tests).
func (c *Comm) Proc() *vclock.Proc { return c.proc }

// simReq is the engine-side request contract every schedule implements.
// All methods are called by the owning rank's process only.
type simReq interface {
	// advance posts any newly-eligible protocol stage (next Bruck round,
	// hierarchical phase transition, windowed send release) and reports
	// completion. Called from Test and the wait loops; must be idempotent
	// once complete.
	advance() bool
	// pendingCount returns the incomplete point-to-point halves currently
	// outstanding, for Test's per-request cost model.
	pendingCount() int
	// wait blocks until the request completes, advancing stages as their
	// completion groups drain.
	wait()
}

// request implements mpi.Request for the pairwise schedule: one completion
// group covering all the collective's point-to-point halves.
type request struct {
	c   *Comm
	grp *simnet.Group
}

func (r *request) advance() bool     { return r.grp.Done() }
func (r *request) pendingCount() int { return r.grp.Pending() }
func (r *request) wait()             { r.c.ep.WaitGroups(r.grp) }

func (c *Comm) nextTag() int {
	t := c.seq
	c.seq++
	return t
}

// nextTags reserves n consecutive sequence numbers for a multi-message
// schedule (one per Bruck round, one per hierarchical protocol phase).
// Consumption depends only on p and the configured schedule, so it stays
// uniform across ranks.
func (c *Comm) nextTags(n int) int {
	t := c.seq
	c.seq += n
	return t
}

// Ialltoallv starts a non-blocking all-to-all using the configured exchange
// schedule (SetExchange; pairwise by default). Buffers are ignored (may be
// nil); only the counts matter. The local block is charged as a memcpy.
func (c *Comm) Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) mpi.Request {
	p := c.Size()
	if len(sendCounts) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("sim: counts length %d/%d, want %d", len(sendCounts), len(recvCounts), p))
	}
	if p > 1 {
		switch c.ex.Alg {
		case mpi.CommBruck:
			return c.postBruck(sendCounts, recvCounts)
		case mpi.CommHier:
			return c.postHier(sendCounts, recvCounts)
		case mpi.CommWindowed:
			if w := c.window(); w < p-1 {
				return c.postWindowed(sendCounts, recvCounts, w)
			}
		}
	}
	return c.postPairwise(sendCounts, recvCounts)
}

// postPairwise is the historical eager schedule.
func (c *Comm) postPairwise(sendCounts, recvCounts []int) *request {
	p, rank := c.Size(), c.Rank()
	tag := c.nextTag()
	req := &request{c: c, grp: &simnet.Group{}}
	// Round-robin peer schedule (libNBC style): receives posted before the
	// matching-distance send so inbound RTS always finds a posted receive.
	// Zero-count blocks are skipped entirely, so sub-grid collectives (the
	// pencil decomposition's row/column exchanges) cost only their real
	// peers.
	for i := 1; i < p; i++ {
		src := (rank - i + p) % p
		dst := (rank + i) % p
		if recvCounts[src] > 0 {
			c.ep.IrecvGrp(src, tag, recvCounts[src]*mpi.Elem16, req.grp)
		}
		if sendCounts[dst] > 0 {
			c.ep.IsendGrp(dst, tag, sendCounts[dst]*mpi.Elem16, req.grp)
		}
	}
	if sendCounts[rank] > 0 {
		c.ep.LocalCopy(sendCounts[rank] * mpi.Elem16)
	}
	return req
}

// Alltoallv performs a blocking all-to-all.
func (c *Comm) Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) {
	r := c.Ialltoallv(send, sendCounts, recv, recvCounts)
	c.Wait(r)
}

// Test progresses communication, advances every request's schedule state
// machine, and reports whether all requests are done.
func (c *Comm) Test(reqs ...mpi.Request) bool {
	active := 0
	for _, r := range reqs {
		if r != nil {
			active += toRequest(r).pendingCount()
		}
	}
	c.ep.TestN(active)
	all := true
	for _, r := range reqs {
		if r != nil && !toRequest(r).advance() {
			all = false
		}
	}
	return all
}

// Wait blocks until all requests complete. Requests are waited in argument
// order; since collectives are SPMD the order is identical on every rank,
// and the endpoint progresses all protocol traffic while parked, so
// sequential waiting cannot deadlock.
func (c *Comm) Wait(reqs ...mpi.Request) {
	for _, r := range reqs {
		if r != nil {
			toRequest(r).wait()
		}
	}
}

func toRequest(r mpi.Request) simReq {
	rr, ok := r.(simReq)
	if !ok {
		panic(fmt.Sprintf("sim: foreign request type %T", r))
	}
	return rr
}

// Barrier is a dissemination barrier over 1-byte eager messages.
func (c *Comm) Barrier() {
	p, rank := c.Size(), c.Rank()
	for k := 1; k < p; k <<= 1 {
		tag := c.nextTag()
		dst := (rank + k) % p
		src := (rank - k + p) % p
		rr := c.ep.Irecv(src, tag, 1)
		sr := c.ep.Isend(dst, tag, 1)
		c.ep.WaitAll(rr, sr)
	}
}
