package sim

import (
	"fmt"
	"testing"

	"offt/internal/machine"
	"offt/internal/mpi"
)

// benchShapes mirrors the mem engine's benchmark count distributions.
func benchShapes(p, n int) map[string]func(rank int) []int {
	return map[string]func(rank int) []int{
		"uniform": func(rank int) []int {
			c := make([]int, p)
			for i := range c {
				c[i] = n
			}
			return c
		},
		"skewed": func(rank int) []int {
			c := make([]int, p)
			for i := range c {
				c[i] = 1 + (n*2*((rank+i)%p))/p
			}
			return c
		},
		"zeroheavy": func(rank int) []int {
			c := make([]int, p)
			for i := range c {
				if i%4 == rank%4 {
					c[i] = n * 4
				}
			}
			return c
		},
	}
}

// BenchmarkIalltoallv measures the wall-clock cost of simulating one
// collective per schedule × count shape (the simulation's own speed, not
// the virtual time it models).
func BenchmarkIalltoallv(b *testing.B) {
	const p, n = 32, 256
	for _, ex := range []mpi.Exchange{
		{Alg: mpi.CommPairwise},
		{Alg: mpi.CommBruck},
		{Alg: mpi.CommHier},
		{Alg: mpi.CommWindowed, Window: 4},
	} {
		for shape, countsOf := range benchShapes(p, n) {
			ex := ex
			countsOf := countsOf
			b.Run(fmt.Sprintf("%s/%s", ex.Alg, shape), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w := NewWorld(machine.Hopper(), p)
					err := w.Run(func(c *Comm) {
						c.SetExchange(ex)
						me := c.Rank()
						sendCounts := countsOf(me)
						recvCounts := make([]int, p)
						for s := 0; s < p; s++ {
							recvCounts[s] = countsOf(s)[me]
						}
						c.Alltoallv(nil, sendCounts, nil, recvCounts)
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
