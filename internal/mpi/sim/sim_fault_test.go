package sim

import (
	"testing"

	"offt/internal/machine"
	"offt/internal/mpi/fault"
)

// runExchange runs one uniform all-to-all of `elems` elements per block on
// a p-rank simulated world and returns the max completion time.
func runExchange(t *testing.T, p, elems int, plan *fault.Plan) (int64, *World) {
	t.Helper()
	w := NewWorld(machine.UMDCluster(), p)
	if plan != nil {
		w.InjectFaults(plan)
	}
	var maxEnd int64
	err := w.Run(func(c *Comm) {
		counts := make([]int, p)
		for i := range counts {
			counts[i] = elems
		}
		c.Alltoallv(nil, counts, nil, counts)
		if end := c.Now(); end > maxEnd {
			maxEnd = end // ranks finish sequentially under vclock; no race
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return maxEnd, w
}

// TestSimStallDisplacesCompletion: a stall window on one rank's NIC must
// push the job past the window's end in virtual time.
func TestSimStallDisplacesCompletion(t *testing.T) {
	const stall = int64(5e6) // 5ms, far beyond the baseline exchange
	base, _ := runExchange(t, 4, 1024, nil)
	if base >= stall {
		t.Fatalf("baseline %d ns already beyond the stall window", base)
	}
	plan := &fault.Plan{Seed: 1, Stalls: []fault.RankStall{{Rank: 2, At: 0, Dur: stall}}}
	end, w := runExchange(t, 4, 1024, plan)
	if end < stall {
		t.Errorf("completion %d ns before stall end %d ns", end, stall)
	}
	if w.Fabric().Stats.StallNsInjected == 0 {
		t.Error("no stall displacement recorded")
	}
}

// TestSimLinkDegradationSlowsJob: scaling every link's per-byte cost must
// slow the exchange, and the degradation must be counted.
func TestSimLinkDegradationSlowsJob(t *testing.T) {
	base, _ := runExchange(t, 4, 4096, nil)
	plan := &fault.Plan{Seed: 1, Links: []fault.LinkFault{{Src: -1, Dst: -1, From: 0, Until: 1 << 62, Factor: 8}}}
	slow, w := runExchange(t, 4, 4096, plan)
	if slow <= base {
		t.Errorf("degraded job (%d ns) not slower than baseline (%d ns)", slow, base)
	}
	if w.Fabric().Stats.DegradedTransfers == 0 {
		t.Error("no degraded transfers recorded")
	}
}

// TestSimSlowNICAsymmetric: a slow NIC on one rank slows the job less than
// slowing every link, but still measurably.
func TestSimSlowNICAsymmetric(t *testing.T) {
	base, _ := runExchange(t, 4, 4096, nil)
	plan := &fault.Plan{Seed: 1, SlowNIC: map[int]float64{0: 8}}
	slow, _ := runExchange(t, 4, 4096, plan)
	if slow <= base {
		t.Errorf("slow-NIC job (%d ns) not slower than baseline (%d ns)", slow, base)
	}
}

// TestSimFaultsDeterministic: the same plan must reproduce the identical
// virtual completion time.
func TestSimFaultsDeterministic(t *testing.T) {
	plan := &fault.Plan{
		Seed:   7,
		Stalls: []fault.RankStall{{Rank: 1, At: 0, Dur: 2e6}},
		Links:  []fault.LinkFault{{Src: 1, Dst: -1, From: 0, Until: 1 << 62, Factor: 3}},
	}
	a, _ := runExchange(t, 4, 2048, plan)
	b, _ := runExchange(t, 4, 2048, plan)
	if a != b {
		t.Errorf("same plan, different completion times: %d vs %d", a, b)
	}
}

// TestSimInactivePlanNoop: an inactive plan must not change the fabric.
func TestSimInactivePlanNoop(t *testing.T) {
	base, _ := runExchange(t, 4, 1024, nil)
	end, w := runExchange(t, 4, 1024, &fault.Plan{Seed: 9})
	if end != base {
		t.Errorf("inactive plan changed completion: %d vs %d", end, base)
	}
	if s := w.Fabric().Stats; s.StallNsInjected != 0 || s.DegradedTransfers != 0 {
		t.Errorf("inactive plan recorded fault activity: %+v", s)
	}
}
