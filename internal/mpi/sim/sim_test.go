package sim

import (
	"testing"

	"offt/internal/machine"
	"offt/internal/mpi"
)

func flat() machine.Machine {
	return machine.Machine{
		Name:         "flat",
		CoresPerNode: 1,
		Net: machine.Network{
			LatencyIntraNs: 100, LatencyInterNs: 100,
			NsPerByteIntra: 1, NsPerByteInter: 1,
			EagerThreshold: 1000,
		},
	}
}

func uniform(p, n int) []int {
	c := make([]int, p)
	for i := range c {
		c[i] = n
	}
	return c
}

func TestBlockingAlltoallCompletes(t *testing.T) {
	p := 4
	w := NewWorld(flat(), p)
	ends := make([]int64, p)
	err := w.Run(func(c *Comm) {
		counts := uniform(p, 500) // 8000 bytes per pair: rendezvous
		c.Alltoallv(nil, counts, nil, counts)
		ends[c.Rank()] = c.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range ends {
		if e <= 0 {
			t.Errorf("rank %d finished at %d", r, e)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	p := 8
	w := NewWorld(flat(), p)
	after := make([]int64, p)
	err := w.Run(func(c *Comm) {
		// Rank r computes r·10µs, then barrier.
		c.Advance(int64(c.Rank()) * 10_000)
		c.Barrier()
		after[c.Rank()] = c.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone must leave the barrier no earlier than the slowest arrival.
	slowest := int64((p - 1)) * 10_000
	for r, a := range after {
		if a < slowest {
			t.Errorf("rank %d left barrier at %d, before slowest arrival %d", r, a, slowest)
		}
	}
}

func TestNonblockingOverlapsComputation(t *testing.T) {
	// One rank pair exchanging a large message while computing: total time
	// with overlap (Ialltoall → compute with tests → wait) must be well
	// below compute + blocking-alltoall time.
	p := 2
	const compute = 2_000_000                            // 2 ms
	counts := func() []int { return uniform(p, 60_000) } // ~1 MB blocks

	blocking := func() int64 {
		w := NewWorld(flat(), p)
		var end int64
		if err := w.Run(func(c *Comm) {
			c.Alltoallv(nil, counts(), nil, counts())
			c.Advance(compute)
			if c.Rank() == 0 {
				end = c.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}()

	overlapped := func() int64 {
		w := NewWorld(flat(), p)
		var end int64
		if err := w.Run(func(c *Comm) {
			req := c.Ialltoallv(nil, counts(), nil, counts())
			const chunks = 20
			for i := 0; i < chunks; i++ {
				c.Advance(compute / chunks)
				c.Test(req)
			}
			c.Wait(req)
			if c.Rank() == 0 {
				end = c.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}()

	if !(overlapped < blocking*9/10) {
		t.Errorf("overlap did not help: overlapped=%d blocking=%d", overlapped, blocking)
	}
}

func TestNoTestsMeansNoProgress(t *testing.T) {
	// With rendezvous traffic and zero Test calls during the compute
	// phase, communication only progresses at the final Wait, so the total
	// is ~compute + comm (no overlap benefit).
	p := 2
	const compute = 2_000_000
	counts := func() []int { return uniform(p, 60_000) }

	run := func(tests int) int64 {
		w := NewWorld(flat(), p)
		var end int64
		if err := w.Run(func(c *Comm) {
			req := c.Ialltoallv(nil, counts(), nil, counts())
			if tests == 0 {
				c.Advance(compute)
			} else {
				for i := 0; i < tests; i++ {
					c.Advance(compute / int64(tests))
					c.Test(req)
				}
			}
			c.Wait(req)
			if c.Rank() == 0 {
				end = c.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if zero, some := run(0), run(16); !(some < zero) {
		t.Errorf("manual progression had no effect: 0 tests → %d, 16 tests → %d", zero, some)
	}
}

func TestDeterministicEndTimes(t *testing.T) {
	runOnce := func() [4]int64 {
		p := 4
		w := NewWorld(machine.Hopper(), p)
		var ends [4]int64
		if err := w.Run(func(c *Comm) {
			counts := uniform(p, 4096)
			for iter := 0; iter < 3; iter++ {
				req := c.Ialltoallv(nil, counts, nil, counts)
				c.Advance(50_000)
				c.Test(req)
				c.Advance(50_000)
				c.Wait(req)
			}
			ends[c.Rank()] = c.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSelfOnlyWorld(t *testing.T) {
	w := NewWorld(flat(), 1)
	err := w.Run(func(c *Comm) {
		c.Alltoallv(nil, []int{100}, nil, []int{100})
		c.Barrier()
		if c.Size() != 1 || c.Rank() != 0 {
			t.Error("bad self world")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForeignRequestPanics(t *testing.T) {
	w := NewWorld(flat(), 1)
	err := w.Run(func(c *Comm) {
		c.Test(mpi.Request("bogus"))
	})
	if err == nil {
		t.Error("expected error for foreign request type")
	}
}

func TestCountsValidation(t *testing.T) {
	w := NewWorld(flat(), 2)
	err := w.Run(func(c *Comm) {
		c.Ialltoallv(nil, []int{1}, nil, []int{1, 1}) // wrong length
	})
	if err == nil {
		t.Error("expected error for wrong counts length")
	}
}

func TestWindowedAlltoallsAllComplete(t *testing.T) {
	// Multiple outstanding ialltoalls (a window), tested and waited out of
	// order, as the NEW algorithm does.
	p := 4
	w := NewWorld(flat(), p)
	err := w.Run(func(c *Comm) {
		counts := uniform(p, 2000)
		var reqs []mpi.Request
		for i := 0; i < 3; i++ {
			reqs = append(reqs, c.Ialltoallv(nil, counts, nil, counts))
			c.Advance(10_000)
			c.Test(reqs...)
		}
		c.Wait(reqs...)
		if !c.Test(reqs...) {
			t.Error("requests not complete after Wait")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
