package sim

import (
	"offt/internal/mpi"
	"offt/internal/simnet"
)

// This file implements the tunable all-to-all schedules of the sim engine.
// No payload moves: each schedule posts the point-to-point halves its
// protocol would generate, with message sizes derived from the counts at
// post time, and charges the pack/unpack memory traffic the real protocol
// performs (combined packets are assembled by copying — that is the price
// Bruck and the hierarchical exchange pay for sending fewer messages).
//
// Multi-stage schedules are request state machines: Test and Wait drive
// advance(), which posts the next Bruck round or hierarchical phase once
// the current completion group drains. Stage transitions depend only on
// this rank's own group, and the endpoint keeps progressing all protocol
// traffic while parked, so sequential stage waits cannot deadlock.
//
// Aggregated message sizes a rank cannot know locally (what its node
// leader will forward on its behalf) use a uniformity approximation: every
// rank of a node is assumed to contribute the leader's own per-node byte
// counts. Receive-side sizes are advisory in simnet (rendezvous transfers
// are costed from the sender's size), so the approximation only shapes
// send-side injection costs.

// window resolves the windowed schedule's in-flight cap.
func (c *Comm) window() int {
	if c.ex.Window > 0 {
		return c.ex.Window
	}
	return mpi.DefaultWindow
}

// nodeSize resolves the hierarchical schedule's ranks-per-node grouping.
func (c *Comm) nodeSize() int {
	ns := c.ex.NodeSize
	if ns <= 0 {
		ns = c.world.Mach.CoresPerNode
	}
	if ns < 1 {
		ns = 1
	}
	return ns
}

// ---- windowed pairwise ----------------------------------------------------

// winSend is one deferred peer send of a windowed collective.
type winSend struct {
	dst, bytes int
}

// winSim is pairwise with a bounded number of in-flight sends: all receives
// are posted up front (so no inbound message ever lacks a matching receive),
// while sends are released in distance order as earlier ones complete,
// keeping at most `window` outstanding.
type winSim struct {
	c        *Comm
	tag      int
	recvGrp  *simnet.Group
	sendGrp  *simnet.Group
	sends    []winSend
	released int
	window   int
}

func (c *Comm) postWindowed(sendCounts, recvCounts []int, window int) *winSim {
	p, rank := c.Size(), c.Rank()
	req := &winSim{c: c, tag: c.nextTag(), recvGrp: &simnet.Group{}, sendGrp: &simnet.Group{}, window: window}
	for i := 1; i < p; i++ {
		src := (rank - i + p) % p
		if recvCounts[src] > 0 {
			c.ep.IrecvGrp(src, req.tag, recvCounts[src]*mpi.Elem16, req.recvGrp)
		}
		dst := (rank + i) % p
		if sendCounts[dst] > 0 {
			req.sends = append(req.sends, winSend{dst: dst, bytes: sendCounts[dst] * mpi.Elem16})
		}
	}
	if sendCounts[rank] > 0 {
		c.ep.LocalCopy(sendCounts[rank] * mpi.Elem16)
	}
	req.release()
	return req
}

// release posts deferred sends while the in-flight count is under the window.
func (r *winSim) release() {
	for r.released < len(r.sends) && r.sendGrp.Pending() < r.window {
		s := r.sends[r.released]
		r.c.ep.IsendGrp(s.dst, r.tag, s.bytes, r.sendGrp)
		r.released++
	}
}

func (r *winSim) advance() bool {
	r.release()
	return r.released == len(r.sends) && r.sendGrp.Done() && r.recvGrp.Done()
}

func (r *winSim) pendingCount() int { return r.recvGrp.Pending() + r.sendGrp.Pending() }

func (r *winSim) wait() {
	for !r.advance() {
		if r.released < len(r.sends) {
			// Sends still gated: wait for the in-flight batch to drain so
			// release can post more. Waiting on the receive group here could
			// park every rank with sends its peers are still gating on.
			r.c.ep.WaitGroups(r.sendGrp)
		} else {
			r.c.ep.WaitGroups(r.recvGrp, r.sendGrp)
		}
	}
}

// ---- Bruck ----------------------------------------------------------------

// bruckSim advances one rank through the ⌈log2 p⌉ Bruck rounds: round k
// exchanges one combined packet with ranks ±2^k, carrying every held block
// whose remaining distance has bit k set. Per-round payloads are the
// per-peer average times the number of forwarded blocks — exact for
// uniform counts, the right aggregate for ragged ones.
type bruckSim struct {
	c      *Comm
	tag0   int
	rounds int
	round  int // rounds fully completed; == rounds ⇒ done
	grp    *simnet.Group
	sendB  []int // per-round combined-packet payload bytes (outbound)
	recvB  []int // per-round inbound, advisory
	blocks []int // per-round forwarded block count (pack-loop overhead)
	done   bool
}

func (c *Comm) postBruck(sendCounts, recvCounts []int) *bruckSim {
	p, rank := c.Size(), c.Rank()
	rounds := 0
	for (1 << rounds) < p {
		rounds++
	}
	sTot, rTot := 0, 0
	for r := 0; r < p; r++ {
		if r != rank {
			sTot += sendCounts[r]
			rTot += recvCounts[r]
		}
	}
	req := &bruckSim{c: c, tag0: c.nextTags(rounds), rounds: rounds,
		sendB: make([]int, rounds), recvB: make([]int, rounds), blocks: make([]int, rounds)}
	for k := 0; k < rounds; k++ {
		cnt := 0
		for i := 1; i < p; i++ {
			if i&(1<<k) != 0 {
				cnt++
			}
		}
		req.blocks[k] = cnt
		req.sendB[k] = cnt * sTot * mpi.Elem16 / (p - 1)
		req.recvB[k] = cnt * rTot * mpi.Elem16 / (p - 1)
	}
	if sendCounts[rank] > 0 {
		c.ep.LocalCopy(sendCounts[rank] * mpi.Elem16)
	}
	req.postRound(0)
	return req
}

// postRound packs and posts round k: one combined send to rank+2^k, one
// combined receive from rank−2^k.
func (r *bruckSim) postRound(k int) {
	c := r.c
	p, rank := c.Size(), c.Rank()
	r.grp = &simnet.Group{}
	c.Advance(int64(float64(r.blocks[k]) * c.world.Mach.Cmp.PackPerDestNs))
	c.ep.LocalCopy(r.sendB[k])
	c.ep.IrecvGrp((rank-(1<<k)+p)%p, r.tag0+k, r.recvB[k], r.grp)
	c.ep.IsendGrp((rank+(1<<k))%p, r.tag0+k, r.sendB[k], r.grp)
}

func (r *bruckSim) advance() bool {
	if r.done {
		return true
	}
	for r.grp.Done() {
		r.c.ep.LocalCopy(r.recvB[r.round]) // unpack the round's packet
		r.round++
		if r.round == r.rounds {
			r.done = true
			return true
		}
		r.postRound(r.round)
	}
	return false
}

func (r *bruckSim) pendingCount() int {
	if r.done {
		return 0
	}
	return r.grp.Pending()
}

func (r *bruckSim) wait() {
	for !r.advance() {
		r.c.ep.WaitGroups(r.grp)
	}
}

// ---- hierarchical node-aware ----------------------------------------------

// Hierarchical protocol phases, one tag each (mirrors the mem engine).
const (
	hierDirect = iota
	hierGather
	hierExchange
	hierScatter
	hierTags
)

// hierSim runs the node-aware exchange in the fabric model: intra-node
// blocks move directly (cheap intra rate), inter-node blocks ride
// member→leader→leader→member, collapsing fabric messages from p² to
// nodes² at the cost of gather/scatter hops and pack copies.
type hierSim struct {
	c      *Comm
	tag0   int
	ns     int
	leader bool

	grp0 *simnet.Group // member: whole protocol; leader: direct + gathers
	grp1 *simnet.Group // leader: exchange
	grp2 *simnet.Group // leader: scatter sends
	// stage is the leader's phase: 0 awaiting gathers, 1 awaiting
	// exchanges, 2 scatter posted.
	stage int

	exOutB  []int // leader: aggregated exchange bytes per node
	exInB   []int // leader: advisory inbound per node
	sInB    int   // own inter-node receive bytes (scatter payload)
	members int
	done    bool
}

func (c *Comm) postHier(sendCounts, recvCounts []int) simReq {
	p, rank := c.Size(), c.Rank()
	ns := c.nodeSize()
	nodes := (p + ns - 1) / ns
	if nodes == 1 {
		return c.postPairwise(sendCounts, recvCounts)
	}
	node := rank / ns
	lo, hi := node*ns, (node+1)*ns
	if hi > p {
		hi = p
	}
	req := &hierSim{c: c, tag0: c.nextTags(hierTags), ns: ns, leader: rank == lo, grp0: &simnet.Group{}}
	sOutB := 0
	for d := 0; d < p; d++ {
		if d < lo || d >= hi {
			sOutB += sendCounts[d] * mpi.Elem16
		}
	}
	for s := 0; s < p; s++ {
		if s < lo || s >= hi {
			req.sInB += recvCounts[s] * mpi.Elem16
		}
	}
	// Direct intra-node pairs and the self copy.
	for q := lo; q < hi; q++ {
		if q == rank {
			continue
		}
		if recvCounts[q] > 0 {
			c.ep.IrecvGrp(q, req.tag0+hierDirect, recvCounts[q]*mpi.Elem16, req.grp0)
		}
		if sendCounts[q] > 0 {
			c.ep.IsendGrp(q, req.tag0+hierDirect, sendCounts[q]*mpi.Elem16, req.grp0)
		}
	}
	if sendCounts[rank] > 0 {
		c.ep.LocalCopy(sendCounts[rank] * mpi.Elem16)
	}
	if req.leader {
		req.members = hi - lo - 1
		// Aggregated exchange sizes: own per-node bytes scaled by node
		// population (uniformity approximation for the members' shares).
		req.exOutB = make([]int, nodes)
		req.exInB = make([]int, nodes)
		for d := 0; d < p; d++ {
			if d < lo || d >= hi {
				req.exOutB[d/ns] += sendCounts[d] * mpi.Elem16 * (hi - lo)
			}
		}
		for s := 0; s < p; s++ {
			if s < lo || s >= hi {
				req.exInB[s/ns] += recvCounts[s] * mpi.Elem16 * (hi - lo)
			}
		}
		// Gather receives from every member (advisory size: the member's
		// inter-node share, approximated by the leader's own).
		for m := lo + 1; m < hi; m++ {
			c.ep.IrecvGrp(m, req.tag0+hierGather, sOutB, req.grp0)
		}
		if req.members == 0 {
			req.postExchange()
		}
	} else {
		// Member: pack and push the combined inter-node packet to the
		// leader, post the scatter receive. Both always happen (possibly
		// zero bytes) so the protocol shape is uniform.
		c.Advance(int64(float64(p-(hi-lo)) * c.world.Mach.Cmp.PackPerDestNs))
		c.ep.LocalCopy(sOutB)
		c.ep.IsendGrp(lo, req.tag0+hierGather, sOutB, req.grp0)
		c.ep.IrecvGrp(lo, req.tag0+hierScatter, req.sInB, req.grp0)
	}
	return req
}

// postExchange packs the pooled inter-node traffic and posts one combined
// send/receive pair per peer node (leader only).
func (r *hierSim) postExchange() {
	c := r.c
	p := c.Size()
	ns := r.ns
	nodes := (p + ns - 1) / ns
	myNode := c.Rank() / ns
	r.grp1 = &simnet.Group{}
	total := 0
	for n := 0; n < nodes; n++ {
		if n != myNode {
			total += r.exOutB[n]
		}
	}
	c.Advance(int64(float64((nodes-1)*ns) * c.world.Mach.Cmp.PackPerDestNs))
	c.ep.LocalCopy(total)
	for n := 0; n < nodes; n++ {
		if n == myNode {
			continue
		}
		c.ep.IrecvGrp(n*ns, r.tag0+hierExchange, r.exInB[n], r.grp1)
		c.ep.IsendGrp(n*ns, r.tag0+hierExchange, r.exOutB[n], r.grp1)
	}
	r.stage = 1
}

// postScatter unpacks the exchange traffic and forwards every member's
// share (leader only). Member shares are approximated by the leader's own
// inter-node receive size.
func (r *hierSim) postScatter() {
	c := r.c
	ns := r.ns
	nodes := (c.Size() + ns - 1) / ns
	myNode := c.Rank() / ns
	totalIn := 0
	for n := 0; n < nodes; n++ {
		if n != myNode {
			totalIn += r.exInB[n]
		}
	}
	c.ep.LocalCopy(totalIn) // unpack exchange packets
	r.grp2 = &simnet.Group{}
	lo := myNode * ns
	c.ep.LocalCopy(r.members * r.sInB) // pack scatter packets
	for m := lo + 1; m <= lo+r.members; m++ {
		c.ep.IsendGrp(m, r.tag0+hierScatter, r.sInB, r.grp2)
	}
	r.stage = 2
}

// current returns the group gating the next stage transition.
func (r *hierSim) current() *simnet.Group {
	if !r.leader || r.stage == 0 {
		return r.grp0
	}
	if r.stage == 1 {
		return r.grp1
	}
	return r.grp2
}

func (r *hierSim) advance() bool {
	if r.done {
		return true
	}
	if !r.leader {
		if !r.grp0.Done() {
			return false
		}
		r.c.ep.LocalCopy(r.sInB) // unpack the scatter packet
		r.done = true
		return true
	}
	if r.stage == 0 {
		if !r.grp0.Done() {
			return false
		}
		r.postExchange()
	}
	if r.stage == 1 {
		if !r.grp1.Done() {
			return false
		}
		r.postScatter()
	}
	if !r.grp2.Done() {
		return false
	}
	r.done = true
	return true
}

func (r *hierSim) pendingCount() int {
	if r.done {
		return 0
	}
	return r.current().Pending()
}

func (r *hierSim) wait() {
	for !r.advance() {
		r.c.ep.WaitGroups(r.current())
	}
}
