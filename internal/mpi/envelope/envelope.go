// Package envelope is the shared message format of the self-healing
// transports: the in-process mem engine and the TCP net engine exchange
// the same sequence-numbered, checksummed envelopes, so recovery semantics
// (receiver-side dedup, ack/retransmit with capped backoff, checksum-drop
// of corrupted deliveries) are engine-independent. This package owns the
// envelope struct, its checksum, and the length-prefixed binary frame
// codec the net engine puts on the wire.
//
// Wire framing (all integers little-endian):
//
//	uint32  body length L (bytes that follow the prefix)
//	byte    kind: 1 = data, 2 = ack
//
//	data body (kind 1):
//	  int64   envelope id (world-unique sequence number)
//	  int32   src rank
//	  int32   dst rank
//	  int32   collective tag
//	  uint64  FNV-1a checksum over the payload's raw float64 bits
//	  uint32  n, payload length in complex128 elements
//	  n × 16  payload: (real bits, imag bits) as uint64 pairs
//
//	ack body (kind 2):
//	  int64   acknowledged envelope id
//	  int32   acknowledging rank
//
//	fin body (kind 3): empty — the kind byte is the whole body
//
// Acks are deliberately tiny and carry no checksum: like the mem engine's
// in-process delivery path, acknowledgements ride the reliable control
// plane (TCP) and are never fault-injected; only data payloads fault.
//
// A fin frame is the graceful-departure marker: a rank whose world
// completed its teardown barrier sends fin as its last frame before
// half-closing the connection, so the receiver can tell an orderly exit
// (EOF after fin — ignore) from a crashed peer (EOF without fin — fail
// the world).
package envelope

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"offt/internal/mpi/fault"
)

// Frame kinds.
const (
	KindData byte = 1
	KindAck  byte = 2
	KindFin  byte = 3
)

const (
	dataHeaderBytes = 1 + 8 + 4 + 4 + 4 + 8 + 4 // kind..n, excluding payload
	ackBodyBytes    = 1 + 8 + 4
	finBodyBytes    = 1
	prefixBytes     = 4
	elemBytes       = 16
)

// Codec errors. Read additionally passes through I/O errors from the
// underlying reader (io.EOF on a clean boundary, io.ErrUnexpectedEOF on a
// frame truncated mid-body).
var (
	ErrTooLarge  = errors.New("envelope: frame exceeds size limit")
	ErrTruncated = errors.New("envelope: truncated frame body")
	ErrBadKind   = errors.New("envelope: unknown frame kind")
	ErrBadHeader = errors.New("envelope: malformed frame header")
)

// Envelope is one sequence-numbered, checksummed message of the
// self-healing transport.
type Envelope struct {
	ID            int64
	Src, Dst, Tag int
	Sum           uint64
	Data          []complex128
}

// Checksum is the transport checksum: FNV-1a over the payload's raw
// float64 bit patterns (the same function the fault injector's corruption
// detection uses, so injected corruption is detected bit-for-bit).
func Checksum(data []complex128) uint64 { return fault.Checksum(data) }

// Seal stamps the envelope's checksum from its current payload.
func (e *Envelope) Seal() { e.Sum = Checksum(e.Data) }

// Verify reports whether the payload still matches the sealed checksum.
func (e *Envelope) Verify() bool { return Checksum(e.Data) == e.Sum }

// Frame is one decoded wire frame: a data envelope or an acknowledgement.
type Frame struct {
	Kind    byte
	Env     Envelope // valid when Kind == KindData
	AckID   int64    // valid when Kind == KindAck
	AckFrom int      // valid when Kind == KindAck
}

// AppendData appends a complete data frame (length prefix included) for e
// to buf and returns the extended slice.
func AppendData(buf []byte, e *Envelope) []byte {
	body := dataHeaderBytes + elemBytes*len(e.Data)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(body))
	buf = append(buf, KindData)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(e.Src)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(e.Dst)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(e.Tag)))
	buf = binary.LittleEndian.AppendUint64(buf, e.Sum)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Data)))
	for _, v := range e.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(v)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(v)))
	}
	return buf
}

// AppendAck appends a complete ack frame (length prefix included) to buf
// and returns the extended slice.
func AppendAck(buf []byte, id int64, from int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, ackBodyBytes)
	buf = append(buf, KindAck)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(from)))
	return buf
}

// AppendFin appends a complete fin (graceful departure) frame to buf and
// returns the extended slice.
func AppendFin(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, finBodyBytes)
	return append(buf, KindFin)
}

// Decode parses one frame body (the bytes after the length prefix). The
// returned data envelope owns a fresh payload slice — it never aliases
// body, so callers can reuse their read buffer for the next frame.
func Decode(body []byte) (Frame, error) {
	if len(body) < 1 {
		return Frame{}, ErrTruncated
	}
	switch body[0] {
	case KindFin:
		if len(body) != finBodyBytes {
			return Frame{}, ErrTruncated
		}
		return Frame{Kind: KindFin}, nil
	case KindAck:
		if len(body) != ackBodyBytes {
			return Frame{}, ErrTruncated
		}
		return Frame{
			Kind:    KindAck,
			AckID:   int64(binary.LittleEndian.Uint64(body[1:])),
			AckFrom: int(int32(binary.LittleEndian.Uint32(body[9:]))),
		}, nil
	case KindData:
		if len(body) < dataHeaderBytes {
			return Frame{}, ErrTruncated
		}
		e := Envelope{
			ID:  int64(binary.LittleEndian.Uint64(body[1:])),
			Src: int(int32(binary.LittleEndian.Uint32(body[9:]))),
			Dst: int(int32(binary.LittleEndian.Uint32(body[13:]))),
			Tag: int(int32(binary.LittleEndian.Uint32(body[17:]))),
			Sum: binary.LittleEndian.Uint64(body[21:]),
		}
		n := int(binary.LittleEndian.Uint32(body[29:]))
		if e.Src < 0 || e.Dst < 0 || e.Tag < 0 {
			return Frame{}, fmt.Errorf("%w: negative rank or tag", ErrBadHeader)
		}
		if n < 0 || len(body) != dataHeaderBytes+elemBytes*n {
			return Frame{}, ErrTruncated
		}
		e.Data = make([]complex128, n)
		for i := 0; i < n; i++ {
			off := dataHeaderBytes + elemBytes*i
			e.Data[i] = complex(
				math.Float64frombits(binary.LittleEndian.Uint64(body[off:])),
				math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:])),
			)
		}
		return Frame{Kind: KindData, Env: e}, nil
	default:
		return Frame{}, fmt.Errorf("%w: %d", ErrBadKind, body[0])
	}
}

// Read reads and decodes one frame from r. max bounds the accepted body
// length (guarding a malformed or hostile peer from forcing a huge
// allocation); scratch is an optional reusable buffer returned — possibly
// grown — for the next call. A clean EOF at a frame boundary is io.EOF;
// truncation inside a frame is io.ErrUnexpectedEOF.
func Read(r io.Reader, max int, scratch []byte) (Frame, []byte, error) {
	var prefix [prefixBytes]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, scratch, err
	}
	body := int(binary.LittleEndian.Uint32(prefix[:]))
	if body > max {
		return Frame{}, scratch, fmt.Errorf("%w: %d > %d", ErrTooLarge, body, max)
	}
	if cap(scratch) < body {
		scratch = make([]byte, body)
	}
	buf := scratch[:body]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, scratch, err
	}
	f, err := Decode(buf)
	return f, scratch, err
}
