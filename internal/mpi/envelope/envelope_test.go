package envelope

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func randomEnvelope(rng *rand.Rand, n int) *Envelope {
	e := &Envelope{
		ID:   rng.Int63(),
		Src:  rng.Intn(1024),
		Dst:  rng.Intn(1024),
		Tag:  rng.Intn(1 << 20),
		Data: make([]complex128, n),
	}
	for i := range e.Data {
		e.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	e.Seal()
	return e
}

func TestDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 64, 1000} {
		e := randomEnvelope(rng, n)
		buf := AppendData(nil, e)
		f, _, err := Read(bytes.NewReader(buf), 1<<24, nil)
		if err != nil {
			t.Fatalf("n=%d: Read: %v", n, err)
		}
		if f.Kind != KindData {
			t.Fatalf("n=%d: kind %d", n, f.Kind)
		}
		if !reflect.DeepEqual(f.Env, *e) {
			t.Fatalf("n=%d: decoded %+v want %+v", n, f.Env, *e)
		}
		if !f.Env.Verify() {
			t.Fatalf("n=%d: checksum does not verify after round trip", n)
		}
	}
}

func TestDataRoundTripSpecialFloats(t *testing.T) {
	e := &Envelope{ID: 1, Src: 0, Dst: 1, Tag: 2, Data: []complex128{
		complex(math.Inf(1), math.Inf(-1)),
		complex(math.NaN(), 0),
		complex(math.Copysign(0, -1), math.SmallestNonzeroFloat64),
	}}
	e.Seal()
	f, err := Decode(AppendData(nil, e)[4:])
	if err != nil {
		t.Fatal(err)
	}
	// NaN defeats DeepEqual on values; compare bit patterns instead.
	for i, v := range f.Env.Data {
		if math.Float64bits(real(v)) != math.Float64bits(real(e.Data[i])) ||
			math.Float64bits(imag(v)) != math.Float64bits(imag(e.Data[i])) {
			t.Fatalf("element %d: bits differ", i)
		}
	}
	if !f.Env.Verify() {
		t.Fatal("checksum must be computed over raw bits, surviving NaN/Inf payloads")
	}
}

func TestAckRoundTrip(t *testing.T) {
	buf := AppendAck(nil, 123456789, 7)
	f, _, err := Read(bytes.NewReader(buf), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindAck || f.AckID != 123456789 || f.AckFrom != 7 {
		t.Fatalf("decoded %+v", f)
	}
}

func TestStreamOfFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []byte
	var want []*Envelope
	for i := 0; i < 20; i++ {
		if i%3 == 2 {
			buf = AppendAck(buf, int64(i), i)
			continue
		}
		e := randomEnvelope(rng, rng.Intn(32))
		want = append(want, e)
		buf = AppendData(buf, e)
	}
	rd := bytes.NewReader(buf)
	var scratch []byte
	var got []*Envelope
	for {
		f, s, err := Read(rd, 1<<20, scratch)
		scratch = s
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind == KindData {
			e := f.Env
			got = append(got, &e)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d data frames, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(*got[i], *want[i]) {
			t.Fatalf("frame %d: %+v want %+v", i, *got[i], *want[i])
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	e := randomEnvelope(rand.New(rand.NewSource(3)), 16)
	buf := AppendData(nil, e)
	// Flip one bit in the payload region; the header checksum now disagrees.
	buf[len(buf)-5] ^= 0x10
	f, err := Decode(buf[4:])
	if err != nil {
		t.Fatalf("corrupted payload must still decode structurally: %v", err)
	}
	if f.Env.Verify() {
		t.Fatal("flipped payload bit must fail checksum verification")
	}
}

func TestTruncationErrors(t *testing.T) {
	e := randomEnvelope(rand.New(rand.NewSource(5)), 8)
	full := AppendData(nil, e)
	// Truncated mid-body at the reader level.
	for _, cut := range []int{1, 3, 4, 10, len(full) - 1} {
		_, _, err := Read(bytes.NewReader(full[:cut]), 1<<20, nil)
		if err == nil {
			t.Fatalf("cut=%d: want error", cut)
		}
		if errors.Is(err, io.EOF) && cut >= 1 && cut < len(full) && cut != 0 {
			// A cut inside the prefix or body must not look like a clean EOF,
			// except a cut of the whole prefix region boundary (cut < 4 is
			// inside the prefix → unexpected EOF).
			if cut >= 4 {
				t.Fatalf("cut=%d: clean EOF for truncated body", cut)
			}
		}
	}
	// Body shorter than its header claims at the Decode level.
	body := full[prefixBytes:]
	if _, err := Decode(body[:len(body)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty body: want ErrTruncated, got %v", err)
	}
	if _, err := Decode([]byte{99, 0, 0}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("want ErrBadKind, got %v", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	e := randomEnvelope(rand.New(rand.NewSource(9)), 64)
	buf := AppendData(nil, e)
	_, _, err := Read(bytes.NewReader(buf), 64, nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestDuplicateSequenceNumbersDecodeIndependently(t *testing.T) {
	// The codec itself is oblivious to duplicates — both copies decode
	// intact; receiver-side dedup is the transport's job. This pins that a
	// retransmitted (same-id) frame is byte-identical on the wire.
	e := randomEnvelope(rand.New(rand.NewSource(13)), 12)
	a := AppendData(nil, e)
	b := AppendData(nil, e)
	if !bytes.Equal(a, b) {
		t.Fatal("same envelope must encode identically")
	}
	rd := bytes.NewReader(append(a, b...))
	f1, s, err1 := Read(rd, 1<<20, nil)
	f2, _, err2 := Read(rd, 1<<20, s)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if f1.Env.ID != f2.Env.ID || !reflect.DeepEqual(f1.Env, f2.Env) {
		t.Fatal("duplicate frames must decode to identical envelopes")
	}
}
