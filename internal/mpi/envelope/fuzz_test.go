package envelope

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzEnvelopeRoundTrip throws arbitrary byte streams at the frame reader:
// truncated frames, corrupted checksums, bad kinds, hostile lengths,
// duplicated sequence numbers. The decoder must never panic or
// over-allocate past the size limit, must classify malformed input as an
// error, and every structurally valid decode must re-encode to the exact
// same bytes (canonical encoding) and decode again to an identical frame.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	env := randomEnvelope(rng, 9)
	valid := AppendData(nil, env)
	f.Add(valid)

	// Duplicate sequence number: the same frame twice back to back.
	f.Add(append(append([]byte(nil), valid...), valid...))

	// Checksum corruption: one payload bit flipped under an intact header.
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-3] ^= 0x40
	f.Add(corrupt)

	// Truncations at every interesting boundary.
	f.Add(valid[:3])                          // inside the length prefix
	f.Add(valid[:prefixBytes])                // prefix only
	f.Add(valid[:prefixBytes+1])              // kind only
	f.Add(valid[:len(valid)/2])               // mid-body
	f.Add(valid[:len(valid)-1])               // one byte short
	f.Add(AppendAck(nil, 7, 3))               // valid ack
	f.Add(AppendAck(nil, 7, 3)[:6])           // truncated ack
	f.Add([]byte{255, 255, 255, 255})         // hostile length prefix
	f.Add([]byte{5, 0, 0, 0, 99, 1, 2, 3, 4}) // unknown kind
	f.Add(AppendFin(nil))                     // graceful-departure marker
	f.Add([]byte{2, 0, 0, 0, 3, 0})           // fin with trailing garbage

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		var scratch []byte
		for frames := 0; frames < 64; frames++ {
			fr, s, err := Read(rd, maxFrame, scratch)
			scratch = s
			if err != nil {
				if errors.Is(err, io.EOF) && rd.Len() != 0 {
					t.Fatalf("clean EOF with %d bytes unread", rd.Len())
				}
				break
			}
			switch fr.Kind {
			case KindData:
				reenc := AppendData(nil, &fr.Env)
				fr2, err2 := Decode(reenc[prefixBytes:])
				if err2 != nil {
					t.Fatalf("re-encoded frame failed to decode: %v", err2)
				}
				if !sameEnvelopeBits(&fr.Env, &fr2.Env) {
					t.Fatalf("round trip changed envelope: %+v vs %+v", fr.Env, fr2.Env)
				}
			case KindAck:
				reenc := AppendAck(nil, fr.AckID, fr.AckFrom)
				fr2, err2 := Decode(reenc[prefixBytes:])
				if err2 != nil || !reflect.DeepEqual(fr, fr2) {
					t.Fatalf("ack round trip: %+v vs %+v (%v)", fr, fr2, err2)
				}
			case KindFin:
				reenc := AppendFin(nil)
				fr2, err2 := Decode(reenc[prefixBytes:])
				if err2 != nil || !reflect.DeepEqual(fr, fr2) {
					t.Fatalf("fin round trip: %+v vs %+v (%v)", fr, fr2, err2)
				}
			default:
				t.Fatalf("Read returned unknown kind %d without error", fr.Kind)
			}
		}
	})
}

// sameEnvelopeBits compares envelopes with bit-level float equality (NaN
// payloads from fuzzed bytes defeat ==).
func sameEnvelopeBits(a, b *Envelope) bool {
	if a.ID != b.ID || a.Src != b.Src || a.Dst != b.Dst || a.Tag != b.Tag || a.Sum != b.Sum || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		ab := AppendData(nil, &Envelope{Data: a.Data[i : i+1]})
		bb := AppendData(nil, &Envelope{Data: b.Data[i : i+1]})
		if !bytes.Equal(ab, bb) {
			return false
		}
	}
	return true
}
