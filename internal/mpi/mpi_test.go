package mpi

import "testing"

func TestTotalCount(t *testing.T) {
	if TotalCount(nil) != 0 {
		t.Error("nil counts")
	}
	if TotalCount([]int{1, 2, 3}) != 6 {
		t.Error("sum wrong")
	}
}

func TestElemSize(t *testing.T) {
	var v complex128
	if Elem16 != 16 || Elem16 != int(sizeOf(v)) {
		t.Errorf("Elem16 = %d, want the wire size of complex128", Elem16)
	}
}

func sizeOf(complex128) uintptr { return 16 }
