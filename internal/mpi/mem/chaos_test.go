package mem

import (
	"errors"
	"strings"
	"testing"
	"time"

	"offt/internal/mpi"
	"offt/internal/mpi/fault"
)

// TestRetransmitRecoversDrops forces the first delivery attempt of every
// message to be dropped: the transport must retransmit each one exactly
// until it lands, and the all-to-all must still route every element.
func TestRetransmitRecoversDrops(t *testing.T) {
	p := 4
	plan := &fault.Plan{Seed: 1, ForceDropAttempts: 1}
	w := NewWorld(p, WithFaults(plan), WithRetransmitTimeout(time.Millisecond))
	err := w.Run(func(c *Comm) {
		counts := []int{3, 3, 3, 3}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 12)
		c.Alltoallv(send, counts, recv, counts)
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Health()
	msgs := int64(p * (p - 1)) // one off-rank block per pair
	if h.DropsInjected < msgs {
		t.Errorf("DropsInjected = %d, want ≥ %d (every first attempt)", h.DropsInjected, msgs)
	}
	if h.Retransmits < msgs {
		t.Errorf("Retransmits = %d, want ≥ %d", h.Retransmits, msgs)
	}
	if h.Delivered < msgs {
		t.Errorf("Delivered = %d, want ≥ %d", h.Delivered, msgs)
	}
}

// TestChecksumRejectsCorruption corrupts the first attempt of every
// message; the receiver must detect it via checksum and recover through a
// clean retransmission.
func TestChecksumRejectsCorruption(t *testing.T) {
	p := 3
	plan := &fault.Plan{Seed: 2, ForceCorruptAttempts: 1}
	w := NewWorld(p, WithFaults(plan), WithRetransmitTimeout(time.Millisecond))
	err := w.Run(func(c *Comm) {
		counts := []int{4, 4, 4}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 12)
		c.Alltoallv(send, counts, recv, counts)
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Health()
	if h.CorruptionsInjected < 1 || h.CorruptionsDetected < 1 {
		t.Errorf("corruptions injected/detected = %d/%d, want ≥ 1 each", h.CorruptionsInjected, h.CorruptionsDetected)
	}
	if h.CorruptionsDetected < h.CorruptionsInjected {
		t.Errorf("detected %d < injected %d: some corrupted payload was accepted", h.CorruptionsDetected, h.CorruptionsInjected)
	}
	if h.Retransmits < 1 {
		t.Errorf("Retransmits = %d, want ≥ 1", h.Retransmits)
	}
}

// TestDuplicatesDeduped duplicates every delivery; the receiver-side dedup
// must swallow the copies without corrupting the mailbox.
func TestDuplicatesDeduped(t *testing.T) {
	p := 3
	plan := &fault.Plan{Seed: 3, DupRate: 1}
	w := NewWorld(p, WithFaults(plan), WithRetransmitTimeout(time.Millisecond))
	err := w.Run(func(c *Comm) {
		counts := []int{2, 2, 2}
		for round := 0; round < 3; round++ {
			send := fillBlocks(c.Rank(), counts)
			recv := make([]complex128, 6)
			c.Alltoallv(send, counts, recv, counts)
			checkBlocks(t, c.Rank(), counts, recv)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := w.Health(); h.Dedups < 1 {
		t.Errorf("Dedups = %d, want ≥ 1", h.Dedups)
	}
}

// TestRandomizedChaosConverges runs many rounds under an aggressive random
// mix of drops, corruption, duplication and jitter and checks every
// element still routes correctly.
func TestRandomizedChaosConverges(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		plan := &fault.Plan{Seed: seed, DropRate: 0.2, CorruptRate: 0.1, DupRate: 0.2, JitterNs: 100_000}
		p := 4
		w := NewWorld(p, WithFaults(plan), WithRetransmitTimeout(time.Millisecond))
		err := w.Run(func(c *Comm) {
			counts := []int{3, 1, 0, 5}
			// Every rank sends the same counts vector, so rank r receives
			// counts[r] elements from each sender.
			recvCounts := make([]int, p)
			for s := range recvCounts {
				recvCounts[s] = counts[c.Rank()]
			}
			for round := 0; round < 10; round++ {
				send := fillBlocks(c.Rank(), counts)
				recv := make([]complex128, total(recvCounts))
				c.Alltoallv(send, counts, recv, recvCounts)
				checkBlocks(t, c.Rank(), recvCounts, recv)
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestWaitDeadlineDiagnostic stalls rank 0's NIC past the soft deadline:
// the other rank's WaitDeadline must return a diagnostic naming the
// missing collective and source rank, and a subsequent Wait must still
// complete once the stall window closes.
func TestWaitDeadlineDiagnostic(t *testing.T) {
	p := 2
	plan := &fault.Plan{Seed: 4, Stalls: []fault.RankStall{{Rank: 0, At: 0, Dur: int64(120 * time.Millisecond)}}}
	w := NewWorld(p, WithFaults(plan), WithDeadline(15*time.Millisecond))
	sawDeadline := false
	err := w.Run(func(c *Comm) {
		counts := []int{2, 2}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 4)
		req := c.Ialltoallv(send, counts, recv, counts)
		werr := c.WaitDeadline(req)
		if c.Rank() == 1 {
			var de *DeadlineError
			if !errors.As(werr, &de) {
				t.Errorf("rank 1: WaitDeadline = %v, want *DeadlineError", werr)
			} else {
				sawDeadline = true
				if len(de.Missing) != 1 || de.Missing[0].Seq != 0 {
					t.Errorf("diagnostic missing wrong collective: %+v", de.Missing)
				} else if len(de.Missing[0].From) != 1 || de.Missing[0].From[0] != 0 {
					t.Errorf("diagnostic blames ranks %v, want [0]", de.Missing[0].From)
				}
			}
		}
		c.Wait(req) // soft deadline: the request must still be completable
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDeadline {
		t.Error("rank 1 never observed the wait deadline")
	}
}

// TestDeadlockDetected runs a deliberately mismatched program (one rank in
// Barrier, the other waiting for a block that will never be sent): Run
// must return a diagnostic error naming the stuck collective sequence
// number instead of hanging the test binary.
func TestDeadlockDetected(t *testing.T) {
	w := NewWorld(2)
	// Shorten the default watchdog window (white-box) without enabling the
	// per-call hard limits, so it is Run's watchdog that reports.
	w.hangTimeout = 150 * time.Millisecond
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Barrier()
				return
			}
			send := []complex128{5}
			recv := make([]complex128, 1)
			req := c.Ialltoallv(send, []int{1, 0}, recv, []int{1, 0})
			c.Wait(req)
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a deadlock error, got nil")
		}
		msg := err.Error()
		if !strings.Contains(msg, "deadlock") {
			t.Errorf("error %q does not mention deadlock", msg)
		}
		if !strings.Contains(msg, "seq [0]") && !strings.Contains(msg, "seq 0") {
			t.Errorf("error %q does not name the stuck collective sequence number", msg)
		}
		if !strings.Contains(msg, "Barrier") {
			t.Errorf("error %q does not mention the rank stuck in Barrier", msg)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung despite the deadlock watchdog")
	}
}

// TestBarrierHangTimeout: with an explicit hang timeout, a Barrier that can
// never complete fails the world with a diagnostic error.
func TestBarrierHangTimeout(t *testing.T) {
	w := NewWorld(2, WithHangTimeout(100*time.Millisecond))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Barrier() // rank 1 never arrives
		}
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "Barrier") {
		t.Errorf("error %q does not mention Barrier", err)
	}
}

// TestZeroCountVectors exercises Ialltoallv with all-zero counts (nil
// buffers allowed) and with zero-length peers mixed in — the sub-grid
// collective shapes the pencil decomposition produces.
func TestZeroCountVectors(t *testing.T) {
	p := 3
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		zero := []int{0, 0, 0}
		// All-zero counts with nil buffers: must complete immediately.
		req := c.Ialltoallv(nil, zero, nil, zero)
		if !c.Test(req) {
			t.Errorf("rank %d: all-zero collective not immediately complete", c.Rank())
		}
		c.Wait(req)
		// Mixed zero/nonzero: only rank 1's column carries data.
		sendCounts := []int{0, 2, 0}
		recvCounts := make([]int, p)
		if c.Rank() == 1 {
			recvCounts = []int{2, 2, 2}
		}
		send := fillBlocks(c.Rank(), sendCounts)
		recv := make([]complex128, total(recvCounts))
		c.Alltoallv(send, sendCounts, recv, recvCounts)
		if c.Rank() == 1 {
			checkBlocks(t, 1, recvCounts, recv)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZeroCountSingleRank: the degenerate p=1 world where every collective
// is a self-copy.
func TestZeroCountSingleRank(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) {
		req := c.Ialltoallv(nil, []int{0}, nil, []int{0})
		c.Wait(req)
		send := []complex128{1 + 2i, 3}
		recv := make([]complex128, 2)
		c.Alltoallv(send, []int{2}, recv, []int{2})
		if recv[0] != 1+2i || recv[1] != 3 {
			t.Errorf("self-copy wrong: %v", recv)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultFreeHealthCounts: without faults the health counters still
// track sent/delivered symmetrically and report no recovery activity.
func TestFaultFreeHealthCounts(t *testing.T) {
	p := 2
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		counts := []int{1, 1}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 2)
		c.Alltoallv(send, counts, recv, counts)
	})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Health()
	if h.Sent != 2 || h.Delivered != 2 {
		t.Errorf("sent/delivered = %d/%d, want 2/2", h.Sent, h.Delivered)
	}
	if h.Retransmits != 0 || h.Dedups != 0 || h.CorruptionsDetected != 0 || h.DropsInjected != 0 {
		t.Errorf("fault-free world reported recovery activity: %+v", h)
	}
	var _ mpi.Health = h
}
