package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"offt/internal/mpi"
)

// schedules lists every exchange configuration the schedule tests sweep,
// including degenerate knob settings (window larger than the world, one
// rank per node, ragged last node).
func schedules() []mpi.Exchange {
	return []mpi.Exchange{
		{Alg: mpi.CommPairwise},
		{Alg: mpi.CommBruck},
		{Alg: mpi.CommHier, NodeSize: 1},
		{Alg: mpi.CommHier, NodeSize: 2},
		{Alg: mpi.CommHier, NodeSize: 3},
		{Alg: mpi.CommWindowed, Window: 1},
		{Alg: mpi.CommWindowed, Window: 2},
		{Alg: mpi.CommWindowed, Window: 64},
	}
}

func exName(ex mpi.Exchange) string {
	s := ex.Alg.String()
	if ex.Alg == mpi.CommHier {
		s += "-ns" + string(rune('0'+ex.NodeSize))
	}
	if ex.Alg == mpi.CommWindowed {
		if ex.Window >= 10 {
			s += "-wbig"
		} else {
			s += "-w" + string(rune('0'+ex.Window))
		}
	}
	return s
}

// TestSchedulesUniform checks every schedule delivers the exact pairwise
// permutation on uniform counts across several world sizes.
func TestSchedulesUniform(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 7, 8} {
		for _, ex := range schedules() {
			p, ex := p, ex
			t.Run(exName(ex), func(t *testing.T) {
				w := NewWorld(p)
				err := w.Run(func(c *Comm) {
					c.SetExchange(ex)
					counts := make([]int, p)
					for i := range counts {
						counts[i] = 3
					}
					send := fillBlocks(c.Rank(), counts)
					recv := make([]complex128, 3*p)
					c.Alltoallv(send, counts, recv, counts)
					checkBlocks(t, c.Rank(), counts, recv)
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSchedulesRandomCounts fuzzes every schedule with arbitrary per-pair
// counts including zeros and checks elements against the direct permutation.
func TestSchedulesRandomCounts(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			f := func(seed int64, pRaw uint8) bool {
				p := 2 + int(pRaw)%6
				rng := rand.New(rand.NewSource(seed))
				counts := make([][]int, p)
				for a := range counts {
					counts[a] = make([]int, p)
					for b := range counts[a] {
						counts[a][b] = rng.Intn(4)
					}
				}
				ok := true
				w := NewWorld(p)
				err := w.Run(func(c *Comm) {
					c.SetExchange(ex)
					me := c.Rank()
					sendCounts := counts[me]
					recvCounts := make([]int, p)
					for s := 0; s < p; s++ {
						recvCounts[s] = counts[s][me]
					}
					send := fillBlocks(me, sendCounts)
					recv := make([]complex128, total(recvCounts))
					c.Alltoallv(send, sendCounts, recv, recvCounts)
					off := 0
					for s := 0; s < p; s++ {
						for i := 0; i < recvCounts[s]; i++ {
							if recv[off+i] != complex(float64(s*1000+me), float64(i)) {
								ok = false
							}
						}
						off += recvCounts[s]
					}
				})
				return err == nil && ok
			}
			cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(9))}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSchedulesOutstandingRequests keeps several collectives of each
// schedule in flight at once — multi-round tag reservation must keep the
// rounds of different collectives separate.
func TestSchedulesOutstandingRequests(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			p := 5
			w := NewWorld(p)
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				counts := []int{2, 2, 2, 2, 2}
				const k = 4
				recvs := make([][]complex128, k)
				var reqs []mpi.Request
				for i := 0; i < k; i++ {
					send := fillBlocks(c.Rank(), counts)
					for j := range send {
						send[j] += complex(0, float64(i)*100)
					}
					recvs[i] = make([]complex128, 10)
					reqs = append(reqs, c.Ialltoallv(send, counts, recvs[i], counts))
				}
				c.Wait(reqs...)
				for i := 0; i < k; i++ {
					off := 0
					for s := range counts {
						for e := 0; e < counts[s]; e++ {
							want := complex(float64(s*1000+c.Rank()), float64(e)) + complex(0, float64(i)*100)
							if recvs[i][off+e] != want {
								t.Errorf("round %d block %d elem %d: got %v want %v", i, s, e, recvs[i][off+e], want)
							}
						}
						off += counts[s]
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchedulesCountsAliasing is the counts-aliasing regression for the mem
// engine: the caller overwrites both count slices immediately after posting,
// while the collective is still in flight. Every schedule must have captured
// what it needs synchronously (the mpi.Comm.Ialltoallv contract).
func TestSchedulesCountsAliasing(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			p := 4
			w := NewWorld(p)
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				counts := []int{3, 3, 3, 3}
				sendCounts := append([]int(nil), counts...)
				recvCounts := append([]int(nil), counts...)
				send := fillBlocks(c.Rank(), counts)
				recv := make([]complex128, 12)
				req := c.Ialltoallv(send, sendCounts, recv, recvCounts)
				for i := range sendCounts {
					sendCounts[i] = -7
					recvCounts[i] = 999
				}
				c.Wait(req)
				checkBlocks(t, c.Rank(), counts, recv)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchedulesSendBufferFrozenUntilRelease clobbers the send buffer only
// AFTER Wait returns, then re-checks: within the schedule contract the send
// buffer is borrowed until completion, unlike eager pairwise which copies
// everything at post time. This documents the weaker (standard MPI)
// guarantee for deferred-send schedules.
func TestSchedulesSendBufferFrozenUntilRelease(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			p := 4
			w := NewWorld(p)
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				counts := []int{2, 2, 2, 2}
				send := fillBlocks(c.Rank(), counts)
				recv := make([]complex128, 8)
				req := c.Ialltoallv(send, counts, recv, counts)
				c.Wait(req)
				for i := range send {
					send[i] = complex(-1, -1)
				}
				checkBlocks(t, c.Rank(), counts, recv)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHierUsesMachineTopology checks the hierarchical schedule picks up the
// machine model's CoresPerNode when Exchange.NodeSize is zero.
func TestHierUsesMachineTopology(t *testing.T) {
	p := 6
	w := NewWorld(p) // Laptop topology: 8 cores/node → single node → pairwise path
	err := w.Run(func(c *Comm) {
		c.SetExchange(mpi.Exchange{Alg: mpi.CommHier})
		counts := []int{1, 1, 1, 1, 1, 1}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 6)
		c.Alltoallv(send, counts, recv, counts)
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}
