package mem

import (
	"fmt"
	"testing"

	"offt/internal/mpi"
)

// benchShapes are the count distributions the Ialltoallv benchmarks sweep:
// uniform (slab exchange), skewed (ragged pencil tiles), and zero-heavy
// (sub-grid exchange posted with world-sized counts).
func benchShapes(p, n int) map[string]func(rank int) []int {
	return map[string]func(rank int) []int{
		"uniform": func(rank int) []int {
			c := make([]int, p)
			for i := range c {
				c[i] = n
			}
			return c
		},
		"skewed": func(rank int) []int {
			c := make([]int, p)
			for i := range c {
				c[i] = 1 + (n*2*((rank+i)%p))/p
			}
			return c
		},
		"zeroheavy": func(rank int) []int {
			c := make([]int, p)
			for i := range c {
				if i%4 == rank%4 {
					c[i] = n * 4
				}
			}
			return c
		},
	}
}

// BenchmarkIalltoallv measures one full post+wait collective per iteration
// on the mem engine, per schedule × count shape, isolating exchange
// schedule cost from the FFT.
func BenchmarkIalltoallv(b *testing.B) {
	const p, n = 8, 256
	for _, ex := range []mpi.Exchange{
		{Alg: mpi.CommPairwise},
		{Alg: mpi.CommBruck},
		{Alg: mpi.CommHier, NodeSize: 2},
		{Alg: mpi.CommWindowed, Window: 2},
	} {
		for shape, countsOf := range benchShapes(p, n) {
			ex := ex
			countsOf := countsOf
			b.Run(fmt.Sprintf("%s/%s", ex.Alg, shape), func(b *testing.B) {
				w := NewWorld(p)
				b.ReportAllocs()
				err := w.Run(func(c *Comm) {
					c.SetExchange(ex)
					me := c.Rank()
					sendCounts := countsOf(me)
					recvCounts := make([]int, p)
					for s := 0; s < p; s++ {
						recvCounts[s] = countsOf(s)[me]
					}
					send := make([]complex128, total(sendCounts))
					recv := make([]complex128, total(recvCounts))
					if me == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						c.Alltoallv(send, sendCounts, recv, recvCounts)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
