// Package mem implements the mpi.Comm interface for real in-process runs:
// ranks are goroutines, payloads are real complex128 slices routed through
// a shared in-memory mailbox. Optionally, message delivery is delayed
// according to a machine model's latency/bandwidth so that computation-
// communication overlap produces genuine wall-clock savings even on one
// core (the delay is idle time, not CPU time).
//
// This engine is the numerical-correctness and demo substrate; the sim
// engine (package mpi/sim) is the performance-reproduction substrate.
package mem

import (
	"fmt"
	"sync"
	"time"

	"offt/internal/machine"
	"offt/internal/mpi"
)

// Option configures a World.
type Option func(*World)

// WithDelay enables emulated link delays from the given machine model.
func WithDelay(m machine.Machine) Option {
	return func(w *World) {
		w.mach = m
		w.delayed = true
	}
}

// World is an in-process job of p ranks.
type World struct {
	p       int
	mach    machine.Machine
	delayed bool
	epoch   time.Time

	mu    sync.Mutex
	conds []*sync.Cond
	boxes []map[mkey][]message

	barGen   int
	barCount int
	barCond  *sync.Cond
}

type mkey struct{ src, tag int }

type message struct {
	data []complex128
}

// NewWorld creates an in-process world of p ranks.
func NewWorld(p int, opts ...Option) *World {
	if p < 1 {
		panic("mem: need at least one rank")
	}
	w := &World{p: p, mach: machine.Laptop(), epoch: time.Now()}
	w.conds = make([]*sync.Cond, p)
	w.boxes = make([]map[mkey][]message, p)
	for i := range w.conds {
		w.conds[i] = sync.NewCond(&w.mu)
		w.boxes[i] = make(map[mkey][]message)
	}
	w.barCond = sync.NewCond(&w.mu)
	for _, o := range opts {
		o(w)
	}
	return w
}

// Run executes body once per rank in its own goroutine and returns when
// every rank finishes. A panic in any rank is returned as an error (the
// remaining ranks may be left blocked; the world must be discarded).
func (w *World) Run(body func(c *Comm)) error {
	errs := make(chan error, w.p)
	for r := 0; r < w.p; r++ {
		r := r
		go func() {
			defer func() {
				if rec := recover(); rec != nil {
					errs <- fmt.Errorf("mem: rank %d panicked: %v", r, rec)
					w.mu.Lock()
					for _, c := range w.conds {
						c.Broadcast()
					}
					w.barCond.Broadcast()
					w.mu.Unlock()
					return
				}
				errs <- nil
			}()
			body(&Comm{world: w, rank: r})
		}()
	}
	for i := 0; i < w.p; i++ {
		if err := <-errs; err != nil {
			// Other ranks may be blocked forever on the failed rank; return
			// immediately and let their goroutines leak (the world is dead).
			return err
		}
	}
	return nil
}

// deposit delivers a message to dst's mailbox (called from the sender
// goroutine or a delay timer).
func (w *World) deposit(dst int, k mkey, m message) {
	w.mu.Lock()
	w.boxes[dst][k] = append(w.boxes[dst][k], m)
	w.conds[dst].Broadcast()
	w.mu.Unlock()
}

// send routes one block from src to dst, copying the payload at call time
// (eager-buffered semantics) and applying the emulated link delay if
// enabled.
func (w *World) send(src, dst, tag int, block []complex128) {
	data := make([]complex128, len(block))
	copy(data, block)
	k := mkey{src, tag}
	if !w.delayed {
		w.deposit(dst, k, message{data: data})
		return
	}
	bytes := len(block) * mpi.Elem16
	d := time.Duration(w.mach.Latency(src, dst) + int64(float64(bytes)*w.mach.EffNsPerByte(src, dst, w.mach.Nodes(w.p))))
	time.AfterFunc(d, func() { w.deposit(dst, k, message{data: data}) })
}

// tryClaim removes and returns the first message matching k from dst's
// mailbox, if present.
func (w *World) tryClaim(dst int, k mkey) ([]complex128, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	q := w.boxes[dst][k]
	if len(q) == 0 {
		return nil, false
	}
	m := q[0]
	if len(q) == 1 {
		delete(w.boxes[dst], k)
	} else {
		w.boxes[dst][k] = q[1:]
	}
	return m.data, true
}

// Comm is one in-process rank's communicator.
type Comm struct {
	world *World
	rank  int
	seq   int
}

var _ mpi.Comm = (*Comm)(nil)

// Rank returns this rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.p }

// Now returns wall time since the world was created, in nanoseconds.
func (c *Comm) Now() int64 { return time.Since(c.world.epoch).Nanoseconds() }

// request tracks a pending all-to-all: which source blocks are still
// outstanding and where to copy them.
type request struct {
	tag        int
	recv       []complex128
	recvCounts []int
	offsets    []int
	pending    map[int]bool // source ranks not yet copied in
}

func (c *Comm) nextTag() int {
	t := c.seq
	c.seq++
	return t
}

// Ialltoallv starts a non-blocking all-to-all with real payloads. The send
// buffer is copied out immediately; inbound blocks are copied into recv
// during Test/Wait (the caller's CPU does the "progression" work, like the
// paper's manual progression).
func (c *Comm) Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) mpi.Request {
	w, p, rank := c.world, c.Size(), c.rank
	if len(sendCounts) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("mem: counts length %d/%d, want %d", len(sendCounts), len(recvCounts), p))
	}
	tag := c.nextTag()
	// Copy the counts: callers may reuse the backing arrays for the next
	// collective while this request is still in flight.
	rc := append([]int(nil), recvCounts...)
	req := &request{tag: tag, recv: recv, recvCounts: rc, pending: make(map[int]bool, p)}
	req.offsets = make([]int, p)
	off := 0
	for s := 0; s < p; s++ {
		req.offsets[s] = off
		off += recvCounts[s]
	}
	if off > len(recv) {
		panic(fmt.Sprintf("mem: recv buffer %d too small for counts (%d)", len(recv), off))
	}
	// Send blocks (round-robin order), self block copied in place.
	soff := make([]int, p)
	o := 0
	for r := 0; r < p; r++ {
		soff[r] = o
		o += sendCounts[r]
	}
	if o > len(send) {
		panic(fmt.Sprintf("mem: send buffer %d too small for counts (%d)", len(send), o))
	}
	// Zero-count blocks are skipped on both sides, so sub-grid collectives
	// only touch their real peers.
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		if sendCounts[dst] > 0 {
			w.send(rank, dst, tag, send[soff[dst]:soff[dst]+sendCounts[dst]])
		}
	}
	copy(recv[req.offsets[rank]:req.offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	for s := 0; s < p; s++ {
		if s != rank && recvCounts[s] > 0 {
			req.pending[s] = true
		}
	}
	return req
}

// Alltoallv performs a blocking all-to-all.
func (c *Comm) Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) {
	r := c.Ialltoallv(send, sendCounts, recv, recvCounts)
	c.Wait(r)
}

// drain claims every available pending block of req, copying payloads into
// the receive buffer. Returns true when the request is complete.
func (c *Comm) drain(req *request) bool {
	w := c.world
	for s := range req.pending {
		if data, ok := w.tryClaim(c.rank, mkey{s, req.tag}); ok {
			if len(data) != req.recvCounts[s] {
				panic(fmt.Sprintf("mem: rank %d got %d elements from %d, want %d", c.rank, len(data), s, req.recvCounts[s]))
			}
			copy(req.recv[req.offsets[s]:req.offsets[s]+len(data)], data)
			delete(req.pending, s)
		}
	}
	return len(req.pending) == 0
}

// Test drains whatever has arrived and reports completion.
func (c *Comm) Test(reqs ...mpi.Request) bool {
	all := true
	for _, r := range reqs {
		if r == nil {
			continue
		}
		req := r.(*request)
		if !c.drain(req) {
			all = false
		}
	}
	return all
}

// Wait blocks until all requests complete, draining as messages arrive.
func (c *Comm) Wait(reqs ...mpi.Request) {
	w := c.world
	for {
		if c.Test(reqs...) {
			return
		}
		// Block until something new lands in our mailbox.
		w.mu.Lock()
		empty := true
		for _, r := range reqs {
			if r == nil {
				continue
			}
			req := r.(*request)
			for s := range req.pending {
				if len(w.boxes[c.rank][mkey{s, req.tag}]) > 0 {
					empty = false
				}
			}
		}
		if empty {
			w.conds[c.rank].Wait()
		}
		w.mu.Unlock()
	}
}

// Barrier blocks until all ranks arrive (reusable generation barrier).
func (c *Comm) Barrier() {
	w := c.world
	w.mu.Lock()
	gen := w.barGen
	w.barCount++
	if w.barCount == w.p {
		w.barCount = 0
		w.barGen++
		w.barCond.Broadcast()
	} else {
		for gen == w.barGen {
			w.barCond.Wait()
		}
	}
	w.mu.Unlock()
}
