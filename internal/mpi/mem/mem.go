// Package mem implements the mpi.Comm interface for real in-process runs:
// ranks are goroutines, payloads are real complex128 slices routed through
// a shared in-memory mailbox. Optionally, message delivery is delayed
// according to a machine model's latency/bandwidth so that computation-
// communication overlap produces genuine wall-clock savings even on one
// core (the delay is idle time, not CPU time).
//
// The transport is self-healing when a fault plan is attached (see
// WithFaults and package mpi/fault): every message carries a sequence id
// and a checksum, the receiver discards corrupted or duplicate deliveries,
// and the sender retransmits unacknowledged messages with capped
// exponential backoff, so Test/Wait still converge under drop, corruption
// and duplication faults. Wait gains a configurable soft deadline
// (WithDeadline + Comm.WaitDeadline) that reports which ranks/collectives
// are missing instead of hanging, and World.Run detects a fully deadlocked
// world and returns a diagnostic error naming the stuck collectives.
//
// This engine is the numerical-correctness and demo substrate; the sim
// engine (package mpi/sim) is the performance-reproduction substrate.
package mem

import (
	"fmt"
	"sync"
	"time"

	"offt/internal/machine"
	"offt/internal/mpi"
	"offt/internal/mpi/fault"
	"offt/internal/mpi/sched"
	"offt/internal/telemetry"
)

// Option configures a World.
type Option func(*World)

// WithDelay enables emulated link delays from the given machine model.
func WithDelay(m machine.Machine) Option {
	return func(w *World) {
		w.mach = m
		w.delayed = true
	}
}

// WithFaults attaches a deterministic fault plan to the transport. An
// inactive (or nil) plan keeps the zero-overhead direct path; an active
// plan routes every message through the self-healing envelope transport.
func WithFaults(plan *fault.Plan) Option {
	return func(w *World) { w.plan = plan }
}

// WithDeadline sets the soft deadline used by Comm.WaitDeadline: when a
// wait exceeds d, WaitDeadline returns a *DeadlineError describing the
// missing blocks instead of blocking further. Plain Wait is unaffected.
// The overlapped FFT pipeline treats the error as the signal to downgrade
// to its blocking path.
func WithDeadline(d time.Duration) Option {
	return func(w *World) { w.deadline = d }
}

// WithHangTimeout sets the hard limit d on every Wait and Barrier call
// (they fail the world with a diagnostic error instead of hanging) and on
// the Run deadlock watchdog. d <= 0 disables both. Without this option,
// Wait and Barrier have no per-call limit but the watchdog still runs with
// a conservative default.
func WithHangTimeout(d time.Duration) Option {
	return func(w *World) {
		w.hangTimeout = d
		w.hangSet = d > 0
	}
}

// WithRetransmitTimeout sets the base retransmission timeout of the
// self-healing transport (default 3ms; backoff doubles it per attempt up
// to 16×). Only meaningful together with WithFaults.
func WithRetransmitTimeout(d time.Duration) Option {
	return func(w *World) {
		if d > 0 {
			w.rto = d
		}
	}
}

// defaultWatchdog is the Run deadlock-detection window used when
// WithHangTimeout is not given: long enough that no healthy workload in
// this repo comes near it, short enough that a stuck test binary reports
// instead of timing out the whole suite.
const defaultWatchdog = 20 * time.Second

// World is an in-process job of p ranks.
type World struct {
	p       int
	mach    machine.Machine
	delayed bool
	epoch   time.Time

	plan        *fault.Plan
	rto         time.Duration
	deadline    time.Duration // soft deadline for WaitDeadline; 0 = disabled
	hangTimeout time.Duration // hard per-call / watchdog limit
	hangSet     bool          // per-call hard limit only when explicitly configured

	mu      sync.Mutex
	conds   []*sync.Cond
	boxes   []map[mkey][]message
	blocked []blockInfo // per-rank: what the rank is currently parked on
	// finished counts ranks whose body returned; inFlight counts scheduled
	// deliveries not yet deposited. Together with the outstanding map they
	// let the watchdog prove a world can make no further progress.
	finished int
	inFlight int
	failed   error
	closed   bool

	nextID      int64
	outstanding map[int64]*outMsg
	seen        []map[int64]struct{}

	stats counters

	barGen   int
	barCount int
	barCond  *sync.Cond
}

type mkey struct{ src, tag int }

type message struct {
	data []complex128
}

// NewWorld creates an in-process world of p ranks.
func NewWorld(p int, opts ...Option) *World {
	if p < 1 {
		panic("mem: need at least one rank")
	}
	w := &World{
		p:           p,
		mach:        machine.Laptop(),
		epoch:       time.Now(),
		rto:         3 * time.Millisecond,
		hangTimeout: defaultWatchdog,
		outstanding: make(map[int64]*outMsg),
	}
	w.conds = make([]*sync.Cond, p)
	w.boxes = make([]map[mkey][]message, p)
	w.seen = make([]map[int64]struct{}, p)
	w.blocked = make([]blockInfo, p)
	for i := range w.conds {
		w.conds[i] = sync.NewCond(&w.mu)
		w.boxes[i] = make(map[mkey][]message)
		w.seen[i] = make(map[int64]struct{})
	}
	w.barCond = sync.NewCond(&w.mu)
	for _, o := range opts {
		o(w)
	}
	return w
}

// Health returns a snapshot of the world's transport-recovery counters.
func (w *World) Health() mpi.Health { return w.stats.snapshot() }

// RegisterTelemetry bridges the world's transport-recovery counters into a
// telemetry registry under "mem.transport.*". The counters stay atomics
// owned by the transport; the registry reads them lazily at snapshot time,
// so there is no double counting and no hot-path cost. Safe on a nil
// registry.
func (w *World) RegisterTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.Func("mem.transport.sent", w.stats.sent.Load)
	r.Func("mem.transport.delivered", w.stats.delivered.Load)
	r.Func("mem.transport.retransmits", w.stats.retransmits.Load)
	r.Func("mem.transport.dedups", w.stats.dedups.Load)
	r.Func("mem.transport.acks", w.stats.acks.Load)
	r.Func("mem.transport.backoffs", w.stats.backoffs.Load)
	r.Func("mem.transport.drops_injected", w.stats.dropsInjected.Load)
	r.Func("mem.transport.corruptions_injected", w.stats.corruptionsInjected.Load)
	r.Func("mem.transport.duplicates_injected", w.stats.duplicatesInjected.Load)
	r.Func("mem.transport.corruptions_detected", w.stats.corruptionsDetected.Load)
}

// WorldFailure is the panic payload a failed world delivers to ranks
// blocked in Wait or Barrier: the hard hang timeout, the deadlock
// watchdog, and World.Fail all raise it. Run unwraps it into a plain
// error; long-lived callers that recover rank panics themselves (the
// public offt.Plan job loop) type-switch on it to tell "the world died"
// from "the rank's own code panicked".
type WorldFailure struct{ Err error }

// Error renders the wrapped diagnostic (WorldFailure is usable as an
// error value by recover handlers that re-record it).
func (f WorldFailure) Error() string { return f.Err.Error() }

// Fail marks the world as failed with cause and wakes every rank blocked
// in Wait or Barrier; they panic with a WorldFailure carrying cause. It
// is the administrative kill switch used by the serve layer's request
// watchdog (and the chaos harness) to resolve a hung transform promptly
// instead of waiting out the deadlock watchdog. Idempotent: only the
// first failure sticks.
func (w *World) Fail(cause error) {
	if cause == nil {
		cause = fmt.Errorf("mem: world failed")
	}
	w.mu.Lock()
	if w.failed == nil && !w.closed {
		w.failed = cause
		for _, c := range w.conds {
			c.Broadcast()
		}
		w.barCond.Broadcast()
	}
	w.mu.Unlock()
}

// Failed reports the world's failure cause (nil while healthy). Once
// non-nil every subsequent Wait/Barrier fails fast with it.
func (w *World) Failed() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Run executes body once per rank in its own goroutine and returns when
// every rank finishes. A panic in any rank is returned as an error (the
// remaining ranks may be left blocked; the world must be discarded). A
// world where every rank is provably stuck — all blocked in Wait/Barrier
// with nothing in flight — past the hang timeout is failed with a
// diagnostic error naming the stuck collectives instead of hanging.
func (w *World) Run(body func(c *Comm)) error {
	errs := make(chan error, w.p)
	for r := 0; r < w.p; r++ {
		r := r
		go func() {
			defer func() {
				w.mu.Lock()
				w.finished++
				w.mu.Unlock()
				if rec := recover(); rec != nil {
					if wf, ok := rec.(WorldFailure); ok {
						errs <- wf.Err
					} else {
						errs <- fmt.Errorf("mem: rank %d panicked: %v", r, rec)
					}
					w.mu.Lock()
					for _, c := range w.conds {
						c.Broadcast()
					}
					w.barCond.Broadcast()
					w.mu.Unlock()
					return
				}
				errs <- nil
			}()
			body(&Comm{world: w, rank: r})
		}()
	}
	stop := make(chan struct{})
	watchdogDone := make(chan struct{})
	if w.hangTimeout > 0 {
		go w.watchdog(stop, watchdogDone)
	} else {
		close(watchdogDone)
	}
	var first error
	for i := 0; i < w.p; i++ {
		if err := <-errs; err != nil {
			// Other ranks may be blocked forever on the failed rank; return
			// immediately and let their goroutines leak (the world is dead).
			first = err
			break
		}
	}
	close(stop)
	<-watchdogDone
	w.shutdownTransport()
	return first
}

// tryClaim removes and returns the first message matching k from dst's
// mailbox, if present.
func (w *World) tryClaim(dst int, k mkey) ([]complex128, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	q := w.boxes[dst][k]
	if len(q) == 0 {
		return nil, false
	}
	m := q[0]
	if len(q) == 1 {
		delete(w.boxes[dst], k)
	} else {
		w.boxes[dst][k] = q[1:]
	}
	return m.data, true
}

// Comm is one in-process rank's communicator.
type Comm struct {
	world *World
	rank  int
	seq   int
	ex    mpi.Exchange
	pkt   []complex128 // reusable packet-assembly scratch (Bruck/hier)
}

var (
	_ mpi.Comm           = (*Comm)(nil)
	_ mpi.DeadlineWaiter = (*Comm)(nil)
	_ mpi.HealthReporter = (*Comm)(nil)
	_ mpi.ExchangeSetter = (*Comm)(nil)
)

// SetExchange selects the all-to-all schedule for collectives posted from
// now on (mpi.ExchangeSetter). Every rank must apply the same Exchange
// before matching collectives.
func (c *Comm) SetExchange(ex mpi.Exchange) { c.ex = ex }

// Rank returns this rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.p }

// Now returns wall time since the world was created, in nanoseconds.
func (c *Comm) Now() int64 { return time.Since(c.world.epoch).Nanoseconds() }

// TransportHealth returns the world's recovery counters (implements
// mpi.HealthReporter; the overlapped pipeline consults it to detect
// persistent transport faults).
func (c *Comm) TransportHealth() mpi.Health { return c.world.Health() }

// ---- sched.Port implementation --------------------------------------------
//
// The schedule state machines (package mpi/sched) drive the engine through
// this surface; these methods exist for them, not for FFT code.

// NextTags reserves n consecutive collective sequence numbers for a
// multi-message schedule (one per Bruck round, one per hierarchical
// protocol phase) so deliveries of different rounds can never be confused
// even when the transport reorders them.
func (c *Comm) NextTags(n int) int {
	t := c.seq
	c.seq += n
	return t
}

// Send hands one block from this rank to dst to the transport
// (eager-buffered: the payload is copied at call time).
func (c *Comm) Send(dst, tag int, data []complex128) {
	c.world.send(c.rank, dst, tag, data)
}

// TryClaim removes and returns the first mailbox message from (src, tag).
func (c *Comm) TryClaim(src, tag int) ([]complex128, bool) {
	return c.world.tryClaim(c.rank, mkey{src, tag})
}

// Queued reports whether a message from (src, tag) is in the mailbox.
// Called with w.mu held (waitInner's park predicate).
func (c *Comm) Queued(src, tag int) bool {
	return len(c.world.boxes[c.rank][mkey{src, tag}]) > 0
}

// Scratch returns the rank's reusable packet-assembly buffer, grown to n.
func (c *Comm) Scratch(n int) []complex128 {
	if cap(c.pkt) < n {
		c.pkt = make([]complex128, n)
	}
	return c.pkt[:n]
}

// NodeSize is the machine model's ranks-per-node grouping, the default for
// the hierarchical schedule when the Exchange does not pin one.
func (c *Comm) NodeSize() int { return c.world.mach.CoresPerNode }

var _ sched.Port = (*Comm)(nil)

// Ialltoallv starts a non-blocking all-to-all with real payloads using the
// configured exchange schedule (SetExchange; pairwise by default). The send
// buffer is copied out as messages are handed to the transport; inbound
// blocks are copied into recv during Test/Wait (the caller's CPU does the
// "progression" work, like the paper's manual progression). All schedules
// deliver bit-identical receive buffers (see package mpi/sched).
func (c *Comm) Ialltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) mpi.Request {
	return sched.Post(c, c.ex, send, sendCounts, recv, recvCounts)
}

// Alltoallv performs a blocking all-to-all.
func (c *Comm) Alltoallv(send []complex128, sendCounts []int, recv []complex128, recvCounts []int) {
	r := c.Ialltoallv(send, sendCounts, recv, recvCounts)
	c.Wait(r)
}

// Test drains whatever has arrived and reports completion.
func (c *Comm) Test(reqs ...mpi.Request) bool {
	all := true
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if !r.(sched.Request).Drain() {
			all = false
		}
	}
	return all
}

// Wait blocks until all requests complete, draining as messages arrive.
// With WithHangTimeout configured, a wait exceeding the limit fails the
// world with a diagnostic error instead of hanging.
func (c *Comm) Wait(reqs ...mpi.Request) {
	var limit time.Duration
	if c.world.hangSet {
		limit = c.world.hangTimeout
	}
	if err := c.waitInner(reqs, limit); err != nil {
		panic(WorldFailure{err})
	}
}

// WaitDeadline blocks like Wait but gives up once the world's soft
// deadline (WithDeadline) passes, returning a *DeadlineError that names
// the collectives and source ranks still missing. The requests stay valid:
// a subsequent Wait continues from where WaitDeadline left off. Without a
// configured deadline it is exactly Wait.
func (c *Comm) WaitDeadline(reqs ...mpi.Request) error {
	if c.world.deadline <= 0 {
		c.Wait(reqs...)
		return nil
	}
	return c.waitInner(reqs, c.world.deadline)
}

// waitInner drains until every request completes (limit == 0) or the limit
// passes (returning a *DeadlineError).
func (c *Comm) waitInner(reqs []mpi.Request, limit time.Duration) error {
	w := c.world
	var deadline time.Time
	var timer *time.Timer
	if limit > 0 {
		deadline = time.Now().Add(limit)
		// The cond has no timed wait: a one-shot timer wakes this rank so
		// the loop can observe the deadline.
		timer = time.AfterFunc(limit, func() {
			w.mu.Lock()
			w.conds[c.rank].Broadcast()
			w.mu.Unlock()
		})
		defer timer.Stop()
	}
	for {
		if c.Test(reqs...) {
			return nil
		}
		// Block until something new lands in our mailbox.
		w.mu.Lock()
		if w.failed != nil {
			err := w.failed
			w.mu.Unlock()
			panic(WorldFailure{err})
		}
		if limit > 0 && !time.Now().Before(deadline) {
			err := c.deadlineErrLocked(reqs, limit)
			w.mu.Unlock()
			return err
		}
		avail := false
		for _, r := range reqs {
			if r == nil {
				continue
			}
			if r.(sched.Request).Queued() {
				avail = true
			}
		}
		if !avail {
			w.blocked[c.rank] = waitBlockInfoLocked(reqs)
			w.conds[c.rank].Wait()
			w.blocked[c.rank] = blockInfo{}
		}
		w.mu.Unlock()
	}
}

// Barrier blocks until all ranks arrive (reusable generation barrier).
// With WithHangTimeout configured, a barrier exceeding the limit fails the
// world with a diagnostic error naming how many ranks arrived.
func (c *Comm) Barrier() {
	w := c.world
	var deadline time.Time
	var timer *time.Timer
	if w.hangSet && w.hangTimeout > 0 {
		deadline = time.Now().Add(w.hangTimeout)
		timer = time.AfterFunc(w.hangTimeout, func() {
			w.mu.Lock()
			w.barCond.Broadcast()
			w.mu.Unlock()
		})
		defer timer.Stop()
	}
	w.mu.Lock()
	gen := w.barGen
	w.barCount++
	if w.barCount == w.p {
		w.barCount = 0
		w.barGen++
		w.barCond.Broadcast()
		w.mu.Unlock()
		return
	}
	for gen == w.barGen {
		if w.failed != nil {
			err := w.failed
			w.mu.Unlock()
			panic(WorldFailure{err})
		}
		if timer != nil && !time.Now().Before(deadline) {
			arrived := w.barCount
			w.mu.Unlock()
			panic(WorldFailure{fmt.Errorf("mem: rank %d: Barrier (generation %d) timed out after %v with %d/%d ranks arrived",
				c.rank, gen, w.hangTimeout, arrived, w.p)})
		}
		w.blocked[c.rank] = blockInfo{kind: blockedBarrier, gen: gen}
		w.barCond.Wait()
		w.blocked[c.rank] = blockInfo{}
	}
	w.mu.Unlock()
}
