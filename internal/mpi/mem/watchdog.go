package mem

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"offt/internal/mpi"
	"offt/internal/mpi/sched"
)

// blockInfo describes what a parked rank is blocked on, for the deadlock
// watchdog and deadline diagnostics. The zero value means "not blocked".
type blockInfo struct {
	kind    blockKind
	seqs    []int // wait: collective sequence numbers still incomplete
	missing []int // wait: union of source ranks not yet delivered
	gen     int   // barrier: generation being waited on
}

type blockKind int

const (
	notBlocked blockKind = iota
	blockedWait
	blockedBarrier
)

// waitBlockInfoLocked summarizes a set of incomplete requests for the
// watchdog (w.mu held: the pending maps are only mutated by the owning
// rank, which is about to park).
func waitBlockInfoLocked(reqs []mpi.Request) blockInfo {
	info := blockInfo{kind: blockedWait}
	from := map[int]bool{}
	for _, r := range reqs {
		if r == nil {
			continue
		}
		seqs, missing := r.(sched.Request).Missing()
		if len(seqs) == 0 {
			continue
		}
		info.seqs = append(info.seqs, seqs...)
		for _, s := range missing {
			from[s] = true
		}
	}
	for s := range from {
		info.missing = append(info.missing, s)
	}
	sort.Ints(info.seqs)
	sort.Ints(info.missing)
	return info
}

// DeadlineError reports a Wait that exceeded its soft deadline: which
// collectives (by sequence number) are incomplete and which source ranks'
// blocks are missing.
type DeadlineError struct {
	Rank    int
	Timeout time.Duration
	Missing []MissingBlocks
}

// MissingBlocks names one incomplete collective of a timed-out wait.
type MissingBlocks struct {
	Seq  int   // collective sequence number
	From []int // source ranks whose blocks have not arrived
}

func (e *DeadlineError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mem: rank %d: wait deadline %v exceeded:", e.Rank, e.Timeout)
	for _, m := range e.Missing {
		fmt.Fprintf(&sb, " collective seq %d missing blocks from ranks %v;", m.Seq, m.From)
	}
	return strings.TrimSuffix(sb.String(), ";")
}

// deadlineErrLocked builds the diagnostic for a timed-out wait (w.mu held).
func (c *Comm) deadlineErrLocked(reqs []mpi.Request, limit time.Duration) *DeadlineError {
	e := &DeadlineError{Rank: c.rank, Timeout: limit}
	for _, r := range reqs {
		if r == nil {
			continue
		}
		seqs, from := r.(sched.Request).Missing()
		if len(seqs) == 0 {
			continue
		}
		m := MissingBlocks{Seq: seqs[0], From: append([]int(nil), from...)}
		sort.Ints(m.From)
		e.Missing = append(e.Missing, m)
	}
	sort.Slice(e.Missing, func(i, j int) bool { return e.Missing[i].Seq < e.Missing[j].Seq })
	return e
}

// watchdog fails the world when it is provably stuck: every unfinished
// rank parked in Wait or Barrier, nothing scheduled for delivery and no
// unacknowledged envelope (whose retransmit timer would still make
// progress), sustained for the whole hang timeout. It polls rather than
// hooking every state change so the healthy-path overhead is zero.
func (w *World) watchdog(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	interval := w.hangTimeout / 8
	if interval > 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var stuckSince time.Time
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		w.mu.Lock()
		blocked := 0
		for _, b := range w.blocked {
			if b.kind != notBlocked {
				blocked++
			}
		}
		stuck := blocked > 0 && blocked+w.finished == w.p &&
			w.inFlight == 0 && len(w.outstanding) == 0 && w.failed == nil && !w.closed
		switch {
		case !stuck:
			stuckSince = time.Time{}
			w.mu.Unlock()
		case stuckSince.IsZero():
			stuckSince = time.Now()
			w.mu.Unlock()
		case time.Since(stuckSince) < w.hangTimeout:
			w.mu.Unlock()
		default:
			w.failed = w.deadlockErrLocked()
			for _, c := range w.conds {
				c.Broadcast()
			}
			w.barCond.Broadcast()
			w.mu.Unlock()
			return
		}
	}
}

// deadlockErrLocked renders the world's blocked state (w.mu held).
func (w *World) deadlockErrLocked() error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mem: deadlock: all ranks blocked past %v with nothing in flight:", w.hangTimeout)
	for r, b := range w.blocked {
		switch b.kind {
		case blockedWait:
			fmt.Fprintf(&sb, " rank %d in Wait on collective seq %v missing blocks from ranks %v;", r, b.seqs, b.missing)
		case blockedBarrier:
			fmt.Fprintf(&sb, " rank %d in Barrier generation %d (%d/%d arrived);", r, b.gen, w.barCount, w.p)
		}
	}
	return fmt.Errorf("%s", strings.TrimSuffix(sb.String(), ";"))
}
