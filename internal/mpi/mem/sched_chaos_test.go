package mem

import (
	"errors"
	"testing"
	"time"

	"offt/internal/mpi/fault"
)

// Chaos coverage for the tunable exchange schedules: the self-healing
// transport invariants (retransmit recovery, dedup, no hang, sticky
// failure on kill, soft-deadline downgrade) must hold regardless of which
// all-to-all algorithm is routing blocks.

// TestSchedulesSurviveChaos runs every schedule for several rounds under an
// aggressive drop/corrupt/dup/jitter mix and checks all data still routes.
func TestSchedulesSurviveChaos(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			plan := &fault.Plan{Seed: 11, DropRate: 0.2, CorruptRate: 0.1, DupRate: 0.2, JitterNs: 100_000}
			p := 4
			w := NewWorld(p, WithFaults(plan), WithRetransmitTimeout(time.Millisecond))
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				counts := []int{3, 1, 0, 5}
				recvCounts := make([]int, p)
				for s := range recvCounts {
					recvCounts[s] = counts[c.Rank()]
				}
				for round := 0; round < 6; round++ {
					send := fillBlocks(c.Rank(), counts)
					recv := make([]complex128, total(recvCounts))
					c.Alltoallv(send, counts, recv, recvCounts)
					checkBlocks(t, c.Rank(), recvCounts, recv)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if h := w.Health(); h.Retransmits == 0 {
				t.Error("chaos plan injected no recoveries — test not exercising the transport")
			}
		})
	}
}

// TestSchedulesRetransmitPath drops the first delivery attempt of every
// message: combined Bruck/hier packets must ride the retransmit path like
// any other payload.
func TestSchedulesRetransmitPath(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			plan := &fault.Plan{Seed: 12, ForceDropAttempts: 1}
			p := 4
			w := NewWorld(p, WithFaults(plan), WithRetransmitTimeout(time.Millisecond))
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				counts := []int{2, 2, 2, 2}
				send := fillBlocks(c.Rank(), counts)
				recv := make([]complex128, 8)
				c.Alltoallv(send, counts, recv, counts)
				checkBlocks(t, c.Rank(), counts, recv)
			})
			if err != nil {
				t.Fatal(err)
			}
			if h := w.Health(); h.Retransmits < 1 {
				t.Errorf("Retransmits = %d, want ≥ 1", h.Retransmits)
			}
		})
	}
}

// TestSchedulesStickyFailOnKill kills the world mid-collective: every
// schedule's Wait must surface the failure instead of hanging, and the
// failure must stay sticky.
func TestSchedulesStickyFailOnKill(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			p := 4
			// Stall every rank's NIC so the collective cannot complete before
			// the kill lands.
			var stalls []fault.RankStall
			for r := 0; r < p; r++ {
				stalls = append(stalls, fault.RankStall{Rank: r, At: 0, Dur: int64(time.Second)})
			}
			w := NewWorld(p, WithFaults(&fault.Plan{Seed: 13, Stalls: stalls}))
			kill := errors.New("chaos kill")
			go func() {
				time.Sleep(10 * time.Millisecond)
				w.Fail(kill)
			}()
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				counts := []int{2, 2, 2, 2}
				send := fillBlocks(c.Rank(), counts)
				recv := make([]complex128, 8)
				c.Alltoallv(send, counts, recv, counts)
			})
			if !errors.Is(err, kill) {
				t.Fatalf("Run = %v, want the injected kill", err)
			}
			if got := w.Failed(); !errors.Is(got, kill) {
				t.Errorf("Failed() = %v, want sticky kill", got)
			}
		})
	}
}

// TestSchedulesWaitDeadlineDowngrade stalls rank 0 past the soft deadline:
// WaitDeadline must return a diagnostic (the overlap pipeline's downgrade
// signal) for every schedule, and a later Wait must still complete.
func TestSchedulesWaitDeadlineDowngrade(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			p := 2
			plan := &fault.Plan{Seed: 14, Stalls: []fault.RankStall{{Rank: 0, At: 0, Dur: int64(120 * time.Millisecond)}}}
			w := NewWorld(p, WithFaults(plan), WithDeadline(15*time.Millisecond))
			sawDeadline := false
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				counts := []int{2, 2}
				send := fillBlocks(c.Rank(), counts)
				recv := make([]complex128, 4)
				req := c.Ialltoallv(send, counts, recv, counts)
				werr := c.WaitDeadline(req)
				if c.Rank() == 1 {
					var de *DeadlineError
					if !errors.As(werr, &de) {
						t.Errorf("rank 1: WaitDeadline = %v, want *DeadlineError", werr)
					} else {
						sawDeadline = true
						if len(de.Missing) == 0 || len(de.Missing[0].From) == 0 {
							t.Errorf("diagnostic names no missing blocks: %+v", de.Missing)
						}
					}
				}
				c.Wait(req)
				checkBlocks(t, c.Rank(), counts, recv)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !sawDeadline {
				t.Error("rank 1 never observed the wait deadline")
			}
		})
	}
}

// TestSchedulesZeroCounts: degenerate all-zero collectives must complete
// immediately under every schedule.
func TestSchedulesZeroCounts(t *testing.T) {
	for _, ex := range schedules() {
		ex := ex
		t.Run(exName(ex), func(t *testing.T) {
			p := 4
			w := NewWorld(p)
			err := w.Run(func(c *Comm) {
				c.SetExchange(ex)
				zero := []int{0, 0, 0, 0}
				req := c.Ialltoallv(nil, zero, nil, zero)
				c.Wait(req)
				if !c.Test(req) {
					t.Errorf("rank %d: zero collective incomplete after Wait", c.Rank())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
