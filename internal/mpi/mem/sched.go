package mem

import (
	"fmt"

	"offt/internal/mpi"
)

// This file implements the tunable all-to-all schedules of the mem engine:
// windowed pairwise, Bruck, and the hierarchical node-aware exchange. All
// three produce receive buffers bit-identical to the pairwise schedule —
// blocks are routed differently but land byte-for-byte at the same offsets.
//
// Multi-message schedules reserve one collective sequence number per
// distinct message class (Bruck: one per round; hierarchical: one per
// protocol phase), so the transport's (src, tag) matching stays unambiguous
// even when the fault plan delays or duplicates deliveries across rounds.
// Combined packets ride inside ordinary []complex128 payloads with header
// elements encoding (origin, dest, length) as exact small integers in the
// float64 components, which keeps the checksum/retransmit transport and the
// delay model oblivious to schedules.

// ---- windowed pairwise ----------------------------------------------------

// winSend is one deferred peer send of a windowed collective. The data
// slice aliases the caller's send buffer, which the Ialltoallv contract
// keeps frozen until the request completes; the transport copies the
// payload when the send is released.
type winSend struct {
	dst  int
	data []complex128
}

// winRequest is pairwise with a bounded number of released-but-unreceived
// peer sends: distance i's send is released once (window + completed
// receives) covers it. Liveness holds by induction on the world's minimum
// completed-receive count: every rank has always released at least
// window + that minimum distances, so some gated receive is always
// satisfiable.
type winRequest struct {
	request
	deferred []winSend // all nonzero sends, in distance order
	released int
	recvInit int
	window   int
}

func (c *Comm) postWindowed(send []complex128, sendCounts, soff []int, recv []complex128, recvCounts, offsets []int, window int) *winRequest {
	p, rank := c.world.p, c.rank
	tag := c.nextTag()
	req := &winRequest{request: *c.newRequest(tag, recv, recvCounts, offsets), window: window}
	req.recvInit = len(req.pending)
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		if sendCounts[dst] > 0 {
			req.deferred = append(req.deferred, winSend{dst: dst, data: send[soff[dst] : soff[dst]+sendCounts[dst]]})
		}
	}
	copy(recv[offsets[rank]:offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	req.release()
	return req
}

// release hands every eligible deferred send to the transport. Once all
// receives are in, the remaining sends are flushed unconditionally so the
// request can complete even under asymmetric count shapes.
func (r *winRequest) release() {
	completed := r.recvInit - len(r.pending)
	allow := r.window + completed
	if len(r.pending) == 0 {
		allow = len(r.deferred)
	}
	w, rank := r.c.world, r.c.rank
	for r.released < len(r.deferred) && r.released < allow {
		s := r.deferred[r.released]
		w.send(rank, s.dst, r.tag, s.data)
		r.released++
	}
}

func (r *winRequest) drain() bool {
	done := r.request.drain()
	r.release()
	return done && r.released == len(r.deferred)
}

// ---- Bruck ----------------------------------------------------------------

// bruckRounds returns ⌈log2 p⌉, the round count of the Bruck schedule.
func bruckRounds(p int) int {
	r := 0
	for (1 << r) < p {
		r++
	}
	return r
}

// bruckBlock is one block in flight through the Bruck store-and-forward
// pipeline. data aliases either the caller's frozen send buffer (round 0)
// or a claimed mailbox payload this rank owns.
type bruckBlock struct {
	origin, dest int
	data         []complex128
}

// bruckRequest advances one rank through the ⌈log2 p⌉ Bruck rounds. A
// block destined for d and currently held by r has remaining distance
// (d−r) mod p; round k forwards every held block whose distance has bit k
// set to rank r+2^k, shrinking its distance by 2^k. Distances are < p, so
// all bits clear within ⌈log2 p⌉ rounds and every block lands at its
// destination. Each rank sends exactly one (possibly empty) combined
// packet per round under tag base+k, and entering round k+1 requires
// round k's inbound packet — the per-rank state machine drain() runs.
type bruckRequest struct {
	c          *Comm
	baseTag    int
	rounds     int
	round      int // rounds fully processed; == rounds ⇒ complete
	recv       []complex128
	recvCounts []int
	offsets    []int
	remaining  int // foreign blocks not yet placed into recv
	hold       []bruckBlock
}

func (c *Comm) postBruck(send []complex128, sendCounts, soff []int, recv []complex128, recvCounts, offsets []int) *bruckRequest {
	p, rank := c.world.p, c.rank
	rounds := bruckRounds(p)
	req := &bruckRequest{
		c: c, baseTag: c.nextTags(rounds), rounds: rounds,
		recv: recv, recvCounts: append([]int(nil), recvCounts...), offsets: offsets,
	}
	for i := 1; i < p; i++ {
		d := (rank + i) % p
		if sendCounts[d] > 0 {
			req.hold = append(req.hold, bruckBlock{origin: rank, dest: d, data: send[soff[d] : soff[d]+sendCounts[d]]})
		}
		if req.recvCounts[d] > 0 {
			req.remaining++
		}
	}
	copy(recv[offsets[rank]:offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	req.sendRound(0)
	return req
}

// sendRound assembles and transmits round k's combined packet: held blocks
// whose remaining distance has bit k set, encoded as
// [n, (origin+i·dest, len)·n, payload·n]. The packet always goes out, even
// empty, so the receiver's round state machine never stalls.
func (r *bruckRequest) sendRound(k int) {
	c := r.c
	p, rank := c.world.p, c.rank
	size, n := 1, 0
	for _, b := range r.hold {
		if ((b.dest-rank+p)%p)&(1<<k) != 0 {
			size += 2 + len(b.data)
			n++
		}
	}
	if cap(c.pkt) < size {
		c.pkt = make([]complex128, size)
	}
	pkt := c.pkt[:size]
	pkt[0] = complex(float64(n), 0)
	pos := 1
	keep := r.hold[:0]
	for _, b := range r.hold {
		if ((b.dest-rank+p)%p)&(1<<k) == 0 {
			keep = append(keep, b)
			continue
		}
		pkt[pos] = complex(float64(b.origin), float64(b.dest))
		pkt[pos+1] = complex(float64(len(b.data)), 0)
		pos += 2
		copy(pkt[pos:pos+len(b.data)], b.data)
		pos += len(b.data)
	}
	r.hold = keep
	c.world.send(rank, (rank+(1<<k))%p, r.baseTag+k, pkt)
}

// processRound splits round k's inbound packet into blocks that arrived
// (distance 0: copy into recv) and blocks to keep forwarding.
func (r *bruckRequest) processRound(data []complex128) {
	c := r.c
	p, rank := c.world.p, c.rank
	n := int(real(data[0]))
	pos := 1
	for i := 0; i < n; i++ {
		origin := int(real(data[pos]))
		dest := int(imag(data[pos]))
		ln := int(real(data[pos+1]))
		pos += 2
		payload := data[pos : pos+ln]
		pos += ln
		if dest == rank {
			if ln != r.recvCounts[origin] {
				panic(fmt.Sprintf("mem: bruck: rank %d got %d elements from %d, want %d", rank, ln, origin, r.recvCounts[origin]))
			}
			copy(r.recv[r.offsets[origin]:r.offsets[origin]+ln], payload)
			r.remaining--
		} else {
			if (dest-rank+p)%p == 0 {
				panic(fmt.Sprintf("mem: bruck: rank %d holding misrouted block %d→%d", rank, origin, dest))
			}
			r.hold = append(r.hold, bruckBlock{origin: origin, dest: dest, data: payload})
		}
	}
}

func (r *bruckRequest) drain() bool {
	c := r.c
	p := c.world.p
	for r.round < r.rounds {
		src := (c.rank - (1 << r.round) + p*2) % p
		data, ok := c.world.tryClaim(c.rank, mkey{src, r.baseTag + r.round})
		if !ok {
			return false
		}
		r.processRound(data)
		r.round++
		if r.round < r.rounds {
			r.sendRound(r.round)
		}
	}
	if r.remaining != 0 || len(r.hold) != 0 {
		panic(fmt.Sprintf("mem: bruck: rank %d finished rounds with %d blocks missing, %d undelivered", c.rank, r.remaining, len(r.hold)))
	}
	return true
}

func (r *bruckRequest) availLocked() bool {
	if r.round >= r.rounds {
		return false
	}
	c := r.c
	p := c.world.p
	src := (c.rank - (1 << r.round) + p*2) % p
	return len(c.world.boxes[c.rank][mkey{src, r.baseTag + r.round}]) > 0
}

func (r *bruckRequest) missing() (seqs, from []int) {
	if r.round >= r.rounds {
		return nil, nil
	}
	p := r.c.world.p
	return []int{r.baseTag + r.round}, []int{(r.c.rank - (1 << r.round) + p*2) % p}
}

// ---- hierarchical node-aware ----------------------------------------------

// Hierarchical protocol phases, one collective sequence number each.
const (
	hierDirect   = iota // intra-node peer blocks, sent raw
	hierGather          // member → leader: combined inter-node packet [(dest+i·len) payload]·n, count-prefixed
	hierExchange        // leader ↔ leader: combined per-node packet [(origin+i·dest), (len), payload]·n, count-prefixed
	hierScatter         // leader → member: combined packet [(origin+i·len) payload]·n, count-prefixed
	hierTags
)

// hierBlock is one inter-node block staged on a leader.
type hierBlock struct {
	origin, dest int
	data         []complex128
}

// hierRequest runs the node-aware exchange: same-node blocks go directly
// (hierDirect); inter-node blocks ride member→leader→leader→member with
// combined packets, cutting fabric messages from p² to nodes². Leaders
// gate the exchange phase on all members' gather packets and the scatter
// phase on all peer leaders' exchange packets; every packet is sent even
// when empty so the phase machine never stalls.
type hierRequest struct {
	c          *Comm
	baseTag    int
	recv       []complex128
	recvCounts []int
	offsets    []int
	remaining  int // foreign blocks not yet placed into recv

	nodeSize int
	leader   int // first rank of this node

	directPending map[int]bool // same-node peers whose direct block is missing

	// Leader-only state.
	isLeader        bool
	stage           int          // 0 awaiting gathers, 1 awaiting exchanges, 2 all sends out
	gatherPending   map[int]bool // members whose gather packet is missing
	exchangePending map[int]bool // peer leaders whose packet is missing
	pool            []hierBlock  // staged blocks (outbound in stage 0, scatter in stage 1)

	// Member-only state.
	scatterDone bool
}

func (c *Comm) postHier(send []complex128, sendCounts, soff []int, recv []complex128, recvCounts, offsets []int) mpi.Request {
	w, p, rank := c.world, c.world.p, c.rank
	ns := c.nodeSize()
	nodes := (p + ns - 1) / ns
	if nodes == 1 {
		// One node: the hierarchy is pure direct exchange — identical to
		// pairwise (a consistent choice world-wide, since the topology is).
		return c.postPairwise(send, sendCounts, soff, recv, recvCounts, offsets)
	}
	node := rank / ns
	req := &hierRequest{
		c: c, baseTag: c.nextTags(hierTags),
		recv: recv, recvCounts: append([]int(nil), recvCounts...), offsets: offsets,
		nodeSize: ns, leader: node * ns, isLeader: rank == node*ns,
		directPending: map[int]bool{},
	}
	lo, hi := node*ns, (node+1)*ns
	if hi > p {
		hi = p
	}
	for s := 0; s < p; s++ {
		if s == rank || req.recvCounts[s] == 0 {
			continue
		}
		req.remaining++
		if s >= lo && s < hi {
			req.directPending[s] = true
		}
	}
	// Direct intra-node blocks and the self copy.
	for q := lo; q < hi; q++ {
		if q != rank && sendCounts[q] > 0 {
			w.send(rank, q, req.baseTag+hierDirect, send[soff[q]:soff[q]+sendCounts[q]])
		}
	}
	copy(recv[offsets[rank]:offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	if req.isLeader {
		req.gatherPending = map[int]bool{}
		for m := lo + 1; m < hi; m++ {
			req.gatherPending[m] = true
		}
		req.exchangePending = map[int]bool{}
		for n := 0; n < nodes; n++ {
			if n != node {
				req.exchangePending[n*ns] = true
			}
		}
		// The leader's own inter-node blocks join the pool directly.
		for d := 0; d < p; d++ {
			if (d < lo || d >= hi) && sendCounts[d] > 0 {
				req.pool = append(req.pool, hierBlock{origin: rank, dest: d, data: send[soff[d] : soff[d]+sendCounts[d]]})
			}
		}
		if len(req.gatherPending) == 0 {
			req.sendExchange()
		}
	} else {
		// Members push their combined inter-node packet to the leader
		// immediately: [n, (dest+i·len, payload)·n].
		size, n := 1, 0
		for d := 0; d < p; d++ {
			if (d < lo || d >= hi) && sendCounts[d] > 0 {
				size += 1 + sendCounts[d]
				n++
			}
		}
		if cap(c.pkt) < size {
			c.pkt = make([]complex128, size)
		}
		pkt := c.pkt[:size]
		pkt[0] = complex(float64(n), 0)
		pos := 1
		for d := 0; d < p; d++ {
			if (d < lo || d >= hi) && sendCounts[d] > 0 {
				pkt[pos] = complex(float64(d), float64(sendCounts[d]))
				pos++
				copy(pkt[pos:pos+sendCounts[d]], send[soff[d]:soff[d]+sendCounts[d]])
				pos += sendCounts[d]
			}
		}
		w.send(rank, req.leader, req.baseTag+hierGather, pkt)
	}
	return req
}

// nodeBounds returns the rank range [lo, hi) of this rank's node.
func (r *hierRequest) nodeBounds() (int, int) {
	p := r.c.world.p
	lo := r.leader
	hi := lo + r.nodeSize
	if hi > p {
		hi = p
	}
	return lo, hi
}

// place copies one arrived foreign block into the receive buffer.
func (r *hierRequest) place(origin int, data []complex128) {
	if len(data) != r.recvCounts[origin] {
		panic(fmt.Sprintf("mem: hier: rank %d got %d elements from %d, want %d", r.c.rank, len(data), origin, r.recvCounts[origin]))
	}
	copy(r.recv[r.offsets[origin]:r.offsets[origin]+len(data)], data)
	r.remaining--
}

// sendExchange flushes the pooled inter-node blocks as one combined packet
// per peer node (always sent, even empty) and enters stage 1.
func (r *hierRequest) sendExchange() {
	c := r.c
	w, p := c.world, c.world.p
	ns := r.nodeSize
	nodes := (p + ns - 1) / ns
	myNode := r.leader / ns
	for n := 0; n < nodes; n++ {
		if n == myNode {
			continue
		}
		size, cnt := 1, 0
		for _, b := range r.pool {
			if b.dest/ns == n {
				size += 2 + len(b.data)
				cnt++
			}
		}
		if cap(c.pkt) < size {
			c.pkt = make([]complex128, size)
		}
		pkt := c.pkt[:size]
		pkt[0] = complex(float64(cnt), 0)
		pos := 1
		for _, b := range r.pool {
			if b.dest/ns != n {
				continue
			}
			pkt[pos] = complex(float64(b.origin), float64(b.dest))
			pkt[pos+1] = complex(float64(len(b.data)), 0)
			pos += 2
			copy(pkt[pos:pos+len(b.data)], b.data)
			pos += len(b.data)
		}
		w.send(c.rank, n*ns, r.baseTag+hierExchange, pkt)
	}
	r.pool = r.pool[:0]
	r.stage = 1
}

// sendScatter forwards the blocks received for this node's members
// (always one packet per member, even empty) and enters stage 2.
func (r *hierRequest) sendScatter() {
	c := r.c
	w := c.world
	lo, hi := r.nodeBounds()
	for m := lo + 1; m < hi; m++ {
		size, cnt := 1, 0
		for _, b := range r.pool {
			if b.dest == m {
				size += 1 + len(b.data)
				cnt++
			}
		}
		if cap(c.pkt) < size {
			c.pkt = make([]complex128, size)
		}
		pkt := c.pkt[:size]
		pkt[0] = complex(float64(cnt), 0)
		pos := 1
		for _, b := range r.pool {
			if b.dest != m {
				continue
			}
			pkt[pos] = complex(float64(b.origin), float64(len(b.data)))
			pos++
			copy(pkt[pos:pos+len(b.data)], b.data)
			pos += len(b.data)
		}
		w.send(c.rank, m, r.baseTag+hierScatter, pkt)
	}
	r.pool = r.pool[:0]
	r.stage = 2
}

func (r *hierRequest) drain() bool {
	c := r.c
	w := c.world
	for q := range r.directPending {
		if data, ok := w.tryClaim(c.rank, mkey{q, r.baseTag + hierDirect}); ok {
			r.place(q, data)
			delete(r.directPending, q)
		}
	}
	if r.isLeader {
		if r.stage == 0 {
			for m := range r.gatherPending {
				data, ok := w.tryClaim(c.rank, mkey{m, r.baseTag + hierGather})
				if !ok {
					continue
				}
				n := int(real(data[0]))
				pos := 1
				for i := 0; i < n; i++ {
					dest := int(real(data[pos]))
					ln := int(imag(data[pos]))
					pos++
					r.pool = append(r.pool, hierBlock{origin: m, dest: dest, data: data[pos : pos+ln]})
					pos += ln
				}
				delete(r.gatherPending, m)
			}
			if len(r.gatherPending) == 0 {
				r.sendExchange()
			}
		}
		if r.stage == 1 {
			for l := range r.exchangePending {
				data, ok := w.tryClaim(c.rank, mkey{l, r.baseTag + hierExchange})
				if !ok {
					continue
				}
				n := int(real(data[0]))
				pos := 1
				for i := 0; i < n; i++ {
					origin := int(real(data[pos]))
					dest := int(imag(data[pos]))
					ln := int(real(data[pos+1]))
					pos += 2
					payload := data[pos : pos+ln]
					pos += ln
					if dest == c.rank {
						r.place(origin, payload)
					} else {
						r.pool = append(r.pool, hierBlock{origin: origin, dest: dest, data: payload})
					}
				}
				delete(r.exchangePending, l)
			}
			if len(r.exchangePending) == 0 {
				r.sendScatter()
			}
		}
		done := r.stage == 2 && len(r.directPending) == 0
		if done && r.remaining != 0 {
			panic(fmt.Sprintf("mem: hier: leader %d finished protocol with %d blocks missing", c.rank, r.remaining))
		}
		return done
	}
	if !r.scatterDone {
		if data, ok := w.tryClaim(c.rank, mkey{r.leader, r.baseTag + hierScatter}); ok {
			n := int(real(data[0]))
			pos := 1
			for i := 0; i < n; i++ {
				origin := int(real(data[pos]))
				ln := int(imag(data[pos]))
				pos++
				r.place(origin, data[pos:pos+ln])
				pos += ln
			}
			r.scatterDone = true
		}
	}
	done := r.scatterDone && len(r.directPending) == 0
	if done && r.remaining != 0 {
		panic(fmt.Sprintf("mem: hier: rank %d finished protocol with %d blocks missing", c.rank, r.remaining))
	}
	return done
}

func (r *hierRequest) availLocked() bool {
	c := r.c
	boxes := c.world.boxes[c.rank]
	for q := range r.directPending {
		if len(boxes[mkey{q, r.baseTag + hierDirect}]) > 0 {
			return true
		}
	}
	if r.isLeader {
		if r.stage == 0 {
			for m := range r.gatherPending {
				if len(boxes[mkey{m, r.baseTag + hierGather}]) > 0 {
					return true
				}
			}
		}
		if r.stage == 1 {
			for l := range r.exchangePending {
				if len(boxes[mkey{l, r.baseTag + hierExchange}]) > 0 {
					return true
				}
			}
		}
		return false
	}
	return !r.scatterDone && len(boxes[mkey{r.leader, r.baseTag + hierScatter}]) > 0
}

func (r *hierRequest) missing() (seqs, from []int) {
	if len(r.directPending) > 0 {
		seqs = append(seqs, r.baseTag+hierDirect)
		for q := range r.directPending {
			from = append(from, q)
		}
	}
	if r.isLeader {
		if r.stage == 0 && len(r.gatherPending) > 0 {
			seqs = append(seqs, r.baseTag+hierGather)
			for m := range r.gatherPending {
				from = append(from, m)
			}
		}
		if r.stage == 1 && len(r.exchangePending) > 0 {
			seqs = append(seqs, r.baseTag+hierExchange)
			for l := range r.exchangePending {
				from = append(from, l)
			}
		}
	} else if !r.scatterDone {
		seqs = append(seqs, r.baseTag+hierScatter)
		from = append(from, r.leader)
	}
	return seqs, from
}
