package mem

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"offt/internal/machine"
	"offt/internal/mpi"
)

// fillBlocks builds a send buffer where the block destined for rank r
// contains values encoding (sender, receiver, index), so misrouted data is
// detectable.
func fillBlocks(rank int, counts []int) []complex128 {
	total := 0
	for _, c := range counts {
		total += c
	}
	buf := make([]complex128, total)
	off := 0
	for r, c := range counts {
		for i := 0; i < c; i++ {
			buf[off+i] = complex(float64(rank*1000+r), float64(i))
		}
		off += c
	}
	return buf
}

func checkBlocks(t *testing.T, rank int, counts []int, recv []complex128) {
	t.Helper()
	off := 0
	for s, c := range counts {
		for i := 0; i < c; i++ {
			want := complex(float64(s*1000+rank), float64(i))
			if recv[off+i] != want {
				t.Fatalf("rank %d block from %d elem %d: got %v want %v", rank, s, i, recv[off+i], want)
			}
		}
		off += c
	}
}

func TestAlltoallvUniform(t *testing.T) {
	p := 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		counts := []int{5, 5, 5, 5}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 20)
		c.Alltoallv(send, counts, recv, counts)
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvRagged(t *testing.T) {
	// Non-uniform counts: rank r sends r+1 elements to everyone, so rank r
	// receives s+1 elements from rank s.
	p := 3
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		sendCounts := make([]int, p)
		recvCounts := make([]int, p)
		for r := 0; r < p; r++ {
			sendCounts[r] = c.Rank() + 1
			recvCounts[r] = r + 1
		}
		send := fillBlocks(c.Rank(), sendCounts)
		recv := make([]complex128, 1+2+3)
		c.Alltoallv(send, sendCounts, recv, recvCounts)
		checkBlocks(t, c.Rank(), recvCounts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIalltoallvTestWait(t *testing.T) {
	p := 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		counts := []int{3, 3, 3, 3}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 12)
		req := c.Ialltoallv(send, counts, recv, counts)
		for i := 0; i < 1000 && !c.Test(req); i++ {
		}
		c.Wait(req)
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleOutstandingRequests(t *testing.T) {
	p := 3
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		counts := []int{2, 2, 2}
		const k = 5
		recvs := make([][]complex128, k)
		var reqs []mpi.Request
		for i := 0; i < k; i++ {
			send := fillBlocks(c.Rank(), counts)
			for j := range send {
				send[j] += complex(0, float64(i)*100) // per-round marker
			}
			recvs[i] = make([]complex128, 6)
			reqs = append(reqs, c.Ialltoallv(send, counts, recvs[i], counts))
		}
		c.Wait(reqs...)
		for i := 0; i < k; i++ {
			off := 0
			for s := range counts {
				for e := 0; e < counts[s]; e++ {
					want := complex(float64(s*1000+c.Rank()), float64(e)) + complex(0, float64(i)*100)
					if recvs[i][off+e] != want {
						t.Errorf("round %d block %d elem %d: got %v want %v", i, s, e, recvs[i][off+e], want)
					}
				}
				off += counts[s]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferReusableAfterPost(t *testing.T) {
	// The engine copies eagerly, so clobbering the send buffer right after
	// posting must not corrupt the transfer.
	p := 2
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		counts := []int{4, 4}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 8)
		req := c.Ialltoallv(send, counts, recv, counts)
		for i := range send {
			send[i] = complex(-999, -999)
		}
		c.Wait(req)
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	p := 6
	w := NewWorld(p)
	var before, after int32
	err := w.Run(func(c *Comm) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if got := atomic.LoadInt32(&before); got != int32(p) {
			t.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), got)
		}
		atomic.AddInt32(&after, 1)
		c.Barrier()
		if got := atomic.LoadInt32(&after); got != int32(p) {
			t.Errorf("rank %d passed second barrier with only %d arrivals (barrier not reusable)", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelayedWorldStillCorrect(t *testing.T) {
	p := 4
	m := machine.Laptop()
	m.Net.LatencyInterNs = 200_000 // 0.2 ms: visible but test stays fast
	w := NewWorld(p, WithDelay(m))
	err := w.Run(func(c *Comm) {
		counts := []int{2, 2, 2, 2}
		send := fillBlocks(c.Rank(), counts)
		recv := make([]complex128, 8)
		c.Alltoallv(send, counts, recv, counts)
		checkBlocks(t, c.Rank(), counts, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
		// rank 0 returns immediately; no cross-rank dependency
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if want := "rank 1 exploded"; !contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || fmt.Sprintf("%s", s) != "" && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestNowAdvances(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) {
		a := c.Now()
		for i := 0; i < 1000; i++ {
			_ = i
		}
		b := c.Now()
		if b < a {
			t.Error("clock went backwards")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStressManyRoundsRace(t *testing.T) {
	// Exercised under -race in CI: many concurrent rounds across ranks.
	p := 5
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		counts := []int{7, 7, 7, 7, 7}
		for round := 0; round < 30; round++ {
			send := fillBlocks(c.Rank(), counts)
			recv := make([]complex128, 35)
			c.Alltoallv(send, counts, recv, counts)
			checkBlocks(t, c.Rank(), counts, recv)
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlltoallvRandomCounts fuzzes the engine with arbitrary
// per-pair counts (including zeros) and checks every delivered element
// against the direct permutation.
func TestQuickAlltoallvRandomCounts(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := 2 + int(pRaw)%4
		rng := rand.New(rand.NewSource(seed))
		// counts[a][b]: elements a sends to b.
		counts := make([][]int, p)
		for a := range counts {
			counts[a] = make([]int, p)
			for b := range counts[a] {
				counts[a][b] = rng.Intn(5)
			}
		}
		ok := true
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			me := c.Rank()
			sendCounts := counts[me]
			recvCounts := make([]int, p)
			for s := 0; s < p; s++ {
				recvCounts[s] = counts[s][me]
			}
			send := fillBlocks(me, sendCounts)
			recv := make([]complex128, total(recvCounts))
			c.Alltoallv(send, sendCounts, recv, recvCounts)
			off := 0
			for s := 0; s < p; s++ {
				for i := 0; i < recvCounts[s]; i++ {
					want := complex(float64(s*1000+me), float64(i))
					if recv[off+i] != want {
						ok = false
					}
				}
				off += recvCounts[s]
			}
		})
		return err == nil && ok
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func total(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}
