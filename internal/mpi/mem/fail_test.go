package mem

import (
	"errors"
	"testing"
	"time"
)

// TestFailUnblocksBlockedRanks: the administrative kill switch must wake a
// rank blocked in a collective immediately (not after the deadlock
// watchdog) and surface the given cause from Run.
func TestFailUnblocksBlockedRanks(t *testing.T) {
	cause := errors.New("administrative kill")
	w := NewWorld(2)
	start := time.Now()
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			// Never join the barrier: rank 0 would block forever without
			// the kill switch.
			time.Sleep(20 * time.Millisecond)
			w.Fail(cause)
			return
		}
		c.Barrier()
		t.Error("rank 0 returned from a barrier nobody else joined")
	})
	if !errors.Is(err, cause) {
		t.Fatalf("Run error = %v, want the administrative cause", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Fail took %v to unblock the world; want prompt resolution", elapsed)
	}
	if got := w.Failed(); !errors.Is(got, cause) {
		t.Errorf("Failed() = %v, want the administrative cause", got)
	}
}

// TestFailIdempotent: only the first cause sticks, and failing a closed
// world is a no-op.
func TestFailIdempotent(t *testing.T) {
	w := NewWorld(1)
	first := errors.New("first")
	w.Fail(first)
	w.Fail(errors.New("second"))
	if got := w.Failed(); !errors.Is(got, first) {
		t.Errorf("Failed() = %v, want the first cause", got)
	}
}
