package mem

import (
	"sync/atomic"
	"time"

	"offt/internal/mpi"
	"offt/internal/mpi/envelope"
	"offt/internal/mpi/fault"
)

// counters aggregates transport-recovery activity world-wide. All fields
// are updated atomically so senders, delivery timers and retransmit timers
// never contend on the world lock just to count.
type counters struct {
	sent, delivered                    atomic.Int64
	dropsInjected, corruptionsInjected atomic.Int64
	duplicatesInjected, retransmits    atomic.Int64
	dedups, corruptionsDetected        atomic.Int64
	acks, backoffs                     atomic.Int64
}

func (s *counters) snapshot() mpi.Health {
	return mpi.Health{
		Sent:                s.sent.Load(),
		Delivered:           s.delivered.Load(),
		DropsInjected:       s.dropsInjected.Load(),
		CorruptionsInjected: s.corruptionsInjected.Load(),
		DuplicatesInjected:  s.duplicatesInjected.Load(),
		Retransmits:         s.retransmits.Load(),
		Dedups:              s.dedups.Load(),
		CorruptionsDetected: s.corruptionsDetected.Load(),
		Acks:                s.acks.Load(),
		Backoffs:            s.backoffs.Load(),
	}
}

// outMsg tracks an unacknowledged envelope on the sender side. The
// envelope format itself — and its binary wire framing, used by the net
// engine — lives in the shared package mpi/envelope; the mem engine
// delivers the same struct through memory.
type outMsg struct {
	env   *envelope.Envelope
	timer *time.Timer
}

// maxBackoff caps the exponential retransmission backoff at rto << maxBackoff.
const maxBackoff = 4

// send routes one block from src to dst, copying the payload at call time
// (eager-buffered semantics). Without an active fault plan it takes the
// direct path (immediate or delay-timed deposit); with one, every message
// goes through the retransmitting envelope transport.
func (w *World) send(src, dst, tag int, block []complex128) {
	data := make([]complex128, len(block))
	copy(data, block)
	w.stats.sent.Add(1)
	if w.plan.Active() {
		w.sendEnvelope(src, dst, tag, data)
		return
	}
	k := mkey{src, tag}
	if !w.delayed {
		w.deposit(dst, k, message{data: data})
		return
	}
	bytes := len(block) * mpi.Elem16
	d := time.Duration(w.mach.Latency(src, dst) + int64(float64(bytes)*w.mach.EffNsPerByte(src, dst, w.mach.Nodes(w.p))))
	w.mu.Lock()
	w.inFlight++
	w.mu.Unlock()
	time.AfterFunc(d, func() {
		w.mu.Lock()
		w.inFlight--
		closed := w.closed
		if !closed {
			w.boxes[dst][k] = append(w.boxes[dst][k], message{data: data})
			w.stats.delivered.Add(1)
			w.conds[dst].Broadcast()
		}
		w.mu.Unlock()
	})
}

// deposit delivers a message to dst's mailbox immediately.
func (w *World) deposit(dst int, k mkey, m message) {
	w.mu.Lock()
	w.boxes[dst][k] = append(w.boxes[dst][k], m)
	w.stats.delivered.Add(1)
	w.conds[dst].Broadcast()
	w.mu.Unlock()
}

// sendEnvelope registers the message as outstanding and starts delivery
// attempt 0. The message stays outstanding — with a pending retransmit
// timer — until a delivery is acknowledged by the receiver side.
func (w *World) sendEnvelope(src, dst, tag int, data []complex128) {
	env := &envelope.Envelope{Src: src, Dst: dst, Tag: tag, Data: data}
	env.Seal()
	om := &outMsg{env: env}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.nextID++
	env.ID = w.nextID
	w.outstanding[env.ID] = om
	w.mu.Unlock()
	w.transmit(om, 0)
}

// transmit performs one delivery attempt of an outstanding envelope,
// rolling the fault plan for this attempt, and arms the retransmission
// timer with capped exponential backoff. Acknowledged (or dead-world)
// messages are left alone.
func (w *World) transmit(om *outMsg, attempt int) {
	env := om.env
	w.mu.Lock()
	if w.closed || w.failed != nil || w.outstanding[env.ID] != om {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	if attempt > 0 {
		w.stats.retransmits.Add(1)
	}
	d := w.plan.Decide(env.Src, env.Dst, env.Tag, env.ID, attempt)
	now := time.Since(w.epoch).Nanoseconds()
	// Per-rank degradation: a stalled NIC holds the message until the
	// window closes; a slow NIC scales the emulated link delay.
	delay := w.plan.StallEnd(env.Src, now) - now + d.DelayNs
	if w.delayed {
		bytes := len(env.Data) * mpi.Elem16
		link := float64(w.mach.Latency(env.Src, env.Dst)) +
			float64(bytes)*w.mach.EffNsPerByte(env.Src, env.Dst, w.mach.Nodes(w.p))
		delay += int64(link * w.plan.NICFactor(env.Src) * w.plan.LinkFactor(env.Src, env.Dst, now))
	}
	if d.Drop {
		w.stats.dropsInjected.Add(1)
	} else {
		payload := env.Data
		if d.Corrupt {
			w.stats.corruptionsInjected.Add(1)
			payload = fault.CorruptCopy(env.Data, uint64(env.ID)<<8^uint64(attempt))
		}
		w.deliverAfter(delay, env, payload)
		if d.Duplicate {
			w.stats.duplicatesInjected.Add(1)
			w.deliverAfter(delay, env, env.Data)
		}
	}
	rto := w.rto
	for i := 0; i < attempt && i < maxBackoff; i++ {
		rto *= 2
	}
	next := attempt + 1
	w.mu.Lock()
	if w.outstanding[env.ID] == om && !w.closed && w.failed == nil {
		if attempt > 0 {
			w.stats.backoffs.Add(1)
		}
		om.timer = time.AfterFunc(time.Duration(delay)+rto, func() { w.transmit(om, next) })
	}
	w.mu.Unlock()
}

// deliverAfter schedules (or performs) one delivery of a payload copy.
func (w *World) deliverAfter(delayNs int64, env *envelope.Envelope, payload []complex128) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.inFlight++
	w.mu.Unlock()
	if delayNs <= 0 {
		w.deliverEnvelope(env, payload)
		return
	}
	time.AfterFunc(time.Duration(delayNs), func() { w.deliverEnvelope(env, payload) })
}

// deliverEnvelope is the receiver side of the self-healing transport:
// verify the checksum (corrupted deliveries are dropped and recovered by
// retransmission), discard duplicates, acknowledge, then deposit into the
// mailbox.
func (w *World) deliverEnvelope(env *envelope.Envelope, payload []complex128) {
	ok := envelope.Checksum(payload) == env.Sum
	w.mu.Lock()
	defer w.mu.Unlock()
	w.inFlight--
	if w.closed {
		return
	}
	if !ok {
		// No acknowledgement: the sender's retransmit timer recovers.
		w.stats.corruptionsDetected.Add(1)
		return
	}
	if _, dup := w.seen[env.Dst][env.ID]; dup {
		w.stats.dedups.Add(1)
		w.ackLocked(env.ID)
		return
	}
	w.seen[env.Dst][env.ID] = struct{}{}
	w.ackLocked(env.ID)
	w.stats.delivered.Add(1)
	k := mkey{env.Src, env.Tag}
	w.boxes[env.Dst][k] = append(w.boxes[env.Dst][k], message{data: payload})
	w.conds[env.Dst].Broadcast()
}

// ackLocked retires an outstanding envelope and stops its retransmit
// timer. The in-process delivery path doubles as the acknowledgement
// channel (a reliable control plane; only payload deliveries fault).
func (w *World) ackLocked(id int64) {
	om, live := w.outstanding[id]
	if !live {
		return
	}
	if om.timer != nil {
		om.timer.Stop()
	}
	delete(w.outstanding, id)
	w.stats.acks.Add(1)
}

// shutdownTransport stops all pending retransmission timers when Run
// finishes (normally or on error) so a dead world cannot keep firing.
func (w *World) shutdownTransport() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	for id, om := range w.outstanding {
		if om.timer != nil {
			om.timer.Stop()
		}
		delete(w.outstanding, id)
	}
}
