// Package sched implements the tunable all-to-all exchange schedules —
// pairwise, windowed pairwise, Bruck, and the hierarchical node-aware
// exchange — as engine-independent state machines. The mem engine (ranks
// are goroutines, mailbox is shared memory) and the net engine (ranks are
// OS processes, mailbox is fed by TCP readers) both drive these machines
// through the Port interface, so every schedule runs bit-identically over
// either transport.
//
// All four schedules produce receive buffers bit-identical to pairwise —
// blocks are routed differently but land byte-for-byte at the same
// offsets. Multi-message schedules reserve one collective sequence number
// per distinct message class (Bruck: one per round; hierarchical: one per
// protocol phase), so the transport's (src, tag) matching stays
// unambiguous even when a fault plan delays or duplicates deliveries
// across rounds. Combined packets ride inside ordinary []complex128
// payloads with header elements encoding (origin, dest, length) as exact
// small integers in the float64 components, which keeps the
// checksum/retransmit transport and the delay model oblivious to
// schedules.
package sched

import (
	"fmt"

	"offt/internal/mpi"
)

// Port is the engine surface a schedule runs against: one rank's sending,
// claiming and scratch facilities. All methods are called only by the
// owning rank's goroutine.
type Port interface {
	// Rank and Size identify this rank within its world.
	Rank() int
	Size() int
	// NextTags reserves n consecutive collective sequence numbers and
	// returns the first (the SPMD tag-alignment contract: every rank
	// reserves the same tags for the same collective).
	NextTags(n int) int
	// Send hands one block to the transport. The payload is copied at call
	// time (eager-buffered semantics).
	Send(dst, tag int, data []complex128)
	// TryClaim removes and returns the first mailbox message from (src,
	// tag), if one has arrived.
	TryClaim(src, tag int) ([]complex128, bool)
	// Queued reports whether a message from (src, tag) is in the mailbox.
	// Called with the engine's park lock held (the wait predicate).
	Queued(src, tag int) bool
	// Scratch returns a reusable packet-assembly buffer of length n
	// (Bruck/hier combined packets); contents are consumed by Send before
	// the next call.
	Scratch(n int) []complex128
	// NodeSize is the engine's default ranks-per-node grouping for the
	// hierarchical schedule (≥ 1), used when the Exchange does not pin one.
	NodeSize() int
}

// Request is the engine-side contract every schedule implements. All
// methods are called only by the owning rank's goroutine; Queued is
// additionally called with the engine's park lock held.
type Request interface {
	// Drain claims whatever has arrived, releases any schedule-gated sends
	// that became eligible, and reports completion.
	Drain() bool
	// Queued reports whether the mailbox holds something this request can
	// consume right now — the engine wait loop's park predicate.
	Queued() bool
	// Missing summarizes incomplete work as (collective sequence numbers,
	// source ranks) for watchdog and deadline diagnostics.
	Missing() (seqs []int, from []int)
}

// Post validates the counts, computes both offset vectors, and starts a
// non-blocking all-to-all under the given exchange schedule (pairwise by
// default). The send buffer is consumed as messages are handed to the
// transport; inbound blocks are copied into recv during Drain. The counts
// slices may be reused by the caller immediately (they are copied); send
// must stay frozen until the request completes.
func Post(port Port, ex mpi.Exchange, send []complex128, sendCounts []int, recv []complex128, recvCounts []int) Request {
	p := port.Size()
	if len(sendCounts) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("mpi/sched: counts length %d/%d, want %d", len(sendCounts), len(recvCounts), p))
	}
	offsets := make([]int, p)
	off := 0
	for s := 0; s < p; s++ {
		offsets[s] = off
		off += recvCounts[s]
	}
	if off > len(recv) {
		panic(fmt.Sprintf("mpi/sched: recv buffer %d too small for counts (%d)", len(recv), off))
	}
	soff := make([]int, p)
	o := 0
	for r := 0; r < p; r++ {
		soff[r] = o
		o += sendCounts[r]
	}
	if o > len(send) {
		panic(fmt.Sprintf("mpi/sched: send buffer %d too small for counts (%d)", len(send), o))
	}
	if p > 1 {
		switch ex.Alg {
		case mpi.CommBruck:
			return postBruck(port, send, sendCounts, soff, recv, recvCounts, offsets)
		case mpi.CommHier:
			return postHier(port, ex, send, sendCounts, soff, recv, recvCounts, offsets)
		case mpi.CommWindowed:
			if w := window(ex); w < p-1 {
				return postWindowed(port, send, sendCounts, soff, recv, recvCounts, offsets, w)
			}
		}
	}
	return postPairwise(port, send, sendCounts, soff, recv, recvCounts, offsets)
}

// window resolves the windowed schedule's in-flight cap.
func window(ex mpi.Exchange) int {
	if ex.Window > 0 {
		return ex.Window
	}
	return mpi.DefaultWindow
}

// nodeSize resolves the hierarchical schedule's ranks-per-node grouping.
func nodeSize(port Port, ex mpi.Exchange) int {
	ns := ex.NodeSize
	if ns <= 0 {
		ns = port.NodeSize()
	}
	if ns < 1 {
		ns = 1
	}
	return ns
}

// ---- pairwise --------------------------------------------------------------

// pairRequest tracks a pending pairwise all-to-all: which source blocks
// are still outstanding and where to copy them. It is also the receive
// core the windowed schedule embeds.
type pairRequest struct {
	port       Port
	tag        int
	recv       []complex128
	recvCounts []int
	offsets    []int
	pending    map[int]bool // source ranks not yet copied in
}

// postPairwise is the historical eager schedule: every peer's block is
// handed to the transport at post time, in round-robin distance order.
func postPairwise(port Port, send []complex128, sendCounts, soff []int, recv []complex128, recvCounts, offsets []int) *pairRequest {
	p, rank := port.Size(), port.Rank()
	tag := port.NextTags(1)
	req := newPairRequest(port, tag, recv, recvCounts, offsets)
	// Zero-count blocks are skipped on both sides, so sub-grid collectives
	// only touch their real peers.
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		if sendCounts[dst] > 0 {
			port.Send(dst, tag, send[soff[dst]:soff[dst]+sendCounts[dst]])
		}
	}
	copy(recv[offsets[rank]:offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	return req
}

// newPairRequest builds the receive-tracking core shared by the pairwise
// and windowed schedules. The counts are copied: callers may reuse the
// backing arrays for the next collective while this request is still in
// flight (the Ialltoallv counts-aliasing contract).
func newPairRequest(port Port, tag int, recv []complex128, recvCounts, offsets []int) *pairRequest {
	p := port.Size()
	rc := append([]int(nil), recvCounts...)
	req := &pairRequest{port: port, tag: tag, recv: recv, recvCounts: rc, offsets: offsets, pending: make(map[int]bool, p)}
	for s := 0; s < p; s++ {
		if s != port.Rank() && rc[s] > 0 {
			req.pending[s] = true
		}
	}
	return req
}

// Drain claims every available pending block, copying payloads into the
// receive buffer. Returns true when the request is complete.
func (req *pairRequest) Drain() bool {
	port := req.port
	for s := range req.pending {
		if data, ok := port.TryClaim(s, req.tag); ok {
			if len(data) != req.recvCounts[s] {
				panic(fmt.Sprintf("mpi/sched: rank %d got %d elements from %d, want %d", port.Rank(), len(data), s, req.recvCounts[s]))
			}
			copy(req.recv[req.offsets[s]:req.offsets[s]+len(data)], data)
			delete(req.pending, s)
		}
	}
	return len(req.pending) == 0
}

// Queued reports whether any pending source's block is in the mailbox.
func (req *pairRequest) Queued() bool {
	for s := range req.pending {
		if req.port.Queued(s, req.tag) {
			return true
		}
	}
	return false
}

// Missing summarizes the incomplete sources for diagnostics.
func (req *pairRequest) Missing() (seqs, from []int) {
	if len(req.pending) == 0 {
		return nil, nil
	}
	seqs = []int{req.tag}
	for s := range req.pending {
		from = append(from, s)
	}
	return seqs, from
}

// ---- windowed pairwise -----------------------------------------------------

// winSend is one deferred peer send of a windowed collective. The data
// slice aliases the caller's send buffer, which the Ialltoallv contract
// keeps frozen until the request completes; the transport copies the
// payload when the send is released.
type winSend struct {
	dst  int
	data []complex128
}

// winRequest is pairwise with a bounded number of released-but-unreceived
// peer sends: distance i's send is released once (window + completed
// receives) covers it. Liveness holds by induction on the world's minimum
// completed-receive count: every rank has always released at least
// window + that minimum distances, so some gated receive is always
// satisfiable.
type winRequest struct {
	pairRequest
	deferred []winSend // all nonzero sends, in distance order
	released int
	recvInit int
	window   int
}

func postWindowed(port Port, send []complex128, sendCounts, soff []int, recv []complex128, recvCounts, offsets []int, window int) *winRequest {
	p, rank := port.Size(), port.Rank()
	tag := port.NextTags(1)
	req := &winRequest{pairRequest: *newPairRequest(port, tag, recv, recvCounts, offsets), window: window}
	req.recvInit = len(req.pending)
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		if sendCounts[dst] > 0 {
			req.deferred = append(req.deferred, winSend{dst: dst, data: send[soff[dst] : soff[dst]+sendCounts[dst]]})
		}
	}
	copy(recv[offsets[rank]:offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	req.release()
	return req
}

// release hands every eligible deferred send to the transport. Once all
// receives are in, the remaining sends are flushed unconditionally so the
// request can complete even under asymmetric count shapes.
func (r *winRequest) release() {
	completed := r.recvInit - len(r.pending)
	allow := r.window + completed
	if len(r.pending) == 0 {
		allow = len(r.deferred)
	}
	for r.released < len(r.deferred) && r.released < allow {
		s := r.deferred[r.released]
		r.port.Send(s.dst, r.tag, s.data)
		r.released++
	}
}

func (r *winRequest) Drain() bool {
	done := r.pairRequest.Drain()
	r.release()
	return done && r.released == len(r.deferred)
}
