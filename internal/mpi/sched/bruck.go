package sched

import "fmt"

// bruckRounds returns ⌈log2 p⌉, the round count of the Bruck schedule.
func bruckRounds(p int) int {
	r := 0
	for (1 << r) < p {
		r++
	}
	return r
}

// bruckBlock is one block in flight through the Bruck store-and-forward
// pipeline. data aliases either the caller's frozen send buffer (round 0)
// or a claimed mailbox payload this rank owns.
type bruckBlock struct {
	origin, dest int
	data         []complex128
}

// bruckRequest advances one rank through the ⌈log2 p⌉ Bruck rounds. A
// block destined for d and currently held by r has remaining distance
// (d−r) mod p; round k forwards every held block whose distance has bit k
// set to rank r+2^k, shrinking its distance by 2^k. Distances are < p, so
// all bits clear within ⌈log2 p⌉ rounds and every block lands at its
// destination. Each rank sends exactly one (possibly empty) combined
// packet per round under tag base+k, and entering round k+1 requires
// round k's inbound packet — the per-rank state machine Drain() runs.
type bruckRequest struct {
	port       Port
	baseTag    int
	rounds     int
	round      int // rounds fully processed; == rounds ⇒ complete
	recv       []complex128
	recvCounts []int
	offsets    []int
	remaining  int // foreign blocks not yet placed into recv
	hold       []bruckBlock
}

func postBruck(port Port, send []complex128, sendCounts, soff []int, recv []complex128, recvCounts, offsets []int) *bruckRequest {
	p, rank := port.Size(), port.Rank()
	rounds := bruckRounds(p)
	req := &bruckRequest{
		port: port, baseTag: port.NextTags(rounds), rounds: rounds,
		recv: recv, recvCounts: append([]int(nil), recvCounts...), offsets: offsets,
	}
	for i := 1; i < p; i++ {
		d := (rank + i) % p
		if sendCounts[d] > 0 {
			req.hold = append(req.hold, bruckBlock{origin: rank, dest: d, data: send[soff[d] : soff[d]+sendCounts[d]]})
		}
		if req.recvCounts[d] > 0 {
			req.remaining++
		}
	}
	copy(recv[offsets[rank]:offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	req.sendRound(0)
	return req
}

// sendRound assembles and transmits round k's combined packet: held blocks
// whose remaining distance has bit k set, encoded as
// [n, (origin+i·dest, len)·n, payload·n]. The packet always goes out, even
// empty, so the receiver's round state machine never stalls.
func (r *bruckRequest) sendRound(k int) {
	port := r.port
	p, rank := port.Size(), port.Rank()
	size, n := 1, 0
	for _, b := range r.hold {
		if ((b.dest-rank+p)%p)&(1<<k) != 0 {
			size += 2 + len(b.data)
			n++
		}
	}
	pkt := port.Scratch(size)
	pkt[0] = complex(float64(n), 0)
	pos := 1
	keep := r.hold[:0]
	for _, b := range r.hold {
		if ((b.dest-rank+p)%p)&(1<<k) == 0 {
			keep = append(keep, b)
			continue
		}
		pkt[pos] = complex(float64(b.origin), float64(b.dest))
		pkt[pos+1] = complex(float64(len(b.data)), 0)
		pos += 2
		copy(pkt[pos:pos+len(b.data)], b.data)
		pos += len(b.data)
	}
	r.hold = keep
	port.Send((rank+(1<<k))%p, r.baseTag+k, pkt)
}

// processRound splits round k's inbound packet into blocks that arrived
// (distance 0: copy into recv) and blocks to keep forwarding.
func (r *bruckRequest) processRound(data []complex128) {
	port := r.port
	p, rank := port.Size(), port.Rank()
	n := int(real(data[0]))
	pos := 1
	for i := 0; i < n; i++ {
		origin := int(real(data[pos]))
		dest := int(imag(data[pos]))
		ln := int(real(data[pos+1]))
		pos += 2
		payload := data[pos : pos+ln]
		pos += ln
		if dest == rank {
			if ln != r.recvCounts[origin] {
				panic(fmt.Sprintf("mpi/sched: bruck: rank %d got %d elements from %d, want %d", rank, ln, origin, r.recvCounts[origin]))
			}
			copy(r.recv[r.offsets[origin]:r.offsets[origin]+ln], payload)
			r.remaining--
		} else {
			if (dest-rank+p)%p == 0 {
				panic(fmt.Sprintf("mpi/sched: bruck: rank %d holding misrouted block %d→%d", rank, origin, dest))
			}
			r.hold = append(r.hold, bruckBlock{origin: origin, dest: dest, data: payload})
		}
	}
}

func (r *bruckRequest) Drain() bool {
	port := r.port
	p := port.Size()
	for r.round < r.rounds {
		src := (port.Rank() - (1 << r.round) + p*2) % p
		data, ok := port.TryClaim(src, r.baseTag+r.round)
		if !ok {
			return false
		}
		r.processRound(data)
		r.round++
		if r.round < r.rounds {
			r.sendRound(r.round)
		}
	}
	if r.remaining != 0 || len(r.hold) != 0 {
		panic(fmt.Sprintf("mpi/sched: bruck: rank %d finished rounds with %d blocks missing, %d undelivered", port.Rank(), r.remaining, len(r.hold)))
	}
	return true
}

func (r *bruckRequest) Queued() bool {
	if r.round >= r.rounds {
		return false
	}
	p := r.port.Size()
	src := (r.port.Rank() - (1 << r.round) + p*2) % p
	return r.port.Queued(src, r.baseTag+r.round)
}

func (r *bruckRequest) Missing() (seqs, from []int) {
	if r.round >= r.rounds {
		return nil, nil
	}
	p := r.port.Size()
	return []int{r.baseTag + r.round}, []int{(r.port.Rank() - (1 << r.round) + p*2) % p}
}
