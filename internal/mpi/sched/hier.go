package sched

import (
	"fmt"

	"offt/internal/mpi"
)

// Hierarchical protocol phases, one collective sequence number each.
const (
	hierDirect   = iota // intra-node peer blocks, sent raw
	hierGather          // member → leader: combined inter-node packet [(dest+i·len) payload]·n, count-prefixed
	hierExchange        // leader ↔ leader: combined per-node packet [(origin+i·dest), (len), payload]·n, count-prefixed
	hierScatter         // leader → member: combined packet [(origin+i·len) payload]·n, count-prefixed
	hierTags
)

// hierBlock is one inter-node block staged on a leader.
type hierBlock struct {
	origin, dest int
	data         []complex128
}

// hierRequest runs the node-aware exchange: same-node blocks go directly
// (hierDirect); inter-node blocks ride member→leader→leader→member with
// combined packets, cutting fabric messages from p² to nodes². Leaders
// gate the exchange phase on all members' gather packets and the scatter
// phase on all peer leaders' exchange packets; every packet is sent even
// when empty so the phase machine never stalls.
type hierRequest struct {
	port       Port
	baseTag    int
	recv       []complex128
	recvCounts []int
	offsets    []int
	remaining  int // foreign blocks not yet placed into recv

	nodeSize int
	leader   int // first rank of this node

	directPending map[int]bool // same-node peers whose direct block is missing

	// Leader-only state.
	isLeader        bool
	stage           int          // 0 awaiting gathers, 1 awaiting exchanges, 2 all sends out
	gatherPending   map[int]bool // members whose gather packet is missing
	exchangePending map[int]bool // peer leaders whose packet is missing
	pool            []hierBlock  // staged blocks (outbound in stage 0, scatter in stage 1)

	// Member-only state.
	scatterDone bool
}

func postHier(port Port, ex mpi.Exchange, send []complex128, sendCounts, soff []int, recv []complex128, recvCounts, offsets []int) Request {
	p, rank := port.Size(), port.Rank()
	ns := nodeSize(port, ex)
	nodes := (p + ns - 1) / ns
	if nodes == 1 {
		// One node: the hierarchy is pure direct exchange — identical to
		// pairwise (a consistent choice world-wide, since the topology is).
		return postPairwise(port, send, sendCounts, soff, recv, recvCounts, offsets)
	}
	node := rank / ns
	req := &hierRequest{
		port: port, baseTag: port.NextTags(hierTags),
		recv: recv, recvCounts: append([]int(nil), recvCounts...), offsets: offsets,
		nodeSize: ns, leader: node * ns, isLeader: rank == node*ns,
		directPending: map[int]bool{},
	}
	lo, hi := node*ns, (node+1)*ns
	if hi > p {
		hi = p
	}
	for s := 0; s < p; s++ {
		if s == rank || req.recvCounts[s] == 0 {
			continue
		}
		req.remaining++
		if s >= lo && s < hi {
			req.directPending[s] = true
		}
	}
	// Direct intra-node blocks and the self copy.
	for q := lo; q < hi; q++ {
		if q != rank && sendCounts[q] > 0 {
			port.Send(q, req.baseTag+hierDirect, send[soff[q]:soff[q]+sendCounts[q]])
		}
	}
	copy(recv[offsets[rank]:offsets[rank]+sendCounts[rank]], send[soff[rank]:soff[rank]+sendCounts[rank]])
	if req.isLeader {
		req.gatherPending = map[int]bool{}
		for m := lo + 1; m < hi; m++ {
			req.gatherPending[m] = true
		}
		req.exchangePending = map[int]bool{}
		for n := 0; n < nodes; n++ {
			if n != node {
				req.exchangePending[n*ns] = true
			}
		}
		// The leader's own inter-node blocks join the pool directly.
		for d := 0; d < p; d++ {
			if (d < lo || d >= hi) && sendCounts[d] > 0 {
				req.pool = append(req.pool, hierBlock{origin: rank, dest: d, data: send[soff[d] : soff[d]+sendCounts[d]]})
			}
		}
		if len(req.gatherPending) == 0 {
			req.sendExchange()
		}
	} else {
		// Members push their combined inter-node packet to the leader
		// immediately: [n, (dest+i·len, payload)·n].
		size, n := 1, 0
		for d := 0; d < p; d++ {
			if (d < lo || d >= hi) && sendCounts[d] > 0 {
				size += 1 + sendCounts[d]
				n++
			}
		}
		pkt := port.Scratch(size)
		pkt[0] = complex(float64(n), 0)
		pos := 1
		for d := 0; d < p; d++ {
			if (d < lo || d >= hi) && sendCounts[d] > 0 {
				pkt[pos] = complex(float64(d), float64(sendCounts[d]))
				pos++
				copy(pkt[pos:pos+sendCounts[d]], send[soff[d]:soff[d]+sendCounts[d]])
				pos += sendCounts[d]
			}
		}
		port.Send(req.leader, req.baseTag+hierGather, pkt)
	}
	return req
}

// nodeBounds returns the rank range [lo, hi) of this rank's node.
func (r *hierRequest) nodeBounds() (int, int) {
	p := r.port.Size()
	lo := r.leader
	hi := lo + r.nodeSize
	if hi > p {
		hi = p
	}
	return lo, hi
}

// place copies one arrived foreign block into the receive buffer.
func (r *hierRequest) place(origin int, data []complex128) {
	if len(data) != r.recvCounts[origin] {
		panic(fmt.Sprintf("mpi/sched: hier: rank %d got %d elements from %d, want %d", r.port.Rank(), len(data), origin, r.recvCounts[origin]))
	}
	copy(r.recv[r.offsets[origin]:r.offsets[origin]+len(data)], data)
	r.remaining--
}

// sendExchange flushes the pooled inter-node blocks as one combined packet
// per peer node (always sent, even empty) and enters stage 1.
func (r *hierRequest) sendExchange() {
	port := r.port
	p := port.Size()
	ns := r.nodeSize
	nodes := (p + ns - 1) / ns
	myNode := r.leader / ns
	for n := 0; n < nodes; n++ {
		if n == myNode {
			continue
		}
		size, cnt := 1, 0
		for _, b := range r.pool {
			if b.dest/ns == n {
				size += 2 + len(b.data)
				cnt++
			}
		}
		pkt := port.Scratch(size)
		pkt[0] = complex(float64(cnt), 0)
		pos := 1
		for _, b := range r.pool {
			if b.dest/ns != n {
				continue
			}
			pkt[pos] = complex(float64(b.origin), float64(b.dest))
			pkt[pos+1] = complex(float64(len(b.data)), 0)
			pos += 2
			copy(pkt[pos:pos+len(b.data)], b.data)
			pos += len(b.data)
		}
		port.Send(n*ns, r.baseTag+hierExchange, pkt)
	}
	r.pool = r.pool[:0]
	r.stage = 1
}

// sendScatter forwards the blocks received for this node's members
// (always one packet per member, even empty) and enters stage 2.
func (r *hierRequest) sendScatter() {
	port := r.port
	lo, hi := r.nodeBounds()
	for m := lo + 1; m < hi; m++ {
		size, cnt := 1, 0
		for _, b := range r.pool {
			if b.dest == m {
				size += 1 + len(b.data)
				cnt++
			}
		}
		pkt := port.Scratch(size)
		pkt[0] = complex(float64(cnt), 0)
		pos := 1
		for _, b := range r.pool {
			if b.dest != m {
				continue
			}
			pkt[pos] = complex(float64(b.origin), float64(len(b.data)))
			pos++
			copy(pkt[pos:pos+len(b.data)], b.data)
			pos += len(b.data)
		}
		port.Send(m, r.baseTag+hierScatter, pkt)
	}
	r.pool = r.pool[:0]
	r.stage = 2
}

func (r *hierRequest) Drain() bool {
	port := r.port
	for q := range r.directPending {
		if data, ok := port.TryClaim(q, r.baseTag+hierDirect); ok {
			r.place(q, data)
			delete(r.directPending, q)
		}
	}
	if r.isLeader {
		if r.stage == 0 {
			for m := range r.gatherPending {
				data, ok := port.TryClaim(m, r.baseTag+hierGather)
				if !ok {
					continue
				}
				n := int(real(data[0]))
				pos := 1
				for i := 0; i < n; i++ {
					dest := int(real(data[pos]))
					ln := int(imag(data[pos]))
					pos++
					r.pool = append(r.pool, hierBlock{origin: m, dest: dest, data: data[pos : pos+ln]})
					pos += ln
				}
				delete(r.gatherPending, m)
			}
			if len(r.gatherPending) == 0 {
				r.sendExchange()
			}
		}
		if r.stage == 1 {
			for l := range r.exchangePending {
				data, ok := port.TryClaim(l, r.baseTag+hierExchange)
				if !ok {
					continue
				}
				n := int(real(data[0]))
				pos := 1
				for i := 0; i < n; i++ {
					origin := int(real(data[pos]))
					dest := int(imag(data[pos]))
					ln := int(real(data[pos+1]))
					pos += 2
					payload := data[pos : pos+ln]
					pos += ln
					if dest == port.Rank() {
						r.place(origin, payload)
					} else {
						r.pool = append(r.pool, hierBlock{origin: origin, dest: dest, data: payload})
					}
				}
				delete(r.exchangePending, l)
			}
			if len(r.exchangePending) == 0 {
				r.sendScatter()
			}
		}
		done := r.stage == 2 && len(r.directPending) == 0
		if done && r.remaining != 0 {
			panic(fmt.Sprintf("mpi/sched: hier: leader %d finished protocol with %d blocks missing", port.Rank(), r.remaining))
		}
		return done
	}
	if !r.scatterDone {
		if data, ok := port.TryClaim(r.leader, r.baseTag+hierScatter); ok {
			n := int(real(data[0]))
			pos := 1
			for i := 0; i < n; i++ {
				origin := int(real(data[pos]))
				ln := int(imag(data[pos]))
				pos++
				r.place(origin, data[pos:pos+ln])
				pos += ln
			}
			r.scatterDone = true
		}
	}
	done := r.scatterDone && len(r.directPending) == 0
	if done && r.remaining != 0 {
		panic(fmt.Sprintf("mpi/sched: hier: rank %d finished protocol with %d blocks missing", port.Rank(), r.remaining))
	}
	return done
}

func (r *hierRequest) Queued() bool {
	port := r.port
	for q := range r.directPending {
		if port.Queued(q, r.baseTag+hierDirect) {
			return true
		}
	}
	if r.isLeader {
		if r.stage == 0 {
			for m := range r.gatherPending {
				if port.Queued(m, r.baseTag+hierGather) {
					return true
				}
			}
		}
		if r.stage == 1 {
			for l := range r.exchangePending {
				if port.Queued(l, r.baseTag+hierExchange) {
					return true
				}
			}
		}
		return false
	}
	return !r.scatterDone && port.Queued(r.leader, r.baseTag+hierScatter)
}

func (r *hierRequest) Missing() (seqs, from []int) {
	if len(r.directPending) > 0 {
		seqs = append(seqs, r.baseTag+hierDirect)
		for q := range r.directPending {
			from = append(from, q)
		}
	}
	if r.isLeader {
		if r.stage == 0 && len(r.gatherPending) > 0 {
			seqs = append(seqs, r.baseTag+hierGather)
			for m := range r.gatherPending {
				from = append(from, m)
			}
		}
		if r.stage == 1 && len(r.exchangePending) > 0 {
			seqs = append(seqs, r.baseTag+hierExchange)
			for l := range r.exchangePending {
				from = append(from, l)
			}
		}
	} else if !r.scatterDone {
		seqs = append(seqs, r.baseTag+hierScatter)
		from = append(from, r.leader)
	}
	return seqs, from
}
