package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"offt/internal/telemetry"
)

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return res.StatusCode
}

// TestObserveRequestSpanTree is the PR's acceptance test: a captured
// request's /debug/requests/{id} record must hold a span tree with the
// queue → acquire → exec control chain, per-phase durations that sum
// (within tolerance) to the recorded exec latency, per-rank step spans
// with tile attribution, and the request's overlap efficiency — for both
// slab and pencil plans.
func TestObserveRequestSpanTree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		decomp string
		ranks  int
	}{
		{"slab", "", 2},
		{"pencil", "pencil", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var logBuf strings.Builder
			s := New(Config{
				Telemetry: telemetry.NewRegistry(),
				Trace:     true,
				Logger:    telemetry.NewLogger(&logBuf, telemetry.LevelInfo),
				// A 1 ns floor makes every request "slow", so the very
				// first one is promoted to the notable ring.
				SlowMin:    time.Nanosecond,
				SlowFactor: 0.001,
			})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer s.Drain(context.Background())

			const n = 16
			req := TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: tc.ranks, Decomp: tc.decomp}
			code, resp, _, emsg := postTransform(t, ts.URL, req, randField(n*n*n, 7))
			if code != http.StatusOK {
				t.Fatalf("transform: HTTP %d: %s", code, emsg)
			}
			if resp.RequestID == "" {
				t.Fatal("response carries no request ID")
			}

			var rec telemetry.RequestRecord
			if code := getJSON(t, ts.URL+"/debug/requests/"+resp.RequestID, &rec); code != http.StatusOK {
				t.Fatalf("/debug/requests/{id}: HTTP %d — request not captured", code)
			}

			// Promotion: the 1 ns slow floor must have captured it.
			slow := false
			for _, r := range rec.Reasons {
				slow = slow || r == "slow"
			}
			if !slow {
				t.Errorf("captured reasons = %v, want \"slow\"", rec.Reasons)
			}

			// Stage latencies and overlap efficiency recorded.
			if rec.ExecNs <= 0 || rec.QueueNs < 0 || rec.AcqNs < 0 {
				t.Errorf("stage latencies missing: exec=%d queue=%d acq=%d",
					rec.ExecNs, rec.QueueNs, rec.AcqNs)
			}
			if rec.OverlapEff < 0 || rec.OverlapEff > 1 {
				t.Errorf("overlap efficiency = %v, want [0,1]", rec.OverlapEff)
			}

			// The span tree: well-formed links and the control chain.
			if len(rec.Spans) == 0 {
				t.Fatal("record has no spans")
			}
			byID := map[int]telemetry.TraceSpan{}
			for _, sp := range rec.Spans {
				if sp.End < sp.Start {
					t.Fatalf("inverted span %+v", sp)
				}
				byID[sp.ID] = sp
			}
			control := map[string]telemetry.TraceSpan{}
			for _, sp := range rec.Spans {
				if sp.Parent >= 0 {
					if _, ok := byID[sp.Parent]; !ok {
						t.Fatalf("span %d has dangling parent %d", sp.ID, sp.Parent)
					}
				}
				if sp.Kind == "" {
					control[sp.Name] = sp
				}
			}
			for _, name := range []string{"request", "queue", "acquire", "exec", "dispatch"} {
				if _, ok := control[name]; !ok {
					t.Errorf("control span %q missing (have %v)", name, rec.Spans)
				}
			}
			if q, e := control["queue"], control["exec"]; q.End > e.Start {
				t.Errorf("queue span [%d,%d) overlaps exec [%d,%d)", q.Start, q.End, e.Start, e.End)
			}

			// Per-phase durations must sum to the exec latency within the
			// same tolerance band the obs-bench gates on (the phases are
			// engine-clock time; exec is wall time around the dispatch).
			var phaseSum int64
			for _, sp := range rec.Spans {
				if sp.Kind == "phase" {
					phaseSum += sp.Dur()
				}
			}
			if phaseSum == 0 {
				t.Fatal("no phase spans in the tree")
			}
			ratio := float64(phaseSum) / float64(rec.ExecNs)
			if ratio < 0.3 || ratio > 1.7 {
				t.Errorf("phase sum %d vs exec %d: ratio %.2f outside [0.3, 1.7]",
					phaseSum, rec.ExecNs, ratio)
			}

			// Step spans: every rank contributes, with tile attribution.
			ranksSeen := map[int]bool{}
			tiled := false
			for _, sp := range rec.Spans {
				if sp.Kind == "step" {
					ranksSeen[sp.Rank] = true
					tiled = tiled || sp.Tile >= 0
				}
			}
			if len(ranksSeen) != tc.ranks {
				t.Errorf("step spans from %d ranks, want %d", len(ranksSeen), tc.ranks)
			}
			if !tiled {
				t.Error("no step span carries a tile index")
			}

			// The listing view knows the request too.
			var listing telemetry.FlightSnapshot
			getJSON(t, ts.URL+"/debug/requests", &listing)
			found := false
			for _, sum := range listing.Notable {
				found = found || sum.ID == resp.RequestID
			}
			if !found {
				t.Error("request missing from the notable listing")
			}

			// Chrome export: valid trace-event JSON with a download name.
			hres, err := http.Get(ts.URL + "/debug/requests/" + resp.RequestID + "?format=chrome")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(hres.Body)
			hres.Body.Close()
			if cd := hres.Header.Get("Content-Disposition"); !strings.Contains(cd, resp.RequestID) {
				t.Errorf("Content-Disposition %q lacks the request ID", cd)
			}
			var doc struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("chrome export is not valid JSON: %v", err)
			}
			if len(doc.TraceEvents) < len(rec.Spans) {
				t.Errorf("chrome export has %d events for %d spans", len(doc.TraceEvents), len(rec.Spans))
			}

			// One structured "request.done" line with the request's
			// identity and overlap efficiency.
			var logged map[string]any
			for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
				m := map[string]any{}
				if err := json.Unmarshal([]byte(line), &m); err != nil {
					t.Fatalf("log line not valid JSON: %s", line)
				}
				if m["event"] == "request.done" && m["req"] == resp.RequestID {
					logged = m
				}
			}
			if logged == nil {
				t.Fatal("no request.done log line for the request")
			}
			if logged["plan"] != resp.PlanKey || logged["status"] != float64(200) {
				t.Errorf("log line fields wrong: %v", logged)
			}
			if _, ok := logged["overlap_eff"]; !ok {
				t.Errorf("log line lacks overlap_eff: %v", logged)
			}
		})
	}
}

// TestObserveSLOAccounting: 2xx requests that meet the objective leave
// the budget intact; a latency objective of 1 ns makes every request bad
// and the burn rate explode past 1. /healthz carries the SLO snapshot.
func TestObserveSLOAccounting(t *testing.T) {
	s := New(Config{
		Telemetry:    telemetry.NewRegistry(),
		SLOObjective: time.Nanosecond, // everything misses
		SLOBudget:    0.01,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	const n = 16
	for i := 0; i < 3; i++ {
		code, _, _, emsg := postTransform(t, ts.URL,
			TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}, randField(n*n*n, int64(i)))
		if code != http.StatusOK {
			t.Fatalf("transform %d: HTTP %d: %s", i, code, emsg)
		}
	}
	snap := s.SLO().Snapshot()
	if snap.Total != 3 || snap.Bad != 3 {
		t.Fatalf("slo total/bad = %d/%d, want 3/3", snap.Total, snap.Bad)
	}
	if snap.BurnRate <= 1 {
		t.Errorf("burn rate %v, want > 1", snap.BurnRate)
	}

	var hz map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", code)
	}
	slo, ok := hz["slo"].(map[string]any)
	if !ok {
		t.Fatalf("/healthz has no slo section: %v", hz)
	}
	transform, ok := slo["transform"].(map[string]any)
	if !ok || transform["total"] != float64(3) {
		t.Fatalf("/healthz slo.transform wrong: %v", slo)
	}

	// Shed 4xx requests must not burn transform budget: a bad request
	// (size over the element cap) is the client's problem.
	s2 := New(Config{MaxElements: 8})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Drain(context.Background())
	code, _, _, _ := postTransform(t, ts2.URL,
		TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized request: HTTP %d, want 400", code)
	}
	if got := s2.SLO().Snapshot().Total; got != 0 {
		t.Errorf("4xx burned SLO budget: total = %d", got)
	}
}

// TestObserveRequestIDEcho: a client-supplied X-Request-Id is echoed and
// used as the flight-recorder key; distinct requests without one get
// distinct minted IDs.
func TestObserveRequestIDEcho(t *testing.T) {
	s := New(Config{Telemetry: telemetry.NewRegistry(), Trace: true, SlowMin: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	// Hand-rolled request so the X-Request-Id header can be set.
	const n = 16
	var body bytes.Buffer
	if err := WriteHeader(&body, TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}); err != nil {
		t.Fatal(err)
	}
	if err := WritePayload(&body, randField(n*n*n, 3)); err != nil {
		t.Fatal(err)
	}
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/transform", &body)
	hreq.Header.Set("X-Request-Id", "my-trace-42")
	hres, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", hres.StatusCode)
	}
	if got := hres.Header.Get("X-Request-Id"); got != "my-trace-42" {
		t.Fatalf("echoed ID = %q", got)
	}
	if s.Flight().Get("my-trace-42") == nil {
		t.Fatal("client-supplied ID not used as the flight-recorder key")
	}

	// Minted IDs are unique across requests.
	_, r1, _, _ := postTransform(t, ts.URL, TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}, randField(n*n*n, 4))
	_, r2, _, _ := postTransform(t, ts.URL, TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}, randField(n*n*n, 5))
	if r1.RequestID == r2.RequestID || r1.RequestID == "" {
		t.Fatalf("minted IDs not unique: %q vs %q", r1.RequestID, r2.RequestID)
	}
}

// TestObserveDebugRequestMiss: an unknown ID is a clean 404, not a panic
// or an empty 200.
func TestObserveDebugRequestMiss(t *testing.T) {
	s := New(Config{Telemetry: telemetry.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())
	res, err := http.Get(ts.URL + "/debug/requests/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", res.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&er); err != nil {
		t.Fatalf("404 body not an ErrorResponse: %v", err)
	}
	if er.Error == "" {
		t.Fatal("404 carries no explanation")
	}
}

// TestObserveUntracedStillRecorded: with tracing off, requests still land
// in the flight recorder (stage latencies, no spans) — the debug
// endpoints must degrade, not disappear.
func TestObserveUntracedStillRecorded(t *testing.T) {
	s := New(Config{Telemetry: telemetry.NewRegistry(), SlowMin: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	const n = 16
	code, resp, _, emsg := postTransform(t, ts.URL,
		TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}, randField(n*n*n, 11))
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, emsg)
	}
	var rec telemetry.RequestRecord
	if code := getJSON(t, ts.URL+"/debug/requests/"+resp.RequestID, &rec); code != http.StatusOK {
		t.Fatalf("untraced request not captured: HTTP %d", code)
	}
	if len(rec.Spans) != 0 {
		t.Errorf("untraced record has %d spans", len(rec.Spans))
	}
	if rec.ExecNs <= 0 {
		t.Errorf("untraced record lacks exec latency: %+v", rec)
	}
}
