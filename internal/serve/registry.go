package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"offt"
	"offt/internal/telemetry"
)

// PlanKey identifies one cached plan. Params are the *resolved* effective
// parameters (explicit request params, else tuned-store warm start, else
// the default point), so a request that spells out the default
// configuration and one that omits it share a single plan. The struct is
// comparable and used directly as the cache map key.
type PlanKey struct {
	Nx, Ny, Nz int
	Ranks      int
	Variant    offt.Variant
	Engine     offt.EngineKind
	Workers    int
	Machine    string
	Params     offt.Params
}

func (k PlanKey) String() string {
	eng := "mem"
	if k.Engine == offt.Sim {
		eng = "sim"
	}
	return fmt.Sprintf("%dx%dx%d/p=%d/%v/%s/w=%d", k.Nx, k.Ny, k.Nz, k.Ranks, k.Variant, eng, k.Workers)
}

// planEntry is one registry slot. ready is closed once the singleflight
// build finishes (plan or err set); refs and lastUsed are guarded by the
// registry mutex; execs is atomic so the hot path can bump it without the
// registry lock.
type planEntry struct {
	key   PlanKey
	ready chan struct{}
	plan  *offt.Plan
	err   error

	refs     int
	lastUsed time.Time
	created  time.Time
	execs    atomic.Int64
	elem     *list.Element
}

// Plan returns the built plan (valid after Acquire succeeds).
func (e *planEntry) Plan() *offt.Plan { return e.plan }

// RecordExec bumps the entry's execution count.
func (e *planEntry) RecordExec() { e.execs.Add(1) }

// Registry is a capacity-bounded LRU cache of live plans. A cached Mem
// plan keeps its world of rank goroutines alive between requests — that
// is the whole point (§6: tuning and planning amortize over repeated
// transforms) and also why capacity must be bounded: eviction Close()s
// the least-recently-used idle plan's world. Construction is
// singleflight: concurrent requests for the same key build one plan and
// share it; plans currently referenced by an in-flight request are never
// evicted.
type Registry struct {
	mu      sync.Mutex
	cap     int
	entries map[PlanKey]*planEntry
	lru     *list.List // front = most recently used
	closed  bool

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	buildNs   *telemetry.Histogram
}

// NewRegistry builds a registry holding at most capacity live plans. reg
// may be nil (metrics disabled).
func NewRegistry(capacity int, reg *telemetry.Registry) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	r := &Registry{
		cap:       capacity,
		entries:   make(map[PlanKey]*planEntry),
		lru:       list.New(),
		hits:      reg.Counter("serve.plan_cache.hits"),
		misses:    reg.Counter("serve.plan_cache.misses"),
		evictions: reg.Counter("serve.plan_cache.evictions"),
		buildNs:   reg.Histogram("serve.plan_cache.build.ns"),
	}
	reg.Func("serve.plan_cache.size", func() int64 { return int64(r.Len()) })
	return r
}

// Acquire returns the cached plan for key, building it with build on a
// miss. The caller holds a reference until Release: a referenced plan is
// guaranteed not to be evicted/closed. On build failure the entry is
// removed so a later request retries. A hit whose plan is still being
// built by another request waits for the build only as long as ctx
// allows; on expiry the reference is dropped and ctx's error returned.
func (r *Registry) Acquire(ctx context.Context, key PlanKey, build func() (*offt.Plan, error)) (*planEntry, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	if e, ok := r.entries[key]; ok {
		e.refs++
		e.lastUsed = time.Now()
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.hits.Inc()
		select {
		case <-e.ready:
		case <-ctx.Done():
			// Don't hold admission weight past our own deadline while a
			// slow build completes for somebody else.
			r.Release(e)
			return nil, ctx.Err()
		}
		if e.err != nil {
			// Built by another request and failed; drop our reference.
			r.Release(e)
			return nil, e.err
		}
		return e, nil
	}

	now := time.Now()
	e := &planEntry{key: key, ready: make(chan struct{}), refs: 1, lastUsed: now, created: now}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.mu.Unlock()
	r.misses.Inc()

	// If build panics, waiters blocked on e.ready must still wake up with
	// an error and the poisoned entry must leave the map — otherwise every
	// later request for this key blocks forever holding admission weight.
	// The panic itself propagates (net/http recovers per-request).
	completed := false
	defer func() {
		if completed {
			return
		}
		e.err = fmt.Errorf("plan build panicked for %s", key)
		close(e.ready)
		r.mu.Lock()
		r.removeLocked(e)
		r.mu.Unlock()
	}()

	start := time.Now()
	e.plan, e.err = build()
	completed = true
	r.buildNs.Observe(time.Since(start).Nanoseconds())
	close(e.ready)

	if e.err != nil {
		r.mu.Lock()
		r.removeLocked(e)
		r.mu.Unlock()
		return nil, e.err
	}
	r.evict()
	return e, nil
}

// Release drops a reference taken by Acquire and triggers eviction if the
// cache is over capacity.
func (r *Registry) Release(e *planEntry) {
	r.mu.Lock()
	e.refs--
	e.lastUsed = time.Now()
	r.mu.Unlock()
	r.evict()
}

// removeLocked unlinks an entry from the map and LRU list. The map is
// only touched if it still holds this exact entry (CloseAll may have
// replaced it wholesale), and a nil elem means the entry has already
// been unlinked from the list.
func (r *Registry) removeLocked(e *planEntry) {
	if cur, ok := r.entries[e.key]; ok && cur == e {
		delete(r.entries, e.key)
	}
	if e.elem != nil {
		r.lru.Remove(e.elem)
		e.elem = nil
	}
}

// evict closes least-recently-used idle plans until the registry is
// within capacity. Referenced (in-flight) and still-building entries are
// skipped; Close happens outside the lock because shutting a world down
// synchronizes with its rank goroutines.
func (r *Registry) evict() {
	var victims []*planEntry
	r.mu.Lock()
	for r.lru.Len() > r.cap {
		var victim *planEntry
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*planEntry)
			if e.refs == 0 {
				select {
				case <-e.ready: // built: safe to close
					victim = e
				default: // still building (refs 0 can't happen mid-build, but stay safe)
				}
			}
			if victim != nil {
				break
			}
		}
		if victim == nil {
			break // everything is busy; stay over capacity until a Release
		}
		r.removeLocked(victim)
		victims = append(victims, victim)
	}
	r.mu.Unlock()
	for _, v := range victims {
		r.evictions.Inc()
		_ = v.plan.Close()
	}
}

// PlanInfo is one row of the /v1/plans listing.
type PlanInfo struct {
	Key      string      `json:"key"`
	Grid     [3]int      `json:"grid"`
	Ranks    int         `json:"ranks"`
	Variant  string      `json:"variant"`
	Engine   string      `json:"engine"`
	Workers  int         `json:"workers"`
	Machine  string      `json:"machine,omitempty"`
	Params   offt.Params `json:"params"`
	Execs    int64       `json:"execs"`
	InFlight int         `json:"in_flight"`
	AgeMs    int64       `json:"age_ms"`
	IdleMs   int64       `json:"idle_ms"`
}

// Snapshot lists the cached plans in most-recently-used order.
func (r *Registry) Snapshot() []PlanInfo {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PlanInfo, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		eng := "mem"
		if e.key.Engine == offt.Sim {
			eng = "sim"
		}
		out = append(out, PlanInfo{
			Key:      e.key.String(),
			Grid:     [3]int{e.key.Nx, e.key.Ny, e.key.Nz},
			Ranks:    e.key.Ranks,
			Variant:  e.key.Variant.String(),
			Engine:   eng,
			Workers:  e.key.Workers,
			Machine:  e.key.Machine,
			Params:   e.key.Params,
			Execs:    e.execs.Load(),
			InFlight: e.refs,
			AgeMs:    now.Sub(e.created).Milliseconds(),
			IdleMs:   now.Sub(e.lastUsed).Milliseconds(),
		})
	}
	return out
}

// Len reports the number of cached plans.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// CloseAll shuts the registry down: no further Acquires succeed and every
// cached plan is closed. Callers must have drained in-flight work first
// (offt.Plan.Close itself waits out any transform still holding the
// plan's execution lock, so even a straggler is drained, not corrupted).
func (r *Registry) CloseAll() error {
	r.mu.Lock()
	r.closed = true
	var all []*planEntry
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		// Detach before reinitializing the list: a concurrent failed build
		// calling removeLocked must not relink a stale element into the
		// fresh list and corrupt its length.
		e.elem = nil
		all = append(all, e)
	}
	r.lru.Init()
	r.entries = make(map[PlanKey]*planEntry)
	r.mu.Unlock()

	var firstErr error
	for _, e := range all {
		<-e.ready
		if e.err != nil {
			continue
		}
		if err := e.plan.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
