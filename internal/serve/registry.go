package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"offt"
	"offt/internal/telemetry"
)

// PlanKey identifies one cached plan: it is offt's canonical plan
// description, produced by offt.DescribePlan from the request — so the
// registry, the /v1/plans listing, and the plans the registry builds all
// share one source of identity. Params are the *resolved* effective
// parameters (explicit request params, else tuned-store warm start, else
// the default point) and Provenance is canonicalized, so a request that
// spells out the default configuration and one that omits it share a
// single plan. The struct is comparable and used directly as the cache
// map key.
type PlanKey = offt.PlanDescription

// PlanHealth is one state of a cached plan's fault lifecycle:
//
//	healthy ──ErrWorldFailed──▶ quarantined ──teardown──▶ rebuilding
//	   ▲                                                     │
//	   └──────────── rebuild succeeded ◀─────────────────────┤
//	                                                         ▼
//	                        broken (rebuilds exhausted; half-open probe
//	                        re-arms one rebuild after the breaker window)
type PlanHealth int

const (
	// HealthHealthy: the plan serves requests.
	HealthHealthy PlanHealth = iota
	// HealthQuarantined: the world failed; new acquires fast-fail while
	// in-flight references drain and the dead world is torn down.
	HealthQuarantined
	// HealthRebuilding: a background goroutine is rebuilding the world
	// with capped exponential backoff.
	HealthRebuilding
	// HealthBroken: consecutive rebuilds exhausted the attempt budget;
	// the breaker stays open for a full cap window, after which the next
	// acquire re-arms a single probe rebuild (half-open).
	HealthBroken
)

func (h PlanHealth) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthQuarantined:
		return "quarantined"
	case HealthRebuilding:
		return "rebuilding"
	case HealthBroken:
		return "broken"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// ErrPlanQuarantined is the sentinel every *QuarantinedError wraps: the
// requested plan's world failed and is being rebuilt, so the request is
// refused fast (503 + Retry-After on the wire) instead of queueing
// behind a dead world.
var ErrPlanQuarantined = errors.New("serve: plan quarantined, world rebuild in progress")

// QuarantinedError is the typed fast-failure returned by Acquire while a
// plan key's circuit breaker is open.
type QuarantinedError struct {
	Key        string
	RetryAfter time.Duration // when the rebuild is next expected to admit
	Broken     bool          // rebuild attempts exhausted (half-open probing)
	Cause      error         // the world failure that opened the breaker
}

func (e *QuarantinedError) Error() string {
	state := "quarantined"
	if e.Broken {
		state = "broken"
	}
	return fmt.Sprintf("serve: plan %s %s (retry in %v): %v", e.Key, state, e.RetryAfter.Round(time.Millisecond), e.Cause)
}

func (e *QuarantinedError) Is(target error) bool { return target == ErrPlanQuarantined }
func (e *QuarantinedError) Unwrap() error        { return e.Cause }

// RebuildPolicy bounds the quarantine-and-rebuild loop.
type RebuildPolicy struct {
	// BackoffBase is the delay before the first rebuild attempt; each
	// consecutive failure doubles it up to BackoffCap. Default 100ms.
	BackoffBase time.Duration
	// BackoffCap caps the exponential backoff and sizes the broken
	// breaker's half-open window. Default 3s.
	BackoffCap time.Duration
	// MaxAttempts is how many consecutive rebuild failures flip the key
	// to HealthBroken. Default 6.
	MaxAttempts int
}

func (p *RebuildPolicy) fill() {
	if p.BackoffBase <= 0 {
		p.BackoffBase = 100 * time.Millisecond
	}
	if p.BackoffCap < p.BackoffBase {
		p.BackoffCap = 3 * time.Second
		if p.BackoffCap < p.BackoffBase {
			p.BackoffCap = p.BackoffBase
		}
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
}

// planEntry is one registry slot. ready is closed once the singleflight
// build finishes (plan or err set); refs, lastUsed and health are guarded
// by the registry mutex; execs and steadyNs are atomic so the hot path
// can bump them without the registry lock.
type planEntry struct {
	key   PlanKey
	ready chan struct{}
	plan  *offt.Plan
	err   error
	build func() (*offt.Plan, error) // captured for background rebuilds

	refs     int
	health   PlanHealth
	lastUsed time.Time
	created  time.Time
	execs    atomic.Int64
	steadyNs atomic.Int64 // EWMA of successful exec wall time (watchdog source)
	elem     *list.Element
}

// Plan returns the built plan (valid after Acquire succeeds).
func (e *planEntry) Plan() *offt.Plan { return e.plan }

// RecordExec bumps the entry's execution count and folds the execution's
// wall time into the steady-state EWMA the request watchdog derives its
// deadline from.
func (e *planEntry) RecordExec(execNs int64) {
	e.execs.Add(1)
	if execNs <= 0 {
		return
	}
	for {
		old := e.steadyNs.Load()
		next := execNs
		if old > 0 {
			// 1/4 new, 3/4 old: converges in a few execs, rides out the
			// slow cold-cache first transform.
			next = old - old/4 + execNs/4
		}
		if e.steadyNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// SteadyNs returns the plan's measured steady-state execution time EWMA
// in nanoseconds (0 until the first successful execution).
func (e *planEntry) SteadyNs() int64 { return e.steadyNs.Load() }

// breakerState is the per-key circuit breaker and rebuild bookkeeping.
// It outlives the plan entries it protects (entries are swapped wholesale
// across rebuilds), so lifetime counters live here. Guarded by the
// registry mutex.
type breakerState struct {
	openUntil   time.Time // while in the future: acquires fast-fail
	rebuilding  bool      // a rebuild goroutine owns this key
	attempts    int       // consecutive failed rebuild attempts
	broken      bool      // attempt budget exhausted; half-open probing
	lastErr     error     // the failure that opened the breaker
	last        *planEntry
	quarantines int64 // lifetime: worlds declared failed
	rebuilds    int64 // lifetime: successful rebuilds
}

// gated reports whether acquires for this key must fast-fail now.
func (b *breakerState) gated(now time.Time) bool {
	return b.rebuilding || b.broken || now.Before(b.openUntil)
}

// Registry is a capacity-bounded LRU cache of live plans. A cached Mem
// plan keeps its world of rank goroutines alive between requests — that
// is the whole point (§6: tuning and planning amortize over repeated
// transforms) and also why capacity must be bounded: eviction Close()s
// the least-recently-used idle plan's world. Construction is
// singleflight: concurrent requests for the same key build one plan and
// share it; plans currently referenced by an in-flight request are never
// evicted.
//
// The registry is also the service's fault boundary: when an execution
// surfaces offt.ErrWorldFailed, MarkFailed quarantines the entry (new
// acquires fast-fail with a typed QuarantinedError while in-flight
// references drain), tears the dead world down, and rebuilds it in the
// background with capped exponential backoff. A key whose rebuilds keep
// failing goes broken and is probed half-open after a full breaker
// window, so a transient environment failure never wedges a key forever
// and a permanent one never burns a rebuild loop.
type Registry struct {
	mu      sync.Mutex
	cap     int
	entries map[PlanKey]*planEntry
	lru     *list.List // front = most recently used
	closed  bool

	policy    RebuildPolicy
	breakers  map[PlanKey]*breakerState
	stopc     chan struct{}  // closed by CloseAll: aborts rebuild backoff sleeps
	rebuildWG sync.WaitGroup // live rebuild goroutines

	hits         *telemetry.Counter
	misses       *telemetry.Counter
	evictions    *telemetry.Counter
	buildNs      *telemetry.Histogram
	quarantines  *telemetry.Counter
	rebuilds     *telemetry.Counter
	rebuildFails *telemetry.Counter
	breakerFails *telemetry.Counter

	// log receives the plan-lifecycle events (built, quarantined, rebuild
	// failed/succeeded, broken, half-open probe, evicted). A nil logger is
	// the disabled logger; set before serving via SetLogger.
	log *telemetry.Logger
}

// NewRegistry builds a registry holding at most capacity live plans. reg
// may be nil (metrics disabled). The default RebuildPolicy applies until
// SetRebuildPolicy.
func NewRegistry(capacity int, reg *telemetry.Registry) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	r := &Registry{
		cap:          capacity,
		entries:      make(map[PlanKey]*planEntry),
		lru:          list.New(),
		breakers:     make(map[PlanKey]*breakerState),
		stopc:        make(chan struct{}),
		hits:         reg.Counter("serve.plan_cache.hits"),
		misses:       reg.Counter("serve.plan_cache.misses"),
		evictions:    reg.Counter("serve.plan_cache.evictions"),
		buildNs:      reg.Histogram("serve.plan_cache.build.ns"),
		quarantines:  reg.Counter("serve.plan.quarantines"),
		rebuilds:     reg.Counter("serve.plan.rebuilds"),
		rebuildFails: reg.Counter("serve.plan.rebuild_failures"),
		breakerFails: reg.Counter("serve.plan.breaker_fast_fails"),
	}
	r.policy.fill()
	reg.Func("serve.plan_cache.size", func() int64 { return int64(r.Len()) })
	reg.Func("serve.plan_cache.quarantined", func() int64 {
		return int64(r.HealthSnapshot().Quarantined)
	})
	// Per-state plan-health gauges for Prometheus: the same states /healthz
	// reports as JSON, scrapeable so dashboards and the chaos soak can
	// watch the healthy/quarantined/rebuilding/broken mix over time.
	reg.Func("serve.plan.health.healthy", func() int64 { return int64(r.Len()) })
	reg.Func("serve.plan.health.quarantined", func() int64 {
		h := r.HealthSnapshot()
		return int64(h.Quarantined - h.Rebuilding - h.Broken)
	})
	reg.Func("serve.plan.health.rebuilding", func() int64 {
		return int64(r.HealthSnapshot().Rebuilding)
	})
	reg.Func("serve.plan.health.broken", func() int64 {
		return int64(r.HealthSnapshot().Broken)
	})
	return r
}

// SetLogger attaches the structured logger the registry announces plan
// lifecycle transitions on (nil = logging off). Call before serving.
func (r *Registry) SetLogger(log *telemetry.Logger) {
	r.mu.Lock()
	r.log = log
	r.mu.Unlock()
}

// logger returns the attached logger (nil-safe to call methods on).
func (r *Registry) logger() *telemetry.Logger {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log
}

// SetRebuildPolicy replaces the quarantine-and-rebuild bounds (zero
// fields take defaults). Call before serving.
func (r *Registry) SetRebuildPolicy(p RebuildPolicy) {
	p.fill()
	r.mu.Lock()
	r.policy = p
	r.mu.Unlock()
}

// Acquire returns the cached plan for key, building it with build on a
// miss. The caller holds a reference until Release: a referenced plan is
// guaranteed not to be evicted/closed. On build failure the entry is
// removed so a later request retries. A hit whose plan is still being
// built by another request waits for the build only as long as ctx
// allows; on expiry the reference is dropped and ctx's error returned.
// While the key's circuit breaker is open (world failed, rebuild in
// progress) Acquire fast-fails with a *QuarantinedError instead of
// touching the dead world.
func (r *Registry) Acquire(ctx context.Context, key PlanKey, build func() (*offt.Plan, error)) (*planEntry, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	now := time.Now()
	if br, ok := r.breakers[key]; ok && br.gated(now) {
		if br.broken && !br.rebuilding && !now.Before(br.openUntil) {
			// Half-open: the broken window elapsed — re-arm one probe
			// rebuild on behalf of this caller, but still fail it fast
			// (the rebuild is asynchronous).
			br.broken = false
			br.attempts = 0
			br.rebuilding = true
			br.openUntil = now.Add(r.policy.BackoffBase)
			probe := &planEntry{key: key, ready: make(chan struct{}), build: build, health: HealthRebuilding}
			r.rebuildWG.Add(1)
			r.log.Info("plan.halfopen_probe", "plan", key.String())
			go r.rebuild(probe, nil)
		}
		qerr := r.quarantineErrLocked(key, br, now)
		r.mu.Unlock()
		r.breakerFails.Inc()
		return nil, qerr
	}
	if e, ok := r.entries[key]; ok {
		e.refs++
		e.lastUsed = now
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.hits.Inc()
		select {
		case <-e.ready:
		case <-ctx.Done():
			// Don't hold admission weight past our own deadline while a
			// slow build completes for somebody else.
			r.Release(e)
			return nil, ctx.Err()
		}
		if e.err != nil {
			// Built by another request and failed; drop our reference.
			r.Release(e)
			return nil, e.err
		}
		return e, nil
	}

	e := &planEntry{key: key, ready: make(chan struct{}), build: build, refs: 1, lastUsed: now, created: now}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.mu.Unlock()
	r.misses.Inc()

	// If build panics, waiters blocked on e.ready must still wake up with
	// an error and the poisoned entry must leave the map — otherwise every
	// later request for this key blocks forever holding admission weight.
	// The panic itself propagates (net/http recovers per-request).
	completed := false
	defer func() {
		if completed {
			return
		}
		e.err = fmt.Errorf("plan build panicked for %s", key)
		close(e.ready)
		r.mu.Lock()
		r.removeLocked(e)
		r.mu.Unlock()
	}()

	// The cold build shows up in the requesting trace as its own span
	// under "acquire": plan construction (world spin-up, tuned-store
	// lookup) is the dominant cold-path cost and must be attributable.
	tc := telemetry.TraceFrom(ctx)
	span := tc.Begin("plan_build")
	start := time.Now()
	e.plan, e.err = build()
	completed = true
	buildNs := time.Since(start).Nanoseconds()
	tc.End(span)
	r.buildNs.Observe(buildNs)
	close(e.ready)

	if e.err != nil {
		r.mu.Lock()
		r.removeLocked(e)
		r.mu.Unlock()
		r.logger().Warn("plan.build_failed", "plan", key.String(), "build_ns", buildNs, "error", e.err)
		return nil, e.err
	}
	r.logger().Info("plan.built", "plan", key.String(), "build_ns", buildNs)
	r.evict()
	return e, nil
}

// quarantineErrLocked renders the breaker's current state as the typed
// fast-failure (r.mu held).
func (r *Registry) quarantineErrLocked(key PlanKey, br *breakerState, now time.Time) *QuarantinedError {
	retry := br.openUntil.Sub(now)
	if retry <= 0 {
		retry = r.policy.BackoffBase
	}
	cause := br.lastErr
	if cause == nil {
		cause = ErrPlanQuarantined
	}
	return &QuarantinedError{Key: key.String(), RetryAfter: retry, Broken: br.broken, Cause: cause}
}

// MarkFailed quarantines a plan whose world died: the entry leaves the
// acquire path immediately (in-flight references drain on their own),
// the key's circuit breaker opens, and a background goroutine tears the
// dead world down and rebuilds it with capped exponential backoff.
// Duplicate reports for the same entry (every in-flight request on a
// dead world observes the failure) collapse into one rebuild. Returns
// the typed QuarantinedError callers can answer their own request with.
func (r *Registry) MarkFailed(e *planEntry, cause error) *QuarantinedError {
	now := time.Now()
	r.mu.Lock()
	if r.closed {
		qe := &QuarantinedError{Key: e.key.String(), RetryAfter: time.Second, Cause: ErrDraining}
		r.mu.Unlock()
		return qe
	}
	br := r.breakers[e.key]
	if br == nil {
		br = &breakerState{}
		r.breakers[e.key] = br
	}
	if e.health != HealthHealthy {
		// Already quarantined by a concurrent failure report.
		qe := r.quarantineErrLocked(e.key, br, now)
		r.mu.Unlock()
		return qe
	}
	e.health = HealthQuarantined
	r.removeLocked(e)
	br.rebuilding = true
	br.broken = false
	br.lastErr = cause
	br.last = e
	br.quarantines++
	br.openUntil = now.Add(r.backoffLocked(br.attempts))
	qe := r.quarantineErrLocked(e.key, br, now)
	r.rebuildWG.Add(1)
	go r.rebuild(e, e.plan)
	r.mu.Unlock()
	r.quarantines.Inc()
	r.logger().Warn("plan.quarantined", "plan", e.key.String(),
		"retry_after_ns", qe.RetryAfter.Nanoseconds(), "error", cause)
	return qe
}

// backoffLocked returns the capped exponential rebuild delay for the
// given consecutive-failure count (r.mu held).
func (r *Registry) backoffLocked(attempts int) time.Duration {
	d := r.policy.BackoffBase
	for i := 0; i < attempts && d < r.policy.BackoffCap; i++ {
		d *= 2
	}
	if d > r.policy.BackoffCap {
		d = r.policy.BackoffCap
	}
	return d
}

// rebuild is the background quarantine worker for one key: tear down the
// dead world (old may be nil for a half-open probe), then retry the
// build under the breaker's backoff schedule until it succeeds, the
// attempt budget is exhausted (broken), or the registry closes.
func (r *Registry) rebuild(e *planEntry, old *offt.Plan) {
	defer r.rebuildWG.Done()
	if old != nil {
		// The world is already failed, so any transform still holding the
		// plan's execution lock resolves promptly; Close then drains it
		// and stops the rank goroutines and retransmit timers.
		_ = old.Close()
	}
	for {
		r.mu.Lock()
		br := r.breakers[e.key]
		if br == nil || r.closed {
			r.mu.Unlock()
			return
		}
		e.health = HealthRebuilding
		delay := r.backoffLocked(br.attempts)
		r.mu.Unlock()

		select {
		case <-time.After(delay):
		case <-r.stopc:
			return
		}

		plan, err := e.build()
		if err != nil {
			r.rebuildFails.Inc()
			r.mu.Lock()
			br.attempts++
			if br.attempts >= r.policy.MaxAttempts {
				br.broken = true
				br.rebuilding = false
				br.lastErr = fmt.Errorf("rebuild failed %d times, breaker broken: %w", br.attempts, err)
				br.openUntil = time.Now().Add(r.policy.BackoffCap)
				e.health = HealthBroken
				attempts := br.attempts
				r.mu.Unlock()
				r.logger().Error("plan.broken", "plan", e.key.String(), "attempts", attempts, "error", err)
				return
			}
			br.lastErr = fmt.Errorf("rebuild attempt %d failed: %w", br.attempts, err)
			br.openUntil = time.Now().Add(r.backoffLocked(br.attempts))
			attempt := br.attempts
			r.mu.Unlock()
			r.logger().Warn("plan.rebuild_failed", "plan", e.key.String(), "attempt", attempt, "error", err)
			continue
		}

		now := time.Now()
		fresh := &planEntry{
			key: e.key, ready: make(chan struct{}), plan: plan, build: e.build,
			lastUsed: now, created: now, health: HealthHealthy,
		}
		close(fresh.ready)
		r.mu.Lock()
		if r.closed || r.entries[e.key] != nil {
			// Raced a shutdown (or an unexpected fresh build); don't leak a
			// world nobody will ever close.
			r.mu.Unlock()
			_ = plan.Close()
			return
		}
		fresh.elem = r.lru.PushFront(fresh)
		r.entries[e.key] = fresh
		br.rebuilding = false
		br.broken = false
		br.attempts = 0
		br.openUntil = time.Time{}
		br.last = nil
		br.rebuilds++
		e.health = HealthHealthy
		r.mu.Unlock()
		r.rebuilds.Inc()
		r.logger().Info("plan.rebuilt", "plan", e.key.String())
		r.evict()
		return
	}
}

// KillPlan administratively fails the live plan cached under the key
// whose String() form matches keyStr, as if its world had died in the
// field: the world is failed, the entry quarantined, and the rebuild
// cycle starts. It is the chaos harness's fault-injection hook. Returns
// false when no live entry matches.
func (r *Registry) KillPlan(keyStr string, cause error) bool {
	r.mu.Lock()
	var victim *planEntry
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		if e.key.String() == keyStr {
			victim = e
			break
		}
	}
	r.mu.Unlock()
	if victim == nil {
		return false
	}
	select {
	case <-victim.ready:
	default:
		return false // still building; nothing to kill yet
	}
	if victim.plan == nil {
		return false
	}
	if cause == nil {
		cause = errors.New("serve: plan killed by chaos hook")
	}
	victim.plan.Fail(cause)
	r.MarkFailed(victim, &offt.WorldError{Rank: -1, Cause: cause})
	return true
}

// Release drops a reference taken by Acquire and triggers eviction if the
// cache is over capacity.
func (r *Registry) Release(e *planEntry) {
	r.mu.Lock()
	e.refs--
	e.lastUsed = time.Now()
	r.mu.Unlock()
	r.evict()
}

// removeLocked unlinks an entry from the map and LRU list. The map is
// only touched if it still holds this exact entry (CloseAll may have
// replaced it wholesale), and a nil elem means the entry has already
// been unlinked from the list.
func (r *Registry) removeLocked(e *planEntry) {
	if cur, ok := r.entries[e.key]; ok && cur == e {
		delete(r.entries, e.key)
	}
	if e.elem != nil {
		r.lru.Remove(e.elem)
		e.elem = nil
	}
}

// evict closes least-recently-used idle plans until the registry is
// within capacity. Referenced (in-flight) and still-building entries are
// skipped; Close happens outside the lock because shutting a world down
// synchronizes with its rank goroutines.
func (r *Registry) evict() {
	var victims []*planEntry
	r.mu.Lock()
	for r.lru.Len() > r.cap {
		var victim *planEntry
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*planEntry)
			if e.refs == 0 {
				select {
				case <-e.ready: // built: safe to close
					victim = e
				default: // still building (refs 0 can't happen mid-build, but stay safe)
				}
			}
			if victim != nil {
				break
			}
		}
		if victim == nil {
			break // everything is busy; stay over capacity until a Release
		}
		r.removeLocked(victim)
		victims = append(victims, victim)
	}
	r.mu.Unlock()
	for _, v := range victims {
		r.evictions.Inc()
		r.logger().Info("plan.evicted", "plan", v.key.String())
		_ = v.plan.Close()
	}
}

// PlanInfo is one row of the /v1/plans listing.
type PlanInfo struct {
	Key        string      `json:"key"`
	Grid       [3]int      `json:"grid"`
	Ranks      int         `json:"ranks"`
	Decomp     string      `json:"decomp"`
	ProcGrid   [2]int      `json:"proc_grid,omitempty"` // pencil Py×Pz
	Variant    string      `json:"variant"`
	Engine     string      `json:"engine"`
	Workers    int         `json:"workers"`
	Machine    string      `json:"machine,omitempty"`
	Comm       string      `json:"comm,omitempty"` // non-pairwise exchange schedule
	Params     offt.Params `json:"params"`
	Provenance string      `json:"params_source"`
	Execs      int64       `json:"execs"`
	InFlight   int         `json:"in_flight"`
	AgeMs      int64       `json:"age_ms"`
	IdleMs     int64       `json:"idle_ms"`
	Health     string      `json:"health"`
	Downgrades int64       `json:"downgrades"`
	Rebuilds   int64       `json:"rebuilds"`
	SteadyNs   int64       `json:"steady_ns,omitempty"`
}

// planInfoLocked renders one entry (r.mu held; e may be live or the
// detached last entry of an open breaker). Every identity field comes
// straight off the plan description that keys the entry.
func (r *Registry) planInfoLocked(e *planEntry, health PlanHealth, rebuilds int64, now time.Time) PlanInfo {
	info := PlanInfo{
		Key:        e.key.String(),
		Grid:       [3]int{e.key.Nx, e.key.Ny, e.key.Nz},
		Ranks:      e.key.Ranks,
		Decomp:     e.key.Decomp.String(),
		Variant:    e.key.Variant.String(),
		Engine:     e.key.Engine.String(),
		Workers:    e.key.Workers,
		Machine:    e.key.Machine,
		Params:     e.key.Params,
		Provenance: e.key.Provenance.String(),
		Execs:      e.execs.Load(),
		InFlight:   e.refs,
		AgeMs:      now.Sub(e.created).Milliseconds(),
		IdleMs:     now.Sub(e.lastUsed).Milliseconds(),
		Health:     health.String(),
		Rebuilds:   rebuilds,
		SteadyNs:   e.steadyNs.Load(),
	}
	if e.key.Decomp == offt.Pencil {
		info.ProcGrid = [2]int{e.key.ProcRows, e.key.ProcCols()}
	}
	if e.key.Params.Comm != offt.CommPairwise {
		info.Comm = e.key.Params.Comm.String()
	}
	// e.plan is written by the builder before ready closes; only read it
	// behind that happens-before edge.
	select {
	case <-e.ready:
		if e.plan != nil {
			info.Downgrades = e.plan.Downgrades()
		}
	default:
	}
	return info
}

// Snapshot lists the cached plans in most-recently-used order, followed
// by the keys currently under quarantine/rebuild (their last known entry
// is reported so operators see the degradation without scraping traces).
func (r *Registry) Snapshot() []PlanInfo {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PlanInfo, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		var rebuilds int64
		if br := r.breakers[e.key]; br != nil {
			rebuilds = br.rebuilds
		}
		out = append(out, r.planInfoLocked(e, e.health, rebuilds, now))
	}
	for key, br := range r.breakers {
		if !br.gated(now) || br.last == nil {
			continue
		}
		if _, live := r.entries[key]; live {
			continue
		}
		out = append(out, r.planInfoLocked(br.last, br.last.health, br.rebuilds, now))
	}
	return out
}

// RegistryHealth summarizes the registry's fault state for /healthz.
type RegistryHealth struct {
	Plans       int   `json:"plans"`
	Quarantined int   `json:"quarantined"` // keys currently gated (incl. rebuilding/broken)
	Rebuilding  int   `json:"rebuilding"`
	Broken      int   `json:"broken"`
	Quarantines int64 `json:"quarantines"` // lifetime world failures
	Rebuilds    int64 `json:"rebuilds"`    // lifetime successful rebuilds
	Downgrades  int64 `json:"downgrades"`  // overlapped→blocking fallbacks, all plans
}

// HealthSnapshot reports the registry's current fault state.
func (r *Registry) HealthSnapshot() RegistryHealth {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	h := RegistryHealth{Plans: r.lru.Len()}
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		select {
		case <-e.ready:
			if e.plan != nil {
				h.Downgrades += e.plan.Downgrades()
			}
		default:
		}
	}
	for _, br := range r.breakers {
		h.Quarantines += br.quarantines
		h.Rebuilds += br.rebuilds
		if br.gated(now) {
			h.Quarantined++
			if br.rebuilding {
				h.Rebuilding++
			}
			if br.broken {
				h.Broken++
			}
			if br.last != nil && br.last.plan != nil {
				h.Downgrades += br.last.plan.Downgrades()
			}
		}
	}
	return h
}

// Wedged reports the keys that can neither serve nor recover: gated
// breakers with no live rebuild goroutine and no half-open horizon. A
// healthy registry always returns an empty slice — the chaos soak's
// first invariant.
func (r *Registry) Wedged() []string {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for key, br := range r.breakers {
		if br.gated(now) && !br.rebuilding && !br.broken {
			out = append(out, key.String())
		}
	}
	return out
}

// Len reports the number of cached plans.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// CloseAll shuts the registry down: no further Acquires succeed, every
// in-flight rebuild is aborted and awaited, and every cached plan is
// closed. Callers must have drained in-flight work first (offt.Plan.Close
// itself waits out any transform still holding the plan's execution lock,
// so even a straggler is drained, not corrupted).
func (r *Registry) CloseAll() error {
	r.mu.Lock()
	var all []*planEntry
	if !r.closed {
		r.closed = true
		close(r.stopc)
		for el := r.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*planEntry)
			// Detach before reinitializing the list: a concurrent failed build
			// calling removeLocked must not relink a stale element into the
			// fresh list and corrupt its length.
			e.elem = nil
			all = append(all, e)
		}
		r.lru.Init()
		r.entries = make(map[PlanKey]*planEntry)
	}
	r.mu.Unlock()

	// Rebuild goroutines observe closed/stopc and exit (closing any world
	// they had just built); waiting here makes "zero goroutine leaks after
	// drain" a property, not a race.
	r.rebuildWG.Wait()

	var firstErr error
	for _, e := range all {
		<-e.ready
		if e.err != nil {
			continue
		}
		if err := e.plan.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
