package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/cmplx"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"offt"
	"offt/internal/pfft"
	"offt/internal/telemetry"
	"offt/internal/tuned"
)

// postTransform sends one wire-format transform request and decodes the
// response. On non-200 the ErrorResponse body is returned in errMsg.
func postTransform(t *testing.T, url string, req TransformRequest, payload []complex128) (int, TransformResponse, []complex128, string) {
	t.Helper()
	var body bytes.Buffer
	if err := WriteHeader(&body, req); err != nil {
		t.Fatal(err)
	}
	if payload != nil {
		if err := WritePayload(&body, payload); err != nil {
			t.Fatal(err)
		}
	}
	hres, err := http.Post(url+"/v1/transform", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(hres.Body)
		var er ErrorResponse
		_ = json.Unmarshal(b, &er)
		return hres.StatusCode, TransformResponse{}, nil, er.Error
	}
	var resp TransformResponse
	if err := ReadHeader(hres.Body, &resp); err != nil {
		t.Fatal(err)
	}
	var out []complex128
	if resp.Elements > 0 {
		out = make([]complex128, resp.Elements)
		if err := ReadPayloadInto(hres.Body, out); err != nil {
			t.Fatal(err)
		}
	}
	return hres.StatusCode, resp, out, ""
}

func randField(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return data
}

// TestServerRoundTrip: forward then backward over the wire restores the
// input within 1e-9 (after undoing the Nx·Ny·Nz scale), and the second
// request hits the plan cache.
func TestServerRoundTrip(t *testing.T) {
	s := New(Config{Telemetry: telemetry.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	const n = 16
	data := randField(n*n*n, 23)
	req := TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}

	code, fresp, spectrum, emsg := postTransform(t, ts.URL, req, data)
	if code != http.StatusOK {
		t.Fatalf("forward: HTTP %d: %s", code, emsg)
	}
	if fresp.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if fresp.Elements != n*n*n || len(spectrum) != n*n*n {
		t.Fatalf("forward returned %d elements, want %d", fresp.Elements, n*n*n)
	}

	breq := req
	breq.Direction = "backward"
	code, bresp, back, emsg := postTransform(t, ts.URL, breq, spectrum)
	if code != http.StatusOK {
		t.Fatalf("backward: HTTP %d: %s", code, emsg)
	}
	if !bresp.CacheHit {
		t.Error("backward on the same shape missed the plan cache")
	}
	scale := complex(float64(n*n*n), 0)
	worst := 0.0
	for i := range back {
		if d := cmplx.Abs(back[i]/scale - data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Errorf("round-trip error %g exceeds 1e-9", worst)
	}
	if bresp.Execs != 2 {
		t.Errorf("plan exec count = %d, want 2", bresp.Execs)
	}
}

// TestServerPlanCacheEviction: with capacity 1, a second shape evicts the
// first; hit/miss/eviction counters and /v1/plans agree.
func TestServerPlanCacheEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{MaxPlans: 1, Telemetry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	shapes := []int{8, 12, 8} // miss, miss+evict, miss again (8³ was evicted)
	for i, n := range shapes {
		code, _, _, emsg := postTransform(t, ts.URL,
			TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 1}, randField(n*n*n, int64(i)))
		if code != http.StatusOK {
			t.Fatalf("shape %d³: HTTP %d: %s", n, code, emsg)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.plan_cache.misses"]; got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := snap.Counters["serve.plan_cache.evictions"]; got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	if got := snap.Counters["serve.plan_cache.size"]; got != 1 {
		t.Errorf("cache size = %d, want 1", got)
	}

	hres, err := http.Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var plans struct{ Plans []PlanInfo }
	if err := json.NewDecoder(hres.Body).Decode(&plans); err != nil {
		t.Fatal(err)
	}
	if len(plans.Plans) != 1 || plans.Plans[0].Grid != [3]int{8, 8, 8} {
		t.Errorf("/v1/plans = %+v, want the final 8³ plan only", plans.Plans)
	}
}

// TestServerPencilLifecycle drives a pencil plan through the full HTTP
// path at a rank count the slab decomposition cannot serve: cache miss
// (build), cache hits — sequential and concurrent — with the decomp
// echoed in the wire header and reported by /v1/plans, then eviction by a
// competing shape. The verify.sh serve leg runs this under -race.
func TestServerPencilLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{MaxPlans: 1, Telemetry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	const n = 8
	const ranks = 16 // > min(Nx, Ny): beyond the slab cap
	data := randField(n*n*n, 7)
	req := TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: ranks, Decomp: "pencil"}

	// The same shape without the pencil decomp must 400 as a config
	// error — proof the request really is past the slab cap.
	sreq := req
	sreq.Decomp = ""
	if code, _, _, emsg := postTransform(t, ts.URL, sreq, data); code != http.StatusBadRequest {
		t.Fatalf("slab at ranks=%d: HTTP %d (%s), want 400", ranks, code, emsg)
	}

	// Miss: the first pencil request builds the plan.
	code, fresp, spectrum, emsg := postTransform(t, ts.URL, req, data)
	if code != http.StatusOK {
		t.Fatalf("pencil forward: HTTP %d: %s", code, emsg)
	}
	if fresp.CacheHit {
		t.Error("first pencil request reported a cache hit")
	}
	if fresp.Decomp != "pencil" {
		t.Errorf("forward response decomp = %q, want pencil", fresp.Decomp)
	}
	if len(spectrum) != n*n*n {
		t.Fatalf("pencil forward returned %d elements, want %d", len(spectrum), n*n*n)
	}

	// Hit: backward on the cached plan closes the round trip.
	breq := req
	breq.Direction = "backward"
	code, bresp, back, emsg := postTransform(t, ts.URL, breq, spectrum)
	if code != http.StatusOK {
		t.Fatalf("pencil backward: HTTP %d: %s", code, emsg)
	}
	if !bresp.CacheHit {
		t.Error("backward on the same pencil shape missed the plan cache")
	}
	if bresp.Decomp != "pencil" {
		t.Errorf("backward response decomp = %q, want pencil", bresp.Decomp)
	}
	scale := complex(float64(n*n*n), 0)
	worst := 0.0
	for i := range back {
		if d := cmplx.Abs(back[i]/scale - data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Errorf("pencil round-trip error %g exceeds 1e-9", worst)
	}

	// Concurrent hits hammer the shared plan (the -race payoff).
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var body bytes.Buffer
			if err := WriteHeader(&body, req); err != nil {
				errc <- err
				return
			}
			if err := WritePayload(&body, randField(n*n*n, seed)); err != nil {
				errc <- err
				return
			}
			hres, err := http.Post(ts.URL+"/v1/transform", "application/octet-stream", &body)
			if err != nil {
				errc <- err
				return
			}
			defer hres.Body.Close()
			if _, err := io.Copy(io.Discard, hres.Body); err != nil {
				errc <- err
				return
			}
			if hres.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("concurrent pencil hit: HTTP %d", hres.StatusCode)
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// /v1/plans reports the pencil identity, process grid included.
	hres, err := http.Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	var plans struct{ Plans []PlanInfo }
	err = json.NewDecoder(hres.Body).Decode(&plans)
	hres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(plans.Plans) != 1 {
		t.Fatalf("/v1/plans lists %d plans, want 1", len(plans.Plans))
	}
	info := plans.Plans[0]
	if info.Decomp != "pencil" || info.Ranks != ranks {
		t.Errorf("/v1/plans = decomp %q ranks %d, want pencil/%d", info.Decomp, info.Ranks, ranks)
	}
	if info.ProcGrid[0]*info.ProcGrid[1] != ranks {
		t.Errorf("/v1/plans proc_grid %v does not factor %d ranks", info.ProcGrid, ranks)
	}

	// Eviction: with capacity 1, a slab shape displaces the pencil plan.
	if code, _, _, emsg := postTransform(t, ts.URL,
		TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}, randField(n*n*n, 9)); code != http.StatusOK {
		t.Fatalf("evicting slab request: HTTP %d: %s", code, emsg)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.plan_cache.evictions"]; got < 1 {
		t.Errorf("evictions = %d, want >= 1", got)
	}
	// A fresh pencil request must rebuild (miss), not resurrect the
	// evicted plan.
	code, fresp2, _, emsg := postTransform(t, ts.URL, req, data)
	if code != http.StatusOK {
		t.Fatalf("pencil after eviction: HTTP %d: %s", code, emsg)
	}
	if fresp2.CacheHit {
		t.Error("pencil request after eviction reported a cache hit")
	}
}

// TestServerOverloadSheds: with all rank capacity held and no queue, a
// transform is shed with 429 — it neither hangs nor builds a plan.
func TestServerOverloadSheds(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{MaxInFlightRanks: 2, MaxQueue: -1, Telemetry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	// Occupy the full capacity deterministically.
	if err := s.Admission().Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	const n = 8
	req := TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2, TimeoutMs: 100}
	code, _, _, emsg := postTransform(t, ts.URL, req, randField(n*n*n, 1))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded transform: HTTP %d (%s), want 429", code, emsg)
	}
	if got := s.Registry().Len(); got != 0 {
		t.Errorf("shed request built %d plans", got)
	}
	if got := reg.Snapshot().Counters["serve.admission.shed"]; got == 0 {
		t.Error("shed counter did not move")
	}

	// Capacity freed: the same request now succeeds.
	s.Admission().Release(2)
	code, _, _, emsg = postTransform(t, ts.URL, req, randField(n*n*n, 1))
	if code != http.StatusOK {
		t.Errorf("after release: HTTP %d (%s), want 200", code, emsg)
	}
}

// TestServerDrain: in-flight work completes, new work is refused with
// 503, and every cached plan is closed.
func TestServerDrain(t *testing.T) {
	s := New(Config{Telemetry: telemetry.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	data := randField(n*n*n, 3)
	req := TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}

	// Warm the cache, then race a burst of transforms against Drain.
	if code, _, _, emsg := postTransform(t, ts.URL, req, data); code != http.StatusOK {
		t.Fatalf("warmup: HTTP %d: %s", code, emsg)
	}
	var wg sync.WaitGroup
	codes := make([]int, 6)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _, _ = postTransform(t, ts.URL, req, data)
		}(i)
	}
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, code := range codes {
		if code != http.StatusOK && code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
			t.Errorf("request %d during drain: HTTP %d, want 200/429/503", i, code)
		}
	}

	// After drain: health reports draining, transforms are refused, the
	// registry is empty.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: HTTP %d, want 503", hres.StatusCode)
	}
	if code, _, _, _ := postTransform(t, ts.URL, req, data); code != http.StatusServiceUnavailable {
		t.Errorf("transform after drain: HTTP %d, want 503", code)
	}
	if got := s.Registry().Len(); got != 0 {
		t.Errorf("registry holds %d plans after drain, want 0", got)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestServerBadRequests: client mistakes surface as 400s with clear
// wording, not engine internals or 500s.
func TestServerBadRequests(t *testing.T) {
	s := New(Config{MaxElements: 1 << 12})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	cases := []struct {
		name    string
		req     TransformRequest
		payload []complex128
		wantMsg string
	}{
		{"bad shape", TransformRequest{Nx: 8, Ny: 8, Nz: 8, Ranks: 64}, nil, "bad transform shape"},
		{"zero dim", TransformRequest{Nx: 0, Ny: 8, Nz: 8}, nil, "bad transform shape"},
		{"bad variant", TransformRequest{Nx: 8, Ny: 8, Nz: 8, Variant: "quantum"}, nil, "unknown variant"},
		{"bad engine", TransformRequest{Nx: 8, Ny: 8, Nz: 8, Engine: "gpu"}, nil, "unknown engine"},
		{"backward TH", TransformRequest{Nx: 8, Ny: 8, Nz: 8, Variant: "th", Direction: "backward"}, nil, "comparison model"},
		{"bad direction", TransformRequest{Nx: 8, Ny: 8, Nz: 8, Direction: "sideways"}, nil, "unknown direction"},
		{"too large", TransformRequest{Nx: 32, Ny: 32, Nz: 32}, nil, "element cap"},
		// The volume of this grid overflows int64; the stepwise cap must
		// reject it instead of letting a negative product through to a
		// panicking make() in plan construction.
		{"overflowing volume", TransformRequest{Nx: 2_100_000, Ny: 2_100_000, Nz: 2_100_000}, nil, "element cap"},
		// ranks×workers above the admission capacity can never be
		// admitted: config error (400), not 429 inviting futile retries.
		{"weight over capacity", TransformRequest{Nx: 8, Ny: 8, Nz: 8, Ranks: 8, Workers: 4}, nil, "admission capacity"},
	}
	for _, tc := range cases {
		code, _, _, emsg := postTransform(t, ts.URL, tc.req, tc.payload)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, code)
		}
		if !strings.Contains(emsg, tc.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, emsg, tc.wantMsg)
		}
	}

	// Truncated payload: header promises 8³ elements, body carries none.
	var body bytes.Buffer
	if err := WriteHeader(&body, TransformRequest{Nx: 8, Ny: 8, Nz: 8}); err != nil {
		t.Fatal(err)
	}
	hres, err := http.Post(ts.URL+"/v1/transform", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated payload: HTTP %d, want 400", hres.StatusCode)
	}

	// Garbage instead of a frame.
	hres, err = http.Post(ts.URL+"/v1/transform", "application/octet-stream", strings.NewReader("not a frame"))
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: HTTP %d, want 400", hres.StatusCode)
	}
}

// TestServerSimEngine: a sim-engine request executes in virtual time and
// returns no payload.
func TestServerSimEngine(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	req := TransformRequest{Nx: 64, Ny: 64, Nz: 64, Ranks: 8, Engine: "sim", Machine: "umd-cluster"}
	code, resp, out, emsg := postTransform(t, ts.URL, req, nil)
	if code != http.StatusOK {
		t.Fatalf("sim transform: HTTP %d: %s", code, emsg)
	}
	if resp.VirtualNs <= 0 {
		t.Errorf("virtual_ns = %d, want > 0", resp.VirtualNs)
	}
	if len(out) != 0 || resp.Elements != 0 {
		t.Errorf("sim response carried %d payload elements", resp.Elements)
	}
}

// TestServerWarmStart: with a tuned store configured, a request without
// explicit params builds its plan from the stored configuration.
func TestServerWarmStart(t *testing.T) {
	const n, ranks = 16, 2
	path := filepath.Join(t.TempDir(), "params.json")
	want := pfft.Params{T: 8, W: 2, Px: 2, Pz: 4, Uy: 2, Uz: 4, Fy: 1, Fp: 1, Fu: 1, Fx: 1}
	err := tuned.Append(path, tuned.Entry{
		Key:    tuned.NewKey("laptop", n, n, n, ranks, pfft.NEW),
		Params: want,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := tuned.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Store: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	code, _, _, emsg := postTransform(t, ts.URL,
		TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: ranks}, randField(n*n*n, 9))
	if code != http.StatusOK {
		t.Fatalf("warm-started transform: HTTP %d: %s", code, emsg)
	}
	snap := s.Registry().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("registry holds %d plans, want 1", len(snap))
	}
	if snap[0].Params != offt.Params(want) {
		t.Errorf("warm-started plan params = %v, want %v", snap[0].Params, want)
	}
}
