// Package serve is the concurrent FFT service layer: a long-running HTTP
// control plane that executes forward/backward 3-D transforms over the
// public offt.Plan API. The paper's auto-tuned overlapped FFT is designed
// to be executed many times per tuned configuration (§6); this package is
// the long-lived process that realizes that amortization — plans (and
// their worlds of rank goroutines) persist in an LRU registry across
// requests, tuned parameters warm-start plan construction from a
// persisted store, and a weighted admission controller sheds overload
// with 429s instead of growing worlds until the process OOMs.
//
// Endpoints:
//
//	POST /v1/transform  — execute one transform (binary wire format, wire.go)
//	GET  /v1/plans      — list cached plans with exec/last-used accounting
//	GET  /healthz       — liveness + drain state
//	GET  /metrics       — Prometheus text;  /metrics.json — JSON snapshot
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"offt"
	"offt/internal/telemetry"
	"offt/internal/tuned"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a production-safe default.
type Config struct {
	// MaxPlans caps the plan registry (default 8 live plans).
	MaxPlans int
	// MaxInFlightRanks is the admission capacity in rank-goroutine units:
	// a transform over a p-rank Mem plan holds p units while executing
	// (Sim transforms hold 1). Default 4×GOMAXPROCS-ish: 16.
	MaxInFlightRanks int
	// MaxQueue bounds the admission wait queue (default 64 requests;
	// negative = no queue, shed as soon as capacity is exhausted).
	MaxQueue int
	// DefaultTimeout caps a request's total admission+execution time when
	// the request names none (default 10s); requested timeouts are
	// clamped to it.
	DefaultTimeout time.Duration
	// MaxElements caps the per-request payload element count
	// (default 2^24 ≈ 16.7M complex128 = 256 MiB).
	MaxElements int
	// Store supplies tuned parameters for warm-started plan construction
	// (may be nil: every miss uses the default point).
	Store *tuned.Store
	// Telemetry receives the service metrics (may be nil: disabled).
	Telemetry *telemetry.Registry
	// FaultProfile injects deterministic communication faults into every
	// Mem world the server builds ("drop", "corrupt", "stall", "mixed";
	// "" or "none" = disabled). Chaos testing only.
	FaultProfile string
	// FaultSeed seeds the deterministic fault schedule (default 1).
	FaultSeed int64
	// Watchdog configures the mem-transport hang watchdog on built
	// plans: 0 = library default, negative = disabled (debugger
	// sessions; a hung rank then blocks until the request is abandoned).
	Watchdog time.Duration
	// Rebuild bounds the registry's quarantine-and-rebuild loop (zero
	// fields take defaults; see RebuildPolicy).
	Rebuild RebuildPolicy
	// ExecWatchdogFactor multiplies a plan's steady-state execution-time
	// EWMA into the per-request watchdog deadline (default 16).
	ExecWatchdogFactor int
	// ExecWatchdogMin floors the per-request watchdog deadline so jitter
	// on sub-millisecond transforms cannot trip it (default 250ms).
	ExecWatchdogMin time.Duration
	// Trace enables request-scoped tracing: every request carries a
	// TraceContext whose span tree (queue → acquire → exec → per-phase
	// and per-step) lands in the flight recorder at /debug/requests.
	// Plans are built with offt.WithTrace so executions record per-rank
	// step events; expect a small per-request overhead.
	Trace bool
	// Logger receives structured JSON log events (nil = logging off).
	Logger *telemetry.Logger
	// FlightRecent / FlightNotable size the flight recorder's rings
	// (defaults 128 recent / 64 notable; see telemetry.NewFlightRecorder).
	FlightRecent  int
	FlightNotable int
	// SlowFactor and SlowMin set the flight recorder's slow-capture
	// policy: a request is "slow" when its total latency exceeds
	// p99-EWMA × SlowFactor and SlowMin both (defaults 4× and 500µs).
	SlowFactor float64
	SlowMin    time.Duration
	// SLOObjective is the transform latency objective (default 250ms);
	// SLOWindow the rolling error-budget window (default 1m); SLOBudget
	// the allowed bad fraction within the window (default 1%).
	SLOObjective time.Duration
	SLOWindow    time.Duration
	SLOBudget    float64
}

func (c *Config) fill() {
	if c.MaxPlans <= 0 {
		c.MaxPlans = 8
	}
	if c.MaxInFlightRanks <= 0 {
		c.MaxInFlightRanks = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxElements <= 0 {
		c.MaxElements = 1 << 24
	}
	if c.ExecWatchdogFactor <= 0 {
		c.ExecWatchdogFactor = 16
	}
	if c.ExecWatchdogMin <= 0 {
		c.ExecWatchdogMin = 250 * time.Millisecond
	}
	if c.SLOObjective <= 0 {
		c.SLOObjective = 250 * time.Millisecond
	}
	// SLOWindow and SLOBudget defaults live in telemetry.NewSLO;
	// FlightRecent/FlightNotable defaults in telemetry.NewFlightRecorder.
}

// Server is the FFT service. Build with New, expose Handler over any
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg      Config
	registry *Registry
	adm      *Admission
	mux      *http.ServeMux
	draining atomic.Bool
	shard    *ShardRouter // nil when unsharded; see EnableShard

	requests      *telemetry.Counter
	transNs       *telemetry.Histogram
	plansNs       *telemetry.Histogram
	healthNs      *telemetry.Histogram
	errors400     *telemetry.Counter
	errors429     *telemetry.Counter
	errors5xx     *telemetry.Counter
	watchdogTrips *telemetry.Counter

	flight    *telemetry.FlightRecorder
	slo       *telemetry.SLO
	log       *telemetry.Logger
	reqPrefix string

	bufPool sync.Pool // *[]complex128 payload/result scratch
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg.fill()
	reg := cfg.Telemetry
	s := &Server{
		cfg:           cfg,
		registry:      NewRegistry(cfg.MaxPlans, reg),
		adm:           NewAdmission(cfg.MaxInFlightRanks, cfg.MaxQueue, reg),
		requests:      reg.Counter("serve.http.requests"),
		transNs:       reg.Histogram("serve.http.transform.ns"),
		plansNs:       reg.Histogram("serve.http.plans.ns"),
		healthNs:      reg.Histogram("serve.http.healthz.ns"),
		errors400:     reg.Counter("serve.http.errors.400"),
		errors429:     reg.Counter("serve.http.errors.429"),
		errors5xx:     reg.Counter("serve.http.errors.5xx"),
		watchdogTrips: reg.Counter("serve.watchdog.trips"),
		flight:        telemetry.NewFlightRecorder(cfg.FlightRecent, cfg.FlightNotable),
		slo:           telemetry.NewSLO(cfg.SLOObjective, cfg.SLOWindow, cfg.SLOBudget),
		log:           cfg.Logger,
		reqPrefix:     fmt.Sprintf("r%08x", uint32(time.Now().UnixNano())),
	}
	if cfg.SlowFactor > 0 || cfg.SlowMin > 0 {
		s.flight.SetSlowPolicy(cfg.SlowFactor, cfg.SlowMin)
	}
	s.slo.Register(reg, "serve.slo.transform")
	s.registry.SetRebuildPolicy(cfg.Rebuild)
	s.registry.SetLogger(cfg.Logger)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/transform", s.timed(s.transNs, s.handleTransform))
	s.mux.HandleFunc("GET /v1/plans", s.timed(s.plansNs, s.handlePlans))
	s.mux.HandleFunc("GET /healthz", s.timed(s.healthNs, s.handleHealthz))
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequest)
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the plan registry (read-only use: snapshots, tests).
func (s *Server) Registry() *Registry { return s.registry }

// Admission exposes the admission controller (tests, introspection).
func (s *Server) Admission() *Admission { return s.adm }

// Flight exposes the flight recorder (tests, chaos harness).
func (s *Server) Flight() *telemetry.FlightRecorder { return s.flight }

// SLO exposes the transform SLO window (tests, chaos harness).
func (s *Server) SLO() *telemetry.SLO { return s.slo }

// timed wraps a handler with a per-endpoint latency histogram and the
// request counter.
func (s *Server) timed(h *telemetry.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		start := time.Now()
		fn(w, r)
		h.Observe(time.Since(start).Nanoseconds())
	}
}

// Drain performs the graceful-shutdown sequence: stop admission (queued
// waiters shed with 503, /healthz flips to draining), wait for in-flight
// transforms to complete within ctx, then close every cached plan's
// world. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.Drain()
	waitErr := s.adm.WaitIdle(ctx)
	closeErr := s.registry.CloseAll()
	if s.shard != nil {
		// Stop probing peers; routing stays live off the last-known peer
		// table so late-arriving requests still reroute to live replicas.
		s.shard.Stop()
	}
	if waitErr != nil {
		return waitErr
	}
	return closeErr
}

// writeUnavailable sends a 503 whose Retry-After header tells the client
// when the quarantined plan's rebuild is next expected to admit.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error) {
	var qe *QuarantinedError
	if errors.As(err, &qe) && qe.RetryAfter > 0 {
		secs := int((qe.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	s.writeError(w, http.StatusServiceUnavailable, err)
}

// writeError sends a JSON error body with the given status code.
func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	switch {
	case code == http.StatusBadRequest:
		s.errors400.Inc()
	case code == http.StatusTooManyRequests:
		s.errors429.Inc()
	case code >= 500 && code != http.StatusServiceUnavailable:
		s.errors5xx.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Status: "error", Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	rh := s.registry.HealthSnapshot()
	status, code := "ok", http.StatusOK
	if rh.Quarantined > 0 {
		// Degraded, not down: other keys still serve, and the rebuild
		// loop is working the quarantined ones — keep the 200 so load
		// balancers don't amplify a single bad plan into an outage.
		status = "degraded"
	}
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	body := map[string]any{
		"status":         status,
		"plans":          rh.Plans,
		"inflight_ranks": s.adm.InUse(),
		"queue_depth":    s.adm.QueueLen(),
		"quarantined":    rh.Quarantined,
		"rebuilding":     rh.Rebuilding,
		"broken":         rh.Broken,
		"quarantines":    rh.Quarantines,
		"rebuilds":       rh.Rebuilds,
		"downgrades":     rh.Downgrades,
		"watchdog_trips": s.watchdogTrips.Value(),
		"slo":            map[string]any{"transform": s.slo.Snapshot()},
		"flight": map[string]any{
			"slow_threshold_ns": s.flight.Threshold(),
		},
	}
	if s.shard != nil {
		body["shard"] = map[string]any{
			"self":           s.shard.SelfURL(),
			"peers":          s.shard.Health(),
			"local":          s.shard.localC.Value(),
			"forwarded":      s.shard.forwardC.Value(),
			"forward_errors": s.shard.forwardErrC.Value(),
			"drain_reroutes": s.shard.reroutedC.Value(),
		}
	}
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handlePlans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"plans": s.registry.Snapshot()})
}

// transformSpec is a validated, resolved transform request.
type transformSpec struct {
	key      PlanKey
	backward bool
	timeout  time.Duration
	weight   int
}

// resolve validates the request header and resolves the effective plan
// key by handing the whole option set to offt.DescribePlan — one shared
// validation and parameter-resolution path (explicit params > tuned
// store > default point) for the library and the wire.
func (s *Server) resolve(req *TransformRequest) (transformSpec, error) {
	if req.Ranks == 0 {
		req.Ranks = 1
	}
	if req.Workers == 0 {
		req.Workers = 1
	}
	if req.Machine == "" {
		req.Machine = "laptop"
	}
	if req.Workers < 1 {
		return transformSpec{}, fmt.Errorf("workers %d must be at least 1", req.Workers)
	}
	decomp, err := offt.ParseDecomp(req.Decomp)
	if err != nil {
		return transformSpec{}, err
	}
	var commOpt []offt.Option
	if req.Comm != "" {
		alg, err := offt.ParseComm(req.Comm)
		if err != nil {
			return transformSpec{}, err
		}
		commOpt = append(commOpt, offt.WithComm(alg))
	}
	// Overflow-safe volume cap: multiply stepwise, rejecting before the
	// product can wrap. A crafted nx=ny=nz≈2.1M request would otherwise
	// overflow int64 to a negative volume, pass the cap, and panic in
	// plan construction on an out-of-range slice length.
	vol := req.Nx
	for _, dim := range [2]int{req.Ny, req.Nz} {
		if vol > s.cfg.MaxElements/dim {
			return transformSpec{}, fmt.Errorf("grid %d×%d×%d exceeds the server's %d-element cap",
				req.Nx, req.Ny, req.Nz, s.cfg.MaxElements)
		}
		vol *= dim
	}
	if vol > s.cfg.MaxElements {
		return transformSpec{}, fmt.Errorf("grid %d×%d×%d (%d elements) exceeds the server's %d-element cap",
			req.Nx, req.Ny, req.Nz, vol, s.cfg.MaxElements)
	}

	variant := offt.NEW
	if req.Variant != "" {
		v, err := offt.ParseVariant(req.Variant)
		if err != nil {
			return transformSpec{}, err
		}
		variant = v
	}

	var engine offt.EngineKind
	switch req.Engine {
	case "", "mem":
		engine = offt.Mem
	case "sim":
		engine = offt.Sim
	default:
		return transformSpec{}, fmt.Errorf("unknown engine %q (want mem or sim)", req.Engine)
	}

	var backward bool
	switch req.Direction {
	case "", "forward":
	case "backward":
		backward = true
		if engine == offt.Sim {
			return transformSpec{}, fmt.Errorf("the sim engine does not support backward transforms")
		}
		if variant == offt.TH || variant == offt.TH0 {
			return transformSpec{}, fmt.Errorf("backward transform does not support the %v comparison model", variant)
		}
	default:
		return transformSpec{}, fmt.Errorf("unknown direction %q (want forward or backward)", req.Direction)
	}

	// The description is the plan key: DescribePlan validates the full
	// option set and resolves effective params with canonical provenance,
	// so "explicit default", "warm-started" and "omitted" requests share
	// one cache entry.
	opts := []offt.Option{
		offt.WithGrid(req.Nx, req.Ny, req.Nz),
		offt.WithRanks(req.Ranks),
		offt.WithDecomp(decomp),
		offt.WithVariant(variant),
		offt.WithEngine(engine),
		offt.WithWorkers(req.Workers),
		offt.WithMachine(req.Machine),
		offt.WithTunedStoreHandle(s.cfg.Store),
	}
	if req.Params != nil {
		opts = append(opts, offt.WithParams(*req.Params))
	}
	opts = append(opts, commOpt...)
	desc, err := offt.DescribePlan(opts...)
	if err != nil {
		return transformSpec{}, err
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	weight := req.Ranks * req.Workers
	if engine == offt.Sim {
		weight = 1 // no world of rank goroutines; one model evaluation
	}
	// A weight above total capacity can never be admitted: that is a
	// configuration mismatch (400), not transient overload — a 429 would
	// invite retries that cannot ever succeed.
	if weight > s.cfg.MaxInFlightRanks {
		return transformSpec{}, fmt.Errorf(
			"ranks×workers = %d exceeds the server's admission capacity of %d rank-goroutine units; reduce ranks or workers",
			weight, s.cfg.MaxInFlightRanks)
	}
	return transformSpec{
		key:      desc,
		backward: backward,
		timeout:  timeout,
		weight:   weight,
	}, nil
}

// buildPlan constructs the offt.Plan for a resolved key: the description
// pins the plan identity, the options add the server's operational
// machinery (fault injection, watchdog).
func (s *Server) buildPlan(key PlanKey) (*offt.Plan, error) {
	var opts []offt.Option
	if s.cfg.FaultProfile != "" && s.cfg.FaultProfile != "none" {
		prof, err := offt.ParseFaultProfile(s.cfg.FaultProfile)
		if err != nil {
			return nil, err
		}
		opts = append(opts, offt.WithFaults(prof, s.cfg.FaultSeed))
	}
	switch {
	case s.cfg.Watchdog > 0:
		opts = append(opts, offt.WithWatchdog(s.cfg.Watchdog))
	case s.cfg.Watchdog < 0:
		opts = append(opts, offt.WithWatchdog(0))
	}
	if s.cfg.Trace {
		opts = append(opts, offt.WithTrace())
	}
	return offt.NewPlanFrom(key, opts...)
}

// execDeadline derives the per-request execution watchdog deadline from
// the plan's measured steady-state time: factor× the EWMA, floored so
// jitter on short transforms cannot trip it. Returns 0 (no watchdog)
// until a first successful execution has been measured — the request
// deadline and the mem-transport hang watchdog cover the cold path.
func (s *Server) execDeadline(e *planEntry) time.Duration {
	steady := e.SteadyNs()
	if steady <= 0 {
		return 0
	}
	d := time.Duration(steady) * time.Duration(s.cfg.ExecWatchdogFactor)
	if d < s.cfg.ExecWatchdogMin {
		d = s.cfg.ExecWatchdogMin
	}
	return d
}

// getBuf returns a pooled complex128 scratch slice of length n.
func (s *Server) getBuf(n int) []complex128 {
	if p, ok := s.bufPool.Get().(*[]complex128); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]complex128, n)
}

func (s *Server) putBuf(b []complex128) { s.bufPool.Put(&b) }

func (s *Server) handleTransform(hw http.ResponseWriter, r *http.Request) {
	// Every transform is observed: request ID, span tree (when tracing),
	// SLO accounting, flight-recorder capture and one structured log line.
	// obs.w wraps the ResponseWriter so finish() can read the status code.
	obs := s.newReqObs(hw, r, "transform")
	defer obs.finish()
	w := obs.w

	// A forwarded request already crossed one replica hop: it executes
	// here no matter what the local ring says (loop guard), and a
	// draining receiver sheds it with 503 so the forwarder retries a
	// live replica. Client-originated requests on a draining sharded
	// replica instead reroute (routeTransform excludes self).
	forwarded := s.shard != nil && r.Header.Get(shardForwardedHeader) != ""
	if s.draining.Load() && (s.shard == nil || forwarded) {
		obs.fail(ErrDraining)
		s.writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	rawHdr, err := ReadRawHeader(r.Body)
	if err != nil {
		obs.fail(err)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req TransformRequest
	if err := DecodeRawHeader(rawHdr, &req); err != nil {
		obs.fail(err)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := s.resolve(&req)
	if err != nil {
		obs.fail(err)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	obs.planKey = spec.key.String()
	if spec.key.Decomp == offt.Pencil {
		obs.decomp = spec.key.Decomp.String()
	}

	if s.shard != nil && !forwarded {
		s.routeTransform(obs, r, spec, rawHdr)
		return
	}
	if forwarded {
		// Count forwarded-in executions as local work: the shard section
		// of /healthz then shows where the fleet actually executes.
		s.shard.localC.Inc()
	}
	s.executeTransform(obs, r, spec, r.Body)
}

// executeTransform runs a resolved transform locally: admission, plan
// acquisition, watchdogged execution, response streaming. payload is the
// request body positioned just past the header (or a replayed buffer
// when the shard router fell back to local execution after a failed
// forward).
func (s *Server) executeTransform(obs *reqObs, r *http.Request, spec transformSpec, payload io.Reader) {
	w := obs.w

	// Admission: bounded wait for rank-weight capacity. The deadline
	// covers queueing and execution both. The trace context rides the
	// request context so the plan's execution path can emit spans into it.
	rctx := r.Context()
	if obs.tc != nil {
		rctx = telemetry.ContextWithTrace(rctx, obs.tc)
	}
	ctx, cancel := context.WithTimeout(rctx, spec.timeout)
	defer cancel()
	queued := time.Now()
	queueSpan := obs.tc.Begin("queue")
	err := s.adm.Acquire(ctx, spec.weight)
	obs.tc.End(queueSpan)
	obs.queueNs = time.Since(queued).Nanoseconds()
	if err != nil {
		obs.fail(err)
		switch {
		case errors.Is(err, ErrDraining):
			s.writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrOverloaded):
			s.writeError(w, http.StatusTooManyRequests, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	// Releases are once-guarded: the watchdog/abandon paths hand them to a
	// reaper goroutine that waits out the hung transform, and the deferred
	// calls must then be no-ops.
	var admOnce sync.Once
	releaseAdmission := func() { admOnce.Do(func() { s.adm.Release(spec.weight) }) }
	defer releaseAdmission()
	queueNs := obs.queueNs

	// Plan acquisition (singleflight build on miss, warm-started params
	// already resolved into the key).
	hadPlan := true
	acquired := time.Now()
	acquireSpan := obs.tc.Begin("acquire")
	entry, err := s.registry.Acquire(ctx, spec.key, func() (*offt.Plan, error) {
		hadPlan = false
		return s.buildPlan(spec.key)
	})
	obs.tc.End(acquireSpan)
	obs.acquireNs = time.Since(acquired).Nanoseconds()
	obs.cacheHit = hadPlan
	if err != nil {
		obs.fail(err)
		switch {
		case errors.Is(err, offt.ErrBadShape), errors.Is(err, offt.ErrBadConfig):
			s.writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrPlanQuarantined):
			// The key's world failed and its circuit breaker is open:
			// fast 503 with Retry-After instead of queueing on a dead
			// world.
			s.writeUnavailable(w, err)
		case errors.Is(err, ErrDraining):
			s.writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			// Deadline expired while waiting out another request's plan
			// build: shed like admission does, the plan may be ready on
			// retry.
			s.writeError(w, http.StatusTooManyRequests, fmt.Errorf("%w: %w", ErrOverloaded, err))
		default:
			// Parameter validation failures surface here too; they are
			// caller errors, not server faults.
			s.writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	var refOnce sync.Once
	releaseRef := func() { refOnce.Do(func() { s.registry.Release(entry) }) }
	defer releaseRef()
	plan := entry.Plan()

	resp := TransformResponse{
		Status:    "ok",
		PlanKey:   spec.key.String(),
		RequestID: obs.id,
		CacheHit:  hadPlan,
		QueueNs:   queueNs,
	}
	if spec.key.Params.Comm != offt.CommPairwise {
		resp.Comm = spec.key.Params.Comm.String()
	}
	if spec.key.Decomp == offt.Pencil {
		resp.Decomp = spec.key.Decomp.String()
	}

	if spec.key.Engine == offt.Sim {
		start := time.Now()
		simSpan := obs.tc.Begin("exec")
		if _, err := plan.Forward(nil); err != nil {
			obs.tc.End(simSpan)
			obs.fail(err)
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		obs.tc.End(simSpan)
		entry.RecordExec(time.Since(start).Nanoseconds())
		obs.execNs = time.Since(start).Nanoseconds()
		resp.ExecNs = obs.execNs
		resp.VirtualNs, resp.TunedNs = plan.VirtualTimes()
		resp.Execs = entry.execs.Load()
		hdr, err := MarshalHeader(resp)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(hdr)))
		_, _ = w.Write(hdr)
		return
	}

	// Mem engine: read the payload, execute, stream the result back.
	// Buffers go back to the pool only when the transform goroutine is
	// known to be done with them — the abandon paths below set abandoned
	// and delegate the putBuf to a reaper that waits out the straggler.
	n := spec.key.Nx * spec.key.Ny * spec.key.Nz
	abandoned := false
	in := s.getBuf(n)
	defer func() {
		if !abandoned {
			s.putBuf(in)
		}
	}()
	if err := ReadPayloadInto(payload, in); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	out := s.getBuf(n)
	defer func() {
		if !abandoned {
			s.putBuf(out)
		}
	}()

	// Execute under a per-request watchdog: the deadline is the plan's
	// measured steady-state time × a safety factor, so a hung rank can
	// never hold admission weight for the full request timeout.
	type execResult struct {
		err error
		ns  int64
		st  offt.ExecStats
	}
	done := make(chan execResult, 1)
	go func() {
		start := time.Now()
		var st offt.ExecStats
		var eerr error
		if spec.backward {
			st, eerr = plan.BackwardIntoCtx(ctx, out, in)
		} else {
			st, eerr = plan.ForwardIntoCtx(ctx, out, in)
		}
		done <- execResult{eerr, time.Since(start).Nanoseconds(), st}
	}()

	wdDeadline := s.execDeadline(entry)
	var watchc <-chan time.Time
	if wdDeadline > 0 {
		t := time.NewTimer(wdDeadline)
		defer t.Stop()
		watchc = t.C
	}

	// reap recycles the request's resources once the abandoned transform
	// resolves. Failing the world (watchdog path) or the mem-transport
	// hang watchdog (deadline path) guarantees it does resolve; until
	// then the pooled buffers must not be reused.
	reap := func() {
		abandoned = true
		go func() {
			<-done
			s.putBuf(in)
			s.putBuf(out)
			releaseRef()
			releaseAdmission()
		}()
	}

	var res execResult
	select {
	case res = <-done:
	case <-watchc:
		// Watchdog fired: a transform that is factor× slower than the
		// plan's own steady state means a rank is hung, not slow. Kill
		// the world (unblocking the transform goroutine), quarantine the
		// plan, and answer with the breaker's 503.
		s.watchdogTrips.Inc()
		s.log.Warn("watchdog.tripped", "req", obs.id, "plan", obs.planKey,
			"deadline_ns", int64(wdDeadline), "steady_ns", entry.SteadyNs())
		cause := fmt.Errorf("serve: request watchdog: execution exceeded %v (steady-state %v × factor %d)",
			wdDeadline, time.Duration(entry.SteadyNs()), s.cfg.ExecWatchdogFactor)
		plan.Fail(cause)
		qe := s.registry.MarkFailed(entry, cause)
		reap()
		obs.reasons = append(obs.reasons, "watchdog")
		obs.fail(cause)
		s.writeUnavailable(w, qe)
		return
	case <-ctx.Done():
		// The request deadline expired mid-execution. The plan is not
		// (yet) proven at fault — a healthy-but-slow transform under a
		// tight client deadline must not be quarantined — so abandon the
		// request and let the transform finish (or the mem hang watchdog
		// fail it) in the background.
		reap()
		err := fmt.Errorf("serve: transform exceeded the request deadline: %w", ctx.Err())
		obs.fail(err)
		s.writeError(w, http.StatusGatewayTimeout, err)
		return
	}
	if res.err != nil {
		obs.fail(res.err)
		switch {
		case errors.Is(res.err, offt.ErrWorldFailed):
			// The world died under this transform (injected faults, hang
			// watchdog abort, hard failure): quarantine the plan so the
			// background rebuild starts, and tell the client when to
			// retry.
			qe := s.registry.MarkFailed(entry, res.err)
			s.writeUnavailable(w, qe)
		case errors.Is(res.err, context.DeadlineExceeded), errors.Is(res.err, context.Canceled):
			// The deadline expired before dispatch even began (the plan's
			// own ctx pre-check): same outcome as the select's ctx branch.
			s.writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("serve: transform exceeded the request deadline: %w", res.err))
		default:
			s.writeError(w, http.StatusInternalServerError, res.err)
		}
		return
	}
	entry.RecordExec(res.ns)
	obs.execNs = res.ns
	obs.downgrades = res.st.Downgrades
	if res.st.Breakdown.Total > 0 {
		obs.overlap = res.st.OverlapEfficiency()
		resp.OverlapEfficiency = obs.overlap
	}
	resp.ExecNs = res.ns
	resp.Elements = n
	resp.Execs = entry.execs.Load()
	resp.Downgrades = plan.Downgrades()

	hdr, err := MarshalHeader(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	// An exact Content-Length sidesteps chunked transfer framing: the
	// 4 MiB-scale payload crosses the loopback in a handful of large
	// writes instead of per-chunk frames the client must reparse.
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(hdr)+16*n))
	if _, err := w.Write(hdr); err != nil {
		return // client went away; nothing to salvage
	}
	_ = WritePayload(w, out)
}
