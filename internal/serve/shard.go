package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"offt"
	"offt/internal/telemetry"
)

// Sharded serving: a small fleet of offt-serve replicas where each plan
// key has one owner. Plans carry live worlds of rank goroutines, so two
// replicas serving the same key would each pay the world's memory and
// warm-up; routing every key to a consistent owner keeps exactly one hot
// plan per key fleet-wide. The router is embedded in every replica — any
// replica accepts any request and forwards non-owned keys over the same
// binary wire format the client spoke, so clients need no fleet awareness
// and no separate proxy tier exists to fail.
//
// Placement is a consistent-hash ring (64 virtual nodes per replica,
// FNV-1a over "url|vnode"): adding or removing a replica remaps only
// ~1/n of the key space, so a rolling restart does not cold-start every
// plan in the fleet. Health is gossip-free: each replica polls its peers'
// /healthz and routes around peers that are down or draining; a forward
// that fails marks the peer down immediately and retries the next owner,
// falling back to serving locally so a fleet of one healthy replica
// still answers everything.

const (
	// shardForwardedHeader marks a request that already crossed one
	// replica-to-replica hop. A receiver serves it locally no matter what
	// its own ring says — two replicas with momentarily divergent health
	// views must not ping-pong a request between them.
	shardForwardedHeader = "X-OFFT-Forwarded"
	// shardViaHeader tells the client which replica actually executed a
	// forwarded transform (debugging aid; the X-Request-Id is unchanged
	// across the hop, so traces correlate without it).
	shardViaHeader = "X-OFFT-Shard"
)

// ShardConfig parameterizes a replica's view of the fleet.
type ShardConfig struct {
	// Self is this replica's advertised base URL — the one that appears
	// in every replica's Peers list ("http://host:port"; a bare
	// host:port gets the scheme prefixed).
	Self string
	// Peers lists every replica's base URL, self included (self is
	// appended when missing). Order does not matter: placement depends
	// only on the URL strings, so every replica computes the same ring.
	Peers []string
	// VNodes is the virtual-node count per replica on the hash ring
	// (default 64; more vnodes = smoother key balance).
	VNodes int
	// HealthInterval is the peer /healthz polling period (default 2s).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// Client performs forwards and probes (default: a dedicated client
	// with keep-alive pooling per peer).
	Client *http.Client
}

func (c *ShardConfig) fill() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        32,
			MaxIdleConnsPerHost: 8,
		}}
	}
}

// shardPeer is one replica's health-tracked view of another (or itself).
type shardPeer struct {
	url  string
	self bool

	mu        sync.Mutex
	up        bool
	draining  bool
	lastCheck time.Time
	lastErr   string
}

func (p *shardPeer) alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up && !p.draining
}

func (p *shardPeer) set(up, draining bool, errMsg string) {
	p.mu.Lock()
	p.up, p.draining, p.lastCheck, p.lastErr = up, draining, time.Now(), errMsg
	p.mu.Unlock()
}

// ShardPeerHealth is one ring entry in the /healthz shard section.
type ShardPeerHealth struct {
	URL      string `json:"url"`
	Self     bool   `json:"self,omitempty"`
	Up       bool   `json:"up"`
	Draining bool   `json:"draining,omitempty"`
	AgeMs    int64  `json:"last_check_age_ms,omitempty"`
	Err      string `json:"err,omitempty"`
}

type ringPoint struct {
	hash uint64
	peer *shardPeer
}

// ShardRouter owns a replica's ring, peer health, and forwarding client.
type ShardRouter struct {
	self  *shardPeer
	peers []*shardPeer
	ring  []ringPoint

	client       *http.Client
	interval     time.Duration
	probeTimeout time.Duration
	log          *telemetry.Logger

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup

	localC      *telemetry.Counter
	forwardC    *telemetry.Counter
	forwardErrC *telemetry.Counter
	reroutedC   *telemetry.Counter
	probeC      *telemetry.Counter
}

// NewShardRouter validates cfg and builds the ring. The health loop does
// not run until Start.
func NewShardRouter(cfg ShardConfig, reg *telemetry.Registry, log *telemetry.Logger) (*ShardRouter, error) {
	cfg.fill()
	self, err := normalizeShardURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("serve: shard self URL: %w", err)
	}
	seen := map[string]bool{}
	var urls []string
	for _, p := range append(append([]string(nil), cfg.Peers...), cfg.Self) {
		u, err := normalizeShardURL(p)
		if err != nil {
			return nil, fmt.Errorf("serve: shard peer URL %q: %w", p, err)
		}
		if !seen[u] {
			seen[u] = true
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	sr := &ShardRouter{
		client:       cfg.Client,
		interval:     cfg.HealthInterval,
		probeTimeout: cfg.ProbeTimeout,
		log:          log,
		stopc:        make(chan struct{}),
		localC:       reg.Counter("serve.shard.local"),
		forwardC:     reg.Counter("serve.shard.forwarded"),
		forwardErrC:  reg.Counter("serve.shard.forward_errors"),
		reroutedC:    reg.Counter("serve.shard.drain_reroutes"),
		probeC:       reg.Counter("serve.shard.probes"),
	}
	for _, u := range urls {
		// Peers start optimistically up so cold-start forwards are tried
		// before the first probe round lands; a failed forward demotes
		// immediately.
		pe := &shardPeer{url: u, self: u == self, up: true}
		if pe.self {
			sr.self = pe
		}
		sr.peers = append(sr.peers, pe)
		for i := 0; i < cfg.VNodes; i++ {
			sr.ring = append(sr.ring, ringPoint{
				hash: fnv64(u + "|" + strconv.Itoa(i)),
				peer: pe,
			})
		}
	}
	if sr.self == nil {
		// Unreachable: self is always merged into the peer set above.
		return nil, fmt.Errorf("serve: shard self %s missing from the peer set", self)
	}
	sort.Slice(sr.ring, func(i, j int) bool {
		if sr.ring[i].hash != sr.ring[j].hash {
			return sr.ring[i].hash < sr.ring[j].hash
		}
		return sr.ring[i].peer.url < sr.ring[j].peer.url
	})
	return sr, nil
}

// normalizeShardURL canonicalizes a replica URL so the same replica
// hashes identically fleet-wide regardless of how each config spells it.
func normalizeShardURL(s string) (string, error) {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("scheme %q (want http or https)", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("no host in %q", s)
	}
	return u.Scheme + "://" + u.Host, nil
}

// fnv64 hashes a ring string: FNV-1a for the content, then a
// splitmix64-style finalizer. Raw FNV-1a diffuses suffix changes poorly
// — vnode strings differ only in their trailing index, and without the
// finalizer a 3-replica ring came out 9%/27%/64%.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SelfURL returns this replica's canonical advertised URL.
func (sr *ShardRouter) SelfURL() string { return sr.self.url }

// Peers returns the fleet's canonical URLs in ring-construction order.
func (sr *ShardRouter) Peers() []string {
	out := make([]string, len(sr.peers))
	for i, pe := range sr.peers {
		out[i] = pe.url
	}
	return out
}

// Owner returns the key's primary owner URL, health ignored — the pure
// placement function (tests, debugging, client-side steering).
func (sr *ShardRouter) Owner(key string) string {
	i := sr.ringIndex(key)
	return sr.ring[i].peer.url
}

func (sr *ShardRouter) ringIndex(key string) int {
	h := fnv64(key)
	i := sort.Search(len(sr.ring), func(i int) bool { return sr.ring[i].hash >= h })
	if i == len(sr.ring) {
		i = 0
	}
	return i
}

// pick walks the ring clockwise from the key's hash and returns the
// first usable replica: not in tried, not believed down or draining, and
// not self when avoidSelf is set (the drain path). Self needs no health
// check — a replica that is executing pick is by definition up.
func (sr *ShardRouter) pick(key string, avoidSelf bool, tried map[string]bool) (*shardPeer, bool) {
	i := sr.ringIndex(key)
	seen := 0
	visited := make(map[*shardPeer]bool, len(sr.peers))
	for k := 0; k < len(sr.ring) && seen < len(sr.peers); k++ {
		pe := sr.ring[(i+k)%len(sr.ring)].peer
		if visited[pe] {
			continue
		}
		visited[pe] = true
		seen++
		if tried[pe.url] {
			continue
		}
		if pe.self {
			if avoidSelf {
				continue
			}
			return pe, true
		}
		if pe.alive() {
			return pe, true
		}
	}
	return nil, false
}

// markDown demotes a peer after a failed forward so subsequent picks
// route around it until a health probe brings it back.
func (sr *ShardRouter) markDown(pe *shardPeer, err error) {
	pe.set(false, false, err.Error())
	sr.log.Warn("shard.peer_down", "peer", pe.url, "error", err.Error())
}

// Start launches the health loop: one immediate probe round, then one
// every HealthInterval until Stop.
func (sr *ShardRouter) Start() {
	sr.wg.Add(1)
	go func() {
		defer sr.wg.Done()
		sr.probeAll()
		t := time.NewTicker(sr.interval)
		defer t.Stop()
		for {
			select {
			case <-sr.stopc:
				return
			case <-t.C:
				sr.probeAll()
			}
		}
	}()
}

// Stop halts the health loop. Routing keeps working off the last-known
// health state — a draining server still forwards until the process
// exits. Idempotent.
func (sr *ShardRouter) Stop() {
	sr.stopOnce.Do(func() { close(sr.stopc) })
	sr.wg.Wait()
}

func (sr *ShardRouter) probeAll() {
	var wg sync.WaitGroup
	for _, pe := range sr.peers {
		if pe.self {
			continue
		}
		wg.Add(1)
		go func(pe *shardPeer) {
			defer wg.Done()
			sr.probe(pe)
		}(pe)
	}
	wg.Wait()
}

func (sr *ShardRouter) probe(pe *shardPeer) {
	sr.probeC.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), sr.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pe.url+"/healthz", nil)
	if err != nil {
		pe.set(false, false, err.Error())
		return
	}
	resp, err := sr.client.Do(req)
	if err != nil {
		pe.set(false, false, err.Error())
		return
	}
	var body struct {
		Status string `json:"status"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		// "ok" and "degraded" both accept traffic (a quarantined plan on
		// a peer says nothing about the keys this router would send it).
		pe.set(true, false, "")
	case body.Status == "draining":
		pe.set(true, true, "")
	default:
		pe.set(false, false, fmt.Sprintf("healthz HTTP %d", resp.StatusCode))
	}
}

// Health returns the ring's peer table for /healthz.
func (sr *ShardRouter) Health() []ShardPeerHealth {
	out := make([]ShardPeerHealth, 0, len(sr.peers))
	for _, pe := range sr.peers {
		pe.mu.Lock()
		h := ShardPeerHealth{URL: pe.url, Self: pe.self, Up: pe.up, Draining: pe.draining, Err: pe.lastErr}
		if pe.self {
			h.Up = true // a replica reporting its own table is up
		} else if !pe.lastCheck.IsZero() {
			h.AgeMs = time.Since(pe.lastCheck).Milliseconds()
		}
		pe.mu.Unlock()
		out = append(out, h)
	}
	return out
}

// forward replays one wire-format transform to target. The X-Request-Id
// crosses the hop unchanged so the owner's flight recorder, logs, and
// span tree file under the same ID the client holds.
func (sr *ShardRouter) forward(ctx context.Context, target, reqID string, rawHdr, payload []byte) (*http.Response, error) {
	body := io.MultiReader(bytes.NewReader(rawHdr), bytes.NewReader(payload))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/transform", body)
	if err != nil {
		return nil, err
	}
	req.ContentLength = int64(len(rawHdr) + len(payload))
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Request-Id", reqID)
	req.Header.Set(shardForwardedHeader, "1")
	sr.forwardC.Inc()
	return sr.client.Do(req)
}

// EnableShard puts the server in sharded mode and starts the router's
// health loop. Call once, before serving traffic; Drain stops the loop.
func (s *Server) EnableShard(cfg ShardConfig) error {
	sr, err := NewShardRouter(cfg, s.cfg.Telemetry, s.log)
	if err != nil {
		return err
	}
	s.shard = sr
	sr.Start()
	return nil
}

// Shard returns the router, nil when the server is unsharded.
func (s *Server) Shard() *ShardRouter { return s.shard }

// routeTransform decides where a client-originated transform executes.
// Owned keys run locally; everything else is forwarded to the owner,
// retrying down-ring on peer failure and falling back to local execution
// when this replica is the last one standing. During drain, self is
// excluded — requests reroute to live peers instead of shedding 503.
func (s *Server) routeTransform(obs *reqObs, r *http.Request, spec transformSpec, rawHdr []byte) {
	w := obs.w
	draining := s.draining.Load()
	key := spec.key.String()
	pe, ok := s.shard.pick(key, draining, nil)
	if !ok {
		if draining {
			obs.fail(ErrDraining)
			s.writeError(w, http.StatusServiceUnavailable, ErrDraining)
		} else {
			err := fmt.Errorf("serve: no live replica for plan %s", key)
			obs.fail(err)
			s.writeError(w, http.StatusBadGateway, err)
		}
		return
	}
	if pe.self {
		s.shard.localC.Inc()
		s.executeTransform(obs, r, spec, r.Body)
		return
	}
	if draining {
		s.shard.reroutedC.Inc()
		obs.reasons = append(obs.reasons, "drain-reroute")
	}

	// Buffer the payload so a failed forward can replay it to the next
	// candidate. The size is already validated against MaxElements and
	// matches what local execution would have allocated anyway.
	var payload []byte
	if spec.key.Engine != offt.Sim {
		payload = make([]byte, 16*spec.key.Nx*spec.key.Ny*spec.key.Nz)
		if _, err := io.ReadFull(r.Body, payload); err != nil {
			err = fmt.Errorf("serve: reading payload: %w", err)
			obs.fail(err)
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	tried := map[string]bool{}
	for {
		resp, err := s.shard.forward(r.Context(), pe.url, obs.id, rawHdr, payload)
		if err == nil && resp.StatusCode < http.StatusInternalServerError {
			// Success or a caller-attributable status (4xx, 429): relay
			// verbatim. Only 5xx means "try another replica".
			s.relayForwarded(obs, resp, pe.url)
			return
		}
		if err != nil {
			s.shard.markDown(pe, err)
		} else {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			s.shard.markDown(pe, fmt.Errorf("transform HTTP %d", resp.StatusCode))
		}
		s.shard.forwardErrC.Inc()
		tried[pe.url] = true
		pe, ok = s.shard.pick(key, draining, tried)
		if !ok {
			ferr := fmt.Errorf("serve: every replica for plan %s failed or is draining", key)
			obs.fail(ferr)
			s.writeError(w, http.StatusBadGateway, ferr)
			return
		}
		if pe.self {
			s.shard.localC.Inc()
			s.executeTransform(obs, r, spec, bytes.NewReader(payload))
			return
		}
	}
}

// relayForwarded streams the owner's response back to the client.
func (s *Server) relayForwarded(obs *reqObs, resp *http.Response, target string) {
	defer resp.Body.Close()
	w := obs.w
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		w.Header().Set("Content-Length", cl)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(shardViaHeader, target)
	obs.reasons = append(obs.reasons, "forwarded")
	if resp.StatusCode >= 400 {
		obs.fail(fmt.Errorf("serve: replica %s answered HTTP %d", target, resp.StatusCode))
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
