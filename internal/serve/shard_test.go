package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"offt/internal/telemetry"
)

// TestShardRingConsistentAndBalanced: placement is a pure function of the
// canonical URL set — every replica computes the same owner regardless of
// peer-list order or URL spelling — and the vnode ring spreads keys
// across the fleet instead of piling them on one replica.
func TestShardRingConsistentAndBalanced(t *testing.T) {
	urls := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}
	a, err := NewShardRouter(ShardConfig{Self: urls[0], Peers: urls}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed peer order, bare host:port spelling, trailing slash: the
	// ring must come out identical.
	b, err := NewShardRouter(ShardConfig{
		Self:  "10.0.0.3:8080",
		Peers: []string{"10.0.0.3:8080", "http://10.0.0.2:8080/", "10.0.0.1:8080"},
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("plan-key-%d", i)
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("key %q: replica views disagree (%s vs %s)", k, oa, ob)
		}
		counts[oa]++
	}
	for _, u := range urls {
		if frac := float64(counts[u]) / keys; frac < 0.10 {
			t.Fatalf("replica %s owns only %.0f%% of keys: %v", u, 100*frac, counts)
		}
	}
}

func TestShardRejectsBadPeerURL(t *testing.T) {
	if _, err := NewShardRouter(ShardConfig{Self: "ftp://x:1", Peers: []string{"ftp://x:1"}}, nil, nil); err == nil {
		t.Fatal("ftp scheme accepted")
	}
	if _, err := NewShardRouter(ShardConfig{Self: ""}, nil, nil); err == nil {
		t.Fatal("empty self accepted")
	}
}

// startShardFleet boots n sharded servers on real loopback listeners
// (the router probes and forwards over real HTTP) and returns them with
// their base URLs. Servers drain on cleanup.
func startShardFleet(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*Server, n)
	for i := range srvs {
		s := New(Config{Telemetry: telemetry.NewRegistry()})
		if err := s.EnableShard(ShardConfig{
			Self: urls[i], Peers: urls,
			HealthInterval: 100 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go func(ln net.Listener) { _ = hs.Serve(ln) }(lns[i])
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
			_ = hs.Close()
		})
		srvs[i] = s
	}
	return srvs, urls
}

// requestOwnedBy scans grid sizes until it finds a transform whose plan
// key the ring places on wantURL.
func requestOwnedBy(t *testing.T, s *Server, wantURL string) TransformRequest {
	t.Helper()
	for n := 4; n <= 40; n += 2 {
		req := TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}
		spec, err := s.resolve(&req)
		if err != nil {
			t.Fatal(err)
		}
		if s.shard.Owner(spec.key.String()) == wantURL {
			return TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2}
		}
	}
	t.Fatalf("no grid size in [4,40] hashes to %s", wantURL)
	return TransformRequest{}
}

// postShard sends one wire-format transform and returns the status,
// decoded response, payload, and response headers.
func postShard(t *testing.T, url string, req TransformRequest, payload []complex128, hdr map[string]string) (int, TransformResponse, []complex128, http.Header) {
	t.Helper()
	var body bytes.Buffer
	if err := WriteHeader(&body, req); err != nil {
		t.Fatal(err)
	}
	if payload != nil {
		if err := WritePayload(&body, payload); err != nil {
			t.Fatal(err)
		}
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/transform", &body)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	hres, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(hres.Body)
		t.Logf("non-200 body: %s", b)
		return hres.StatusCode, TransformResponse{}, nil, hres.Header
	}
	var resp TransformResponse
	if err := ReadHeader(hres.Body, &resp); err != nil {
		t.Fatal(err)
	}
	var out []complex128
	if resp.Elements > 0 {
		out = make([]complex128, resp.Elements)
		if err := ReadPayloadInto(hres.Body, out); err != nil {
			t.Fatal(err)
		}
	}
	return hres.StatusCode, resp, out, hres.Header
}

// TestShardForwardsToOwner: a request whose key another replica owns is
// forwarded there over the wire format, byte-identical to asking the
// owner directly, with the client's X-Request-Id crossing the hop intact
// (the owner's flight recorder files the request under the client's ID).
func TestShardForwardsToOwner(t *testing.T) {
	srvs, urls := startShardFleet(t, 2)
	req := requestOwnedBy(t, srvs[0], urls[1])
	data := randField(req.Nx*req.Ny*req.Nz, 11)

	const reqID = "shard-trace-0001"
	code, resp, out, hdr := postShard(t, urls[0], req, data, map[string]string{"X-Request-Id": reqID})
	if code != http.StatusOK {
		t.Fatalf("forwarded transform: HTTP %d", code)
	}
	if got := hdr.Get(shardViaHeader); got != urls[1] {
		t.Fatalf("%s = %q, want owner %s", shardViaHeader, got, urls[1])
	}
	if got := hdr.Get("X-Request-Id"); got != reqID {
		t.Fatalf("X-Request-Id not echoed across the hop: %q", got)
	}
	if rec := srvs[1].Flight().Get(reqID); rec == nil {
		t.Fatalf("owner's flight recorder has no record for %s: trace context was dropped", reqID)
	}
	if srvs[1].shard.localC.Value() == 0 {
		t.Fatal("owner did not count the forwarded request as local work")
	}
	if srvs[0].shard.forwardC.Value() == 0 {
		t.Fatal("router did not count the forward")
	}

	// Direct to the owner: bit-identical spectrum (same plan, same input).
	code, _, direct, _ := postShard(t, urls[1], req, data, nil)
	if code != http.StatusOK {
		t.Fatalf("direct transform: HTTP %d", code)
	}
	if len(direct) != len(out) {
		t.Fatalf("length mismatch: forwarded %d, direct %d", len(out), len(direct))
	}
	for i := range out {
		if out[i] != direct[i] {
			t.Fatalf("element %d: forwarded %v != direct %v", i, out[i], direct[i])
		}
	}
	if resp.Elements != len(data) {
		t.Fatalf("forwarded response reports %d elements, want %d", resp.Elements, len(data))
	}
}

// TestShardLoopGuard: a request already marked forwarded executes
// locally even on a non-owner, so divergent health views cannot bounce a
// request between replicas forever.
func TestShardLoopGuard(t *testing.T) {
	srvs, urls := startShardFleet(t, 2)
	req := requestOwnedBy(t, srvs[0], urls[1]) // rank 0 is NOT the owner
	data := randField(req.Nx*req.Ny*req.Nz, 3)
	code, _, _, hdr := postShard(t, urls[0], req, data, map[string]string{shardForwardedHeader: "1"})
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if via := hdr.Get(shardViaHeader); via != "" {
		t.Fatalf("forwarded request was re-forwarded via %s", via)
	}
	if srvs[0].shard.forwardC.Value() != 0 {
		t.Fatal("loop guard did not stop a second hop")
	}
}

// TestShardPeerDownFallsBackToSelf: when the owner is unreachable the
// router retries down-ring and ultimately serves the request itself —
// one healthy replica keeps the whole key space answering.
func TestShardPeerDownFallsBackToSelf(t *testing.T) {
	// Reserve-and-release a port so the "peer" URL is a real address
	// with nothing listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	liveLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	liveURL := "http://" + liveLn.Addr().String()
	s := New(Config{Telemetry: telemetry.NewRegistry()})
	if err := s.EnableShard(ShardConfig{
		Self: liveURL, Peers: []string{liveURL, deadURL},
		HealthInterval: 100 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(liveLn) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		_ = hs.Close()
	}()

	req := requestOwnedBy(t, s, deadURL)
	data := randField(req.Nx*req.Ny*req.Nz, 5)
	code, _, out, hdr := postShard(t, liveURL, req, data, nil)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d with the owner down", code)
	}
	if via := hdr.Get(shardViaHeader); via != "" {
		t.Fatalf("request claims to have executed on %s, but that peer is down", via)
	}
	if len(out) != len(data) {
		t.Fatalf("got %d elements, want %d", len(out), len(data))
	}
	if s.shard.localC.Value() == 0 {
		t.Fatal("local fallback not counted")
	}
}

// TestShardDrainReroutes: SIGTERM semantics — a draining replica stops
// executing client-originated work but keeps routing it to live peers,
// so a rolling restart sheds nothing.
func TestShardDrainReroutes(t *testing.T) {
	srvs, urls := startShardFleet(t, 2)
	req := requestOwnedBy(t, srvs[0], urls[0]) // rank 0 IS the owner
	data := randField(req.Nx*req.Ny*req.Nz, 9)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvs[0].Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	code, _, out, hdr := postShard(t, urls[0], req, data, nil)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d from a draining replica with a live peer", code)
	}
	if got := hdr.Get(shardViaHeader); got != urls[1] {
		t.Fatalf("drained replica executed locally (via=%q), want reroute to %s", got, urls[1])
	}
	if len(out) != len(data) {
		t.Fatalf("got %d elements, want %d", len(out), len(data))
	}
	if srvs[0].shard.reroutedC.Value() == 0 {
		t.Fatal("drain reroute not counted")
	}

	// Once the second replica drains too, the fleet is out of capacity:
	// the request sheds with the draining 503, not a hang.
	if err := srvs[1].Drain(ctx); err != nil {
		t.Fatalf("drain second: %v", err)
	}
	// The probe loop on rank 0 is stopped (Drain), so mark rank 1's
	// state the way a probe would have.
	for _, pe := range srvs[0].shard.peers {
		if pe.url == urls[1] {
			pe.set(true, true, "")
		}
	}
	code, _, _, _ = postShard(t, urls[0], req, data, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fully drained fleet answered HTTP %d, want 503", code)
	}
}

// TestShardHealthzSection: /healthz gains the ring's peer table so an
// operator can see the fleet from any replica.
func TestShardHealthzSection(t *testing.T) {
	srvs, urls := startShardFleet(t, 2)
	_ = srvs
	resp, err := http.Get(urls[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{`"shard"`, `"self"`, urls[0], urls[1]} {
		if !bytes.Contains(b, []byte(want)) {
			t.Fatalf("healthz missing %q:\n%s", want, b)
		}
	}
}
