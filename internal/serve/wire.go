package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"offt"
)

// Wire format of /v1/transform (request and response bodies share it):
//
//	[4-byte big-endian header length n]
//	[n bytes of JSON header]
//	[payload: count × 16 bytes, each complex128 as two little-endian
//	 IEEE-754 float64s (real, imag)]
//
// The JSON header carries the small control-plane fields; the payload is
// raw complex data with no base64 or per-element framing, so the hot path
// is a single contiguous copy. The payload element count is implied by
// the header (the grid volume for Mem-engine transforms, zero for Sim),
// never self-described — a malformed header cannot cause an oversized
// read beyond the configured element cap.

// maxHeaderBytes bounds the JSON header so a bad length prefix cannot
// force a large allocation.
const maxHeaderBytes = 1 << 20

// TransformRequest is the /v1/transform request header.
type TransformRequest struct {
	// Grid dimensions (required) and rank count (default 1).
	Nx    int `json:"nx"`
	Ny    int `json:"ny"`
	Nz    int `json:"nz"`
	Ranks int `json:"ranks"`
	// Direction is "forward" (default) or "backward".
	Direction string `json:"direction,omitempty"`
	// Decomp selects the domain decomposition: "slab" (default; "" and
	// "1d" alias it) or "pencil" ("2d"), which scales past the slab
	// decomposition's ranks ≤ min(Nx, Ny) cap.
	Decomp string `json:"decomp,omitempty"`
	// Variant is the algorithm variant name (default "new").
	Variant string `json:"variant,omitempty"`
	// Comm pins the all-to-all exchange schedule ("pairwise", "bruck",
	// "hier", "windowed"); omitted means the resolved parameters decide
	// (pairwise unless a tuned entry recorded a different winner).
	Comm string `json:"comm,omitempty"`
	// Engine is "mem" (default, transforms the payload) or "sim"
	// (virtual-time execution, no payload).
	Engine string `json:"engine,omitempty"`
	// Workers fans intra-rank kernels (default 1). Mem engine only.
	Workers int `json:"workers,omitempty"`
	// Machine names the machine model: the Sim engine's cost model and
	// the tuned-store warm-start key (default "laptop").
	Machine string `json:"machine,omitempty"`
	// Params overrides the plan parameters; when omitted the server
	// consults its tuned store, then the default point.
	Params *offt.Params `json:"params,omitempty"`
	// TimeoutMs caps the request's admission wait (default: server
	// config; the cap is also clamped by it).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// TransformResponse is the /v1/transform response header; a Mem-engine
// response is followed by the result payload.
type TransformResponse struct {
	Status  string `json:"status"`
	PlanKey string `json:"plan_key"`
	// RequestID echoes the request's observability ID; feed it to
	// GET /debug/requests/{id} to pull the captured span tree.
	RequestID string `json:"request_id,omitempty"`
	// Decomp echoes the plan's resolved decomposition ("pencil" only;
	// omitted for slab so pre-pencil clients see unchanged headers).
	Decomp string `json:"decomp,omitempty"`
	// Comm echoes the plan's resolved exchange schedule (non-pairwise
	// only; omitted for the default so pre-schedule clients see
	// unchanged headers).
	Comm      string `json:"comm,omitempty"`
	CacheHit  bool   `json:"cache_hit"`
	Execs     int64  `json:"plan_execs"`
	ExecNs    int64  `json:"exec_ns"`
	QueueNs   int64  `json:"queue_ns"`
	Elements  int    `json:"elements"`
	VirtualNs int64  `json:"virtual_ns,omitempty"` // Sim engine
	TunedNs   int64  `json:"tuned_ns,omitempty"`   // Sim engine
	// Downgrades is the plan's cumulative overlapped→blocking fallback
	// count: nonzero means the transform succeeded degraded.
	Downgrades int64 `json:"downgrades,omitempty"`
	// OverlapEfficiency is this execution's overlappable/(overlappable +
	// visible-comm) ratio from the per-phase breakdown (0 when the plan
	// variant records no breakdown).
	OverlapEfficiency float64 `json:"overlap_efficiency,omitempty"`
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	Status string `json:"status"` // "error"
	Error  string `json:"error"`
}

// MarshalHeader renders hdr as the length-prefixed JSON header block, so
// callers that need the exact byte count up front (e.g. to set an HTTP
// Content-Length and avoid chunked transfer framing) can have it.
func MarshalHeader(hdr any) ([]byte, error) {
	b, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	if len(b) > maxHeaderBytes {
		return nil, fmt.Errorf("serve: header of %d bytes exceeds the %d-byte cap", len(b), maxHeaderBytes)
	}
	out := make([]byte, 4+len(b))
	binary.BigEndian.PutUint32(out[:4], uint32(len(b)))
	copy(out[4:], b)
	return out, nil
}

// WriteHeader writes the length-prefixed JSON header.
func WriteHeader(w io.Writer, hdr any) error {
	b, err := MarshalHeader(hdr)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadRawHeader reads a length-prefixed header block and returns it raw,
// 4-byte prefix included, so a router can decode it AND replay the exact
// bytes when forwarding the request to another replica.
func ReadRawHeader(r io.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, fmt.Errorf("serve: reading header length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n == 0 || n > maxHeaderBytes {
		return nil, fmt.Errorf("serve: header length %d outside (0, %d]", n, maxHeaderBytes)
	}
	raw := make([]byte, 4+n)
	copy(raw, lenbuf[:])
	if _, err := io.ReadFull(r, raw[4:]); err != nil {
		return nil, fmt.Errorf("serve: reading %d-byte header: %w", n, err)
	}
	return raw, nil
}

// DecodeRawHeader decodes a block returned by ReadRawHeader into dst.
func DecodeRawHeader(raw []byte, dst any) error {
	if err := json.Unmarshal(raw[4:], dst); err != nil {
		return fmt.Errorf("serve: decoding header: %w", err)
	}
	return nil
}

// ReadHeader reads a length-prefixed JSON header into dst.
func ReadHeader(r io.Reader, dst any) error {
	raw, err := ReadRawHeader(r)
	if err != nil {
		return err
	}
	return DecodeRawHeader(raw, dst)
}

// chunkBytes is the copy-buffer size for payload streaming: large enough
// to amortize Write/Read syscalls on the HTTP connection (a 64³ payload
// crosses the wire in 16 chunks), small enough to stay pool-friendly.
const chunkBytes = 256 << 10

var chunkPool = sync.Pool{
	New: func() any { b := make([]byte, chunkBytes); return &b },
}

// WritePayload streams data as packed little-endian complex128s.
func WritePayload(w io.Writer, data []complex128) error {
	bufp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bufp)
	buf := *bufp
	perChunk := len(buf) / 16
	for len(data) > 0 {
		n := len(data)
		if n > perChunk {
			n = perChunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*16:], math.Float64bits(real(data[i])))
			binary.LittleEndian.PutUint64(buf[i*16+8:], math.Float64bits(imag(data[i])))
		}
		if _, err := w.Write(buf[:n*16]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// ReadPayloadInto fills dst from r (len(dst) complex128s).
func ReadPayloadInto(r io.Reader, dst []complex128) error {
	bufp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bufp)
	buf := *bufp
	perChunk := len(buf) / 16
	for len(dst) > 0 {
		n := len(dst)
		if n > perChunk {
			n = perChunk
		}
		if _, err := io.ReadFull(r, buf[:n*16]); err != nil {
			return fmt.Errorf("serve: reading payload: %w", err)
		}
		for i := 0; i < n; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*16+8:]))
			dst[i] = complex(re, im)
		}
		dst = dst[n:]
	}
	return nil
}
