package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"offt"
	"offt/internal/telemetry"
)

// fastRebuild is the test-speed quarantine policy.
func fastRebuild() RebuildPolicy {
	return RebuildPolicy{
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  80 * time.Millisecond,
		MaxAttempts: 3,
	}
}

// settleGoroutines polls until the goroutine count drops to target or
// patience expires, returning the final count.
func settleGoroutines(target int, patience time.Duration) int {
	deadline := time.Now().Add(patience)
	for {
		n := runtime.NumGoroutine()
		if n <= target || time.Now().After(deadline) {
			return n
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTransformsSurviveWorldKill is the serve-layer chaos regression: a
// burst of concurrent transforms against a plan whose world is killed
// mid-flight must ALL resolve — success, or a typed 5xx — never a hang;
// the registry must never wedge; the killed plan must return to healthy
// service via the automatic rebuild; and the whole episode must not leak
// goroutines. Run under -race this also exercises the quarantine state
// machine's locking.
func TestTransformsSurviveWorldKill(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	s := New(Config{
		MaxInFlightRanks: 64,
		Telemetry:        telemetry.NewRegistry(),
		Watchdog:         300 * time.Millisecond,
		ExecWatchdogMin:  200 * time.Millisecond,
		Rebuild:          fastRebuild(),
	})
	ts := httptest.NewServer(s.Handler())

	const n = 16
	data := randField(n*n*n, 99)
	req := TransformRequest{Nx: n, Ny: n, Nz: n, Ranks: 2, TimeoutMs: 5000}

	// Warm the plan so the kill hits a live, cached world.
	if code, _, _, emsg := postTransform(t, ts.URL, req, data); code != http.StatusOK {
		t.Fatalf("warmup: HTTP %d: %s", code, emsg)
	}
	snap := s.Registry().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("expected one cached plan, got %d", len(snap))
	}
	keyStr := snap[0].Key

	const workers = 8
	const perWorker = 6
	var ok, typed5xx, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, _, _, _ := postTransform(t, ts.URL, req, data)
				switch {
				case code == http.StatusOK:
					ok.Add(1)
				case code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout:
					typed5xx.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	// Kill the world twice while the burst is in flight.
	killed := 0
	for k := 0; k < 2; k++ {
		time.Sleep(15 * time.Millisecond)
		if s.Registry().KillPlan(keyStr, fmt.Errorf("chaos kill %d", k)) {
			killed++
		}
	}
	wg.Wait()

	if got := ok.Load() + typed5xx.Load() + other.Load(); got != workers*perWorker {
		t.Fatalf("answered %d of %d requests", got, workers*perWorker)
	}
	if other.Load() > 0 {
		t.Errorf("%d requests resolved to an untyped status (want 200/503/504 only)", other.Load())
	}
	if killed == 0 {
		t.Fatal("no kill landed on the live plan; the chaos path was never exercised")
	}
	if wedged := s.Registry().Wedged(); len(wedged) > 0 {
		t.Errorf("wedged registry keys after the burst: %v", wedged)
	}

	// The killed plan must come back on its own and serve again.
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if code, _, _, _ := postTransform(t, ts.URL, req, data); code == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("killed plan never returned to healthy service")
	}
	h := s.Registry().HealthSnapshot()
	if h.Quarantines < int64(killed) {
		t.Errorf("HealthSnapshot quarantines = %d, want ≥ %d", h.Quarantines, killed)
	}
	if h.Rebuilds < 1 {
		t.Errorf("HealthSnapshot rebuilds = %d, want ≥ 1", h.Rebuilds)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("drain: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if got := settleGoroutines(baseGoroutines+4, 5*time.Second); got > baseGoroutines+4 {
		t.Errorf("goroutines settled at %d, baseline %d: leak", got, baseGoroutines)
	}
}

// TestQuarantineRebuildLifecycle walks the registry state machine
// directly: healthy → MarkFailed (typed fast-fail, breaker open) →
// background rebuild → healthy again, with the lifetime counters moving.
func TestQuarantineRebuildLifecycle(t *testing.T) {
	r := NewRegistry(2, nil)
	defer r.CloseAll()
	r.SetRebuildPolicy(fastRebuild())

	key := memKey(8, 2)
	e, err := r.Acquire(context.Background(), key, buildFor(key))
	if err != nil {
		t.Fatal(err)
	}
	r.Release(e)

	cause := &offt.WorldError{Rank: 1, Cause: errors.New("injected")}
	qe := r.MarkFailed(e, cause)
	if qe == nil || !errors.Is(qe, ErrPlanQuarantined) {
		t.Fatalf("MarkFailed returned %v, want a *QuarantinedError", qe)
	}
	if qe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want positive", qe.RetryAfter)
	}

	// While the breaker is open the key fast-fails without building.
	if _, err := r.Acquire(context.Background(), key, func() (*offt.Plan, error) {
		t.Error("builder called while the breaker is open")
		return nil, errors.New("unexpected")
	}); !errors.Is(err, ErrPlanQuarantined) {
		t.Fatalf("Acquire during quarantine = %v, want ErrPlanQuarantined", err)
	}

	// Duplicate failure reports collapse (every in-flight request on the
	// dead world reports it).
	if qe2 := r.MarkFailed(e, cause); qe2 == nil {
		t.Fatal("duplicate MarkFailed returned nil")
	}

	// The background rebuild brings the key back.
	deadline := time.Now().Add(5 * time.Second)
	var fresh *planEntry
	for time.Now().Before(deadline) {
		fresh, err = r.Acquire(context.Background(), key, buildFor(key))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPlanQuarantined) {
			t.Fatalf("Acquire while rebuilding = %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal("key never recovered from quarantine")
	}
	if fresh.Plan() == e.Plan() {
		t.Error("recovered entry still holds the dead plan")
	}
	r.Release(fresh)

	h := r.HealthSnapshot()
	if h.Quarantines != 1 || h.Rebuilds != 1 {
		t.Errorf("health = %+v, want 1 quarantine and 1 rebuild", h)
	}
	if wedged := r.Wedged(); len(wedged) > 0 {
		t.Errorf("wedged keys: %v", wedged)
	}
}

// TestBreakerBreaksThenHalfOpens: a key whose rebuilds keep failing goes
// broken (bounded work, fast 503s), and once the environment heals, the
// half-open probe after the breaker window restores service.
func TestBreakerBreaksThenHalfOpens(t *testing.T) {
	r := NewRegistry(2, nil)
	defer r.CloseAll()
	r.SetRebuildPolicy(RebuildPolicy{
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  40 * time.Millisecond,
		MaxAttempts: 2,
	})

	key := memKey(8, 1)
	var healthy atomic.Bool
	healthy.Store(true)
	build := func() (*offt.Plan, error) {
		if !healthy.Load() {
			return nil, errors.New("environment down")
		}
		return buildFor(key)()
	}

	e, err := r.Acquire(context.Background(), key, build)
	if err != nil {
		t.Fatal(err)
	}
	r.Release(e)

	healthy.Store(false)
	r.MarkFailed(e, errors.New("world died"))

	// Rebuilds fail MaxAttempts times → broken, reported as such.
	deadline := time.Now().Add(5 * time.Second)
	var qe *QuarantinedError
	for time.Now().Before(deadline) {
		_, err := r.Acquire(context.Background(), key, build)
		if err == nil {
			t.Fatal("Acquire succeeded while the environment is down")
		}
		if errors.As(err, &qe) && qe.Broken {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if qe == nil || !qe.Broken {
		t.Fatal("breaker never reported broken despite exhausted rebuilds")
	}

	// Environment heals: after the breaker window, an acquire arms the
	// half-open probe and the key recovers.
	healthy.Store(true)
	recovered := false
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fresh, err := r.Acquire(context.Background(), key, build); err == nil {
			r.Release(fresh)
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("broken key never recovered after the environment healed")
	}
	if wedged := r.Wedged(); len(wedged) > 0 {
		t.Errorf("wedged keys: %v", wedged)
	}
}
