package serve

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWireHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := TransformRequest{Nx: 64, Ny: 64, Nz: 32, Ranks: 4, Direction: "backward", Variant: "new", TimeoutMs: 250}
	if err := WriteHeader(&buf, req); err != nil {
		t.Fatal(err)
	}
	var got TransformRequest
	if err := ReadHeader(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Errorf("header round trip = %+v, want %+v", got, req)
	}
}

func TestWirePayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A size that does not divide the chunk evenly exercises the tail.
	data := make([]complex128, 5000)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := WritePayload(&buf, data); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(data)*16 {
		t.Errorf("payload bytes = %d, want %d", buf.Len(), len(data)*16)
	}
	got := make([]complex128, len(data))
	if err := ReadPayloadInto(&buf, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("element %d = %v, want %v (payload must be bit-exact)", i, got[i], data[i])
		}
	}
}

func TestWireMalformed(t *testing.T) {
	// Oversized header length prefix.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var req TransformRequest
	if err := ReadHeader(&buf, &req); err == nil || !strings.Contains(err.Error(), "header length") {
		t.Errorf("oversized header length error = %v", err)
	}

	// Truncated payload.
	var pbuf bytes.Buffer
	if err := WritePayload(&pbuf, make([]complex128, 10)); err != nil {
		t.Fatal(err)
	}
	short := pbuf.Bytes()[:pbuf.Len()-8]
	if err := ReadPayloadInto(bytes.NewReader(short), make([]complex128, 10)); err == nil {
		t.Error("truncated payload decoded without error")
	}

	// Header that is not JSON.
	var hbuf bytes.Buffer
	hbuf.Write([]byte{0, 0, 0, 2})
	hbuf.WriteString("{[")
	if err := ReadHeader(&hbuf, &req); err == nil {
		t.Error("malformed JSON header decoded without error")
	}
}
