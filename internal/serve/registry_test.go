package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"offt"
)

func memKey(n, ranks int) PlanKey {
	prm, err := offt.DefaultParams(n, n, n, ranks)
	if err != nil {
		panic(err)
	}
	return PlanKey{
		Nx: n, Ny: n, Nz: n, Ranks: ranks,
		Variant: offt.NEW, Engine: offt.Mem, Workers: 1,
		Machine: "laptop", Params: prm,
	}
}

func buildFor(key PlanKey) func() (*offt.Plan, error) {
	return func() (*offt.Plan, error) {
		return offt.NewPlan(
			offt.WithGrid(key.Nx, key.Ny, key.Nz),
			offt.WithRanks(key.Ranks),
			offt.WithVariant(key.Variant),
			offt.WithParams(key.Params),
		)
	}
}

func TestRegistryHitMissEviction(t *testing.T) {
	r := NewRegistry(1, nil)
	defer r.CloseAll()

	kA, kB := memKey(8, 1), memKey(12, 1)

	a1, err := r.Acquire(context.Background(), kA, buildFor(kA))
	if err != nil {
		t.Fatal(err)
	}
	planA := a1.Plan()
	r.Release(a1)

	// Same key: cache hit, same plan instance.
	a2, err := r.Acquire(context.Background(), kA, func() (*offt.Plan, error) {
		t.Error("builder called on what should be a cache hit")
		return nil, errors.New("unexpected build")
	})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Plan() != planA {
		t.Error("cache hit returned a different plan instance")
	}
	r.Release(a2)

	// Different key at capacity 1: A is idle, so it gets evicted and
	// closed.
	b, err := r.Acquire(context.Background(), kB, buildFor(kB))
	if err != nil {
		t.Fatal(err)
	}
	r.Release(b)
	if got := r.Len(); got != 1 {
		t.Errorf("registry holds %d plans, want 1", got)
	}
	if _, err := planA.Forward(make([]complex128, 8*8*8)); err == nil {
		t.Error("evicted plan was not closed")
	}

	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Grid != [3]int{12, 12, 12} {
		t.Errorf("snapshot = %+v, want one 12³ plan", snap)
	}
}

func TestRegistryDoesNotEvictBusyPlan(t *testing.T) {
	r := NewRegistry(1, nil)
	defer r.CloseAll()

	kA, kB := memKey(8, 1), memKey(12, 1)
	a, err := r.Acquire(context.Background(), kA, buildFor(kA))
	if err != nil {
		t.Fatal(err)
	}
	// A is still referenced: acquiring B overflows capacity but must not
	// close A underneath its holder.
	b, err := r.Acquire(context.Background(), kB, buildFor(kB))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Len(); got != 2 {
		t.Errorf("registry holds %d plans, want 2 (busy plan is unevictable)", got)
	}
	data := make([]complex128, 8*8*8)
	if _, err := a.Plan().Forward(data); err != nil {
		t.Errorf("busy plan was closed during overflow: %v", err)
	}
	r.Release(b)
	r.Release(a)
	// Now A is idle and over capacity: eviction shrinks back to 1.
	if got := r.Len(); got != 1 {
		t.Errorf("registry holds %d plans after releases, want 1", got)
	}
}

func TestRegistrySingleflight(t *testing.T) {
	r := NewRegistry(4, nil)
	defer r.CloseAll()

	key := memKey(8, 2)
	var builds atomic.Int32
	gate := make(chan struct{})

	const goros = 8
	var wg sync.WaitGroup
	plans := make([]*offt.Plan, goros)
	errs := make([]error, goros)
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-gate
			e, err := r.Acquire(context.Background(), key, func() (*offt.Plan, error) {
				builds.Add(1)
				return buildFor(key)()
			})
			if err != nil {
				errs[g] = err
				return
			}
			plans[g] = e.Plan()
			r.Release(e)
		}(g)
	}
	close(gate)
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("plan built %d times under concurrent acquire, want 1 (singleflight)", n)
	}
	for g := 1; g < goros; g++ {
		if plans[g] != plans[0] {
			t.Errorf("goroutine %d got a different plan instance", g)
		}
	}
}

func TestRegistryBuildErrorNotCached(t *testing.T) {
	r := NewRegistry(4, nil)
	defer r.CloseAll()

	key := memKey(8, 1)
	wantErr := fmt.Errorf("transient build failure")
	if _, err := r.Acquire(context.Background(), key, func() (*offt.Plan, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Acquire = %v, want build error", err)
	}
	if got := r.Len(); got != 0 {
		t.Errorf("failed build left %d cached entries", got)
	}
	// The next acquire retries the build and can succeed.
	e, err := r.Acquire(context.Background(), key, buildFor(key))
	if err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	r.Release(e)
}

// TestRegistryBuildPanicNotPoisoned: a panicking builder must not leave a
// permanently-unready entry behind — later acquires for the same key get
// to retry instead of blocking forever.
func TestRegistryBuildPanicNotPoisoned(t *testing.T) {
	r := NewRegistry(4, nil)
	defer r.CloseAll()

	key := memKey(8, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("build panic did not propagate")
			}
		}()
		_, _ = r.Acquire(context.Background(), key, func() (*offt.Plan, error) {
			panic("boom in plan construction")
		})
	}()
	if got := r.Len(); got != 0 {
		t.Fatalf("panicked build left %d cached entries", got)
	}
	// The key is not poisoned: a fresh acquire rebuilds and succeeds
	// (rather than blocking on a never-closed ready channel).
	done := make(chan error, 1)
	go func() {
		e, err := r.Acquire(context.Background(), key, buildFor(key))
		if err == nil {
			r.Release(e)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("acquire after panicked build: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire after panicked build blocked")
	}
}

// TestRegistryAcquireHonorsContext: a waiter on another request's slow
// build gives up when its context expires instead of holding its
// reference (and admission weight) indefinitely.
func TestRegistryAcquireHonorsContext(t *testing.T) {
	r := NewRegistry(4, nil)
	defer r.CloseAll()

	key := memKey(8, 1)
	buildGate := make(chan struct{})
	building := make(chan struct{})
	builderDone := make(chan error, 1)
	go func() {
		e, err := r.Acquire(context.Background(), key, func() (*offt.Plan, error) {
			close(building)
			<-buildGate // hold the build until released below
			return buildFor(key)()
		})
		if err == nil {
			r.Release(e)
		}
		builderDone <- err
	}()
	<-building

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := r.Acquire(ctx, key, buildFor(key)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire during slow build = %v, want context.DeadlineExceeded", err)
	}

	close(buildGate)
	if err := <-builderDone; err != nil {
		t.Fatalf("builder: %v", err)
	}
	// The abandoned waiter released its reference: the entry is idle and
	// evictable (refs back to 0).
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].InFlight != 0 {
		t.Errorf("snapshot = %+v, want one idle plan with no in-flight refs", snap)
	}
}

func TestRegistryExecAccounting(t *testing.T) {
	r := NewRegistry(2, nil)
	defer r.CloseAll()
	key := memKey(8, 1)
	e, err := r.Acquire(context.Background(), key, buildFor(key))
	if err != nil {
		t.Fatal(err)
	}
	e.RecordExec(int64(time.Millisecond))
	e.RecordExec(int64(3 * time.Millisecond))
	r.Release(e)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Execs != 2 {
		t.Errorf("snapshot execs = %+v, want 2", snap)
	}
	// EWMA after [1ms, 3ms]: 1ms, then 1ms - 0.25ms + 0.75ms = 1.5ms.
	if got := snap[0].SteadyNs; got != int64(1500*time.Microsecond) {
		t.Errorf("steady EWMA = %v, want 1.5ms", time.Duration(got))
	}
}

func TestRegistryCloseAll(t *testing.T) {
	r := NewRegistry(4, nil)
	key := memKey(8, 1)
	e, err := r.Acquire(context.Background(), key, buildFor(key))
	if err != nil {
		t.Fatal(err)
	}
	plan := e.Plan()
	r.Release(e)
	if err := r.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Forward(make([]complex128, 8*8*8)); err == nil {
		t.Error("plan still live after CloseAll")
	}
	if _, err := r.Acquire(context.Background(), key, buildFor(key)); !errors.Is(err, ErrDraining) {
		t.Errorf("Acquire after CloseAll = %v, want ErrDraining", err)
	}
}
