package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"offt/internal/telemetry"
)

// statusRecorder captures the status code a handler wrote so the request
// observer can classify the outcome after the fact.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// reqSeq numbers requests within the process; combined with the server's
// startup-time prefix it yields request IDs unique across restarts.
var reqSeq atomic.Uint64

// reqObs is the per-request observability context: the request ID, the
// trace (nil when tracing is off), and the stage latencies the handler
// fills in as it goes. finish() files the completed request with the
// flight recorder, the SLO, and the structured log exactly once.
type reqObs struct {
	s        *Server
	w        *statusRecorder
	tc       *telemetry.TraceContext
	rootID   int
	id       string
	endpoint string
	start    time.Time

	planKey    string
	decomp     string
	cacheHit   bool
	queueNs    int64
	acquireNs  int64
	execNs     int64
	downgrades int64
	overlap    float64 // -1 until measured
	errMsg     string
	reasons    []string // pre-seeded promotion reasons ("watchdog")
	done       bool
}

// newReqObs starts observing one request. The client may supply its own
// X-Request-Id (echoed back); otherwise one is minted. A TraceContext is
// attached only when the server runs with tracing enabled.
func (s *Server) newReqObs(w http.ResponseWriter, r *http.Request, endpoint string) *reqObs {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = fmt.Sprintf("%s-%06d", s.reqPrefix, reqSeq.Add(1))
	}
	w.Header().Set("X-Request-Id", id)
	o := &reqObs{
		s:        s,
		w:        &statusRecorder{ResponseWriter: w},
		id:       id,
		endpoint: endpoint,
		start:    time.Now(),
		overlap:  -1,
	}
	if s.cfg.Trace {
		o.tc = telemetry.NewTraceContext(id)
		o.rootID = o.tc.Begin("request")
	}
	return o
}

// fail notes the error a non-200 outcome is about to be written with, so
// the flight record carries the cause, not just the status code.
func (o *reqObs) fail(err error) {
	if err != nil {
		o.errMsg = err.Error()
	}
}

// finish files the request: span tree snapshot into the flight recorder,
// outcome into the SLO window, and one structured log line. Idempotent.
func (o *reqObs) finish() {
	if o.done {
		return
	}
	o.done = true
	o.tc.End(o.rootID)
	status := o.w.status
	if status == 0 {
		status = http.StatusOK
	}
	totalNs := time.Since(o.start).Nanoseconds()

	// SLO: 5xx and 504s burn budget as failures; 2xx burn it when they
	// miss the latency objective. Client errors (4xx) and shed 429s are
	// excluded — they say nothing about the service's own health.
	if status < 400 || status >= 500 {
		o.s.slo.Observe(totalNs, status >= 500)
	}

	rec := &telemetry.RequestRecord{
		ID:         o.id,
		Endpoint:   o.endpoint,
		PlanKey:    o.planKey,
		Start:      o.start,
		TotalNs:    totalNs,
		QueueNs:    o.queueNs,
		AcqNs:      o.acquireNs,
		ExecNs:     o.execNs,
		Status:     status,
		Error:      o.errMsg,
		Reasons:    o.reasons,
		Downgrades: o.downgrades,
		OverlapEff: o.overlap,
		CacheHit:   o.cacheHit,
		Truncated:  o.tc.Truncated(),
		Spans:      o.tc.Drain(),
	}
	reasons := o.s.flight.Record(rec)

	log := o.s.log
	if log != nil {
		lv := telemetry.LevelInfo
		switch {
		case status >= 500:
			lv = telemetry.LevelError
		case status >= 400 || len(reasons) > 0:
			lv = telemetry.LevelWarn
		}
		kv := []any{
			"req", o.id,
			"endpoint", o.endpoint,
			"status", status,
			"total_ns", totalNs,
		}
		if o.planKey != "" {
			kv = append(kv, "plan", o.planKey)
			if o.decomp != "" {
				kv = append(kv, "decomp", o.decomp)
			}
			kv = append(kv, "cache_hit", o.cacheHit,
				"queue_ns", o.queueNs, "exec_ns", o.execNs)
		}
		if o.overlap >= 0 {
			kv = append(kv, "overlap_eff", o.overlap)
		}
		if o.downgrades > 0 {
			kv = append(kv, "downgrades", o.downgrades)
		}
		if len(reasons) > 0 {
			kv = append(kv, "captured", fmt.Sprint(reasons))
		}
		if o.errMsg != "" {
			kv = append(kv, "error", o.errMsg)
		}
		log.Log(lv, "request.done", kv...)
	}
}

// handleDebugRequests serves GET /debug/requests: the flight recorder's
// listing view (slow threshold plus notable and recent rings).
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.flight.Snapshot())
}

// handleDebugRequest serves GET /debug/requests/{id}: the full record of
// one captured request including its span tree. ?format=chrome renders
// the span tree as Chrome trace-event JSON loadable in Perfetto.
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := s.flight.Get(id)
	if rec == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: request %q is not in the flight recorder (it may have aged out)", id))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", rec.ID+".trace.json"))
		_ = telemetry.SpansToTimeline(rec.ID, rec.Spans).WriteChromeTrace(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rec)
}
